package registry_test

import (
	"encoding/json"
	"strings"
	"testing"

	"atcsched/internal/core"
	"atcsched/internal/netmodel"
	"atcsched/internal/sched/atc"
	"atcsched/internal/sched/cosched"
	"atcsched/internal/sched/registry"
	"atcsched/internal/sim"
	"atcsched/internal/vmm"

	_ "atcsched/internal/sched/all"
)

func TestKindsAndOrdering(t *testing.T) {
	wantCompared := []string{"CR", "BS", "CS", "DSS", "VS", "ATC"}
	got := registry.Compared()
	if len(got) != len(wantCompared) {
		t.Fatalf("Compared() = %v, want %v", got, wantCompared)
	}
	for i := range got {
		if got[i] != wantCompared[i] {
			t.Fatalf("Compared() = %v, want %v", got, wantCompared)
		}
	}
	wantExt := []string{"ATCDFRS", "DFRS", "HY"}
	ext := registry.Extensions()
	if len(ext) != len(wantExt) {
		t.Fatalf("Extensions() = %v, want %v", ext, wantExt)
	}
	for i := range ext {
		if ext[i] != wantExt[i] {
			t.Fatalf("Extensions() = %v, want %v", ext, wantExt)
		}
	}
	kinds := registry.Kinds()
	if len(kinds) != 10 {
		t.Errorf("Kinds() = %v, want all 10 policies", kinds)
	}
	for _, k := range []string{"CR", "BS", "CS", "DSS", "VS", "ATC", "HY", "EXT", "DFRS", "ATCDFRS"} {
		if _, ok := registry.Lookup(k); !ok {
			t.Errorf("Lookup(%q) failed", k)
		}
		if _, ok := registry.Lookup(strings.ToLower(k)); !ok {
			t.Errorf("Lookup is not case-insensitive for %q", k)
		}
	}
}

func TestUnknownKindEnumeratesValid(t *testing.T) {
	_, err := registry.Resolve("NOPE", nil, registry.Base{})
	if err == nil {
		t.Fatal("unknown kind accepted")
	}
	msg := err.Error()
	for _, k := range registry.Kinds() {
		if !strings.Contains(msg, k) {
			t.Errorf("error %q does not list valid kind %s", msg, k)
		}
	}
}

// TestUnknownKindErrorDeterministic pins the exact unknown-kind message:
// the valid-kind list must be sorted, never map-iteration order, so
// callers (and fuzz targets) can assert on the message byte-for-byte
// and two runs never disagree.
func TestUnknownKindErrorDeterministic(t *testing.T) {
	want := `unknown scheduler "NOPE" (valid: ATC, ATCDFRS, BS, CR, CS, DFRS, DSS, EXT, HY, VS)`
	for i := 0; i < 10; i++ {
		if got := registry.UnknownKindError("NOPE").Error(); got != want {
			t.Fatalf("attempt %d:\n got %q\nwant %q", i, got, want)
		}
	}
	if _, err := registry.Resolve("NOPE", nil, registry.Base{}); err == nil || err.Error() != want {
		t.Errorf("Resolve error = %v, want %q", err, want)
	}
}

// TestPartialOptionsMerge pins the fix for the old cluster ATC branch
// that discarded a user-supplied ATCControl whenever Credit.TimeSlice
// was zero: setting only Alpha must keep the defaults for everything
// else, including the default slice.
func TestPartialOptionsMerge(t *testing.T) {
	d, _ := registry.Lookup("ATC")
	merged, err := d.Options(atc.Options{Control: core.Config{Alpha: 9 * sim.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	o := merged.(*atc.Options)
	if o.Control.Alpha != 9*sim.Millisecond {
		t.Errorf("user alpha discarded: %v", o.Control.Alpha)
	}
	def := atc.DefaultOptions()
	if o.Credit.TimeSlice != def.Credit.TimeSlice {
		t.Errorf("default slice lost: %v", o.Credit.TimeSlice)
	}
	if o.Control.Beta != def.Control.Beta || o.Control.Window != def.Control.Window {
		t.Errorf("control defaults lost: β=%v window=%d", o.Control.Beta, o.Control.Window)
	}
	if !o.Credit.Boost || !o.Credit.Steal {
		t.Errorf("credit defaults lost: boost=%v steal=%v", o.Credit.Boost, o.Credit.Steal)
	}
}

func TestJSONOptionsMerge(t *testing.T) {
	d, _ := registry.Lookup("CS")
	merged, err := d.Options(json.RawMessage(`{"spinWaitThreshold": "150us"}`))
	if err != nil {
		t.Fatal(err)
	}
	o := merged.(*cosched.Options)
	if o.SpinWaitThreshold != 150*sim.Microsecond {
		t.Errorf("threshold = %v, want 150us", o.SpinWaitThreshold)
	}
	if o.CalmPeriods != cosched.DefaultOptions().CalmPeriods {
		t.Errorf("calm periods default lost: %d", o.CalmPeriods)
	}
	// Explicit false in JSON overrides a true default.
	merged, err = d.Options(json.RawMessage(`{"credit": {"boost": false}}`))
	if err != nil {
		t.Fatal(err)
	}
	if merged.(*cosched.Options).Credit.Boost {
		t.Error("explicit boost:false ignored")
	}
	// Unknown fields are rejected, not ignored.
	if _, err := d.Options(json.RawMessage(`{"frobnicate": 1}`)); err == nil {
		t.Error("unknown option field accepted")
	}
	// Wrong struct type is rejected.
	if _, err := d.Options(atc.Options{}); err == nil {
		t.Error("wrong options type accepted")
	}
}

func TestBaseOverrides(t *testing.T) {
	f, err := registry.Resolve("CR", nil, registry.Base{FixedSlice: 6 * sim.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	w := vmm.MustNewWorld(1, vmm.DefaultNodeConfig(), netmodel.DefaultConfig(), f)
	vm := w.Node(0).NewVM("x", vmm.ClassNonParallel, 1, 0, 1)
	if got := w.Node(0).Scheduler().Slice(vm.VCPU(0)); got != 6*sim.Millisecond {
		t.Errorf("fixed slice not applied: %v", got)
	}
	if _, err := registry.Resolve("CR", nil, registry.Base{FixedSlice: -1}); err == nil {
		t.Error("negative fixed slice accepted")
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	cases := map[string]struct{ kind, opts string }{
		"negative slice":   {"CR", `{"timeSlice": "-5ms"}`},
		"alpha below beta": {"ATC", `{"control": {"alpha": "0.1ms"}}`},
		"bad smoothing":    {"DSS", `{"smoothing": 2}`},
		"cs threshold":     {"CS", `{"spinWaitThreshold": "-1us"}`},
	}
	for name, c := range cases {
		if err := registry.Validate(c.kind, json.RawMessage(c.opts)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	for _, k := range registry.Kinds() {
		if err := registry.Validate(k, nil); err != nil {
			t.Errorf("%s defaults do not validate: %v", k, err)
		}
	}
}
