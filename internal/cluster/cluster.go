// Package cluster assembles whole experiment scenarios: a world of
// identical nodes under a named scheduling approach, virtual clusters
// striped across nodes, independent VMs, parallel application runs and
// non-parallel jobs, and a completion-driven run loop.
package cluster

import (
	"fmt"
	"sync/atomic"

	"atcsched/internal/fault"
	"atcsched/internal/netmodel"
	"atcsched/internal/sched/registry"
	"atcsched/internal/sim"
	"atcsched/internal/telemetry"
	"atcsched/internal/vmm"
	"atcsched/internal/workload"

	// Link every in-tree policy so registry lookups resolve.
	_ "atcsched/internal/sched/all"
)

// Approach names a scheduling policy registered in sched/registry.
type Approach string

// The compared approaches (kept as constants for ergonomic literals; the
// authoritative list lives in the registry).
const (
	CR  Approach = "CR"  // Xen Credit (baseline)
	CS  Approach = "CS"  // dynamic co-scheduling
	BS  Approach = "BS"  // balance scheduling
	DSS Approach = "DSS" // dynamic switching-frequency scaling
	VS  Approach = "VS"  // vSlicer microslicing
	ATC Approach = "ATC" // the paper's adaptive time-slice control
	// HY is the hybrid scheduling framework from the paper's related
	// work — an extension baseline, not part of the evaluated set.
	HY Approach = "HY"
	// DFRS is dynamic fractional resource scheduling (per-VM CPU
	// fractions), and ATCDFRS the ATC×DFRS hybrid — extension
	// baselines contrasting fraction control with slice control.
	DFRS    Approach = "DFRS"
	ATCDFRS Approach = "ATCDFRS"
)

// Approaches returns the paper's six compared approaches in the paper's
// comparison order, as declared by the policies' registry descriptors.
func Approaches() []Approach {
	kinds := registry.Compared()
	out := make([]Approach, len(kinds))
	for i, k := range kinds {
		out[i] = Approach(k)
	}
	return out
}

// ExtendedApproaches returns the compared set plus the extension
// baselines this repository adds.
func ExtendedApproaches() []Approach {
	out := Approaches()
	for _, k := range registry.Extensions() {
		out = append(out, Approach(k))
	}
	return out
}

// SchedSpec selects and parameterizes a scheduling approach.
type SchedSpec struct {
	Kind Approach
	// Options parameterizes the policy. It may be nil (registry defaults),
	// the policy's options struct (or a pointer to it) with zero fields
	// inheriting defaults, or a json.RawMessage / []byte holding a JSON
	// object merged over the defaults. See registry.Descriptor.Options.
	Options any
	// FixedSlice, when nonzero, overrides the base (default) time slice —
	// used by the static sweeps of Figures 5, 8 and 9 with Kind CR.
	FixedSlice sim.Time
	// Boost/Steal toggles on the credit core, for ablations. Both
	// default to on.
	DisableBoost bool
	DisableSteal bool
}

// Factory resolves the spec through the policy registry into a
// per-node scheduler factory.
func (s SchedSpec) Factory() (vmm.SchedulerFactory, error) {
	f, err := registry.Resolve(string(s.Kind), s.Options, registry.Base{
		FixedSlice:   s.FixedSlice,
		DisableBoost: s.DisableBoost,
		DisableSteal: s.DisableSteal,
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	return f, nil
}

// Config parameterizes a scenario.
type Config struct {
	Nodes int
	Node  vmm.NodeConfig
	Net   netmodel.Config
	// Shards, when positive, runs the world on that many engine shards
	// synchronized at the network lookahead (Net.WireLatency must be
	// positive); nodes are partitioned contiguously over the shards.
	// Zero keeps the historical single-engine world. Results are
	// byte-identical across shard counts >= 1, but the sharded
	// fingerprint family differs from the serial one (cross-node
	// deliveries sequence at lookahead barriers).
	Shards int
	Sched  SchedSpec
	// NodePolicies, when non-empty, overrides Sched for specific nodes
	// (keyed by node index), making the cluster heterogeneous: e.g. most
	// nodes under CR with one node under ATC. Each entry is a complete
	// SchedSpec; it does not inherit fields from Sched.
	NodePolicies map[int]SchedSpec
	// NonParallelAdminSlice, when nonzero, is applied as the AdminSlice
	// of every non-parallel VM — the ATC(6ms) variant of §IV-C.
	NonParallelAdminSlice sim.Time
	// Seed drives all workload randomness.
	Seed uint64
	// AuditEvery, when nonzero, re-checks World.Audit every interval of
	// virtual time while the run loop drives the world (Go, GoFor,
	// ContinueFor, ContinueUntil) and once more when it hands back
	// control. Violations are retained (see Scenario.AuditViolations);
	// the run itself is not interrupted.
	AuditEvery sim.Time
	// OnAudit, when set alongside AuditEvery, observes every audit
	// point: the virtual time and the violation list (empty when
	// healthy).
	OnAudit func(at sim.Time, errs []error)
	// Faults, when non-nil, attaches a deterministic fault-injection
	// plan (internal/fault) to the world: straggler windows, packet
	// loss, bandwidth degradation and monitor faults, seeded from
	// Faults.Seed (or Seed when unset).
	Faults *fault.Spec
	// Telemetry, when non-nil, attaches a telemetry plane to the world
	// (internal/telemetry). Strictly observational: fingerprints are
	// byte-identical with or without it.
	Telemetry *telemetry.Plane
}

// DefaultConfig returns a paper-testbed-like configuration for the given
// node count and approach.
func DefaultConfig(nodes int, kind Approach) Config {
	return Config{
		Nodes: nodes,
		Node:  vmm.DefaultNodeConfig(),
		Net:   netmodel.DefaultConfig(),
		Sched: SchedSpec{Kind: kind},
		Seed:  1,
	}
}

// Scenario is a world under construction plus its measured runs.
type Scenario struct {
	Cfg   Config
	World *vmm.World

	runs []*workload.ParallelRun
	// pending counts measured runs that have not reached their target.
	// Atomic because in a sharded world each run's completion callback
	// fires on its home node's shard; every decrement still happens at
	// an instant fixed by virtual time, so reaching zero — and the
	// window-quantized Stop it triggers — is deterministic.
	pending    atomic.Int64
	nextVC     int
	auditViols []error
	faults     *fault.Plan
}

// New builds the world for cfg.
func New(cfg Config) (*Scenario, error) {
	def, err := cfg.Sched.Factory()
	if err != nil {
		return nil, err
	}
	perNode := make(map[int]vmm.SchedulerFactory, len(cfg.NodePolicies))
	for i, spec := range cfg.NodePolicies {
		if i < 0 || i >= cfg.Nodes {
			return nil, fmt.Errorf("cluster: node policy for node %d outside cluster of %d nodes", i, cfg.Nodes)
		}
		f, err := spec.Factory()
		if err != nil {
			return nil, fmt.Errorf("node %d: %w", i, err)
		}
		perNode[i] = f
	}
	factoryFor := func(i int) vmm.SchedulerFactory {
		if f, ok := perNode[i]; ok {
			return f
		}
		return def
	}
	var w *vmm.World
	if cfg.Shards > 0 {
		w, err = vmm.NewShardedHeteroWorld(cfg.Nodes, cfg.Shards, cfg.Node, cfg.Net, factoryFor)
	} else {
		w, err = vmm.NewHeteroWorld(cfg.Nodes, cfg.Node, cfg.Net, factoryFor)
	}
	if err != nil {
		return nil, err
	}
	s := &Scenario{Cfg: cfg, World: w}
	if cfg.Telemetry != nil {
		w.SetTelemetry(cfg.Telemetry)
	}
	if cfg.Faults != nil {
		plan, err := fault.Compile(cfg.Faults, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("cluster: %w", err)
		}
		if err := plan.Attach(w); err != nil {
			return nil, fmt.Errorf("cluster: %w", err)
		}
		s.faults = plan
	}
	return s, nil
}

// FaultReport returns the attached fault plan's injection tallies (zero
// when no faults were configured).
func (s *Scenario) FaultReport() fault.Report { return s.faults.Report() }

// FinalizeTelemetry publishes end-of-run totals (per-node scheduler
// counters, shard sync stats, fault windows and tallies) into the
// configured telemetry plane. No-op without one; call after the run.
func (s *Scenario) FinalizeTelemetry() {
	p := s.Cfg.Telemetry
	if p == nil {
		return
	}
	s.World.FinalizeTelemetry()
	s.faults.PublishTelemetry(p.Global())
}

// FaultPlan returns the compiled fault plan (nil without faults).
func (s *Scenario) FaultPlan() *fault.Plan { return s.faults }

// MustNew is New that panics on error.
func MustNew(cfg Config) *Scenario {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// VirtualCluster creates nVMs VMs of vcpus VCPUs each, placed round-robin
// over the given node indices (the paper stripes each VC across nodes),
// and returns them.
func (s *Scenario) VirtualCluster(name string, nVMs, vcpus int, nodes []int) []*vmm.VM {
	if len(nodes) == 0 {
		nodes = make([]int, s.Cfg.Nodes)
		for i := range nodes {
			nodes[i] = i
		}
	}
	vms := make([]*vmm.VM, 0, nVMs)
	for i := 0; i < nVMs; i++ {
		n := s.World.Node(nodes[i%len(nodes)])
		vm := n.NewVM(fmt.Sprintf("%s-%d", name, i), vmm.ClassParallel, vcpus, 0, 1)
		vms = append(vms, vm)
	}
	return vms
}

// IndependentVM creates one VM outside any virtual cluster.
func (s *Scenario) IndependentVM(name string, node, vcpus int, class vmm.VMClass) *vmm.VM {
	vm := s.World.Node(node).NewVM(name, class, vcpus, 0, 1)
	if class == vmm.ClassNonParallel && s.Cfg.NonParallelAdminSlice > 0 {
		vm.AdminSlice = s.Cfg.NonParallelAdminSlice
	}
	return vm
}

// RunParallel installs a measured parallel run of profile on the given
// VMs: the scenario completes when every measured run reaches rounds.
// With forever set the application keeps re-running afterwards
// (background load), still counting toward completion at `rounds`.
func (s *Scenario) RunParallel(profile workload.AppProfile, vms []*vmm.VM, rounds int, forever bool) *workload.ParallelRun {
	s.nextVC++
	app := workload.NewBSPApp(profile, vms, s.Cfg.Seed+uint64(s.nextVC)*7919)
	s.pending.Add(1)
	run := workload.NewParallelRun(app, rounds, forever, func() {
		if s.pending.Add(-1) == 0 {
			s.World.Stop()
		}
	})
	run.Install()
	s.runs = append(s.runs, run)
	return run
}

// RunBackground installs a parallel application that reruns forever and
// does not count toward scenario completion — background load for the
// mixed and non-parallel experiments.
func (s *Scenario) RunBackground(profile workload.AppProfile, vms []*vmm.VM) *workload.ParallelRun {
	s.nextVC++
	app := workload.NewBSPApp(profile, vms, s.Cfg.Seed+uint64(s.nextVC)*7919)
	run := workload.NewParallelRun(app, 1, true, nil)
	run.Install()
	return run
}

// Runs returns the measured parallel runs in creation order.
func (s *Scenario) Runs() []*workload.ParallelRun { return s.runs }

// GoFor starts the world and runs it for exactly d of virtual time,
// regardless of measured-run completion — used when the metric is a
// steady-state rate (RTT, bandwidth, response time).
func (s *Scenario) GoFor(d sim.Time) {
	s.World.Start()
	s.advance(d)
}

// ContinueFor resumes a world stopped by measured-run completion and
// runs it for d more virtual time, letting steady-state job metrics
// (throughput, response time) accumulate while the Forever runs keep the
// load up.
func (s *Scenario) ContinueFor(d sim.Time) {
	s.World.Resume()
	s.advance(s.World.Now() + d)
}

// ContinueUntil resumes the world and runs in steps of `step` until done
// reports true or `cap` more virtual time has elapsed. It returns the
// final done() value. A measured-run completion that stops the engine
// mid-loop is resumed — the cap, not the stop, bounds this drive.
func (s *Scenario) ContinueUntil(done func() bool, step, cap sim.Time) bool {
	deadline := s.World.Now() + cap
	for !done() && s.World.Now() < deadline {
		s.World.Resume()
		next := s.World.Now() + step
		if next > deadline {
			next = deadline
		}
		s.advance(next)
	}
	return done()
}

// Go starts the world and drives it until every measured run reaches its
// target (or the horizon passes — a safety net against pathological
// schedules). It returns true when all runs completed in time.
func (s *Scenario) Go(horizon sim.Time) bool {
	s.World.Start()
	s.advance(horizon)
	return s.pending.Load() == 0
}

// auditViolationCap bounds how many violations a sick run retains.
const auditViolationCap = 16

// advance drives the engine to the target virtual time, pausing every
// AuditEvery to re-check World.Audit when the audit hook is enabled. A
// stopped engine (measured-run completion) ends the advance early; the
// hook still audits the shutdown state.
func (s *Scenario) advance(target sim.Time) {
	every := s.Cfg.AuditEvery
	if every <= 0 {
		s.World.RunUntil(target)
		return
	}
	for !s.World.Stopped() && s.World.Now() < target {
		next := s.World.Now() + every
		if next > target {
			next = target
		}
		s.World.RunUntil(next)
		s.audit()
	}
	s.audit()
}

// audit runs one World.Audit pass, retaining violations and notifying
// the OnAudit observer.
func (s *Scenario) audit() {
	errs := s.World.Audit()
	if s.Cfg.OnAudit != nil {
		s.Cfg.OnAudit(s.World.Now(), errs)
	}
	for _, err := range errs {
		if len(s.auditViols) >= auditViolationCap {
			return
		}
		s.auditViols = append(s.auditViols, fmt.Errorf("audit at %v: %w", s.World.Now(), err))
	}
}

// AuditViolations returns the invariant violations the periodic audit
// hook collected (nil when AuditEvery is zero or the run stayed
// healthy). At most auditViolationCap violations are retained.
func (s *Scenario) AuditViolations() []error {
	return append([]error(nil), s.auditViols...)
}
