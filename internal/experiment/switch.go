package experiment

import (
	"fmt"

	"atcsched/internal/cluster"
	"atcsched/internal/metrics"
	"atcsched/internal/report"
	"atcsched/internal/sim"
	"atcsched/internal/vmm"
	"atcsched/internal/workload"
)

// switchWindows splits the run into fixed observation windows; the flip
// happens after preWindows of baseline.
const (
	switchWindow  = 300 * sim.Millisecond // 10 scheduling periods
	preWindows    = 6
	postWindows   = 12
	settleWindows = 4 // last windows of the post phase = "recovered"
)

// spinWatch reports the cluster-wide mean spin latency accumulated
// since the previous delta call, using the monitors' lifetime counters
// (the per-period accumulators belong to the schedulers).
type spinWatch struct {
	sum   sim.Time
	count int64
}

func (sw *spinWatch) delta(w *vmm.World) sim.Time {
	var sum sim.Time
	var count int64
	for _, vm := range w.GuestVMs() {
		sum += vm.SpinMon.LifetimeSum()
		count += vm.SpinMon.LifetimeCount()
	}
	dSum, dCount := sum-sw.sum, count-sw.count
	sw.sum, sw.count = sum, count
	if dCount == 0 {
		return 0
	}
	return dSum / sim.Time(dCount)
}

func init() {
	register(Experiment{
		ID: "switch",
		Title: "Extension — live policy switching: spin latency before and after " +
			"flipping a running CR cluster to ATC at a period boundary",
		Run: func(sc Scale, seed uint64) ([]*report.Table, error) {
			nodes := sc.NodeSteps[0]
			cfg := cluster.DefaultConfig(nodes, cluster.CR)
			cfg.Seed = seed
			s, err := cluster.New(cfg)
			if err != nil {
				return nil, err
			}
			// Two overcommitted virtual clusters per the type-A placement,
			// running forever: the metric is the steady-state spin latency
			// per window, not completion time.
			prof := workload.NPB("lu", workload.ClassB)
			prof.Iterations = iterCount(prof.Iterations, sc.IterScale)
			for vc := 0; vc < 2; vc++ {
				vms := s.VirtualCluster(fmt.Sprintf("vc%d", vc), nodes, sc.VCPUsPerVM, nil)
				s.RunBackground(prof, vms)
			}

			t := report.New(
				"cluster-wide spin latency per window across a live CR→ATC switch",
				"Window", "t(end)", "Policy", "Spin mean")
			var watch spinWatch
			var pre, post []float64
			s.GoFor(switchWindow)
			mean := watch.delta(s.World)
			pre = append(pre, mean.Seconds())
			t.Add("1", fmt.Sprintf("%v", s.World.Eng.Now()), "CR", mean.String())
			for w := 2; w <= preWindows; w++ {
				s.ContinueFor(switchWindow)
				mean = watch.delta(s.World)
				pre = append(pre, mean.Seconds())
				t.Add(fmt.Sprint(w), fmt.Sprintf("%v", s.World.Eng.Now()), "CR", mean.String())
			}

			// The live flip: every node swaps to ATC at its next period
			// boundary; nothing is rebuilt or restarted.
			f, err := cluster.SchedSpec{Kind: cluster.ATC}.Factory()
			if err != nil {
				return nil, err
			}
			for _, n := range s.World.Nodes() {
				if err := n.SwapScheduler(f); err != nil {
					return nil, err
				}
			}

			for w := 1; w <= postWindows; w++ {
				s.ContinueFor(switchWindow)
				mean = watch.delta(s.World)
				post = append(post, mean.Seconds())
				t.Add(fmt.Sprint(preWindows+w), fmt.Sprintf("%v", s.World.Eng.Now()),
					s.World.Node(0).Scheduler().Name(), mean.String())
			}
			for _, n := range s.World.Nodes() {
				if n.Scheduler().Name() != "ATC" || n.Swaps() != 1 {
					return nil, fmt.Errorf("switch: node %d did not swap (sched %s, swaps %d)",
						n.ID(), n.Scheduler().Name(), n.Swaps())
				}
			}
			if errs := s.World.Audit(); len(errs) > 0 {
				return nil, fmt.Errorf("switch: audit after swap: %v", errs[0])
			}

			preMean := metrics.Mean(pre)
			settled := metrics.Mean(post[len(post)-settleWindows:])
			if settled > 0 {
				t.AddNote("steady CR spin mean %.0fµs → settled ATC %.0fµs (%.1fx lower); "+
					"ATC's controller needs a few periods of history after the flip before slices shorten.",
					preMean*1e6, settled*1e6, preMean/settled)
			}
			return []*report.Table{t}, nil
		},
	})
}
