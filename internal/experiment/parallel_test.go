package experiment

import (
	"strings"
	"testing"

	"atcsched/internal/runner"
)

// renderWithWorkers runs one experiment at the given pool width and
// returns every table rendered to text, exactly as the CLI prints it.
func renderWithWorkers(t *testing.T, id string, workers int) string {
	t.Helper()
	runner.SetDefaultWorkers(workers)
	defer runner.SetDefaultWorkers(0)
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	tables, err := e.Run(Small, 1)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, tb := range tables {
		sb.WriteString(tb.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestParallelEquivalence is the PR's core invariant: fanning the
// experiment cells across a worker pool must not change a byte of the
// rendered tables. fig5 covers the (kernel × slice) grids, fig10 the
// (kernel × nodes × approach) cube.
func TestParallelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario run")
	}
	for _, id := range []string{"fig5", "fig10"} {
		serial := renderWithWorkers(t, id, 1)
		parallel := renderWithWorkers(t, id, 4)
		if serial != parallel {
			t.Errorf("%s: parallel rendering differs from serial\n--- serial ---\n%s\n--- parallel ---\n%s",
				id, serial, parallel)
		}
	}
}

// TestMixedMemoConcurrent hammers the fig12/13/14 shared-scenario memo
// from many goroutines: every caller must get the same *mixedResult and
// the scenario must run exactly once.
func TestMixedMemoConcurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario run")
	}
	const callers = 8
	results := make([]*mixedResult, callers)
	errs := make([]error, callers)
	done := make(chan int, callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			results[i], errs[i] = mixedNonparallel(Small, 7)
			done <- i
		}(i)
	}
	for i := 0; i < callers; i++ {
		<-done
	}
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if results[i] != results[0] {
			t.Errorf("caller %d got a different result pointer", i)
		}
	}
}
