// Package daemon hosts the reusable logic of cmd/atcd, a userspace
// Adaptive Time-slice Control daemon. The paper implements ATC inside
// the Xen scheduler; outside a modified hypervisor the same control loop
// can run in dom0 userspace — sample per-VM spinlock latency, run
// Algorithms 1-2 (internal/core), and actuate per-VM slices through
// whatever knob the platform exposes (Xen's credit scheduler exposes a
// global tslice_ms; per-VM ratelimits and weights approximate the rest).
//
// The daemon is written against two small interfaces so the same loop
// drives a real actuator, a file-based one, or the in-memory fake used
// in tests and the demo.
//
// Two drivers share the per-node control logic (nodeLoop): Daemon runs
// one node's loop inline, and Fleet (fleet.go) shards many nodes' loops
// across goroutines behind a batched ingest queue.
package daemon

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"atcsched/internal/core"
	"atcsched/internal/sim"
	"atcsched/internal/telemetry"
)

// VMSample is one VM's state for one scheduling period.
type VMSample struct {
	ID int
	// AvgSpinLatency is the mean guest spinlock latency over the period.
	AvgSpinLatency sim.Time
	// Parallel classifies the VM (tightly-coupled parallel application).
	Parallel bool
	// AdminSlice, when nonzero, pins a non-parallel VM's slice.
	AdminSlice sim.Time
	// Seq, when nonzero, is the monitor's sample sequence number for
	// this VM; a repeated Seq marks the reading as stale and the daemon
	// skips it rather than feeding old data to the controller. Zero
	// means the source does not track sequences (every sample is taken
	// as fresh — the pre-fault-plane behaviour).
	Seq uint64
}

// Source provides per-period latency samples (e.g., parsed from a guest
// agent, xenbus, or a trace file).
type Source interface {
	// Sample returns the current period's VM population. io.EOF ends the
	// control loop cleanly.
	Sample() ([]VMSample, error)
}

// Actuator applies the computed slices (e.g., writes hypervisor knobs).
type Actuator interface {
	Apply(slices map[int]sim.Time) error
}

// Options harden the control loop against a faulty environment.
type Options struct {
	// MaxRetries bounds the re-attempts after a failed Apply within one
	// period (default 3; each retry doubles the backoff). When all
	// attempts fail the period is dropped: no state is committed and
	// the loop moves on to the next sample.
	MaxRetries int
	// RetryBackoff is the delay before the first retry (default 10 ms,
	// doubling per retry).
	RetryBackoff time.Duration
	// Sleep performs the backoff wait (tests inject a recorder). The
	// wait is wall-clock — actuator recovery is a property of the real
	// platform, not of virtual time. When nil (the default) the daemon
	// waits on the wall clock but wakes early once Stop is called, so a
	// shutdown is not held hostage by a long backoff; the remaining
	// retry attempts still run, draining the in-flight actuation.
	Sleep func(time.Duration)
	// GiveUpAfter is the number of consecutive dropped periods after
	// which the loop gives up with a terminal error (default 5).
	GiveUpAfter int
	// StaleAfter is the number of consecutive periods a VM's sample may
	// be stale or missing before the daemon stops holding its last
	// slice and starts degrading it toward the default (default 2).
	StaleAfter int
}

// DefaultOptions returns the hardened-loop defaults.
func DefaultOptions() Options {
	return Options{
		MaxRetries:   3,
		RetryBackoff: 10 * time.Millisecond,
		GiveUpAfter:  5,
		StaleAfter:   2,
	}
}

// sanitize clamps nonsense option values.
func (o *Options) sanitize() {
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	}
	if o.GiveUpAfter < 1 {
		o.GiveUpAfter = 1
	}
	if o.StaleAfter < 1 {
		o.StaleAfter = 1
	}
}

// Option customizes a Daemon at construction.
type Option func(*Options)

// WithRetry sets the per-period retry budget and initial backoff.
func WithRetry(max int, backoff time.Duration) Option {
	return func(o *Options) { o.MaxRetries, o.RetryBackoff = max, backoff }
}

// WithSleep replaces the backoff wait (tests).
func WithSleep(fn func(time.Duration)) Option {
	return func(o *Options) { o.Sleep = fn }
}

// WithGiveUpAfter sets the consecutive-dropped-period limit.
func WithGiveUpAfter(n int) Option {
	return func(o *Options) { o.GiveUpAfter = n }
}

// WithStaleAfter sets the blackout threshold before degradation.
func WithStaleAfter(n int) Option {
	return func(o *Options) { o.StaleAfter = n }
}

// Stats counts the hardened loop's fault handling.
type Stats struct {
	// Retries counts Apply re-attempts (not first attempts).
	Retries uint64 `json:"retries"`
	// DroppedPeriods counts periods whose actuation never landed; their
	// decisions were discarded and no state was committed.
	DroppedPeriods uint64 `json:"droppedPeriods"`
	// StaleSamples counts samples skipped because their sequence number
	// did not advance.
	StaleSamples uint64 `json:"staleSamples"`
	// Degraded counts per-VM period decisions where a monitoring
	// blackout moved a parallel VM's slice toward the default instead
	// of acting on stale data.
	Degraded uint64 `json:"degraded"`
}

// add accumulates another node's counters (fleet aggregation).
func (s *Stats) add(o Stats) {
	s.Retries += o.Retries
	s.DroppedPeriods += o.DroppedPeriods
	s.StaleSamples += o.StaleSamples
	s.Degraded += o.Degraded
}

// vmMeta is the classification the daemon remembers for VMs it has
// seen, so it can keep deciding for them through a monitoring blackout.
type vmMeta struct {
	parallel bool
	admin    sim.Time
}

// nodeLoop is the per-node heart of the control plane: one controller
// plus the commit-on-success / stale-detection / blackout-degradation /
// retry-accounting state hardened in PR 5. Daemon drives exactly one
// nodeLoop inline; Fleet owns one per fleet node, sharded across
// goroutines. The split is mechanical — decide/commit/applyWithRetry
// are the former Daemon.Step body — so both drivers are byte-identical
// in behaviour per node.
type nodeLoop struct {
	ctl  *core.Controller
	opts Options
	last map[int]sim.Time

	// lastSeq/staleRuns/known implement stale detection and blackout
	// degradation; consecDrops drives the give-up policy.
	lastSeq     map[int]uint64
	staleRuns   map[int]int
	known       map[int]vmMeta
	consecDrops int

	periods uint64
	stats   Stats
}

// newNodeLoop builds one node's control state. opts must already be
// sanitized; cfg zero-value panics (use core.DefaultConfig()).
func newNodeLoop(cfg core.Config, opts Options) *nodeLoop {
	return &nodeLoop{
		ctl:       core.NewController(cfg),
		opts:      opts,
		last:      make(map[int]sim.Time),
		lastSeq:   make(map[int]uint64),
		staleRuns: make(map[int]int),
		known:     make(map[int]vmMeta),
	}
}

// decide consumes one period's samples: stale-filter, feed the
// controller, run Algorithm 2, degrade blacked-out VMs. It advances
// controller history but commits nothing — call commit only after the
// actuation lands, so a failed Apply can never record a slice that
// never took effect.
func (l *nodeLoop) decide(samples []VMSample) map[int]sim.Time {
	seen := make(map[int]bool, len(samples))
	infos := make([]core.VMInfo, 0, len(samples))
	for _, s := range samples {
		seen[s.ID] = true
		if _, ok := l.known[s.ID]; !ok {
			l.known[s.ID] = vmMeta{parallel: s.Parallel, admin: s.AdminSlice}
		}
		if s.Seq != 0 && s.Seq <= l.lastSeq[s.ID] {
			// The monitor is repeating itself; skip the observation
			// rather than feeding old data back into the controller.
			l.stats.StaleSamples++
			l.staleRuns[s.ID]++
			continue
		}
		if s.Seq != 0 {
			l.lastSeq[s.ID] = s.Seq
		}
		l.staleRuns[s.ID] = 0
		l.known[s.ID] = vmMeta{parallel: s.Parallel, admin: s.AdminSlice}
		inForce, ok := l.last[s.ID]
		if !ok {
			inForce = l.ctl.Config().Default
		}
		l.ctl.Observe(s.ID, s.AvgSpinLatency, inForce)
		infos = append(infos, core.VMInfo{ID: s.ID, Parallel: s.Parallel, AdminSlice: s.AdminSlice})
	}
	// A known VM missing from the sample set entirely is a dropout —
	// the other face of a monitoring blackout.
	for id := range l.known {
		if !seen[id] {
			l.staleRuns[id]++
		}
	}
	slices := l.ctl.NodeSlices(infos)
	l.degradeBlackedOut(slices)
	return slices
}

// commit records a landed actuation: the slices become the in-force
// history and the period counts.
func (l *nodeLoop) commit(slices map[int]sim.Time) {
	for id, sl := range slices {
		l.last[id] = sl
	}
	l.periods++
}

// degradeBlackedOut overrides the decisions for VMs whose monitoring is
// stale or missing: hold the last applied slice for the first
// StaleAfter-1 blacked-out periods, then walk a parallel VM's slice
// toward the controller default by Alpha per period — the same fallback
// the paper applies to VMs it cannot adapt. Non-parallel VMs revert to
// their admin slice (or the default) immediately at the threshold.
func (l *nodeLoop) degradeBlackedOut(slices map[int]sim.Time) {
	def := l.ctl.Config().Default
	step := l.ctl.Config().Alpha
	for id, runs := range l.staleRuns {
		if runs == 0 {
			continue
		}
		cur, ok := l.last[id]
		if !ok {
			cur = def
		}
		meta := l.known[id]
		switch {
		case runs < l.opts.StaleAfter:
			slices[id] = cur
		case !meta.parallel:
			if meta.admin > 0 {
				slices[id] = meta.admin
			} else {
				slices[id] = def
			}
		default:
			next := stepToward(cur, def, step)
			if next != cur {
				l.stats.Degraded++
			}
			slices[id] = next
		}
	}
}

// stepToward moves cur toward target by at most step.
func stepToward(cur, target, step sim.Time) sim.Time {
	switch {
	case cur < target:
		if cur+step >= target {
			return target
		}
		return cur + step
	case cur > target:
		if cur-step <= target {
			return target
		}
		return cur - step
	}
	return cur
}

// applyWithRetry drives one period's actuation through the retry
// policy. apply performs one attempt; wait performs the backoff (nil
// skips waiting). It returns (true, nil) when the slices landed,
// (false, nil) when the period was dropped after exhausting retries,
// and a terminal error after GiveUpAfter consecutive dropped periods.
func (l *nodeLoop) applyWithRetry(slices map[int]sim.Time, apply func(map[int]sim.Time) error, wait func(time.Duration)) (bool, error) {
	backoff := l.opts.RetryBackoff
	var err error
	for attempt := 0; ; attempt++ {
		if err = apply(slices); err == nil {
			l.consecDrops = 0
			return true, nil
		}
		if attempt >= l.opts.MaxRetries {
			break
		}
		l.stats.Retries++
		if wait != nil && backoff > 0 {
			wait(backoff)
		}
		backoff *= 2
	}
	l.stats.DroppedPeriods++
	l.consecDrops++
	if l.consecDrops >= l.opts.GiveUpAfter {
		return false, fmt.Errorf("daemon: giving up after %d consecutive dropped periods (%d attempts each): %w",
			l.consecDrops, l.opts.MaxRetries+1, err)
	}
	return false, nil
}

// Daemon wires a Source and an Actuator to the ATC controller for one
// node, driven inline.
type Daemon struct {
	loop *nodeLoop
	src  Source
	act  Actuator
	opts Options

	// stop asks Run to return at the next step boundary (signal-driven
	// shutdown); stopc additionally wakes a backoff wait early so the
	// in-flight actuation drains instead of blocking shutdown.
	stop     atomic.Bool
	stopc    chan struct{}
	stopOnce sync.Once

	// tel/telClock publish controller decisions into a telemetry
	// registry when attached.
	tel      *telemetry.Registry
	telClock func() sim.Time
	telSteps uint64
}

// New builds a daemon; cfg zero-value panics (use core.DefaultConfig()).
// Options default to DefaultOptions.
func New(cfg core.Config, src Source, act Actuator, opts ...Option) *Daemon {
	if src == nil || act == nil {
		panic("daemon: nil source or actuator")
	}
	o := DefaultOptions()
	for _, fn := range opts {
		fn(&o)
	}
	o.sanitize()
	return &Daemon{
		loop:  newNodeLoop(cfg, o),
		src:   src,
		act:   act,
		opts:  o,
		stopc: make(chan struct{}),
	}
}

// Controller exposes the underlying controller (diagnostics).
func (d *Daemon) Controller() *core.Controller { return d.loop.ctl }

// SetTelemetry attaches a registry (usually a Plane's global registry)
// the daemon publishes controller decisions into: a "decision" span per
// step, apply/drop/giveup counters, and per-VM slice series. clock
// supplies the sim-time axis (e.g. World.Now for the sim backend); when
// nil, steps are placed on a synthetic 30 ms grid.
func (d *Daemon) SetTelemetry(reg *telemetry.Registry, clock func() sim.Time) {
	d.tel = reg
	d.telClock = clock
}

// Stop asks Run to return cleanly before its next step and wakes any
// in-progress backoff wait, letting the current period's remaining
// retry attempts drain immediately. Safe to call from another goroutine
// (e.g. a signal handler).
func (d *Daemon) Stop() {
	d.stop.Store(true)
	d.stopOnce.Do(func() { close(d.stopc) })
}

// wait performs one retry backoff. An injected Options.Sleep is used
// verbatim; the default waits on the wall clock but returns as soon as
// Stop is called so shutdown is never held behind a long backoff —
// the retry attempts themselves still run (stop drains, it does not
// abandon the in-flight actuation).
func (d *Daemon) wait(dt time.Duration) {
	if d.opts.Sleep != nil {
		d.opts.Sleep(dt)
		return
	}
	t := time.NewTimer(dt)
	defer t.Stop()
	select {
	case <-t.C:
	case <-d.stopc:
	}
}

// telNow returns the current telemetry timestamp.
func (d *Daemon) telNow() sim.Time {
	if d.telClock != nil {
		return d.telClock()
	}
	return sim.Time(d.telSteps) * 30 * sim.Millisecond
}

// publishStep records one control period's outcome in the telemetry
// registry (tel is non-nil when called).
func (d *Daemon) publishStep(start sim.Time, outcome string, slices map[int]sim.Time) {
	d.telSteps++
	now := d.telNow()
	if now < start {
		now = start
	}
	lab := telemetry.GlobalLabel()
	d.tel.AddSpan(telemetry.Span{
		Name: "decision", Track: "daemon", Node: -1, Start: start, End: now,
	})
	d.tel.Add("daemon_decision_"+outcome, lab, 1)
	d.tel.SetCount("daemon_retries", lab, d.loop.stats.Retries)
	d.tel.SetCount("daemon_dropped_periods", lab, d.loop.stats.DroppedPeriods)
	d.tel.SetCount("daemon_stale_samples", lab, d.loop.stats.StaleSamples)
	d.tel.SetCount("daemon_degraded", lab, d.loop.stats.Degraded)
	for id, sl := range slices {
		d.tel.Point("daemon_slice_ns",
			telemetry.Label{Node: -1, VM: fmt.Sprintf("vm%d", id)}, now, float64(sl))
	}
}

// Periods returns how many control periods have committed (a dropped
// period does not count — its decisions never took effect).
func (d *Daemon) Periods() uint64 { return d.loop.periods }

// Stats returns the fault-handling counters.
func (d *Daemon) Stats() Stats { return d.loop.stats }

// Step executes one control period: sample, observe, decide, actuate.
// It returns io.EOF when the source is exhausted. Controller history
// (`last`, `periods`) is committed only after the actuation succeeds,
// so a failed Apply can never record a slice that never took effect. A
// period whose actuation fails through all retries is dropped (nil
// error — the loop continues) unless GiveUpAfter consecutive periods
// have dropped, which is terminal.
func (d *Daemon) Step() error {
	var telStart sim.Time
	if d.tel != nil {
		telStart = d.telNow()
	}
	samples, err := d.src.Sample()
	if err != nil {
		return err
	}
	slices := d.loop.decide(samples)
	committed, err := d.loop.applyWithRetry(slices, d.act.Apply, d.wait)
	if err != nil {
		if d.tel != nil {
			d.publishStep(telStart, "giveup", slices)
		}
		return err
	}
	if !committed {
		if d.tel != nil {
			d.publishStep(telStart, "drop", slices)
		}
		return nil // period dropped; no state committed
	}
	d.loop.commit(slices)
	if d.tel != nil {
		d.publishStep(telStart, "apply", slices)
	}
	return nil
}

// Run executes Step until the source returns io.EOF (clean end), a step
// fails terminally, or Stop is called. Transient actuator failures are
// absorbed by Step's retry/drop policy and do not end the loop. A Stop
// arriving mid-step never truncates it: the step's remaining retry
// attempts run (with their backoff waits cut short), so the final Apply
// is drained, not dropped.
func (d *Daemon) Run() error {
	for !d.stop.Load() {
		if err := d.Step(); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
	}
	return nil
}

// MapActuator records the last applied slices in memory (tests, demo).
type MapActuator struct {
	Last map[int]sim.Time
	// Applies counts Apply calls.
	Applies uint64
}

// Apply implements Actuator.
func (m *MapActuator) Apply(slices map[int]sim.Time) error {
	if m.Last == nil {
		m.Last = make(map[int]sim.Time)
	}
	for id, sl := range slices {
		m.Last[id] = sl
	}
	m.Applies++
	return nil
}

// WriterActuator renders each period's slices as "vm<id> <micros>us"
// lines — the shape a real deployment would translate into hypervisor
// calls (e.g., "xl sched-credit -d <dom> -t <tslice>").
type WriterActuator struct {
	W io.Writer
}

// Apply implements Actuator.
func (w WriterActuator) Apply(slices map[int]sim.Time) error {
	ids := make([]int, 0, len(slices))
	for id := range slices {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if _, err := fmt.Fprintf(w.W, "vm%d %.0fus\n", id, slices[id].Micros()); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w.W, "--")
	return err
}

// SliceSource replays a fixed schedule of periods (tests, demo).
type SliceSource struct {
	Periods [][]VMSample
	i       int
}

// Sample implements Source.
func (s *SliceSource) Sample() ([]VMSample, error) {
	if s.i >= len(s.Periods) {
		return nil, io.EOF
	}
	p := s.Periods[s.i]
	s.i++
	return p, nil
}
