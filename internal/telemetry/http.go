package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
)

// promName converts a metric name ("spin_wait_ns" or "daemon.apply") to
// a Prometheus-legal name with the atc_ prefix.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("atc_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabels renders a label set as {node="0",vm="vm1"}; the global
// label (-1, "") renders as no braces at all.
func promLabels(lab Label, extra ...string) string {
	var parts []string
	if lab.Node >= 0 {
		parts = append(parts, fmt.Sprintf(`node="%d"`, lab.Node))
	}
	if lab.VM != "" {
		parts = append(parts, fmt.Sprintf(`vm="%s"`, lab.VM))
	}
	for i := 0; i+1 < len(extra); i += 2 {
		parts = append(parts, fmt.Sprintf(`%s="%s"`, extra[i], extra[i+1]))
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WritePrometheus renders a snapshot as Prometheus text exposition
// (version 0.0.4). Counters and gauges map directly; each series
// contributes a gauge holding its last sample; histograms become
// standard _bucket/_sum/_count families with le bounds in seconds of
// virtual time.
func WritePrometheus(w *bufio.Writer, snap Snapshot) error {
	typed := map[string]bool{}
	header := func(name, typ string) {
		if !typed[name] {
			typed[name] = true
			fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
		}
	}
	for _, c := range snap.Counters {
		n := promName(c.Name) + "_total"
		header(n, "counter")
		fmt.Fprintf(w, "%s%s %d\n", n, promLabels(c.Label), c.Value)
	}
	for _, g := range snap.Gauges {
		n := promName(g.Name)
		header(n, "gauge")
		fmt.Fprintf(w, "%s%s %g\n", n, promLabels(g.Label), g.Value)
	}
	for _, s := range snap.Series {
		if len(s.Points) == 0 {
			continue
		}
		n := promName(s.Name) + "_last"
		header(n, "gauge")
		last := s.Points[len(s.Points)-1]
		fmt.Fprintf(w, "%s%s %g\n", n, promLabels(s.Label), last.V)
	}
	for _, h := range snap.Histograms {
		n := promName(h.Name)
		header(n+"_bucket", "histogram")
		for i, b := range h.Bounds {
			fmt.Fprintf(w, "%s_bucket%s %d\n", n,
				promLabels(h.Label, "le", fmt.Sprintf("%g", b.Seconds())), h.Counts[i])
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", n, promLabels(h.Label, "le", "+Inf"), h.Count)
		fmt.Fprintf(w, "%s_sum%s %g\n", n, promLabels(h.Label), h.Sum.Seconds())
		fmt.Fprintf(w, "%s_count%s %d\n", n, promLabels(h.Label), h.Count)
	}
	return w.Flush()
}

// debugSnapshot is the /debug/atc JSON shape: the full snapshot plus a
// summary block for quick inspection.
type debugSnapshot struct {
	Summary  map[string]any `json:"summary"`
	Snapshot Snapshot       `json:"snapshot"`
}

// Handler serves the plane over HTTP:
//
//	/metrics    — Prometheus text exposition
//	/debug/atc  — full JSON snapshot with a summary header
//
// snapFn is called per request, so a live run is scraped mid-flight.
// extra summary fields (e.g. daemon stats) come from summaryFn (may be
// nil).
func Handler(snapFn func() Snapshot, summaryFn func() map[string]any) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		bw := bufio.NewWriter(w)
		_ = WritePrometheus(bw, snapFn())
	})
	mux.HandleFunc("/debug/atc", func(w http.ResponseWriter, r *http.Request) {
		snap := snapFn()
		sum := map[string]any{
			"counters": len(snap.Counters),
			"gauges":   len(snap.Gauges),
			"series":   len(snap.Series),
			"spans":    len(snap.Spans),
		}
		if summaryFn != nil {
			ks := summaryFn()
			keys := make([]string, 0, len(ks))
			for k := range ks {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				sum[k] = ks[k]
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		_ = enc.Encode(debugSnapshot{Summary: sum, Snapshot: snap})
	})
	return mux
}
