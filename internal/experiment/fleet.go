package experiment

import (
	"fmt"
	"runtime"
	"strconv"
	"time"

	"atcsched/internal/core"
	"atcsched/internal/daemon"
	"atcsched/internal/report"
	"atcsched/internal/telemetry"
	"atcsched/internal/workload"
)

// The fleet experiment measures the control plane itself — the sharded
// atcd pipeline of internal/daemon.Fleet — rather than the simulation
// core (that is the scale experiment's job) or scheduler policy. Each
// cell drives a hollow N-node cluster through the full ingest → decide →
// actuate pipeline at a given shard count and records decisions/s and
// the p99 decision latency (batch enqueue to actuation applied).

// fleetPeriods is the number of control periods each cell runs. Constant
// across cells so the decision count scales with the node count.
const fleetPeriods = 40

// fleetLadder returns the hollow-node counts and fleet shard counts for
// a scale.
func fleetLadder(sc Scale) (nodes []int, shards []int) {
	switch sc.Name {
	case "small":
		return []int{64}, []int{1, 2}
	default: // medium, full
		return []int{64, 256, 1024}, []int{1, 2, 4, 8}
	}
}

// fleetCell is one (nodes, fleet shards) measurement, as recorded in
// BENCH_scale.json.
type fleetCell struct {
	Nodes         int     `json:"nodes"`
	FleetShards   int     `json:"fleet_shards"`
	Periods       uint64  `json:"periods"`
	Decisions     uint64  `json:"decisions"`
	WallS         float64 `json:"wall_s"`
	DecisionsPS   float64 `json:"decisions_per_s"`
	P99DecisionUS float64 `json:"p99_decision_us"`
	SimS          float64 `json:"sim_s"`
	PeakRSSMB     float64 `json:"peak_rss_mb"`
}

// runFleetCell builds a hollow fleet of n nodes sharded s ways, runs it
// for fleetPeriods control periods, and returns the cell's measurements.
func runFleetCell(n, shards int, seed uint64) (fleetCell, error) {
	sb, err := daemon.NewSimBackend(daemon.SimBackendConfig{
		Nodes:      n,
		Class:      workload.ClassB,
		MaxPeriods: fleetPeriods,
		Seed:       seed,
		Hollow:     true,
	})
	if err != nil {
		return fleetCell{}, err
	}
	reg := telemetry.NewRegistry(telemetry.Options{})
	f := daemon.NewFleet(core.DefaultConfig(), sb, sb, daemon.FleetOptions{
		Shards:   shards,
		MaxNodes: n,
	})
	defer f.Close()
	f.SetTelemetry(reg, sb.Now)

	start := time.Now()
	runErr := f.Run()
	wall := time.Since(start).Seconds()
	if runErr != nil && !daemon.IsDone(runErr) {
		return fleetCell{}, runErr
	}

	cell := fleetCell{
		Nodes:       n,
		FleetShards: shards,
		Periods:     f.Periods(),
		Decisions:   f.Decisions(),
		WallS:       wall,
		SimS:        sb.Now().Seconds(),
		PeakRSSMB:   peakRSSMB(),
	}
	if wall > 0 {
		cell.DecisionsPS = float64(cell.Decisions) / wall
	}
	for _, h := range reg.Snapshot().Histograms {
		if h.Name == "fleet_decision_latency" {
			cell.P99DecisionUS = h.Quantile(0.99).Micros()
		}
	}
	return cell, nil
}

func init() {
	register(Experiment{
		ID: "fleet",
		Title: "Extension — fleet control-plane sweep: atcd decisions/s and " +
			"p99 decision latency, 64 to 1024 hollow nodes, 1 to 8 fleet shards",
		Bench: true,
		Run: func(sc Scale, seed uint64) ([]*report.Table, error) {
			nodeSteps, shardSteps := fleetLadder(sc)
			t := report.New(
				fmt.Sprintf("Fleet sweep (%s): %v nodes x fleet shards %v, %d control periods per cell",
					sc.Name, nodeSteps, shardSteps, fleetPeriods),
				"nodes", "shards", "periods", "decisions", "wall (s)", "decisions/s",
				"p99 decision", "vs 1 shard", "peak RSS MB")
			run := scaleRun{
				Date:  time.Now().Format("2006-01-02"),
				Go:    runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
				Cores: runtime.NumCPU(),
				Scale: sc.Name,
				Seed:  seed,
			}
			for _, n := range nodeSteps {
				var basePS float64
				for _, shards := range shardSteps {
					cell, err := runFleetCell(n, shards, seed)
					if err != nil {
						return nil, fmt.Errorf("fleet: nodes=%d shards=%d: %w", n, shards, err)
					}
					run.Fleet = append(run.Fleet, cell)
					vsBase := "baseline"
					if shards == 1 {
						basePS = cell.DecisionsPS
					} else if basePS > 0 {
						vsBase = fmt.Sprintf("%.2fx", cell.DecisionsPS/basePS)
					}
					t.Add(strconv.Itoa(n), strconv.Itoa(shards),
						strconv.FormatUint(cell.Periods, 10),
						strconv.FormatUint(cell.Decisions, 10),
						fmt.Sprintf("%.3f", cell.WallS),
						fmt.Sprintf("%.0f", cell.DecisionsPS),
						fmt.Sprintf("%.0fus", cell.P99DecisionUS),
						vsBase,
						fmt.Sprintf("%.1f", cell.PeakRSSMB))
				}
			}
			t.AddNote("each cell drives a hollow cluster (one light VM per node) through the full "+
				"fleet pipeline: ingest ring -> per-shard decider -> bounded actuation queue. "+
				"p99 decision latency is batch-enqueue to actuation-applied (wall clock). "+
				"Host has %d core(s); shard speedups need multiple cores.", runtime.NumCPU())
			t.AddNote("wall-clock per cell includes advancing the simulated world between control " +
				"periods, so decisions/s understates the pipeline-only ceiling at large node counts.")
			if err := appendBenchScale(run); err != nil {
				t.AddNote("WARNING: could not append to %s: %v", benchScalePath, err)
			} else {
				t.AddNote("appended run to %s", benchScalePath)
			}
			return []*report.Table{t}, nil
		},
	})
}
