package extslice_test

import (
	"testing"

	"atcsched/internal/sched/credit"
	"atcsched/internal/sched/extslice"
	"atcsched/internal/sim"
	"atcsched/internal/vmm"
	"atcsched/internal/vmmtest"
)

func TestExternalSliceApplied(t *testing.T) {
	w := vmmtest.World(1, 1, extslice.Factory(credit.DefaultOptions()))
	node := w.Node(0)
	vm := node.NewVM("x", vmm.ClassParallel, 1, 0, 1)
	s := node.Scheduler().(*extslice.Scheduler)
	if s.Name() != "EXT" {
		t.Errorf("Name = %q", s.Name())
	}
	v := vm.VCPU(0)
	if got := s.Slice(v); got != 30*sim.Millisecond {
		t.Errorf("default slice = %v", got)
	}
	s.Set(vm.ID(), 2*sim.Millisecond)
	if got := s.Slice(v); got != 2*sim.Millisecond {
		t.Errorf("set slice = %v", got)
	}
	if got := s.Current(vm.ID()); got != 2*sim.Millisecond {
		t.Errorf("Current = %v", got)
	}
	s.Set(vm.ID(), 0) // reset
	if got := s.Slice(v); got != 30*sim.Millisecond {
		t.Errorf("reset slice = %v", got)
	}
}

func TestExternalSliceGovernsPreemption(t *testing.T) {
	// Two hogs; slice set externally to 1ms must produce ~30x the
	// context switches of the default.
	run := func(slice sim.Time) uint64 {
		w := vmmtest.World(1, 1, extslice.Factory(credit.DefaultOptions()))
		node := w.Node(0)
		var vms []*vmm.VM
		for i := 0; i < 2; i++ {
			vm := node.NewVM("hog", vmm.ClassNonParallel, 1, 0, 1)
			vmmtest.Loop(vm.VCPU(0), vmm.Compute(sim.Second))
			vms = append(vms, vm)
		}
		if slice > 0 {
			s := node.Scheduler().(*extslice.Scheduler)
			for _, vm := range vms {
				s.Set(vm.ID(), slice)
			}
		}
		w.Start()
		w.RunUntil(sim.Second)
		return node.CtxSwitches()
	}
	fine := run(sim.Millisecond)
	coarse := run(0)
	if fine < 10*coarse {
		t.Errorf("ctx switches fine=%d coarse=%d", fine, coarse)
	}
}
