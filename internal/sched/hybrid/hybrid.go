// Package hybrid implements HY, the hybrid scheduling framework of the
// paper's related work ([6]): VMs are classified as concurrent
// (parallel) or high-throughput, and concurrent VMs' VCPUs are promoted
// — they enqueue at BOOST priority and are gang-aligned each period — so
// multi-threaded workloads inside an SMP VM synchronize cheaply. The
// paper's critique, which this implementation reproduces, is that the
// blanket priority promotion degrades co-located non-parallel tenants
// and does nothing for synchronization *across* VMs of a virtual
// cluster.
//
// HY is not part of the paper's evaluated comparison set; atcsched ships
// it as an extension baseline.
package hybrid

import (
	"atcsched/internal/sched/credit"
	"atcsched/internal/vmm"
)

// Options configures the HY scheduler.
type Options struct {
	// Credit configures the underlying credit core.
	Credit credit.Options `json:"credit,omitzero"`
}

// DefaultOptions returns stock HY parameters.
func DefaultOptions() Options { return Options{Credit: credit.DefaultOptions()} }

// Scheduler is HY layered over the credit core.
type Scheduler struct {
	*credit.Scheduler
}

// New builds an HY scheduler for node n.
func New(n *vmm.Node, opts Options) *Scheduler {
	return &Scheduler{Scheduler: credit.New(n, opts.Credit)}
}

// Factory returns a vmm.SchedulerFactory producing HY schedulers.
func Factory(opts Options) vmm.SchedulerFactory {
	return func(n *vmm.Node) vmm.Scheduler { return New(n, opts) }
}

// Name implements vmm.Scheduler.
func (s *Scheduler) Name() string { return "HY" }

// Enqueue implements vmm.Scheduler: concurrent (parallel-class) VMs'
// VCPUs are promoted to BOOST on every enqueue — the framework's
// priority promotion.
func (s *Scheduler) Enqueue(v *vmm.VCPU, reason vmm.EnqueueReason) {
	s.Scheduler.Enqueue(v, reason)
	if v.VM().Class() == vmm.ClassParallel {
		d := s.Data(v)
		if d.Prio != credit.PrioBoost {
			// Re-insert at the promoted class. Tail of the class, not the
			// queue head: a slice-end preempt that re-entered at the head
			// would immediately win the next pick and starve every other
			// promoted VCPU on a busy PCPU.
			if s.Dequeue(v) {
				s.EnqueueBoostTail(v, d.Queue)
			}
		}
	}
}

// WakePreempts implements vmm.Scheduler: a promoted VCPU preempts
// anything below BOOST.
func (s *Scheduler) WakePreempts(p *vmm.PCPU, woken *vmm.VCPU) bool {
	if woken.VM().Class() == vmm.ClassParallel {
		cur := p.Current()
		if cur == nil {
			return true
		}
		return s.Data(cur).Prio != credit.PrioBoost || cur.VM().Class() != vmm.ClassParallel
	}
	return s.Scheduler.WakePreempts(p, woken)
}
