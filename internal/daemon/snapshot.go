package daemon

import (
	"encoding/json"
	"fmt"
	"sort"

	"atcsched/internal/core"
	"atcsched/internal/sim"
	"atcsched/internal/telemetry"
)

// SnapshotVersion is the fleet snapshot schema version. Bump it — and
// extend DecodeSnapshot — whenever a field changes meaning; decode
// rejects any other version outright rather than guessing.
const SnapshotVersion = 1

// VMSnapshot is one VM's control state inside a NodeSnapshot. Times are
// sim.Time nanoseconds; Lat/Slice are the controller's history windows,
// oldest first, present only for VMs the controller has observed.
type VMSnapshot struct {
	ID        int        `json:"id"`
	Known     bool       `json:"known,omitempty"`
	Parallel  bool       `json:"parallel,omitempty"`
	Admin     sim.Time   `json:"admin,omitempty"`
	HasLast   bool       `json:"hasLast,omitempty"`
	Last      sim.Time   `json:"last,omitempty"`
	Seq       uint64     `json:"seq,omitempty"`
	StaleRuns int        `json:"staleRuns,omitempty"`
	Observed  int        `json:"observed,omitempty"`
	Lat       []sim.Time `json:"lat,omitempty"`
	Slice     []sim.Time `json:"slice,omitempty"`
}

// NodeSnapshot is one fleet node's control state.
type NodeSnapshot struct {
	Node        int          `json:"node"`
	Periods     uint64       `json:"periods"`
	ConsecDrops int          `json:"consecDrops,omitempty"`
	Stats       Stats        `json:"stats"`
	VMs         []VMSnapshot `json:"vms,omitempty"`
}

// FleetSnapshot is the deterministic, JSON-versioned image of the whole
// control plane: per-node controller history, last-applied slices,
// sequence numbers, stale/backoff accounting, plus the fleet queue
// cursors (Periods/Decisions/Overflow). It holds no wall-clock state,
// so a restore never perturbs the determinism fingerprint. Snapshots
// are taken at the Step barrier, when the ingest ring and actuation
// queues are empty — the queue cursor is the period count.
type FleetSnapshot struct {
	Version   int            `json:"version"`
	Config    core.Config    `json:"config"`
	Periods   uint64         `json:"periods"`
	Decisions uint64         `json:"decisions"`
	Overflow  uint64         `json:"overflow,omitempty"`
	Nodes     []NodeSnapshot `json:"nodes"`
}

// Encode renders the snapshot as deterministic indented JSON (sorted
// nodes and VMs, stable field order) with a trailing newline.
func (s *FleetSnapshot) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// DecodeSnapshot parses and version-checks a snapshot.
func DecodeSnapshot(data []byte) (*FleetSnapshot, error) {
	var probe struct {
		Version int `json:"version"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("daemon: snapshot: %w", err)
	}
	if probe.Version != SnapshotVersion {
		return nil, fmt.Errorf("daemon: snapshot version %d, want %d", probe.Version, SnapshotVersion)
	}
	var s FleetSnapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("daemon: snapshot: %w", err)
	}
	return &s, nil
}

// Snapshot captures the fleet's control state. Call it at a Step
// barrier (or after Stop+Drain): in-flight work is not represented, by
// design — a decision that has not landed was never committed.
func (f *Fleet) Snapshot() *FleetSnapshot {
	s := &FleetSnapshot{
		Version:   SnapshotVersion,
		Config:    f.cfg,
		Periods:   f.Periods(),
		Decisions: f.Decisions(),
		Overflow:  f.Overflow(),
	}
	for _, id := range f.Nodes() {
		sh := f.shardOf(id)
		sh.mu.Lock()
		fn := sh.nodes[id]
		sh.mu.Unlock()
		if fn == nil {
			continue
		}
		fn.mu.Lock()
		s.Nodes = append(s.Nodes, snapshotNode(id, fn.loop))
		fn.mu.Unlock()
	}
	return s
}

// snapshotNode images one node's loop (caller holds the node lock).
func snapshotNode(id int, l *nodeLoop) NodeSnapshot {
	ns := NodeSnapshot{
		Node:        id,
		Periods:     l.periods,
		ConsecDrops: l.consecDrops,
		Stats:       l.stats,
	}
	ids := map[int]bool{}
	for vid := range l.last {
		ids[vid] = true
	}
	for vid := range l.lastSeq {
		ids[vid] = true
	}
	for vid := range l.staleRuns {
		ids[vid] = true
	}
	for vid := range l.known {
		ids[vid] = true
	}
	for _, vid := range l.ctl.TrackedVMs() {
		ids[vid] = true
	}
	sorted := make([]int, 0, len(ids))
	for vid := range ids {
		sorted = append(sorted, vid)
	}
	sort.Ints(sorted)
	for _, vid := range sorted {
		vs := VMSnapshot{ID: vid, Seq: l.lastSeq[vid], StaleRuns: l.staleRuns[vid]}
		if meta, ok := l.known[vid]; ok {
			vs.Known = true
			vs.Parallel = meta.parallel
			vs.Admin = meta.admin
		}
		if last, ok := l.last[vid]; ok {
			vs.HasLast = true
			vs.Last = last
		}
		if lat, slice, obs, ok := l.ctl.ExportVM(vid); ok {
			vs.Lat, vs.Slice, vs.Observed = lat, slice, obs
		}
		ns.VMs = append(ns.VMs, vs)
	}
	return ns
}

// Restore loads a snapshot into a freshly-built fleet, replacing any
// state. The snapshot's controller config must match the fleet's (the
// history windows are config-shaped). Node entries outside MaxNodes —
// a snapshot from a larger fleet, or a corrupt node ID — are counted in
// SkippedRestoreNodes and ignored, never fatal: the control plane must
// come back up with whatever state is still valid. Call before Run.
func (f *Fleet) Restore(s *FleetSnapshot) error {
	if s.Version != SnapshotVersion {
		return fmt.Errorf("daemon: snapshot version %d, want %d", s.Version, SnapshotVersion)
	}
	if s.Config != f.cfg {
		return fmt.Errorf("daemon: snapshot config %+v does not match fleet config %+v", s.Config, f.cfg)
	}
	start := f.telNow()
	f.periods.Store(s.Periods)
	f.decisions.Store(s.Decisions)
	f.overflow.Store(s.Overflow)
	for i := range s.Nodes {
		ns := &s.Nodes[i]
		if f.opts.MaxNodes > 0 && (ns.Node < 0 || ns.Node >= f.opts.MaxNodes) {
			f.skippedRestore.Add(1)
			continue
		}
		l := newNodeLoop(f.cfg, f.opts.Node)
		l.periods = ns.Periods
		l.consecDrops = ns.ConsecDrops
		l.stats = ns.Stats
		for _, vs := range ns.VMs {
			if vs.Known {
				l.known[vs.ID] = vmMeta{parallel: vs.Parallel, admin: vs.Admin}
			}
			if vs.HasLast {
				l.last[vs.ID] = vs.Last
			}
			if vs.Seq != 0 {
				l.lastSeq[vs.ID] = vs.Seq
			}
			if vs.StaleRuns != 0 {
				l.staleRuns[vs.ID] = vs.StaleRuns
			}
			if len(vs.Lat) > 0 || len(vs.Slice) > 0 {
				if err := l.ctl.ImportVM(vs.ID, vs.Lat, vs.Slice, vs.Observed); err != nil {
					return fmt.Errorf("daemon: restore node %d: %w", ns.Node, err)
				}
			}
		}
		sh := f.shardOf(ns.Node)
		sh.mu.Lock()
		sh.nodes[ns.Node] = &fleetNode{loop: l}
		sh.mu.Unlock()
		f.restoredNodes.Add(1)
	}
	if f.tel != nil {
		f.tel.AddSpan(telemetry.Span{
			Name: "restore", Track: "fleet", Node: -1, Start: start, End: f.telNow(),
			Value: sim.Time(f.restoredNodes.Load()),
		})
		f.tel.Add("fleet_restores", telemetry.GlobalLabel(), 1)
	}
	return nil
}
