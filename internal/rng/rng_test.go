package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical draws", same)
	}
}

func TestStreamsDiffer(t *testing.T) {
	a, b := NewStream(7, 0), NewStream(7, 1)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different streams produced %d/100 identical draws", same)
	}
}

func TestIntnRangeAndUniformity(t *testing.T) {
	s := New(3)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		v := s.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn(%d) = %d out of range", n, v)
		}
		counts[v]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d deviates from %f", i, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	s := New(11)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestExpMean(t *testing.T) {
	s := New(5)
	const mean, draws = 3.5, 200000
	var sum float64
	for i := 0; i < draws; i++ {
		v := s.Exp(mean)
		if v < 0 {
			t.Fatalf("Exp produced negative %v", v)
		}
		sum += v
	}
	got := sum / draws
	if math.Abs(got-mean) > 0.05*mean {
		t.Errorf("Exp sample mean = %v, want ~%v", got, mean)
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(9)
	const mean, sd, draws = 10.0, 2.0, 200000
	var sum, sumsq float64
	for i := 0; i < draws; i++ {
		v := s.Normal(mean, sd)
		sum += v
		sumsq += v * v
	}
	m := sum / draws
	variance := sumsq/draws - m*m
	if math.Abs(m-mean) > 0.05 {
		t.Errorf("Normal mean = %v, want ~%v", m, mean)
	}
	if math.Abs(math.Sqrt(variance)-sd) > 0.05 {
		t.Errorf("Normal stddev = %v, want ~%v", math.Sqrt(variance), sd)
	}
}

func TestJitterBounds(t *testing.T) {
	s := New(13)
	for i := 0; i < 10000; i++ {
		v := s.Jitter(100, 0.2)
		if v < 80 || v > 120 {
			t.Fatalf("Jitter(100, 0.2) = %v out of [80,120]", v)
		}
	}
}

func TestJitterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Jitter with frac > 1 did not panic")
		}
	}()
	New(1).Jitter(1, 2)
}

func TestUniformBounds(t *testing.T) {
	s := New(17)
	for i := 0; i < 10000; i++ {
		v := s.Uniform(-5, 5)
		if v < -5 || v >= 5 {
			t.Fatalf("Uniform(-5,5) = %v", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestChoiceWeights(t *testing.T) {
	s := New(21)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[s.Choice(weights)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight bucket drawn %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.2 {
		t.Errorf("weight ratio = %v, want ~3", ratio)
	}
}

func TestChoicePanics(t *testing.T) {
	for _, w := range [][]float64{nil, {}, {0, 0}, {-1, 2}} {
		w := w
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Choice(%v) did not panic", w)
				}
			}()
			New(1).Choice(w)
		}()
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkExp(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Exp(1.0)
	}
}
