package atc_test

import (
	"testing"

	"atcsched/internal/sched/atc"
	"atcsched/internal/sim"
	"atcsched/internal/vmm"
	"atcsched/internal/vmmtest"
)

func TestSliceShrinksUnderSpinContention(t *testing.T) {
	opts := atc.DefaultOptions()
	w := vmmtest.World(1, 1, atc.Factory(opts))
	node := w.Node(0)
	// The LHP generator keeps producing spin latency; ATC must walk the
	// parallel VM's slice down toward the minimum threshold.
	vmA, _ := vmmtest.SpinPair(node, opts.Credit.TimeSlice)
	w.Start()
	w.RunUntil(5 * sim.Second)
	s := node.Scheduler().(*atc.Scheduler)
	got := s.CurrentSlice(vmA)
	if got >= opts.Credit.TimeSlice {
		t.Errorf("slice = %v, want shortened below default %v", got, opts.Credit.TimeSlice)
	}
	if got < opts.Control.MinThreshold {
		t.Errorf("slice = %v fell below threshold %v", got, opts.Control.MinThreshold)
	}
	if vmA.SpinMon.LifetimeCount() == 0 {
		t.Fatal("no spin samples — scenario broken")
	}
}

func TestSliceRecoversWhenContentionStops(t *testing.T) {
	opts := atc.DefaultOptions()
	w := vmmtest.World(1, 1, atc.Factory(opts))
	node := w.Node(0)
	vmA := node.NewVM("par", vmm.ClassParallel, 2, 0, 1)
	vmB := node.NewVM("hog", vmm.ClassNonParallel, 1, 0, 1)
	l := vmA.NewLock()
	// Hammer the lock for the first phase only.
	deadline := 2 * sim.Second
	lockLoop := []vmm.Action{
		vmm.Compute(150 * sim.Microsecond),
		vmm.Acquire(l), vmm.Compute(100 * sim.Microsecond), vmm.Release(l),
	}
	for _, v := range vmA.VCPUs() {
		v.SetProcess(&vmmtest.SeqProc{Actions: lockLoop}, func(*vmm.VCPU) vmm.Process {
			if w.Eng.Now() > deadline {
				return nil
			}
			return &vmmtest.SeqProc{Actions: lockLoop}
		})
	}
	vmmtest.Loop(vmB.VCPU(0), vmm.Compute(sim.Second))
	w.Start()
	w.RunUntil(2 * sim.Second)
	s := node.Scheduler().(*atc.Scheduler)
	shortened := s.CurrentSlice(vmA)
	if shortened >= opts.Credit.TimeSlice {
		t.Fatalf("slice = %v never shortened", shortened)
	}
	// After the parallel work stops, zero-latency periods must relax the
	// slice back to the default.
	w.RunUntil(6 * sim.Second)
	if got := s.CurrentSlice(vmA); got != opts.Credit.TimeSlice {
		t.Errorf("slice = %v after contention stopped, want default %v", got, opts.Credit.TimeSlice)
	}
}

func TestNonParallelVMKeepsDefaultOrAdminSlice(t *testing.T) {
	opts := atc.DefaultOptions()
	w := vmmtest.World(1, 1, atc.Factory(opts))
	node := w.Node(0)
	vmA, _ := vmmtest.SpinPair(node, opts.Credit.TimeSlice)
	plain := node.NewVM("plain", vmm.ClassNonParallel, 1, 0, 1)
	admin := node.NewVM("admin", vmm.ClassNonParallel, 1, 0, 1)
	admin.AdminSlice = 6 * sim.Millisecond
	vmmtest.Loop(plain.VCPU(0), vmm.Compute(sim.Second))
	vmmtest.Loop(admin.VCPU(0), vmm.Compute(sim.Second))
	w.Start()
	w.RunUntil(3 * sim.Second)
	s := node.Scheduler().(*atc.Scheduler)
	if got := s.CurrentSlice(vmA); got >= opts.Credit.TimeSlice {
		t.Errorf("parallel slice = %v, want shortened", got)
	}
	if got := s.CurrentSlice(plain); got != opts.Credit.TimeSlice {
		t.Errorf("plain non-parallel slice = %v, want default", got)
	}
	if got := s.CurrentSlice(admin); got != 6*sim.Millisecond {
		t.Errorf("admin slice = %v, want 6ms", got)
	}
}

func TestAllParallelVMsGetNodeMinimum(t *testing.T) {
	opts := atc.DefaultOptions()
	w := vmmtest.World(1, 1, atc.Factory(opts))
	node := w.Node(0)
	vmA, _ := vmmtest.SpinPair(node, opts.Credit.TimeSlice)
	// A second parallel VM with no contention at all.
	idlePar := node.NewVM("idle-par", vmm.ClassParallel, 1, 0, 1)
	vmmtest.Loop(idlePar.VCPU(0), vmm.Compute(10*sim.Millisecond))
	w.Start()
	w.RunUntil(3 * sim.Second)
	s := node.Scheduler().(*atc.Scheduler)
	a, b := s.CurrentSlice(vmA), s.CurrentSlice(idlePar)
	if a != b {
		t.Errorf("parallel slices differ: %v vs %v (Algorithm 2 minimum)", a, b)
	}
	if a >= opts.Credit.TimeSlice {
		t.Errorf("slice = %v, want below default", a)
	}
}

func TestAutoDetectClassifiesByContention(t *testing.T) {
	opts := atc.DefaultOptions()
	opts.AutoDetect = true
	w := vmmtest.World(1, 1, atc.Factory(opts))
	node := w.Node(0)
	// Mislabel the spinning VM as non-parallel: AutoDetect must still
	// shorten its slice because it sees contended spin activity.
	vmA := node.NewVM("mislabeled", vmm.ClassNonParallel, 2, 0, 1)
	vmB := node.NewVM("hog", vmm.ClassNonParallel, 1, 0, 1)
	l := vmA.NewLock()
	for _, v := range vmA.VCPUs() {
		vmmtest.Loop(v,
			vmm.Compute(150*sim.Microsecond),
			vmm.Acquire(l), vmm.Compute(100*sim.Microsecond), vmm.Release(l),
		)
	}
	vmmtest.Loop(vmB.VCPU(0), vmm.Compute(sim.Second))
	w.Start()
	w.RunUntil(5 * sim.Second)
	s := node.Scheduler().(*atc.Scheduler)
	if got := s.CurrentSlice(vmA); got >= opts.Credit.TimeSlice {
		t.Errorf("autodetected slice = %v, want shortened", got)
	}
}

func TestDom0KeepsDefaultSlice(t *testing.T) {
	opts := atc.DefaultOptions()
	w := vmmtest.World(1, 1, atc.Factory(opts))
	node := w.Node(0)
	vmmtest.SpinPair(node, opts.Credit.TimeSlice)
	w.Start()
	w.RunUntil(2 * sim.Second)
	s := node.Scheduler().(*atc.Scheduler)
	if got := s.Slice(node.Dom0().VCPU(0)); got != opts.Credit.TimeSlice {
		t.Errorf("dom0 slice = %v, want default", got)
	}
}

func TestSchedWaitSignalShortensWithoutGuestCooperation(t *testing.T) {
	// Non-intrusive mode: the controller never reads SpinMon; the
	// hypervisor-side runqueue-wait proxy must still drive the slice
	// down under contention.
	opts := atc.DefaultOptions()
	opts.Monitor = atc.SignalSchedWait
	w := vmmtest.World(1, 1, atc.Factory(opts))
	node := w.Node(0)
	vmA, _ := vmmtest.SpinPair(node, opts.Credit.TimeSlice)
	w.Start()
	w.RunUntil(5 * sim.Second)
	s := node.Scheduler().(*atc.Scheduler)
	if got := s.CurrentSlice(vmA); got >= opts.Credit.TimeSlice {
		t.Errorf("slice = %v under sched-wait signal, want shortened", got)
	}
}

func TestSchedWaitSignalRecoversWhenIdle(t *testing.T) {
	opts := atc.DefaultOptions()
	opts.Monitor = atc.SignalSchedWait
	w := vmmtest.World(1, 2, atc.Factory(opts))
	node := w.Node(0)
	// A parallel VM alone on an under-loaded node: waits stay below the
	// noise floor, so the slice must remain at (or recover to) default.
	vmA := node.NewVM("quiet", vmm.ClassParallel, 1, 0, 1)
	vmmtest.Loop(vmA.VCPU(0), vmm.Compute(2*sim.Millisecond), vmm.Sleep(5*sim.Millisecond))
	w.Start()
	w.RunUntil(3 * sim.Second)
	s := node.Scheduler().(*atc.Scheduler)
	if got := s.CurrentSlice(vmA); got != opts.Credit.TimeSlice {
		t.Errorf("slice = %v on idle node, want default", got)
	}
}

func TestAdaptiveNonParallelShortensLatencySensitiveVM(t *testing.T) {
	opts := atc.DefaultOptions()
	opts.AdaptiveNonParallel = true
	w := vmmtest.World(1, 2, atc.Factory(opts))
	node := w.Node(0)
	// A disk-I/O hammer: steady stream of I/O events → latency-sensitive.
	ioVM := node.NewVM("io", vmm.ClassNonParallel, 1, 0, 1)
	vmmtest.Loop(ioVM.VCPU(0), vmm.DiskIO(4096))
	// A pure CPU batch VM: zero I/O events → keeps the default slice.
	batch := node.NewVM("batch", vmm.ClassNonParallel, 1, 0, 1)
	vmmtest.Loop(batch.VCPU(0), vmm.Compute(sim.Second))
	// An explicit admin setting must win over the adaptive choice.
	pinned := node.NewVM("pinned", vmm.ClassNonParallel, 1, 0, 1)
	pinned.AdminSlice = 12 * sim.Millisecond
	vmmtest.Loop(pinned.VCPU(0), vmm.DiskIO(4096))
	w.Start()
	w.RunUntil(3 * sim.Second)
	s := node.Scheduler().(*atc.Scheduler)
	if got := s.CurrentSlice(ioVM); got != 6*sim.Millisecond {
		t.Errorf("latency-sensitive slice = %v, want 6ms", got)
	}
	if got := s.CurrentSlice(batch); got != opts.Credit.TimeSlice {
		t.Errorf("batch slice = %v, want default", got)
	}
	if got := s.CurrentSlice(pinned); got != 12*sim.Millisecond {
		t.Errorf("pinned slice = %v, want admin 12ms", got)
	}
}

func TestSignalString(t *testing.T) {
	for _, s := range []atc.Signal{atc.SignalSpinlock, atc.SignalSchedWait, atc.Signal(9)} {
		if s.String() == "" {
			t.Error("empty signal name")
		}
	}
}

func TestName(t *testing.T) {
	w := vmmtest.World(1, 1, atc.Factory(atc.DefaultOptions()))
	if got := w.Node(0).Scheduler().Name(); got != "ATC" {
		t.Errorf("Name = %q", got)
	}
}
