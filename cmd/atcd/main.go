// Command atcd is a userspace Adaptive Time-slice Control daemon
// prototype. The paper implements ATC inside Xen's scheduler; this
// daemon runs the identical control law (internal/core) in userspace
// against pluggable latency sources and slice actuators — the deployment
// shape available without hypervisor modifications.
//
// Backends:
//
//	-backend demo    synthesize a contention episode and print the
//	                 control trajectory (default)
//	-backend stdio   one period per input line group: lines of
//	                 "<vmID> <avg-latency-us> <parallel:0|1> [admin-us]"
//	                 terminated by "--"; emits "vm<N> <slice>us" lines
//	-backend sim     close the loop against a live simulated cluster:
//	                 the daemon samples real spinlock latencies from the
//	                 simulator and actuates its schedulers' slices
//
// Fleet mode (-nodes N, N >= 1) replaces the single-node loop with the
// sharded fleet control plane (internal/daemon.Fleet) over a simulated
// N-node cluster; it implies the sim backend:
//
//	-nodes N         drive N nodes through the fleet pipeline
//	-shards S        shard the per-node controller state S ways
//	-hollow          kubemark-style hollow nodes (one light VM each)
//	-snapshot f.json write a control-plane snapshot at exit
//	-restore f.json  resume from a snapshot written by -snapshot
//
// Observability:
//
//	-listen addr     serve Prometheus text exposition on /metrics and a
//	                 JSON state snapshot on /debug/atc; the process keeps
//	                 serving after the control loop ends until SIGINT or
//	                 SIGTERM arrives (clean shutdown either way)
//	-timeline f.json sim: write a Chrome/Perfetto trace-event timeline
//	-jsonl f.jsonl   sim: write the telemetry time-series dump
//
// Example:
//
//	printf '1 2000 1\n--\n1 4000 1\n--\n' | atcd -backend stdio
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"atcsched/internal/core"
	"atcsched/internal/daemon"
	"atcsched/internal/sim"
	"atcsched/internal/telemetry"
	"atcsched/internal/vmm"
	"atcsched/internal/workload"
)

// timelineTraceCap bounds the scheduling tracer attached for -timeline.
const timelineTraceCap = 200000

// listenReady, when set (tests), receives the bound listen address once
// the HTTP surface is up.
var listenReady func(addr string)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "atcd:", err)
		os.Exit(1)
	}
}

// run is main with its environment injected, so tests drive the whole
// daemon — flags, signals, HTTP surface, artifact flush — in-process.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("atcd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		backend   = fs.String("backend", "demo", "demo | stdio | sim")
		defSlice  = fs.Float64("default", 30, "default slice in ms")
		threshold = fs.Float64("min", 0.3, "minimum slice threshold in ms")
		alpha     = fs.Float64("alpha", 6, "coarse adjustment step in ms")
		beta      = fs.Float64("beta", 0.3, "fine adjustment step in ms")
		periods   = fs.Int("periods", 40, "demo/sim: number of control periods")
		swap      = fs.String("swap", "", `sim: scheduled policy switches "period:node:KIND[,...]" (node -1 = all), e.g. "10:-1:ATC"`)
		nodes     = fs.Int("nodes", 0, "run the sharded fleet control plane over this many sim nodes (0 = single-node daemon)")
		shards    = fs.Int("shards", 0, "fleet: decider/applier shard count (default 1)")
		hollow    = fs.Bool("hollow", false, "fleet: hollow kubemark-style nodes — one light VM per node")
		snapshot  = fs.String("snapshot", "", "fleet: write a control-plane snapshot to this file at exit")
		restore   = fs.String("restore", "", "fleet: restore control-plane state from this snapshot file at start")
		listen    = fs.String("listen", "", "serve /metrics and /debug/atc on this address (e.g. :9090)")
		timeline  = fs.String("timeline", "", "sim: write a Chrome/Perfetto timeline to this file at exit")
		jsonl     = fs.String("jsonl", "", "sim: write the telemetry JSONL dump to this file at exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := core.Config{
		Default:      sim.FromMillis(*defSlice),
		MinThreshold: sim.FromMillis(*threshold),
		Alpha:        sim.FromMillis(*alpha),
		Beta:         sim.FromMillis(*beta),
		Window:       3,
	}
	if err := cfg.Validate(); err != nil {
		return err
	}

	if *nodes > 0 {
		if *backend == "stdio" {
			return fmt.Errorf("-nodes requires the sim backend, not %q", *backend)
		}
		return runFleet(cfg, fleetParams{
			nodes:    *nodes,
			shards:   *shards,
			periods:  *periods,
			hollow:   *hollow,
			swap:     *swap,
			listen:   *listen,
			snapshot: *snapshot,
			restore:  *restore,
			timeline: *timeline,
			jsonl:    *jsonl,
		}, stdout, stderr)
	}
	if *snapshot != "" || *restore != "" {
		return fmt.Errorf("-snapshot/-restore need fleet mode (-nodes N)")
	}

	// Any observability output needs the telemetry plane; the daemon and
	// (for -backend sim) the simulated world publish into it.
	var plane *telemetry.Plane
	if *listen != "" || *timeline != "" || *jsonl != "" {
		plane = telemetry.New(telemetry.Options{})
	}

	var src daemon.Source
	var act daemon.Actuator = daemon.WriterActuator{W: stdout}
	var sb *daemon.SimBackend
	switch *backend {
	case "demo":
		src = demoSource(*periods)
	case "stdio":
		src = &stdioSource{r: bufio.NewScanner(os.Stdin)}
	case "sim":
		switches, err := parseSwitches(*swap)
		if err != nil {
			return err
		}
		sb, err = daemon.NewSimBackend(daemon.SimBackendConfig{
			Class:      workload.ClassB,
			MaxPeriods: *periods,
			Switches:   switches,
			Telemetry:  plane,
		})
		if err != nil {
			return err
		}
		if *timeline != "" {
			// The timeline merges scheduling events with telemetry spans;
			// the world's clock has not advanced yet, so attaching the
			// tracer here still captures the whole run.
			sb.World.SetTracer(vmm.NewTracer(timelineTraceCap))
		}
		src, act = sb, sb
	default:
		return fmt.Errorf("unknown backend %q", *backend)
	}
	d := daemon.New(cfg, src, act)
	if plane != nil {
		var clock func() sim.Time
		if sb != nil {
			clock = func() sim.Time { return sb.World.Eng.Now() }
		}
		d.SetTelemetry(plane.Global(), clock)
	}

	// SIGINT/SIGTERM stop the control loop at its next step boundary and,
	// once the loop has returned and artifacts are flushed, end the
	// process cleanly (the HTTP surface shuts down gracefully).
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	loopDone := make(chan struct{})
	interrupted := make(chan struct{})
	go func() {
		select {
		case <-sigc:
			close(interrupted)
			d.Stop()
		case <-loopDone:
		}
	}()

	var srv *http.Server
	if *listen != "" {
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			return err
		}
		srv = &http.Server{Handler: telemetry.Handler(plane.Snapshot, func() map[string]any {
			st := d.Stats()
			return map[string]any{
				"periods":         d.Periods(),
				"retries":         st.Retries,
				"dropped_periods": st.DroppedPeriods,
				"stale_samples":   st.StaleSamples,
				"degraded":        st.Degraded,
			}
		})}
		fmt.Fprintf(stderr, "atcd: serving telemetry on http://%s\n", ln.Addr())
		if listenReady != nil {
			listenReady(ln.Addr().String())
		}
		go func() { _ = srv.Serve(ln) }()
		defer srv.Close()
	}

	runErr := d.Run()
	close(loopDone)
	if runErr != nil && !daemon.IsDone(runErr) {
		return runErr
	}
	fmt.Fprintf(stderr, "atcd: %d control periods executed\n", d.Periods())
	if sb != nil {
		sb.FinalizeTelemetry(plane)
		var rounds int
		for _, r := range sb.Runs() {
			rounds += r.Rounds()
		}
		fmt.Fprintf(stdout, "sim backend: %d application rounds completed in %v of virtual time\n",
			rounds, sb.World.Eng.Now())
	}
	if err := flushArtifacts(*timeline, *jsonl, plane, sb); err != nil {
		return err
	}
	if srv != nil {
		// Keep answering scrapes until asked to stop, then drain.
		select {
		case <-interrupted:
		case <-sigc:
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		err := srv.Shutdown(ctx)
		cancel()
		if err != nil {
			return err
		}
		fmt.Fprintln(stderr, "atcd: telemetry server closed")
	}
	return nil
}

// fleetParams carries the fleet-mode flag values into runFleet.
type fleetParams struct {
	nodes, shards, periods    int
	hollow                    bool
	swap                      string
	listen, snapshot, restore string
	timeline, jsonl           string
}

// runFleet drives the sharded fleet control plane against a simulated
// N-node cluster: restore-at-start, the same signal/HTTP lifecycle as
// the single-node path, and snapshot-at-exit taken at the final period
// barrier (all queues drained, so the snapshot is deterministic).
func runFleet(cfg core.Config, p fleetParams, stdout, stderr io.Writer) error {
	var plane *telemetry.Plane
	if p.listen != "" || p.timeline != "" || p.jsonl != "" {
		plane = telemetry.New(telemetry.Options{})
	}
	switches, err := parseSwitches(p.swap)
	if err != nil {
		return err
	}
	sb, err := daemon.NewSimBackend(daemon.SimBackendConfig{
		Nodes:      p.nodes,
		Class:      workload.ClassB,
		MaxPeriods: p.periods,
		Switches:   switches,
		Telemetry:  plane,
		Hollow:     p.hollow,
	})
	if err != nil {
		return err
	}
	if p.timeline != "" {
		sb.World.SetTracer(vmm.NewTracer(timelineTraceCap))
	}
	f := daemon.NewFleet(cfg, sb, sb, daemon.FleetOptions{
		Shards:   p.shards,
		MaxNodes: p.nodes,
	})
	defer f.Close()
	if plane != nil {
		f.SetTelemetry(plane.Global(), sb.Now)
	}

	if p.restore != "" {
		raw, err := os.ReadFile(p.restore)
		if err != nil {
			return fmt.Errorf("restore: %w", err)
		}
		snap, err := daemon.DecodeSnapshot(raw)
		if err != nil {
			return fmt.Errorf("restore %s: %w", p.restore, err)
		}
		if err := f.Restore(snap); err != nil {
			return fmt.Errorf("restore %s: %w", p.restore, err)
		}
		fmt.Fprintf(stderr, "atcd: restored %d nodes from %s (%d skipped)\n",
			f.RestoredNodes(), p.restore, f.SkippedRestoreNodes())
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	loopDone := make(chan struct{})
	interrupted := make(chan struct{})
	go func() {
		select {
		case <-sigc:
			close(interrupted)
			f.Stop()
		case <-loopDone:
		}
	}()

	var srv *http.Server
	if p.listen != "" {
		ln, err := net.Listen("tcp", p.listen)
		if err != nil {
			return err
		}
		srv = &http.Server{Handler: telemetry.Handler(plane.Snapshot, func() map[string]any {
			table := f.Table()
			policies := sb.NodePolicies()
			for i := range table {
				if n := table[i].Node; n >= 0 && n < len(policies) {
					table[i].Policy = policies[n]
				}
			}
			return map[string]any{
				"fleet": f.Summary(),
				"nodes": table,
			}
		})}
		fmt.Fprintf(stderr, "atcd: serving telemetry on http://%s\n", ln.Addr())
		if listenReady != nil {
			listenReady(ln.Addr().String())
		}
		go func() { _ = srv.Serve(ln) }()
		defer srv.Close()
	}

	runErr := f.Run()
	close(loopDone)
	if runErr != nil && !daemon.IsDone(runErr) {
		return runErr
	}
	fmt.Fprintf(stderr, "atcd: fleet of %d nodes: %d control periods, %d decisions applied\n",
		len(f.Nodes()), f.Periods(), f.Decisions())

	if p.snapshot != "" {
		snap := f.Snapshot()
		enc, err := snap.Encode()
		if err != nil {
			return fmt.Errorf("snapshot: %w", err)
		}
		if err := os.WriteFile(p.snapshot, enc, 0o644); err != nil {
			return fmt.Errorf("snapshot: %w", err)
		}
		fmt.Fprintf(stderr, "atcd: snapshot of %d nodes written to %s\n", len(snap.Nodes), p.snapshot)
	}

	sb.FinalizeTelemetry(plane)
	var rounds int
	for _, r := range sb.Runs() {
		rounds += r.Rounds()
	}
	fmt.Fprintf(stdout, "sim backend: %d application rounds completed in %v of virtual time\n",
		rounds, sb.World.Eng.Now())
	if err := flushArtifacts(p.timeline, p.jsonl, plane, sb); err != nil {
		return err
	}
	if srv != nil {
		select {
		case <-interrupted:
		case <-sigc:
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		err := srv.Shutdown(ctx)
		cancel()
		if err != nil {
			return err
		}
		fmt.Fprintln(stderr, "atcd: telemetry server closed")
	}
	return nil
}

// flushArtifacts writes the -timeline and -jsonl outputs (no-ops when
// the flags are unset).
func flushArtifacts(timeline, jsonl string, plane *telemetry.Plane, sb *daemon.SimBackend) error {
	if timeline != "" {
		var events []telemetry.SchedEvent
		if sb != nil {
			events = sb.World.TelemetryEvents()
		}
		if err := writeFileWith(timeline, func(w io.Writer) error {
			return telemetry.WriteTimeline(w, events, plane.Snapshot())
		}); err != nil {
			return fmt.Errorf("timeline: %w", err)
		}
	}
	if jsonl != "" {
		if err := writeFileWith(jsonl, func(w io.Writer) error {
			return telemetry.WriteJSONL(w, plane.Snapshot())
		}); err != nil {
			return fmt.Errorf("jsonl: %w", err)
		}
	}
	return nil
}

// writeFileWith streams fn's output into path.
func writeFileWith(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// parseSwitches parses the -swap flag: comma-separated
// "period:node:KIND" triples.
func parseSwitches(s string) ([]daemon.PolicySwitch, error) {
	if s == "" {
		return nil, nil
	}
	var out []daemon.PolicySwitch
	for _, part := range strings.Split(s, ",") {
		f := strings.Split(strings.TrimSpace(part), ":")
		if len(f) != 3 {
			return nil, fmt.Errorf("bad -swap entry %q (want period:node:KIND)", part)
		}
		period, err := strconv.Atoi(f[0])
		if err != nil {
			return nil, fmt.Errorf("bad -swap period %q", f[0])
		}
		node, err := strconv.Atoi(f[1])
		if err != nil {
			return nil, fmt.Errorf("bad -swap node %q", f[1])
		}
		out = append(out, daemon.PolicySwitch{AtPeriod: period, Node: node, Kind: f[2]})
	}
	return out, nil
}

// demoSource synthesizes a parallel VM going through idle → rising
// contention → decay → idle, next to a non-parallel neighbour.
func demoSource(periods int) daemon.Source {
	var ps [][]daemon.VMSample
	for i := 0; i < periods; i++ {
		var lat sim.Time
		switch {
		case i < 5: // idle
		case i < periods/2: // rising contention
			lat = sim.Time(i-4) * 2 * sim.Millisecond
		case i < periods*3/4: // decaying
			lat = sim.Time(periods-i) * sim.Millisecond
		default: // idle again
		}
		ps = append(ps, []daemon.VMSample{
			{ID: 1, AvgSpinLatency: lat, Parallel: true},
			{ID: 2, Parallel: false},
		})
	}
	return &daemon.SliceSource{Periods: ps}
}

// stdioSource parses period groups from stdin.
type stdioSource struct {
	r *bufio.Scanner
}

// Sample implements daemon.Source.
func (s *stdioSource) Sample() ([]daemon.VMSample, error) {
	var out []daemon.VMSample
	for s.r.Scan() {
		line := strings.TrimSpace(s.r.Text())
		if line == "" {
			continue
		}
		if line == "--" {
			return out, nil
		}
		f := strings.Fields(line)
		if len(f) < 3 {
			return nil, fmt.Errorf("bad input line %q (want: id latency-us parallel [admin-us])", line)
		}
		id, err := strconv.Atoi(f[0])
		if err != nil {
			return nil, fmt.Errorf("bad vm id %q", f[0])
		}
		latUS, err := strconv.ParseFloat(f[1], 64)
		if err != nil || latUS < 0 {
			return nil, fmt.Errorf("bad latency %q", f[1])
		}
		par := f[2] == "1" || strings.EqualFold(f[2], "true")
		vs := daemon.VMSample{
			ID:             id,
			AvgSpinLatency: sim.Time(latUS * float64(sim.Microsecond)),
			Parallel:       par,
		}
		if len(f) >= 4 {
			adminUS, err := strconv.ParseFloat(f[3], 64)
			if err != nil || adminUS < 0 {
				return nil, fmt.Errorf("bad admin slice %q", f[3])
			}
			vs.AdminSlice = sim.Time(adminUS * float64(sim.Microsecond))
		}
		out = append(out, vs)
	}
	if len(out) > 0 {
		return out, nil
	}
	return nil, io.EOF
}
