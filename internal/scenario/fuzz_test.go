package scenario

import (
	"encoding/json"
	"strings"
	"testing"

	"atcsched/internal/sched/registry"
)

// FuzzScenarioJSON hammers the spec parser: Load must accept or reject
// cleanly — never panic, never hand Build a spec that allocates beyond
// the resource caps. When a fuzz input parses into a tiny world, Build
// it and audit the fresh world too. Run deep with
//
//	go test ./internal/scenario -fuzz=FuzzScenarioJSON -fuzztime=30s
func FuzzScenarioJSON(f *testing.F) {
	// Seed corpus: a minimal valid spec, each structural feature, and
	// the hardening edges (trailing data, huge numbers, unknown fields,
	// type confusion, truncation).
	f.Add(`{"nodes":1,"virtualClusters":[{"vms":1,"vcpus":1,"kernel":"ep","class":"A","rounds":1}]}`)
	f.Add(`{"nodes":2,"scheduler":{"kind":"ATC","fixedSliceMs":30},"seed":7,"horizonSec":60,
		"virtualClusters":[{"name":"a","vms":2,"vcpus":2,"kernel":"lu","class":"A","rounds":1},
		{"name":"b","kernel":"is","background":true}],
		"jobs":[{"type":"ping","node":0,"intervalMs":5},{"type":"cpu","node":1,"name":"gcc"}]}`)
	f.Add(`{"nodes":1,"jobs":[{"type":"web","node":0,"peerNode":0}]}`)
	f.Add(`{}`)
	f.Add(`null`)
	f.Add(`[]`)
	f.Add(`{"nodes":1e9,"virtualClusters":[{}]}`)
	f.Add(`{"nodes":1,"horizonSec":1e300,"virtualClusters":[{}]}`)
	f.Add(`{"nodes":1,"virtualClusters":[{"vcpus":-3}]}`)
	f.Add(`{"nodes":1,"virtualClusters":[{}]}{"nodes":2}`)
	f.Add(`{"nodes":1,"bogusField":true,"virtualClusters":[{}]}`)
	f.Add(`{"nodes":"one","virtualClusters":[{}]}`)
	f.Add(`{"nodes":1,"virtualClusters":[{"kernel":"lu"`)
	f.Add(`{"nodes":1,"scheduler":{"kind":"zen"},"virtualClusters":[{}]}`)
	f.Fuzz(func(t *testing.T, data string) {
		spec, err := Load(strings.NewReader(data))
		if err != nil {
			return
		}
		// Accepted specs must come back with defaults filled and inside
		// the caps — Validate is the only gate between JSON and NewWorld.
		if spec.Nodes < 1 || spec.Nodes > maxNodes {
			t.Fatalf("accepted nodes=%d", spec.Nodes)
		}
		if spec.HorizonSec <= 0 || spec.HorizonSec > maxHorizonSec {
			t.Fatalf("accepted horizonSec=%v", spec.HorizonSec)
		}
		small := spec.Nodes <= 2 && spec.PCPUsPerNode <= 4 && len(spec.Jobs) <= 2
		for _, vc := range spec.VirtualClusters {
			if vc.VMs < 1 || vc.VCPUs < 1 || vc.Rounds < 0 {
				t.Fatalf("accepted cluster sizing %+v", vc)
			}
			if vc.VMs > 2 || vc.VCPUs > 2 {
				small = false
			}
		}
		if !small || len(spec.VirtualClusters) > 2 {
			return
		}
		// Tiny world: building it must succeed and pass a full audit.
		res, err := Build(spec)
		if err != nil {
			t.Fatalf("validated spec failed to build: %v", err)
		}
		if errs := res.Scenario.World.Audit(); len(errs) > 0 {
			t.Fatalf("fresh world fails audit: %v", errs)
		}
	})
}

// FuzzSchedOptionsJSON hammers the policy-options half of the registry:
// for any (kind, options JSON) pair the resolver must accept or reject
// cleanly, an unknown kind must name every valid kind in its error, and
// an accepted merge must re-marshal byte-stably (parse → merge → marshal
// → merge → marshal is a fixed point). Seeds cover the DFRS family's
// fractional parameters, including out-of-range fractions that must be
// rejected. Run deep with
//
//	go test ./internal/scenario -fuzz=FuzzSchedOptionsJSON -fuzztime=30s
func FuzzSchedOptionsJSON(f *testing.F) {
	f.Add("DFRS", `{"minFraction": 0.05, "redistributePeriods": 3}`)
	f.Add("DFRS", `{"credit": {"timeSliceMs": 10}, "minQuantum": "2ms"}`)
	f.Add("DFRS", `{"nonWorkConserving": true, "smoothing": 0.25}`)
	f.Add("ATCDFRS", `{"dfrs": {"dom0Fraction": 0.1}, "control": {"alpha": "9ms"}}`)
	f.Add("ATCDFRS", `{"noiseFloor": "1ms"}`)
	// Invalid fractions: must be rejected, never panic.
	f.Add("DFRS", `{"minFraction": -1}`)
	f.Add("DFRS", `{"minFraction": 0.9}`)
	f.Add("DFRS", `{"smoothing": 2}`)
	f.Add("DFRS", `{"dom0Fraction": 1.5}`)
	f.Add("ATCDFRS", `{"dfrs": {"smoothing": -0.5}}`)
	// Structural edges.
	f.Add("ATC", `{"control": {"alpha": "5ms"}}`)
	f.Add("CR", ``)
	f.Add("zen", `{}`)
	f.Add("", `null`)
	f.Add("DFRS", `{"bogus": 1}`)
	f.Add("DFRS", `{"minFraction": "lots"}`)
	f.Add("DFRS", `{"minFraction": 0.1}{"trailing": true}`)
	f.Fuzz(func(t *testing.T, kind, opts string) {
		var raw json.RawMessage
		if opts != "" {
			raw = json.RawMessage(opts)
		}
		d, known := registry.Lookup(kind)
		if !known {
			err := registry.Validate(kind, raw)
			if err == nil {
				t.Fatalf("unknown kind %q accepted", kind)
			}
			// The error must enumerate every registered kind, sorted —
			// the caller's typo is diagnosable from the message alone.
			if want := strings.Join(registry.Kinds(), ", "); !strings.Contains(err.Error(), want) {
				t.Fatalf("unknown-kind error %q does not list the valid kinds %q", err, want)
			}
			return
		}
		if err := registry.Validate(kind, raw); err != nil {
			return
		}
		merged, err := d.Options(raw)
		if err != nil {
			t.Fatalf("%s: options validated but failed to merge: %v", kind, err)
		}
		b1, err := json.Marshal(merged)
		if err != nil {
			t.Fatalf("%s: merged options do not marshal: %v", kind, err)
		}
		if err := registry.Validate(kind, json.RawMessage(b1)); err != nil {
			t.Fatalf("%s: re-marshaled options %s no longer validate: %v", kind, b1, err)
		}
		again, err := d.Options(json.RawMessage(b1))
		if err != nil {
			t.Fatalf("%s: re-merge of %s failed: %v", kind, b1, err)
		}
		b2, err := json.Marshal(again)
		if err != nil {
			t.Fatal(err)
		}
		if string(b1) != string(b2) {
			t.Fatalf("%s: options round trip unstable:\n%s\n%s", kind, b1, b2)
		}
	})
}
