package proptest

import "atcsched/internal/fault"

// shrinkAttempts bounds the total candidate re-runs one Shrink performs;
// each candidate costs a full battery run, so the budget is modest.
const shrinkAttempts = 48

// Shrink greedily minimizes a failing Spec: it tries dropping tenants,
// halving every size knob and clearing the scheduler overrides, keeping
// each candidate on which check still fails, until a full pass makes no
// progress or the attempt budget runs out. check must report the
// original failure class as a non-nil error.
func Shrink(spec Spec, check func(Spec) error) Spec {
	attempts := 0
	for attempts < shrinkAttempts {
		improved := false
		for _, cand := range candidates(spec) {
			attempts++
			if check(cand) != nil {
				spec = cand
				improved = true
				break
			}
			if attempts >= shrinkAttempts {
				break
			}
		}
		if !improved {
			break
		}
	}
	return spec
}

// candidates returns one-step reductions of s, cheapest wins first:
// structural drops before size halvings before option clearing.
func candidates(s Spec) []Spec {
	var out []Spec
	if len(s.Clusters) > 1 {
		for i := range s.Clusters {
			c := clone(s)
			c.Clusters = append(c.Clusters[:i:i], c.Clusters[i+1:]...)
			out = append(out, c)
		}
	}
	for i := range s.Jobs {
		c := clone(s)
		c.Jobs = append(c.Jobs[:i:i], c.Jobs[i+1:]...)
		out = append(out, c)
	}
	if s.Faults != nil {
		for i := range s.Faults.Windows {
			c := clone(s)
			c.Faults.Windows = append(c.Faults.Windows[:i:i], c.Faults.Windows[i+1:]...)
			if len(c.Faults.Windows) == 0 {
				c.Faults = nil
			}
			out = append(out, c)
		}
	}
	if s.Nodes > 1 {
		c := clone(s)
		c.Nodes = halve(c.Nodes)
		// Re-home jobs that lived on dropped nodes.
		for i := range c.Jobs {
			if c.Jobs[i].Node >= c.Nodes {
				c.Jobs[i].Node = c.Nodes - 1
			}
		}
		// Node-kind pins for dropped nodes go with them.
		if len(c.NodeKinds) > c.Nodes {
			c.NodeKinds = c.NodeKinds[:c.Nodes]
		}
		// Fault-window node scopes re-home the same way.
		if c.Faults != nil {
			for i := range c.Faults.Windows {
				for j, n := range c.Faults.Windows[i].Nodes {
					if n >= c.Nodes {
						c.Faults.Windows[i].Nodes[j] = c.Nodes - 1
					}
				}
			}
		}
		out = append(out, c)
	}
	if s.PCPUs > 1 {
		c := clone(s)
		c.PCPUs = halve(c.PCPUs)
		out = append(out, c)
	}
	for i := range s.Clusters {
		for _, f := range []func(*ClusterSpec){
			func(c *ClusterSpec) { c.VMs = halve(c.VMs) },
			func(c *ClusterSpec) { c.VCPUs = halve(c.VCPUs) },
			func(c *ClusterSpec) { c.Rounds = halve(c.Rounds) },
			func(c *ClusterSpec) { c.Iterations = halve(c.Iterations) },
		} {
			c := clone(s)
			before := c.Clusters[i]
			f(&c.Clusters[i])
			if c.Clusters[i] != before {
				out = append(out, c)
			}
		}
	}
	if s.FixedSliceMs != 0 {
		c := clone(s)
		c.FixedSliceMs = 0
		out = append(out, c)
	}
	if s.DisableBoost || s.DisableSteal {
		c := clone(s)
		c.DisableBoost = false
		c.DisableSteal = false
		out = append(out, c)
	}
	if len(s.NodeKinds) > 0 {
		c := clone(s)
		c.NodeKinds = nil
		out = append(out, c)
	}
	if s.SwapKind != "" {
		c := clone(s)
		c.SwapKind = ""
		c.SwapAtSec = 0
		out = append(out, c)
	}
	if s.Faults != nil {
		c := clone(s)
		c.Faults = nil
		out = append(out, c)
	}
	// Shard count shrinks toward 1 (still sharded machinery, no
	// concurrency), then to 0 (the serial engine) — isolating whether a
	// failure needs sharding at all.
	if s.Shards > 1 {
		c := clone(s)
		c.Shards = halve(c.Shards)
		out = append(out, c)
	}
	if s.Shards != 0 {
		c := clone(s)
		c.Shards = 0
		out = append(out, c)
	}
	if s.Telemetry {
		c := clone(s)
		c.Telemetry = false
		out = append(out, c)
	}
	// The fleet side-world shrinks toward one node, then away entirely —
	// isolating whether a failure needs the fleet property at all.
	if s.FleetNodes > 1 {
		c := clone(s)
		c.FleetNodes = halve(c.FleetNodes)
		out = append(out, c)
	}
	if s.FleetNodes != 0 {
		c := clone(s)
		c.FleetNodes = 0
		out = append(out, c)
	}
	return out
}

// halve reduces n toward 1 without reaching 0.
func halve(n int) int {
	if n <= 1 {
		return n
	}
	return (n + 1) / 2
}

// clone deep-copies a Spec so candidate mutations stay independent.
func clone(s Spec) Spec {
	c := s
	c.Clusters = append([]ClusterSpec(nil), s.Clusters...)
	c.Jobs = append([]JobSpec(nil), s.Jobs...)
	c.NodeKinds = append([]string(nil), s.NodeKinds...)
	if s.Faults != nil {
		f := fault.Spec{Seed: s.Faults.Seed}
		f.Windows = append([]fault.Window(nil), s.Faults.Windows...)
		for i := range f.Windows {
			f.Windows[i].Nodes = append([]int(nil), f.Windows[i].Nodes...)
			f.Windows[i].VMs = append([]int(nil), f.Windows[i].VMs...)
		}
		c.Faults = &f
	}
	return c
}
