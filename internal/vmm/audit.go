package vmm

import (
	"fmt"

	"atcsched/internal/sim"
)

// Audit validates the world's internal invariants and returns the list
// of violations (empty when healthy). It is safe to call at any point
// between events — tests call it mid-run and at shutdown, and it's a
// useful debugging tool when writing new schedulers or workloads.
//
// Checked invariants:
//
//  1. PCPU/VCPU linkage: a PCPU's current VCPU is Running and points
//     back at it; a Running VCPU is some PCPU's current.
//  2. CPU-time conservation: per node, the sum of VCPU CPU time equals
//     the sum of PCPU busy time.
//  3. Packet conservation: every posted packet is delivered, queued in
//     a backend, in flight on the fabric, or waiting in a mailbox.
//  4. Mailbox waiters: every registered receiver is actually waiting on
//     a matching receive.
//  5. Spinlock sanity: holder and reservation are mutually exclusive;
//     every spinning VCPU is known to its lock.
func (w *World) Audit() []error {
	var errs []error
	bad := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}

	running := map[*VCPU]*PCPU{}
	for _, n := range w.nodes {
		var busy, cpu sim.Time
		for _, p := range n.pcpus {
			if p.cur != nil {
				if p.cur.state != StateRunning {
					bad("node%d pcpu%d current %s in state %v", n.id, p.idx, p.cur, p.cur.state)
				}
				if p.cur.pcpu != p {
					bad("node%d pcpu%d current %s points at different pcpu", n.id, p.idx, p.cur)
				}
				running[p.cur] = p
			}
			busy += p.BusyTime()
		}
		for _, v := range n.vcpus {
			cpu += v.CPUTime()
			if v.state == StateRunning {
				if _, ok := running[v]; !ok {
					bad("%s Running but not current on any pcpu", v)
				}
			}
			if v.state != StateRunning && v.pcpu != nil {
				bad("%s state %v but pcpu set", v, v.state)
			}
		}
		if d := busy - cpu; d > sim.Microsecond || d < -sim.Microsecond {
			bad("node%d CPU-time conservation: busy %v vs vcpu cpu %v", n.id, busy, cpu)
		}
	}

	// Packet conservation across the world.
	var sent, received, mailbox, backendQ uint64
	for _, vm := range w.vms {
		sent += vm.sent
		received += vm.received
		for _, q := range vm.mail {
			mailbox += uint64(q.len())
		}
	}
	for _, n := range w.nodes {
		backendQ += uint64(n.backend.tx.len() + n.backend.rx.len() + n.backend.processing)
	}
	// received counts deliveries into mailboxes (consumed or not), so:
	// sent == received + backend queues + fabric in flight.
	if sent != received+backendQ+w.Fabric.InFlight() {
		bad("packet conservation: sent %d != delivered %d + backend %d + wire %d",
			sent, received, backendQ, w.Fabric.InFlight())
	}
	if mailbox > received {
		bad("mailboxes hold %d packets but only %d were delivered", mailbox, received)
	}

	// Mailbox waiters point at genuine receivers.
	for _, vm := range w.vms {
		for key, v := range vm.waiting {
			if v == nil {
				bad("%s: nil waiter for %+v", vm.name, key)
				continue
			}
			a := v.pending
			if a == nil || a.Kind != ActRecv || a.Tag != key.tag || v.idx != key.proc {
				bad("%s: waiter %s not blocked on recv %+v", vm.name, v, key)
			}
			if v.state == StateIdle {
				bad("%s: waiter %s is idle", vm.name, v)
			}
		}
	}

	// Spinlock sanity.
	for _, vm := range w.vms {
		for i, l := range vm.locks {
			if l.holder != nil && l.granted != nil {
				bad("%s lock%d has both holder %s and reservation %s", vm.name, i, l.holder, l.granted)
			}
			for _, wt := range l.waiters {
				if wt.v.spinningOn != l {
					bad("%s lock%d waiter %s not marked spinning on it", vm.name, i, wt.v)
				}
				if wt.v == l.holder {
					bad("%s lock%d holder %s is also a waiter", vm.name, i, wt.v)
				}
			}
		}
	}
	return errs
}

// MustAudit panics with the first violation (test helper).
func (w *World) MustAudit() {
	if errs := w.Audit(); len(errs) > 0 {
		panic(fmt.Sprintf("vmm: audit failed: %v (and %d more)", errs[0], len(errs)-1))
	}
}
