// Package core implements the paper's contribution: the Adaptive
// Time-slice Control (ATC) model.
//
// A Controller tracks, per VM, the average spinlock latency and the time
// slice of the last three VMM scheduling periods. At each period
// boundary:
//
//   - Algorithm 1 (ComputeSlice) derives the VM's next slice from the
//     latency trend: shorten (by the coarse step α, or the fine step β
//     near the minimum threshold) while latency rises — or while it falls
//     only because the slice was shortened — and relax back toward the
//     default when the latency has stayed at zero for a full window.
//   - Algorithm 2 (NodeSlices) takes the per-VM results for one physical
//     node, assigns every parallel VM the minimum of their computed
//     slices (fairness + O(N) complexity), and leaves non-parallel VMs at
//     the administrator-specified slice or the VMM default.
//
// The controller is a pure library: it consumes latency samples and emits
// slice decisions, so the same code drives the simulator's ATC scheduler
// (internal/sched/atc) and the userspace control daemon (cmd/atcd).
//
// Two typos in the paper's Algorithm 1 are resolved as documented in
// DESIGN.md: line 4's decrement bound uses β (not α), and line 15's
// growth condition reads "timeSlice_{i-1} + α ≤ DEFAULT".
package core

import (
	"fmt"

	"atcsched/internal/sim"
)

// Config parameterizes a Controller.
type Config struct {
	// Default is the VMM's default time slice (Xen Credit: 30 ms).
	Default sim.Time `json:"default,omitzero"`
	// MinThreshold is the floor below which slices are never shortened
	// (§III-B finds 0.3 ms optimal via the Euclidean metric).
	MinThreshold sim.Time `json:"minThreshold,omitzero"`
	// Alpha is the coarse slice-adjustment step (α > β).
	Alpha sim.Time `json:"alpha,omitzero"`
	// Beta is the fine slice-adjustment step used near the threshold.
	Beta sim.Time `json:"beta,omitzero"`
	// Window is the number of scheduling periods of history consulted
	// (the paper uses 3).
	Window int `json:"window,omitzero"`
}

// DefaultConfig returns the parameters used throughout the evaluation:
// 30 ms default, 0.3 ms minimum threshold, α = 6 ms, β = 0.3 ms (aligned with the threshold),
// 3-period window.
func DefaultConfig() Config {
	return Config{
		Default:      30 * sim.Millisecond,
		MinThreshold: 300 * sim.Microsecond,
		Alpha:        6 * sim.Millisecond,
		Beta:         300 * sim.Microsecond,
		Window:       3,
	}
}

// Validate checks the configuration for consistency.
func (c Config) Validate() error {
	switch {
	case c.Default <= 0:
		return fmt.Errorf("core: Default slice must be positive, got %v", c.Default)
	case c.MinThreshold <= 0:
		return fmt.Errorf("core: MinThreshold must be positive, got %v", c.MinThreshold)
	case c.MinThreshold > c.Default:
		return fmt.Errorf("core: MinThreshold %v exceeds Default %v", c.MinThreshold, c.Default)
	case c.Alpha <= 0 || c.Beta <= 0:
		return fmt.Errorf("core: steps must be positive (α=%v β=%v)", c.Alpha, c.Beta)
	case c.Alpha <= c.Beta:
		return fmt.Errorf("core: α (%v) must exceed β (%v)", c.Alpha, c.Beta)
	case c.Window < 2:
		return fmt.Errorf("core: window must be at least 2, got %d", c.Window)
	}
	return nil
}

// vmState is one VM's sliding history. Ring buffers hold the last
// Window samples; index 0 is the oldest.
type vmState struct {
	lat   []sim.Time // average spinlock latency per period
	slice []sim.Time // slice in force per period
	// observed counts total periods seen, to handle cold start.
	observed int
}

// Controller implements ATC for one physical node's VM population.
type Controller struct {
	cfg Config
	vms map[int]*vmState
}

// NewController returns a Controller; it panics on an invalid Config to
// surface misconfiguration at construction time.
func NewController(cfg Config) *Controller {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Controller{cfg: cfg, vms: make(map[int]*vmState)}
}

// Config returns the controller's configuration.
func (c *Controller) Config() Config { return c.cfg }

// state fetches or creates a VM's history, pre-filled with zero latency
// at the default slice so cold-start behaves like an idle VM.
func (c *Controller) state(vmID int) *vmState {
	st, ok := c.vms[vmID]
	if !ok {
		st = &vmState{
			lat:   make([]sim.Time, c.cfg.Window),
			slice: make([]sim.Time, c.cfg.Window),
		}
		for i := range st.slice {
			st.slice[i] = c.cfg.Default
		}
		c.vms[vmID] = st
	}
	return st
}

// Observe records one period's average spinlock latency and the slice
// that was in force for vmID during that period. Call once per VM per
// scheduling period, before ComputeSlice/NodeSlices.
func (c *Controller) Observe(vmID int, avgLatency, sliceInForce sim.Time) {
	if avgLatency < 0 {
		panic(fmt.Sprintf("core: negative latency %v", avgLatency))
	}
	if sliceInForce <= 0 {
		panic(fmt.Sprintf("core: non-positive slice %v", sliceInForce))
	}
	st := c.state(vmID)
	copy(st.lat, st.lat[1:])
	st.lat[len(st.lat)-1] = avgLatency
	copy(st.slice, st.slice[1:])
	st.slice[len(st.slice)-1] = sliceInForce
	st.observed++
}

// Forget drops a VM's history (VM destroyed or migrated away).
func (c *Controller) Forget(vmID int) { delete(c.vms, vmID) }

// History returns copies of the latency and slice windows for vmID
// (oldest first), for diagnostics.
func (c *Controller) History(vmID int) (lat, slice []sim.Time) {
	st := c.state(vmID)
	return append([]sim.Time(nil), st.lat...), append([]sim.Time(nil), st.slice...)
}

// ComputeSlice is Algorithm 1: the slice vmID should use in the coming
// scheduling period, derived from the last Window periods of history.
func (c *Controller) ComputeSlice(vmID int) sim.Time {
	st := c.state(vmID)
	w := c.cfg.Window
	latPrev := st.lat[w-1]  // sLatency_{i-1}
	latPrev2 := st.lat[w-2] // sLatency_{i-2}
	latPrev3 := st.lat[w-3] // sLatency_{i-3} (window >= 3; for window 2 reuse oldest)
	if w < 3 {
		latPrev3 = st.lat[0]
	}
	slicePrev := st.slice[w-1]  // timeSlice_{i-1}
	slicePrev2 := st.slice[w-2] // timeSlice_{i-2}

	next := slicePrev

	rising := latPrev2 < latPrev
	fallingDueToShorterSlice := latPrev3 > latPrev2 && latPrev2 > latPrev && slicePrev2 > slicePrev
	if rising || fallingDueToShorterSlice {
		switch {
		case slicePrev > c.cfg.Alpha && slicePrev-c.cfg.Alpha >= c.cfg.MinThreshold:
			next = slicePrev - c.cfg.Alpha
		case slicePrev > c.cfg.Beta && slicePrev-c.cfg.Beta >= c.cfg.MinThreshold:
			next = slicePrev - c.cfg.Beta
		}
	}

	// Lines 12-20: latency stayed zero for the whole window → relax the
	// slice back toward the default.
	allZero := true
	for _, l := range st.lat {
		if l != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		switch {
		case slicePrev > c.cfg.Default-c.cfg.Alpha:
			next = c.cfg.Default
		case slicePrev+c.cfg.Alpha <= c.cfg.Default:
			next = slicePrev + c.cfg.Alpha
		default:
			next = slicePrev + c.cfg.Beta
		}
		if next > c.cfg.Default {
			next = c.cfg.Default
		}
	}

	if next < c.cfg.MinThreshold {
		next = c.cfg.MinThreshold
	}
	return next
}

// VMInfo describes one VM for NodeSlices.
type VMInfo struct {
	ID int
	// Parallel marks VMs running tightly-coupled parallel applications.
	Parallel bool
	// AdminSlice, when nonzero, pins a non-parallel VM's slice (the
	// administrator interface of §III-C). Ignored for parallel VMs.
	AdminSlice sim.Time
}

// NodeSlices is Algorithm 2: compute every VM's slice for the coming
// period on one physical node. All parallel VMs receive the minimum of
// their Algorithm-1 slices; non-parallel VMs receive their admin slice or
// the default. With no parallel VMs everything runs at the default.
func (c *Controller) NodeSlices(vms []VMInfo) map[int]sim.Time {
	out := make(map[int]sim.Time, len(vms))
	minSlice := sim.Time(0)
	for _, vm := range vms {
		if !vm.Parallel {
			continue
		}
		s := c.ComputeSlice(vm.ID)
		if minSlice == 0 || s < minSlice {
			minSlice = s
		}
	}
	for _, vm := range vms {
		switch {
		case vm.Parallel && minSlice > 0:
			out[vm.ID] = minSlice
		case !vm.Parallel && vm.AdminSlice > 0:
			out[vm.ID] = vm.AdminSlice
		default:
			out[vm.ID] = c.cfg.Default
		}
	}
	return out
}

// PerVMSlices is the ablation of Algorithm 2's node-level minimum: each
// parallel VM keeps its own Algorithm-1 slice (DSS-style independence).
// The paper argues this is worse — a co-resident VM with a longer slice
// stretches the others' spin latencies — and the "ablate" experiment
// quantifies it.
func (c *Controller) PerVMSlices(vms []VMInfo) map[int]sim.Time {
	out := make(map[int]sim.Time, len(vms))
	for _, vm := range vms {
		switch {
		case vm.Parallel:
			out[vm.ID] = c.ComputeSlice(vm.ID)
		case vm.AdminSlice > 0:
			out[vm.ID] = vm.AdminSlice
		default:
			out[vm.ID] = c.cfg.Default
		}
	}
	return out
}
