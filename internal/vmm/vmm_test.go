package vmm

import (
	"testing"

	"atcsched/internal/netmodel"
	"atcsched/internal/sim"
)

// rrSched is a minimal FIFO round-robin scheduler for white-box tests.
type rrSched struct {
	node  *Node
	q     []*VCPU
	slice sim.Time
	// preemptOnWake makes every wake preempt (to exercise that path).
	preemptOnWake bool
}

func (s *rrSched) Name() string                     { return "RR" }
func (s *rrSched) Register(v *VCPU)                 {}
func (s *rrSched) Enqueue(v *VCPU, r EnqueueReason) { s.q = append(s.q, v) }
func (s *rrSched) PickNext(p *PCPU) *VCPU {
	if len(s.q) == 0 {
		return nil
	}
	v := s.q[0]
	s.q = s.q[1:]
	return v
}
func (s *rrSched) Slice(v *VCPU) sim.Time             { return s.slice }
func (s *rrSched) WakePreempts(p *PCPU, w *VCPU) bool { return s.preemptOnWake }
func (s *rrSched) OnTick(n *Node)                     {}
func (s *rrSched) OnPeriod(n *Node)                   {}

func testWorld(t *testing.T, nodes, pcpus int, slice sim.Time) *World {
	t.Helper()
	cfg := DefaultNodeConfig()
	cfg.PCPUs = pcpus
	cfg.Dom0VCPUs = 1
	w, err := NewWorld(nodes, cfg, netmodel.DefaultConfig(), func(n *Node) Scheduler {
		return &rrSched{node: n, slice: slice}
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// seqProc yields a fixed sequence of actions then Done.
type seqProc struct {
	actions []Action
	i       int
}

func (p *seqProc) Next() Action {
	if p.i >= len(p.actions) {
		return Done()
	}
	a := p.actions[p.i]
	p.i++
	return a
}

func TestFIFO(t *testing.T) {
	var q fifo[int]
	if q.len() != 0 {
		t.Fatal("new fifo not empty")
	}
	for i := 0; i < 200; i++ {
		q.push(i)
	}
	if q.peek() != 0 {
		t.Fatal("peek != 0")
	}
	for i := 0; i < 200; i++ {
		if got := q.pop(); got != i {
			t.Fatalf("pop = %d, want %d", got, i)
		}
	}
	// Interleaved pushes and pops exercise compaction.
	n := 0
	for i := 0; i < 500; i++ {
		q.push(i)
		if i%2 == 1 {
			if got := q.pop(); got != n {
				t.Fatalf("pop = %d, want %d", got, n)
			}
			n++
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("pop of empty fifo did not panic")
		}
	}()
	var empty fifo[int]
	empty.pop()
}

func TestSingleComputeCompletes(t *testing.T) {
	w := testWorld(t, 1, 1, 30*sim.Millisecond)
	vm := w.Node(0).NewVM("vm0", ClassParallel, 1, 0, 1)
	v := vm.VCPU(0)
	var doneAt sim.Time
	v.SetProcess(&seqProc{actions: []Action{
		Compute(5 * sim.Millisecond),
		{Kind: ActCompute, Work: sim.Millisecond, Then: func() { doneAt = w.Eng.Now() }},
	}}, nil)
	w.Start()
	w.RunUntil(sim.Second)
	// dom0's initial dispatch-and-block plus two context switches put a
	// few microseconds ahead of the 6 ms of work.
	if doneAt < 6*sim.Millisecond || doneAt > 6*sim.Millisecond+50*sim.Microsecond {
		t.Errorf("compute finished at %v, want ~6ms", doneAt)
	}
	if v.Rounds() != 1 {
		t.Errorf("rounds = %d", v.Rounds())
	}
	if v.State() != StateIdle {
		t.Errorf("state = %v, want idle", v.State())
	}
	if got := v.RunTime(); got < 6*sim.Millisecond || got > 6*sim.Millisecond+20*sim.Microsecond {
		t.Errorf("RunTime = %v, want ~6ms", got)
	}
}

func TestRoundRobinPreemption(t *testing.T) {
	// Two compute-bound VCPUs on one PCPU with a 1 ms slice must
	// interleave and each finish ~at 2x their compute time.
	w := testWorld(t, 1, 1, sim.Millisecond)
	cfg := w.Node(0).Config()
	if cfg.CtxSwitchCost == 0 {
		t.Fatal("test requires nonzero context-switch cost")
	}
	vmA := w.Node(0).NewVM("a", ClassParallel, 1, 0, 1)
	vmB := w.Node(0).NewVM("b", ClassParallel, 1, 0, 1)
	var endA, endB sim.Time
	vmA.VCPU(0).SetProcess(&seqProc{actions: []Action{
		{Kind: ActCompute, Work: 10 * sim.Millisecond, Then: func() { endA = w.Eng.Now() }},
	}}, nil)
	vmB.VCPU(0).SetProcess(&seqProc{actions: []Action{
		{Kind: ActCompute, Work: 10 * sim.Millisecond, Then: func() { endB = w.Eng.Now() }},
	}}, nil)
	w.Start()
	w.RunUntil(sim.Second)
	if endA == 0 || endB == 0 {
		t.Fatal("compute did not finish")
	}
	// Perfect interleave: A finishes around 19-20 ms, B around 20-21 ms
	// (plus context switch costs).
	if endA < 18*sim.Millisecond || endA > 25*sim.Millisecond {
		t.Errorf("endA = %v", endA)
	}
	if endB <= endA || endB > 26*sim.Millisecond {
		t.Errorf("endB = %v (endA = %v)", endB, endA)
	}
	if vmA.CtxSwitches() < 8 {
		t.Errorf("ctx switches = %d, want ~10", vmA.CtxSwitches())
	}
}

func TestSpinlockUncontended(t *testing.T) {
	w := testWorld(t, 1, 1, 30*sim.Millisecond)
	vm := w.Node(0).NewVM("vm0", ClassParallel, 1, 0, 1)
	l := vm.NewLock()
	vm.VCPU(0).SetProcess(&seqProc{actions: []Action{
		Acquire(l), Compute(sim.Millisecond), Release(l),
		Acquire(l), Compute(sim.Millisecond), Release(l),
	}}, nil)
	w.Start()
	w.RunUntil(sim.Second)
	if l.Acquisitions() != 2 {
		t.Errorf("acquisitions = %d", l.Acquisitions())
	}
	if l.Contended() != 0 {
		t.Errorf("contended = %d, want 0", l.Contended())
	}
	if vm.SpinMon.LifetimeCount() != 2 || vm.SpinMon.LifetimeMean() != 0 {
		t.Errorf("monitor count=%d mean=%v", vm.SpinMon.LifetimeCount(), vm.SpinMon.LifetimeMean())
	}
}

// lhpLatency builds the deterministic Figure-3 scenario on one PCPU and
// returns the waiter's spin latency.
//
// FIFO order: dom0 (blocks immediately), holder, waiter, hog.
// The holder computes until just before its slice expires, acquires the
// lock, and is preempted ~200 µs into a 500 µs critical section. The
// waiter then requests the lock (spins a slice), the hog burns a slice,
// and only then does the holder finish and release. The waiter's latency
// is therefore ≈ 2 slices + 300 µs — proportional to the slice length of
// the *other* VMs, with a fixed critical section.
func lhpLatency(t *testing.T, slice sim.Time) sim.Time {
	t.Helper()
	w := testWorld(t, 1, 1, slice)
	node := w.Node(0)
	vmA := node.NewVM("a", ClassParallel, 2, 0, 1)
	vmB := node.NewVM("b", ClassNonParallel, 1, 0, 1)
	l := vmA.NewLock()

	vmA.VCPU(0).SetProcess(&seqProc{actions: []Action{
		Compute(slice - 200*sim.Microsecond),
		Acquire(l),
		Compute(500 * sim.Microsecond), // spans the slice boundary → LHP
		Release(l),
	}}, nil)
	vmA.VCPU(1).SetProcess(&seqProc{actions: []Action{
		Acquire(l),
		Release(l),
	}}, nil)
	vmB.VCPU(0).SetProcess(&seqProc{actions: []Action{
		Compute(10 * slice),
	}}, nil)

	w.Start()
	w.RunUntil(sim.Second)
	if l.Contended() != 1 {
		t.Fatalf("contended = %d, want 1 (slice %v)", l.Contended(), slice)
	}
	return vmA.SpinMon.LifetimeMax()
}

func TestLockHolderPreemptionProducesSpinLatency(t *testing.T) {
	slice := 5 * sim.Millisecond
	lat := lhpLatency(t, slice)
	// Expected ≈ 2·slice + 300 µs ≫ the 500 µs critical section.
	if lat < 2*slice || lat > 2*slice+sim.Millisecond {
		t.Errorf("spin latency = %v, want ~%v", lat, 2*slice+300*sim.Microsecond)
	}
}

func TestSpinLatencyScalesWithSliceLength(t *testing.T) {
	// The paper's core observation: with a fixed 500 µs critical section,
	// the waiter's latency is set by the other VMs' slice lengths.
	long := lhpLatency(t, 10*sim.Millisecond)
	short := lhpLatency(t, sim.Millisecond)
	if long < 20*sim.Millisecond {
		t.Errorf("10ms-slice latency = %v, want ≥ 2 slices", long)
	}
	if short > 4*sim.Millisecond {
		t.Errorf("1ms-slice latency = %v, want ~2.3ms", short)
	}
	if long < 5*short {
		t.Errorf("latency ratio %v/%v too small; slices should dominate", long, short)
	}
}

func TestCrossNodeMessage(t *testing.T) {
	w := testWorld(t, 2, 1, 30*sim.Millisecond)
	vmA := w.Node(0).NewVM("a", ClassParallel, 1, 0, 1)
	vmB := w.Node(1).NewVM("b", ClassParallel, 1, 0, 1)
	var recvAt sim.Time
	vmA.VCPU(0).SetProcess(&seqProc{actions: []Action{
		Send(vmB, 0, 7, 1500),
	}}, nil)
	vmB.VCPU(0).SetProcess(&seqProc{actions: []Action{
		{Kind: ActRecv, Tag: 7, Then: func() { recvAt = w.Eng.Now() }},
	}}, nil)
	w.Start()
	w.RunUntil(sim.Second)
	if recvAt == 0 {
		t.Fatal("message never received")
	}
	// Path: guest send cost + dom0 tx + wire + dom0 rx + guest recv; all
	// nodes are idle so this is fast, but strictly positive.
	if recvAt < 50*sim.Microsecond {
		t.Errorf("recvAt = %v, implausibly fast", recvAt)
	}
	if recvAt > 5*sim.Millisecond {
		t.Errorf("recvAt = %v, implausibly slow on idle cluster", recvAt)
	}
	if vmA.PacketsSent() != 1 || vmB.PacketsReceived() != 1 {
		t.Errorf("sent=%d received=%d", vmA.PacketsSent(), vmB.PacketsReceived())
	}
	if w.Node(0).Backend().TxProcessed() != 1 {
		t.Errorf("node0 tx processed = %d", w.Node(0).Backend().TxProcessed())
	}
	if w.Node(1).Backend().RxProcessed() != 1 {
		t.Errorf("node1 rx processed = %d", w.Node(1).Backend().RxProcessed())
	}
}

func TestLocalMessageSkipsWire(t *testing.T) {
	w := testWorld(t, 1, 2, 30*sim.Millisecond)
	vmA := w.Node(0).NewVM("a", ClassParallel, 1, 0, 1)
	vmB := w.Node(0).NewVM("b", ClassParallel, 1, 0, 1)
	got := false
	vmA.VCPU(0).SetProcess(&seqProc{actions: []Action{Send(vmB, 0, 1, 100)}}, nil)
	vmB.VCPU(0).SetProcess(&seqProc{actions: []Action{
		{Kind: ActRecv, Tag: 1, Then: func() { got = true }},
	}}, nil)
	w.Start()
	w.RunUntil(sim.Second)
	if !got {
		t.Fatal("local message not delivered")
	}
	if w.Fabric.WireBytes() != 0 {
		t.Errorf("local traffic crossed the wire: %d bytes", w.Fabric.WireBytes())
	}
}

func TestMessageBeforeRecvIsQueued(t *testing.T) {
	w := testWorld(t, 1, 2, 30*sim.Millisecond)
	vmA := w.Node(0).NewVM("a", ClassParallel, 1, 0, 1)
	vmB := w.Node(0).NewVM("b", ClassParallel, 1, 0, 1)
	done := false
	vmA.VCPU(0).SetProcess(&seqProc{actions: []Action{Send(vmB, 0, 9, 64)}}, nil)
	// B computes a while first; the packet must wait in its mailbox.
	vmB.VCPU(0).SetProcess(&seqProc{actions: []Action{
		Compute(20 * sim.Millisecond),
		{Kind: ActRecv, Tag: 9, Then: func() { done = true }},
	}}, nil)
	w.Start()
	w.RunUntil(sim.Second)
	if !done {
		t.Fatal("queued message not consumed")
	}
}

func TestDiskRequestRoundTrip(t *testing.T) {
	w := testWorld(t, 1, 1, 30*sim.Millisecond)
	vm := w.Node(0).NewVM("d", ClassNonParallel, 1, 0, 1)
	var doneAt sim.Time
	vm.VCPU(0).SetProcess(&seqProc{actions: []Action{
		{Kind: ActDisk, Size: 1_000_000, Then: func() { doneAt = w.Eng.Now() }},
	}}, nil)
	w.Start()
	w.RunUntil(sim.Second)
	if doneAt == 0 {
		t.Fatal("disk request never completed")
	}
	// 1 MB at 100 MB/s = 10 ms + positioning + scheduling.
	if doneAt < 10*sim.Millisecond || doneAt > 20*sim.Millisecond {
		t.Errorf("disk completion at %v", doneAt)
	}
	if w.Node(0).Backend().DiskProcessed() != 1 {
		t.Errorf("disk processed = %d", w.Node(0).Backend().DiskProcessed())
	}
	if vm.VCPU(0).Rounds() != 1 {
		t.Errorf("rounds = %d", vm.VCPU(0).Rounds())
	}
}

func TestSleepWakes(t *testing.T) {
	w := testWorld(t, 1, 1, 30*sim.Millisecond)
	vm := w.Node(0).NewVM("s", ClassNonParallel, 1, 0, 1)
	var wokeAt sim.Time
	vm.VCPU(0).SetProcess(&seqProc{actions: []Action{
		Sleep(25 * sim.Millisecond),
		{Kind: ActCompute, Work: 0, Then: func() { wokeAt = w.Eng.Now() }},
	}}, nil)
	w.Start()
	w.RunUntil(sim.Second)
	if wokeAt < 25*sim.Millisecond || wokeAt > 26*sim.Millisecond {
		t.Errorf("woke at %v, want ~25ms", wokeAt)
	}
}

func TestOnDoneRestart(t *testing.T) {
	w := testWorld(t, 1, 1, 30*sim.Millisecond)
	vm := w.Node(0).NewVM("r", ClassParallel, 1, 0, 1)
	rounds := 0
	vm.VCPU(0).SetProcess(
		&seqProc{actions: []Action{Compute(sim.Millisecond)}},
		func(v *VCPU) Process {
			rounds++
			if rounds < 5 {
				return &seqProc{actions: []Action{Compute(sim.Millisecond)}}
			}
			return nil
		})
	w.Start()
	w.RunUntil(sim.Second)
	if rounds != 5 {
		t.Errorf("rounds = %d, want 5", rounds)
	}
	if vm.VCPU(0).Rounds() != 5 {
		t.Errorf("VCPU.Rounds = %d", vm.VCPU(0).Rounds())
	}
}

func TestIdleVCPURevival(t *testing.T) {
	w := testWorld(t, 1, 1, 30*sim.Millisecond)
	vm := w.Node(0).NewVM("i", ClassParallel, 1, 0, 1)
	v := vm.VCPU(0)
	first := false
	second := false
	v.SetProcess(&seqProc{actions: []Action{
		{Kind: ActCompute, Work: sim.Millisecond, Then: func() { first = true }},
	}}, nil)
	w.Start()
	w.RunUntil(100 * sim.Millisecond)
	if !first || v.State() != StateIdle {
		t.Fatalf("first=%v state=%v", first, v.State())
	}
	v.SetProcess(&seqProc{actions: []Action{
		{Kind: ActCompute, Work: sim.Millisecond, Then: func() { second = true }},
	}}, nil)
	w.Node(0).WakeIdle(v)
	w.RunUntil(200 * sim.Millisecond)
	if !second {
		t.Error("revived VCPU did not run")
	}
}

func TestRunqueueWaitAccounting(t *testing.T) {
	w := testWorld(t, 1, 1, 5*sim.Millisecond)
	vmA := w.Node(0).NewVM("a", ClassParallel, 1, 0, 1)
	vmB := w.Node(0).NewVM("b", ClassParallel, 1, 0, 1)
	vmA.VCPU(0).SetProcess(&seqProc{actions: []Action{Compute(20 * sim.Millisecond)}}, nil)
	vmB.VCPU(0).SetProcess(&seqProc{actions: []Action{Compute(20 * sim.Millisecond)}}, nil)
	w.Start()
	w.RunUntil(sim.Second)
	// Each waited roughly half the total makespan.
	if vmA.WaitTime()+vmB.WaitTime() < 30*sim.Millisecond {
		t.Errorf("total wait = %v, want ~40ms", vmA.WaitTime()+vmB.WaitTime())
	}
	if vmA.RunTime() < 20*sim.Millisecond {
		t.Errorf("vmA RunTime = %v", vmA.RunTime())
	}
}

func TestWorldValidation(t *testing.T) {
	cfg := DefaultNodeConfig()
	if _, err := NewWorld(0, cfg, netmodel.DefaultConfig(), nil); err == nil {
		t.Error("0 nodes accepted")
	}
	bad := cfg
	bad.PCPUs = 0
	if _, err := NewWorld(1, bad, netmodel.DefaultConfig(), func(n *Node) Scheduler { return &rrSched{slice: 1} }); err == nil {
		t.Error("0 PCPUs accepted")
	}
	if _, err := NewWorld(1, cfg, netmodel.DefaultConfig(), nil); err == nil {
		t.Error("nil factory accepted")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (sim.Time, uint64, int64) {
		w := testWorld(t, 2, 2, sim.Millisecond)
		vmA := w.Node(0).NewVM("a", ClassParallel, 2, 256<<10, 0.6)
		vmB := w.Node(1).NewVM("b", ClassParallel, 2, 256<<10, 0.6)
		l := vmA.NewLock()
		var finish sim.Time
		vmA.VCPU(0).SetProcess(&seqProc{actions: []Action{
			Acquire(l), Compute(2 * sim.Millisecond), Release(l),
			Send(vmB, 0, 1, 4096),
			{Kind: ActRecv, Tag: 2, Then: func() { finish = w.Eng.Now() }},
		}}, nil)
		vmA.VCPU(1).SetProcess(&seqProc{actions: []Action{
			Compute(100 * sim.Microsecond), Acquire(l), Release(l),
		}}, nil)
		vmB.VCPU(0).SetProcess(&seqProc{actions: []Action{
			Recv(1), Compute(sim.Millisecond), Send(vmA, 0, 2, 4096),
		}}, nil)
		vmB.VCPU(1).SetProcess(&seqProc{actions: []Action{Compute(10 * sim.Millisecond)}}, nil)
		w.Start()
		w.RunUntil(sim.Second)
		return finish, w.Eng.Executed(), vmA.SpinMon.LifetimeCount()
	}
	f1, e1, c1 := run()
	f2, e2, c2 := run()
	if f1 != f2 || e1 != e2 || c1 != c2 {
		t.Errorf("non-deterministic: (%v,%d,%d) vs (%v,%d,%d)", f1, e1, c1, f2, e2, c2)
	}
	if f1 == 0 {
		t.Error("round trip never finished")
	}
}

func TestVMAccessors(t *testing.T) {
	w := testWorld(t, 1, 2, sim.Millisecond)
	vm := w.Node(0).NewVM("acc", ClassNonParallel, 3, 1<<20, 0.5)
	if vm.Name() != "acc" || vm.Class() != ClassNonParallel || len(vm.VCPUs()) != 3 {
		t.Error("accessors wrong")
	}
	if vm.Node() != w.Node(0) {
		t.Error("Node() wrong")
	}
	if vm.VCPU(2).Index() != 2 || vm.VCPU(2).VM() != vm {
		t.Error("VCPU accessors wrong")
	}
	if got := len(w.GuestVMs()); got != 1 {
		t.Errorf("GuestVMs = %d", got)
	}
	if got := len(w.VMs()); got != 2 { // + dom0
		t.Errorf("VMs = %d", got)
	}
	if w.Node(0).Dom0().Class() != ClassDom0 {
		t.Error("dom0 class wrong")
	}
	if s := vm.VCPU(0).String(); s != "acc/0" {
		t.Errorf("String = %q", s)
	}
}

func TestClassAndStateStrings(t *testing.T) {
	for _, c := range []VMClass{ClassParallel, ClassNonParallel, ClassDom0, VMClass(9)} {
		if c.String() == "" {
			t.Error("empty class string")
		}
	}
	for _, s := range []VCPUState{StateIdle, StateRunnable, StateRunning, StateBlocked, VCPUState(9)} {
		if s.String() == "" {
			t.Error("empty state string")
		}
	}
	for _, k := range []ActionKind{ActCompute, ActAcquire, ActRelease, ActSend, ActRecv, ActDisk, ActSleep, ActBlock, ActDone, ActionKind(99)} {
		if k.String() == "" {
			t.Error("empty kind string")
		}
	}
}

func TestSpinMonitorSamplePeriod(t *testing.T) {
	var m SpinMonitor
	if m.SamplePeriod() != 0 {
		t.Error("empty sample not 0")
	}
	m.Record(10 * sim.Millisecond)
	m.Record(20 * sim.Millisecond)
	if got := m.SamplePeriod(); got != 15*sim.Millisecond {
		t.Errorf("sample = %v", got)
	}
	if m.SamplePeriod() != 0 {
		t.Error("sample did not reset")
	}
	if m.LifetimeCount() != 2 || m.LifetimeMean() != 15*sim.Millisecond {
		t.Errorf("lifetime count=%d mean=%v", m.LifetimeCount(), m.LifetimeMean())
	}
	if m.LifetimeSum() != 30*sim.Millisecond {
		t.Errorf("sum = %v", m.LifetimeSum())
	}
}

func TestPCPUBusyAccounting(t *testing.T) {
	w := testWorld(t, 1, 1, 30*sim.Millisecond)
	vm := w.Node(0).NewVM("busy", ClassParallel, 1, 0, 1)
	vm.VCPU(0).SetProcess(&seqProc{actions: []Action{Compute(10 * sim.Millisecond)}}, nil)
	w.Start()
	w.RunUntil(100 * sim.Millisecond)
	p := w.Node(0).PCPUs()[0]
	if p.BusyTime() < 10*sim.Millisecond || p.BusyTime() > 12*sim.Millisecond {
		t.Errorf("BusyTime = %v", p.BusyTime())
	}
}

func TestReAcquireHeldLockPanics(t *testing.T) {
	w := testWorld(t, 1, 1, 30*sim.Millisecond)
	vm := w.Node(0).NewVM("x", ClassParallel, 1, 0, 1)
	l := vm.NewLock()
	vm.VCPU(0).SetProcess(&seqProc{actions: []Action{Acquire(l), Acquire(l)}}, nil)
	w.Start()
	defer func() {
		if recover() == nil {
			t.Error("double acquire did not panic")
		}
	}()
	w.RunUntil(sim.Second)
}

func TestReleaseUnheldLockPanics(t *testing.T) {
	w := testWorld(t, 1, 1, 30*sim.Millisecond)
	vm := w.Node(0).NewVM("x", ClassParallel, 1, 0, 1)
	l := vm.NewLock()
	vm.VCPU(0).SetProcess(&seqProc{actions: []Action{Release(l)}}, nil)
	w.Start()
	defer func() {
		if recover() == nil {
			t.Error("release of unheld lock did not panic")
		}
	}()
	w.RunUntil(sim.Second)
}
