// Package rng provides a small deterministic pseudo-random number
// generator (PCG-XSH-RR 64/32) plus the distributions the workload models
// need. Every simulation component draws from an explicitly seeded Source
// so runs are reproducible; nothing in atcsched touches math/rand's global
// state.
package rng

import "math"

// Source is a PCG-XSH-RR 64/32 generator. The zero value is usable but
// every caller should prefer New with an explicit seed.
type Source struct {
	state uint64
	inc   uint64
}

const (
	pcgMultiplier = 6364136223846793005
	pcgIncrement  = 1442695040888963407
)

// New returns a Source seeded with seed. Distinct seeds yield independent
// streams for practical purposes.
func New(seed uint64) *Source {
	s := &Source{inc: pcgIncrement | 1}
	s.state = 0
	s.next()
	s.state += splitmix64(seed)
	s.next()
	return s
}

// NewStream returns a Source with an independent stream selected by
// stream, useful for giving each simulated entity its own generator
// derived from one experiment seed.
func NewStream(seed, stream uint64) *Source {
	s := &Source{inc: (splitmix64(stream^0x9e3779b97f4a7c15) << 1) | 1}
	s.state = 0
	s.next()
	s.state += splitmix64(seed)
	s.next()
	return s
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (s *Source) next() uint32 {
	old := s.state
	s.state = old*pcgMultiplier + s.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Uint32 returns a uniformly distributed 32-bit value.
func (s *Source) Uint32() uint32 { return s.next() }

// Uint64 returns a uniformly distributed 64-bit value.
func (s *Source) Uint64() uint64 {
	return uint64(s.next())<<32 | uint64(s.next())
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded ints.
	bound := uint32(n)
	threshold := -bound % bound
	for {
		r := s.next()
		m := uint64(r) * uint64(bound)
		if uint32(m) >= threshold {
			return int(m >> 32)
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Exp returns an exponentially distributed value with the given mean.
func (s *Source) Exp(mean float64) float64 {
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return -mean * math.Log(u)
}

// Normal returns a normally distributed value with the given mean and
// standard deviation (Box–Muller, one value per call).
func (s *Source) Normal(mean, stddev float64) float64 {
	u1 := s.Float64()
	for u1 == 0 {
		u1 = s.Float64()
	}
	u2 := s.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Jitter returns a value drawn uniformly from
// [mean*(1-frac), mean*(1+frac)], a cheap way to de-synchronize otherwise
// identical workload phases. frac must be in [0, 1].
func (s *Source) Jitter(mean, frac float64) float64 {
	if frac < 0 || frac > 1 {
		panic("rng: Jitter fraction out of [0,1]")
	}
	return mean * (1 + frac*(2*s.Float64()-1))
}

// Uniform returns a uniform float64 in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Choice returns a pseudo-random index weighted by weights. It panics on
// an empty or non-positive-sum weight vector.
func (s *Source) Choice(weights []float64) int {
	var sum float64
	for _, w := range weights {
		if w < 0 {
			panic("rng: negative weight")
		}
		sum += w
	}
	if len(weights) == 0 || sum <= 0 {
		panic("rng: Choice needs positive total weight")
	}
	x := s.Float64() * sum
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
