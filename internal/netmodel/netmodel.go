// Package netmodel models the physical interconnect of the testbed: a
// switched 1 Gbps Ethernet with full bisection bandwidth, one NIC per
// node. Transmissions serialize on the sender's NIC (and the receiver's),
// then traverse the wire with a fixed propagation + switching latency.
// Node-local deliveries bypass the wire; the dom0 software path for those
// lives in the vmm package.
package netmodel

import (
	"fmt"

	"atcsched/internal/sim"
)

// Config parameterizes a Fabric.
type Config struct {
	// BytesPerSec is the per-NIC line rate (default 1 Gbps = 125 MB/s).
	BytesPerSec float64
	// WireLatency is the one-way propagation plus switching latency.
	WireLatency sim.Time
	// LocalLatency is the node-local loopback latency (shared memory copy).
	LocalLatency sim.Time
	// LocalBytesPerSec, when nonzero, serializes node-local deliveries
	// through a per-node loopback at this rate. Zero keeps the
	// historical behaviour — local sends pace only on LocalLatency (a
	// shared-memory copy, not the NIC) — but the bytes are still
	// tallied in LocalBytes so the bypass is visible, not silent.
	LocalBytesPerSec float64
	// RetransmitTimeout is the delay before a transmission discarded by
	// the loss hook is retried (default 1 ms — a transport-level RTO).
	RetransmitTimeout sim.Time
}

// DefaultConfig matches the paper's testbed network: 1 Gbps Ethernet.
func DefaultConfig() Config {
	return Config{
		BytesPerSec:  125e6,
		WireLatency:  50 * sim.Microsecond,
		LocalLatency: 5 * sim.Microsecond,
	}
}

// Fabric is the cluster interconnect.
type Fabric struct {
	eng        *sim.Engine
	cfg        Config
	tx         []sim.Time // per-node NIC transmit-free time
	rx         []sim.Time // per-node NIC receive-free time
	lo         []sim.Time // per-node loopback-free time (LocalBytesPerSec)
	sent       uint64
	delivered  uint64
	wire       uint64 // bytes that crossed the wire
	localBytes uint64 // bytes delivered node-locally (loopback)
	lost       uint64 // transmissions discarded by the loss hook
	retx       uint64 // retransmissions performed after losses

	// lossFn, when set, is consulted once per wire transmission attempt;
	// returning true discards the attempt (it is retried after
	// RetransmitTimeout). bwFn, when set, scales a node's NIC line rate
	// by the returned fraction in (0,1]; values outside that range mean
	// full rate. Both must be deterministic in their arguments plus any
	// explicitly seeded state (see internal/fault).
	lossFn func(src, dst int, now sim.Time) bool
	bwFn   func(node int, now sim.Time) float64
}

// New creates a fabric connecting `nodes` nodes.
func New(eng *sim.Engine, nodes int, cfg Config) *Fabric {
	if nodes <= 0 {
		panic("netmodel: need at least one node")
	}
	if cfg.BytesPerSec <= 0 {
		panic(fmt.Sprintf("netmodel: invalid bandwidth %v", cfg.BytesPerSec))
	}
	return &Fabric{
		eng: eng,
		cfg: cfg,
		tx:  make([]sim.Time, nodes),
		rx:  make([]sim.Time, nodes),
		lo:  make([]sim.Time, nodes),
	}
}

// SetLoss installs (or, with nil, removes) the packet-loss hook.
func (f *Fabric) SetLoss(fn func(src, dst int, now sim.Time) bool) { f.lossFn = fn }

// SetBandwidth installs (or, with nil, removes) the line-rate
// degradation hook.
func (f *Fabric) SetBandwidth(fn func(node int, now sim.Time) float64) { f.bwFn = fn }

// Nodes returns the number of nodes the fabric connects.
func (f *Fabric) Nodes() int { return len(f.tx) }

// PacketsSent returns the number of Send calls so far.
func (f *Fabric) PacketsSent() uint64 { return f.sent }

// PacketsDelivered returns the number of completed deliveries.
func (f *Fabric) PacketsDelivered() uint64 { return f.delivered }

// InFlight returns packets sent but not yet delivered.
func (f *Fabric) InFlight() uint64 { return f.sent - f.delivered }

// WireBytes returns the bytes that crossed the physical wire (node-local
// traffic excluded).
func (f *Fabric) WireBytes() uint64 { return f.wire }

// LocalBytes returns the bytes delivered node-locally over the loopback
// path (never on the wire).
func (f *Fabric) LocalBytes() uint64 { return f.localBytes }

// PacketsLost returns the transmissions discarded by the loss hook.
func (f *Fabric) PacketsLost() uint64 { return f.lost }

// Retransmits returns the retransmissions performed after losses.
func (f *Fabric) Retransmits() uint64 { return f.retx }

// Send transmits size bytes from node src to node dst, invoking deliver
// when the last byte arrives at dst's NIC. Node-local sends take the
// loopback path: LocalLatency, plus loopback serialization when
// LocalBytesPerSec is configured.
func (f *Fabric) Send(src, dst, size int, deliver func()) {
	if src < 0 || src >= len(f.tx) || dst < 0 || dst >= len(f.tx) {
		panic(fmt.Sprintf("netmodel: node out of range src=%d dst=%d nodes=%d", src, dst, len(f.tx)))
	}
	if size < 0 {
		panic("netmodel: negative packet size")
	}
	f.sent++
	wrapped := func() {
		f.delivered++
		deliver()
	}
	now := f.eng.Now()
	if src == dst {
		f.localBytes += uint64(size)
		at := now + f.cfg.LocalLatency
		if f.cfg.LocalBytesPerSec > 0 {
			start := now
			if f.lo[src] > start {
				start = f.lo[src]
			}
			done := start + sim.Time(float64(size)/f.cfg.LocalBytesPerSec*float64(sim.Second))
			f.lo[src] = done
			at = done + f.cfg.LocalLatency
		}
		f.eng.At(at, wrapped)
		return
	}
	f.transmit(src, dst, size, wrapped)
}

// transmit books one wire attempt. A lost attempt is retried after
// RetransmitTimeout — link/transport recovery below the guest: the
// guest's send completes once, delivery just arrives late, so the
// packet-conservation invariant holds under loss.
func (f *Fabric) transmit(src, dst, size int, wrapped func()) {
	now := f.eng.Now()
	f.wire += uint64(size)
	start := now
	if f.tx[src] > start {
		start = f.tx[src]
	}
	txDone := start + f.serialTime(size, src, now)
	f.tx[src] = txDone
	if f.lossFn != nil && f.lossFn(src, dst, now) {
		f.lost++
		rto := f.cfg.RetransmitTimeout
		if rto <= 0 {
			rto = sim.Millisecond
		}
		f.eng.At(txDone+rto, func() {
			f.retx++
			f.transmit(src, dst, size, wrapped)
		})
		return
	}
	// Receiver-side serialization: the packet occupies dst's NIC for its
	// own serialization time. An idle receiver sees the pipelined
	// arrival (last byte lands WireLatency after it left the sender),
	// but N senders converging on one NIC drain at line rate, not N×it.
	arrive := txDone + f.cfg.WireLatency
	rxDone := arrive
	if t := f.rx[dst] + f.serialTime(size, dst, now); t > rxDone {
		rxDone = t
	}
	f.rx[dst] = rxDone
	f.eng.At(rxDone, wrapped)
}

// serialTime returns the serialization time of size bytes on node's
// NIC, honouring the bandwidth-degradation hook.
func (f *Fabric) serialTime(size, node int, now sim.Time) sim.Time {
	bw := f.cfg.BytesPerSec
	if f.bwFn != nil {
		if frac := f.bwFn(node, now); frac > 0 && frac < 1 {
			bw *= frac
		}
	}
	return sim.Time(float64(size) / bw * float64(sim.Second))
}
