package sim

import (
	"encoding/json"
	"fmt"
	"time"
)

// MarshalJSON renders a Time as a duration string ("30ms", "1.5s"), the
// form scheduler option files use.
func (t Time) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(t).String())
}

// UnmarshalJSON accepts either a duration string ("6ms", "300us") or a
// bare number of nanoseconds, so hand-written scenario files stay
// readable while machine-generated ones can stay numeric.
func (t *Time) UnmarshalJSON(data []byte) error {
	if len(data) > 0 && data[0] == '"' {
		var s string
		if err := json.Unmarshal(data, &s); err != nil {
			return err
		}
		d, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("sim: bad duration %q: %w", s, err)
		}
		*t = Time(d)
		return nil
	}
	var ns int64
	if err := json.Unmarshal(data, &ns); err != nil {
		return fmt.Errorf("sim: time must be a duration string or a nanosecond count: %w", err)
	}
	*t = Time(ns)
	return nil
}
