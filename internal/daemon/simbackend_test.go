package daemon

import (
	"testing"

	"atcsched/internal/core"
	"atcsched/internal/sched/extslice"
	"atcsched/internal/workload"
)

// runClosedLoop executes the daemon against the sim backend for the
// given number of periods and returns per-round progress (completed
// rounds across all clusters) plus the final slice on node 0.
func runClosedLoop(t *testing.T, periods int, control bool) (rounds int, finalSliceMS float64) {
	t.Helper()
	b, err := NewSimBackend(SimBackendConfig{
		Nodes:      2,
		VCPUsPerVM: 8,
		Clusters:   4,
		Kernel:     "lu",
		Class:      workload.ClassA,
		MaxPeriods: periods,
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if control {
		d := New(core.DefaultConfig(), b, b)
		if err := d.Run(); !IsDone(err) {
			t.Fatalf("daemon ended with %v", err)
		}
	} else {
		// No daemon: just advance the same amount of virtual time.
		for {
			if _, err := b.Sample(); err != nil {
				if !IsDone(err) {
					t.Fatal(err)
				}
				break
			}
		}
	}
	for _, r := range b.Runs() {
		rounds += r.Rounds()
	}
	vm0 := b.World.Node(0).VMs()[0]
	sched := b.World.Node(0).Scheduler().(*extslice.Scheduler)
	return rounds, sched.Current(vm0.ID()).Millis()
}

func TestClosedLoopDaemonAcceleratesCluster(t *testing.T) {
	// The whole point of the userspace deployment: the SAME daemon code
	// that would drive hypervisor knobs, driving the simulated cluster,
	// must shorten slices and make the parallel applications complete
	// more rounds than an uncontrolled credit scheduler in the same
	// virtual time.
	const periods = 150 // 4.5 virtual seconds
	withDaemon, slice := runClosedLoop(t, periods, true)
	withoutDaemon, defSlice := runClosedLoop(t, periods, false)
	if slice >= 30 {
		t.Errorf("controlled slice = %vms, want shortened", slice)
	}
	if defSlice != 30 {
		t.Errorf("uncontrolled slice = %vms, want default 30ms", defSlice)
	}
	if withDaemon <= withoutDaemon {
		t.Errorf("rounds with daemon %d <= without %d", withDaemon, withoutDaemon)
	}
	t.Logf("closed loop: %d rounds vs %d uncontrolled; final slice %.1fms", withDaemon, withoutDaemon, slice)
}

func TestSimBackendDefaults(t *testing.T) {
	b, err := NewSimBackend(SimBackendConfig{Class: workload.ClassA})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Runs()) != 4 {
		t.Errorf("clusters = %d", len(b.Runs()))
	}
	s, err := b.Sample()
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 8 { // 4 clusters x 2 nodes
		t.Errorf("samples = %d", len(s))
	}
	if b.Periods() != 1 {
		t.Errorf("periods = %d", b.Periods())
	}
}

func TestIsDone(t *testing.T) {
	if !IsDone(errDone{}) {
		t.Error("errDone not recognized")
	}
	if IsDone(nil) {
		t.Error("nil recognized as done")
	}
}
