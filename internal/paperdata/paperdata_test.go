package paperdata

import (
	"math"
	"testing"

	"atcsched/internal/trace"
)

func TestEuclidTableConsistent(t *testing.T) {
	if len(Euclid.CandidatesMS) != len(Euclid.D) {
		t.Fatal("candidate/D length mismatch")
	}
	// The paper's stated minimum D is at 0.3 ms.
	best := 0
	for i, d := range Euclid.D {
		if d < Euclid.D[best] {
			best = i
		}
	}
	if Euclid.CandidatesMS[best] != Euclid.BestMS {
		t.Errorf("paper's min D at %v ms, BestMS says %v", Euclid.CandidatesMS[best], Euclid.BestMS)
	}
}

func TestFig10QuotedPointsConsistent(t *testing.T) {
	// §IV-B1: "BS and CS run 566.7% and 253.3% as long as ATC" — verify
	// the encoded normalized values reproduce those ratios.
	p := Fig10.LuAt8Nodes
	if r := p.BS / p.ATC; math.Abs(r-5.667) > 0.01 {
		t.Errorf("BS/ATC = %v, want 5.667", r)
	}
	if r := p.CS / p.ATC; math.Abs(r-2.533) > 0.01 {
		t.Errorf("CS/ATC = %v, want 2.533", r)
	}
	if Fig10.GainMin >= Fig10.GainMax {
		t.Error("gain band inverted")
	}
	if len(Fig10.Ordering) != 5 || Fig10.Ordering[0] != "ATC" {
		t.Errorf("ordering = %v", Fig10.Ordering)
	}
}

func TestTableIMirrorsTracePackage(t *testing.T) {
	for _, s := range trace.TableI() {
		if TableI[s.Processors] != s.Share {
			t.Errorf("share for %d: paperdata %v vs trace %v", s.Processors, TableI[s.Processors], s.Share)
		}
	}
	var sum float64
	for _, v := range TableI {
		sum += v
	}
	if math.Abs(sum-1) > 0.001 {
		t.Errorf("shares sum to %v", sum)
	}
}

func TestFig11QuotedPoint(t *testing.T) {
	// ATC must be the best and CR the worst in the quoted VC1 point.
	p := Fig11VC1SP
	if !(p.ATC < p.DSS && p.DSS < p.CS && p.CS < p.BS && p.BS < p.CR) {
		t.Errorf("quoted ordering broken: %+v", p)
	}
}
