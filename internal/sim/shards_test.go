package sim

import (
	"fmt"
	"testing"
)

// TestFreePoolCapped proves the Event recycle list stays bounded under a
// cancel-heavy burst (the pool used to grow without limit, pinning the
// burst's memory for the whole run).
func TestFreePoolCapped(t *testing.T) {
	e := New()
	handles := make([]Handle, 0, 4*maxFreeEvents)
	for i := 0; i < 4*maxFreeEvents; i++ {
		handles = append(handles, e.Schedule(Time(i+1), func() {}))
	}
	for _, h := range handles {
		e.Cancel(h)
	}
	if len(e.free) > maxFreeEvents {
		t.Fatalf("free pool grew to %d after cancel burst, cap is %d", len(e.free), maxFreeEvents)
	}
	// Fired events respect the cap too.
	for i := 0; i < 4*maxFreeEvents; i++ {
		e.Schedule(Time(i+1), func() {})
	}
	e.Run()
	if len(e.free) > maxFreeEvents {
		t.Fatalf("free pool grew to %d after run, cap is %d", len(e.free), maxFreeEvents)
	}
}

// TestSteadyStateAllocs is the alloc-count regression test for the event
// pool: once warm, a schedule/fire cycle must reuse pooled Events rather
// than allocate.
func TestSteadyStateAllocs(t *testing.T) {
	e := New()
	fn := func() {}
	// Warm the pool and the heap slice.
	for i := 0; i < 64; i++ {
		e.Schedule(1, fn)
	}
	e.Run()
	avg := testing.AllocsPerRun(200, func() {
		e.Schedule(1, fn)
		e.Step()
	})
	if avg > 0 {
		t.Fatalf("steady-state schedule+fire allocates %.2f objects per cycle, want 0", avg)
	}
}

// shardScript runs a fixed cross-source ping-pong script on a group with
// the given shard count and source→shard assignment, returning an
// execution log that must be identical for every sharding.
func shardScript(t *testing.T, shards int, assign func(src int) int) string {
	t.Helper()
	const look = 50 * Microsecond
	const sources = 4
	g := NewShardGroup(shards, look)
	for s := 0; s < sources; s++ {
		g.AssignSource(s, assign(s))
	}
	// One log per source: each source's events run on exactly one shard's
	// goroutine, so per-source appends are race-free, and the per-source
	// event order (with timestamps) is the determinism contract.
	logs := make([][]string, sources)
	var hop func(src, hops int) func()
	hop = func(src, hops int) func() {
		return func() {
			eng := g.Engine(g.shardOf[src])
			logs[src] = append(logs[src], fmt.Sprintf("src%d hop%d at=%d", src, hops, eng.Now()))
			if hops == 0 {
				return
			}
			dst := (src + 1) % sources
			// Cross-source: at least one lookahead of delay.
			g.Post(src, dst, eng.Now()+look+Time(src+1)*Microsecond, hop(dst, hops-1))
			// Source-local follow-up inside the window.
			eng.Schedule(Time(hops)*Microsecond, func() {
				logs[src] = append(logs[src], fmt.Sprintf("src%d local%d at=%d", src, hops, eng.Now()))
			})
		}
	}
	for s := 0; s < sources; s++ {
		g.Engine(assign(s)).At(Time(s)*Microsecond, hop(s, 6))
	}
	g.RunUntil(5 * Millisecond)
	if got := g.Now(); got != 5*Millisecond {
		t.Fatalf("group clock %v, want 5ms", got)
	}
	out := ""
	for _, l := range logs {
		for _, line := range l {
			out += line + "\n"
		}
	}
	return out
}

// TestShardGroupDeterministic proves the cross-shard delivery order is a
// pure function of virtual time: the same script executes identically at
// shard counts 1, 2 and 4 and under different source placements.
func TestShardGroupDeterministic(t *testing.T) {
	ref := shardScript(t, 1, func(int) int { return 0 })
	cases := []struct {
		name   string
		shards int
		assign func(int) int
	}{
		{"2-shards-split", 2, func(s int) int { return s % 2 }},
		{"2-shards-blocks", 2, func(s int) int { return s / 2 }},
		{"4-shards", 4, func(s int) int { return s }},
	}
	for _, c := range cases {
		if got := shardScript(t, c.shards, c.assign); got != ref {
			t.Errorf("%s: execution log diverged from serial reference\nref:\n%s\ngot:\n%s", c.name, ref, got)
		}
	}
}

// TestShardGroupStop proves RequestStop lands at a deterministic segment
// boundary and Resume continues cleanly.
func TestShardGroupStop(t *testing.T) {
	const look = 50 * Microsecond
	g := NewShardGroup(2, look)
	g.AssignSource(0, 0)
	g.AssignSource(1, 1)
	fired := 0
	g.Engine(0).At(10*Microsecond, func() {
		fired++
		g.RequestStop()
	})
	g.Engine(1).At(300*Microsecond, func() { fired++ })
	g.RunUntil(Millisecond)
	if !g.Stopped() {
		t.Fatal("group not stopped after RequestStop")
	}
	if fired != 1 {
		t.Fatalf("fired %d events before stop, want 1", fired)
	}
	// The stop point is the end of the segment the request landed in.
	if g.Now() != look {
		t.Fatalf("stopped at %v, want the window boundary %v", g.Now(), look)
	}
	g.Resume()
	g.RunUntil(Millisecond)
	if fired != 2 || g.Now() != Millisecond {
		t.Fatalf("after resume: fired=%d now=%v, want 2 events and 1ms", fired, g.Now())
	}
}

// TestShardGroupLookaheadViolation proves a Post inside the running
// window is rejected rather than silently reordered.
func TestShardGroupLookaheadViolation(t *testing.T) {
	const look = 50 * Microsecond
	g := NewShardGroup(1, look)
	g.AssignSource(0, 0)
	g.AssignSource(1, 0)
	g.Engine(0).At(Microsecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("Post inside the window did not panic")
			}
		}()
		g.Post(0, 1, 2*Microsecond, func() {})
	})
	g.RunUntil(100 * Microsecond)
}
