package daemon

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"atcsched/internal/core"
	"atcsched/internal/sim"
)

func ms(f float64) sim.Time { return sim.Time(f * float64(sim.Millisecond)) }

func TestDaemonShortensUnderRisingLatency(t *testing.T) {
	var periods [][]VMSample
	lat := sim.Time(0)
	for i := 0; i < 10; i++ {
		lat += ms(1)
		periods = append(periods, []VMSample{
			{ID: 1, AvgSpinLatency: lat, Parallel: true},
			{ID: 2, Parallel: false},
		})
	}
	act := &MapActuator{}
	d := New(core.DefaultConfig(), &SliceSource{Periods: periods}, act)
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	if d.Periods() != 10 {
		t.Errorf("periods = %d", d.Periods())
	}
	if got := act.Last[1]; got >= ms(30) {
		t.Errorf("parallel slice = %v, want shortened", got)
	}
	if got := act.Last[2]; got != ms(30) {
		t.Errorf("non-parallel slice = %v, want default", got)
	}
	if act.Applies != 10 {
		t.Errorf("applies = %d", act.Applies)
	}
}

func TestDaemonRespectsAdminSlice(t *testing.T) {
	src := &SliceSource{Periods: [][]VMSample{
		{{ID: 1, Parallel: false, AdminSlice: ms(6)}},
	}}
	act := &MapActuator{}
	d := New(core.DefaultConfig(), src, act)
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	if act.Last[1] != ms(6) {
		t.Errorf("slice = %v, want admin 6ms", act.Last[1])
	}
}

func TestDaemonRecoversOnZeroLatency(t *testing.T) {
	var periods [][]VMSample
	for i := 0; i < 6; i++ {
		periods = append(periods, []VMSample{{ID: 1, AvgSpinLatency: ms(float64(6 - i)), Parallel: true}})
	}
	for i := 0; i < 40; i++ {
		periods = append(periods, []VMSample{{ID: 1, AvgSpinLatency: 0, Parallel: true}})
	}
	act := &MapActuator{}
	d := New(core.DefaultConfig(), &SliceSource{Periods: periods}, act)
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	if act.Last[1] != ms(30) {
		t.Errorf("slice = %v, want recovered to default", act.Last[1])
	}
}

func TestWriterActuatorFormat(t *testing.T) {
	var buf bytes.Buffer
	act := WriterActuator{W: &buf}
	if err := act.Apply(map[int]sim.Time{2: ms(6), 1: ms(30)}); err != nil {
		t.Fatal(err)
	}
	want := "vm1 30000us\nvm2 6000us\n--\n"
	if buf.String() != want {
		t.Errorf("output = %q, want %q", buf.String(), want)
	}
}

func TestSliceSourceEOF(t *testing.T) {
	src := &SliceSource{Periods: [][]VMSample{{}}}
	if _, err := src.Sample(); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Sample(); err != io.EOF {
		t.Errorf("err = %v, want EOF", err)
	}
}

func TestNewPanicsOnNil(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil source accepted")
		}
	}()
	New(core.DefaultConfig(), nil, &MapActuator{})
}

func TestDaemonEndToEndTrace(t *testing.T) {
	// A full trajectory through the WriterActuator: contention phase then
	// quiet phase; the rendered trace must show the slice walking down
	// and back up.
	var periods [][]VMSample
	for i := 0; i < 8; i++ {
		periods = append(periods, []VMSample{{ID: 7, AvgSpinLatency: ms(float64(i + 1)), Parallel: true}})
	}
	for i := 0; i < 40; i++ {
		periods = append(periods, []VMSample{{ID: 7, AvgSpinLatency: 0, Parallel: true}})
	}
	var buf bytes.Buffer
	d := New(core.DefaultConfig(), &SliceSource{Periods: periods}, WriterActuator{W: &buf})
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(buf.String(), "\n")
	if !strings.Contains(buf.String(), "vm7 24000us") {
		t.Errorf("trace missing first α step:\n%s", strings.Join(lines[:10], "\n"))
	}
	if lines[len(lines)-3] != "vm7 30000us" {
		t.Errorf("final slice line = %q, want recovery to 30ms", lines[len(lines)-3])
	}
}
