// Daemon: use the ATC controller (the paper's Algorithms 1-2) as a pure
// library against a mock actuator — the shape of a dom0 userspace
// deployment. A synthetic contention episode drives the slice down to
// the 0.3 ms threshold and back to the 30 ms default.
package main

import (
	"fmt"

	"atcsched"
	"atcsched/internal/sim"
)

func main() {
	ctl := atcsched.NewController(atcsched.DefaultControlConfig())
	const vmID = 1
	slice := atcsched.DefaultControlConfig().Default

	episode := func(period int) sim.Time {
		switch {
		case period < 3:
			return 0
		case period < 14: // rising contention
			return sim.Time(period) * sim.Millisecond
		case period < 20: // decaying
			return sim.Time(20-period) * 500 * sim.Microsecond
		default:
			return 0
		}
	}

	fmt.Println("period  avg spin latency  ->  next slice")
	for p := 0; p < 32; p++ {
		lat := episode(p)
		ctl.Observe(vmID, lat, slice)
		slices := ctl.NodeSlices([]atcsched.VMInfo{{ID: vmID, Parallel: true}})
		slice = slices[vmID]
		fmt.Printf("%6d  %16v  ->  %v\n", p, lat, slice)
	}
	fmt.Println("\nthe slice walks down by α=6ms, refines by β=0.3ms toward the")
	fmt.Println("0.3ms threshold under contention, and snaps back to the 30ms")
	fmt.Println("default after three zero-latency periods (Algorithm 1).")
}
