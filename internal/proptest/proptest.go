// Package proptest is the simulator's randomized correctness harness: a
// seed-driven scenario generator plus a property battery that every
// generated world must survive under every scheduling approach.
//
// The simulator is the measurement instrument behind every claim this
// repository reproduces, so its correctness ceiling is the repo's
// correctness ceiling. The battery therefore checks, for each generated
// scenario:
//
//   - invariants: World.Audit passes periodically mid-run (via the
//     cluster audit hook) and at shutdown;
//   - liveness and conservation: every measured run completes exactly
//     its target rounds, every parallel VCPU retires its process and
//     idles (no VCPU left spinning or waiting), the audited clock is
//     monotone, and each virtual cluster posts exactly the analytic
//     packet count implied by its communication pattern;
//   - determinism: replaying the same seed yields byte-identical result
//     structs, scheduling traces and fault-injection reports;
//   - differential agreement: all approaches (CR, CS, BS, DSS, VS, HY,
//     ATC) complete the same logical work on the same scenario.
//
// A slice of generated scenarios carries a fault-injection schedule
// (stragglers, packet loss, bandwidth degradation, monitor faults); the
// full battery must hold under faults too — loss is modeled as delayed
// retransmission, so conservation and liveness survive.
//
// Failures reproduce from a single generator seed (see the sweep test's
// -proptest.seed flag); Shrink minimizes a failing Spec to a smaller
// one that still fails.
package proptest

import (
	"fmt"

	"atcsched/internal/fault"
	"atcsched/internal/rng"
	"atcsched/internal/sched/registry"
	"atcsched/internal/sim"
	"atcsched/internal/workload"
)

// Spec is one generated scenario: the world shape, the tenants, and the
// scheduler parameters — everything except the approach under test, so
// the same Spec runs differentially across all approaches. It is plain
// data (JSON-marshalable) so failing cases can be reported, minimized
// and replayed.
type Spec struct {
	// Seed drives all workload randomness inside the world.
	Seed uint64 `json:"seed"`
	// Nodes and PCPUs shape the physical cluster.
	Nodes int `json:"nodes"`
	PCPUs int `json:"pcpus"`
	// FixedSliceMs, when nonzero, pins the base time slice.
	FixedSliceMs float64 `json:"fixedSliceMs,omitempty"`
	// DisableBoost/DisableSteal toggle the credit core's wake boost and
	// idle stealing — adversarial knobs for the state machine.
	DisableBoost bool `json:"disableBoost,omitempty"`
	DisableSteal bool `json:"disableSteal,omitempty"`
	// Clusters are the measured parallel tenants.
	Clusters []ClusterSpec `json:"clusters"`
	// Jobs are non-parallel co-tenants (background noise; their work is
	// time-dependent and excluded from conservation checks).
	Jobs []JobSpec `json:"jobs,omitempty"`
	// NodeKinds, when present, pins individual nodes to a registered
	// scheduler kind regardless of the approach under test (heterogeneous
	// clusters). Entry i applies to node i; an empty string keeps the
	// approach's scheduler on that node.
	NodeKinds []string `json:"nodeKinds,omitempty"`
	// SwapKind, when nonempty, live-swaps every node to this registered
	// kind at SwapAtSec of virtual time — the mid-run policy-switch
	// property.
	SwapKind  string  `json:"swapKind,omitempty"`
	SwapAtSec float64 `json:"swapAtSec,omitempty"`
	// Faults, when present, layers a deterministic fault schedule onto
	// the run; the battery's properties must hold regardless.
	Faults *fault.Spec `json:"faults,omitempty"`
	// Shards, when positive, runs the world on that many engine shards
	// (the sharded parallel core). Zero keeps the serial engine. The
	// battery's properties are shard-blind; the dedicated shard
	// equivalence check additionally proves fingerprints match across
	// shard counts.
	Shards int `json:"shards,omitempty"`
	// FleetNodes, when positive, additionally runs the fleet
	// control-plane kill-restore property on a separate hollow world of
	// that many nodes: a fleet daemon killed mid-run and restored from
	// its snapshot must converge to a byte-identical control-state
	// snapshot versus an uninterrupted run, including through a
	// daemon-crash blackout window.
	FleetNodes int `json:"fleetNodes,omitempty"`
	// Telemetry attaches a full telemetry plane to every run. The plane
	// must be invisible to the simulation — fingerprints are byte
	// identical with or without it — so the battery runs a slice of
	// scenarios instrumented to keep that contract honest.
	Telemetry bool `json:"telemetry,omitempty"`
	// HorizonSec caps the run's virtual time (liveness safety net).
	HorizonSec float64 `json:"horizonSec"`
}

// ClusterSpec sizes one virtual cluster and its BSP application.
type ClusterSpec struct {
	Kernel string `json:"kernel"`
	Class  string `json:"class"`
	VMs    int    `json:"vms"`
	VCPUs  int    `json:"vcpus"`
	Rounds int    `json:"rounds"`
	// Iterations overrides the kernel's superstep count, scaling work
	// down to property-test size.
	Iterations int `json:"iterations"`
}

// JobSpec places one non-parallel tenant.
type JobSpec struct {
	// Type is ping, web, disk, stream, or cpu.
	Type string `json:"type"`
	Node int    `json:"node"`
	// Name selects the CPU profile for type cpu.
	Name string `json:"name,omitempty"`
}

// Generator hard bounds: Validate rejects anything outside them, so
// fuzz-derived Specs cannot blow up memory or wall time.
const (
	maxNodes      = 8
	maxPCPUs      = 16
	maxClusters   = 4
	maxVMs        = 8
	maxVCPUs      = 16
	maxRounds     = 5
	maxIterations = 20
	maxJobs       = 8
	maxHorizonSec = 3600
	maxShards     = 8
	// maxFleetNodes bounds the hollow fleet in the kill-restore
	// property; the control plane scales far beyond this, but a
	// property-test world stays tiny.
	maxFleetNodes = 8
	// maxFaultWindows is tighter than the fault package's own cap: a
	// property-test world is tiny, and a handful of windows already
	// exercises every hook.
	maxFaultWindows = 8
)

// Validate checks a Spec against the generator's hard bounds.
func (s Spec) Validate() error {
	switch {
	case s.Nodes < 1 || s.Nodes > maxNodes:
		return fmt.Errorf("proptest: nodes %d out of [1,%d]", s.Nodes, maxNodes)
	case s.PCPUs < 1 || s.PCPUs > maxPCPUs:
		return fmt.Errorf("proptest: pcpus %d out of [1,%d]", s.PCPUs, maxPCPUs)
	case s.FixedSliceMs < 0 || s.FixedSliceMs > 100:
		return fmt.Errorf("proptest: fixed slice %vms out of [0,100]", s.FixedSliceMs)
	case len(s.Clusters) < 1 || len(s.Clusters) > maxClusters:
		return fmt.Errorf("proptest: %d clusters out of [1,%d]", len(s.Clusters), maxClusters)
	case len(s.Jobs) > maxJobs:
		return fmt.Errorf("proptest: %d jobs exceeds %d", len(s.Jobs), maxJobs)
	case s.HorizonSec <= 0 || s.HorizonSec > maxHorizonSec:
		return fmt.Errorf("proptest: horizon %vs out of (0,%d]", s.HorizonSec, maxHorizonSec)
	case s.Shards < 0 || s.Shards > maxShards:
		return fmt.Errorf("proptest: shards %d out of [0,%d]", s.Shards, maxShards)
	case s.FleetNodes < 0 || s.FleetNodes > maxFleetNodes:
		return fmt.Errorf("proptest: fleetNodes %d out of [0,%d]", s.FleetNodes, maxFleetNodes)
	}
	for i, c := range s.Clusters {
		if _, err := c.profile(); err != nil {
			return fmt.Errorf("proptest: cluster %d: %w", i, err)
		}
		switch {
		case c.VMs < 1 || c.VMs > maxVMs:
			return fmt.Errorf("proptest: cluster %d: vms %d out of [1,%d]", i, c.VMs, maxVMs)
		case c.VCPUs < 1 || c.VCPUs > maxVCPUs:
			return fmt.Errorf("proptest: cluster %d: vcpus %d out of [1,%d]", i, c.VCPUs, maxVCPUs)
		case c.Rounds < 1 || c.Rounds > maxRounds:
			return fmt.Errorf("proptest: cluster %d: rounds %d out of [1,%d]", i, c.Rounds, maxRounds)
		case c.Iterations < 1 || c.Iterations > maxIterations:
			return fmt.Errorf("proptest: cluster %d: iterations %d out of [1,%d]", i, c.Iterations, maxIterations)
		}
	}
	if len(s.NodeKinds) > s.Nodes {
		return fmt.Errorf("proptest: %d node kinds for %d nodes", len(s.NodeKinds), s.Nodes)
	}
	for i, k := range s.NodeKinds {
		if k == "" {
			continue
		}
		if _, ok := registry.Lookup(k); !ok {
			return fmt.Errorf("proptest: node kind %d: %w", i, registry.UnknownKindError(k))
		}
	}
	switch {
	case s.SwapKind == "" && s.SwapAtSec != 0:
		return fmt.Errorf("proptest: swapAtSec %v without swapKind", s.SwapAtSec)
	case s.SwapKind != "":
		if _, ok := registry.Lookup(s.SwapKind); !ok {
			return fmt.Errorf("proptest: swap: %w", registry.UnknownKindError(s.SwapKind))
		}
		if s.SwapAtSec <= 0 || s.SwapAtSec > s.HorizonSec {
			return fmt.Errorf("proptest: swapAtSec %vs out of (0,%vs]", s.SwapAtSec, s.HorizonSec)
		}
	}
	if s.Faults != nil {
		if n := len(s.Faults.Windows); n > maxFaultWindows {
			return fmt.Errorf("proptest: %d fault windows exceeds %d", n, maxFaultWindows)
		}
		if err := s.Faults.Validate(s.Nodes); err != nil {
			return fmt.Errorf("proptest: %w", err)
		}
		for i, w := range s.Faults.Windows {
			if w.StartSec+w.DurSec > s.HorizonSec {
				return fmt.Errorf("proptest: fault window %d ends at %vs, past horizon %vs",
					i, w.StartSec+w.DurSec, s.HorizonSec)
			}
		}
	}
	for i, j := range s.Jobs {
		switch j.Type {
		case "ping", "web", "disk", "stream":
		case "cpu":
			found := false
			for _, p := range workload.SPECProfiles() {
				if p.Name == j.Name {
					found = true
				}
			}
			if !found {
				return fmt.Errorf("proptest: job %d: unknown cpu profile %q", i, j.Name)
			}
		default:
			return fmt.Errorf("proptest: job %d: unknown type %q", i, j.Type)
		}
		if j.Node < 0 || j.Node >= s.Nodes {
			return fmt.Errorf("proptest: job %d: node %d out of range", i, j.Node)
		}
	}
	return nil
}

// profile resolves the cluster's application profile with its iteration
// override applied.
func (c ClusterSpec) profile() (workload.AppProfile, error) {
	var cls workload.Class
	switch c.Class {
	case "A":
		cls = workload.ClassA
	case "B":
		cls = workload.ClassB
	case "C":
		cls = workload.ClassC
	default:
		return workload.AppProfile{}, fmt.Errorf("unknown class %q", c.Class)
	}
	known := false
	for _, k := range append(workload.NPBKernels(), workload.ExtraKernels()...) {
		if k == c.Kernel {
			known = true
		}
	}
	if !known {
		return workload.AppProfile{}, fmt.Errorf("unknown kernel %q", c.Kernel)
	}
	p := workload.NPB(c.Kernel, cls)
	if c.Iterations > 0 {
		p.Iterations = c.Iterations
	}
	return p, nil
}

// horizon returns the Spec's virtual-time budget.
func (s Spec) horizon() sim.Time { return sim.FromSeconds(s.HorizonSec) }

// Limits bound the generator's draw ranges. The bounded gear keeps
// tier-1 sweeps fast; the deep gear (-proptest.long) explores larger
// worlds. Both stay inside the Validate hard bounds.
type Limits struct {
	Nodes      int
	PCPUs      int
	Clusters   int
	VMs        int
	VCPUs      int
	Rounds     int
	Iterations int
	Jobs       int
}

// Bounded is the tier-1 gear: tiny worlds, fast enough for ~100
// scenarios × 7 approaches inside `go test ./...`.
func Bounded() Limits {
	return Limits{Nodes: 2, PCPUs: 4, Clusters: 2, VMs: 2, VCPUs: 4, Rounds: 2, Iterations: 4, Jobs: 2}
}

// Deep is the -proptest.long gear: bigger worlds, heavier overcommit.
func Deep() Limits {
	return Limits{Nodes: 4, PCPUs: 8, Clusters: 3, VMs: 4, VCPUs: 8, Rounds: 3, Iterations: 8, Jobs: 4}
}

// fixedSliceChoices are the base-slice overrides the generator draws
// from (ms); zero keeps the scheduler default and is favoured.
var fixedSliceChoices = []float64{0, 0, 0, 0.3, 1, 5, 30}

// jobTypes are the non-parallel tenant types the generator draws from.
var jobTypes = []string{"ping", "web", "disk", "stream", "cpu"}

// classChoices weight problem classes toward the small ones.
var classChoices = []string{"A", "A", "A", "B"}

// faultKindChoices are the fault kinds the generator draws from,
// weighted toward the compute and network planes. actuator-fail is
// omitted: cluster-driven runs actuate in-sim, so it would be inert.
var faultKindChoices = []fault.Kind{
	fault.PCPUSlow, fault.PCPUSlow, fault.PCPUFreeze,
	fault.PacketLoss, fault.PacketLoss, fault.Bandwidth,
	fault.MonitorDrop, fault.MonitorNoise, fault.MonitorStale,
}

// genFaults draws a small fault schedule: short windows early in the
// run (where the measured work lives) with property-safe severities.
func genFaults(src *rng.Source, nodes int) *fault.Spec {
	fs := &fault.Spec{}
	for i, n := 0, 1+src.Intn(3); i < n; i++ {
		k := faultKindChoices[src.Intn(len(faultKindChoices))]
		w := fault.Window{
			Kind:     k,
			StartSec: 0.02 + 0.3*src.Float64(),
			DurSec:   0.05 + 0.4*src.Float64(),
		}
		scoped := false
		switch k {
		case fault.PCPUSlow:
			w.Severity = 2 + 6*src.Float64()
			scoped = true
		case fault.PCPUFreeze:
			// Freeze takes no severity; keep the stall well short of the
			// horizon so liveness is a real check, not a timeout race.
			w.DurSec = 0.05 + 0.2*src.Float64()
			scoped = true
		case fault.PacketLoss:
			w.Severity = 0.05 + 0.25*src.Float64()
			scoped = true
		case fault.Bandwidth:
			w.Severity = 0.25 + 0.7*src.Float64()
			scoped = true
		case fault.MonitorNoise:
			w.Severity = 0.05 + 0.45*src.Float64() // milliseconds
		default: // monitor drop/stale probabilities
			w.Severity = 0.2 + 0.6*src.Float64()
		}
		if scoped && src.Float64() < 0.5 {
			w.Nodes = []int{src.Intn(nodes)}
		}
		fs.Windows = append(fs.Windows, w)
	}
	return fs
}

// Generate derives a Spec from a seed, drawing every parameter from
// internal/rng so the same seed always yields the same scenario.
func Generate(seed uint64, lim Limits) Spec {
	src := rng.New(seed)
	spec := Spec{
		Seed:       seed,
		Nodes:      1 + src.Intn(lim.Nodes),
		PCPUs:      1 + src.Intn(lim.PCPUs),
		HorizonSec: 900,
	}
	spec.FixedSliceMs = fixedSliceChoices[src.Intn(len(fixedSliceChoices))]
	spec.DisableBoost = src.Float64() < 0.1
	spec.DisableSteal = src.Float64() < 0.1
	kernels := append(workload.NPBKernels(), workload.ExtraKernels()...)
	for i, n := 0, 1+src.Intn(lim.Clusters); i < n; i++ {
		spec.Clusters = append(spec.Clusters, ClusterSpec{
			Kernel:     kernels[src.Intn(len(kernels))],
			Class:      classChoices[src.Intn(len(classChoices))],
			VMs:        1 + src.Intn(lim.VMs),
			VCPUs:      1 + src.Intn(lim.VCPUs),
			Rounds:     1 + src.Intn(lim.Rounds),
			Iterations: 1 + src.Intn(lim.Iterations),
		})
	}
	for i, n := 0, src.Intn(lim.Jobs+1); i < n; i++ {
		j := JobSpec{Type: jobTypes[src.Intn(len(jobTypes))], Node: src.Intn(spec.Nodes)}
		if j.Type == "cpu" {
			profs := workload.SPECProfiles()
			j.Name = profs[src.Intn(len(profs))].Name
		}
		spec.Jobs = append(spec.Jobs, j)
	}
	// A slice of scenarios exercises the registry-era features: pinned
	// heterogeneous node policies and a mid-run live policy switch.
	kinds := registry.Kinds()
	if src.Float64() < 0.15 {
		for i := 0; i < spec.Nodes; i++ {
			if src.Float64() < 0.5 {
				spec.NodeKinds = append(spec.NodeKinds, kinds[src.Intn(len(kinds))])
			} else {
				spec.NodeKinds = append(spec.NodeKinds, "")
			}
		}
	}
	if src.Float64() < 0.15 {
		spec.SwapKind = kinds[src.Intn(len(kinds))]
		// Early in the run so the swap lands while measured work is live.
		spec.SwapAtSec = 0.05 + 0.5*src.Float64()
	}
	if src.Float64() < 0.15 {
		spec.Faults = genFaults(src, spec.Nodes)
	}
	// A slice of scenarios runs on the sharded engine (shard counts past
	// the node count clamp down in the world builder; 1 exercises the
	// sharded machinery without concurrency).
	if src.Float64() < 0.15 {
		shardChoices := []int{1, 2, 4, 8}
		spec.Shards = shardChoices[src.Intn(len(shardChoices))]
	}
	// A slice of scenarios also proves the fleet control plane's
	// kill-restore property on a side world of a few hollow nodes.
	if src.Float64() < 0.15 {
		spec.FleetNodes = 1 + src.Intn(maxFleetNodes)
	}
	// A slice of scenarios runs fully instrumented; telemetry must never
	// show in a fingerprint, so these runs are plain battery members.
	spec.Telemetry = src.Float64() < 0.15
	return spec
}
