// Mixedcloud: a multi-tenant node in the paper's §IV-C style — parallel
// virtual clusters next to a latency-sensitive web server and a
// CPU-intensive batch job — comparing how CS and ATC treat the
// non-parallel neighbours. CS accelerates the parallel tenants by
// preempting everyone; ATC does it by shortening only the parallel VMs'
// slices, leaving the web server's latency and the batch job's
// throughput intact.
package main

import (
	"fmt"
	"log"

	"atcsched"
	"atcsched/internal/sim"
	"atcsched/internal/vmm"
	"atcsched/internal/workload"
)

func main() {
	type result struct {
		parallel float64 // mean exec s
		webResp  float64 // s
		batch    float64 // round s
	}
	run := func(kind atcsched.Approach) result {
		cfg := atcsched.DefaultScenarioConfig(2, kind)
		cfg.Seed = 3
		s, err := atcsched.NewScenario(cfg)
		if err != nil {
			log.Fatal(err)
		}
		prof := atcsched.NPBProfile("mg", "B")
		prof.Iterations = 12
		var runs []*workload.ParallelRun
		for vc := 0; vc < 3; vc++ {
			vms := s.VirtualCluster(fmt.Sprintf("vc%d", vc), 2, 8, nil)
			runs = append(runs, s.RunParallel(prof, vms, 2, true))
		}
		server := s.IndependentVM("apache", 0, 8, vmm.ClassNonParallel)
		client := s.IndependentVM("httperf", 1, 8, vmm.ClassNonParallel)
		web := workload.NewWebJob(client, 0, server, 0,
			20*sim.Millisecond, 2*sim.Millisecond, 3)
		batch := workload.NewCPUJob(client.VCPU(1), workload.SPECProfiles()[0])
		if !s.Go(600 * sim.Second) {
			log.Fatalf("%s: horizon exceeded", kind)
		}
		var mean float64
		for _, r := range runs {
			mean += r.MeanTime()
		}
		return result{
			parallel: mean / float64(len(runs)),
			webResp:  web.MeanResponse(),
			batch:    batch.MeanTime(),
		}
	}

	cr := run(atcsched.CR)
	cs := run(atcsched.CS)
	atc := run(atcsched.ATC)
	fmt.Println("three mg.B virtual clusters + web server + gcc batch job, two nodes")
	fmt.Printf("%-10s %14s %16s %14s\n", "approach", "parallel (s)", "web resp (ms)", "gcc round (s)")
	for _, row := range []struct {
		name string
		r    result
	}{{"CR", cr}, {"CS", cs}, {"ATC", atc}} {
		fmt.Printf("%-10s %14.3f %16.3f %14.3f\n",
			row.name, row.r.parallel, row.r.webResp*1e3, row.r.batch)
	}
	fmt.Printf("\nparallel speedup: CS %.1fx, ATC %.1fx; web slowdown: CS %.2fx, ATC %.2fx\n",
		cr.parallel/cs.parallel, cr.parallel/atc.parallel,
		cs.webResp/cr.webResp, atc.webResp/cr.webResp)
}
