// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine keeps virtual time as nanoseconds in an int64 and executes
// scheduled events in (time, sequence) order, so two runs with the same
// inputs produce byte-identical traces. All of atcsched's virtualization
// substrate (PCPUs, VCPUs, NICs, disks) is driven by one Engine.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a point in (or span of) virtual time, in nanoseconds.
type Time int64

// Convenient spans of virtual time.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds returns t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis returns t as floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Micros returns t as floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// FromSeconds converts floating-point seconds to a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// FromMillis converts floating-point milliseconds to a Time.
func FromMillis(ms float64) Time { return Time(ms * float64(Millisecond)) }

// String formats t with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second || t <= -Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond || t <= -Millisecond:
		return fmt.Sprintf("%.3fms", t.Millis())
	case t >= Microsecond || t <= -Microsecond:
		return fmt.Sprintf("%.3fus", t.Micros())
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Event is a scheduled callback, always handled through Handle so that
// object recycling stays invisible to callers.
type Event struct {
	at       Time
	seq      uint64
	gen      uint64 // incremented on reuse; Handle validity check
	fn       func()
	index    int // heap index; -1 when not queued
	canceled bool
}

// Handle identifies one scheduled event. The zero Handle refers to
// nothing; Cancel on it (or on a handle whose event already fired or was
// canceled, even if the underlying object has been recycled for a new
// event) is a safe no-op.
type Handle struct {
	ev  *Event
	gen uint64
}

// live reports whether the handle still refers to its original event.
func (h Handle) live() bool { return h.ev != nil && h.ev.gen == h.gen }

// At returns the virtual time the event will fire at (0 for a dead
// handle).
func (h Handle) At() Time {
	if !h.live() {
		return 0
	}
	return h.ev.at
}

// Canceled reports whether the event was canceled or already fired.
func (h Handle) Canceled() bool { return !h.live() || h.ev.canceled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. The zero value is not usable; use
// New.
type Engine struct {
	now     Time
	queue   eventHeap
	seq     uint64
	stopped bool
	// executed counts events that have fired, for diagnostics.
	executed uint64
	// free recycles fired/canceled Event objects; Handle generations make
	// the recycling invisible (a stale Cancel is a no-op).
	free []*Event
}

// New returns an Engine with the clock at zero and an empty event queue.
func New() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Executed returns the number of events fired so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending returns the number of events currently queued.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past panics: it always indicates a modelling bug.
func (e *Engine) At(t Time, fn func()) Handle {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: nil event callback")
	}
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free = e.free[:n-1]
		gen := ev.gen + 1
		*ev = Event{at: t, seq: e.seq, gen: gen, fn: fn, index: -1}
	} else {
		ev = &Event{at: t, seq: e.seq, fn: fn, index: -1}
	}
	e.seq++
	heap.Push(&e.queue, ev)
	return Handle{ev: ev, gen: ev.gen}
}

// Schedule schedules fn to run d after the current time.
func (e *Engine) Schedule(d Time, fn func()) Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Cancel revokes a pending event. Canceling the zero Handle, an
// already-fired or already-canceled event is a no-op, even if the
// underlying object has since been recycled for a different event.
func (e *Engine) Cancel(h Handle) {
	if !h.live() || h.ev.canceled {
		return
	}
	ev := h.ev
	ev.canceled = true
	if ev.index >= 0 {
		heap.Remove(&e.queue, ev.index)
		ev.index = -1
	}
	ev.fn = nil
	e.free = append(e.free, ev)
}

// Step fires the next pending event. It returns false when the queue is
// empty or the engine has been stopped.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 && !e.stopped {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.canceled {
			continue
		}
		if ev.at < e.now {
			panic(fmt.Sprintf("sim: clock regression: event at %v, now %v", ev.at, e.now))
		}
		e.now = ev.at
		fn := ev.fn
		ev.fn = nil
		ev.canceled = true // fired; a late Cancel must be a no-op
		e.free = append(e.free, ev)
		e.executed++
		fn()
		return true
	}
	return false
}

// Run fires events until the queue drains or Stop is called.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with timestamps <= t, then advances the clock to
// t. Events scheduled beyond t remain queued. When the engine was
// stopped mid-run the clock stays where the last event left it — pending
// events must still be able to fire after Resume without the clock
// running backward.
func (e *Engine) RunUntil(t Time) {
	for !e.stopped {
		ev := e.peek()
		if ev == nil || ev.at > t {
			break
		}
		e.Step()
	}
	if e.stopped {
		return
	}
	if t > e.now {
		e.now = t
	}
}

// RunFor runs for a span d of virtual time from the current instant.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }

func (e *Engine) peek() *Event {
	for len(e.queue) > 0 {
		ev := e.queue[0]
		if !ev.canceled {
			return ev
		}
		heap.Pop(&e.queue)
	}
	return nil
}

// Stop halts Run/RunUntil after the current event completes. Pending
// events stay queued; Resume re-enables stepping.
func (e *Engine) Stop() { e.stopped = true }

// Resume clears a previous Stop.
func (e *Engine) Resume() { e.stopped = false }

// Stopped reports whether Stop has been called without a matching Resume.
func (e *Engine) Stopped() bool { return e.stopped }
