// Package fault is the deterministic fault-injection plane: a seeded,
// scenario-driven schedule of degradations layered onto an otherwise
// healthy simulated cluster. It models the conditions a production
// deployment of the paper's controller would face — straggler nodes
// (PCPU slowdown and freeze windows), a lossy or congested interconnect
// (packet loss, bandwidth degradation), a flaky monitoring path (sample
// dropouts, additive noise, stale readings) and a failing actuator —
// without touching the mechanisms under test. Every fault draw comes
// from one explicitly seeded stream, so identical (seed, spec) pairs
// produce byte-identical fault schedules and reports.
//
// A Spec is pure data (JSON-serializable, used by scenario files and the
// property-test generator); Compile turns it into a Plan bound to a
// seed, and Plan.Attach installs the hooks on a vmm.World.
package fault

import (
	"fmt"
	"sort"

	"atcsched/internal/sim"
)

// Kind names one injectable fault mechanism.
type Kind string

// The supported fault kinds.
const (
	// PCPUSlow multiplies the execution time of every compute/burn
	// segment started on the window's nodes by Severity (a factor >= 1;
	// default 4) — a straggler node running hot, throttled or oversold.
	PCPUSlow Kind = "pcpu-slow"
	// PCPUFreeze is PCPUSlow with an effectively infinite factor: the
	// window's nodes make (almost) no guest progress — a stalled host.
	PCPUFreeze Kind = "pcpu-freeze"
	// PacketLoss drops each wire transmission leaving the window's nodes
	// with probability Severity (default 0.1); the fabric retransmits
	// after a timeout, so packets arrive late rather than never (the
	// guest-visible semantics of a reliable transport over a lossy link).
	PacketLoss Kind = "packet-loss"
	// Bandwidth scales the NIC line rate of the window's nodes down to
	// the fraction Severity (default 0.5) — congestion or a renegotiated
	// link.
	Bandwidth Kind = "bandwidth"
	// MonitorDrop makes the window's VMs produce no spin-latency sample
	// with probability Severity (default 1) — a monitoring blackout.
	MonitorDrop Kind = "monitor-drop"
	// MonitorNoise adds uniform noise in [0, Severity) milliseconds to
	// the window's VMs' spin-latency samples (default 1 ms).
	MonitorNoise Kind = "monitor-noise"
	// MonitorStale re-reports the previous sample (same sequence number)
	// for the window's VMs with probability Severity (default 1) — a
	// wedged guest agent repeating itself.
	MonitorStale Kind = "monitor-stale"
	// ActuatorFail makes slice actuations fail with probability Severity
	// (default 1) while the window is open — the knob the daemon's retry
	// and give-up machinery is tested against.
	ActuatorFail Kind = "actuator-fail"
	// DaemonCrash takes the control daemon itself down for the window:
	// no sampling, no decisions, no actuations — the fleet control
	// plane's own blackout, which snapshot/restore must ride out. It is
	// binary (no severity) and cluster-wide (no scope), like the daemon
	// it models. Inert for in-sim self-adapting schedulers, which have
	// no daemon to crash.
	DaemonCrash Kind = "daemon-crash"
)

// Kinds returns every supported kind in a fixed order.
func Kinds() []Kind {
	return []Kind{PCPUSlow, PCPUFreeze, PacketLoss, Bandwidth,
		MonitorDrop, MonitorNoise, MonitorStale, ActuatorFail, DaemonCrash}
}

// freezeFactor stands in for "no progress": large enough that a frozen
// segment never completes within any realistic window, small enough that
// scaled durations stay far from the sim.Time range.
const freezeFactor = 1e6

// Window schedules one fault over [StartSec, StartSec+DurSec) of virtual
// time on a subset of the cluster.
type Window struct {
	Kind Kind `json:"kind"`
	// StartSec/DurSec bound the window in seconds of virtual time.
	StartSec float64 `json:"startSec"`
	DurSec   float64 `json:"durSec"`
	// Nodes restricts node-scoped kinds (pcpu-*, packet-loss, bandwidth)
	// to these node indices; empty means every node.
	Nodes []int `json:"nodes,omitempty"`
	// VMs restricts monitor-scoped kinds to these VM ids; empty means
	// every guest VM.
	VMs []int `json:"vms,omitempty"`
	// Severity parameterizes the kind (see the Kind docs); zero selects
	// the kind's default.
	Severity float64 `json:"severity,omitempty"`
}

// Spec is a complete fault schedule: pure data, JSON-round-trippable.
type Spec struct {
	// Seed, when nonzero, seeds the fault plane's probability draws;
	// zero derives the seed from the run's cluster seed so existing
	// scenarios stay reproducible without a new knob.
	Seed    uint64   `json:"seed,omitempty"`
	Windows []Window `json:"windows"`
}

// Resource caps, mirroring the scenario parser's hardening: a hostile or
// fuzzed spec must not allocate unboundedly or schedule absurd horizons.
const (
	maxWindows    = 256
	maxHorizonSec = 864000 // ten days of virtual time
	maxScopeList  = 4096
)

// nodeScoped reports whether k applies per node (vs per VM).
func nodeScoped(k Kind) bool {
	switch k {
	case PCPUSlow, PCPUFreeze, PacketLoss, Bandwidth:
		return true
	}
	return false
}

// monitorScoped reports whether k applies to the monitoring path.
func monitorScoped(k Kind) bool {
	switch k {
	case MonitorDrop, MonitorNoise, MonitorStale:
		return true
	}
	return false
}

// defaultSeverity returns the per-kind default used when Severity is 0.
func defaultSeverity(k Kind) float64 {
	switch k {
	case PCPUSlow:
		return 4
	case PCPUFreeze:
		return freezeFactor
	case PacketLoss:
		return 0.1
	case Bandwidth:
		return 0.5
	default: // monitor-* and actuator-fail: certainty
		return 1
	}
}

// Validate checks the spec against the supported kinds, the resource
// caps and the per-kind severity ranges. nodes bounds the node indices
// (0 disables the range check, for validation before a cluster exists).
func (s *Spec) Validate(nodes int) error {
	if len(s.Windows) > maxWindows {
		return fmt.Errorf("fault: %d windows exceeds cap %d", len(s.Windows), maxWindows)
	}
	for i := range s.Windows {
		w := &s.Windows[i]
		if err := w.validate(nodes); err != nil {
			return fmt.Errorf("fault: window %d: %w", i, err)
		}
	}
	return nil
}

func (w *Window) validate(nodes int) error {
	known := false
	for _, k := range Kinds() {
		if w.Kind == k {
			known = true
			break
		}
	}
	if !known {
		return fmt.Errorf("unknown kind %q (valid: %v)", w.Kind, Kinds())
	}
	if w.StartSec < 0 || w.DurSec <= 0 {
		return fmt.Errorf("window [%v, +%v) must have start >= 0 and positive duration", w.StartSec, w.DurSec)
	}
	if w.StartSec+w.DurSec > maxHorizonSec {
		return fmt.Errorf("window end %vs exceeds horizon cap %ds", w.StartSec+w.DurSec, maxHorizonSec)
	}
	if len(w.Nodes) > maxScopeList || len(w.VMs) > maxScopeList {
		return fmt.Errorf("scope list exceeds cap %d", maxScopeList)
	}
	if len(w.Nodes) > 0 && !nodeScoped(w.Kind) {
		return fmt.Errorf("kind %q does not take a node scope", w.Kind)
	}
	if len(w.VMs) > 0 && !monitorScoped(w.Kind) {
		return fmt.Errorf("kind %q does not take a VM scope", w.Kind)
	}
	for _, n := range w.Nodes {
		if n < 0 || (nodes > 0 && n >= nodes) {
			return fmt.Errorf("node %d out of range [0,%d)", n, nodes)
		}
	}
	for _, id := range w.VMs {
		if id < 0 {
			return fmt.Errorf("negative VM id %d", id)
		}
	}
	sev := w.Severity
	switch w.Kind {
	case PCPUSlow:
		if sev != 0 && (sev < 1 || sev > freezeFactor) {
			return fmt.Errorf("pcpu-slow severity %v must be a factor in [1, %g]", sev, float64(freezeFactor))
		}
	case PCPUFreeze:
		if sev != 0 {
			return fmt.Errorf("pcpu-freeze takes no severity (got %v)", sev)
		}
	case DaemonCrash:
		if sev != 0 {
			return fmt.Errorf("daemon-crash takes no severity (got %v)", sev)
		}
	case Bandwidth:
		if sev != 0 && (sev <= 0 || sev >= 1) {
			return fmt.Errorf("bandwidth severity %v must be a fraction in (0,1)", sev)
		}
	case PacketLoss:
		// Loss of 1 forever would livelock the retransmit path; cap below
		// certainty so every packet eventually clears the window.
		if sev != 0 && (sev < 0 || sev > 0.9) {
			return fmt.Errorf("packet-loss severity %v must be a probability in [0, 0.9]", sev)
		}
	case MonitorNoise:
		if sev < 0 || sev > 1000 {
			return fmt.Errorf("monitor-noise severity %v must be milliseconds in [0, 1000]", sev)
		}
	default: // probabilities
		if sev < 0 || sev > 1 {
			return fmt.Errorf("%s severity %v must be a probability in [0, 1]", w.Kind, sev)
		}
	}
	return nil
}

// Empty reports whether the spec schedules nothing.
func (s *Spec) Empty() bool { return s == nil || len(s.Windows) == 0 }

// window is a compiled Window: times in sim.Time, severity defaulted,
// scopes as sets.
type window struct {
	kind       Kind
	start, end sim.Time
	nodes      map[int]bool // nil = all
	vms        map[int]bool // nil = all
	severity   float64
}

func (w *window) active(now sim.Time) bool { return now >= w.start && now < w.end }

func (w *window) onNode(n int) bool { return w.nodes == nil || w.nodes[n] }

func (w *window) onVM(id int) bool { return w.vms == nil || w.vms[id] }

func compileWindow(src Window) window {
	w := window{
		kind:     src.Kind,
		start:    sim.Time(src.StartSec * float64(sim.Second)),
		end:      sim.Time((src.StartSec + src.DurSec) * float64(sim.Second)),
		severity: src.Severity,
	}
	if w.severity == 0 {
		w.severity = defaultSeverity(src.Kind)
	}
	if src.Kind == PCPUFreeze {
		w.severity = freezeFactor
	}
	if len(src.Nodes) > 0 {
		w.nodes = make(map[int]bool, len(src.Nodes))
		for _, n := range src.Nodes {
			w.nodes[n] = true
		}
	}
	if len(src.VMs) > 0 {
		w.vms = make(map[int]bool, len(src.VMs))
		for _, id := range src.VMs {
			w.vms[id] = true
		}
	}
	return w
}

// Describe renders the compiled schedule deterministically — the "fault
// schedule" half of the determinism contract (same seed + spec ⇒
// byte-identical output).
func (p *Plan) Describe() string {
	out := fmt.Sprintf("fault plan: seed=%d windows=%d\n", p.seed, len(p.windows))
	for i, w := range p.windows {
		scope := "all"
		if w.nodes != nil {
			scope = fmt.Sprintf("nodes=%v", sortedKeys(w.nodes))
		}
		if w.vms != nil {
			scope = fmt.Sprintf("vms=%v", sortedKeys(w.vms))
		}
		out += fmt.Sprintf("  [%d] %s %v..%v %s severity=%g\n", i, w.kind, w.start, w.end, scope, w.severity)
	}
	return out
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
