package telemetry

import (
	"testing"

	"atcsched/internal/sim"
)

// TestHistogramQuantile pins the bucket-interpolation estimator against
// hand-computed values.
func TestHistogramQuantile(t *testing.T) {
	msT := func(f float64) sim.Time { return sim.Time(f * float64(sim.Millisecond)) }
	h := Histogram{
		Bounds: []sim.Time{msT(1), msT(10), msT(100)},
		// 4 obs <= 1ms, 4 in (1,10], 2 in (10,100]
		Counts: []uint64{4, 8, 10},
		Count:  10,
	}
	cases := []struct {
		q    float64
		want sim.Time
	}{
		{0.2, msT(0.5)},     // 2/4 into [0,1ms]
		{0.4, msT(1)},       // exactly the first bound
		{0.6, msT(5.5)},     // 2/4 into (1,10ms]
		{0.8, msT(10)},      // exactly the second bound
		{0.9, msT(55)},      // 1/2 into (10,100ms]
		{1.0, msT(100)},     // top of the ladder
		{-0.5, sim.Time(0)}, // clamped to 0 → bottom
	}
	for _, tc := range cases {
		if got := h.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

// TestHistogramQuantileEdges pins the degenerate shapes: empty
// histogram, all mass beyond the last bound, empty winning bucket.
func TestHistogramQuantileEdges(t *testing.T) {
	var empty Histogram
	if got := empty.Quantile(0.99); got != 0 {
		t.Errorf("empty Quantile = %v, want 0", got)
	}
	overflow := Histogram{
		Bounds: []sim.Time{sim.Millisecond},
		Counts: []uint64{0},
		Count:  5, // all five in the +Inf bucket
	}
	if got := overflow.Quantile(0.5); got != sim.Millisecond {
		t.Errorf("overflow Quantile = %v, want clamp to last bound %v", got, sim.Millisecond)
	}
}

// TestHistogramQuantileLive drives the estimator through the Registry
// path the fleet uses for decision latency.
func TestHistogramQuantileLive(t *testing.T) {
	r := NewRegistry(Options{})
	for i := 1; i <= 100; i++ {
		r.Observe("lat", GlobalLabel(), sim.Time(i)*sim.Microsecond)
	}
	snap := r.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("histograms = %d, want 1", len(snap.Histograms))
	}
	p99 := snap.Histograms[0].Quantile(0.99)
	// 99 of 100 obs are <= 100µs; the estimate must land inside the
	// (10µs, 100µs] bucket, near its top.
	if p99 <= 10*sim.Microsecond || p99 > 100*sim.Microsecond {
		t.Errorf("p99 = %v, want within (10µs, 100µs]", p99)
	}
}
