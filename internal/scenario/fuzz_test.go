package scenario

import (
	"strings"
	"testing"
)

// FuzzScenarioJSON hammers the spec parser: Load must accept or reject
// cleanly — never panic, never hand Build a spec that allocates beyond
// the resource caps. When a fuzz input parses into a tiny world, Build
// it and audit the fresh world too. Run deep with
//
//	go test ./internal/scenario -fuzz=FuzzScenarioJSON -fuzztime=30s
func FuzzScenarioJSON(f *testing.F) {
	// Seed corpus: a minimal valid spec, each structural feature, and
	// the hardening edges (trailing data, huge numbers, unknown fields,
	// type confusion, truncation).
	f.Add(`{"nodes":1,"virtualClusters":[{"vms":1,"vcpus":1,"kernel":"ep","class":"A","rounds":1}]}`)
	f.Add(`{"nodes":2,"scheduler":{"kind":"ATC","fixedSliceMs":30},"seed":7,"horizonSec":60,
		"virtualClusters":[{"name":"a","vms":2,"vcpus":2,"kernel":"lu","class":"A","rounds":1},
		{"name":"b","kernel":"is","background":true}],
		"jobs":[{"type":"ping","node":0,"intervalMs":5},{"type":"cpu","node":1,"name":"gcc"}]}`)
	f.Add(`{"nodes":1,"jobs":[{"type":"web","node":0,"peerNode":0}]}`)
	f.Add(`{}`)
	f.Add(`null`)
	f.Add(`[]`)
	f.Add(`{"nodes":1e9,"virtualClusters":[{}]}`)
	f.Add(`{"nodes":1,"horizonSec":1e300,"virtualClusters":[{}]}`)
	f.Add(`{"nodes":1,"virtualClusters":[{"vcpus":-3}]}`)
	f.Add(`{"nodes":1,"virtualClusters":[{}]}{"nodes":2}`)
	f.Add(`{"nodes":1,"bogusField":true,"virtualClusters":[{}]}`)
	f.Add(`{"nodes":"one","virtualClusters":[{}]}`)
	f.Add(`{"nodes":1,"virtualClusters":[{"kernel":"lu"`)
	f.Add(`{"nodes":1,"scheduler":{"kind":"zen"},"virtualClusters":[{}]}`)
	f.Fuzz(func(t *testing.T, data string) {
		spec, err := Load(strings.NewReader(data))
		if err != nil {
			return
		}
		// Accepted specs must come back with defaults filled and inside
		// the caps — Validate is the only gate between JSON and NewWorld.
		if spec.Nodes < 1 || spec.Nodes > maxNodes {
			t.Fatalf("accepted nodes=%d", spec.Nodes)
		}
		if spec.HorizonSec <= 0 || spec.HorizonSec > maxHorizonSec {
			t.Fatalf("accepted horizonSec=%v", spec.HorizonSec)
		}
		small := spec.Nodes <= 2 && spec.PCPUsPerNode <= 4 && len(spec.Jobs) <= 2
		for _, vc := range spec.VirtualClusters {
			if vc.VMs < 1 || vc.VCPUs < 1 || vc.Rounds < 0 {
				t.Fatalf("accepted cluster sizing %+v", vc)
			}
			if vc.VMs > 2 || vc.VCPUs > 2 {
				small = false
			}
		}
		if !small || len(spec.VirtualClusters) > 2 {
			return
		}
		// Tiny world: building it must succeed and pass a full audit.
		res, err := Build(spec)
		if err != nil {
			t.Fatalf("validated spec failed to build: %v", err)
		}
		if errs := res.Scenario.World.Audit(); len(errs) > 0 {
			t.Fatalf("fresh world fails audit: %v", errs)
		}
	})
}
