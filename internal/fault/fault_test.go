package fault

import (
	"encoding/json"
	"strings"
	"testing"

	"atcsched/internal/sim"
)

func win(k Kind) Window { return Window{Kind: k, StartSec: 1, DurSec: 2} }

func TestValidateAcceptsEveryKindWithDefaults(t *testing.T) {
	for _, k := range Kinds() {
		s := &Spec{Windows: []Window{win(k)}}
		if err := s.Validate(4); err != nil {
			t.Errorf("%s: %v", k, err)
		}
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		w    Window
		want string
	}{
		{"unknown kind", Window{Kind: "meteor", DurSec: 1}, "unknown kind"},
		{"negative start", Window{Kind: PCPUSlow, StartSec: -1, DurSec: 1}, "start"},
		{"zero duration", Window{Kind: PCPUSlow, StartSec: 1}, "duration"},
		{"past horizon cap", Window{Kind: PCPUSlow, StartSec: 863999, DurSec: 2}, "horizon"},
		{"vm scope on node kind", Window{Kind: PCPUSlow, DurSec: 1, VMs: []int{0}}, "VM scope"},
		{"node scope on monitor kind", Window{Kind: MonitorDrop, DurSec: 1, Nodes: []int{0}}, "node scope"},
		{"node out of range", Window{Kind: PCPUSlow, DurSec: 1, Nodes: []int{4}}, "out of range"},
		{"negative node", Window{Kind: PCPUSlow, DurSec: 1, Nodes: []int{-1}}, "out of range"},
		{"negative vm", Window{Kind: MonitorDrop, DurSec: 1, VMs: []int{-2}}, "negative VM"},
		{"slow factor below one", Window{Kind: PCPUSlow, DurSec: 1, Severity: 0.5}, "factor"},
		{"freeze with severity", Window{Kind: PCPUFreeze, DurSec: 1, Severity: 2}, "no severity"},
		{"bandwidth fraction one", Window{Kind: Bandwidth, DurSec: 1, Severity: 1}, "fraction"},
		{"loss past livelock cap", Window{Kind: PacketLoss, DurSec: 1, Severity: 0.95}, "0.9"},
		{"noise too large", Window{Kind: MonitorNoise, DurSec: 1, Severity: 2000}, "milliseconds"},
		{"probability above one", Window{Kind: MonitorDrop, DurSec: 1, Severity: 1.5}, "probability"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := &Spec{Windows: []Window{tc.w}}
			err := s.Validate(4)
			if err == nil {
				t.Fatalf("Validate accepted %+v", tc.w)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestValidateZeroNodesSkipsRangeCheck(t *testing.T) {
	s := &Spec{Windows: []Window{{Kind: PCPUSlow, DurSec: 1, Nodes: []int{99}}}}
	if err := s.Validate(0); err != nil {
		t.Errorf("pre-cluster validation rejected node scope: %v", err)
	}
}

func TestValidateWindowCap(t *testing.T) {
	s := &Spec{Windows: make([]Window, maxWindows+1)}
	for i := range s.Windows {
		s.Windows[i] = win(PacketLoss)
	}
	if err := s.Validate(0); err == nil {
		t.Error("Validate accepted a spec over the window cap")
	}
}

func TestCompileNilAndEmpty(t *testing.T) {
	p, err := Compile(nil, 7)
	if err != nil || p != nil {
		t.Errorf("Compile(nil) = %v, %v, want nil plan", p, err)
	}
	if !(*Spec)(nil).Empty() || !new(Spec).Empty() {
		t.Error("Empty() false for nil/zero spec")
	}
	if p.Report() != (Report{}) {
		t.Error("nil plan report not zero")
	}
	if p.FailActuation(0) != nil {
		t.Error("nil plan failed an actuation")
	}
}

func TestCompileDefaultsAndDescribeDeterminism(t *testing.T) {
	spec := &Spec{Windows: []Window{
		{Kind: PCPUSlow, StartSec: 0.5, DurSec: 1, Nodes: []int{2, 0}},
		{Kind: PCPUFreeze, StartSec: 1, DurSec: 0.5},
		{Kind: PacketLoss, StartSec: 2, DurSec: 1},
		{Kind: MonitorNoise, StartSec: 0, DurSec: 3, VMs: []int{1}},
	}}
	a, err := Compile(spec, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compile(spec, 9)
	if err != nil {
		t.Fatal(err)
	}
	if a.Describe() != b.Describe() {
		t.Errorf("Describe not deterministic:\n%s\n%s", a.Describe(), b.Describe())
	}
	d := a.Describe()
	for _, want := range []string{
		"seed=9", "windows=4",
		"pcpu-slow", "severity=4", "nodes=[0 2]",
		"pcpu-freeze", "severity=1e+06",
		"packet-loss", "severity=0.1",
		"monitor-noise", "vms=[1]", "severity=1",
	} {
		if !strings.Contains(d, want) {
			t.Errorf("Describe missing %q:\n%s", want, d)
		}
	}
}

func TestSpecSeedOverridesFallback(t *testing.T) {
	spec := &Spec{Seed: 123, Windows: []Window{win(PacketLoss)}}
	p, err := Compile(spec, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.Describe(), "seed=123") {
		t.Errorf("spec seed not used: %s", p.Describe())
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	spec := &Spec{Seed: 5, Windows: []Window{
		{Kind: Bandwidth, StartSec: 1.5, DurSec: 0.25, Nodes: []int{1}, Severity: 0.4},
	}}
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back Spec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	a, _ := Compile(spec, 0)
	b, _ := Compile(&back, 0)
	if a.Describe() != b.Describe() {
		t.Errorf("JSON round trip changed the plan:\n%s\n%s", a.Describe(), b.Describe())
	}
}

func TestWindowActivation(t *testing.T) {
	w := compileWindow(Window{Kind: PCPUSlow, StartSec: 1, DurSec: 1, Nodes: []int{0}})
	sec := sim.Second
	if w.active(sec - 1) {
		t.Error("active before start")
	}
	if !w.active(sec) {
		t.Error("inactive at start")
	}
	if w.active(2 * sec) {
		t.Error("active at end (half-open interval)")
	}
	if !w.onNode(0) || w.onNode(1) {
		t.Error("node scope wrong")
	}
	all := compileWindow(Window{Kind: MonitorDrop, StartSec: 0, DurSec: 1})
	if !all.onNode(3) || !all.onVM(17) {
		t.Error("empty scope must mean all")
	}
}

func TestReportString(t *testing.T) {
	r := Report{PacketsLost: 1, SamplesDropped: 2, SamplesStaled: 3, SamplesNoised: 4, ActuationsFailed: 5}
	want := "faults: lost=1 dropped=2 staled=3 noised=4 actfail=5"
	if r.String() != want {
		t.Errorf("Report.String() = %q, want %q", r.String(), want)
	}
}

// TestProbabilisticHooksDeterministic pins that the plan's draws come
// only from its seeded stream: two plans compiled from the same (spec,
// seed) asked the same questions give identical answers and reports.
func TestProbabilisticHooksDeterministic(t *testing.T) {
	spec := &Spec{Windows: []Window{
		{Kind: PacketLoss, StartSec: 0, DurSec: 10, Severity: 0.5},
		{Kind: ActuatorFail, StartSec: 0, DurSec: 10, Severity: 0.5},
	}}
	run := func() (string, Report) {
		p, err := Compile(spec, 42)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for i := 0; i < 200; i++ {
			now := sim.Time(i) * sim.Millisecond
			if p.lose(0, 1, now) {
				b.WriteByte('L')
			} else {
				b.WriteByte('.')
			}
			if p.FailActuation(now) != nil {
				b.WriteByte('F')
			} else {
				b.WriteByte('.')
			}
		}
		return b.String(), p.Report()
	}
	s1, r1 := run()
	s2, r2 := run()
	if s1 != s2 || r1 != r2 {
		t.Errorf("draw sequences diverged:\n%s\n%s\n%v vs %v", s1, s2, r1, r2)
	}
	if r1.PacketsLost == 0 || r1.ActuationsFailed == 0 {
		t.Errorf("50%% severity over 200 draws injected nothing: %v", r1)
	}
}
