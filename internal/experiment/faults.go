package experiment

import (
	"fmt"

	"atcsched/internal/cluster"
	"atcsched/internal/fault"
	"atcsched/internal/metrics"
	"atcsched/internal/report"
	"atcsched/internal/sim"
	"atcsched/internal/workload"
)

// The fault timeline, in units of the 300 ms observation window: a
// healthy lead-in, a straggler window (node 0 runs 4× slow), recovery,
// a cluster-wide 20% packet-loss window, and a tail.
const (
	faultWindow     = 300 * sim.Millisecond
	faultWindows    = 16
	stragglerStart  = 1.2 // seconds
	stragglerDur    = 1.2
	lossStart       = 3.0
	lossDur         = 0.9
	stragglerFactor = 4
	lossProb        = 0.2
)

// faultPhase labels a window for the report.
func faultPhase(end sim.Time) string {
	mid := end - faultWindow/2
	sec := mid.Seconds()
	switch {
	case sec >= stragglerStart && sec < stragglerStart+stragglerDur:
		return "straggler"
	case sec >= lossStart && sec < lossStart+lossDur:
		return "pkt-loss"
	default:
		return "healthy"
	}
}

func faultSpec() *fault.Spec {
	return &fault.Spec{Windows: []fault.Window{
		{Kind: fault.PCPUSlow, StartSec: stragglerStart, DurSec: stragglerDur,
			Nodes: []int{0}, Severity: stragglerFactor},
		{Kind: fault.PacketLoss, StartSec: lossStart, DurSec: lossDur, Severity: lossProb},
	}}
}

func init() {
	register(Experiment{
		ID: "faults",
		Title: "Extension — fault injection: spin latency per window under a " +
			"straggler node and a packet-loss burst, CR vs ATC",
		Run: func(sc Scale, seed uint64) ([]*report.Table, error) {
			nodes := sc.NodeSteps[0]
			type trace struct {
				means []float64
				rep   fault.Report
			}
			run := func(kind cluster.Approach) (*trace, error) {
				cfg := cluster.DefaultConfig(nodes, kind)
				cfg.Seed = seed
				cfg.Faults = faultSpec()
				s, err := cluster.New(cfg)
				if err != nil {
					return nil, err
				}
				prof := workload.NPB("lu", workload.ClassB)
				prof.Iterations = iterCount(prof.Iterations, sc.IterScale)
				for vc := 0; vc < 2; vc++ {
					vms := s.VirtualCluster(fmt.Sprintf("vc%d", vc), nodes, sc.VCPUsPerVM, nil)
					s.RunBackground(prof, vms)
				}
				var watch spinWatch
				tr := &trace{}
				s.GoFor(faultWindow)
				tr.means = append(tr.means, watch.delta(s.World).Seconds())
				for w := 2; w <= faultWindows; w++ {
					s.ContinueFor(faultWindow)
					tr.means = append(tr.means, watch.delta(s.World).Seconds())
				}
				if errs := s.World.Audit(); len(errs) > 0 {
					return nil, fmt.Errorf("faults: audit under %s: %v", kind, errs[0])
				}
				tr.rep = s.FaultReport()
				return tr, nil
			}
			cr, err := run(cluster.CR)
			if err != nil {
				return nil, err
			}
			atc, err := run(cluster.ATC)
			if err != nil {
				return nil, err
			}

			t := report.New(
				"cluster-wide spin latency per 300ms window under injected faults",
				"Window", "t(end)", "Phase", "CR spin", "ATC spin")
			var crFault, atcFault, crOK, atcOK []float64
			for w := 0; w < faultWindows; w++ {
				end := sim.Time(w+1) * faultWindow
				phase := faultPhase(end)
				if phase == "healthy" {
					crOK = append(crOK, cr.means[w])
					atcOK = append(atcOK, atc.means[w])
				} else {
					crFault = append(crFault, cr.means[w])
					atcFault = append(atcFault, atc.means[w])
				}
				t.Add(fmt.Sprint(w+1), fmt.Sprintf("%v", end), phase,
					fmt.Sprintf("%.0fµs", cr.means[w]*1e6),
					fmt.Sprintf("%.0fµs", atc.means[w]*1e6))
			}
			t.AddNote("fault windows: node 0 runs %dx slow in [%.1fs, %.1fs); %.0f%% packet loss "+
				"cluster-wide in [%.1fs, %.1fs)", stragglerFactor,
				stragglerStart, stragglerStart+stragglerDur, lossProb*100, lossStart, lossStart+lossDur)
			t.AddNote("CR injections: %s; ATC injections: %s", cr.rep, atc.rep)
			cf, af := metrics.Mean(crFault), metrics.Mean(atcFault)
			if af > 0 {
				t.AddNote("spin mean inside fault windows: CR %.0fµs vs ATC %.0fµs (%.1fx); "+
					"healthy windows: CR %.0fµs vs ATC %.0fµs",
					cf*1e6, af*1e6, cf/af, metrics.Mean(crOK)*1e6, metrics.Mean(atcOK)*1e6)
			}
			return []*report.Table{t}, nil
		},
	})
}
