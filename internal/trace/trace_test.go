package trace

import (
	"math"
	"testing"
	"testing/quick"

	"atcsched/internal/rng"
)

func TestTableISharesSumToOne(t *testing.T) {
	var sum float64
	for _, s := range TableI() {
		if s.Share <= 0 {
			t.Errorf("non-positive share for %d", s.Processors)
		}
		sum += s.Share
	}
	if math.Abs(sum-1.0) > 0.001 {
		t.Errorf("shares sum to %v", sum)
	}
}

func TestTableIMatchesPaper(t *testing.T) {
	want := map[int]float64{8: 0.314, 16: 0.126, 32: 0.045, 64: 0.126, 128: 0.061, 256: 0.045, 0: 0.283}
	for _, s := range TableI() {
		if want[s.Processors] != s.Share {
			t.Errorf("share for %d = %v, want %v", s.Processors, s.Share, want[s.Processors])
		}
	}
}

func TestPaperLayout(t *testing.T) {
	l := PaperLayout()
	if got := l.TotalVMs(); got != 128 {
		t.Errorf("total VMs = %d, want 128", got)
	}
	if len(l.Clusters) != 10 {
		t.Errorf("clusters = %d, want 10", len(l.Clusters))
	}
	if l.Independent != 30 {
		t.Errorf("independent = %d, want 30", l.Independent)
	}
	// The paper's exact size mix: 1×32, 2×16, 3×8, 1×4, 3×2 (in VMs).
	counts := map[int]int{}
	for _, c := range l.Clusters {
		counts[c.VMs]++
	}
	want := map[int]int{32: 1, 16: 2, 8: 3, 4: 1, 2: 3}
	for size, n := range want {
		if counts[size] != n {
			t.Errorf("clusters of %d VMs = %d, want %d", size, counts[size], n)
		}
	}
}

func TestScaledLayoutFits(t *testing.T) {
	for _, total := range []int{8, 16, 32, 64, 128, 256} {
		l, err := ScaledLayout(total)
		if err != nil {
			t.Fatalf("total=%d: %v", total, err)
		}
		if got := l.TotalVMs(); got != total && total < 128 {
			t.Errorf("total=%d: layout has %d VMs", total, got)
		}
		if total >= 128 && l.TotalVMs() != 128 {
			t.Errorf("total=%d: want paper layout (128), got %d", total, l.TotalVMs())
		}
		for _, c := range l.Clusters {
			if c.VMs < 2 {
				t.Errorf("total=%d: cluster %s has %d VMs", total, c.Name, c.VMs)
			}
		}
		if l.Independent < 1 {
			t.Errorf("total=%d: no independent VMs", total)
		}
	}
	if _, err := ScaledLayout(4); err == nil {
		t.Error("tiny layout accepted")
	}
}

func TestSampleExactBudgetProperty(t *testing.T) {
	f := func(seed uint64, totalRaw uint8) bool {
		total := int(totalRaw%120) + 1
		l, err := Sample(rng.New(seed), total)
		if err != nil {
			return false
		}
		if l.TotalVMs() != total {
			return false
		}
		for _, c := range l.Clusters {
			if c.VMs < 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSampleDistributionRoughlyMatches(t *testing.T) {
	// Over many draws the share of independent VMs should be near the
	// probability mass of sizes <= 8 (0.314 + 0.283 ≈ 0.6 of jobs — but
	// in VM terms larger jobs absorb more VMs, so just sanity-check both
	// kinds appear in volume).
	src := rng.New(99)
	var indep, clustered int
	for i := 0; i < 200; i++ {
		l, err := Sample(src, 128)
		if err != nil {
			t.Fatal(err)
		}
		indep += l.Independent
		for _, c := range l.Clusters {
			clustered += c.VMs
		}
	}
	if indep == 0 || clustered == 0 {
		t.Fatalf("degenerate sampling: indep=%d clustered=%d", indep, clustered)
	}
	frac := float64(indep) / float64(indep+clustered)
	if frac < 0.05 || frac > 0.6 {
		t.Errorf("independent fraction = %.3f, implausible for Table I", frac)
	}
}

func TestSampleErrors(t *testing.T) {
	if _, err := Sample(rng.New(1), 0); err == nil {
		t.Error("zero budget accepted")
	}
}

func TestLayoutTotalVMs(t *testing.T) {
	l := Layout{Clusters: []VCSpec{{Name: "a", VMs: 3}, {Name: "b", VMs: 5}}, Independent: 2}
	if l.TotalVMs() != 10 {
		t.Errorf("TotalVMs = %d", l.TotalVMs())
	}
	var empty Layout
	if empty.TotalVMs() != 0 {
		t.Error("empty layout not 0")
	}
}
