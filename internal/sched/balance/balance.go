// Package balance implements BS, Balance Scheduling ([4] in the paper):
// a probabilistic co-scheduling variant that never places two VCPU
// siblings of the same VM in the same PCPU runqueue, raising the chance
// that siblings run concurrently without forcing gang dispatch. As the
// paper observes, the benefit fades as the cluster grows because the
// placement constraint says nothing about VMs on other nodes.
package balance

import (
	"atcsched/internal/sched/credit"
	"atcsched/internal/vmm"
)

// Options configures the BS scheduler.
type Options struct {
	// Credit configures the underlying credit core.
	Credit credit.Options `json:"credit,omitzero"`
}

// DefaultOptions returns stock BS parameters.
func DefaultOptions() Options { return Options{Credit: credit.DefaultOptions()} }

// Scheduler is BS layered over the credit core.
type Scheduler struct {
	*credit.Scheduler
}

// New builds a BS scheduler for node n.
func New(n *vmm.Node, opts Options) *Scheduler {
	s := &Scheduler{Scheduler: credit.New(n, opts.Credit)}
	s.PlaceQueue = s.place
	return s
}

// Factory returns a vmm.SchedulerFactory producing BS schedulers.
func Factory(opts Options) vmm.SchedulerFactory {
	return func(n *vmm.Node) vmm.Scheduler { return New(n, opts) }
}

// Name implements vmm.Scheduler.
func (s *Scheduler) Name() string { return "BS" }

// place picks the least-loaded runqueue that holds no sibling of v's VM;
// when every queue has a sibling (more VCPUs than PCPUs), it falls back
// to the least-loaded queue.
func (s *Scheduler) place(v *vmm.VCPU, reason vmm.EnqueueReason) int {
	n := s.Node()
	best, bestLen := -1, 0
	for q := range n.PCPUs() {
		if s.QueueHasSibling(q, v.VM(), v) {
			continue
		}
		l := s.QueueLen(q)
		if best < 0 || l < bestLen {
			best, bestLen = q, l
		}
	}
	if best >= 0 {
		return best
	}
	for q := range n.PCPUs() {
		l := s.QueueLen(q)
		if best < 0 || l < bestLen {
			best, bestLen = q, l
		}
	}
	return best
}
