// Package registry is the single authority on scheduling policies: each
// scheduler package self-registers a Descriptor (kind, description,
// defaults, options type, factory builder) from an init function, and
// everything that selects a policy by name — cluster configs, scenario
// JSON, command-line flags, the control daemon — resolves it here. Adding
// a policy is therefore implementing vmm.Scheduler plus one Register
// call; no switch statements elsewhere need editing.
//
// Options resolution is a merge: the caller's options (a Go struct of the
// registered type, by value or pointer, or raw JSON) are overlaid on the
// policy's defaults field by field, so a caller setting only ATC's α
// keeps the paper defaults for everything else. The merge goes through
// encoding/json with omitzero tags, which makes every options type
// JSON-round-trippable by construction — the same mechanism serves Go
// callers and scenario files.
package registry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"

	"atcsched/internal/sim"
	"atcsched/internal/vmm"
)

// Base carries the cross-policy overrides every credit-core policy
// honours. They arrive separately from the policy options because they
// parameterize ablations and sweeps that apply uniformly across kinds
// (cluster.SchedSpec.FixedSlice and the Disable toggles).
type Base struct {
	// FixedSlice, when nonzero, overrides the policy's base time slice.
	FixedSlice sim.Time
	// DisableBoost/DisableSteal force the credit core's wake boost and
	// runqueue stealing off (they never force them on, so options that
	// disable them stay disabled).
	DisableBoost bool
	DisableSteal bool
}

// Descriptor registers one scheduling policy.
type Descriptor struct {
	// Kind is the canonical upper-case policy name (e.g. "ATC").
	Kind string
	// Order places the policy in the paper's comparison sequence
	// (CR=1 … ATC=6); zero means the policy is not part of the compared
	// set.
	Order int
	// Extension marks baselines this repository adds beyond the paper's
	// comparison (HY). Policies with Order 0 and Extension false (EXT)
	// are resolvable but excluded from the evaluation sweeps.
	Extension bool
	// Description is a one-line summary for listings.
	Description string
	// Defaults returns a pointer to a freshly-populated options struct.
	// The pointed-to type defines the policy's options schema.
	Defaults func() any
	// Build turns merged options (the same pointer type Defaults returns)
	// and the base overrides into a scheduler factory, validating the
	// configuration.
	Build func(opts any, base Base) (vmm.SchedulerFactory, error)
}

var (
	mu          sync.RWMutex
	descriptors = map[string]Descriptor{}
)

// Register records a policy descriptor. It panics on a duplicate or
// malformed registration — both are programmer errors caught at init.
func Register(d Descriptor) {
	switch {
	case d.Kind == "" || d.Kind != strings.ToUpper(d.Kind):
		panic(fmt.Sprintf("registry: kind %q must be non-empty upper-case", d.Kind))
	case d.Defaults == nil || d.Build == nil:
		panic("registry: " + d.Kind + ": Defaults and Build are required")
	case d.Defaults() == nil || reflect.TypeOf(d.Defaults()).Kind() != reflect.Pointer:
		panic("registry: " + d.Kind + ": Defaults must return a non-nil pointer")
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := descriptors[d.Kind]; dup {
		panic("registry: duplicate kind " + d.Kind)
	}
	for _, other := range descriptors {
		if d.Order != 0 && other.Order == d.Order {
			panic(fmt.Sprintf("registry: %s and %s both claim comparison position %d", d.Kind, other.Kind, d.Order))
		}
	}
	descriptors[d.Kind] = d
}

// Lookup returns the descriptor for kind (case-insensitive).
func Lookup(kind string) (Descriptor, bool) {
	mu.RLock()
	defer mu.RUnlock()
	d, ok := descriptors[strings.ToUpper(kind)]
	return d, ok
}

// Kinds returns every registered kind, sorted.
func Kinds() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, 0, len(descriptors))
	for k := range descriptors {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Compared returns the kinds of the paper's comparison set in the
// paper's order.
func Compared() []string {
	mu.RLock()
	defer mu.RUnlock()
	var ds []Descriptor
	for _, d := range descriptors {
		if d.Order > 0 {
			ds = append(ds, d)
		}
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].Order < ds[j].Order })
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = d.Kind
	}
	return out
}

// Extensions returns the extension-baseline kinds, sorted.
func Extensions() []string {
	mu.RLock()
	defer mu.RUnlock()
	var out []string
	for k, d := range descriptors {
		if d.Extension {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// UnknownKindError describes an unregistered kind, enumerating the valid
// ones so the caller's typo is diagnosable from the message alone.
func UnknownKindError(kind string) error {
	return fmt.Errorf("unknown scheduler %q (valid: %s)", kind, strings.Join(Kinds(), ", "))
}

// Options merges the caller's options over the policy's defaults and
// returns the result (the pointer type Defaults returns). opts may be
// nil (pure defaults), raw JSON ([]byte or json.RawMessage, unknown
// fields rejected), or the registered options struct by value or
// pointer — in the struct forms, zero-valued fields inherit the
// defaults.
func (d Descriptor) Options(opts any) (any, error) {
	out := d.Defaults()
	if opts == nil {
		return out, nil
	}
	var raw []byte
	switch v := opts.(type) {
	case json.RawMessage:
		raw = v
	case []byte:
		raw = v
	default:
		rv := reflect.ValueOf(opts)
		if rv.Kind() == reflect.Pointer {
			if rv.IsNil() {
				return out, nil
			}
			rv = rv.Elem()
		}
		if want := reflect.TypeOf(out).Elem(); rv.Type() != want {
			return nil, fmt.Errorf("%s options must be %v or raw JSON, got %T", d.Kind, want, opts)
		}
		b, err := json.Marshal(rv.Interface())
		if err != nil {
			return nil, fmt.Errorf("%s options: %w", d.Kind, err)
		}
		raw = b
	}
	if len(raw) == 0 {
		return out, nil
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(out); err != nil {
		return nil, fmt.Errorf("%s options: %w", d.Kind, err)
	}
	return out, nil
}

// Resolve looks kind up, merges opts over its defaults, and builds the
// scheduler factory with the base overrides applied.
func Resolve(kind string, opts any, base Base) (vmm.SchedulerFactory, error) {
	d, ok := Lookup(kind)
	if !ok {
		return nil, UnknownKindError(kind)
	}
	merged, err := d.Options(opts)
	if err != nil {
		return nil, err
	}
	return d.Build(merged, base)
}

// Validate checks that kind is registered and opts resolve to a buildable
// configuration, without instantiating a scheduler.
func Validate(kind string, opts any) error {
	_, err := Resolve(kind, opts, Base{})
	return err
}
