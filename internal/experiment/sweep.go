package experiment

import (
	"fmt"

	"atcsched/internal/cluster"
	"atcsched/internal/core"
	"atcsched/internal/metrics"
	"atcsched/internal/report"
	"atcsched/internal/runner"
	"atcsched/internal/sim"
	"atcsched/internal/vmm"
	"atcsched/internal/workload"
)

// sweepPoint is one (slice, kernel) measurement from the §II-B setup:
// two physical nodes, four identical virtual clusters of two big VMs.
type sweepPoint struct {
	exec   float64  // mean execution time, seconds
	spin   sim.Time // mean spinlock latency
	misses uint64   // LLC misses accumulated by the app VMs
	ctxsw  uint64   // node context switches
}

// runSweepPoint measures one kernel at one fixed slice.
func runSweepPoint(sc Scale, kernel string, class workload.Class, slice sim.Time, seed uint64) (sweepPoint, error) {
	cfg := cluster.DefaultConfig(2, cluster.CR)
	cfg.Sched.FixedSlice = slice
	cfg.Seed = seed
	s, err := cluster.New(cfg)
	if err != nil {
		return sweepPoint{}, err
	}
	prof := workload.NPB(kernel, class)
	prof.Iterations = iterCount(prof.Iterations, sc.IterScale)
	var runs []*workload.ParallelRun
	for vc := 0; vc < 4; vc++ {
		vms := s.VirtualCluster(fmt.Sprintf("vc%d", vc), 2, sc.BigVCPUsPerVM, nil)
		runs = append(runs, s.RunParallel(prof, vms, sc.Rounds, false))
	}
	if !s.Go(sc.Horizon) {
		return sweepPoint{}, fmt.Errorf("sweep %s slice=%v: horizon exceeded", kernel, slice)
	}
	var pt sweepPoint
	var times []float64
	var spinSum sim.Time
	for _, r := range runs {
		times = append(times, r.MeanTime())
		spinSum += r.App.SpinLatencyMean()
		pt.misses += r.App.LLCMisses()
	}
	pt.exec = metrics.Mean(times)
	pt.spin = spinSum / sim.Time(len(runs))
	for _, n := range s.World.Nodes() {
		pt.ctxsw += n.CtxSwitches()
	}
	return pt, nil
}

// fig5Kernels trims the kernel list at small scale to keep quick runs
// quick; medium and full cover all six.
func fig5Kernels(sc Scale) []string {
	if sc.Name == "small" {
		return []string{"lu", "is"}
	}
	return workload.NPBKernels()
}

func init() {
	register(Experiment{
		ID:    "fig5",
		Title: "Figure 5 — spinlock latency and execution time vs time slice (six kernels)",
		Run: func(sc Scale, seed uint64) ([]*report.Table, error) {
			kernels := fig5Kernels(sc)
			// Every (kernel, slice) point is an independent two-node
			// scenario; sweep the whole grid through the worker pool and
			// render from the ordered results.
			grid, err := runner.Grid(len(kernels), len(sc.SliceSweep), func(r, c int) (sweepPoint, error) {
				return runSweepPoint(sc, kernels[r], workload.ClassB, sc.SliceSweep[c], seed)
			})
			if err != nil {
				return nil, err
			}
			var tables []*report.Table
			for ki, kernel := range kernels {
				t := report.New(
					fmt.Sprintf("%s.B under CR with fixed slices (paper: both series fall together; Pearson > 0.9)", kernel),
					"Slice", "Exec(s)", "Normalized", "SpinLatency")
				var execs, spins []float64
				var base float64
				for si, slice := range sc.SliceSweep {
					pt := grid[ki][si]
					if base == 0 {
						base = pt.exec
					}
					execs = append(execs, pt.exec)
					spins = append(spins, pt.spin.Seconds())
					t.Add(slice.String(), report.F(pt.exec), report.F(pt.exec/base), pt.spin.String())
				}
				r, err := metrics.Pearson(spins, execs)
				if err != nil {
					t.AddNote("Pearson: undefined (%v)", err)
				} else {
					t.AddNote("Pearson(spin latency, exec time) = %.3f (paper: > 0.9)", r)
				}
				t.AddNote("exec %s   spin %s  (slice 30ms → %v)",
					report.Spark(execs), report.Spark(spins), sc.SliceSweep[len(sc.SliceSweep)-1])
				tables = append(tables, t)
			}
			return tables, nil
		},
	})

	register(Experiment{
		ID:    "fig8",
		Title: "Figure 8 — short-slice overhead: execution time and LLC misses (class C)",
		Run: func(sc Scale, seed uint64) ([]*report.Table, error) {
			tables, _, err := runFig8(sc, seed)
			return tables, err
		},
	})

	register(Experiment{
		ID:    "euclid",
		Title: "§III-B — Euclidean metric over candidate minimum-slice thresholds",
		Run: func(sc Scale, seed uint64) ([]*report.Table, error) {
			_, perApp, err := runFig8(sc, seed)
			if err != nil {
				return nil, err
			}
			best, table, err := core.OptimizeThreshold(perApp)
			if err != nil {
				return nil, err
			}
			t := report.New(
				"Equation (1) distance to per-application optima (paper: 0.034/0.020/0.018/0.049/0.039/0.069, min at 0.3ms)",
				"Candidate slice", "D(O,P)")
			for _, r := range table {
				t.Add(r.Slice.String(), report.F(r.D))
			}
			t.AddNote("Chosen minimum time-slice threshold: %v (paper: 0.3ms)", best)
			return []*report.Table{t}, nil
		},
	})

	register(Experiment{
		ID:    "fig9",
		Title: "Figure 9 — non-parallel applications vs time slice",
		Run:   runFig9,
	})
}

// runFig8 measures the short-slice sweep for every kernel at class C and
// returns both the rendered tables and the normalized-exec map the
// Euclidean optimizer consumes.
func runFig8(sc Scale, seed uint64) ([]*report.Table, map[string]map[sim.Time]float64, error) {
	kernels := fig5Kernels(sc)
	// Column 0 is the 30 ms baseline, columns 1.. the short sweep; the
	// whole (kernel × slice) grid fans across the worker pool.
	slices := append([]sim.Time{30 * sim.Millisecond}, sc.ShortSweep...)
	grid, err := runner.Grid(len(kernels), len(slices), func(r, c int) (sweepPoint, error) {
		return runSweepPoint(sc, kernels[r], workload.ClassC, slices[c], seed)
	})
	if err != nil {
		return nil, nil, err
	}
	perApp := make(map[string]map[sim.Time]float64)
	var tables []*report.Table
	for ki, kernel := range kernels {
		base := grid[ki][0]
		t := report.New(
			fmt.Sprintf("%s.C under CR with short slices (paper: execution time re-inflects below ~0.2ms as LLC misses grow)", kernel),
			"Slice", "Exec(s)", "Normalized", "SpinLatency", "LLC misses", "CtxSw")
		t.Add("30.000ms", report.F(base.exec), "1.000", base.spin.String(), report.I(base.misses), report.I(base.ctxsw))
		perApp[kernel] = make(map[sim.Time]float64)
		var norms []float64
		for si, slice := range sc.ShortSweep {
			pt := grid[ki][si+1]
			norm := pt.exec / base.exec
			perApp[kernel][slice] = norm
			norms = append(norms, norm)
			t.Add(slice.String(), report.F(pt.exec), report.F(norm), pt.spin.String(), report.I(pt.misses), report.I(pt.ctxsw))
		}
		bestIdx := metrics.ArgMin(norms)
		t.AddNote("Inflection: best slice %v; misses and context switches grow monotonically as slices shrink.",
			sc.ShortSweep[bestIdx])
		tables = append(tables, t)
	}
	return tables, perApp, nil
}

// runFig9 reproduces §III-C's study: the §II-A2 layout (two nodes, three
// background virtual clusters, two non-parallel VMs) under CR with the
// global slice swept. sphinx3 should slow down, ping should speed up,
// stream should degrade slightly.
func runFig9(sc Scale, seed uint64) ([]*report.Table, error) {
	type fig9Row struct {
		sphinx float64
		ping   float64
		stream float64
	}
	measure := 30 * sim.Second
	// One independent scenario per slice setting; fan across the pool.
	rows, err := runner.Map(len(sc.SliceSweep), func(i int) (fig9Row, error) {
		slice := sc.SliceSweep[i]
		cfg := cluster.DefaultConfig(2, cluster.CR)
		cfg.Sched.FixedSlice = slice
		cfg.Seed = seed
		s, err := cluster.New(cfg)
		if err != nil {
			return fig9Row{}, err
		}
		// Three background virtual clusters of two 8-VCPU VMs. Their
		// ranks spin on receives indefinitely (RecvPoll < 0): the paper's
		// MPI background burns full CPU at every slice setting, so this
		// sweep isolates the slice's effect on the non-parallel tenants
		// rather than modulating the background's CPU appetite.
		for vc := 0; vc < 3; vc++ {
			prof := workload.NPB(workload.NPBKernels()[vc%3], workload.ClassB)
			prof.Iterations = iterCount(prof.Iterations, sc.IterScale)
			prof.RecvPoll = -1
			s.RunBackground(prof, s.VirtualCluster(fmt.Sprintf("bg%d", vc), 2, sc.VCPUsPerVM, nil))
		}
		npA := s.IndependentVM("np-a", 0, sc.VCPUsPerVM, vmm.ClassNonParallel)
		npB := s.IndependentVM("np-b", 1, sc.VCPUsPerVM, vmm.ClassNonParallel)
		sphinx := workload.NewCPUJob(npA.VCPU(0), workload.SPECProfiles()[2])
		stream := workload.NewStreamJob(npA.VCPU(1))
		ping := workload.NewPingJob(npB, 0, npA, 2, 10*sim.Millisecond)
		s.GoFor(measure)
		return fig9Row{sphinx: sphinx.MeanTime(), ping: ping.MeanRTT(), stream: stream.BandwidthMBps()}, nil
	})
	if err != nil {
		return nil, err
	}
	t := report.New(
		"Non-parallel applications vs time slice (paper Fig. 9: sphinx3 time grows, ping RTT falls, stream dips slightly)",
		"Slice", "sphinx3(s)", "ping RTT", "stream MB/s")
	for i, slice := range sc.SliceSweep {
		t.Add(slice.String(), report.F(rows[i].sphinx), report.Ms(rows[i].ping), fmt.Sprintf("%.0f", rows[i].stream))
	}
	return []*report.Table{t}, nil
}
