package cosched_test

import (
	"testing"

	"atcsched/internal/sched/cosched"
	"atcsched/internal/sim"
	"atcsched/internal/vmm"
	"atcsched/internal/vmmtest"
)

func TestMarkingFollowsSpinWait(t *testing.T) {
	opts := cosched.DefaultOptions()
	w := vmmtest.World(1, 1, cosched.Factory(opts))
	node := w.Node(0)
	vmA, _ := vmmtest.SpinPair(node, opts.Credit.TimeSlice)
	w.Start()
	w.RunUntil(sim.Second)
	s := node.Scheduler().(*cosched.Scheduler)
	if !s.Marked(vmA) {
		t.Error("contended VM not marked for co-scheduling")
	}
}

func TestUnmarkAfterCalm(t *testing.T) {
	opts := cosched.DefaultOptions()
	w := vmmtest.World(1, 1, cosched.Factory(opts))
	node := w.Node(0)
	vmA := node.NewVM("par", vmm.ClassParallel, 2, 0, 1)
	l := vmA.NewLock()
	deadline := sim.Second
	lockLoop := []vmm.Action{
		vmm.Compute(150 * sim.Microsecond),
		vmm.Acquire(l), vmm.Compute(100 * sim.Microsecond), vmm.Release(l),
	}
	for _, v := range vmA.VCPUs() {
		v.SetProcess(&vmmtest.SeqProc{Actions: lockLoop}, func(*vmm.VCPU) vmm.Process {
			if w.Eng.Now() > deadline {
				return nil
			}
			return &vmmtest.SeqProc{Actions: lockLoop}
		})
	}
	hog := node.NewVM("hog", vmm.ClassNonParallel, 1, 0, 1)
	vmmtest.Loop(hog.VCPU(0), vmm.Compute(sim.Second))
	w.Start()
	w.RunUntil(sim.Second)
	s := node.Scheduler().(*cosched.Scheduler)
	if !s.Marked(vmA) {
		t.Fatal("VM not marked during contention")
	}
	w.RunUntil(3 * sim.Second)
	if s.Marked(vmA) {
		t.Error("VM still marked after contention stopped")
	}
}

func TestGangRunsSiblingsConcurrently(t *testing.T) {
	// Two PCPUs, a 2-VCPU parallel VM under contention, plus two hogs.
	// Under CS the marked VM's VCPUs should frequently run at the same
	// time on both PCPUs; under plain credit they drift apart.
	overlap := func(factory vmm.SchedulerFactory) float64 {
		w := vmmtest.World(1, 2, factory)
		node := w.Node(0)
		vmA, _ := vmmtest.SpinPair(node, 30*sim.Millisecond)
		hog2 := node.NewVM("hog2", vmm.ClassNonParallel, 1, 0, 1)
		vmmtest.Loop(hog2.VCPU(0), vmm.Compute(sim.Second))
		w.Start()
		// Sample co-run state at fine granularity.
		samples, both := 0, 0
		for ti := sim.Time(0); ti < 3*sim.Second; ti += sim.Millisecond {
			w.RunUntil(ti)
			running := 0
			for _, v := range vmA.VCPUs() {
				if v.State() == vmm.StateRunning {
					running++
				}
			}
			if running >= 1 {
				samples++
				if running == 2 {
					both++
				}
			}
		}
		if samples == 0 {
			t.Fatal("VM never ran")
		}
		return float64(both) / float64(samples)
	}
	cs := overlap(cosched.Factory(cosched.DefaultOptions()))
	// Compare against CS with an impossible threshold (never marks), i.e.
	// the plain credit behaviour with identical parameters.
	noGang := cosched.DefaultOptions()
	noGang.SpinWaitThreshold = sim.Second
	cr := overlap(cosched.Factory(noGang))
	if cs <= cr {
		t.Errorf("co-run fraction CS=%.3f <= CR=%.3f; gang dispatch ineffective", cs, cr)
	}
}

func TestCoSchedulingSpeedsUpMarkedVM(t *testing.T) {
	// A lock-coupled pair on an overloaded node: when its VCPUs are
	// gang-dispatched (always marked, 2µs threshold) the pair completes
	// more lock rounds in the same virtual time than when co-scheduling
	// never engages (impossible threshold) — the throughput effect the
	// paper's Figure 1 measures for CS.
	run := func(threshold sim.Time) uint64 {
		opts := cosched.DefaultOptions()
		opts.SpinWaitThreshold = threshold
		w := vmmtest.World(1, 2, cosched.Factory(opts))
		node := w.Node(0)
		vmA, l := vmmtest.SpinPair(node, 30*sim.Millisecond)
		_ = vmA
		for i := 0; i < 3; i++ {
			hog := node.NewVM("hog2", vmm.ClassNonParallel, 1, 0, 1)
			vmmtest.Loop(hog.VCPU(0), vmm.Compute(sim.Second))
		}
		w.Start()
		w.RunUntil(5 * sim.Second)
		return l.Acquisitions()
	}
	withCS := run(2 * sim.Microsecond)
	withoutCS := run(sim.Second)
	if withCS <= withoutCS {
		t.Errorf("lock rounds with CS %d <= without %d", withCS, withoutCS)
	}
}

func TestName(t *testing.T) {
	w := vmmtest.World(1, 1, cosched.Factory(cosched.DefaultOptions()))
	if got := w.Node(0).Scheduler().Name(); got != "CS" {
		t.Errorf("Name = %q", got)
	}
}

func TestGangWithMoreVCPUsThanPCPUs(t *testing.T) {
	// A marked VM with 4 runnable VCPUs on a 2-PCPU node: gang places
	// what fits and must not panic or lose VCPUs.
	opts := cosched.DefaultOptions()
	opts.SpinWaitThreshold = 2 * sim.Microsecond // marks immediately
	w := vmmtest.World(1, 2, cosched.Factory(opts))
	node := w.Node(0)
	vmA := node.NewVM("wide", vmm.ClassParallel, 4, 0, 1)
	l := vmA.NewLock()
	for _, v := range vmA.VCPUs() {
		vmmtest.Loop(v,
			vmm.Compute(100*sim.Microsecond),
			vmm.Acquire(l), vmm.Compute(50*sim.Microsecond), vmm.Release(l),
		)
	}
	w.Start()
	w.RunUntil(2 * sim.Second)
	for i, v := range vmA.VCPUs() {
		if v.RunTime() == 0 {
			t.Errorf("vcpu %d starved by gang dispatch", i)
		}
	}
	w.MustAudit()
}

func TestGangLeavesBlockedVCPUsAlone(t *testing.T) {
	opts := cosched.DefaultOptions()
	opts.SpinWaitThreshold = 2 * sim.Microsecond
	w := vmmtest.World(1, 2, cosched.Factory(opts))
	node := w.Node(0)
	vmA := node.NewVM("par", vmm.ClassParallel, 2, 0, 1)
	l := vmA.NewLock()
	vmmtest.Loop(vmA.VCPU(0),
		vmm.Compute(100*sim.Microsecond),
		vmm.Acquire(l), vmm.Compute(50*sim.Microsecond), vmm.Release(l),
	)
	// VCPU 1 sleeps forever after one compute: the gang must not revive
	// a blocked VCPU.
	vmA.VCPU(1).SetProcess(&vmmtest.SeqProc{Actions: []vmm.Action{
		vmm.Compute(sim.Millisecond),
		vmm.Sleep(10 * sim.Second),
	}}, nil)
	w.Start()
	w.RunUntil(2 * sim.Second)
	if rt := vmA.VCPU(1).RunTime(); rt > 2*sim.Millisecond {
		t.Errorf("blocked VCPU ran %v; gang must not revive sleepers", rt)
	}
	w.MustAudit()
}
