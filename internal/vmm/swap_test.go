package vmm

import (
	"testing"

	"atcsched/internal/netmodel"
	"atcsched/internal/sim"
)

func TestSwapBeforeStartAppliesImmediately(t *testing.T) {
	w := testWorld(t, 1, 1, sim.Millisecond)
	n := w.Node(0)
	if err := n.SwapScheduler(func(n *Node) Scheduler {
		return &rrSched{node: n, slice: 2 * sim.Millisecond}
	}); err != nil {
		t.Fatal(err)
	}
	if got := n.Scheduler().(*rrSched).slice; got != 2*sim.Millisecond {
		t.Errorf("pre-start swap not applied: slice %v", got)
	}
	if n.Swaps() != 0 {
		t.Errorf("pre-start swap counted as runtime swap: %d", n.Swaps())
	}
}

func TestSwapRejectsNilFactories(t *testing.T) {
	w := testWorld(t, 1, 1, sim.Millisecond)
	n := w.Node(0)
	if err := n.SwapScheduler(nil); err == nil {
		t.Error("nil factory accepted")
	}
	if err := n.SwapScheduler(func(*Node) Scheduler { return nil }); err == nil {
		t.Error("nil-returning factory accepted before start")
	}
}

func TestSwapMidRunAtPeriodBoundary(t *testing.T) {
	w := testWorld(t, 1, 1, sim.Millisecond)
	tr := NewTracer(0)
	w.SetTracer(tr)
	n := w.Node(0)
	vmA := n.NewVM("a", ClassParallel, 1, 0, 1)
	vmB := n.NewVM("b", ClassParallel, 1, 0, 1)
	var endA, endB sim.Time
	vmA.VCPU(0).SetProcess(&seqProc{actions: []Action{
		{Kind: ActCompute, Work: 60 * sim.Millisecond, Then: func() { endA = w.Eng.Now() }},
	}}, nil)
	vmB.VCPU(0).SetProcess(&seqProc{actions: []Action{
		{Kind: ActCompute, Work: 60 * sim.Millisecond, Then: func() { endB = w.Eng.Now() }},
	}}, nil)
	w.Start()
	w.RunUntil(10 * sim.Millisecond)

	old := n.Scheduler()
	if err := n.SwapScheduler(func(n *Node) Scheduler {
		return &rrSched{node: n, slice: 2 * sim.Millisecond}
	}); err != nil {
		t.Fatal(err)
	}
	// Deferred: the old scheduler stays in force until the period boundary.
	w.RunUntil(29 * sim.Millisecond)
	if n.Scheduler() != old {
		t.Fatal("swap applied before the period boundary")
	}
	if n.Swaps() != 0 {
		t.Fatalf("Swaps = %d before boundary", n.Swaps())
	}
	w.RunUntil(31 * sim.Millisecond)
	if n.Scheduler() == old {
		t.Fatal("swap not applied at the period boundary")
	}
	if got := n.Scheduler().(*rrSched).slice; got != 2*sim.Millisecond {
		t.Errorf("new scheduler slice = %v", got)
	}
	if n.Swaps() != 1 {
		t.Errorf("Swaps = %d, want 1", n.Swaps())
	}

	// Both workloads must finish under the new policy: no VCPU was lost or
	// duplicated across the swap.
	w.RunUntil(sim.Second)
	if endA == 0 || endB == 0 {
		t.Fatalf("compute lost across swap: endA=%v endB=%v", endA, endB)
	}

	swaps := 0
	for _, r := range tr.Records() {
		if r.Kind == TraceSwap {
			swaps++
			if r.At != 30*sim.Millisecond {
				t.Errorf("swap traced at %v, want 30ms", r.At)
			}
		}
	}
	if swaps != 1 {
		t.Errorf("traced %d swap records, want 1", swaps)
	}
}

func TestHeteroWorldPerNodeFactories(t *testing.T) {
	cfg := DefaultNodeConfig()
	cfg.PCPUs = 1
	cfg.Dom0VCPUs = 1
	w, err := NewHeteroWorld(2, cfg, netmodel.DefaultConfig(), func(i int) SchedulerFactory {
		slice := sim.Time(i+1) * sim.Millisecond
		return func(n *Node) Scheduler { return &rrSched{node: n, slice: slice} }
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Node(0).Scheduler().(*rrSched).slice != sim.Millisecond ||
		w.Node(1).Scheduler().(*rrSched).slice != 2*sim.Millisecond {
		t.Error("per-node factories not threaded through")
	}
	if _, err := NewHeteroWorld(1, cfg, netmodel.DefaultConfig(), nil); err == nil {
		t.Error("nil factory function accepted")
	}
	if _, err := NewHeteroWorld(1, cfg, netmodel.DefaultConfig(), func(int) SchedulerFactory { return nil }); err == nil {
		t.Error("nil per-node factory accepted")
	}
}
