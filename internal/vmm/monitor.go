package vmm

import (
	"atcsched/internal/metrics"
	"atcsched/internal/sim"
)

// SpinMonitor accumulates per-VM spinlock latency. It keeps both a
// lifetime view (for the evaluation harness) and a per-scheduling-period
// accumulator that schedulers sample and reset every period — the paper's
// "average spinlock latency of VM during the (i-1)th scheduling period".
type SpinMonitor struct {
	lifetime metrics.Welford
	// period accumulators, reset by SamplePeriod.
	periodSum   sim.Time
	periodCount int64
}

// Record notes one completed lock acquisition that waited for lat.
// Uncontended acquisitions record zero, which keeps the per-period
// average meaningful (ATC's "latency remains zero" branch).
func (m *SpinMonitor) Record(lat sim.Time) {
	m.lifetime.Add(float64(lat))
	m.periodSum += lat
	m.periodCount++
}

// SamplePeriod returns the mean latency of the acquisitions recorded
// since the previous call (0 when there were none) and resets the period
// accumulator.
func (m *SpinMonitor) SamplePeriod() sim.Time {
	if m.periodCount == 0 {
		return 0
	}
	avg := m.periodSum / sim.Time(m.periodCount)
	m.periodSum = 0
	m.periodCount = 0
	return avg
}

// LifetimeMean returns the mean latency across the whole run.
func (m *SpinMonitor) LifetimeMean() sim.Time { return sim.Time(m.lifetime.Mean()) }

// LifetimeCount returns the number of acquisitions recorded.
func (m *SpinMonitor) LifetimeCount() int64 { return m.lifetime.N() }

// LifetimeMax returns the worst acquisition latency observed.
func (m *SpinMonitor) LifetimeMax() sim.Time { return sim.Time(m.lifetime.Max()) }

// LifetimeSum returns the total time spent waiting on spinlocks.
func (m *SpinMonitor) LifetimeSum() sim.Time { return sim.Time(m.lifetime.Sum()) }

// MonitorVerdict is a monitor-tap decision for one sample (see
// World.SetMonitorTap): the sample may be suppressed entirely (Drop),
// replaced by the previously reported value and sequence number
// (Stale), or perturbed by additive Noise.
type MonitorVerdict struct {
	Drop  bool
	Stale bool
	Noise sim.Time
}

// SampleSpinPeriod is the fault-aware monitoring path: it samples the
// VM's per-period spin latency like SpinMon.SamplePeriod, routed
// through the world's monitor tap when one is installed. It returns
// the (possibly perturbed) average, a sequence number that advances
// only on fresh readings — consumers detect stale data by a repeated
// sequence — and ok=false when the sample was dropped. The underlying
// period accumulator is consumed even when the verdict suppresses the
// reading: a faulty monitoring path loses data, it does not defer it.
func (vm *VM) SampleSpinPeriod() (avg sim.Time, seq uint64, ok bool) {
	raw := vm.SpinMon.SamplePeriod()
	tap := vm.node.world.monitorTap
	if tap == nil {
		vm.monSeq++
		vm.monLastVal, vm.monLastSeq = raw, vm.monSeq
		return raw, vm.monSeq, true
	}
	v := tap(vm)
	switch {
	case v.Drop:
		return 0, 0, false
	case v.Stale:
		if vm.monLastSeq == 0 {
			// Nothing previous to repeat: indistinguishable from a dropout.
			return 0, 0, false
		}
		return vm.monLastVal, vm.monLastSeq, true
	}
	raw += v.Noise
	if raw < 0 {
		raw = 0
	}
	vm.monSeq++
	vm.monLastVal, vm.monLastSeq = raw, vm.monSeq
	return raw, vm.monSeq, true
}
