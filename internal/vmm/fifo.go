package vmm

// fifo is a queue with amortized O(1) push/pop that compacts its backing
// array instead of leaking it through re-slicing.
type fifo[T any] struct {
	items []T
	head  int
}

func (q *fifo[T]) push(v T) { q.items = append(q.items, v) }

func (q *fifo[T]) len() int { return len(q.items) - q.head }

func (q *fifo[T]) pop() T {
	if q.len() == 0 {
		panic("vmm: pop from empty fifo")
	}
	v := q.items[q.head]
	var zero T
	q.items[q.head] = zero
	q.head++
	if q.head > 64 && q.head*2 >= len(q.items) {
		n := copy(q.items, q.items[q.head:])
		q.items = q.items[:n]
		q.head = 0
	}
	return v
}

func (q *fifo[T]) peek() T {
	if q.len() == 0 {
		panic("vmm: peek at empty fifo")
	}
	return q.items[q.head]
}
