package daemon

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"atcsched/internal/core"
	"atcsched/internal/fault"
	"atcsched/internal/sim"
	"atcsched/internal/workload"
)

// renderSlices renders one actuation deterministically.
func renderSlices(node int, slices map[int]sim.Time) string {
	ids := make([]int, 0, len(slices))
	for id := range slices {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var b bytes.Buffer
	fmt.Fprintf(&b, "n%d:", node)
	for _, id := range ids {
		fmt.Fprintf(&b, " vm%d=%v", id, slices[id])
	}
	b.WriteByte('\n')
	return b.String()
}

// recordingActuator logs every single-node Apply (legacy daemon path).
type recordingActuator struct {
	inner Actuator
	log   bytes.Buffer
}

func (r *recordingActuator) Apply(slices map[int]sim.Time) error {
	if err := r.inner.Apply(slices); err != nil {
		return err
	}
	r.log.WriteString(renderSlices(0, slices))
	return nil
}

// recordingFleetActuator logs every ApplyNode (fleet path).
type recordingFleetActuator struct {
	inner FleetActuator
	mu    sync.Mutex
	log   bytes.Buffer
}

func (r *recordingFleetActuator) ApplyNode(node int, slices map[int]sim.Time) error {
	if err := r.inner.ApplyNode(node, slices); err != nil {
		return err
	}
	r.mu.Lock()
	r.log.WriteString(renderSlices(node, slices))
	r.mu.Unlock()
	return nil
}

// singleNodeBackend builds the equivalence-test cluster.
func singleNodeBackend(t *testing.T) *SimBackend {
	t.Helper()
	b, err := NewSimBackend(SimBackendConfig{
		Nodes:      1,
		VCPUsPerVM: 4,
		Clusters:   2,
		Kernel:     "lu",
		Class:      workload.ClassA,
		MaxPeriods: 60,
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestFleetSingleNodeByteIdentical pins the refactor's core contract:
// the fleet path at -nodes 1, shard 1 makes byte-identical decisions,
// actuations and cluster trajectory to the pre-refactor single-node
// daemon (both drive one nodeLoop; only the plumbing differs).
func TestFleetSingleNodeByteIdentical(t *testing.T) {
	legacy := singleNodeBackend(t)
	la := &recordingActuator{inner: legacy}
	d := New(core.DefaultConfig(), legacy, la)
	if err := d.Run(); !IsDone(err) {
		t.Fatalf("legacy daemon: %v", err)
	}

	fleetB := singleNodeBackend(t)
	fa := &recordingFleetActuator{inner: fleetB}
	f := NewFleet(core.DefaultConfig(), fleetB, fa, FleetOptions{Shards: 1})
	defer f.Close()
	if err := f.Run(); !IsDone(err) {
		t.Fatalf("fleet: %v", err)
	}

	if la.log.String() != fa.log.String() {
		t.Fatalf("actuation logs diverge:\nlegacy:\n%s\nfleet:\n%s", la.log.String(), fa.log.String())
	}
	if d.Periods() != f.Decisions() {
		t.Errorf("legacy periods %d != fleet decisions %d", d.Periods(), f.Decisions())
	}
	if got, want := fleetB.World.Executed(), legacy.World.Executed(); got != want {
		t.Errorf("world executed %d events under fleet, %d under legacy", got, want)
	}
	if got, want := fleetB.World.Eng.Now(), legacy.World.Eng.Now(); got != want {
		t.Errorf("world clock %v under fleet, %v under legacy", got, want)
	}
}

// wedgeActuator blocks inside ApplyNode until released, so decisions
// pile up in the actuation queue.
type wedgeActuator struct {
	MapFleetActuator
	entered chan struct{} // signaled once on first Apply
	release chan struct{}
	once    sync.Once
}

// MapFleetActuator records last slices per node (tests).
type MapFleetActuator struct {
	mu   sync.Mutex
	Last map[int]map[int]sim.Time
	N    int
}

func (m *MapFleetActuator) ApplyNode(node int, slices map[int]sim.Time) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.Last == nil {
		m.Last = make(map[int]map[int]sim.Time)
	}
	cp := make(map[int]sim.Time, len(slices))
	for id, sl := range slices {
		cp[id] = sl
	}
	m.Last[node] = cp
	m.N++
	return nil
}

func (w *wedgeActuator) ApplyNode(node int, slices map[int]sim.Time) error {
	w.once.Do(func() { close(w.entered) })
	<-w.release
	return w.MapFleetActuator.ApplyNode(node, slices)
}

// TestFleetQueueOverflowDropsOldest pins the bounded actuation queue:
// with the actuator wedged and QueueCapacity 1, every extra decision
// for the node evicts the previous queued one (superseded by fresher
// data), counted as overflow and a dropped period — and the decision
// that finally lands is the newest.
func TestFleetQueueOverflowDropsOldest(t *testing.T) {
	act := &wedgeActuator{entered: make(chan struct{}), release: make(chan struct{})}
	f := NewFleet(core.DefaultConfig(), nil, act, FleetOptions{Shards: 1, QueueCapacity: 1})
	defer f.Close()

	batch := func(lat sim.Time) NodeBatch {
		return NodeBatch{Node: 0, Samples: []VMSample{{ID: 1, AvgSpinLatency: lat, Parallel: true}}}
	}
	if err := f.Ingest(batch(ms(2))); err != nil {
		t.Fatal(err)
	}
	<-act.entered // applier is wedged inside ApplyNode; queue is empty
	for i := 0; i < 3; i++ {
		if err := f.Ingest(batch(ms(3))); err != nil {
			t.Fatal(err)
		}
	}
	// The three decisions funnel through one decider: the queue (cap 1)
	// holds only the newest, evicting the two before it. Eviction is
	// synchronous with the push, but the pushes race the wedged applier
	// only through the queue lock, so wait for both evictions.
	deadline := time.After(5 * time.Second)
	for f.Overflow() < 2 {
		select {
		case <-deadline:
			t.Fatalf("overflow = %d, want 2", f.Overflow())
		case <-time.After(time.Millisecond):
		}
	}
	close(act.release)
	f.Drain()

	if got := f.Overflow(); got != 2 {
		t.Errorf("overflow = %d, want 2", got)
	}
	if got := f.Decisions(); got != 2 {
		t.Errorf("decisions = %d, want 2 (first and newest)", got)
	}
	if got := f.Stats().DroppedPeriods; got != 2 {
		t.Errorf("dropped periods = %d, want 2 (the evicted decisions)", got)
	}
	if got := f.Stats().Retries; got != 0 {
		t.Errorf("retries = %d, want 0 — overflow must not count as actuation failure", got)
	}
	if act.N != 2 {
		t.Errorf("actuator saw %d applies, want 2", act.N)
	}
	tbl := f.Table()
	if len(tbl) != 1 || tbl[0].DroppedPeriods != 2 || tbl[0].Periods != 2 {
		t.Errorf("table = %+v, want one node with 2 periods and 2 drops", tbl)
	}
}

// faultedFleetBackend builds the kill-restore cluster: contended nodes
// plus a daemon-crash blackout window mid-run.
func faultedFleetBackend(t *testing.T, maxPeriods int) *SimBackend {
	t.Helper()
	b, err := NewSimBackend(SimBackendConfig{
		Nodes:      2,
		VCPUsPerVM: 4,
		Clusters:   2,
		Kernel:     "lu",
		Class:      workload.ClassA,
		MaxPeriods: maxPeriods,
		Seed:       3,
		Faults: &fault.Spec{Windows: []fault.Window{
			{Kind: fault.DaemonCrash, StartSec: 0.6, DurSec: 0.45},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// runFleetPeriods steps f n times (stopping early on clean end).
func runFleetPeriods(t *testing.T, f *Fleet, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := f.Step(); err != nil {
			if IsDone(err) {
				return
			}
			t.Fatalf("step %d: %v", i, err)
		}
	}
}

// TestFleetKillRestoreMidBlackout is the headline resilience pin: the
// fleet daemon is killed in the middle of a daemon-crash blackout, a
// new fleet is restored from the snapshot, and the run continues. The
// restored run's post-convergence control state must be byte-identical
// to an uninterrupted run's — and the controller must re-engage (ATC
// slices below the default) after the blackout lifts.
func TestFleetKillRestoreMidBlackout(t *testing.T) {
	const total, killAt = 60, 25 // blackout spans periods 21..35 (0.6s..1.05s)
	opts := FleetOptions{Shards: 2}

	// Uninterrupted reference run.
	refB := faultedFleetBackend(t, total)
	ref := NewFleet(core.DefaultConfig(), refB, refB, opts)
	runFleetPeriods(t, ref, total)
	refSnap, err := ref.Snapshot().Encode()
	if err != nil {
		t.Fatal(err)
	}
	ref.Close()

	// Killed-and-restored run on an identical cluster.
	b := faultedFleetBackend(t, total)
	f1 := NewFleet(core.DefaultConfig(), b, b, opts)
	runFleetPeriods(t, f1, killAt)
	if !b.plan.DaemonDown(b.World.Eng.Now()) {
		t.Fatalf("kill point %d is not inside the blackout window (now %v)", killAt, b.World.Eng.Now())
	}
	snap := f1.Snapshot()
	enc, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	f1.Close() // the crash

	restored, err := DecodeSnapshot(enc)
	if err != nil {
		t.Fatal(err)
	}
	f2 := NewFleet(core.DefaultConfig(), b, b, opts)
	defer f2.Close()
	if err := f2.Restore(restored); err != nil {
		t.Fatal(err)
	}
	if got := f2.RestoredNodes(); got != 2 {
		t.Fatalf("restored %d nodes, want 2", got)
	}
	runFleetPeriods(t, f2, total-killAt)

	gotSnap, err := f2.Snapshot().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotSnap, refSnap) {
		t.Errorf("post-convergence control state diverges from uninterrupted run:\nrestored:\n%s\nreference:\n%s",
			gotSnap, refSnap)
	}
	if rep := b.FaultReport(); rep.DaemonDarkPeriods == 0 {
		t.Error("no dark periods tallied — blackout window never engaged")
	}
	// Re-engagement: after the blackout the controller is adapting again,
	// so the contended parallel VMs sit below the default slice.
	def := core.DefaultConfig().Default
	engaged := false
	for _, node := range f2.Nodes() {
		for _, sl := range f2.LastSlices(node) {
			if sl < def {
				engaged = true
			}
		}
	}
	if !engaged {
		t.Error("no parallel VM below the default slice after restore — ATC never re-engaged")
	}
	if errs := b.World.Audit(); len(errs) > 0 {
		t.Fatalf("audit: %v", errs[0])
	}
}

// TestFleetShardCountInvariant pins that the shard count is pure
// plumbing: the same cluster driven at 1, 2 and 4 shards lands the
// same control state, byte for byte.
func TestFleetShardCountInvariant(t *testing.T) {
	var want []byte
	for _, shards := range []int{1, 2, 4} {
		b := faultedFleetBackend(t, 40)
		f := NewFleet(core.DefaultConfig(), b, b, FleetOptions{Shards: shards})
		runFleetPeriods(t, f, 40)
		enc, err := f.Snapshot().Encode()
		if err != nil {
			t.Fatal(err)
		}
		f.Close()
		if want == nil {
			want = enc
			continue
		}
		if !bytes.Equal(enc, want) {
			t.Errorf("shards=%d control state diverges from shards=1", shards)
		}
	}
}

// TestFleetMaxNodesRejectsStrays pins the MaxNodes bound: batches for
// out-of-range nodes are counted and ignored, never grown into state.
func TestFleetMaxNodesRejectsStrays(t *testing.T) {
	act := &MapFleetActuator{}
	f := NewFleet(core.DefaultConfig(), nil, act, FleetOptions{MaxNodes: 2})
	defer f.Close()
	for _, node := range []int{0, 1, 2, -1, 7} {
		if err := f.Ingest(NodeBatch{Node: node, Samples: []VMSample{{ID: 1, AvgSpinLatency: ms(1), Parallel: true}}}); err != nil {
			t.Fatal(err)
		}
	}
	f.Drain()
	if got := f.Rejected(); got != 3 {
		t.Errorf("rejected = %d, want 3", got)
	}
	if got := f.Nodes(); len(got) != 2 {
		t.Errorf("fleet grew state for %v, want exactly nodes [0 1]", got)
	}
}
