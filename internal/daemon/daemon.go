// Package daemon hosts the reusable logic of cmd/atcd, a userspace
// Adaptive Time-slice Control daemon. The paper implements ATC inside
// the Xen scheduler; outside a modified hypervisor the same control loop
// can run in dom0 userspace — sample per-VM spinlock latency, run
// Algorithms 1-2 (internal/core), and actuate per-VM slices through
// whatever knob the platform exposes (Xen's credit scheduler exposes a
// global tslice_ms; per-VM ratelimits and weights approximate the rest).
//
// The daemon is written against two small interfaces so the same loop
// drives a real actuator, a file-based one, or the in-memory fake used
// in tests and the demo.
package daemon

import (
	"fmt"
	"io"
	"sort"

	"atcsched/internal/core"
	"atcsched/internal/sim"
)

// VMSample is one VM's state for one scheduling period.
type VMSample struct {
	ID int
	// AvgSpinLatency is the mean guest spinlock latency over the period.
	AvgSpinLatency sim.Time
	// Parallel classifies the VM (tightly-coupled parallel application).
	Parallel bool
	// AdminSlice, when nonzero, pins a non-parallel VM's slice.
	AdminSlice sim.Time
}

// Source provides per-period latency samples (e.g., parsed from a guest
// agent, xenbus, or a trace file).
type Source interface {
	// Sample returns the current period's VM population. io.EOF ends the
	// control loop cleanly.
	Sample() ([]VMSample, error)
}

// Actuator applies the computed slices (e.g., writes hypervisor knobs).
type Actuator interface {
	Apply(slices map[int]sim.Time) error
}

// Daemon wires a Source and an Actuator to the ATC controller.
type Daemon struct {
	ctl  *core.Controller
	src  Source
	act  Actuator
	last map[int]sim.Time

	periods uint64
}

// New builds a daemon; cfg zero-value panics (use core.DefaultConfig()).
func New(cfg core.Config, src Source, act Actuator) *Daemon {
	if src == nil || act == nil {
		panic("daemon: nil source or actuator")
	}
	return &Daemon{
		ctl:  core.NewController(cfg),
		src:  src,
		act:  act,
		last: make(map[int]sim.Time),
	}
}

// Controller exposes the underlying controller (diagnostics).
func (d *Daemon) Controller() *core.Controller { return d.ctl }

// Periods returns how many control periods have executed.
func (d *Daemon) Periods() uint64 { return d.periods }

// Step executes one control period: sample, observe, decide, actuate.
// It returns io.EOF when the source is exhausted.
func (d *Daemon) Step() error {
	samples, err := d.src.Sample()
	if err != nil {
		return err
	}
	infos := make([]core.VMInfo, 0, len(samples))
	for _, s := range samples {
		inForce, ok := d.last[s.ID]
		if !ok {
			inForce = d.ctl.Config().Default
		}
		d.ctl.Observe(s.ID, s.AvgSpinLatency, inForce)
		infos = append(infos, core.VMInfo{ID: s.ID, Parallel: s.Parallel, AdminSlice: s.AdminSlice})
	}
	slices := d.ctl.NodeSlices(infos)
	for id, sl := range slices {
		d.last[id] = sl
	}
	d.periods++
	return d.act.Apply(slices)
}

// Run executes Step until the source returns io.EOF or a step fails.
func (d *Daemon) Run() error {
	for {
		if err := d.Step(); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
	}
}

// MapActuator records the last applied slices in memory (tests, demo).
type MapActuator struct {
	Last map[int]sim.Time
	// Applies counts Apply calls.
	Applies uint64
}

// Apply implements Actuator.
func (m *MapActuator) Apply(slices map[int]sim.Time) error {
	if m.Last == nil {
		m.Last = make(map[int]sim.Time)
	}
	for id, sl := range slices {
		m.Last[id] = sl
	}
	m.Applies++
	return nil
}

// WriterActuator renders each period's slices as "vm<id> <micros>us"
// lines — the shape a real deployment would translate into hypervisor
// calls (e.g., "xl sched-credit -d <dom> -t <tslice>").
type WriterActuator struct {
	W io.Writer
}

// Apply implements Actuator.
func (w WriterActuator) Apply(slices map[int]sim.Time) error {
	ids := make([]int, 0, len(slices))
	for id := range slices {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if _, err := fmt.Fprintf(w.W, "vm%d %.0fus\n", id, slices[id].Micros()); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w.W, "--")
	return err
}

// SliceSource replays a fixed schedule of periods (tests, demo).
type SliceSource struct {
	Periods [][]VMSample
	i       int
}

// Sample implements Source.
func (s *SliceSource) Sample() ([]VMSample, error) {
	if s.i >= len(s.Periods) {
		return nil, io.EOF
	}
	p := s.Periods[s.i]
	s.i++
	return p, nil
}
