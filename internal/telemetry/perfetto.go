package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"atcsched/internal/sim"
)

// SchedEvent is a neutral rendering of one vmm scheduling trace record,
// decoupled from the vmm package so the exporter can live below it in
// the import graph (vmm imports telemetry, not the other way around).
type SchedEvent struct {
	At   sim.Time
	Kind string // dispatch | preempt | block | wake | slice | swap
	Node int
	PCPU int // -1 when not applicable
	VM   string
	VCPU int // -1 when not applicable
	Arg  sim.Time
}

// traceEvent is one Chrome/Perfetto trace-event JSON object. Timestamps
// and durations are microseconds (the trace-event convention).
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// timelineFile is the top-level trace-event JSON object.
type timelineFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// track identifies one timeline row: a per-node PCPU lane, a per-VM
// spin lane, the rounds lane, or the daemon lane.
type track struct {
	node int
	name string
}

// WriteTimeline renders scheduling events and spans as Chrome/Perfetto
// trace-event JSON (load with ui.perfetto.dev or chrome://tracing).
// Each node becomes a process; PCPUs, per-VM spin lanes, and span
// tracks become threads. Dispatch→preempt/block pairs become complete
// ("X") slices, slice changes and policy swaps become instant ("i")
// markers, and telemetry spans (spin episodes, BSP rounds, controller
// decisions, fault windows) become "X" slices on their own lanes.
// Output is deterministic: one JSON object, stable track numbering.
func WriteTimeline(w io.Writer, events []SchedEvent, snap Snapshot) error {
	var out []traceEvent
	tids := map[track]int{}
	// tid lays out lanes per node: PCPUs first (stable small indices),
	// then named lanes in first-use order — remapped to sorted order at
	// the end for determinism.
	tid := func(t track) int {
		id, ok := tids[t]
		if !ok {
			id = len(tids)
			tids[t] = id
		}
		return id
	}

	// Open dispatch per (node, pcpu): index by a composite key.
	type lane struct{ node, pcpu int }
	open := map[lane]*SchedEvent{}
	closeLane := func(l lane, at sim.Time) {
		d := open[l]
		if d == nil {
			return
		}
		delete(open, l)
		out = append(out, traceEvent{
			Name: fmt.Sprintf("%s/%d", d.VM, d.VCPU),
			Cat:  "sched",
			Ph:   "X",
			TS:   d.At.Micros(),
			Dur:  (at - d.At).Micros(),
			PID:  d.Node,
			TID:  tid(track{d.Node, fmt.Sprintf("pcpu%d", d.PCPU)}),
		})
	}
	var last sim.Time
	for i := range events {
		ev := events[i]
		if ev.At > last {
			last = ev.At
		}
		switch ev.Kind {
		case "dispatch":
			l := lane{ev.Node, ev.PCPU}
			closeLane(l, ev.At) // defensive: a dangling dispatch ends here
			e := ev
			open[l] = &e
		case "preempt", "block":
			closeLane(lane{ev.Node, ev.PCPU}, ev.At)
		case "slice":
			out = append(out, traceEvent{
				Name: fmt.Sprintf("slice %s=%v", ev.VM, ev.Arg),
				Cat:  "control",
				Ph:   "i",
				TS:   ev.At.Micros(),
				PID:  ev.Node,
				TID:  tid(track{ev.Node, "control"}),
				S:    "t",
				Args: map[string]any{"vm": ev.VM, "slice_us": ev.Arg.Micros()},
			})
		case "swap":
			out = append(out, traceEvent{
				Name: "policy swap",
				Cat:  "control",
				Ph:   "i",
				TS:   ev.At.Micros(),
				PID:  ev.Node,
				TID:  tid(track{ev.Node, "control"}),
				S:    "t",
			})
		}
	}
	// Close lanes still open at the last observed instant.
	lanes := make([]lane, 0, len(open))
	for l := range open {
		lanes = append(lanes, l)
	}
	sort.Slice(lanes, func(i, j int) bool {
		if lanes[i].node != lanes[j].node {
			return lanes[i].node < lanes[j].node
		}
		return lanes[i].pcpu < lanes[j].pcpu
	})
	for _, l := range lanes {
		closeLane(l, last)
	}

	for _, sp := range snap.Spans {
		node := sp.Node
		if node < 0 {
			node = -1 // the "cluster" pseudo-process
		}
		args := map[string]any{}
		if sp.Value != 0 {
			args["value_us"] = sp.Value.Micros()
		}
		out = append(out, traceEvent{
			Name: sp.Name,
			Cat:  "span",
			Ph:   "X",
			TS:   sp.Start.Micros(),
			Dur:  (sp.End - sp.Start).Micros(),
			PID:  node,
			TID:  tid(track{node, sp.Name + ":" + sp.Track}),
			Args: args,
		})
		if sp.End > last {
			last = sp.End
		}
	}

	// Remap tids to a canonical order (per node: sorted lane names) and
	// emit process/thread metadata so Perfetto shows readable names.
	ordered := make([]track, 0, len(tids))
	for t := range tids {
		ordered = append(ordered, t)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].node != ordered[j].node {
			return ordered[i].node < ordered[j].node
		}
		return ordered[i].name < ordered[j].name
	})
	remap := make(map[int]int, len(ordered))
	var meta []traceEvent
	for i, t := range ordered {
		remap[tids[t]] = i
		meta = append(meta, traceEvent{
			Name: "thread_name",
			Ph:   "M",
			PID:  t.node,
			TID:  i,
			Args: map[string]any{"name": t.name},
		})
	}
	for i := range out {
		out[i].TID = remap[out[i].TID]
	}
	nodes := map[int]bool{}
	for _, t := range ordered {
		if !nodes[t.node] {
			nodes[t.node] = true
			name := fmt.Sprintf("node%d", t.node)
			if t.node < 0 {
				name = "cluster"
			}
			meta = append(meta, traceEvent{
				Name: "process_name",
				Ph:   "M",
				PID:  t.node,
				TID:  0,
				Args: map[string]any{"name": name},
			})
		}
	}
	// Stable event order: metadata first, then payload sorted by
	// (ts, pid, tid, name) — the merge above interleaves sources.
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].TS != out[j].TS {
			return out[i].TS < out[j].TS
		}
		if out[i].PID != out[j].PID {
			return out[i].PID < out[j].PID
		}
		if out[i].TID != out[j].TID {
			return out[i].TID < out[j].TID
		}
		return out[i].Name < out[j].Name
	})
	file := timelineFile{TraceEvents: append(meta, out...), DisplayTimeUnit: "ms"}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(file)
}
