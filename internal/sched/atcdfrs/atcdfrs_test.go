package atcdfrs_test

import (
	"encoding/json"
	"testing"

	"atcsched/internal/sched/atcdfrs"
	"atcsched/internal/sched/dfrs"
	"atcsched/internal/sched/registry"
	"atcsched/internal/sim"
	"atcsched/internal/vmm"
	"atcsched/internal/vmmtest"
)

// TestSplitPlanes is the hybrid's core contract: a spinning parallel VM
// walks its slice down through ATC while a non-parallel co-tenant gets
// a DFRS fraction and a fractional quantum — on the same node at the
// same time.
func TestSplitPlanes(t *testing.T) {
	opts := atcdfrs.DefaultOptions()
	w := vmmtest.World(1, 1, atcdfrs.Factory(opts))
	node := w.Node(0)
	par, _ := vmmtest.SpinPair(node, opts.DFRS.Credit.TimeSlice)
	job := node.NewVM("job", vmm.ClassNonParallel, 1, 0, 1)
	vmmtest.Loop(job.VCPU(0), vmm.Compute(100*sim.Millisecond))
	w.Start()
	w.RunUntil(5 * sim.Second)
	s := node.Scheduler().(*atcdfrs.Scheduler)
	if got := s.CurrentSlice(par); got >= opts.DFRS.Credit.TimeSlice {
		t.Errorf("parallel slice = %v, want ATC-shortened below %v", got, opts.DFRS.Credit.TimeSlice)
	}
	if _, ok := s.Fraction(par); ok {
		t.Error("parallel VM was drawn into the fraction pool")
	}
	f, ok := s.Fraction(job)
	if !ok {
		t.Fatal("non-parallel VM has no fraction")
	}
	if f < opts.DFRS.MinFraction {
		t.Errorf("job fraction %.3f below floor", f)
	}
	if s.Redistributions() == 0 {
		t.Error("no fraction redistributions happened")
	}
}

// TestFractionsShrinkAroundParallelLoad: the distributable capacity for
// non-parallel fractions excludes what parallel tenants actually burn,
// so a busy parallel VM squeezes the fraction pool.
func TestFractionsShrinkAroundParallelLoad(t *testing.T) {
	opts := atcdfrs.DefaultOptions()
	run := func(parallelBusy bool) float64 {
		w := vmmtest.World(1, 2, atcdfrs.Factory(opts))
		node := w.Node(0)
		par := node.NewVM("par", vmm.ClassParallel, 2, 0, 1)
		if parallelBusy {
			for _, v := range par.VCPUs() {
				vmmtest.Loop(v, vmm.Compute(100*sim.Millisecond))
			}
		}
		job := node.NewVM("job", vmm.ClassNonParallel, 1, 0, 1)
		vmmtest.Loop(job.VCPU(0), vmm.Compute(100*sim.Millisecond))
		w.Start()
		w.RunUntil(3 * sim.Second)
		s := node.Scheduler().(*atcdfrs.Scheduler)
		f, ok := s.Fraction(job)
		if !ok {
			t.Fatal("job has no fraction")
		}
		return f
	}
	quiet, busy := run(false), run(true)
	if busy >= quiet {
		t.Errorf("job fraction %.3f under parallel load, want below the quiet %.3f", busy, quiet)
	}
}

// TestRegistryRoundTrip: hybrid options nest the DFRS options and the
// controller config; partial JSON merges over defaults, invalid
// fractions and controller configs are rejected, and the merge is
// byte-stable.
func TestRegistryRoundTrip(t *testing.T) {
	d, ok := registry.Lookup("ATCDFRS")
	if !ok {
		t.Fatal("ATCDFRS not registered")
	}
	merged, err := d.Options(json.RawMessage(`{"dfrs": {"minFraction": 0.04}, "control": {"alpha": "9ms"}}`))
	if err != nil {
		t.Fatal(err)
	}
	o := merged.(*atcdfrs.Options)
	if o.DFRS.MinFraction != 0.04 {
		t.Errorf("user minFraction lost: %+v", o.DFRS)
	}
	if o.Control.Alpha != 9*sim.Millisecond {
		t.Errorf("user alpha lost: %v", o.Control.Alpha)
	}
	if o.DFRS.Smoothing != dfrs.DefaultOptions().Smoothing || !o.DFRS.Credit.Boost {
		t.Errorf("defaults lost: %+v", o.DFRS)
	}
	if err := registry.Validate("ATCDFRS", json.RawMessage(`{"dfrs": {"smoothing": -1}}`)); err == nil {
		t.Error("negative smoothing accepted")
	}
	if err := registry.Validate("ATCDFRS", json.RawMessage(`{"control": {"alpha": "0.01ms"}}`)); err == nil {
		t.Error("alpha below beta accepted")
	}
	b1, _ := json.Marshal(merged)
	again, err := d.Options(json.RawMessage(b1))
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := json.Marshal(again)
	if string(b1) != string(b2) {
		t.Errorf("round trip unstable:\n%s\n%s", b1, b2)
	}
}

// TestBaseOverridesReachCreditCore: the cross-policy fixed-slice /
// boost / steal overrides must land in the hybrid's shared credit core.
func TestBaseOverridesReachCreditCore(t *testing.T) {
	f, err := registry.Resolve("ATCDFRS", nil, registry.Base{FixedSlice: 4 * sim.Millisecond, DisableSteal: true})
	if err != nil {
		t.Fatal(err)
	}
	w := vmmtest.World(1, 1, f)
	s := w.Node(0).Scheduler().(*atcdfrs.Scheduler)
	if got := s.Options().TimeSlice; got != 4*sim.Millisecond {
		t.Errorf("fixed slice not applied: %v", got)
	}
	if s.Options().Steal {
		t.Error("steal not disabled")
	}
}
