package cluster

import (
	"testing"

	"atcsched/internal/fault"
	"atcsched/internal/sim"
	"atcsched/internal/workload"
)

func faultedConfig(seed uint64) Config {
	cfg := DefaultConfig(2, ATC)
	cfg.Node.PCPUs = 2
	cfg.Node.Dom0VCPUs = 1
	cfg.Seed = seed
	cfg.Faults = &fault.Spec{Windows: []fault.Window{
		{Kind: fault.PCPUSlow, StartSec: 0.1, DurSec: 0.5, Nodes: []int{0}, Severity: 3},
		{Kind: fault.PacketLoss, StartSec: 0, DurSec: 1, Severity: 0.2},
		{Kind: fault.MonitorDrop, StartSec: 0, DurSec: 1, Severity: 0.3},
		{Kind: fault.MonitorNoise, StartSec: 0, DurSec: 1, Severity: 0.2},
	}}
	return cfg
}

// runFaulted drives one faulted scenario to completion and returns the
// plan description plus the injection report.
func runFaulted(t *testing.T, seed uint64) (string, string, uint64) {
	t.Helper()
	s := MustNew(faultedConfig(seed))
	vms := s.VirtualCluster("vc", 2, 2, nil)
	prof := workload.NPB("lu", workload.ClassA)
	prof.Iterations = 5
	run := s.RunParallel(prof, vms, 2, false)
	if !s.Go(120 * sim.Second) {
		t.Fatalf("faulted run did not complete (rounds=%d)", run.Rounds())
	}
	if errs := s.World.Audit(); len(errs) > 0 {
		t.Fatalf("audit under faults: %v", errs[0])
	}
	rep := s.FaultReport()
	return s.FaultPlan().Describe(), rep.String(), rep.PacketsLost
}

// TestFaultPlanDeterministicAcrossRuns pins the plane's determinism
// contract end to end: two identical seeded cluster runs produce
// byte-identical fault schedules and injection reports.
func TestFaultPlanDeterministicAcrossRuns(t *testing.T) {
	d1, r1, lost := runFaulted(t, 11)
	d2, r2, _ := runFaulted(t, 11)
	if d1 != d2 {
		t.Errorf("plan descriptions diverged:\n%s\n%s", d1, d2)
	}
	if r1 != r2 {
		t.Errorf("injection reports diverged:\n%s\n%s", r1, r2)
	}
	if lost == 0 {
		t.Error("20% loss over the whole run injected nothing — hooks not live?")
	}
}

// TestFaultReportVariesWithSeed is the negative control: a different
// seed must give a different injection history (otherwise the "same
// seed, same report" test proves nothing).
func TestFaultReportVariesWithSeed(t *testing.T) {
	_, r1, _ := runFaulted(t, 11)
	_, r2, _ := runFaulted(t, 12)
	if r1 == r2 {
		t.Logf("reports coincide across seeds (possible but unlikely): %s", r1)
	}
}

// TestClusterRejectsBadFaultSpec pins the wiring: an invalid spec fails
// scenario construction instead of being silently ignored.
func TestClusterRejectsBadFaultSpec(t *testing.T) {
	cfg := DefaultConfig(2, CR)
	cfg.Faults = &fault.Spec{Windows: []fault.Window{{Kind: "meteor", DurSec: 1}}}
	if _, err := New(cfg); err == nil {
		t.Error("invalid fault spec accepted")
	}
	// Node scope past the cluster's size fails at Attach.
	cfg = DefaultConfig(2, CR)
	cfg.Faults = &fault.Spec{Windows: []fault.Window{
		{Kind: fault.PCPUSlow, DurSec: 1, Nodes: []int{5}}}}
	if _, err := New(cfg); err == nil {
		t.Error("out-of-range fault node scope accepted")
	}
}

// TestNoFaultsNilPlan pins the no-op path: without a fault block the
// scenario has no plan and a zero report.
func TestNoFaultsNilPlan(t *testing.T) {
	s := MustNew(DefaultConfig(1, CR))
	if s.FaultPlan() != nil {
		t.Error("plan present without a fault spec")
	}
	if s.FaultReport() != (fault.Report{}) {
		t.Error("nonzero report without a fault spec")
	}
}
