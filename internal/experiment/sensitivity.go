package experiment

import (
	"fmt"

	"atcsched/internal/cluster"
	"atcsched/internal/metrics"
	"atcsched/internal/report"
	"atcsched/internal/runner"
	"atcsched/internal/sim"
	"atcsched/internal/vmm"
	"atcsched/internal/workload"
)

// sensGain measures the ATC/CR execution-time gain for one kernel under
// a mutated model configuration — the sensitivity probe.
func sensGain(sc Scale, kernel string, seed uint64,
	mutNode func(*vmm.NodeConfig), mutProf func(*workload.AppProfile)) (float64, error) {
	run := func(a cluster.Approach) (float64, error) {
		cfg := cluster.DefaultConfig(2, a)
		cfg.Seed = seed
		if mutNode != nil {
			mutNode(&cfg.Node)
		}
		s, err := cluster.New(cfg)
		if err != nil {
			return 0, err
		}
		prof := workload.NPB(kernel, workload.ClassB)
		prof.Iterations = iterCount(prof.Iterations, sc.IterScale)
		if mutProf != nil {
			mutProf(&prof)
		}
		var runs []*workload.ParallelRun
		for vc := 0; vc < 4; vc++ {
			vms := s.VirtualCluster(fmt.Sprintf("vc%d", vc), 2, sc.VCPUsPerVM, nil)
			runs = append(runs, s.RunParallel(prof, vms, sc.Rounds, false))
		}
		if !s.Go(sc.Horizon) {
			return 0, fmt.Errorf("sens %s/%s: horizon exceeded", kernel, a)
		}
		var times []float64
		for _, r := range runs {
			times = append(times, r.MeanTime())
		}
		return metrics.Mean(times), nil
	}
	cr, err := run(cluster.CR)
	if err != nil {
		return 0, err
	}
	atcT, err := run(cluster.ATC)
	if err != nil {
		return 0, err
	}
	return cr / atcT, nil
}

func init() {
	register(Experiment{
		ID: "sens",
		Title: "Extension — sensitivity of the ATC/CR gain to model constants " +
			"(how robust is the reproduction to calibration choices?)",
		Run: func(sc Scale, seed uint64) ([]*report.Table, error) {
			t := report.New(
				"ATC/CR execution-time gain for lu.B under perturbed model constants (baseline row first; the qualitative conclusion should survive every row)",
				"Variant", "ATC/CR gain")
			type variant struct {
				name string
				node func(*vmm.NodeConfig)
				prof func(*workload.AppProfile)
			}
			variants := []variant{
				{name: "baseline"},
				{name: "recv-poll 0 (blocking MPI)", prof: func(p *workload.AppProfile) { p.RecvPoll = 0 }},
				{name: "recv-poll 1ms", prof: func(p *workload.AppProfile) { p.RecvPoll = sim.Millisecond }},
				{name: "recv-poll forever", prof: func(p *workload.AppProfile) { p.RecvPoll = -1 }},
				{name: "netback cost x3", node: func(c *vmm.NodeConfig) { c.BackendPacketCost *= 3 }},
				{name: "ctx-switch cost x4", node: func(c *vmm.NodeConfig) { c.CtxSwitchCost *= 4 }},
				{name: "half LLC capacity", node: func(c *vmm.NodeConfig) { c.Cache.Capacity /= 2 }},
				{name: "double wire latency", node: nil, prof: nil}, // handled below
			}
			// Each variant's CR/ATC pair is an independent probe; fan the
			// whole set across the worker pool.
			gains, err := runner.Map(len(variants), func(i int) (float64, error) {
				v := variants[i]
				if v.name == "double wire latency" {
					// Wire latency lives in the net config, not NodeConfig.
					return sensGainNet(sc, "lu", seed)
				}
				return sensGain(sc, "lu", seed, v.node, v.prof)
			})
			if err != nil {
				return nil, err
			}
			for i, v := range variants {
				t.Add(v.name, report.F2(gains[i]))
			}
			t.AddNote("Gains above 1.5 in every row mean the reproduction's headline does not hinge on any single calibration constant.")
			return []*report.Table{t}, nil
		},
	})
}

// sensGainNet is the wire-latency variant of sensGain.
func sensGainNet(sc Scale, kernel string, seed uint64) (float64, error) {
	run := func(a cluster.Approach) (float64, error) {
		cfg := cluster.DefaultConfig(2, a)
		cfg.Seed = seed
		cfg.Net.WireLatency *= 2
		s, err := cluster.New(cfg)
		if err != nil {
			return 0, err
		}
		prof := workload.NPB(kernel, workload.ClassB)
		prof.Iterations = iterCount(prof.Iterations, sc.IterScale)
		var runs []*workload.ParallelRun
		for vc := 0; vc < 4; vc++ {
			vms := s.VirtualCluster(fmt.Sprintf("vc%d", vc), 2, sc.VCPUsPerVM, nil)
			runs = append(runs, s.RunParallel(prof, vms, sc.Rounds, false))
		}
		if !s.Go(sc.Horizon) {
			return 0, fmt.Errorf("sens-net %s/%s: horizon exceeded", kernel, a)
		}
		var times []float64
		for _, r := range runs {
			times = append(times, r.MeanTime())
		}
		return metrics.Mean(times), nil
	}
	cr, err := run(cluster.CR)
	if err != nil {
		return 0, err
	}
	atcT, err := run(cluster.ATC)
	if err != nil {
		return 0, err
	}
	return cr / atcT, nil
}
