package proptest

import (
	"errors"
	"strings"
	"testing"
)

// TestFleetKillRestoreBattery sweeps the fleet kill-restore property
// directly across node counts and (seed-derived) shard counts: every
// mid-blackout kill must restore to a byte-identical post-convergence
// control state. This is the tier-1 entry point for the property; the
// generated sweep additionally hits it on ~15% of scenarios.
func TestFleetKillRestoreBattery(t *testing.T) {
	for _, nodes := range []int{1, 2, 5, 8} {
		for seed := uint64(1); seed <= 4; seed++ {
			spec := Spec{Seed: seed, FleetNodes: nodes}
			if err := checkFleetKillRestore(spec); err != nil {
				t.Errorf("nodes=%d seed=%d: %v", nodes, seed, err)
			}
		}
	}
}

// TestFleetNodesValidated pins the FleetNodes bound and its presence in
// generated specs.
func TestFleetNodesValidated(t *testing.T) {
	spec := Generate(1, Bounded())
	spec.FleetNodes = maxFleetNodes + 1
	if err := spec.Validate(); err == nil || !strings.Contains(err.Error(), "fleetNodes") {
		t.Errorf("Validate(fleetNodes=%d) = %v, want fleetNodes bound error", spec.FleetNodes, err)
	}
	spec.FleetNodes = -1
	if err := spec.Validate(); err == nil {
		t.Error("Validate accepted negative fleetNodes")
	}
	// The generator must produce the dimension on some slice of seeds.
	found := 0
	for seed := uint64(1); seed <= 200; seed++ {
		if s := Generate(seed, Bounded()); s.FleetNodes > 0 {
			found++
			if s.FleetNodes > maxFleetNodes {
				t.Fatalf("seed %d: generated fleetNodes %d beyond bound", seed, s.FleetNodes)
			}
		}
	}
	if found < 10 {
		t.Errorf("fleetNodes generated on %d of 200 seeds, want a real slice (~15%%)", found)
	}
}

// TestShrinkClearsFleetNodes pins the shrinker direction: when the
// failure does not need the fleet property, FleetNodes shrinks away.
func TestShrinkClearsFleetNodes(t *testing.T) {
	spec := Generate(1, Bounded())
	spec.FleetNodes = 8
	min := Shrink(spec, func(s Spec) error {
		// Failure independent of the fleet dimension.
		return errors.New("always fails")
	})
	if min.FleetNodes != 0 {
		t.Errorf("shrunk FleetNodes = %d, want 0", min.FleetNodes)
	}
}
