// Package integration_test drives whole-system scenarios across every
// module and checks global invariants (vmm.World.Audit) mid-run and at
// completion — conservation of CPU time and packets, mailbox/spinlock
// consistency — under each scheduling approach and several stress
// shapes.
package integration_test

import (
	"fmt"
	"testing"

	"atcsched/internal/cluster"
	"atcsched/internal/sim"
	"atcsched/internal/vmm"
	"atcsched/internal/workload"
)

// auditEvery runs the scenario to the horizon, auditing every step ms of
// virtual time and at the end.
func auditEvery(t *testing.T, s *cluster.Scenario, horizon, step sim.Time) {
	t.Helper()
	s.World.Start()
	for now := step; now <= horizon; now += step {
		s.World.RunUntil(now)
		if errs := s.World.Audit(); len(errs) > 0 {
			t.Fatalf("audit at %v: %v (and %d more)", s.World.Eng.Now(), errs[0], len(errs)-1)
		}
		if s.World.Eng.Stopped() {
			break
		}
	}
}

func TestAllApproachesSurviveAudit(t *testing.T) {
	for _, a := range cluster.Approaches() {
		a := a
		t.Run(string(a), func(t *testing.T) {
			cfg := cluster.DefaultConfig(2, a)
			cfg.Node.PCPUs = 4
			cfg.Seed = 17
			s := cluster.MustNew(cfg)
			prof := workload.NPB("cg", workload.ClassA)
			prof.Iterations = 8
			for vc := 0; vc < 3; vc++ {
				s.RunParallel(prof, s.VirtualCluster(fmt.Sprintf("vc%d", vc), 2, 4, nil), 2, true)
			}
			web := s.IndependentVM("web", 0, 2, vmm.ClassNonParallel)
			cli := s.IndependentVM("cli", 1, 2, vmm.ClassNonParallel)
			workload.NewWebJob(cli, 0, web, 0, 15*sim.Millisecond, sim.Millisecond, 3)
			workload.NewDiskJob(web.VCPU(1))
			auditEvery(t, s, 5*sim.Second, 100*sim.Millisecond)
		})
	}
}

func TestHeavyAllToAllConservesPackets(t *testing.T) {
	cfg := cluster.DefaultConfig(4, cluster.ATC)
	cfg.Node.PCPUs = 4
	cfg.Seed = 23
	s := cluster.MustNew(cfg)
	prof := workload.NPB("is", workload.ClassB) // all-to-all, message heavy
	prof.Iterations = 6
	run := s.RunParallel(prof, s.VirtualCluster("vc", 4, 4, nil), 2, false)
	auditEvery(t, s, 60*sim.Second, 500*sim.Millisecond)
	if run.Rounds() < 2 {
		t.Fatalf("rounds = %d", run.Rounds())
	}
	if s.World.Fabric.PacketsSent() == 0 {
		t.Fatal("no traffic")
	}
	// At quiescence everything sent must have been delivered.
	if inf := s.World.Fabric.InFlight(); inf != 0 {
		t.Errorf("in-flight packets at quiescence: %d", inf)
	}
}

func TestExtraKernelsRunEndToEnd(t *testing.T) {
	for _, k := range workload.ExtraKernels() {
		k := k
		t.Run(k, func(t *testing.T) {
			cfg := cluster.DefaultConfig(2, cluster.ATC)
			cfg.Node.PCPUs = 4
			s := cluster.MustNew(cfg)
			prof := workload.NPB(k, workload.ClassA)
			prof.Iterations = 5
			run := s.RunParallel(prof, s.VirtualCluster("vc", 2, 4, nil), 2, false)
			if !s.Go(120 * sim.Second) {
				t.Fatalf("%s did not finish", k)
			}
			if run.MeanTime() <= 0 {
				t.Fatal("no timing")
			}
			s.World.MustAudit()
		})
	}
}

func TestEPIsInsensitiveToApproach(t *testing.T) {
	// ep has no synchronization: CR and ATC must perform within a few
	// percent of each other (control experiment for the whole thesis —
	// ATC's gains come from synchronization, not magic).
	run := func(a cluster.Approach) float64 {
		cfg := cluster.DefaultConfig(2, a)
		cfg.Node.PCPUs = 4
		cfg.Seed = 31
		s := cluster.MustNew(cfg)
		prof := workload.NPB("ep", workload.ClassA)
		prof.Iterations = 6
		var runs []*workload.ParallelRun
		for vc := 0; vc < 2; vc++ {
			runs = append(runs, s.RunParallel(prof, s.VirtualCluster(fmt.Sprintf("vc%d", vc), 2, 4, nil), 2, false))
		}
		if !s.Go(300 * sim.Second) {
			t.Fatal("horizon exceeded")
		}
		var m float64
		for _, r := range runs {
			m += r.MeanTime()
		}
		return m / float64(len(runs))
	}
	cr, atc := run(cluster.CR), run(cluster.ATC)
	ratio := atc / cr
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("ep ATC/CR = %.3f, want ~1 (no-sync control)", ratio)
	}
}

func TestDeterminismAcrossFullStack(t *testing.T) {
	fingerprint := func() string {
		cfg := cluster.DefaultConfig(2, cluster.ATC)
		cfg.Node.PCPUs = 4
		cfg.Seed = 77
		s := cluster.MustNew(cfg)
		prof := workload.NPB("mg", workload.ClassA)
		prof.Iterations = 6
		run := s.RunParallel(prof, s.VirtualCluster("vc", 2, 4, nil), 2, false)
		s.IndependentVM("np", 0, 2, vmm.ClassNonParallel)
		if !s.Go(120 * sim.Second) {
			t.Fatal("horizon exceeded")
		}
		return fmt.Sprintf("%v|%d|%d|%d",
			run.Times(), s.World.Eng.Executed(),
			s.World.Fabric.PacketsSent(), s.World.Node(0).CtxSwitches())
	}
	a, b := fingerprint(), fingerprint()
	if a != b {
		t.Errorf("full-stack run not deterministic:\n%s\n%s", a, b)
	}
}

func TestTracerUnderFullLoad(t *testing.T) {
	cfg := cluster.DefaultConfig(2, cluster.CS)
	cfg.Node.PCPUs = 4
	s := cluster.MustNew(cfg)
	tr := vmm.NewTracer(50000)
	s.World.SetTracer(tr)
	prof := workload.NPB("lu", workload.ClassA)
	prof.Iterations = 6
	s.RunParallel(prof, s.VirtualCluster("vc", 2, 4, nil), 2, false)
	if !s.Go(120 * sim.Second) {
		t.Fatal("horizon exceeded")
	}
	if tr.Len() == 0 {
		t.Fatal("no trace records under load")
	}
	recs := tr.Records()
	for i := 1; i < len(recs); i++ {
		if recs[i].At < recs[i-1].At {
			t.Fatal("trace out of order")
		}
	}
	s.World.MustAudit()
}

func TestHorizonExceededReportsFalse(t *testing.T) {
	// Failure injection: an impossible target within a tiny horizon must
	// be reported, not hang or panic.
	cfg := cluster.DefaultConfig(1, cluster.CR)
	cfg.Node.PCPUs = 1
	s := cluster.MustNew(cfg)
	prof := workload.NPB("bt", workload.ClassC)
	s.RunParallel(prof, s.VirtualCluster("vc", 1, 2, nil), 100, false)
	if s.Go(50 * sim.Millisecond) {
		t.Fatal("impossible target reported as completed")
	}
	s.World.MustAudit()
}

func TestSingleVMClusterNoNetwork(t *testing.T) {
	// A 1-VM "cluster" must run entirely through locks, no fabric use.
	cfg := cluster.DefaultConfig(1, cluster.ATC)
	cfg.Node.PCPUs = 2
	s := cluster.MustNew(cfg)
	prof := workload.NPB("lu", workload.ClassA)
	prof.Iterations = 6
	run := s.RunParallel(prof, s.VirtualCluster("solo", 1, 4, nil), 2, false)
	if !s.Go(120 * sim.Second) {
		t.Fatal("horizon exceeded")
	}
	if run.Rounds() != 2 {
		t.Fatalf("rounds = %d", run.Rounds())
	}
	if s.World.Fabric.PacketsSent() != 0 {
		t.Errorf("single-VM cluster sent %d packets", s.World.Fabric.PacketsSent())
	}
	s.World.MustAudit()
}

func TestManySmallVMsChurn(t *testing.T) {
	// Stress: 16 single-VCPU VMs ping-ponging on 2 PCPUs with 1ms
	// slices; audit at fine granularity.
	cfg := cluster.DefaultConfig(2, cluster.CR)
	cfg.Node.PCPUs = 2
	cfg.Sched.FixedSlice = sim.Millisecond
	s := cluster.MustNew(cfg)
	var jobs []*workload.PingJob
	for i := 0; i < 8; i++ {
		a := s.IndependentVM(fmt.Sprintf("a%d", i), 0, 1, vmm.ClassNonParallel)
		b := s.IndependentVM(fmt.Sprintf("b%d", i), 1, 1, vmm.ClassNonParallel)
		jobs = append(jobs, workload.NewPingJob(a, 0, b, 0, sim.Millisecond))
	}
	auditEvery(t, s, 2*sim.Second, 50*sim.Millisecond)
	for i, j := range jobs {
		if j.Probes() < 100 {
			t.Errorf("pair %d probes = %d", i, j.Probes())
		}
	}
}
