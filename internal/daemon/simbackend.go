package daemon

import (
	"fmt"
	"sync"

	"atcsched/internal/fault"
	"atcsched/internal/netmodel"
	"atcsched/internal/sched/credit"
	"atcsched/internal/sched/extslice"
	"atcsched/internal/sched/registry"
	"atcsched/internal/sim"
	"atcsched/internal/telemetry"
	"atcsched/internal/vmm"
	"atcsched/internal/workload"

	// Link every policy so PolicySwitch kinds resolve by name.
	_ "atcsched/internal/sched/all"
)

// SimBackend closes the control loop against a live simulated cluster:
// the cluster runs under an externally-controlled credit scheduler
// (internal/sched/extslice); Sample advances the simulation one
// scheduling period and reads each guest VM's spinlock latency; Apply
// writes the daemon's slice decisions back into the schedulers. This is
// the in-repo stand-in for a dom0 deployment where atcd adjusts real
// hypervisor knobs — the same Daemon code drives both.
type SimBackend struct {
	World  *vmm.World
	period sim.Time
	// MaxPeriods bounds the run; Sample returns io.EOF... the daemon
	// loop stops via error from Sample — we use errEOF below.
	MaxPeriods int
	periods    int
	runs       []*workload.ParallelRun
	switches   []PolicySwitch
	plan       *fault.Plan
	hollow     bool

	// actMu serializes fault-plan actuation draws: fleet shards apply
	// concurrently (the world itself is quiescent at that point — Apply
	// runs between Step barriers), but the plan's rng stream is one
	// shared cursor.
	actMu sync.Mutex
}

// SimBackendConfig sizes the embedded scenario.
type SimBackendConfig struct {
	// Nodes and VCPUsPerVM size the cluster (defaults 2 and 8).
	Nodes      int
	VCPUsPerVM int
	// Clusters is the number of identical virtual clusters (default 4).
	Clusters int
	// Kernel/Class pick the application (defaults lu, B).
	Kernel string
	Class  workload.Class
	// MaxPeriods bounds the control loop (default 400 periods = 12 s).
	MaxPeriods int
	// Seed drives the workloads.
	Seed uint64
	// Switches schedules live policy replacements during the run. A node
	// switched away from EXT stops accepting the daemon's slices (Apply
	// skips it) until a later switch brings EXT back.
	Switches []PolicySwitch
	// Faults, when non-nil, attaches a deterministic fault-injection
	// plan (internal/fault) to the embedded cluster: stragglers, packet
	// loss, monitor faults, and actuation failures the daemon's
	// hardened loop must ride out.
	Faults *fault.Spec
	// Telemetry, when non-nil, attaches a telemetry plane to the
	// embedded world before it starts, so a live atcd run exposes
	// per-node spin-latency and slice series over HTTP.
	Telemetry *telemetry.Plane
	// Hollow shrinks each node to kubemark proportions (two PCPUs,
	// single-VCPU dom0, one single-VCPU VM per node running a light
	// ring-exchange kernel) so a thousand-node fleet stays buildable:
	// the fleet harness measures control-plane throughput, not
	// scheduler policy. Clusters defaults to 1 and VCPUsPerVM is forced
	// to 1 in this mode.
	Hollow bool
}

// PolicySwitch flips a node's scheduling policy at a control period.
type PolicySwitch struct {
	// AtPeriod is the control period (1-based) before which the switch is
	// requested; the node applies it at its next period boundary.
	AtPeriod int
	// Node is the target node index, or -1 for every node.
	Node int
	// Kind names the replacement policy (registry defaults are used).
	Kind string
}

// NewSimBackend builds the cluster and returns the backend, which
// implements both Source and Actuator.
func NewSimBackend(cfg SimBackendConfig) (*SimBackend, error) {
	if cfg.Nodes == 0 {
		cfg.Nodes = 2
	}
	if cfg.VCPUsPerVM == 0 {
		cfg.VCPUsPerVM = 8
	}
	if cfg.Clusters == 0 {
		cfg.Clusters = 4
		if cfg.Hollow {
			cfg.Clusters = 1
		}
	}
	if cfg.Kernel == "" {
		cfg.Kernel = "lu"
	}
	if cfg.MaxPeriods == 0 {
		cfg.MaxPeriods = 400
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	ncfg := vmm.DefaultNodeConfig()
	if cfg.Hollow {
		ncfg.PCPUs = 2
		ncfg.Dom0VCPUs = 1
		cfg.VCPUsPerVM = 1
	}
	w, err := vmm.NewWorld(cfg.Nodes, ncfg, netmodel.DefaultConfig(), extslice.Factory(credit.DefaultOptions()))
	if err != nil {
		return nil, err
	}
	for _, sw := range cfg.Switches {
		if sw.AtPeriod < 1 {
			return nil, fmt.Errorf("sim backend: switch period %d must be >= 1", sw.AtPeriod)
		}
		if sw.Node < -1 || sw.Node >= cfg.Nodes {
			return nil, fmt.Errorf("sim backend: switch node %d out of range", sw.Node)
		}
		if err := registry.Validate(sw.Kind, nil); err != nil {
			return nil, fmt.Errorf("sim backend: %w", err)
		}
	}
	b := &SimBackend{World: w, period: ncfg.SchedPeriod, MaxPeriods: cfg.MaxPeriods, switches: cfg.Switches, hollow: cfg.Hollow}
	if cfg.Telemetry != nil {
		w.SetTelemetry(cfg.Telemetry)
	}
	if cfg.Faults != nil {
		plan, err := fault.Compile(cfg.Faults, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("sim backend: %w", err)
		}
		if err := plan.Attach(w); err != nil {
			return nil, fmt.Errorf("sim backend: %w", err)
		}
		b.plan = plan
	}
	prof := workload.NPB(cfg.Kernel, cfg.Class)
	if cfg.Hollow {
		prof = hollowFleetProfile()
	}
	for vc := 0; vc < cfg.Clusters; vc++ {
		var vms []*vmm.VM
		for i := 0; i < cfg.Nodes; i++ {
			vms = append(vms, w.Node(i).NewVM(fmt.Sprintf("vc%d-%d", vc, i), vmm.ClassParallel, cfg.VCPUsPerVM, 0, 1))
		}
		app := workload.NewBSPApp(prof, vms, cfg.Seed+uint64(vc))
		run := workload.NewParallelRun(app, 1, true, nil)
		run.Install()
		b.runs = append(b.runs, run)
	}
	w.Start()
	return b, nil
}

// Runs exposes the embedded applications' runners (for measurements).
func (b *SimBackend) Runs() []*workload.ParallelRun { return b.runs }

// Periods returns the control periods executed so far.
func (b *SimBackend) Periods() int { return b.periods }

// errDone signals a clean end of the bounded run.
type errDone struct{}

func (errDone) Error() string { return "sim backend: period budget exhausted" }

// IsDone reports whether err is the backend's clean-termination error.
func IsDone(err error) bool {
	_, ok := err.(errDone)
	return ok
}

// advance runs the cluster one scheduling period forward (shared by the
// single-node Sample and the fleet SampleFleet paths).
func (b *SimBackend) advance() error {
	if b.periods >= b.MaxPeriods {
		return errDone{}
	}
	b.periods++
	if err := b.applySwitches(); err != nil {
		return err
	}
	b.World.RunUntil(b.World.Eng.Now() + b.period)
	return nil
}

// Sample implements Source: advance one scheduling period and report
// each guest VM's average spinlock latency.
func (b *SimBackend) Sample() ([]VMSample, error) {
	if err := b.advance(); err != nil {
		return nil, err
	}
	var out []VMSample
	for _, vm := range b.World.GuestVMs() {
		s, ok := b.sampleVM(vm)
		if !ok {
			continue // monitoring dropout: this VM reports nothing this period
		}
		out = append(out, s)
	}
	return out, nil
}

// sampleVM reads one VM's period sample.
func (b *SimBackend) sampleVM(vm *vmm.VM) (VMSample, bool) {
	avg, seq, ok := vm.SampleSpinPeriod()
	if !ok {
		return VMSample{}, false
	}
	return VMSample{
		ID:             vm.ID(),
		AvgSpinLatency: avg,
		Parallel:       vm.Class() == vmm.ClassParallel,
		AdminSlice:     vm.AdminSlice,
		Seq:            seq,
	}, true
}

// FaultReport returns the attached fault plan's injection tallies (zero
// when no faults were configured).
func (b *SimBackend) FaultReport() fault.Report { return b.plan.Report() }

// FinalizeTelemetry publishes end-of-run totals from the embedded world
// and fault plan into p (no-op when p is nil).
func (b *SimBackend) FinalizeTelemetry(p *telemetry.Plane) {
	if p == nil {
		return
	}
	b.World.FinalizeTelemetry()
	b.plan.PublishTelemetry(p.Global())
}

// applySwitches requests the policy switches due at the current control
// period; each lands on its node's next scheduling-period boundary.
func (b *SimBackend) applySwitches() error {
	for _, sw := range b.switches {
		if sw.AtPeriod != b.periods {
			continue
		}
		f, err := registry.Resolve(sw.Kind, nil, registry.Base{})
		if err != nil {
			return fmt.Errorf("sim backend: %w", err)
		}
		for _, n := range b.World.Nodes() {
			if sw.Node >= 0 && n.ID() != sw.Node {
				continue
			}
			if err := n.SwapScheduler(f); err != nil {
				return fmt.Errorf("sim backend: %w", err)
			}
		}
	}
	return nil
}

// Apply implements Actuator: write the slices into every node still
// running the externally-controlled scheduler. Nodes switched to a
// self-adapting policy (via PolicySwitch) own their slices and are
// skipped.
func (b *SimBackend) Apply(slices map[int]sim.Time) error {
	if err := b.failActuation(); err != nil {
		return err
	}
	for _, n := range b.World.Nodes() {
		sched, ok := n.Scheduler().(*extslice.Scheduler)
		if !ok {
			continue
		}
		for _, vm := range n.VMs() {
			if sl, ok := slices[vm.ID()]; ok {
				sched.Set(vm.ID(), sl)
			}
		}
	}
	return nil
}
