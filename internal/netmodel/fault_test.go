package netmodel

import (
	"testing"

	"atcsched/internal/sim"
)

// TestConvergingSendersSerializeAtReceiver pins the receiver-pacing fix:
// N senders converging on one NIC drain at line rate, not N× it. Before
// the fix the receive side modeled only the pipelined arrival, so three
// concurrent 1 ms packets all landed at 1 ms.
func TestConvergingSendersSerializeAtReceiver(t *testing.T) {
	eng := sim.New()
	cfg := Config{BytesPerSec: 125e6, WireLatency: 0, LocalLatency: 0}
	f := New(eng, 4, cfg)
	var at [3]sim.Time
	for i := 0; i < 3; i++ {
		i := i
		f.Send(i, 3, 125000, func() { at[i] = eng.Now() })
	}
	eng.Run()
	for i, want := range []sim.Time{sim.Millisecond, 2 * sim.Millisecond, 3 * sim.Millisecond} {
		if at[i] != want {
			t.Errorf("converging delivery %d at %v, want %v", i, at[i], want)
		}
	}
}

// TestIdleReceiverSeesPipelinedArrival pins the other half of the model:
// a single flow still lands WireLatency after the last byte leaves the
// sender — receiver serialization must not add latency when the NIC is
// idle.
func TestIdleReceiverSeesPipelinedArrival(t *testing.T) {
	eng := sim.New()
	cfg := Config{BytesPerSec: 125e6, WireLatency: 50 * sim.Microsecond, LocalLatency: 0}
	f := New(eng, 2, cfg)
	var at sim.Time
	f.Send(0, 1, 125000, func() { at = eng.Now() })
	eng.Run()
	if want := sim.Millisecond + 50*sim.Microsecond; at != want {
		t.Errorf("delivery at %v, want %v", at, want)
	}
}

// TestLossRetransmitsAndConserves pins the loss model: a discarded
// attempt is retried after the timeout, the packet arrives late rather
// than never, and the counters record both faces.
func TestLossRetransmitsAndConserves(t *testing.T) {
	eng := sim.New()
	cfg := Config{BytesPerSec: 125e6, WireLatency: 0, LocalLatency: 0} // default 1 ms RTO
	f := New(eng, 2, cfg)
	attempts := 0
	f.SetLoss(func(src, dst int, now sim.Time) bool {
		attempts++
		return attempts == 1 // lose exactly the first attempt
	})
	var at sim.Time
	f.Send(0, 1, 125000, func() { at = eng.Now() })
	eng.Run()
	// Attempt 1 serializes to 1 ms and is lost; the retry fires at 2 ms
	// and serializes to 3 ms.
	if want := 3 * sim.Millisecond; at != want {
		t.Errorf("lossy delivery at %v, want %v", at, want)
	}
	if f.PacketsLost() != 1 || f.Retransmits() != 1 {
		t.Errorf("lost = %d retx = %d, want 1/1", f.PacketsLost(), f.Retransmits())
	}
	if f.PacketsSent() != 1 || f.PacketsDelivered() != 1 || f.InFlight() != 0 {
		t.Errorf("conservation: sent=%d delivered=%d inflight=%d",
			f.PacketsSent(), f.PacketsDelivered(), f.InFlight())
	}
}

// TestBandwidthHookStretchesSerialization pins the degradation hook: at
// half rate a 1 ms packet takes 2 ms on the sender's NIC.
func TestBandwidthHookStretchesSerialization(t *testing.T) {
	eng := sim.New()
	cfg := Config{BytesPerSec: 125e6, WireLatency: 0, LocalLatency: 0}
	f := New(eng, 2, cfg)
	f.SetBandwidth(func(node int, now sim.Time) float64 { return 0.5 })
	var at sim.Time
	f.Send(0, 1, 125000, func() { at = eng.Now() })
	eng.Run()
	if want := 2 * sim.Millisecond; at != want {
		t.Errorf("degraded delivery at %v, want %v", at, want)
	}
	// Out-of-range fractions mean full rate.
	f.SetBandwidth(func(node int, now sim.Time) float64 { return 7 })
	eng2 := sim.New()
	f2 := New(eng2, 2, cfg)
	f2.SetBandwidth(func(node int, now sim.Time) float64 { return 7 })
	f2.Send(0, 1, 125000, func() { at = eng2.Now() })
	eng2.Run()
	if want := sim.Millisecond; at != want {
		t.Errorf("full-rate delivery at %v, want %v", at, want)
	}
}

// TestLocalLoopbackPacing pins the opt-in local pacing: with
// LocalBytesPerSec set, back-to-back node-local sends serialize on the
// loopback; without it they land together, but the bytes are tallied
// either way (the bypass is visible, not silent).
func TestLocalLoopbackPacing(t *testing.T) {
	eng := sim.New()
	cfg := Config{BytesPerSec: 125e6, LocalBytesPerSec: 125e6,
		LocalLatency: 5 * sim.Microsecond}
	f := New(eng, 2, cfg)
	var first, second sim.Time
	f.Send(0, 0, 125000, func() { first = eng.Now() })
	f.Send(0, 0, 125000, func() { second = eng.Now() })
	eng.Run()
	ll := cfg.LocalLatency
	if want := sim.Millisecond + ll; first != want {
		t.Errorf("first paced local delivery at %v, want %v", first, want)
	}
	if want := 2*sim.Millisecond + ll; second != want {
		t.Errorf("second paced local delivery at %v, want serialized %v", second, want)
	}
	if f.LocalBytes() != 250000 || f.WireBytes() != 0 {
		t.Errorf("localBytes = %d wireBytes = %d, want 250000/0", f.LocalBytes(), f.WireBytes())
	}

	// Historical behaviour when unset: no pacing, bytes still counted.
	eng2 := sim.New()
	f2 := New(eng2, 2, DefaultConfig())
	var a, b sim.Time
	f2.Send(0, 0, 125000, func() { a = eng2.Now() })
	f2.Send(0, 0, 125000, func() { b = eng2.Now() })
	eng2.Run()
	if ll := DefaultConfig().LocalLatency; a != ll || b != ll {
		t.Errorf("unpaced local deliveries at %v/%v, want both %v", a, b, ll)
	}
	if f2.LocalBytes() != 250000 {
		t.Errorf("unpaced localBytes = %d, want 250000", f2.LocalBytes())
	}
}
