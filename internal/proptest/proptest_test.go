package proptest_test

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"atcsched/internal/cluster"
	"atcsched/internal/proptest"
)

// Sweep gears. Reproduce one failing scenario with
//
//	go test ./internal/proptest -run TestScenarioSweep -proptest.seed=<N>
//
// and explore bigger worlds with -proptest.long (slower; not part of
// tier-1).
var (
	sweepN    = flag.Int("proptest.n", 100, "number of generated scenarios in the sweep")
	sweepSeed = flag.Uint64("proptest.seed", 0, "run exactly this generator seed instead of the sweep")
	longMode  = flag.Bool("proptest.long", false, "use the deep generator limits (bigger worlds)")
	specFile  = flag.String("proptest.spec", "", "run the battery on a Spec JSON file (e.g. a shrinker report)")
)

// sweepBase offsets the sweep's seed range so seed 0 stays free as the
// -proptest.seed sentinel.
const sweepBase = 1

func limits() proptest.Limits {
	if *longMode {
		return proptest.Deep()
	}
	return proptest.Bounded()
}

// runBattery checks one spec and, on failure, shrinks it and fails the
// test with a one-command repro line.
func runBattery(t *testing.T, spec proptest.Spec) {
	t.Helper()
	approaches := cluster.ExtendedApproaches()
	err := proptest.CheckSpec(spec, approaches)
	if err == nil {
		return
	}
	min := proptest.Shrink(spec, func(s proptest.Spec) error {
		return proptest.CheckSpec(s, approaches)
	})
	mj, jerr := json.MarshalIndent(min, "", "  ")
	if jerr != nil {
		mj = []byte(jerr.Error())
	}
	t.Fatalf("property violated: %v\nreproduce:\n  go test ./internal/proptest -run TestScenarioSweep -proptest.seed=%d\nminimized failing spec (save to a file and run with -proptest.spec):\n%s",
		err, spec.Seed, mj)
}

// TestScenarioSweep is the bounded deterministic gear: ~100 generated
// scenarios, each run under all seven approaches plus a determinism
// replay.
func TestScenarioSweep(t *testing.T) {
	var seeds []uint64
	if *sweepSeed != 0 {
		seeds = []uint64{*sweepSeed}
	} else {
		for i := 0; i < *sweepN; i++ {
			seeds = append(seeds, sweepBase+uint64(i))
		}
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			runBattery(t, proptest.Generate(seed, limits()))
		})
	}
}

// TestSpecFile replays the battery on a Spec JSON file — the workflow
// for re-running a shrinker report.
func TestSpecFile(t *testing.T) {
	if *specFile == "" {
		t.Skip("no -proptest.spec file given")
	}
	data, err := os.ReadFile(*specFile)
	if err != nil {
		t.Fatal(err)
	}
	var spec proptest.Spec
	if err := json.Unmarshal(data, &spec); err != nil {
		t.Fatalf("parsing %s: %v", *specFile, err)
	}
	runBattery(t, spec)
}

// TestGenerateDeterministic pins that the generator itself is a pure
// function of the seed.
func TestGenerateDeterministic(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		a := proptest.Generate(seed, proptest.Bounded())
		b := proptest.Generate(seed, proptest.Bounded())
		aj, _ := json.Marshal(a)
		bj, _ := json.Marshal(b)
		if string(aj) != string(bj) {
			t.Fatalf("seed %d: generator not deterministic:\n%s\n%s", seed, aj, bj)
		}
	}
}

// TestGeneratedSpecsValidate pins that both gears only emit Specs inside
// the Validate hard bounds (the contract FuzzWorld relies on).
func TestGeneratedSpecsValidate(t *testing.T) {
	for seed := uint64(1); seed <= 200; seed++ {
		for _, lim := range []proptest.Limits{proptest.Bounded(), proptest.Deep()} {
			if err := proptest.Generate(seed, lim).Validate(); err != nil {
				t.Fatalf("seed %d: generated invalid spec: %v", seed, err)
			}
		}
	}
}

// TestBatteryDetectsLivenessFailure is the negative control: a horizon
// far too small for the workload must trip the liveness property, so a
// green sweep means the checks actually ran.
func TestBatteryDetectsLivenessFailure(t *testing.T) {
	spec := proptest.Generate(1, proptest.Bounded())
	spec.HorizonSec = 0.000001
	err := proptest.CheckSpec(spec, []cluster.Approach{cluster.CR})
	if err == nil {
		t.Fatal("battery passed a spec that cannot complete")
	}
}

// TestShrinkReducesFailingSpec pins the shrinker contract: the minimized
// spec still fails the same predicate and is no larger than the input.
func TestShrinkReducesFailingSpec(t *testing.T) {
	spec := proptest.Generate(3, proptest.Bounded())
	spec.HorizonSec = 0.000001
	pred := func(s proptest.Spec) error {
		return proptest.CheckSpec(s, []cluster.Approach{cluster.CR})
	}
	if pred(spec) == nil {
		t.Fatal("control spec unexpectedly passes")
	}
	min := proptest.Shrink(spec, pred)
	if pred(min) == nil {
		t.Fatal("shrunk spec no longer fails the predicate")
	}
	if size(min) > size(spec) {
		t.Fatalf("shrink grew the spec: %d -> %d", size(spec), size(min))
	}
}

// size is a rough Spec magnitude for the shrinker test.
func size(s proptest.Spec) int {
	n := s.Nodes + s.PCPUs + len(s.Jobs)
	for _, c := range s.Clusters {
		n += c.VMs + c.VCPUs + c.Rounds + c.Iterations
	}
	return n
}

// TestValidateRejectsOutOfBounds pins the fuzz safety net.
func TestValidateRejectsOutOfBounds(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*proptest.Spec)
	}{
		{"zero nodes", func(s *proptest.Spec) { s.Nodes = 0 }},
		{"huge pcpus", func(s *proptest.Spec) { s.PCPUs = 1 << 20 }},
		{"no clusters", func(s *proptest.Spec) { s.Clusters = nil }},
		{"bad kernel", func(s *proptest.Spec) { s.Clusters[0].Kernel = "nope" }},
		{"bad class", func(s *proptest.Spec) { s.Clusters[0].Class = "Z" }},
		{"huge vcpus", func(s *proptest.Spec) { s.Clusters[0].VCPUs = 1000 }},
		{"zero rounds", func(s *proptest.Spec) { s.Clusters[0].Rounds = 0 }},
		{"huge iterations", func(s *proptest.Spec) { s.Clusters[0].Iterations = 1 << 30 }},
		{"bad job type", func(s *proptest.Spec) { s.Jobs = []proptest.JobSpec{{Type: "warp"}} }},
		{"job node out of range", func(s *proptest.Spec) { s.Jobs = []proptest.JobSpec{{Type: "disk", Node: 99}} }},
		{"zero horizon", func(s *proptest.Spec) { s.HorizonSec = 0 }},
		{"huge horizon", func(s *proptest.Spec) { s.HorizonSec = 1e18 }},
		{"negative slice", func(s *proptest.Spec) { s.FixedSliceMs = -1 }},
		{"too many node kinds", func(s *proptest.Spec) { s.NodeKinds = make([]string, s.Nodes+1) }},
		{"unknown node kind", func(s *proptest.Spec) { s.NodeKinds = []string{"WARP"} }},
		{"unknown swap kind", func(s *proptest.Spec) { s.SwapKind = "WARP"; s.SwapAtSec = 1 }},
		{"swap time without kind", func(s *proptest.Spec) { s.SwapAtSec = 1 }},
		{"swap time zero", func(s *proptest.Spec) { s.SwapKind = "ATC" }},
		{"swap past horizon", func(s *proptest.Spec) { s.SwapKind = "ATC"; s.SwapAtSec = s.HorizonSec + 1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := proptest.Generate(1, proptest.Bounded())
			tc.mut(&spec)
			if err := spec.Validate(); err == nil {
				t.Fatalf("Validate accepted %+v", spec)
			}
		})
	}
}
