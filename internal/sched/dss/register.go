package dss

import (
	"fmt"

	"atcsched/internal/sched/registry"
	"atcsched/internal/vmm"
)

func init() {
	registry.Register(registry.Descriptor{
		Kind:        "DSS",
		Order:       4,
		Description: "dynamic switching-frequency scaling: per-VM slices tiered by smoothed I/O event rate",
		Defaults:    func() any { o := DefaultOptions(); return &o },
		Build: func(opts any, base registry.Base) (vmm.SchedulerFactory, error) {
			o := *opts.(*Options)
			if err := o.Credit.ApplyOverrides(base.FixedSlice, base.DisableBoost, base.DisableSteal); err != nil {
				return nil, err
			}
			if o.Smoothing <= 0 || o.Smoothing > 1 {
				return nil, fmt.Errorf("dss: smoothing %v out of (0,1]", o.Smoothing)
			}
			for i, tier := range o.Tiers {
				if tier.Slice <= 0 {
					return nil, fmt.Errorf("dss: tier %d slice must be positive, got %v", i, tier.Slice)
				}
				if i > 0 && tier.MinRate >= o.Tiers[i-1].MinRate {
					return nil, fmt.Errorf("dss: tiers must be sorted by descending MinRate")
				}
			}
			return Factory(o), nil
		},
	})
}
