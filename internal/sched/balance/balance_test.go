package balance_test

import (
	"testing"

	"atcsched/internal/sched/balance"
	"atcsched/internal/sched/credit"
	"atcsched/internal/sim"
	"atcsched/internal/vmm"
	"atcsched/internal/vmmtest"
)

func TestSiblingsPlacedOnDistinctQueues(t *testing.T) {
	w := vmmtest.World(1, 4, balance.Factory(balance.DefaultOptions()))
	node := w.Node(0)
	vmA := node.NewVM("a", vmm.ClassParallel, 4, 0, 1)
	for _, v := range vmA.VCPUs() {
		vmmtest.Loop(v, vmm.Compute(10*sim.Millisecond))
	}
	// Load the node so queues are non-trivial.
	for i := 0; i < 2; i++ {
		hog := node.NewVM("hog", vmm.ClassNonParallel, 2, 0, 1)
		for _, v := range hog.VCPUs() {
			vmmtest.Loop(v, vmm.Compute(10*sim.Millisecond))
		}
	}
	w.Start()
	s := node.Scheduler().(*balance.Scheduler)
	// Sample: at no instant may a runqueue hold two runnable siblings of
	// the same VM (running-on-that-PCPU counts too).
	for ti := sim.Time(0); ti < sim.Second; ti += 777 * sim.Microsecond {
		w.RunUntil(ti)
		for q := range node.PCPUs() {
			count := 0
			if cur := node.PCPUs()[q].Current(); cur != nil && cur.VM() == vmA {
				count++
			}
			for _, v := range vmA.VCPUs() {
				d := s.Data(v)
				if d.Queued && d.Queue == q && v.State() == vmm.StateRunnable {
					count++
				}
			}
			if count > 1 {
				t.Fatalf("t=%v: queue %d holds %d siblings", ti, q, count)
			}
		}
	}
}

func TestFallbackWhenMoreVCPUsThanPCPUs(t *testing.T) {
	// A VM with more VCPUs than PCPUs cannot satisfy the constraint; BS
	// must still schedule everything (fall back to least-loaded).
	w := vmmtest.World(1, 2, balance.Factory(balance.DefaultOptions()))
	node := w.Node(0)
	vmA := node.NewVM("wide", vmm.ClassParallel, 4, 0, 1)
	done := 0
	for _, v := range vmA.VCPUs() {
		v.SetProcess(&vmmtest.SeqProc{Actions: []vmm.Action{
			vmm.Compute(5 * sim.Millisecond),
		}}, func(*vmm.VCPU) vmm.Process { done++; return nil })
	}
	w.Start()
	w.RunUntil(sim.Second)
	if done != 4 {
		t.Errorf("completed = %d/4 VCPUs", done)
	}
}

func TestBalanceRaisesCoRunProbability(t *testing.T) {
	// BS's claim is probabilistic co-scheduling: with siblings forced
	// onto distinct queues, the two VCPUs of the parallel VM run at the
	// same time more often than under plain credit on an overloaded node.
	coRun := func(factory vmm.SchedulerFactory) float64 {
		w := vmmtest.World(1, 2, factory)
		node := w.Node(0)
		vmA := node.NewVM("par", vmm.ClassParallel, 2, 0, 1)
		for _, v := range vmA.VCPUs() {
			vmmtest.Loop(v, vmm.Compute(10*sim.Millisecond))
		}
		for i := 0; i < 4; i++ {
			hog := node.NewVM("hog", vmm.ClassNonParallel, 1, 0, 1)
			vmmtest.Loop(hog.VCPU(0), vmm.Compute(sim.Second))
		}
		w.Start()
		samples, both := 0, 0
		for ti := sim.Time(0); ti < 3*sim.Second; ti += 997 * sim.Microsecond {
			w.RunUntil(ti)
			running := 0
			for _, v := range vmA.VCPUs() {
				if v.State() == vmm.StateRunning {
					running++
				}
			}
			if running >= 1 {
				samples++
				if running == 2 {
					both++
				}
			}
		}
		if samples == 0 {
			t.Fatal("parallel VM never ran")
		}
		return float64(both) / float64(samples)
	}
	bsOpts := balance.DefaultOptions()
	bsOpts.Credit.Steal = false
	bs := coRun(balance.Factory(bsOpts))
	// Adversarial baseline: both siblings pinned to runqueue 0, no
	// stealing — the serialization BS exists to prevent.
	colocated := coRun(func(n *vmm.Node) vmm.Scheduler {
		opts := credit.DefaultOptions()
		opts.Steal = false
		s := credit.New(n, opts)
		s.PlaceQueue = func(v *vmm.VCPU, r vmm.EnqueueReason) int {
			if v.VM().Name() == "par" {
				return 0
			}
			return v.ID() % len(n.PCPUs())
		}
		return s
	})
	if bs <= colocated {
		t.Errorf("co-run fraction BS=%.3f <= colocated=%.3f; balance placement not helping", bs, colocated)
	}
}

func TestName(t *testing.T) {
	w := vmmtest.World(1, 1, balance.Factory(balance.DefaultOptions()))
	if got := w.Node(0).Scheduler().Name(); got != "BS" {
		t.Errorf("Name = %q", got)
	}
}
