// Package vmm is the virtualization substrate: physical nodes with PCPUs,
// guest VMs with VCPUs, a pluggable VMM scheduler interface, guest
// spinlocks that exhibit lock-holder preemption, and the Xen-style
// split-driver I/O path (event channels, I/O rings, a dom0 backend per
// node) over the physical fabric of package netmodel.
//
// The package deliberately mirrors the mechanisms the paper reasons
// about:
//
//   - A VCPU runs on a PCPU until its scheduler-assigned time slice
//     expires, it blocks, or it is preempted. Context switches cost real
//     (simulated) time and cool the incoming VCPU's cache footprint
//     (package cachemodel).
//   - A guest spinlock held by a preempted VCPU makes waiters spin,
//     burning their slices — the paper's Figure 3. Spin latency is
//     recorded per VM and sampled per 30 ms scheduling period, which is
//     exactly the signal ATC consumes.
//   - A packet from VM1 to VM2 follows Figure 4's eleven steps: the guest
//     must be scheduled to post to the I/O ring, the sender's dom0 must be
//     scheduled to run netback, the wire transfers it, the receiver's dom0
//     must be scheduled, and finally the destination VCPU must be
//     scheduled to consume it. All four scheduling waits are real waits in
//     this simulator.
//
// Workloads drive VCPUs through the Process interface, yielding Actions
// (compute, lock acquire/release, send/recv, disk, sleep). Package
// workload provides the application library; package cluster assembles
// whole experiments.
package vmm
