package experiment

import (
	"fmt"
	"strconv"

	"atcsched/internal/cluster"
	"atcsched/internal/metrics"
	"atcsched/internal/paperdata"
	"atcsched/internal/report"
	"atcsched/internal/runner"
	"atcsched/internal/sim"
	"atcsched/internal/validate"
	"atcsched/internal/workload"
)

func init() {
	register(Experiment{
		ID: "score",
		Title: "Reproduction scorecard — measured results checked against every " +
			"number the paper states in its text",
		Run: runScore,
	})
}

// runScore executes the key measurements and validates them against
// internal/paperdata.
func runScore(sc Scale, seed uint64) ([]*report.Table, error) {
	var card validate.Scorecard

	// --- Figure 10 ordering and gain band (lu at the largest step).
	nodes := sc.NodeSteps[len(sc.NodeSteps)-1]
	measured := map[string]float64{"CR": 1}
	approaches := []cluster.Approach{cluster.CR, cluster.BS, cluster.CS, cluster.DSS, cluster.ATC}
	execs, err := runner.Map(len(approaches), func(i int) (float64, error) {
		return typeAExec(sc, approaches[i], "lu", nodes, seed)
	})
	if err != nil {
		return nil, err
	}
	cr := execs[0]
	for i, a := range approaches[1:] {
		measured[string(a)] = execs[i+1] / cr
	}
	paperRank := map[string]float64{}
	for i, name := range paperdata.Fig10.Ordering {
		paperRank[name] = float64(i + 1)
	}
	rho, err := validate.SpearmanRank(paperRank, measured)
	if err != nil {
		return nil, err
	}
	card.Add("fig10 lu approach ordering",
		fmt.Sprintf("ATC < CS < DSS < BS <= CR"),
		fmt.Sprintf("Spearman ρ = %.2f (BS=%.2f CS=%.2f DSS=%.2f ATC=%.2f)",
			rho, measured["BS"], measured["CS"], measured["DSS"], measured["ATC"]),
		rho >= 0.6)

	gain := 1 / measured["ATC"]
	card.Add("fig10 ATC gain over CR",
		fmt.Sprintf("%.1f-%.0fx", paperdata.Fig10.GainMin, paperdata.Fig10.GainMax),
		fmt.Sprintf("%.1fx", gain),
		validate.InBand(gain, paperdata.Fig10.GainMin, paperdata.Fig10.GainMax, 3))

	// --- Figure 1 direction: CS/CR grows with cluster size.
	small := sc.NodeSteps[0]
	crS, err := typeAExec(sc, cluster.CR, "lu", small, seed)
	if err != nil {
		return nil, err
	}
	csS, err := typeAExec(sc, cluster.CS, "lu", small, seed)
	if err != nil {
		return nil, err
	}
	csL := measured["CS"] // at the largest step, computed above
	card.Add("fig1 CS scalability",
		fmt.Sprintf("CS/CR grows with VC size (%.2f → %.2f)", paperdata.Fig1.CSAt2VMs, paperdata.Fig1.CSAt32VMs),
		fmt.Sprintf("%.3f at %d nodes → %.3f at %d nodes", csS/crS, small, csL, nodes),
		csL > csS/crS*0.8) // direction with 20% tolerance for run noise

	// --- Figure 2 directions.
	f2cr, err := runFig2Approach(sc, cluster.CR, seed)
	if err != nil {
		return nil, err
	}
	f2cs, err := runFig2Approach(sc, cluster.CS, seed)
	if err != nil {
		return nil, err
	}
	pingRatio := f2cs.ping / f2cr.ping
	card.Add("fig2 ping under CS",
		fmt.Sprintf("RTT %.2fx CR", paperdata.Fig2.PingRTTRatio),
		fmt.Sprintf("%.2fx", pingRatio),
		validate.SameDirection(paperdata.Fig2.PingRTTRatio, pingRatio))
	sphinxRatio := f2cs.sphinx / f2cr.sphinx
	card.Add("fig2 sphinx3 under CS",
		fmt.Sprintf("time %.2fx CR", paperdata.Fig2.Sphinx3Ratio),
		fmt.Sprintf("%.2fx", sphinxRatio),
		validate.SameDirection(paperdata.Fig2.Sphinx3Ratio, sphinxRatio))
	bonnieRatio := f2cs.bonnie / f2cr.bonnie
	card.Add("fig2 bonnie++ under CS",
		"unaffected",
		fmt.Sprintf("%.2fx", bonnieRatio),
		bonnieRatio > 0.8 && bonnieRatio < 1.2)

	// --- Figure 5: spin-latency/exec correlation for lu.
	pts, err := runner.Map(len(sc.SliceSweep), func(i int) (sweepPoint, error) {
		return runSweepPoint(sc, "lu", workload.ClassB, sc.SliceSweep[i], seed)
	})
	if err != nil {
		return nil, err
	}
	var sweepExecs, spins []float64
	for _, pt := range pts {
		sweepExecs = append(sweepExecs, pt.exec)
		spins = append(spins, pt.spin.Seconds())
	}
	r, err := metrics.Pearson(spins, sweepExecs)
	if err != nil {
		return nil, err
	}
	card.Add("fig5 spin/exec correlation (lu)",
		fmt.Sprintf("Pearson > %.1f", paperdata.Fig5.MinPearson),
		fmt.Sprintf("%.3f", r),
		r > paperdata.Fig5.MinPearson)
	sweepGain := sweepExecs[0] / metrics.Min(sweepExecs)
	card.Add("fig5 slice-sweep improvement (lu)",
		fmt.Sprintf("up to ~%.0fx", paperdata.Fig5.MaxGain),
		fmt.Sprintf("%.1fx", sweepGain),
		sweepGain >= 2)

	// --- §III-B: the Euclidean optimizer picks a sub-millisecond slice.
	_, perApp, err := runFig8(sc, seed)
	if err != nil {
		return nil, err
	}
	best, _, err := optimizeFromPerApp(perApp)
	if err != nil {
		return nil, err
	}
	card.Add("§III-B minimum-slice threshold",
		fmt.Sprintf("%.1fms", paperdata.Euclid.BestMS),
		best.String(),
		best >= 100*sim.Microsecond && best <= 500*sim.Microsecond)

	// --- Figure 13: web under CS, bonnie flat, via the shared mixed run.
	mixed, err := mixedNonparallel(sc, seed)
	if err != nil {
		return nil, err
	}
	webCS, ok := cellFloat(mixed.ioApps, 0, 3) // row 0 = web, col 3 = CS
	if !ok {
		return nil, fmt.Errorf("score: cannot parse web/CS cell")
	}
	card.Add("fig13 web server under CS",
		fmt.Sprintf("~%.2f of CR", paperdata.Fig13.WebUnderCS),
		fmt.Sprintf("%.3f", webCS),
		validate.InBand(webCS, paperdata.Fig13.WebUnderCS, paperdata.Fig13.WebUnderCS, 2))
	bonnieFlat := true
	var worst float64 = 1
	for col := 2; col < len(mixed.ioApps.Headers); col++ {
		v, ok := cellFloat(mixed.ioApps, 1, col)
		if !ok {
			continue
		}
		if v < 0.85 || v > 1.15 {
			bonnieFlat = false
		}
		if absf(v-1) > absf(worst-1) {
			worst = v
		}
	}
	card.Add("fig13 bonnie++ flat across approaches",
		"≈ CR everywhere",
		fmt.Sprintf("worst deviation %.3f", worst),
		bonnieFlat)

	// Render.
	t := report.New(
		fmt.Sprintf("Reproduction scorecard: %d/%d paper claims reproduced at scale %q",
			card.Passed(), len(card.Checks), sc.Name),
		"Check", "Paper", "Measured", "Verdict")
	for _, c := range card.Checks {
		verdict := "PASS"
		if !c.Pass {
			verdict = "DIVERGES"
		}
		t.Add(c.Name, c.Paper, c.Measured, verdict)
	}
	t.AddNote("Known divergences and their causes are documented in EXPERIMENTS.md.")
	return []*report.Table{t}, nil
}

// optimizeFromPerApp adapts core.OptimizeThreshold without re-importing
// it here (avoids an import cycle through the euclid experiment).
func optimizeFromPerApp(perApp map[string]map[sim.Time]float64) (sim.Time, float64, error) {
	var best sim.Time
	bestD := -1.0
	// Collect candidates from the first app.
	for app := range perApp {
		for cand := range perApp[app] {
			// D over all apps for this candidate vs per-app minima.
			var d float64
			valid := true
			for a2 := range perApp {
				p, ok := perApp[a2][cand]
				if !ok {
					valid = false
					break
				}
				min := p
				for _, v := range perApp[a2] {
					if v < min {
						min = v
					}
				}
				d += (p - min) * (p - min)
			}
			if !valid {
				continue
			}
			if bestD < 0 || d < bestD {
				bestD = d
				best = cand
			}
		}
		break
	}
	if bestD < 0 {
		return 0, 0, fmt.Errorf("score: no candidates")
	}
	return best, bestD, nil
}

func cellFloat(t *report.Table, row, col int) (float64, bool) {
	if row >= len(t.Rows) || col >= len(t.Rows[row]) {
		return 0, false
	}
	v, err := strconv.ParseFloat(t.Rows[row][col], 64)
	return v, err == nil
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
