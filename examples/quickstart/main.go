// Quickstart: build a two-node simulated cluster, run the same parallel
// kernel under Xen's Credit scheduler and under ATC, and print the
// speedup — the paper's headline effect in ~50 lines.
package main

import (
	"fmt"
	"log"

	"atcsched"
	"atcsched/internal/sim"
)

func main() {
	exec := func(kind atcsched.Approach) float64 {
		cfg := atcsched.DefaultScenarioConfig(2, kind)
		cfg.Seed = 42
		s, err := atcsched.NewScenario(cfg)
		if err != nil {
			log.Fatal(err)
		}
		// Four identical virtual clusters, each one lu.B instance across
		// two 8-VCPU VMs (one per node) — 4x VCPU over-commitment.
		prof := atcsched.NPBProfile("lu", "B")
		prof.Iterations = 12
		var runs []interface{ MeanTime() float64 }
		for vc := 0; vc < 4; vc++ {
			vms := s.VirtualCluster(fmt.Sprintf("vc%d", vc), 2, 8, nil)
			runs = append(runs, s.RunParallel(prof, vms, 2, false))
		}
		if !s.Go(1200 * sim.Second) {
			log.Fatalf("%s: did not finish in the virtual-time budget", kind)
		}
		var mean float64
		for _, r := range runs {
			mean += r.MeanTime()
		}
		return mean / float64(len(runs))
	}

	cr := exec(atcsched.CR)
	atc := exec(atcsched.ATC)
	fmt.Printf("lu.B on 4 over-committed virtual clusters:\n")
	fmt.Printf("  Credit (CR): %.3fs per run\n", cr)
	fmt.Printf("  ATC:         %.3fs per run\n", atc)
	fmt.Printf("  speedup:     %.1fx (the paper reports 1.5-10x)\n", cr/atc)
}
