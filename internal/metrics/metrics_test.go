package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestWelfordBasics(t *testing.T) {
	var w Welford
	if w.N() != 0 || w.Mean() != 0 || w.Variance() != 0 {
		t.Fatal("zero Welford not zero")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Errorf("N = %d", w.N())
	}
	if !almostEqual(w.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", w.Mean())
	}
	// population variance is 4; sample variance = 32/7.
	if !almostEqual(w.Variance(), 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v, want %v", w.Variance(), 32.0/7.0)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", w.Min(), w.Max())
	}
	if !almostEqual(w.Sum(), 40, 1e-9) {
		t.Errorf("Sum = %v", w.Sum())
	}
	w.Reset()
	if w.N() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestWelfordMergeMatchesSequential(t *testing.T) {
	f := func(a, b []float64) bool {
		var all, wa, wb Welford
		for _, x := range a {
			clean := math.Mod(x, 1000)
			if math.IsNaN(clean) {
				clean = 0
			}
			all.Add(clean)
			wa.Add(clean)
		}
		for _, x := range b {
			clean := math.Mod(x, 1000)
			if math.IsNaN(clean) {
				clean = 0
			}
			all.Add(clean)
			wb.Add(clean)
		}
		wa.Merge(&wb)
		if wa.N() != all.N() {
			return false
		}
		if wa.N() == 0 {
			return true
		}
		return almostEqual(wa.Mean(), all.Mean(), 1e-6) &&
			almostEqual(wa.Variance(), all.Variance(), 1e-4) &&
			wa.Min() == all.Min() && wa.Max() == all.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1) // under
	h.Add(11) // over
	if h.Total() != 12 {
		t.Errorf("Total = %d", h.Total())
	}
	for i := 0; i < h.NumBuckets(); i++ {
		if h.Bucket(i) != 1 {
			t.Errorf("bucket %d = %d, want 1", i, h.Bucket(i))
		}
	}
	med := h.Quantile(0.5)
	if med < 3.5 || med > 6.5 {
		t.Errorf("median = %v", med)
	}
	if h.Quantile(0) != 0 {
		t.Errorf("q0 = %v", h.Quantile(0))
	}
	if q := h.Quantile(1); q != 10 {
		t.Errorf("q1 = %v", q)
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid bounds did not panic")
		}
	}()
	NewHistogram(5, 5, 10)
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram(0, 100, 4)
	for _, v := range []float64{10, 20, 30} {
		h.Add(v)
	}
	if !almostEqual(h.Mean(), 20, 1e-12) {
		t.Errorf("Mean = %v", h.Mean())
	}
}

func TestPearsonPerfect(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	yPos := []float64{2, 4, 6, 8, 10}
	yNeg := []float64{10, 8, 6, 4, 2}
	if r, err := Pearson(x, yPos); err != nil || !almostEqual(r, 1, 1e-12) {
		t.Errorf("Pearson pos = %v, %v", r, err)
	}
	if r, err := Pearson(x, yNeg); err != nil || !almostEqual(r, -1, 1e-12) {
		t.Errorf("Pearson neg = %v, %v", r, err)
	}
}

func TestPearsonKnownValue(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6}
	y := []float64{2, 1, 4, 3, 7, 5}
	r, err := Pearson(x, y)
	if err != nil {
		t.Fatal(err)
	}
	// Hand-computed: covariance 3.0, sx^2 = 3.5, sy^2 = 4.6667 → r ≈ 0.792.
	if !almostEqual(r, 0.7917946548886297, 1e-9) {
		t.Errorf("r = %v, want ~0.79179", r)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Pearson([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); err == nil {
		t.Error("constant series accepted")
	}
}

func TestPearsonBoundedProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 4 {
			return true
		}
		x := make([]float64, 0, len(raw))
		y := make([]float64, 0, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = float64(i)
			}
			v = math.Mod(v, 100)
			x = append(x, v+float64(i)*0.001)
			y = append(y, math.Mod(v*3, 50)+float64(i%7))
		}
		r, err := Pearson(x, y)
		if err != nil {
			return true
		}
		return r >= -1.0000001 && r <= 1.0000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEuclideanPaperValues(t *testing.T) {
	// Sanity: identical vectors are distance 0; a single 0.018 delta gives
	// the paper's winning metric value.
	o := []float64{0.2, 0.3, 0.4}
	if d, err := Euclidean(o, o); err != nil || d != 0 {
		t.Errorf("self distance = %v, %v", d, err)
	}
	p := []float64{0.2 + 0.018, 0.3, 0.4}
	d, err := Euclidean(o, p)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(d, 0.018, 1e-12) {
		t.Errorf("d = %v", d)
	}
	if _, err := Euclidean([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestNormalize(t *testing.T) {
	out := Normalize([]float64{2, 4, 6}, 2)
	want := []float64{1, 2, 3}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] = %v", i, out[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("zero base did not panic")
		}
	}()
	Normalize([]float64{1}, 0)
}

func TestMeanMedianMinMax(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if Mean(xs) != 3 {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if Median(xs) != 3 {
		t.Errorf("Median = %v", Median(xs))
	}
	if Median([]float64{1, 2, 3, 4}) != 2.5 {
		t.Error("even median wrong")
	}
	if Min(xs) != 1 || Max(xs) != 5 {
		t.Error("Min/Max wrong")
	}
	if ArgMin(xs) != 1 {
		t.Errorf("ArgMin = %d", ArgMin(xs))
	}
	if Mean(nil) != 0 || Median(nil) != 0 {
		t.Error("empty Mean/Median not 0")
	}
	// Median must not reorder its input.
	if xs[0] != 5 {
		t.Error("Median mutated input")
	}
}

func TestMinMaxPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"Min":    func() { Min(nil) },
		"Max":    func() { Max(nil) },
		"ArgMin": func() { ArgMin(nil) },
	} {
		fn := fn
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s(nil) did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestQuantilePanics(t *testing.T) {
	h := NewHistogram(0, 1, 2)
	defer func() {
		if recover() == nil {
			t.Error("Quantile(2) did not panic")
		}
	}()
	h.Quantile(2)
}

func TestJain(t *testing.T) {
	if got := Jain([]float64{3, 3, 3, 3}); !almostEqual(got, 1, 1e-12) {
		t.Errorf("equal shares: %v, want 1", got)
	}
	if got := Jain([]float64{10, 0, 0, 0}); !almostEqual(got, 0.25, 1e-12) {
		t.Errorf("one hog of four: %v, want 0.25", got)
	}
	// Known value: (1+2+3)^2 / (3 * (1+4+9)) = 36/42.
	if got := Jain([]float64{1, 2, 3}); !almostEqual(got, 36.0/42.0, 1e-12) {
		t.Errorf("1,2,3: %v, want %v", got, 36.0/42.0)
	}
	if got := Jain(nil); got != 1 {
		t.Errorf("empty: %v, want 1", got)
	}
	if got := Jain([]float64{0, 0}); got != 1 {
		t.Errorf("all-zero: %v, want 1", got)
	}
}
