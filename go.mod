module atcsched

go 1.24
