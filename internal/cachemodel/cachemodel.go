// Package cachemodel models the last-level cache of a physical CPU well
// enough to reproduce the paper's Figure 8: below a per-application
// inflection point (~0.2–0.3 ms) shorter time slices stop helping because
// every context switch re-cools the incoming VCPU's working set and the
// refill cost (extra LLC misses, slower execution while cold) cancels the
// spin-latency win.
//
// The model is occupancy-based: each client (a VCPU) owns a working set;
// the cache tracks how many bytes of each client's set are resident.
// While a client's resident bytes are below its target it executes at a
// reduced "cold rate" and refills at the memory-bandwidth rate; bytes it
// brings in evict other clients' bytes proportionally (an LRU
// approximation). Misses are counted per client as refilled bytes divided
// by the line size, mirroring what Xenoprof LLC-miss sampling reports.
package cachemodel

import (
	"fmt"

	"atcsched/internal/sim"
)

// Config parameterizes a Cache.
type Config struct {
	// Capacity is the LLC capacity in bytes available to one PCPU.
	Capacity int64
	// RefillBytesPerSec is the rate at which a cold working set refills
	// (memory bandwidth seen by one core).
	RefillBytesPerSec float64
	// LineSize is the cache line size in bytes, for miss accounting.
	LineSize int64
}

// DefaultConfig models one core's share of a Xeon E5620-era LLC: 3 MiB,
// ~4 GiB/s per-core refill bandwidth, 64-byte lines.
func DefaultConfig() Config {
	return Config{
		Capacity:          3 << 20,
		RefillBytesPerSec: 4 << 30,
		LineSize:          64,
	}
}

// Cache models one PCPU's view of the LLC.
type Cache struct {
	cfg     Config
	clients []*Client
	// resident sums all clients' resident bytes; kept <= cfg.Capacity.
	resident int64
	misses   uint64
	// evictCursor rotates victim selection so eviction is O(victims)
	// instead of O(clients) per insert.
	evictCursor int
}

// Client is one VCPU's footprint in a Cache. Create via NewClient.
type Client struct {
	cache *Cache
	// footprint is the client's working-set size in bytes.
	footprint int64
	// coldRate is the relative execution speed while the working set is
	// cold, in (0, 1]. Cache-insensitive work uses 1.
	coldRate float64
	// residentBytes of the working set currently in cache.
	residentBytes int64
	misses        uint64
}

// New returns an empty Cache.
func New(cfg Config) *Cache {
	if cfg.Capacity <= 0 || cfg.RefillBytesPerSec <= 0 || cfg.LineSize <= 0 {
		panic(fmt.Sprintf("cachemodel: invalid config %+v", cfg))
	}
	return &Cache{cfg: cfg}
}

// NewClient registers a workload with the given working-set size and cold
// execution rate and returns its handle.
func (c *Cache) NewClient(footprint int64, coldRate float64) *Client {
	if footprint < 0 {
		panic("cachemodel: negative footprint")
	}
	if coldRate <= 0 || coldRate > 1 {
		panic("cachemodel: coldRate must be in (0,1]")
	}
	cl := &Client{cache: c, footprint: footprint, coldRate: coldRate}
	c.clients = append(c.clients, cl)
	return cl
}

// target is the resident size at which the client runs warm.
func (cl *Client) target() int64 {
	if cl.footprint < cl.cache.cfg.Capacity {
		return cl.footprint
	}
	return cl.cache.cfg.Capacity
}

// Resident returns the client's resident bytes.
func (cl *Client) Resident() int64 { return cl.residentBytes }

// Warmth returns resident/target in [0,1] (1 for a zero-footprint client).
func (cl *Client) Warmth() float64 {
	t := cl.target()
	if t == 0 {
		return 1
	}
	return float64(cl.residentBytes) / float64(t)
}

// Misses returns the client's accumulated LLC misses.
func (cl *Client) Misses() uint64 { return cl.misses }

// Misses returns the cache-wide accumulated LLC misses.
func (c *Cache) Misses() uint64 { return c.misses }

// warmupTime returns how long the client must run before its set is warm.
func (cl *Client) warmupTime() sim.Time {
	cold := cl.target() - cl.residentBytes
	if cold <= 0 {
		return 0
	}
	return sim.Time(float64(cold) / cl.cache.cfg.RefillBytesPerSec * float64(sim.Second))
}

// TimeFor returns the CPU time the client needs to accomplish `work`
// units of warm-speed computation, accounting for the current cold phase.
// It does not mutate state.
func (c *Cache) TimeFor(cl *Client, work sim.Time) sim.Time {
	if work <= 0 {
		return 0
	}
	warm := cl.warmupTime()
	if warm == 0 {
		return work
	}
	workDuringWarm := sim.Time(float64(warm) * cl.coldRate)
	if work <= workDuringWarm {
		return sim.Time(float64(work) / cl.coldRate)
	}
	return warm + (work - workDuringWarm)
}

// Advance runs the client for dt of CPU time: it refills the working set,
// evicts other clients proportionally, counts misses, and returns the
// warm-equivalent work accomplished. Advance is the inverse of TimeFor:
// Advance(cl, TimeFor(cl, w)) == w (up to rounding).
func (c *Cache) Advance(cl *Client, dt sim.Time) sim.Time {
	if dt <= 0 {
		return 0
	}
	warm := cl.warmupTime()
	var work sim.Time
	coldDt := dt
	if coldDt > warm {
		coldDt = warm
	}
	if coldDt > 0 {
		loaded := int64(float64(coldDt) / float64(sim.Second) * c.cfg.RefillBytesPerSec)
		cold := cl.target() - cl.residentBytes
		if loaded > cold {
			loaded = cold
		}
		c.insert(cl, loaded)
		work += sim.Time(float64(coldDt) * cl.coldRate)
	}
	if dt > warm {
		work += dt - warm
	}
	return work
}

// insert grants the client `bytes` of residency, evicting others
// proportionally when the cache is full and counting the refill as
// misses.
func (c *Cache) insert(cl *Client, bytes int64) {
	if bytes <= 0 {
		return
	}
	m := uint64(bytes / c.cfg.LineSize)
	cl.misses += m
	c.misses += m
	cl.residentBytes += bytes
	c.resident += bytes
	over := c.resident - c.cfg.Capacity
	if over <= 0 {
		return
	}
	// Evict from other clients in rotating order (an LRU-ish victim
	// rotation, O(victims) per insert); if that's not enough (one client
	// fills the cache), trim the inserting client too.
	n := len(c.clients)
	for scanned := 0; over > 0 && scanned < n; scanned++ {
		o := c.clients[c.evictCursor%n]
		c.evictCursor++
		if o == cl || o.residentBytes == 0 {
			continue
		}
		take := over
		if take > o.residentBytes {
			take = o.residentBytes
		}
		o.residentBytes -= take
		c.resident -= take
		over -= take
	}
	if c.resident > c.cfg.Capacity {
		trim := c.resident - c.cfg.Capacity
		if trim > cl.residentBytes {
			trim = cl.residentBytes
		}
		cl.residentBytes -= trim
		c.resident -= trim
	}
}

// Flush evicts the client's entire resident set (e.g., VM migration).
func (c *Cache) Flush(cl *Client) {
	c.resident -= cl.residentBytes
	cl.residentBytes = 0
}
