package runner

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapOrderAndCompleteness(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		got, err := MapN(workers, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(0, func(i int) (int, error) { return 0, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
	if _, err := Map(-1, func(i int) (int, error) { return 0, nil }); err == nil {
		t.Fatal("negative n accepted")
	}
}

func TestMapLowestIndexErrorWins(t *testing.T) {
	errA := errors.New("cell 3")
	errB := errors.New("cell 7")
	for _, workers := range []int{1, 4} {
		_, err := MapN(workers, 10, func(i int) (int, error) {
			switch i {
			case 3:
				return 0, errA
			case 7:
				return 0, errB
			}
			return i, nil
		})
		if err != errA {
			t.Errorf("workers=%d: err = %v, want cell 3's", workers, err)
		}
	}
}

func TestMapPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic swallowed")
		}
	}()
	MapN(4, 8, func(i int) (int, error) {
		if i == 5 {
			panic("boom")
		}
		return i, nil
	})
}

func TestGridShape(t *testing.T) {
	got, err := Grid(3, 4, func(r, c int) (string, error) {
		return fmt.Sprintf("%d/%d", r, c), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || len(got[0]) != 4 {
		t.Fatalf("shape %dx%d", len(got), len(got[0]))
	}
	for r := range got {
		for c := range got[r] {
			if got[r][c] != fmt.Sprintf("%d/%d", r, c) {
				t.Fatalf("got[%d][%d] = %q", r, c, got[r][c])
			}
		}
	}
}

func TestConcurrencyBounded(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	_, err := MapN(workers, 50, func(i int) (int, error) {
		n := inFlight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		defer inFlight.Add(-1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak.Load() > workers {
		t.Errorf("peak concurrency %d > %d workers", peak.Load(), workers)
	}
}

func TestSeedDeterministicAndDistinct(t *testing.T) {
	a := Seed(1, 0, 0)
	if a != Seed(1, 0, 0) {
		t.Error("Seed not deterministic")
	}
	seen := map[uint64]bool{a: true}
	for _, coords := range [][]int{{0, 1}, {1, 0}, {1, 1}, {2}, {0}, {0, 0, 0}} {
		s := Seed(1, coords...)
		if seen[s] {
			t.Errorf("Seed collision at %v", coords)
		}
		seen[s] = true
	}
	if Seed(1) == Seed(2) {
		t.Error("base seed ignored")
	}
}

func TestDefaultWorkers(t *testing.T) {
	old := int(defaultWorkers.Load())
	defer SetDefaultWorkers(old)
	SetDefaultWorkers(5)
	if DefaultWorkers() != 5 {
		t.Errorf("DefaultWorkers = %d", DefaultWorkers())
	}
	SetDefaultWorkers(0)
	if DefaultWorkers() < 1 {
		t.Errorf("unset DefaultWorkers = %d", DefaultWorkers())
	}
}

func TestCellsCounts(t *testing.T) {
	before := Cells()
	if _, err := MapN(2, 9, func(i int) (int, error) { return i, nil }); err != nil {
		t.Fatal(err)
	}
	if got := Cells() - before; got != 9 {
		t.Errorf("cells counted = %d, want 9", got)
	}
}
