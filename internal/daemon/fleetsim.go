package daemon

import (
	"fmt"
	"sort"

	"atcsched/internal/sched/extslice"
	"atcsched/internal/sim"
	"atcsched/internal/workload"
)

// This file adapts SimBackend to the fleet control plane: the same
// embedded cluster, but sampled as per-node batches and actuated per
// node, so one Fleet supervises every simulated node the way one atcd
// would supervise a rack. SimBackend therefore implements FleetSource
// and FleetActuator alongside the single-node Source and Actuator.

// hollowFleetProfile is the per-node workload in Hollow mode: short
// compute, one ring message per iteration, no lock traffic — the same
// kubemark shape as the scale experiment, chosen so thousand-node
// fleets measure the control plane rather than the guest kernels.
func hollowFleetProfile() workload.AppProfile {
	return workload.AppProfile{
		Name:           "hollow-ring",
		ComputePerIter: 200 * sim.Microsecond,
		Pattern:        workload.PatternRing,
		MsgSize:        4 << 10,
		Iterations:     50,
		Footprint:      4 << 20,
		ColdRate:       0.01,
	}
}

// SampleFleet implements FleetSource: advance one scheduling period and
// report each node's VM samples as one batch, sorted by node ID. While
// a daemon-crash fault window is open the control plane is dark — no
// batches are produced (the monitors keep accumulating, so the first
// post-blackout sample covers the whole gap) and the period is tallied
// in the fault report.
func (b *SimBackend) SampleFleet() ([]NodeBatch, error) {
	if err := b.advance(); err != nil {
		return nil, err
	}
	if b.plan.DaemonDown(b.World.Eng.Now()) {
		b.plan.CountDarkPeriod()
		return nil, nil
	}
	byNode := make(map[int][]VMSample)
	for _, vm := range b.World.GuestVMs() {
		s, ok := b.sampleVM(vm)
		if !ok {
			continue
		}
		n := vm.Node().ID()
		byNode[n] = append(byNode[n], s)
	}
	nodes := make([]int, 0, len(byNode))
	for n := range byNode {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	out := make([]NodeBatch, 0, len(nodes))
	for _, n := range nodes {
		out = append(out, NodeBatch{Node: n, Samples: byNode[n]})
	}
	return out, nil
}

// failActuation runs one fault-plan actuation draw under the backend's
// lock (fleet shards apply concurrently; the rng cursor is shared).
func (b *SimBackend) failActuation() error {
	b.actMu.Lock()
	defer b.actMu.Unlock()
	return b.plan.FailActuation(b.World.Eng.Now())
}

// ApplyNode implements FleetActuator: write one node's slices into its
// externally-controlled scheduler. Nodes switched to a self-adapting
// policy own their slices and are skipped, exactly like Apply.
func (b *SimBackend) ApplyNode(node int, slices map[int]sim.Time) error {
	if err := b.failActuation(); err != nil {
		return err
	}
	if node < 0 || node >= len(b.World.Nodes()) {
		return fmt.Errorf("sim backend: actuation for unknown node %d", node)
	}
	n := b.World.Node(node)
	sched, ok := n.Scheduler().(*extslice.Scheduler)
	if !ok {
		return nil
	}
	for _, vm := range n.VMs() {
		if sl, ok := slices[vm.ID()]; ok {
			sched.Set(vm.ID(), sl)
		}
	}
	return nil
}

// NodePolicies returns each node's current scheduler policy name,
// indexed by node ID — the fleet table's policy column.
func (b *SimBackend) NodePolicies() []string {
	nodes := b.World.Nodes()
	out := make([]string, len(nodes))
	for _, n := range nodes {
		out[n.ID()] = n.Scheduler().Name()
	}
	return out
}

// Hollow reports whether the backend was built in hollow-node mode.
func (b *SimBackend) Hollow() bool { return b.hollow }

// Now exposes the embedded world's virtual clock (telemetry axis).
func (b *SimBackend) Now() sim.Time { return b.World.Eng.Now() }

var (
	_ FleetSource   = (*SimBackend)(nil)
	_ FleetActuator = (*SimBackend)(nil)
)
