package vmm

import (
	"fmt"

	"atcsched/internal/cachemodel"
	"atcsched/internal/diskmodel"
	"atcsched/internal/sim"
)

// NodeConfig parameterizes a physical node.
type NodeConfig struct {
	// PCPUs is the number of physical cores.
	PCPUs int
	// CtxSwitchCost is the fixed cost of switching a PCPU to a different
	// VCPU (register/VMCS swap, TLB effects not covered by the cache
	// model).
	CtxSwitchCost sim.Time
	// TickInterval is the credit-burning tick (Xen: 10 ms).
	TickInterval sim.Time
	// SchedPeriod is the accounting/adaptation period (Xen: 30 ms) — the
	// granularity at which ATC recomputes slices.
	SchedPeriod sim.Time
	// Cache parameterizes each PCPU's LLC model.
	Cache cachemodel.Config
	// Disk parameterizes the node-local disk.
	Disk diskmodel.Config
	// SendCPUCost is the guest-side cost of posting one packet (I/O ring
	// copy + event-channel hypercall).
	SendCPUCost sim.Time
	// RecvCPUCost is the guest-side cost of consuming one packet.
	RecvCPUCost sim.Time
	// IOSubmitCost is the guest-side cost of issuing a disk request.
	IOSubmitCost sim.Time
	// BackendPacketCost is dom0's netback per-packet processing cost.
	BackendPacketCost sim.Time
	// BackendDiskCost is dom0's blkback per-request processing cost.
	BackendDiskCost sim.Time
	// Dom0VCPUs is the driver domain's VCPU count.
	Dom0VCPUs int
	// Dom0Footprint/Dom0ColdRate give dom0 VCPUs' cache profile.
	Dom0Footprint int64
	Dom0ColdRate  float64
	// MaxInlineSteps bounds zero-cost actions executed per step loop, to
	// catch runaway processes.
	MaxInlineSteps int
}

// DefaultNodeConfig models one node of the paper's testbed: two
// quad-core Xeon E5620s (8 PCPUs), Xen-era overheads.
func DefaultNodeConfig() NodeConfig {
	return NodeConfig{
		PCPUs:             8,
		CtxSwitchCost:     4 * sim.Microsecond,
		TickInterval:      10 * sim.Millisecond,
		SchedPeriod:       30 * sim.Millisecond,
		Cache:             cachemodel.DefaultConfig(),
		Disk:              diskmodel.DefaultConfig(),
		SendCPUCost:       2 * sim.Microsecond,
		RecvCPUCost:       2 * sim.Microsecond,
		IOSubmitCost:      3 * sim.Microsecond,
		BackendPacketCost: 6 * sim.Microsecond,
		BackendDiskCost:   10 * sim.Microsecond,
		Dom0VCPUs:         2,
		Dom0Footprint:     128 << 10,
		Dom0ColdRate:      0.9,
		MaxInlineSteps:    100000,
	}
}

func (c *NodeConfig) validate() error {
	switch {
	case c.PCPUs <= 0:
		return fmt.Errorf("vmm: PCPUs must be positive, got %d", c.PCPUs)
	case c.TickInterval <= 0 || c.SchedPeriod <= 0:
		return fmt.Errorf("vmm: tick/period must be positive")
	case c.Dom0VCPUs <= 0:
		return fmt.Errorf("vmm: Dom0VCPUs must be positive, got %d", c.Dom0VCPUs)
	case c.CtxSwitchCost < 0 || c.SendCPUCost < 0 || c.RecvCPUCost < 0 ||
		c.IOSubmitCost < 0 || c.BackendPacketCost < 0 || c.BackendDiskCost < 0:
		return fmt.Errorf("vmm: negative cost in config")
	case c.MaxInlineSteps <= 0:
		return fmt.Errorf("vmm: MaxInlineSteps must be positive")
	}
	return nil
}

// Node is a physical machine: PCPUs, a VMM scheduler instance, guest VMs,
// and a dom0 driver domain.
type Node struct {
	world *World
	id    int
	cfg   NodeConfig
	eng   *sim.Engine
	sched Scheduler

	pcpus   []*PCPU
	vms     []*VM // guests only
	dom0    *VM
	backend *Backend

	// vcpus is the flat dispatch-order list of every VCPU hosted on the
	// node (dom0's first, then guests in creation order); VCPU.local
	// indexes it. The hot paths iterate and index this slice instead of
	// chasing the VM pointer graph.
	vcpus []*VCPU

	// trc is the node's tracer: the world tracer in serial mode, a
	// node-private ring in sharded mode (nil when detached).
	trc *Tracer

	// pendingSwap, when non-nil, is a scheduler replacement requested via
	// SwapScheduler on a started world; it is applied at the next period
	// boundary so the policy change lines up with an accounting pass.
	pendingSwap SchedulerFactory

	// tel is the node's telemetry state (nil when no plane is attached);
	// every publish site is guarded by a nil check so a detached plane
	// costs one branch.
	tel *nodeTel

	wakes    uint64
	swaps    uint64
	preempts uint64
	blocks   uint64
}

// ID returns the node index in the world.
func (n *Node) ID() int { return n.id }

// Config returns the node configuration.
func (n *Node) Config() NodeConfig { return n.cfg }

// Scheduler returns the node's VMM scheduler.
func (n *Node) Scheduler() Scheduler { return n.sched }

// PCPUs returns the node's physical cores (do not mutate).
func (n *Node) PCPUs() []*PCPU { return n.pcpus }

// VMs returns the guest VMs hosted on the node (dom0 excluded).
func (n *Node) VMs() []*VM { return n.vms }

// Dom0 returns the driver domain.
func (n *Node) Dom0() *VM { return n.dom0 }

// Backend returns the node's dom0 backend machinery.
func (n *Node) Backend() *Backend { return n.backend }

// Engine returns the engine driving this node (the world's single
// engine in serial mode, the node's shard engine in sharded mode).
func (n *Node) Engine() *sim.Engine { return n.eng }

// VCPUs returns every VCPU hosted on the node, dom0's first, in
// dispatch order (do not mutate).
func (n *Node) VCPUs() []*VCPU { return n.vcpus }

// World returns the owning world.
func (n *Node) World() *World { return n.world }

// NewVM creates a guest VM with the given number of VCPUs and per-VCPU
// cache profile. Must be called before World.Start.
func (n *Node) NewVM(name string, class VMClass, vcpus int, footprint int64, coldRate float64) *VM {
	if vcpus <= 0 {
		panic(fmt.Sprintf("vmm: VM %q needs at least one VCPU", name))
	}
	if class == ClassDom0 {
		panic("vmm: dom0 is created implicitly")
	}
	vm := n.newVM(name, class, vcpus, footprint, coldRate)
	n.vms = append(n.vms, vm)
	return vm
}

func (n *Node) newVM(name string, class VMClass, vcpus int, footprint int64, coldRate float64) *VM {
	vm := &VM{
		id:      n.world.nextVMID,
		name:    name,
		node:    n,
		class:   class,
		mail:    make(map[mailKey]*fifo[Packet]),
		waiting: make(map[mailKey]*VCPU),
	}
	n.world.nextVMID++
	n.world.vms = append(n.world.vms, vm)
	for i := 0; i < vcpus; i++ {
		v := &VCPU{
			id:            n.world.nextVCPUID,
			vm:            vm,
			idx:           i,
			local:         len(n.vcpus),
			state:         StateIdle,
			burnRemaining: -1,
			runSegStart:   -1,
		}
		v.SetCacheProfile(footprint, coldRate)
		n.world.nextVCPUID++
		vm.vcpus = append(vm.vcpus, v)
		n.vcpus = append(n.vcpus, v)
	}
	return vm
}

// slowFactor samples the world's slowdown hook for this node (1 = full
// speed; the fault plane's straggler windows return > 1).
func (n *Node) slowFactor(now sim.Time) float64 {
	if n.world.slowFn == nil {
		return 1
	}
	if f := n.world.slowFn(n.id, now); f > 1 {
		return f
	}
	return 1
}

// wake transitions a blocked VCPU to runnable and kicks the dispatcher.
// io marks I/O-caused wakeups (counted for DSS).
func (n *Node) wake(v *VCPU, io bool) {
	if v.vm.node != n {
		panic(fmt.Sprintf("vmm: waking %s on wrong node %d", v, n.id))
	}
	if v.state != StateBlocked {
		return // spurious wake of a runnable/running/idle VCPU
	}
	if io {
		v.vm.ioWakes++
		v.vm.periodIOWakes++
	}
	n.wakes++
	n.trace(TraceWake, -1, v, 0)
	v.state = StateRunnable
	v.waitStart = n.eng.Now()
	n.sched.Enqueue(v, EnqueueWake)
	n.kick(v)
}

// WakeIdle revives an idle VCPU that has had a new process installed via
// SetProcess after going idle.
func (n *Node) WakeIdle(v *VCPU) {
	if v.state != StateIdle || v.proc == nil {
		return
	}
	v.state = StateRunnable
	v.waitStart = n.eng.Now()
	n.sched.Enqueue(v, EnqueueNew)
	n.kick(v)
}

// kick reacts to new runnable work: dispatch an idle PCPU, or preempt a
// running one when the scheduler's wake policy says so. Deferred to a
// fresh event so wake chains inside action side effects cannot corrupt an
// in-progress step loop.
func (n *Node) kick(v *VCPU) {
	n.eng.Schedule(0, func() {
		if v.state != StateRunnable {
			return
		}
		idle := false
		for _, p := range n.pcpus {
			if p.cur == nil {
				// Kick every idle PCPU: without runqueue stealing only
				// the woken VCPU's home PCPU can pick it up, and kick
				// cannot know which one that is. scheduleDispatch
				// coalesces, so this stays cheap.
				p.scheduleDispatch()
				idle = true
			}
		}
		if idle {
			return
		}
		// Tickle the preemptible PCPU running the longest-held slice so
		// wake preemptions spread rather than hammering PCPU 0.
		var victim *PCPU
		for _, p := range n.pcpus {
			if p.cur == nil || p.cur == v || !n.sched.WakePreempts(p, v) {
				continue
			}
			if victim == nil || p.sliceEnd < victim.sliceEnd {
				victim = p
			}
		}
		if victim != nil {
			victim.Preempt()
		}
	})
}

// Wakes returns the number of wake transitions on this node.
func (n *Node) Wakes() uint64 { return n.wakes }

// Swaps returns the number of scheduler swaps applied on this node.
func (n *Node) Swaps() uint64 { return n.swaps }

// SwapScheduler replaces the node's scheduling policy with one built by
// f. Before World.Start the swap happens immediately; on a running world
// it is deferred to the node's next period boundary, where the old
// scheduler's runqueue state is discarded and every VCPU is re-registered
// with the new one (per-VM monitors are scheduler-independent and carry
// over). VCPUs mid-slice keep running until their slice expires.
func (n *Node) SwapScheduler(f SchedulerFactory) error {
	if f == nil {
		return fmt.Errorf("vmm: nil scheduler factory in swap for node %d", n.id)
	}
	if !n.world.started {
		s := f(n)
		if s == nil {
			return fmt.Errorf("vmm: factory returned nil scheduler for node %d", n.id)
		}
		n.sched = s
		return nil
	}
	n.pendingSwap = f
	return nil
}

// applySwap installs a pending scheduler replacement: builds the new
// scheduler, re-registers every VCPU from scratch (clearing the old
// policy's per-VCPU state), re-enqueues the runnable ones, and kicks idle
// PCPUs so the new policy dispatches right away.
func (n *Node) applySwap() {
	f := n.pendingSwap
	n.pendingSwap = nil
	s := f(n)
	if s == nil {
		panic(fmt.Sprintf("vmm: factory returned nil scheduler in swap for node %d", n.id))
	}
	n.sched = s
	for _, v := range n.vcpus {
		v.SchedData = nil
		s.Register(v)
	}
	for _, v := range n.vcpus {
		if v.state == StateRunnable {
			s.Enqueue(v, EnqueueNew)
		}
	}
	n.swaps++
	n.trace(TraceSwap, -1, nil, 0)
	for _, p := range n.pcpus {
		if p.cur == nil {
			p.scheduleDispatch()
		}
	}
}

// CtxSwitches sums context switches across the node's PCPUs.
func (n *Node) CtxSwitches() uint64 {
	var c uint64
	for _, p := range n.pcpus {
		c += p.ctxSwitches
	}
	return c
}

// LLCMisses sums cache misses across the node's PCPUs.
func (n *Node) LLCMisses() uint64 {
	var m uint64
	for _, p := range n.pcpus {
		m += p.cache.Misses()
	}
	return m
}

// start installs dom0, timers, and the initial dispatch.
func (n *Node) start() {
	for _, v := range n.dom0.vcpus {
		v.proc = &backendProc{b: n.backend}
	}
	for _, v := range n.vcpus {
		n.sched.Register(v)
	}
	// Initial accounting pass so credits exist before the first dispatch.
	n.sched.OnPeriod(n)
	for _, v := range n.vcpus {
		if v.proc != nil {
			v.state = StateRunnable
			v.waitStart = n.eng.Now()
			n.sched.Enqueue(v, EnqueueNew)
		}
	}
	var tick, period func()
	tick = func() {
		n.sched.OnTick(n)
		n.eng.Schedule(n.cfg.TickInterval, tick)
	}
	period = func() {
		if n.pendingSwap != nil {
			n.applySwap()
		}
		n.sched.OnPeriod(n)
		if n.tel != nil {
			n.sampleTelemetry()
		}
		n.eng.Schedule(n.cfg.SchedPeriod, period)
	}
	// Physical machines boot at different instants, so their accounting
	// timers are not phase-locked. Stagger each node's timers by a
	// deterministic per-node phase — without this, every node's
	// scheduling period fires simultaneously and (for example) gang
	// dispatch accidentally co-schedules whole virtual clusters across
	// nodes, which no real deployment would.
	phase := sim.Time(uint64(n.id)*2654435761) % n.cfg.TickInterval
	n.eng.Schedule(n.cfg.TickInterval+phase, tick)
	n.eng.Schedule(n.cfg.SchedPeriod+phase, period)
	for _, p := range n.pcpus {
		p.scheduleDispatch()
	}
}
