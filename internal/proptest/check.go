package proptest

import (
	"fmt"
	"strings"

	"atcsched/internal/cluster"
	"atcsched/internal/sim"
	"atcsched/internal/telemetry"
	"atcsched/internal/vmm"
	"atcsched/internal/workload"
)

// auditEvery is the virtual-time interval between mid-run audits.
const auditEvery = 25 * sim.Millisecond

// traceCap bounds the determinism tracer's memory; dropped records still
// contribute to the fingerprint through the drop counter.
const traceCap = 50000

// result captures everything the battery measures for one approach on
// one Spec.
type result struct {
	approach  cluster.Approach
	completed bool
	// runRounds, clusterSent and clusterRounds are indexed like
	// Spec.Clusters: completed run rounds, packets posted by the
	// cluster's VMs, and summed per-VCPU process rounds.
	runRounds     []int
	clusterSent   []uint64
	clusterRounds []uint64
	// stateErrs are liveness violations observed on parallel VCPUs after
	// the run (non-idle or spinning).
	stateErrs []string
	// auditViols are the violations the periodic audit hook retained;
	// finalAudit is one more full audit of the end state.
	auditViols []error
	finalAudit []error
	// auditTimes are the virtual times the hook observed, in call order —
	// the clock-monotonicity witness.
	auditTimes []sim.Time
	// endTime, swaps and tick witness the live-switch property: per-node
	// applied-swap counts at the end of the run, the virtual end time,
	// and the scheduling period (swaps apply at period boundaries).
	endTime sim.Time
	swaps   []uint64
	tick    sim.Time
	// fingerprint is set only for traced runs: result stats plus the
	// rendered scheduling trace, compared byte-for-byte across replays.
	fingerprint string
}

// runOne builds the Spec's world under one approach, drives it to
// completion (or the horizon) and collects the battery's observables.
// With traced set a bounded scheduling tracer is attached and the full
// fingerprint is rendered.
func runOne(spec Spec, approach cluster.Approach, traced bool) (*result, error) {
	cfg := cluster.DefaultConfig(spec.Nodes, approach)
	cfg.Seed = spec.Seed
	cfg.Node.PCPUs = spec.PCPUs
	cfg.Shards = spec.Shards
	if spec.FixedSliceMs > 0 {
		cfg.Sched.FixedSlice = sim.FromMillis(spec.FixedSliceMs)
	}
	cfg.Sched.DisableBoost = spec.DisableBoost
	cfg.Sched.DisableSteal = spec.DisableSteal
	cfg.Faults = spec.Faults
	if spec.Telemetry {
		// Instrumented runs must fingerprint identically to bare ones:
		// the battery attaches a full plane and otherwise changes nothing.
		cfg.Telemetry = telemetry.New(telemetry.Options{})
	}
	for i, k := range spec.NodeKinds {
		if k == "" {
			continue
		}
		if cfg.NodePolicies == nil {
			cfg.NodePolicies = map[int]cluster.SchedSpec{}
		}
		pin := cfg.Sched // inherit the spec's base-slice/boost/steal knobs
		pin.Kind = cluster.Approach(k)
		cfg.NodePolicies[i] = pin
	}
	cfg.AuditEvery = auditEvery
	res := &result{approach: approach}
	cfg.OnAudit = func(at sim.Time, errs []error) {
		res.auditTimes = append(res.auditTimes, at)
	}
	s, err := cluster.New(cfg)
	if err != nil {
		return nil, err
	}
	var tracer *vmm.Tracer
	if traced {
		tracer = vmm.NewTracer(traceCap)
		s.World.SetTracer(tracer)
	}
	clusterVMs := make([][]*vmm.VM, len(spec.Clusters))
	for i, c := range spec.Clusters {
		prof, err := c.profile()
		if err != nil {
			return nil, err
		}
		vms := s.VirtualCluster(fmt.Sprintf("vc%d", i), c.VMs, c.VCPUs, nil)
		clusterVMs[i] = vms
		s.RunParallel(prof, vms, c.Rounds, false)
	}
	if err := buildJobs(s, spec); err != nil {
		return nil, err
	}
	if spec.SwapKind != "" {
		swap := cfg.Sched
		swap.Kind = cluster.Approach(spec.SwapKind)
		f, err := swap.Factory()
		if err != nil {
			return nil, err
		}
		at := sim.FromSeconds(spec.SwapAtSec)
		if s.World.Sharded() {
			// Each node schedules its own swap on its own engine: one
			// global event cannot reach across shards, and per-node events
			// at a fixed virtual time are exactly as deterministic.
			for _, n := range s.World.Nodes() {
				n := n
				n.Engine().At(at, func() {
					if err := n.SwapScheduler(f); err != nil {
						panic(err) // nil factory cannot reach here
					}
				})
			}
		} else {
			s.World.Eng.At(at, func() {
				for _, n := range s.World.Nodes() {
					if err := n.SwapScheduler(f); err != nil {
						panic(err) // nil factory cannot reach here
					}
				}
			})
		}
	}
	res.completed = s.Go(spec.horizon())
	// Exercise the end-of-run telemetry publication too (no-op when the
	// spec did not attach a plane); it must never disturb the world.
	s.FinalizeTelemetry()
	for _, run := range s.Runs() {
		res.runRounds = append(res.runRounds, run.Rounds())
	}
	for i, vms := range clusterVMs {
		var sent, rounds uint64
		for _, vm := range vms {
			sent += vm.PacketsSent()
			for _, v := range vm.VCPUs() {
				rounds += v.Rounds()
				if st := v.State(); st != vmm.StateIdle {
					res.stateErrs = append(res.stateErrs,
						fmt.Sprintf("cluster %d: vcpu %v left %v", i, v, st))
				}
				if v.Spinning() {
					res.stateErrs = append(res.stateErrs,
						fmt.Sprintf("cluster %d: vcpu %v left spinning", i, v))
				}
			}
		}
		res.clusterSent = append(res.clusterSent, sent)
		res.clusterRounds = append(res.clusterRounds, rounds)
	}
	res.auditViols = s.AuditViolations()
	res.finalAudit = s.World.Audit()
	res.endTime = s.World.Now()
	res.tick = cfg.Node.TickInterval
	for _, n := range s.World.Nodes() {
		res.swaps = append(res.swaps, n.Swaps())
	}
	if traced {
		res.fingerprint = fingerprint(s, tracer)
	}
	return res, nil
}

// buildJobs installs the Spec's non-parallel co-tenants, mirroring the
// scenario runner's job placement (peer VMs on the next node around).
func buildJobs(s *cluster.Scenario, spec Spec) error {
	for i, j := range spec.Jobs {
		peer := (j.Node + 1) % spec.Nodes
		label := fmt.Sprintf("%s%d", j.Type, i)
		switch j.Type {
		case "web":
			server := s.IndependentVM(label+"-srv", j.Node, 2, vmm.ClassNonParallel)
			client := s.IndependentVM(label+"-cli", peer, 2, vmm.ClassNonParallel)
			workload.NewWebJob(client, 0, server, 0,
				20*sim.Millisecond, 2*sim.Millisecond, spec.Seed+uint64(i))
		case "ping":
			client := s.IndependentVM(label+"-cli", peer, 1, vmm.ClassNonParallel)
			echo := s.IndependentVM(label+"-echo", j.Node, 1, vmm.ClassNonParallel)
			workload.NewPingJob(client, 0, echo, 0, 10*sim.Millisecond)
		case "disk":
			vm := s.IndependentVM(label, j.Node, 1, vmm.ClassNonParallel)
			workload.NewDiskJob(vm.VCPU(0))
		case "stream":
			vm := s.IndependentVM(label, j.Node, 1, vmm.ClassNonParallel)
			workload.NewStreamJob(vm.VCPU(0))
		case "cpu":
			vm := s.IndependentVM(label, j.Node, 1, vmm.ClassNonParallel)
			for _, p := range workload.SPECProfiles() {
				if p.Name == j.Name {
					workload.NewCPUJob(vm.VCPU(0), p)
				}
			}
		default:
			return fmt.Errorf("proptest: unknown job type %q", j.Type)
		}
	}
	return nil
}

// fingerprint renders the run's observable outcome — engine counters,
// per-VM statistics and the full retained scheduling trace — as one
// string. Two runs of the same Spec under the same approach must produce
// byte-identical fingerprints.
func fingerprint(s *cluster.Scenario, tracer *vmm.Tracer) string {
	var b strings.Builder
	fmt.Fprintf(&b, "now=%d executed=%d\n", int64(s.World.Now()), s.World.Executed())
	fmt.Fprintf(&b, "%s\n", s.FaultReport())
	for _, run := range s.Runs() {
		fmt.Fprintf(&b, "run rounds=%d times=%v\n", run.Rounds(), run.Times())
	}
	for _, n := range s.World.Nodes() {
		fmt.Fprintf(&b, "node%d ctx=%d wakes=%d llc=%d\n",
			n.ID(), n.CtxSwitches(), n.Wakes(), n.LLCMisses())
	}
	for _, vm := range s.World.VMs() {
		fmt.Fprintf(&b, "vm=%s sent=%d recv=%d ctx=%d iowakes=%d run=%d wait=%d spin=%d\n",
			vm.Name(), vm.PacketsSent(), vm.PacketsReceived(), vm.CtxSwitches(),
			vm.IOWakes(), int64(vm.RunTime()), int64(vm.WaitTime()), int64(vm.SpinWaitTotal()))
	}
	fmt.Fprintf(&b, "trace dropped=%d\n", s.World.TraceDropped())
	for _, r := range s.World.TraceRecords() {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// check evaluates the single-approach properties: liveness, audit
// cleanliness, clock monotonicity and analytic packet conservation.
func (r *result) check(spec Spec) error {
	if !r.completed {
		return fmt.Errorf("liveness: measured runs incomplete after horizon %v (rounds %v)",
			spec.horizon(), r.runRounds)
	}
	for i, c := range spec.Clusters {
		if r.runRounds[i] != c.Rounds {
			return fmt.Errorf("liveness: cluster %d completed %d rounds, want %d",
				i, r.runRounds[i], c.Rounds)
		}
		prof, err := c.profile()
		if err != nil {
			return err
		}
		wantSent := uint64(c.Rounds) * prof.MessagesPerRound(c.VMs, c.VCPUs)
		if r.clusterSent[i] != wantSent {
			return fmt.Errorf("conservation: cluster %d posted %d packets, analytic count %d",
				i, r.clusterSent[i], wantSent)
		}
		wantRounds := uint64(c.Rounds) * uint64(c.VMs) * uint64(c.VCPUs)
		if r.clusterRounds[i] != wantRounds {
			return fmt.Errorf("conservation: cluster %d retired %d process rounds, want %d",
				i, r.clusterRounds[i], wantRounds)
		}
	}
	if len(r.stateErrs) > 0 {
		return fmt.Errorf("liveness: %s", strings.Join(r.stateErrs, "; "))
	}
	if len(r.auditViols) > 0 {
		return fmt.Errorf("audit: %d mid-run violations, first: %v", len(r.auditViols), r.auditViols[0])
	}
	if len(r.finalAudit) > 0 {
		return fmt.Errorf("audit: final state: %v", r.finalAudit[0])
	}
	for i := 1; i < len(r.auditTimes); i++ {
		if r.auditTimes[i] < r.auditTimes[i-1] {
			return fmt.Errorf("clock: audit time regressed %v -> %v",
				r.auditTimes[i-1], r.auditTimes[i])
		}
	}
	if spec.SwapKind != "" {
		// Swaps apply at each node's next period boundary; phase stagger
		// keeps boundaries within one period of each other, so any node
		// still unswapped two periods past the request missed it.
		deadline := sim.FromSeconds(spec.SwapAtSec) + 2*r.tick
		for i, n := range r.swaps {
			if r.endTime >= deadline && n == 0 {
				return fmt.Errorf("switch: node %d never swapped to %s (requested at %vs, ran to %v)",
					i, spec.SwapKind, spec.SwapAtSec, r.endTime)
			}
		}
	}
	return nil
}

// sameWork compares the logical work two approaches completed on the
// same Spec — the differential property. Timing may differ; rounds and
// packet counts may not.
func (r *result) sameWork(ref *result) error {
	for i := range r.runRounds {
		if r.runRounds[i] != ref.runRounds[i] {
			return fmt.Errorf("differential: cluster %d rounds %d under %s vs %d under %s",
				i, r.runRounds[i], r.approach, ref.runRounds[i], ref.approach)
		}
		if r.clusterSent[i] != ref.clusterSent[i] {
			return fmt.Errorf("differential: cluster %d packets %d under %s vs %d under %s",
				i, r.clusterSent[i], r.approach, ref.clusterSent[i], ref.approach)
		}
		if r.clusterRounds[i] != ref.clusterRounds[i] {
			return fmt.Errorf("differential: cluster %d process rounds %d under %s vs %d under %s",
				i, r.clusterRounds[i], r.approach, ref.clusterRounds[i], ref.approach)
		}
	}
	return nil
}

// Primary returns the approach whose run is traced and replayed for the
// determinism property — seed-derived so the sweep spreads the replay
// cost across all approaches.
func Primary(spec Spec, approaches []cluster.Approach) cluster.Approach {
	return approaches[int(spec.Seed%uint64(len(approaches)))]
}

// CheckSpec runs the full property battery on spec: under every
// approach the world must complete all measured work, pass periodic and
// final audits, keep the audited clock monotone, leave no parallel VCPU
// spinning or non-idle, and post exactly the analytic packet count; all
// approaches must complete identical logical work; and the primary
// approach must replay byte-identically. The returned error describes
// the first violated property.
func CheckSpec(spec Spec, approaches []cluster.Approach) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	if len(approaches) == 0 {
		return fmt.Errorf("proptest: no approaches")
	}
	primary := Primary(spec, approaches)
	var ref *result
	var primaryFP string
	for _, a := range approaches {
		r, err := runOne(spec, a, a == primary)
		if err != nil {
			return fmt.Errorf("%s: build: %w", a, err)
		}
		if err := r.check(spec); err != nil {
			return fmt.Errorf("%s: %w", a, err)
		}
		if ref == nil {
			ref = r
		} else if err := r.sameWork(ref); err != nil {
			return err
		}
		if a == primary {
			primaryFP = r.fingerprint
		}
	}
	replay, err := runOne(spec, primary, true)
	if err != nil {
		return fmt.Errorf("%s: replay build: %w", primary, err)
	}
	if replay.fingerprint != primaryFP {
		return fmt.Errorf("determinism: %s replay diverged (fingerprints differ at byte %d of %d/%d)",
			primary, diffAt(primaryFP, replay.fingerprint), len(primaryFP), len(replay.fingerprint))
	}
	if spec.FleetNodes > 0 {
		if err := checkFleetKillRestore(spec); err != nil {
			return err
		}
	}
	return nil
}

// diffAt returns the index of the first differing byte.
func diffAt(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
