package hybrid

import (
	"atcsched/internal/sched/registry"
	"atcsched/internal/vmm"
)

func init() {
	registry.Register(registry.Descriptor{
		Kind:        "HY",
		Extension:   true,
		Description: "hybrid scheduling framework (extension baseline): parallel VMs' VCPUs promoted to BOOST",
		Defaults:    func() any { o := DefaultOptions(); return &o },
		Build: func(opts any, base registry.Base) (vmm.SchedulerFactory, error) {
			o := *opts.(*Options)
			if err := o.Credit.ApplyOverrides(base.FixedSlice, base.DisableBoost, base.DisableSteal); err != nil {
				return nil, err
			}
			return Factory(o), nil
		},
	})
}
