package sim

import (
	"encoding/json"
	"testing"
)

func TestTimeJSONRoundTrip(t *testing.T) {
	for _, d := range []Time{0, Microsecond, 300 * Microsecond, 30 * Millisecond, Second, -Millisecond} {
		b, err := json.Marshal(d)
		if err != nil {
			t.Fatalf("marshal %v: %v", d, err)
		}
		var got Time
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if got != d {
			t.Errorf("round trip %v -> %s -> %v", d, b, got)
		}
	}
}

func TestTimeUnmarshalForms(t *testing.T) {
	cases := map[string]Time{
		`"30ms"`:  30 * Millisecond,
		`"300us"`: 300 * Microsecond,
		`"1.5s"`:  1500 * Millisecond,
		`1000000`: Millisecond,
		`0`:       0,
		`"0s"`:    0,
		`-1000`:   -Microsecond,
	}
	for in, want := range cases {
		var got Time
		if err := json.Unmarshal([]byte(in), &got); err != nil {
			t.Errorf("unmarshal %s: %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("unmarshal %s = %v, want %v", in, got, want)
		}
	}
	for _, bad := range []string{`"30 furlongs"`, `"ms"`, `true`, `{"ns":1}`} {
		var got Time
		if err := json.Unmarshal([]byte(bad), &got); err == nil {
			t.Errorf("unmarshal %s accepted as %v", bad, got)
		}
	}
}
