package experiment

import (
	"fmt"

	"atcsched/internal/cluster"
	"atcsched/internal/metrics"
	"atcsched/internal/report"
	"atcsched/internal/runner"
	"atcsched/internal/workload"
)

// typeAExec runs evaluation type A (§IV-B1): four identical virtual
// clusters, each with one nVCPU VM per node, all running the same
// kernel; it returns the mean execution time across the four clusters.
func typeAExec(sc Scale, approach cluster.Approach, kernel string, nodes int, seed uint64) (float64, error) {
	cfg := cluster.DefaultConfig(nodes, approach)
	cfg.Seed = seed
	s, err := cluster.New(cfg)
	if err != nil {
		return 0, err
	}
	prof := workload.NPB(kernel, workload.ClassB)
	prof.Iterations = iterCount(prof.Iterations, sc.IterScale)
	var runs []*workload.ParallelRun
	for vc := 0; vc < 4; vc++ {
		vms := s.VirtualCluster(fmt.Sprintf("vc%d", vc), nodes, sc.VCPUsPerVM, nil)
		runs = append(runs, s.RunParallel(prof, vms, sc.Rounds, false))
	}
	if !s.Go(sc.Horizon) {
		return 0, fmt.Errorf("%s/%s/%d nodes: horizon %v exceeded", approach, kernel, nodes, sc.Horizon)
	}
	var times []float64
	for _, r := range runs {
		times = append(times, r.MeanTime())
	}
	return metrics.Mean(times), nil
}

func iterCount(base int, scale float64) int {
	n := int(float64(base) * scale)
	if n < 3 {
		n = 3
	}
	return n
}

func init() {
	register(Experiment{
		ID:    "fig1",
		Title: "Figure 1 — CR vs CS running lu on growing virtual clusters",
		Run: func(sc Scale, seed uint64) ([]*report.Table, error) {
			t := report.New(
				"Normalized execution time of lu (vs CR at each size); paper: CS degrades from 0.30 at 2 VMs to 0.44 at 32 VMs",
				"VMs per VC", "CR", "CS", "CS normalized")
			approaches := []cluster.Approach{cluster.CR, cluster.CS}
			// Each (node count, approach) cell is an independent cluster
			// run; fan them across the worker pool.
			cells, err := runner.Grid(len(sc.NodeSteps), len(approaches), func(r, c int) (float64, error) {
				return typeAExec(sc, approaches[c], "lu", sc.NodeSteps[r], seed)
			})
			if err != nil {
				return nil, err
			}
			for i, nodes := range sc.NodeSteps {
				cr, cs := cells[i][0], cells[i][1]
				t.Add(report.I(nodes), report.F(cr)+"s", report.F(cs)+"s", report.F(cs/cr))
			}
			t.AddNote("Shape check: CS < CR everywhere, but CS/CR grows with cluster size (CS lacks scalability).")
			return []*report.Table{t}, nil
		},
	})

	register(Experiment{
		ID:    "fig10",
		Title: "Figure 10 — six kernels under BS/CS/DSS/ATC vs CR, scaling physical nodes",
		Run: func(sc Scale, seed uint64) ([]*report.Table, error) {
			approaches := []cluster.Approach{cluster.CR, cluster.BS, cluster.CS, cluster.DSS, cluster.ATC}
			kernels := workload.NPBKernels()
			steps := sc.NodeSteps
			// The full (kernel × node count × approach) cube is independent
			// cells; flatten it through one pool dispatch.
			nA := len(approaches)
			cube, err := runner.Map(len(kernels)*len(steps)*nA, func(i int) (float64, error) {
				k, rest := i/(len(steps)*nA), i%(len(steps)*nA)
				return typeAExec(sc, approaches[rest%nA], kernels[k], steps[rest/nA], seed)
			})
			if err != nil {
				return nil, err
			}
			var tables []*report.Table
			for k, kernel := range kernels {
				t := report.New(
					fmt.Sprintf("Normalized execution time of %s.B (vs CR at each node count)", kernel),
					"Nodes", "CR(s)", "BS", "CS", "DSS", "ATC")
				for si, nodes := range steps {
					cell := cube[(k*len(steps)+si)*nA:]
					cr := cell[0]
					row := []string{report.I(nodes), report.F(cr)}
					for a := 1; a < nA; a++ {
						row = append(row, report.F(cell[a]/cr))
					}
					t.Add(row...)
				}
				t.AddNote("Shape check: ATC lowest and flattest; CS between BS and ATC; BS→1 as nodes grow; ATC gains 1.5-10x vs CR.")
				tables = append(tables, t)
			}
			return tables, nil
		},
	})
}
