// Package netmodel models the physical interconnect of the testbed: a
// switched 1 Gbps Ethernet with full bisection bandwidth, one NIC per
// node. Transmissions serialize on the sender's NIC (and the receiver's),
// then traverse the wire with a fixed propagation + switching latency.
// Node-local deliveries bypass the wire; the dom0 software path for those
// lives in the vmm package.
package netmodel

import (
	"fmt"

	"atcsched/internal/sim"
)

// Config parameterizes a Fabric.
type Config struct {
	// BytesPerSec is the per-NIC line rate (default 1 Gbps = 125 MB/s).
	BytesPerSec float64
	// WireLatency is the one-way propagation plus switching latency.
	WireLatency sim.Time
	// LocalLatency is the node-local loopback latency (shared memory copy).
	LocalLatency sim.Time
}

// DefaultConfig matches the paper's testbed network: 1 Gbps Ethernet.
func DefaultConfig() Config {
	return Config{
		BytesPerSec:  125e6,
		WireLatency:  50 * sim.Microsecond,
		LocalLatency: 5 * sim.Microsecond,
	}
}

// Fabric is the cluster interconnect.
type Fabric struct {
	eng       *sim.Engine
	cfg       Config
	tx        []sim.Time // per-node NIC transmit-free time
	rx        []sim.Time // per-node NIC receive-free time
	sent      uint64
	delivered uint64
	wire      uint64 // bytes that crossed the wire
}

// New creates a fabric connecting `nodes` nodes.
func New(eng *sim.Engine, nodes int, cfg Config) *Fabric {
	if nodes <= 0 {
		panic("netmodel: need at least one node")
	}
	if cfg.BytesPerSec <= 0 {
		panic(fmt.Sprintf("netmodel: invalid bandwidth %v", cfg.BytesPerSec))
	}
	return &Fabric{
		eng: eng,
		cfg: cfg,
		tx:  make([]sim.Time, nodes),
		rx:  make([]sim.Time, nodes),
	}
}

// Nodes returns the number of nodes the fabric connects.
func (f *Fabric) Nodes() int { return len(f.tx) }

// PacketsSent returns the number of Send calls so far.
func (f *Fabric) PacketsSent() uint64 { return f.sent }

// PacketsDelivered returns the number of completed deliveries.
func (f *Fabric) PacketsDelivered() uint64 { return f.delivered }

// InFlight returns packets sent but not yet delivered.
func (f *Fabric) InFlight() uint64 { return f.sent - f.delivered }

// WireBytes returns the bytes that crossed the physical wire (node-local
// traffic excluded).
func (f *Fabric) WireBytes() uint64 { return f.wire }

// Send transmits size bytes from node src to node dst, invoking deliver
// when the last byte arrives at dst's NIC. Node-local sends complete
// after LocalLatency without using the wire.
func (f *Fabric) Send(src, dst, size int, deliver func()) {
	if src < 0 || src >= len(f.tx) || dst < 0 || dst >= len(f.tx) {
		panic(fmt.Sprintf("netmodel: node out of range src=%d dst=%d nodes=%d", src, dst, len(f.tx)))
	}
	if size < 0 {
		panic("netmodel: negative packet size")
	}
	f.sent++
	wrapped := func() {
		f.delivered++
		deliver()
	}
	now := f.eng.Now()
	if src == dst {
		f.eng.At(now+f.cfg.LocalLatency, wrapped)
		return
	}
	f.wire += uint64(size)
	serial := sim.Time(float64(size) / f.cfg.BytesPerSec * float64(sim.Second))
	start := now
	if f.tx[src] > start {
		start = f.tx[src]
	}
	txDone := start + serial
	f.tx[src] = txDone
	arrive := txDone + f.cfg.WireLatency
	if f.rx[dst] > arrive {
		arrive = f.rx[dst]
	}
	rxDone := arrive // receiver-side serialization is already covered by txDone pacing
	f.rx[dst] = rxDone + serial/2
	f.eng.At(rxDone, wrapped)
}
