package daemon

import (
	"strings"
	"testing"

	"atcsched/internal/core"
	"atcsched/internal/workload"
)

// TestPolicySwitchFlipsNodeToATC runs the closed loop with a scheduled
// CR→ATC handover on node 0: the daemon keeps driving node 1 via EXT
// while node 0's in-VMM ATC takes over its own slices.
func TestPolicySwitchFlipsNodeToATC(t *testing.T) {
	b, err := NewSimBackend(SimBackendConfig{
		Nodes:      2,
		VCPUsPerVM: 4,
		Clusters:   2,
		Kernel:     "lu",
		Class:      workload.ClassA,
		MaxPeriods: 60,
		Seed:       3,
		Switches:   []PolicySwitch{{AtPeriod: 10, Node: 0, Kind: "ATC"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	d := New(core.DefaultConfig(), b, b)
	if err := d.Run(); !IsDone(err) {
		t.Fatalf("daemon ended with %v", err)
	}
	if got := b.World.Node(0).Scheduler().Name(); got != "ATC" {
		t.Errorf("node 0 scheduler = %s, want ATC", got)
	}
	if got := b.World.Node(1).Scheduler().Name(); got != "EXT" {
		t.Errorf("node 1 scheduler = %s, want EXT", got)
	}
	if b.World.Node(0).Swaps() != 1 {
		t.Errorf("node 0 swaps = %d, want 1", b.World.Node(0).Swaps())
	}
	// The run must stay healthy across the handover.
	b.World.MustAudit()
	var rounds int
	for _, r := range b.Runs() {
		rounds += r.Rounds()
	}
	if rounds == 0 {
		t.Error("no rounds completed across the switch")
	}
}

// TestAllNodesSwitch uses Node: -1 to flip the whole cluster; Apply then
// becomes a no-op everywhere without erroring.
func TestAllNodesSwitch(t *testing.T) {
	b, err := NewSimBackend(SimBackendConfig{
		Nodes:      2,
		VCPUsPerVM: 4,
		Clusters:   2,
		Kernel:     "lu",
		Class:      workload.ClassA,
		MaxPeriods: 30,
		Seed:       3,
		Switches:   []PolicySwitch{{AtPeriod: 5, Node: -1, Kind: "CR"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	d := New(core.DefaultConfig(), b, b)
	if err := d.Run(); !IsDone(err) {
		t.Fatalf("daemon ended with %v", err)
	}
	for _, n := range b.World.Nodes() {
		if got := n.Scheduler().Name(); got != "CR" {
			t.Errorf("node %d scheduler = %s, want CR", n.ID(), got)
		}
	}
}

func TestSwitchConfigValidation(t *testing.T) {
	cases := map[string]PolicySwitch{
		"bad period":   {AtPeriod: 0, Node: 0, Kind: "ATC"},
		"bad node":     {AtPeriod: 1, Node: 9, Kind: "ATC"},
		"unknown kind": {AtPeriod: 1, Node: 0, Kind: "NOPE"},
	}
	for name, sw := range cases {
		_, err := NewSimBackend(SimBackendConfig{Class: workload.ClassA, Switches: []PolicySwitch{sw}})
		if err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	_, err := NewSimBackend(SimBackendConfig{Class: workload.ClassA,
		Switches: []PolicySwitch{{AtPeriod: 1, Node: 0, Kind: "NOPE"}}})
	if err == nil || !strings.Contains(err.Error(), "CR") {
		t.Errorf("unknown-kind error %v does not enumerate valid kinds", err)
	}
}
