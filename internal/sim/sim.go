// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine keeps virtual time as nanoseconds in an int64 and executes
// scheduled events in (time, sequence) order, so two runs with the same
// inputs produce byte-identical traces. All of atcsched's virtualization
// substrate (PCPUs, VCPUs, NICs, disks) is driven by one Engine.
package sim

import (
	"fmt"
)

// Time is a point in (or span of) virtual time, in nanoseconds.
type Time int64

// Convenient spans of virtual time.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds returns t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis returns t as floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Micros returns t as floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// FromSeconds converts floating-point seconds to a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// FromMillis converts floating-point milliseconds to a Time.
func FromMillis(ms float64) Time { return Time(ms * float64(Millisecond)) }

// String formats t with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second || t <= -Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond || t <= -Millisecond:
		return fmt.Sprintf("%.3fms", t.Millis())
	case t >= Microsecond || t <= -Microsecond:
		return fmt.Sprintf("%.3fus", t.Micros())
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Event is a scheduled callback, always handled through Handle so that
// object recycling stays invisible to callers.
type Event struct {
	at       Time
	seq      uint64
	gen      uint64 // incremented on reuse; Handle validity check
	fn       func()
	index    int // heap index; -1 when not queued
	canceled bool
}

// Handle identifies one scheduled event. The zero Handle refers to
// nothing; Cancel on it (or on a handle whose event already fired or was
// canceled, even if the underlying object has been recycled for a new
// event) is a safe no-op.
type Handle struct {
	ev  *Event
	gen uint64
}

// live reports whether the handle still refers to its original event.
func (h Handle) live() bool { return h.ev != nil && h.ev.gen == h.gen }

// At returns the virtual time the event will fire at (0 for a dead
// handle).
func (h Handle) At() Time {
	if !h.live() {
		return 0
	}
	return h.ev.at
}

// Canceled reports whether the event was canceled or already fired.
func (h Handle) Canceled() bool { return !h.live() || h.ev.canceled }

// eventQueue is a 4-ary min-heap of events ordered by (at, seq). The
// heap is the simulator's hottest data structure: every Schedule, Step
// and Cancel touches it. A 4-ary layout is ~half as deep as a binary
// heap (fewer comparisons and cache lines per sift), and the inlined
// sift loops avoid container/heap's per-element interface dispatch.
// Children of node i live at 4i+1..4i+4; each *Event carries its slot
// in index so Cancel can remove in O(log₄ n).
type eventQueue []*Event

// before reports heap order: earlier time wins, sequence breaks ties so
// same-instant events fire in scheduling order.
func before(x, y *Event) bool {
	if x.at != y.at {
		return x.at < y.at
	}
	return x.seq < y.seq
}

// push appends ev and restores heap order.
func (q *eventQueue) push(ev *Event) {
	*q = append(*q, ev)
	q.siftUp(len(*q) - 1)
}

// popMin removes and returns the earliest event.
func (q *eventQueue) popMin() *Event {
	a := *q
	min := a[0]
	n := len(a) - 1
	last := a[n]
	a[n] = nil
	a = a[:n]
	*q = a
	if n > 0 {
		a[0] = last
		q.siftDown(0)
	}
	min.index = -1
	return min
}

// remove deletes the event at slot i (Cancel's path).
func (q *eventQueue) remove(i int) {
	a := *q
	ev := a[i]
	n := len(a) - 1
	last := a[n]
	a[n] = nil
	a = a[:n]
	*q = a
	if i < n {
		a[i] = last
		q.siftDown(i)
		if last.index == i {
			q.siftUp(i)
		}
	}
	ev.index = -1
}

func (q *eventQueue) siftUp(i int) {
	a := *q
	ev := a[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !before(ev, a[p]) {
			break
		}
		a[i] = a[p]
		a[i].index = i
		i = p
	}
	a[i] = ev
	ev.index = i
}

func (q *eventQueue) siftDown(i int) {
	a := *q
	n := len(a)
	ev := a[i]
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if before(a[c], a[best]) {
				best = c
			}
		}
		if !before(a[best], ev) {
			break
		}
		a[i] = a[best]
		a[i].index = i
		i = best
	}
	a[i] = ev
	ev.index = i
}

// maxFreeEvents caps the Event recycle list. A burst of cancellations
// (e.g. a preemption storm cancelling slice timers) would otherwise grow
// the pool to the burst's size and pin that memory for the whole run;
// beyond the cap, retired events are simply dropped for the GC.
const maxFreeEvents = 4096

// Engine is a discrete-event simulator. The zero value is not usable; use
// New.
type Engine struct {
	now     Time
	queue   eventQueue
	seq     uint64
	stopped bool
	// executed counts events that have fired, for diagnostics.
	executed uint64
	// free recycles fired/canceled Event objects, capped at maxFreeEvents;
	// Handle generations make the recycling invisible (a stale Cancel is a
	// no-op).
	free []*Event
}

// New returns an Engine with the clock at zero and an empty event queue.
func New() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Executed returns the number of events fired so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending returns the number of events currently queued.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past panics: it always indicates a modelling bug.
func (e *Engine) At(t Time, fn func()) Handle {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: nil event callback")
	}
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free = e.free[:n-1]
		gen := ev.gen + 1
		*ev = Event{at: t, seq: e.seq, gen: gen, fn: fn, index: -1}
	} else {
		ev = &Event{at: t, seq: e.seq, fn: fn, index: -1}
	}
	e.seq++
	e.queue.push(ev)
	return Handle{ev: ev, gen: ev.gen}
}

// Schedule schedules fn to run d after the current time.
func (e *Engine) Schedule(d Time, fn func()) Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Cancel revokes a pending event. Canceling the zero Handle, an
// already-fired or already-canceled event is a no-op, even if the
// underlying object has since been recycled for a different event.
func (e *Engine) Cancel(h Handle) {
	if !h.live() || h.ev.canceled {
		return
	}
	ev := h.ev
	ev.canceled = true
	if ev.index >= 0 {
		e.queue.remove(ev.index)
	}
	ev.fn = nil
	if len(e.free) < maxFreeEvents {
		e.free = append(e.free, ev)
	}
}

// Step fires the next pending event. It returns false when the queue is
// empty or the engine has been stopped.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 && !e.stopped {
		ev := e.queue.popMin()
		if ev.canceled {
			continue
		}
		if ev.at < e.now {
			panic(fmt.Sprintf("sim: clock regression: event at %v, now %v", ev.at, e.now))
		}
		e.now = ev.at
		fn := ev.fn
		ev.fn = nil
		ev.canceled = true // fired; a late Cancel must be a no-op
		if len(e.free) < maxFreeEvents {
			e.free = append(e.free, ev)
		}
		e.executed++
		fn()
		return true
	}
	return false
}

// Run fires events until the queue drains or Stop is called.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with timestamps <= t, then advances the clock to
// t. Events scheduled beyond t remain queued. When the engine was
// stopped mid-run the clock stays where the last event left it — pending
// events must still be able to fire after Resume without the clock
// running backward.
func (e *Engine) RunUntil(t Time) {
	for !e.stopped {
		ev := e.peek()
		if ev == nil || ev.at > t {
			break
		}
		e.Step()
	}
	if e.stopped {
		return
	}
	if t > e.now {
		e.now = t
	}
}

// RunFor runs for a span d of virtual time from the current instant.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }

// NextEventAt returns the timestamp of the earliest pending event, or
// false when the queue is empty. The shard scheduler uses it to decide
// which engines have work inside a synchronization window.
func (e *Engine) NextEventAt() (Time, bool) {
	ev := e.peek()
	if ev == nil {
		return 0, false
	}
	return ev.at, true
}

func (e *Engine) peek() *Event {
	for len(e.queue) > 0 {
		ev := e.queue[0]
		if !ev.canceled {
			return ev
		}
		e.queue.popMin()
	}
	return nil
}

// Stop halts Run/RunUntil after the current event completes. Pending
// events stay queued; Resume re-enables stepping.
func (e *Engine) Stop() { e.stopped = true }

// Resume clears a previous Stop.
func (e *Engine) Resume() { e.stopped = false }

// Stopped reports whether Stop has been called without a matching Resume.
func (e *Engine) Stopped() bool { return e.stopped }
