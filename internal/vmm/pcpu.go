package vmm

import (
	"fmt"

	"atcsched/internal/cachemodel"
	"atcsched/internal/sim"
)

// PCPU is one physical core. It executes at most one VCPU at a time,
// granting it the scheduler-assigned slice, modelling context-switch cost
// and cache cooling, and handling preemption, blocking, and spin-waiting.
type PCPU struct {
	node *Node
	idx  int

	cache *cachemodel.Cache
	// clients holds this PCPU's per-VCPU cache clients, indexed by
	// VCPU.local — a dense array lookup on the dispatch path where a
	// map would hash on every context switch.
	clients []*cachemodel.Client

	cur     *VCPU
	lastRan *VCPU

	sliceEnd sim.Time
	sliceEv  sim.Handle
	// stepEv is the pending timed-segment completion (compute/burn done)
	// or the deferred step kick-off after a context switch.
	stepEv sim.Handle
	// dispatchQueued coalesces deferred dispatch requests.
	dispatchQueued bool
	// stepQueued coalesces deferred step requests.
	stepQueued bool

	busyTime    sim.Time
	busySince   sim.Time // valid when cur != nil
	ctxSwitches uint64
	dispatches  uint64

	// Pre-bound callbacks so the hot scheduling paths do not allocate a
	// closure per deferral.
	dispatchFn func()
	stepFn     func()
	sliceFn    func()
	csFn       func()
}

// initFns binds the reusable event callbacks (called at construction).
func (p *PCPU) initFns() {
	p.dispatchFn = func() {
		p.dispatchQueued = false
		p.dispatch()
	}
	p.stepFn = func() {
		p.stepQueued = false
		p.step()
	}
	p.sliceFn = p.onSliceEnd
	p.csFn = func() {
		p.stepEv = sim.Handle{}
		p.step()
	}
}

// Node returns the owning node.
func (p *PCPU) Node() *Node { return p.node }

// Index returns the node-local PCPU index.
func (p *PCPU) Index() int { return p.idx }

// Current returns the running VCPU (nil when idle).
func (p *PCPU) Current() *VCPU { return p.cur }

// CtxSwitches returns the number of switches to a different VCPU.
func (p *PCPU) CtxSwitches() uint64 { return p.ctxSwitches }

// BusyTime returns accumulated non-idle time.
func (p *PCPU) BusyTime() sim.Time {
	t := p.busyTime
	if p.cur != nil {
		t += p.node.eng.Now() - p.busySince
	}
	return t
}

// SliceEnd returns the end of the current slice (meaningless when idle).
func (p *PCPU) SliceEnd() sim.Time { return p.sliceEnd }

// Cache returns this PCPU's LLC model.
func (p *PCPU) Cache() *cachemodel.Cache { return p.cache }

// stretch scales a segment duration by a slowdown factor, saturating
// far below the sim.Time range so freeze-grade factors cannot overflow.
func stretch(t sim.Time, f float64) sim.Time {
	if f <= 1 {
		return t
	}
	s := float64(t) * f
	const saturate = float64(1) * 1e18 // ~31 virtual years
	if s > saturate {
		return sim.Time(saturate)
	}
	return sim.Time(s)
}

// unstretch converts wall time spent in a slowed segment back into the
// work-equivalent time the cache model and burn accounting expect.
func unstretch(dt sim.Time, f float64) sim.Time {
	if f <= 1 {
		return dt
	}
	return sim.Time(float64(dt) / f)
}

func (p *PCPU) clientFor(v *VCPU) *cachemodel.Client {
	for v.local >= len(p.clients) {
		p.clients = append(p.clients, nil)
	}
	cl := p.clients[v.local]
	if cl == nil {
		cl = p.cache.NewClient(v.footprint, v.coldRate)
		p.clients[v.local] = cl
	}
	return cl
}

// scheduleDispatch defers a dispatch to a fresh event at the current
// instant, flattening recursion from wake/preempt chains.
func (p *PCPU) scheduleDispatch() {
	if p.dispatchQueued {
		return
	}
	p.dispatchQueued = true
	p.node.eng.Schedule(0, p.dispatchFn)
}

// scheduleStep defers a step to a fresh event at the current instant.
func (p *PCPU) scheduleStep() {
	if p.stepQueued {
		return
	}
	p.stepQueued = true
	p.node.eng.Schedule(0, p.stepFn)
}

// dispatch asks the scheduler for the next VCPU and installs it.
func (p *PCPU) dispatch() {
	if p.cur != nil {
		return // something is already running (a racing wake dispatched us)
	}
	v := p.node.sched.PickNext(p)
	if v == nil {
		return // idle
	}
	if v.state != StateRunnable {
		panic(fmt.Sprintf("vmm: PickNext returned %s in state %v", v, v.state))
	}
	now := p.node.eng.Now()
	v.waitTime += now - v.waitStart
	v.vm.countWait(now - v.waitStart)
	v.state = StateRunning
	v.pcpu = p
	v.runStart = now
	v.runSegStart = -1
	p.cur = v
	p.busySince = now
	p.dispatches++
	p.node.trace(TraceDispatch, p.idx, v, 0)

	cs := sim.Time(0)
	if p.lastRan != v {
		cs = p.node.cfg.CtxSwitchCost
		p.ctxSwitches++
		v.vm.ctxSwitches++
	}
	p.lastRan = v

	slice := p.node.sched.Slice(v)
	if slice <= 0 {
		panic(fmt.Sprintf("vmm: scheduler %s granted non-positive slice %v", p.node.sched.Name(), slice))
	}
	v.vm.curSlice = slice
	p.sliceEnd = now + cs + slice
	p.sliceEv = p.node.eng.At(p.sliceEnd, p.sliceFn)

	if cs > 0 {
		p.stepEv = p.node.eng.Schedule(cs, p.csFn)
		return
	}
	p.step()
}

// onSliceEnd preempts the current VCPU when its slice expires.
func (p *PCPU) onSliceEnd() {
	p.sliceEv = sim.Handle{}
	p.preemptCur()
}

// Preempt forcibly ends the current VCPU's slice (scheduler-initiated,
// e.g., co-scheduling gang dispatch or wake tickling).
func (p *PCPU) Preempt() {
	if p.sliceEv != (sim.Handle{}) {
		p.node.eng.Cancel(p.sliceEv)
		p.sliceEv = sim.Handle{}
	}
	p.preemptCur()
}

func (p *PCPU) preemptCur() {
	v := p.cur
	if v == nil {
		p.scheduleDispatch()
		return
	}
	now := p.node.eng.Now()
	if p.stepEv != (sim.Handle{}) {
		p.node.eng.Cancel(p.stepEv)
		p.stepEv = sim.Handle{}
	}
	p.accountPartial(v, now)
	if p.cur != v {
		// The interrupted action completed at this very instant and its
		// effect blocked the VCPU (e.g., a disk submit); nothing to
		// requeue.
		p.scheduleDispatch()
		return
	}
	p.node.preempts++
	p.node.trace(TracePreempt, p.idx, v, 0)
	p.releaseCur(v, now)
	v.state = StateRunnable
	v.waitStart = now
	p.node.sched.Enqueue(v, EnqueuePreempt)
	// The scheduler may have re-placed v on another PCPU's queue (balance
	// placement); without runqueue stealing an idle PCPU never looks
	// there on its own, so nudge every idle sibling. scheduleDispatch
	// coalesces, and a dispatch from an empty queue is O(1).
	for _, o := range p.node.pcpus {
		if o != p && o.cur == nil {
			o.scheduleDispatch()
		}
	}
	p.scheduleDispatch()
}

// releaseCur detaches v from the PCPU and settles accounting.
func (p *PCPU) releaseCur(v *VCPU, now sim.Time) {
	v.runTime += now - v.runStart
	v.pcpu = nil
	p.cur = nil
	p.busyTime += now - p.busySince
	if p.sliceEv != (sim.Handle{}) {
		p.node.eng.Cancel(p.sliceEv)
		p.sliceEv = sim.Handle{}
	}
}

// accountPartial credits progress for an interrupted timed segment.
func (p *PCPU) accountPartial(v *VCPU, now sim.Time) {
	if v.runSegStart < 0 || v.pending == nil {
		v.runSegStart = -1
		return
	}
	dt := now - v.runSegStart
	v.runSegStart = -1
	if dt <= 0 {
		return
	}
	a := v.pending
	// Wall time in a slowed segment counts for less work.
	dt = unstretch(dt, v.segSlow)
	if dt <= 0 {
		return
	}
	switch a.Kind {
	case ActCompute:
		work := p.cache.Advance(p.clientFor(v), dt)
		a.Work -= work
		if a.Work <= 0 {
			p.completeAction(v, a)
		}
	default:
		// A fixed-cost burn (send/recv/disk submit).
		v.burnRemaining -= dt
		if v.burnRemaining <= 0 {
			v.burnRemaining = 0
			p.applyEffect(v, a)
		}
	}
}

// completeAction retires a finished action and runs its Then hook.
func (p *PCPU) completeAction(v *VCPU, a *Action) {
	v.pending = nil
	v.burnRemaining = -1
	if a.Then != nil {
		a.Then()
	}
}

// blockCur blocks the current VCPU (waiting on I/O, a message, a timer,
// or — for ActDone with no restart — forever).
func (p *PCPU) blockCur(v *VCPU, st VCPUState) {
	if p.cur != v {
		panic(fmt.Sprintf("vmm: blockCur for %s which is not current", v))
	}
	now := p.node.eng.Now()
	if p.stepEv != (sim.Handle{}) {
		p.node.eng.Cancel(p.stepEv)
		p.stepEv = sim.Handle{}
	}
	if v.runSegStart >= 0 {
		panic(fmt.Sprintf("vmm: %s blocking mid-segment", v))
	}
	p.node.blocks++
	p.node.trace(TraceBlock, p.idx, v, 0)
	p.releaseCur(v, now)
	v.state = st
	p.scheduleDispatch()
}

// still reports whether v is still the running VCPU on p — used to bail
// out of the step loop after side effects that may have preempted us.
func (p *PCPU) still(v *VCPU) bool {
	return p.cur == v && v.state == StateRunning
}

// step executes the current VCPU's actions until one of them requires
// waiting (for time, a lock, a message, ...) or the VCPU loses the PCPU.
func (p *PCPU) step() {
	v := p.cur
	if v == nil || v.state != StateRunning {
		return
	}
	if v.runSegStart >= 0 || p.stepEv != (sim.Handle{}) {
		// A timed segment is already in flight (its completion event or
		// the slice end will continue); a stale deferred step must not
		// restart it.
		return
	}
	eng := p.node.eng
	for iter := 0; ; iter++ {
		if iter > p.node.cfg.MaxInlineSteps {
			panic(fmt.Sprintf("vmm: %s exceeded %d inline steps at %v — runaway zero-cost process?",
				v, p.node.cfg.MaxInlineSteps, eng.Now()))
		}
		if !p.still(v) {
			return
		}
		if v.pending == nil {
			if v.proc == nil {
				p.blockCur(v, StateIdle)
				return
			}
			v.pendingBuf = v.proc.Next()
			v.pending = &v.pendingBuf
			v.burnRemaining = -1
		}
		a := v.pending
		now := eng.Now()
		switch a.Kind {
		case ActCompute:
			if a.Work <= 0 {
				p.completeAction(v, a)
				continue
			}
			cl := p.clientFor(v)
			v.segSlow = p.node.slowFactor(now)
			t := stretch(p.cache.TimeFor(cl, a.Work), v.segSlow)
			v.runSegStart = now
			if now+t <= p.sliceEnd {
				p.stepEv = eng.Schedule(t, func() {
					p.stepEv = sim.Handle{}
					p.onSegmentDone(v)
				})
			}
			// Otherwise the slice ends first; preemption accounts the
			// partial progress.
			return

		case ActAcquire:
			if v.spinningOn == a.Lock {
				// Already a waiter (re-dispatched mid-spin). Complete if
				// the lock was reserved for us; otherwise keep spinning.
				if a.Lock.granted == v {
					if !a.Lock.tryAcquire(v, now) {
						panic("vmm: granted lock refused acquisition")
					}
					p.completeAction(v, a)
					continue
				}
				return // burn the slice spinning
			}
			v.spinSince = now
			if a.Lock.tryAcquire(v, now) {
				p.completeAction(v, a)
				continue
			}
			v.spinningOn = a.Lock
			return // spin until granted or preempted

		case ActRelease:
			lock := a.Lock
			p.completeAction(v, a)
			lock.release(v, now)
			continue

		case ActSend:
			if !p.startBurn(v, a, p.node.cfg.SendCPUCost) {
				return
			}
			p.applyEffect(v, a)
			continue

		case ActRecv:
			if !v.vm.mailReady(v.idx, a.Tag) {
				v.vm.waitMail(v.idx, a.Tag, v)
				if a.Dur == 0 {
					p.blockCur(v, StateBlocked)
					return
				}
				// Busy-poll the mailbox: burn CPU until the packet lands
				// (the deliver path resumes us), the poll budget runs out
				// (then block), or the slice ends. A budget the current
				// slice cannot hold (the slice-end event wins a same-instant
				// tie, hence the strict <) is pre-charged for the slice
				// remainder: polling resumes with the rest on redispatch,
				// and a spent budget (Dur reaching 0) degrades to the
				// blocking branch above. Without the carry-over, any budget
				// at or above the slice restarts from scratch every dispatch
				// and the VCPU never blocks — under a scheduler that keeps
				// it promoted, that starves dom0 and deadlocks delivery.
				if rem := p.sliceEnd - now; a.Dur > 0 && a.Dur < rem {
					p.stepEv = eng.Schedule(a.Dur, func() {
						p.stepEv = sim.Handle{}
						p.onPollTimeout(v)
					})
				} else if a.Dur > 0 && rem > 0 {
					a.Dur -= rem
				}
				return
			}
			if !p.startBurn(v, a, p.node.cfg.RecvCPUCost) {
				return
			}
			p.applyEffect(v, a)
			continue

		case ActDisk:
			if !p.startBurn(v, a, p.node.cfg.IOSubmitCost) {
				return
			}
			p.applyEffect(v, a)
			// applyEffect blocked the VCPU waiting for completion.
			return

		case ActSleep:
			then := a.Then
			d := a.Dur
			v.pending = nil
			v.burnRemaining = -1
			eng.Schedule(d, func() {
				if then != nil {
					then()
				}
				p.node.wake(v, false)
			})
			p.blockCur(v, StateBlocked)
			return

		case ActBlock:
			if a.Then != nil {
				panic("vmm: ActBlock does not support Then")
			}
			v.pending = nil
			v.burnRemaining = -1
			p.blockCur(v, StateBlocked)
			return

		case ActDone:
			v.rounds++
			v.pending = nil
			v.burnRemaining = -1
			if v.OnDone != nil {
				if np := v.OnDone(v); np != nil {
					v.proc = np
					continue
				}
			}
			v.proc = nil
			p.blockCur(v, StateIdle)
			return

		default:
			panic(fmt.Sprintf("vmm: unknown action kind %v", a.Kind))
		}
	}
}

// onSegmentDone fires when a timed compute segment completes in full.
func (p *PCPU) onSegmentDone(v *VCPU) {
	if !p.still(v) {
		return
	}
	now := p.node.eng.Now()
	a := v.pending
	if a == nil || v.runSegStart < 0 {
		panic(fmt.Sprintf("vmm: segment completion without segment on %s", v))
	}
	dt := now - v.runSegStart
	v.runSegStart = -1
	switch a.Kind {
	case ActCompute:
		// The timer fired at exactly TimeFor(remaining work), so the
		// segment is complete by construction; Advance only settles the
		// cache-residency state (its float work accounting can drift a
		// few microseconds on long cold segments, which we discard).
		p.cache.Advance(p.clientFor(v), unstretch(dt, v.segSlow))
		a.Work = 0
		p.completeAction(v, a)
	default:
		v.burnRemaining = 0
		p.applyEffect(v, a)
	}
	p.step()
}

// onPollTimeout fires when a busy-polling receive exhausts its budget:
// the VCPU gives up the CPU and blocks until the packet arrives.
func (p *PCPU) onPollTimeout(v *VCPU) {
	if !p.still(v) {
		return
	}
	a := v.pending
	if a == nil || a.Kind != ActRecv {
		return // the recv completed at this very instant
	}
	if v.vm.mailReady(v.idx, a.Tag) {
		p.scheduleStep()
		return
	}
	p.blockCur(v, StateBlocked)
}

// resumePoll is called by the deliver path when a packet lands for a
// VCPU that is busy-polling on this PCPU right now.
func (p *PCPU) resumePoll(v *VCPU) {
	if !p.still(v) {
		return
	}
	if p.stepEv != (sim.Handle{}) {
		p.node.eng.Cancel(p.stepEv)
		p.stepEv = sim.Handle{}
	}
	p.scheduleStep()
}

// startBurn begins (or finishes) the fixed CPU cost of a non-compute
// action. It returns true when the burn is already complete and the
// action's effect should be applied now.
func (p *PCPU) startBurn(v *VCPU, a *Action, cost sim.Time) bool {
	if v.burnRemaining < 0 {
		v.burnRemaining = cost
	}
	if v.burnRemaining == 0 {
		return true
	}
	now := p.node.eng.Now()
	v.segSlow = p.node.slowFactor(now)
	v.runSegStart = now
	if wall := stretch(v.burnRemaining, v.segSlow); now+wall <= p.sliceEnd {
		p.stepEv = p.node.eng.Schedule(wall, func() {
			p.stepEv = sim.Handle{}
			p.onSegmentDone(v)
		})
	}
	return false
}

// applyEffect performs a non-compute action's side effect once its CPU
// cost has been paid.
func (p *PCPU) applyEffect(v *VCPU, a *Action) {
	switch a.Kind {
	case ActSend:
		pkt := Packet{Src: v.vm, SrcProc: v.idx, Dst: a.Dst, DstProc: a.DstProc, Tag: a.Tag, Size: a.Size}
		v.vm.sent++
		p.node.backend.enqueueTx(pkt)
		p.completeAction(v, a)
	case ActRecv:
		v.vm.takeMail(v.idx, a.Tag)
		p.completeAction(v, a)
	case ActDisk:
		req := diskReq{v: v, size: a.Size, then: a.Then}
		v.pending = nil
		v.burnRemaining = -1
		p.node.backend.enqueueDisk(req)
		if p.cur == v && v.state == StateRunning {
			p.blockCur(v, StateBlocked)
		}
	default:
		panic(fmt.Sprintf("vmm: applyEffect on %v", a.Kind))
	}
}
