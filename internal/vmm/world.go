package vmm

import (
	"fmt"

	"atcsched/internal/cachemodel"
	"atcsched/internal/diskmodel"
	"atcsched/internal/netmodel"
	"atcsched/internal/sim"
)

// World is a whole simulated cluster: the engine, the physical fabric,
// and the nodes. Construct it, create VMs and install their processes,
// then call Start and drive the engine.
type World struct {
	Eng    *sim.Engine
	Fabric *netmodel.Fabric
	nodes  []*Node
	vms    []*VM

	nextVMID   int
	nextVCPUID int
	started    bool
	tracer     *Tracer

	// slowFn, when set, reports the execution-time multiplier (>= 1) in
	// force on a node at an instant; the PCPUs stretch every compute and
	// burn segment started while it is > 1 (fault plane: stragglers).
	slowFn func(node int, now sim.Time) float64
	// monitorTap, when set, filters every spin-monitor sample taken via
	// VM.SampleSpinPeriod (fault plane: dropouts, noise, stale reads).
	monitorTap func(vm *VM) MonitorVerdict
}

// SetSlowdown installs (or, with nil, removes) the per-node execution
// slowdown hook. fn must be deterministic in (node, now); factors below
// 1 are treated as 1. Segments already in flight keep the factor they
// started with — the hook is sampled at segment start, so its
// granularity is one slice at worst.
func (w *World) SetSlowdown(fn func(node int, now sim.Time) float64) { w.slowFn = fn }

// SetMonitorTap installs (or, with nil, removes) the monitoring-path
// fault hook consulted by VM.SampleSpinPeriod.
func (w *World) SetMonitorTap(fn func(vm *VM) MonitorVerdict) { w.monitorTap = fn }

// SetTracer attaches a scheduling tracer (nil detaches). Attach before
// Start to capture the whole run.
func (w *World) SetTracer(t *Tracer) { w.tracer = t }

// Tracer returns the attached tracer (nil when none).
func (w *World) Tracer() *Tracer { return w.tracer }

// NewWorld builds nNodes identical nodes, each with its own scheduler
// instance produced by factory.
func NewWorld(nNodes int, ncfg NodeConfig, netCfg netmodel.Config, factory SchedulerFactory) (*World, error) {
	if factory == nil {
		return nil, fmt.Errorf("vmm: nil scheduler factory")
	}
	return NewHeteroWorld(nNodes, ncfg, netCfg, func(int) SchedulerFactory { return factory })
}

// NewHeteroWorld builds nNodes nodes whose schedulers may differ:
// factoryFor(i) supplies the factory for node i, so a cluster can run
// one policy on most nodes and another on the rest.
func NewHeteroWorld(nNodes int, ncfg NodeConfig, netCfg netmodel.Config, factoryFor func(node int) SchedulerFactory) (*World, error) {
	if nNodes <= 0 {
		return nil, fmt.Errorf("vmm: need at least one node, got %d", nNodes)
	}
	if err := ncfg.validate(); err != nil {
		return nil, err
	}
	if factoryFor == nil {
		return nil, fmt.Errorf("vmm: nil scheduler factory function")
	}
	eng := sim.New()
	w := &World{
		Eng:    eng,
		Fabric: netmodel.New(eng, nNodes, netCfg),
	}
	for i := 0; i < nNodes; i++ {
		n := &Node{world: w, id: i, cfg: ncfg, eng: eng}
		for j := 0; j < ncfg.PCPUs; j++ {
			p := &PCPU{
				node:    n,
				idx:     j,
				cache:   cachemodel.New(ncfg.Cache),
				clients: make(map[*VCPU]*cachemodel.Client),
			}
			p.initFns()
			n.pcpus = append(n.pcpus, p)
		}
		n.backend = &Backend{node: n, disk: diskmodel.New(eng, ncfg.Disk)}
		n.dom0 = n.newVM(fmt.Sprintf("dom0-%d", i), ClassDom0, ncfg.Dom0VCPUs, ncfg.Dom0Footprint, ncfg.Dom0ColdRate)
		factory := factoryFor(i)
		if factory == nil {
			return nil, fmt.Errorf("vmm: nil scheduler factory for node %d", i)
		}
		n.sched = factory(n)
		if n.sched == nil {
			return nil, fmt.Errorf("vmm: factory returned nil scheduler for node %d", i)
		}
		w.nodes = append(w.nodes, n)
	}
	return w, nil
}

// MustNewWorld is NewWorld that panics on error (tests, examples).
func MustNewWorld(nNodes int, ncfg NodeConfig, netCfg netmodel.Config, factory SchedulerFactory) *World {
	w, err := NewWorld(nNodes, ncfg, netCfg, factory)
	if err != nil {
		panic(err)
	}
	return w
}

// Nodes returns the world's nodes (do not mutate).
func (w *World) Nodes() []*Node { return w.nodes }

// Node returns node i.
func (w *World) Node(i int) *Node { return w.nodes[i] }

// VMs returns every VM in the world, dom0s included.
func (w *World) VMs() []*VM { return w.vms }

// GuestVMs returns every guest VM in the world.
func (w *World) GuestVMs() []*VM {
	var out []*VM
	for _, vm := range w.vms {
		if vm.class != ClassDom0 {
			out = append(out, vm)
		}
	}
	return out
}

// Start arms timers and performs the initial dispatch on every node. It
// must be called exactly once, after all VMs and processes are set up.
func (w *World) Start() {
	if w.started {
		panic("vmm: World.Start called twice")
	}
	w.started = true
	for _, n := range w.nodes {
		n.start()
	}
}

// RunUntil drives the engine to the given virtual time.
func (w *World) RunUntil(t sim.Time) { w.Eng.RunUntil(t) }

// Stop halts the engine (e.g., when the experiment's completion condition
// is met from inside a callback).
func (w *World) Stop() { w.Eng.Stop() }
