package vmm

import (
	"testing"

	"atcsched/internal/netmodel"
	"atcsched/internal/sim"
)

func TestRecvPollResumedByDelivery(t *testing.T) {
	// The receiver polls; the sender posts after a delay well inside the
	// poll budget; the receiver must complete without ever blocking.
	w := testWorld(t, 1, 2, 30*sim.Millisecond)
	a := w.Node(0).NewVM("a", ClassParallel, 1, 0, 1)
	b := w.Node(0).NewVM("b", ClassParallel, 1, 0, 1)
	var doneAt sim.Time
	a.VCPU(0).SetProcess(&seqProc{actions: []Action{
		{Kind: ActRecv, Tag: 1, Dur: 20 * sim.Millisecond, Then: func() { doneAt = w.Eng.Now() }},
	}}, nil)
	b.VCPU(0).SetProcess(&seqProc{actions: []Action{
		Compute(2 * sim.Millisecond),
		Send(a, 0, 1, 256),
	}}, nil)
	w.Start()
	w.RunUntil(sim.Second)
	if doneAt == 0 {
		t.Fatal("poll never completed")
	}
	if doneAt > 3*sim.Millisecond {
		t.Errorf("poll completed at %v, want ~2ms (resumed by delivery)", doneAt)
	}
	// The receiver burned CPU while polling rather than blocking.
	if got := a.VCPU(0).RunTime(); got < 2*sim.Millisecond {
		t.Errorf("receiver runtime = %v, want ≈ poll duration", got)
	}
	w.MustAudit()
}

func TestRecvPollTimesOutThenBlocks(t *testing.T) {
	w := testWorld(t, 1, 2, 30*sim.Millisecond)
	a := w.Node(0).NewVM("a", ClassParallel, 1, 0, 1)
	b := w.Node(0).NewVM("b", ClassParallel, 1, 0, 1)
	var doneAt sim.Time
	a.VCPU(0).SetProcess(&seqProc{actions: []Action{
		{Kind: ActRecv, Tag: 1, Dur: sim.Millisecond, Then: func() { doneAt = w.Eng.Now() }},
	}}, nil)
	b.VCPU(0).SetProcess(&seqProc{actions: []Action{
		Compute(10 * sim.Millisecond), // well past the poll budget
		Send(a, 0, 1, 256),
	}}, nil)
	w.Start()
	w.RunUntil(sim.Second)
	if doneAt < 10*sim.Millisecond {
		t.Fatalf("doneAt = %v", doneAt)
	}
	// The receiver burned only ~1ms polling, then blocked: its CPU time
	// must be far below the 10ms wall wait.
	if got := a.VCPU(0).RunTime(); got > 3*sim.Millisecond {
		t.Errorf("receiver runtime = %v, want ~1ms (blocked after poll budget)", got)
	}
	w.MustAudit()
}

func TestRecvPollForeverNeverBlocks(t *testing.T) {
	w := testWorld(t, 1, 2, 30*sim.Millisecond)
	a := w.Node(0).NewVM("a", ClassParallel, 1, 0, 1)
	b := w.Node(0).NewVM("b", ClassParallel, 1, 0, 1)
	got := false
	a.VCPU(0).SetProcess(&seqProc{actions: []Action{
		RecvPoll(1, -1),
		{Kind: ActCompute, Work: 0, Then: func() { got = true }},
	}}, nil)
	b.VCPU(0).SetProcess(&seqProc{actions: []Action{
		Compute(8 * sim.Millisecond),
		Send(a, 0, 1, 64),
	}}, nil)
	w.Start()
	w.RunUntil(sim.Second)
	if !got {
		t.Fatal("infinite poll never completed")
	}
	// Spin-forever: the receiver's CPU time covers the whole wait.
	if rt := a.VCPU(0).RunTime(); rt < 8*sim.Millisecond {
		t.Errorf("receiver runtime = %v, want ≥ 8ms (spun the whole time)", rt)
	}
	w.MustAudit()
}

func TestRecvPollPreemptedKeepsWaiting(t *testing.T) {
	// A poller preempted mid-poll must resume polling on redispatch and
	// still consume the message.
	w := testWorld(t, 1, 1, 2*sim.Millisecond) // 1 PCPU, short slices
	a := w.Node(0).NewVM("a", ClassParallel, 1, 0, 1)
	b := w.Node(0).NewVM("b", ClassParallel, 1, 0, 1)
	got := false
	a.VCPU(0).SetProcess(&seqProc{actions: []Action{
		RecvPoll(1, -1),
		{Kind: ActCompute, Work: 0, Then: func() { got = true }},
	}}, nil)
	b.VCPU(0).SetProcess(&seqProc{actions: []Action{
		Compute(7 * sim.Millisecond),
		Send(a, 0, 1, 64),
	}}, nil)
	w.Start()
	w.RunUntil(sim.Second)
	if !got {
		t.Fatal("preempted poller never completed")
	}
	w.MustAudit()
}

func TestRecvPollBudgetCarriesAcrossSlices(t *testing.T) {
	// A poll budget larger than the slice must be consumed cumulatively
	// across preemptions, not restarted from scratch on every dispatch:
	// the receiver polls 5ms total over 2ms slices, then blocks while
	// the hog runs — its CPU time stays near the budget, nowhere near
	// the 40ms wall wait. (Regression: the un-carried budget kept the
	// poller running every other slice forever.)
	w := testWorld(t, 1, 1, 2*sim.Millisecond)
	a := w.Node(0).NewVM("a", ClassParallel, 1, 0, 1)
	b := w.Node(0).NewVM("b", ClassParallel, 1, 0, 1)
	var doneAt sim.Time
	a.VCPU(0).SetProcess(&seqProc{actions: []Action{
		{Kind: ActRecv, Tag: 1, Dur: 5 * sim.Millisecond, Then: func() { doneAt = w.Eng.Now() }},
	}}, nil)
	b.VCPU(0).SetProcess(&seqProc{actions: []Action{
		Compute(40 * sim.Millisecond),
		Send(a, 0, 1, 64),
	}}, nil)
	w.Start()
	w.RunUntil(sim.Second)
	if doneAt < 40*sim.Millisecond {
		t.Fatalf("doneAt = %v, want after the 40ms hog", doneAt)
	}
	if got := a.VCPU(0).RunTime(); got > 10*sim.Millisecond {
		t.Errorf("receiver runtime = %v, want ≈ 5ms budget (blocked after it)", got)
	}
	w.MustAudit()
}

func TestPreemptAPIOnIdlePCPU(t *testing.T) {
	w := testWorld(t, 1, 1, 30*sim.Millisecond)
	w.Start()
	w.RunUntil(50 * sim.Millisecond)
	p := w.Node(0).PCPUs()[0]
	p.Preempt() // idle: must just schedule a dispatch, not panic
	w.RunUntil(60 * sim.Millisecond)
	w.MustAudit()
}

func TestAccessorsAndAudit(t *testing.T) {
	w := testWorld(t, 2, 2, 30*sim.Millisecond)
	n := w.Node(1)
	if n.ID() != 1 || n.World() != w || n.Engine() != w.Eng {
		t.Error("node accessors wrong")
	}
	if n.Scheduler() == nil || len(n.VMs()) != 0 {
		t.Error("scheduler/VMs accessors wrong")
	}
	vm := n.NewVM("x", ClassParallel, 2, 128<<10, 0.7)
	vm.VCPU(0).SetProcess(&seqProc{actions: []Action{
		Compute(5 * sim.Millisecond),
		Send(vm, 1, 3, 100),
	}}, nil)
	vm.VCPU(1).SetProcess(&seqProc{actions: []Action{Recv(3)}}, nil)
	w.Start()
	w.RunUntil(sim.Second)
	p := n.PCPUs()[0]
	if p.Node() != n || p.Index() != 0 || p.Cache() == nil {
		t.Error("pcpu accessors wrong")
	}
	if p.Current() != nil {
		t.Error("pcpu should be idle at quiescence")
	}
	if n.CtxSwitches() == 0 || n.Wakes() == 0 {
		t.Errorf("ctx=%d wakes=%d", n.CtxSwitches(), n.Wakes())
	}
	if n.LLCMisses() == 0 {
		t.Error("no LLC misses with a 128KiB footprint")
	}
	if n.Backend().Disk() == nil {
		t.Error("backend disk missing")
	}
	if n.Backend().QueueDepth() != 0 {
		t.Errorf("backend queue depth = %d at quiescence", n.Backend().QueueDepth())
	}
	if errs := w.Audit(); len(errs) > 0 {
		t.Fatalf("audit: %v", errs)
	}
}

func TestSpinlockAccessors(t *testing.T) {
	w := testWorld(t, 1, 1, 30*sim.Millisecond)
	vm := w.Node(0).NewVM("x", ClassParallel, 1, 0, 1)
	l := vm.NewLock()
	if l.VM() != vm || l.Holder() != nil {
		t.Error("lock accessors wrong")
	}
	if len(vm.Locks()) != 1 {
		t.Error("Locks() wrong")
	}
	var heldDuring *VCPU
	vm.VCPU(0).SetProcess(&seqProc{actions: []Action{
		Acquire(l),
		{Kind: ActCompute, Work: sim.Millisecond, Then: func() { heldDuring = l.Holder() }},
		Release(l),
	}}, nil)
	w.Start()
	w.RunUntil(sim.Second)
	if heldDuring != vm.VCPU(0) {
		t.Errorf("holder during CS = %v", heldDuring)
	}
	if l.Holder() != nil {
		t.Error("lock still held after release")
	}
}

func TestDiskIOHelper(t *testing.T) {
	a := DiskIO(4096)
	if a.Kind != ActDisk || a.Size != 4096 {
		t.Errorf("DiskIO = %+v", a)
	}
	r := RecvPoll(7, 3*sim.Millisecond)
	if r.Kind != ActRecv || r.Tag != 7 || r.Dur != 3*sim.Millisecond {
		t.Errorf("RecvPoll = %+v", r)
	}
}

func TestProcessFunc(t *testing.T) {
	n := 0
	var p Process = ProcessFunc(func() Action {
		n++
		if n > 2 {
			return Done()
		}
		return Compute(sim.Millisecond)
	})
	if p.Next().Kind != ActCompute {
		t.Error("first action wrong")
	}
	p.Next()
	if p.Next().Kind != ActDone {
		t.Error("done not reached")
	}
}

func TestConfigValidationErrors(t *testing.T) {
	base := DefaultNodeConfig()
	cases := []func(*NodeConfig){
		func(c *NodeConfig) { c.TickInterval = 0 },
		func(c *NodeConfig) { c.SchedPeriod = 0 },
		func(c *NodeConfig) { c.Dom0VCPUs = 0 },
		func(c *NodeConfig) { c.CtxSwitchCost = -1 },
		func(c *NodeConfig) { c.MaxInlineSteps = 0 },
	}
	for i, mut := range cases {
		cfg := base
		mut(&cfg)
		if _, err := NewWorld(1, cfg, defaultNet(), func(n *Node) Scheduler { return &rrSched{slice: 1} }); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestAuditDetectsCorruption(t *testing.T) {
	// Sanity that Audit is not a rubber stamp: hand-corrupt a lock and
	// expect a violation.
	w := testWorld(t, 1, 1, 30*sim.Millisecond)
	vm := w.Node(0).NewVM("x", ClassParallel, 2, 0, 1)
	l := vm.NewLock()
	l.holder = vm.VCPU(0)
	l.granted = vm.VCPU(1)
	if errs := w.Audit(); len(errs) == 0 {
		t.Fatal("audit accepted a lock with both holder and reservation")
	}
}

func defaultNet() netmodel.Config { return netmodel.DefaultConfig() }
