package scenario_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"atcsched/internal/scenario"
)

// examplesDir is the committed scenario gallery shipped with the repo.
const examplesDir = "../../examples/scenarios"

// TestExampleScenariosValidate pins that every committed example file
// loads and validates — the gallery must never rot.
func TestExampleScenariosValidate(t *testing.T) {
	files, err := filepath.Glob(filepath.Join(examplesDir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 5 {
		t.Fatalf("only %d example scenarios found in %s", len(files), examplesDir)
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			f, err := os.Open(file)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			if _, err := scenario.Load(f); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// loadExample builds one committed example scenario.
func loadExample(t *testing.T, name string) *scenario.Result {
	t.Helper()
	f, err := os.Open(filepath.Join(examplesDir, name))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	spec, err := scenario.Load(f)
	if err != nil {
		t.Fatal(err)
	}
	res, err := scenario.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestHeteroExample pins the committed heterogeneous-cluster example:
// CS cluster-wide with a custom spin threshold, node 1 on ATC, node 2
// on plain credit.
func TestHeteroExample(t *testing.T) {
	res := loadExample(t, "hetero.json")
	want := map[int]string{0: "CS", 1: "ATC", 2: "CR"}
	for n, name := range want {
		if got := res.Scenario.World.Node(n).Scheduler().Name(); got != name {
			t.Errorf("node %d scheduler = %s, want %s", n, got, name)
		}
	}
}

// TestFaultsExample runs the committed fault-injection example to
// completion: the plan must be live, injections must actually happen,
// the report must carry the injection row, and the audit must stay
// clean under the faults.
func TestFaultsExample(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario run")
	}
	res := loadExample(t, "faults.json")
	if res.Scenario.FaultPlan() == nil {
		t.Fatal("faults example built without a fault plan")
	}
	table, err := res.Run()
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Scenario.FaultReport()
	if rep.PacketsLost == 0 && rep.SamplesDropped == 0 && rep.SamplesNoised == 0 {
		t.Errorf("no injections recorded: %s", rep)
	}
	if !strings.Contains(table.String(), rep.String()) {
		t.Errorf("report table missing injection row:\n%s", table)
	}
	if errs := res.Scenario.World.Audit(); len(errs) > 0 {
		t.Fatalf("audit under faults: %v", errs[0])
	}
}

// TestPolicySwitchExample runs the committed live-switch example to
// completion: it starts under CR and every node must have flipped to
// ATC by the time the measured work finishes.
func TestPolicySwitchExample(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario run")
	}
	res := loadExample(t, "policy-switch.json")
	if _, err := res.Run(); err != nil {
		t.Fatal(err)
	}
	for _, n := range res.Scenario.World.Nodes() {
		if n.Scheduler().Name() != "ATC" || n.Swaps() != 1 {
			t.Errorf("node %d: scheduler %s, swaps %d; want ATC after one swap",
				n.ID(), n.Scheduler().Name(), n.Swaps())
		}
	}
	if errs := res.Scenario.World.Audit(); len(errs) > 0 {
		t.Fatalf("audit after switch: %v", errs[0])
	}
}

// TestFleetExample runs the committed fleet-flavoured example to
// completion: a mixed-policy 4-node cluster carrying a daemon-crash
// blackout window. The window is inert for in-sim schedulers (they
// actuate locally, not through an external daemon), so the run must
// complete with a clean audit and the expected per-node policies — it
// documents the blackout shape the fleet control plane rides out.
func TestFleetExample(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario run")
	}
	res := loadExample(t, "fleet.json")
	if res.Scenario.FaultPlan() == nil {
		t.Fatal("fleet example built without a fault plan")
	}
	if _, err := res.Run(); err != nil {
		t.Fatal(err)
	}
	want := map[int]string{0: "ATC", 1: "ATC", 2: "CS", 3: "CR"}
	for n, name := range want {
		if got := res.Scenario.World.Node(n).Scheduler().Name(); got != name {
			t.Errorf("node %d scheduler = %s, want %s", n, got, name)
		}
	}
	if errs := res.Scenario.World.Audit(); len(errs) > 0 {
		t.Fatalf("audit: %v", errs[0])
	}
}

// TestDFRSExample runs the committed fractional-share example to
// completion: DFRS cluster-wide, node 2 on the ATC×DFRS hybrid from the
// start, and node 0 live-switched to the hybrid mid-run.
func TestDFRSExample(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario run")
	}
	res := loadExample(t, "dfrs.json")
	if _, err := res.Run(); err != nil {
		t.Fatal(err)
	}
	w := res.Scenario.World
	want := map[int]string{0: "ATCDFRS", 1: "DFRS", 2: "ATCDFRS"}
	for n, name := range want {
		if got := w.Node(n).Scheduler().Name(); got != name {
			t.Errorf("node %d scheduler = %s, want %s", n, got, name)
		}
	}
	if swaps := w.Node(0).Swaps(); swaps != 1 {
		t.Errorf("node 0 swaps = %d, want 1 (the 0.3s live switch)", swaps)
	}
	if swaps := w.Node(1).Swaps(); swaps != 0 {
		t.Errorf("node 1 swaps = %d, want 0", swaps)
	}
	if errs := w.Audit(); len(errs) > 0 {
		t.Fatalf("audit: %v", errs[0])
	}
}
