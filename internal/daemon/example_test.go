package daemon_test

import (
	"fmt"

	"atcsched/internal/core"
	"atcsched/internal/daemon"
	"atcsched/internal/sim"
)

// Example runs the control loop over a three-period trace with a mock
// actuator — the integration shape of a dom0 deployment.
func Example() {
	src := &daemon.SliceSource{Periods: [][]daemon.VMSample{
		{{ID: 1, AvgSpinLatency: 1 * sim.Millisecond, Parallel: true}},
		{{ID: 1, AvgSpinLatency: 2 * sim.Millisecond, Parallel: true}},
		{{ID: 1, AvgSpinLatency: 3 * sim.Millisecond, Parallel: true}},
	}}
	act := &daemon.MapActuator{}
	d := daemon.New(core.DefaultConfig(), src, act)
	if err := d.Run(); err != nil {
		panic(err)
	}
	fmt.Printf("periods=%d slice=%v\n", d.Periods(), act.Last[1])
	// Output: periods=3 slice=12.000ms
}
