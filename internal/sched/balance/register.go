package balance

import (
	"atcsched/internal/sched/registry"
	"atcsched/internal/vmm"
)

func init() {
	registry.Register(registry.Descriptor{
		Kind:        "BS",
		Order:       2,
		Description: "balance scheduling: never queues two sibling VCPUs of one VM on the same PCPU runqueue",
		Defaults:    func() any { o := DefaultOptions(); return &o },
		Build: func(opts any, base registry.Base) (vmm.SchedulerFactory, error) {
			o := *opts.(*Options)
			if err := o.Credit.ApplyOverrides(base.FixedSlice, base.DisableBoost, base.DisableSteal); err != nil {
				return nil, err
			}
			return Factory(o), nil
		},
	})
}
