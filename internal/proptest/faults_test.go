package proptest_test

import (
	"testing"

	"atcsched/internal/fault"
	"atcsched/internal/proptest"
)

// faultSpec is the directed battery scenario: two small clusters plus a
// fault schedule exercising every generated kind — straggler, freeze,
// loss, bandwidth, and all three monitor faults — overlapping the
// measured work.
func faultSpec() proptest.Spec {
	return proptest.Spec{
		Seed:  42,
		Nodes: 2,
		PCPUs: 4,
		Clusters: []proptest.ClusterSpec{
			{Kernel: "lu", Class: "A", VMs: 2, VCPUs: 4, Rounds: 2, Iterations: 4},
			{Kernel: "ep", Class: "A", VMs: 2, VCPUs: 2, Rounds: 2, Iterations: 3},
		},
		HorizonSec: 900,
		Faults: &fault.Spec{Windows: []fault.Window{
			{Kind: fault.PCPUSlow, StartSec: 0.01, DurSec: 0.3, Nodes: []int{0}, Severity: 4},
			{Kind: fault.PCPUFreeze, StartSec: 0.05, DurSec: 0.1, Nodes: []int{1}},
			{Kind: fault.PacketLoss, StartSec: 0.02, DurSec: 0.4, Severity: 0.2},
			{Kind: fault.Bandwidth, StartSec: 0.1, DurSec: 0.3, Severity: 0.4},
			{Kind: fault.MonitorDrop, StartSec: 0.01, DurSec: 0.2, Severity: 0.5},
			{Kind: fault.MonitorNoise, StartSec: 0.1, DurSec: 0.2, Severity: 0.3},
			{Kind: fault.MonitorStale, StartSec: 0.2, DurSec: 0.2, Severity: 0.5},
		}},
	}
}

// TestFaultBattery runs the full property battery — liveness,
// conservation, audits, determinism replay, differential agreement — on
// a scenario with every injectable fault kind live. Loss is modeled as
// delayed retransmission and monitor faults only perturb observations,
// so every property must still hold.
func TestFaultBattery(t *testing.T) {
	runBattery(t, faultSpec())
}

// TestFaultSpecValidates pins that the directed scenario is inside the
// generator's hard bounds (so a bound tightening can't silently skip it).
func TestFaultSpecValidates(t *testing.T) {
	if err := faultSpec().Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestValidateRejectsBadFaults extends the fuzz safety net to the fault
// block.
func TestValidateRejectsBadFaults(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*proptest.Spec)
	}{
		{"unknown fault kind", func(s *proptest.Spec) {
			s.Faults = &fault.Spec{Windows: []fault.Window{{Kind: "meteor", DurSec: 1}}}
		}},
		{"fault past horizon", func(s *proptest.Spec) {
			s.Faults = &fault.Spec{Windows: []fault.Window{
				{Kind: fault.PacketLoss, StartSec: s.HorizonSec, DurSec: 1}}}
		}},
		{"fault node out of range", func(s *proptest.Spec) {
			s.Faults = &fault.Spec{Windows: []fault.Window{
				{Kind: fault.PCPUSlow, DurSec: 1, Nodes: []int{s.Nodes}}}}
		}},
		{"too many fault windows", func(s *proptest.Spec) {
			ws := make([]fault.Window, 9)
			for i := range ws {
				ws[i] = fault.Window{Kind: fault.PacketLoss, DurSec: 1}
			}
			s.Faults = &fault.Spec{Windows: ws}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := proptest.Generate(1, proptest.Bounded())
			tc.mut(&spec)
			if err := spec.Validate(); err == nil {
				t.Fatalf("Validate accepted %+v", spec)
			}
		})
	}
}
