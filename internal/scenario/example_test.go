package scenario_test

import (
	"fmt"
	"strings"

	"atcsched/internal/scenario"
)

// Example runs a minimal declarative scenario: one ep.A cluster under
// ATC (ep has no synchronization, so this completes fast and
// deterministically).
func Example() {
	spec, err := scenario.Load(strings.NewReader(`{
	  "nodes": 1, "pcpusPerNode": 2,
	  "scheduler": {"kind": "ATC"},
	  "virtualClusters": [
	    {"name": "demo", "vms": 1, "vcpus": 2, "kernel": "ep", "class": "A", "rounds": 1}
	  ]
	}`))
	if err != nil {
		panic(err)
	}
	res, err := scenario.Build(spec)
	if err != nil {
		panic(err)
	}
	table, err := res.Run()
	if err != nil {
		panic(err)
	}
	fmt.Println(strings.Contains(table.String(), "demo"))
	// Output: true
}
