// Package trace synthesizes multi-tenant virtual-cluster populations
// from the job-size distribution of the LLNL Atlas cluster trace — the
// paper's Table I — and reproduces the exact 10-virtual-cluster layout
// the paper derives from it for the Figure 11/12 experiments.
package trace

import (
	"fmt"

	"atcsched/internal/rng"
)

// SizeShare is one row of Table I: the fraction of Atlas jobs requesting
// a given processor count.
type SizeShare struct {
	Processors int
	Share      float64
}

// TableI returns the paper's Table I: the distribution of job sizes in
// the LLNL Atlas trace. "Others" aggregates the remaining sizes.
func TableI() []SizeShare {
	return []SizeShare{
		{Processors: 8, Share: 0.314},
		{Processors: 16, Share: 0.126},
		{Processors: 32, Share: 0.045},
		{Processors: 64, Share: 0.126},
		{Processors: 128, Share: 0.061},
		{Processors: 256, Share: 0.045},
		{Processors: 0, Share: 0.283}, // others
	}
}

// VCSpec is one synthesized virtual cluster.
type VCSpec struct {
	Name string
	// VMs is the cluster size in 8-VCPU VMs.
	VMs int
}

// Layout is a full tenant population: virtual clusters plus independent
// single VMs.
type Layout struct {
	Clusters    []VCSpec
	Independent int // count of independent 8-VCPU VMs
}

// TotalVMs returns the VM count of the layout.
func (l Layout) TotalVMs() int {
	n := l.Independent
	for _, c := range l.Clusters {
		n += c.VMs
	}
	return n
}

// PaperLayout returns the exact population of §IV-B2: on 128 8-VCPU VMs,
// one 256-VCPU cluster, two 128-VCPU, three 64-VCPU, one 32-VCPU, three
// 16-VCPU, and thirty independent VMs.
func PaperLayout() Layout {
	return Layout{
		Clusters: []VCSpec{
			{Name: "VC1", VMs: 32},
			{Name: "VC2", VMs: 16},
			{Name: "VC3", VMs: 16},
			{Name: "VC4", VMs: 8},
			{Name: "VC5", VMs: 8},
			{Name: "VC6", VMs: 8},
			{Name: "VC7", VMs: 4},
			{Name: "VC8", VMs: 2},
			{Name: "VC9", VMs: 2},
			{Name: "VC10", VMs: 2},
		},
		Independent: 30,
	}
}

// ScaledLayout shrinks the paper layout proportionally to fit totalVMs
// 8-VCPU VMs (totalVMs >= 8), preserving the size mix: roughly a quarter
// of the VMs are independent and the clusters keep their relative sizes
// with a minimum of 2 VMs.
func ScaledLayout(totalVMs int) (Layout, error) {
	if totalVMs < 8 {
		return Layout{}, fmt.Errorf("trace: need at least 8 VMs, got %d", totalVMs)
	}
	paper := PaperLayout()
	scale := float64(totalVMs) / float64(paper.TotalVMs())
	if scale >= 1 {
		return paper, nil
	}
	out := Layout{Independent: int(float64(paper.Independent)*scale + 0.5)}
	if out.Independent < 1 {
		out.Independent = 1
	}
	budget := totalVMs - out.Independent
	for _, c := range paper.Clusters {
		n := int(float64(c.VMs)*scale + 0.5)
		if n < 2 {
			n = 2
		}
		if n > budget {
			n = budget
		}
		if n >= 2 {
			out.Clusters = append(out.Clusters, VCSpec{Name: c.Name, VMs: n})
			budget -= n
		}
		if budget < 2 {
			break
		}
	}
	out.Independent += budget // return any remainder as independents
	return out, nil
}

// Sample draws a random layout from Table I: it repeatedly samples job
// sizes (in VCPUs, / 8 → VMs; "others" becomes an independent VM) until
// totalVMs are allocated. Deterministic given the source.
func Sample(src *rng.Source, totalVMs int) (Layout, error) {
	if totalVMs < 1 {
		return Layout{}, fmt.Errorf("trace: need at least 1 VM, got %d", totalVMs)
	}
	shares := TableI()
	weights := make([]float64, len(shares))
	for i, s := range shares {
		weights[i] = s.Share
	}
	var out Layout
	budget := totalVMs
	vcID := 0
	for budget > 0 {
		s := shares[src.Choice(weights)]
		vms := s.Processors / 8
		if vms <= 1 { // 8-processor jobs and "others" → independent VM
			out.Independent++
			budget--
			continue
		}
		if vms > budget {
			out.Independent += budget
			budget = 0
			break
		}
		vcID++
		out.Clusters = append(out.Clusters, VCSpec{Name: fmt.Sprintf("VC%d", vcID), VMs: vms})
		budget -= vms
	}
	return out, nil
}
