package atcdfrs

import (
	"fmt"

	"atcsched/internal/sched/registry"
	"atcsched/internal/vmm"
)

func init() {
	registry.Register(registry.Descriptor{
		Kind:      "ATCDFRS",
		Extension: true,
		Description: "ATC×DFRS hybrid: parallel VMs get adaptive time slices, " +
			"non-parallel VMs get demand-driven CPU fractions",
		Defaults: func() any { o := DefaultOptions(); return &o },
		Build: func(opts any, base registry.Base) (vmm.SchedulerFactory, error) {
			o := *opts.(*Options)
			if err := o.DFRS.Credit.ApplyOverrides(base.FixedSlice, base.DisableBoost, base.DisableSteal); err != nil {
				return nil, err
			}
			if o.DFRS.MinQuantum > o.DFRS.Credit.TimeSlice {
				o.DFRS.MinQuantum = o.DFRS.Credit.TimeSlice
			}
			if err := o.DFRS.Validate(); err != nil {
				return nil, err
			}
			// The constructor pins Control.Default to the credit slice;
			// validate the controller config as it will actually run.
			ctl := o.Control
			ctl.Default = o.DFRS.Credit.TimeSlice
			if err := ctl.Validate(); err != nil {
				return nil, fmt.Errorf("atcdfrs: %w", err)
			}
			return Factory(o), nil
		},
	})
}
