package sim

import (
	"context"
	"fmt"
	"runtime/pprof"
	"sort"
	"sync"
	"sync/atomic"
)

// crossEvent is a cross-source event queued for delivery at a future
// synchronization window. Its key (at, src, seq) is a total order that
// does not depend on which goroutine produced it first in wall time.
type crossEvent struct {
	at  Time
	src int
	seq uint64
	dst int
	fn  func()
}

// ShardGroup runs several Engines in lockstep windows of one lookahead
// each, executing the windows on real goroutines — a conservative
// parallel discrete-event core.
//
// The model: the group hosts a set of source domains (in atcsched, one
// per simulated node), each assigned to a shard (engine). Domains only
// influence each other through Post, which guarantees at least one
// lookahead of delay. Execution proceeds over the absolute window grid
// [k·L, (k+1)·L): at each window boundary the pending cross events whose
// timestamps fall inside the next window are sorted by (time, source,
// per-source sequence) and injected into their destination engines, then
// every engine with work runs the window concurrently. Because any event
// Posted during window k lands at or after (k+1)·L, no engine can
// receive an event in its past, and because injection order is a pure
// function of virtual time the execution is byte-identical at any shard
// count — including one.
type ShardGroup struct {
	look    Time
	engines []*Engine
	// shardOf maps a source domain to its shard; seqs holds the per-source
	// Post sequence numbers (the deterministic tie-break).
	shardOf []int
	seqs    []uint64
	// outbox collects the events Posted by each shard during a window
	// segment; only that shard's goroutine appends to its slot.
	outbox [][]crossEvent
	// pending holds collected cross events not yet injected.
	pending []crossEvent
	// now is the group clock; injected is the window-end watermark up to
	// which pending events have been injected; winEnd bounds the Post
	// times the current segment may produce.
	now      Time
	injected Time
	winEnd   Time
	// halt requests a stop; it is checked at segment boundaries only, so
	// the stop point is deterministic in virtual time.
	halt atomic.Bool
	// scratch avoids per-window allocation of the active-shard list.
	scratch []int
	// labels holds per-shard pprof label sets applied to segment
	// goroutines (nil entries: no labels).
	labels []*pprof.LabelSet
	// stats counts synchronization activity; every field is updated on
	// the barrier goroutine only.
	stats SyncStats
}

// SyncStats counts a shard group's synchronization activity. All fields
// are cumulative over the group's lifetime and are maintained on the
// barrier goroutine, so they are deterministic for a deterministic run.
type SyncStats struct {
	// Windows counts lookahead windows whose cross events were injected.
	Windows uint64
	// Segments counts executed segments (at least one engine had work).
	Segments uint64
	// ParallelSegments counts segments that fanned out over goroutines
	// (more than one shard had work).
	ParallelSegments uint64
	// CrossPosted counts cross events collected from shard outboxes.
	CrossPosted uint64
	// CrossInjected counts cross events injected into destination
	// engines at window boundaries.
	CrossInjected uint64
}

// NewShardGroup creates shards engines synchronized at the given
// lookahead (which must be positive — a zero lookahead would serialize
// every event through the barrier).
func NewShardGroup(shards int, lookahead Time) *ShardGroup {
	if shards < 1 {
		panic(fmt.Sprintf("sim: shard group needs at least one shard, got %d", shards))
	}
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: shard group needs a positive lookahead, got %v", lookahead))
	}
	g := &ShardGroup{look: lookahead}
	for i := 0; i < shards; i++ {
		g.engines = append(g.engines, New())
	}
	g.outbox = make([][]crossEvent, shards)
	return g
}

// Shards returns the number of shards.
func (g *ShardGroup) Shards() int { return len(g.engines) }

// Engine returns shard i's engine.
func (g *ShardGroup) Engine(i int) *Engine { return g.engines[i] }

// Lookahead returns the synchronization window length.
func (g *ShardGroup) Lookahead() Time { return g.look }

// Stats returns the group's synchronization counters. Call between
// RunUntil calls (the counters are maintained on the barrier goroutine).
func (g *ShardGroup) Stats() SyncStats { return g.stats }

// SetShardLabels attaches pprof labels (key/value pairs) to shard i's
// segment goroutines, so CPU/mutex profiles of a sharded run attribute
// samples to shards. Call before RunUntil; nil/empty kv clears.
func (g *ShardGroup) SetShardLabels(shard int, kv ...string) {
	if shard < 0 || shard >= len(g.engines) {
		panic(fmt.Sprintf("sim: shard %d out of range [0,%d)", shard, len(g.engines)))
	}
	for len(g.labels) < len(g.engines) {
		g.labels = append(g.labels, nil)
	}
	if len(kv) == 0 {
		g.labels[shard] = nil
		return
	}
	ls := pprof.Labels(kv...)
	g.labels[shard] = &ls
}

// AssignSource registers source domain src on the given shard. Sources
// must be assigned densely from 0 before the first Post or RunUntil.
func (g *ShardGroup) AssignSource(src, shard int) {
	if shard < 0 || shard >= len(g.engines) {
		panic(fmt.Sprintf("sim: shard %d out of range [0,%d)", shard, len(g.engines)))
	}
	for len(g.shardOf) <= src {
		g.shardOf = append(g.shardOf, 0)
		g.seqs = append(g.seqs, 0)
	}
	g.shardOf[src] = shard
}

// Post queues fn to run at absolute time at in dst's engine, attributed
// to source domain src. It must be called from src's shard (or between
// RunUntil calls) and at must be at least one lookahead ahead of the
// running window's start — which any caller adding >= Lookahead() of
// delay to its current engine time satisfies by construction.
func (g *ShardGroup) Post(src, dst int, at Time, fn func()) {
	if src < 0 || src >= len(g.shardOf) || dst < 0 || dst >= len(g.shardOf) {
		panic(fmt.Sprintf("sim: Post with unassigned source/destination %d->%d", src, dst))
	}
	if at < g.winEnd {
		panic(fmt.Sprintf("sim: Post at %v violates lookahead (window ends %v)", at, g.winEnd))
	}
	sh := g.shardOf[src]
	g.outbox[sh] = append(g.outbox[sh], crossEvent{at: at, src: src, seq: g.seqs[src], dst: dst, fn: fn})
	g.seqs[src]++
}

// Now returns the group clock (the time every engine has reached at the
// last barrier).
func (g *ShardGroup) Now() Time { return g.now }

// Executed sums the event counts of all shards.
func (g *ShardGroup) Executed() uint64 {
	var n uint64
	for _, e := range g.engines {
		n += e.executed
	}
	return n
}

// Pending sums the queued events of all shards plus undelivered cross
// events.
func (g *ShardGroup) Pending() int {
	n := len(g.pending)
	for _, e := range g.engines {
		n += e.Pending()
	}
	for _, ob := range g.outbox {
		n += len(ob)
	}
	return n
}

// RequestStop asks RunUntil to return at the next segment boundary. Safe
// to call from any shard's callbacks; the stop lands at a point that is
// a pure function of virtual time, so stopped runs stay deterministic.
func (g *ShardGroup) RequestStop() { g.halt.Store(true) }

// Resume clears a previous RequestStop.
func (g *ShardGroup) Resume() { g.halt.Store(false) }

// Stopped reports whether a stop request is in force.
func (g *ShardGroup) Stopped() bool { return g.halt.Load() }

// collect drains every shard's outbox into pending (barrier-side only).
func (g *ShardGroup) collect() {
	for sh := range g.outbox {
		if len(g.outbox[sh]) > 0 {
			g.stats.CrossPosted += uint64(len(g.outbox[sh]))
			g.pending = append(g.pending, g.outbox[sh]...)
			g.outbox[sh] = g.outbox[sh][:0]
		}
	}
}

// inject sorts the pending cross events and schedules those with
// timestamps before wEnd into their destination engines. Injection in
// sorted (at, src, seq) order assigns engine sequence numbers — and thus
// same-instant execution order — deterministically.
func (g *ShardGroup) inject(wEnd Time) {
	if len(g.pending) == 0 {
		return
	}
	sort.Slice(g.pending, func(i, j int) bool {
		a, b := &g.pending[i], &g.pending[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.seq < b.seq
	})
	n := 0
	for ; n < len(g.pending) && g.pending[n].at < wEnd; n++ {
		ev := g.pending[n]
		g.engines[g.shardOf[ev.dst]].At(ev.at, ev.fn)
	}
	if n > 0 {
		g.stats.CrossInjected += uint64(n)
		g.pending = append(g.pending[:0], g.pending[n:]...)
	}
}

// earliest returns the earliest actionable timestamp across all engines
// and pending cross events (false when everything is drained).
func (g *ShardGroup) earliest() (Time, bool) {
	var min Time
	has := false
	for _, e := range g.engines {
		if at, ok := e.NextEventAt(); ok && (!has || at < min) {
			min, has = at, true
		}
	}
	for i := range g.pending {
		if at := g.pending[i].at; !has || at < min {
			min, has = at, true
		}
	}
	return min, has
}

// runSegment runs every engine to segEnd. Engines with no events in the
// segment only need their clocks advanced; when more than one engine has
// real work the segment fans out over goroutines (labelled for pprof
// attribution when SetShardLabels was called).
func (g *ShardGroup) runSegment(segEnd Time) {
	active := g.scratch[:0]
	for i, e := range g.engines {
		if at, ok := e.NextEventAt(); ok && at <= segEnd {
			active = append(active, i)
		}
	}
	g.scratch = active[:0] // retain capacity
	g.stats.Segments++
	if len(active) <= 1 {
		for _, e := range g.engines {
			e.RunUntil(segEnd)
		}
		return
	}
	g.stats.ParallelSegments++
	var wg sync.WaitGroup
	for _, i := range active {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e := g.engines[i]
			if i < len(g.labels) && g.labels[i] != nil {
				pprof.Do(context.Background(), *g.labels[i], func(context.Context) {
					e.RunUntil(segEnd)
				})
				return
			}
			e.RunUntil(segEnd)
		}(i)
	}
	wg.Wait()
	for _, e := range g.engines {
		if e.now < segEnd {
			e.RunUntil(segEnd) // idle engines: clock advance only
		}
	}
}

// RunUntil drives all shards to virtual time t, synchronizing at every
// window boundary. It returns early when RequestStop was observed at a
// segment boundary; engine clocks are aligned to Now() on return.
func (g *ShardGroup) RunUntil(t Time) {
	for g.now < t && !g.halt.Load() {
		wEnd := (g.now/g.look + 1) * g.look
		if g.injected < wEnd {
			g.inject(wEnd)
			g.injected = wEnd
			g.stats.Windows++
		}
		segEnd := wEnd
		if segEnd > t {
			segEnd = t
		}
		if next, ok := g.earliest(); !ok || next > segEnd {
			// Nothing fires in this segment: skip ahead to the window
			// holding the next event (or to t) without spinning barriers
			// through dead time.
			if !ok || next > t {
				g.now = t
			} else {
				g.now = (next / g.look) * g.look
			}
			continue
		}
		g.winEnd = wEnd
		g.runSegment(segEnd)
		g.now = segEnd
		g.collect()
	}
	for _, e := range g.engines {
		if e.now < g.now {
			e.RunUntil(g.now)
		}
	}
}
