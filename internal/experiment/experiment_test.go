package experiment

import (
	"sort"
	"strconv"
	"strings"
	"testing"

	"atcsched/internal/sim"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig1", "fig2", "fig5", "fig8", "euclid", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "tab1", "sens", "score", "ablate", "switch", "faults", "scale", "dfrs", "fleet"}
	all := All()
	have := map[string]bool{}
	for _, e := range all {
		have[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Errorf("%s: incomplete registration", e.ID)
		}
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("missing experiment %s", id)
		}
	}
	if len(all) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(all), len(want))
	}
}

func TestByID(t *testing.T) {
	if _, err := ByID("fig10"); err != nil {
		t.Error(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestScaleByName(t *testing.T) {
	for _, n := range []string{"small", "medium", "full"} {
		sc, err := ScaleByName(n)
		if err != nil || sc.Name != n {
			t.Errorf("%s: %v %v", n, sc.Name, err)
		}
	}
	if _, err := ScaleByName("huge"); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestScalesAreOrdered(t *testing.T) {
	if !(len(Small.NodeSteps) <= len(Medium.NodeSteps) && len(Medium.NodeSteps) <= len(Full.NodeSteps)) {
		t.Error("node steps not monotone across scales")
	}
	if !(Small.Rounds <= Medium.Rounds && Medium.Rounds <= Full.Rounds) {
		t.Error("rounds not monotone")
	}
	if Full.MixNodes != 32 {
		t.Errorf("full MixNodes = %d, want the paper's 32", Full.MixNodes)
	}
	if Full.Rounds != 10 {
		t.Errorf("full Rounds = %d, want the paper's 10", Full.Rounds)
	}
}

func TestIterCount(t *testing.T) {
	if got := iterCount(50, 0.5); got != 25 {
		t.Errorf("iterCount = %d", got)
	}
	if got := iterCount(4, 0.1); got != 3 {
		t.Errorf("floor = %d, want 3", got)
	}
}

// parseNorm extracts the float in a table cell.
func parseNorm(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "s"), 64)
	if err != nil {
		t.Fatalf("bad cell %q: %v", cell, err)
	}
	return v
}

func TestTab1SmallRuns(t *testing.T) {
	e, _ := ByID("tab1")
	tables, err := e.Run(Small, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("tables = %d", len(tables))
	}
	if len(tables[0].Rows) != 7 {
		t.Errorf("Table I rows = %d", len(tables[0].Rows))
	}
}

func TestFig1ShapeSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario run")
	}
	e, _ := ByID("fig1")
	tables, err := e.Run(Small, 1)
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	if len(tb.Rows) != len(Small.NodeSteps) {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// CS must beat CR at every size (normalized < 1).
	for _, row := range tb.Rows {
		if norm := parseNorm(t, row[3]); norm >= 1 {
			t.Errorf("CS normalized = %v at %s nodes, want < 1", norm, row[0])
		}
	}
}

func TestFig5ShapeSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario run")
	}
	e, _ := ByID("fig5")
	tables, err := e.Run(Small, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range tables {
		first := parseNorm(t, tb.Rows[0][1])
		last := parseNorm(t, tb.Rows[len(tb.Rows)-1][1])
		if last >= first {
			t.Errorf("%s: exec at shortest slice %v >= at 30ms %v", tb.Title, last, first)
		}
		// The Pearson note must report a strong positive correlation.
		found := false
		for _, n := range tb.Notes {
			if strings.Contains(n, "Pearson") {
				found = true
				var r float64
				if _, err := fmt_sscan(n, &r); err == nil && r < 0.8 {
					t.Errorf("%s: Pearson %v < 0.8", tb.Title, r)
				}
			}
		}
		if !found {
			t.Errorf("%s: no Pearson note", tb.Title)
		}
	}
}

// fmt_sscan pulls the first float out of a Pearson note.
func fmt_sscan(note string, out *float64) (int, error) {
	i := strings.Index(note, "= ")
	if i < 0 {
		return 0, strconv.ErrSyntax
	}
	rest := note[i+2:]
	j := strings.IndexAny(rest, " (")
	if j < 0 {
		j = len(rest)
	}
	v, err := strconv.ParseFloat(rest[:j], 64)
	if err != nil {
		return 0, err
	}
	*out = v
	return 1, nil
}

func TestFig10ATCBeatsCR(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario run")
	}
	// Just one kernel at the smallest step to keep the test quick.
	cr, err := typeAExec(Small, "CR", "lu", 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	atcT, err := typeAExec(Small, "ATC", "lu", 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	gain := cr / atcT
	if gain < 1.5 {
		t.Errorf("ATC gain = %.2fx, want >= 1.5x (paper: 1.5-10x)", gain)
	}
}

func TestEuclidPicksShortSlice(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario run")
	}
	e, _ := ByID("euclid")
	tables, err := e.Run(Small, 1)
	if err != nil {
		t.Fatal(err)
	}
	note := tables[0].Notes[0]
	if !strings.Contains(note, "threshold") {
		t.Fatalf("unexpected note %q", note)
	}
	// The chosen threshold must be one of the short candidates (sub-ms).
	if strings.Contains(note, "30.000ms") {
		t.Errorf("optimizer picked the 30ms baseline: %q", note)
	}
}

func TestPlacerDistinctNodes(t *testing.T) {
	p := newPlacer(4)
	got := p.forVC(4)
	seen := map[int]bool{}
	for _, n := range got {
		if seen[n] {
			t.Fatalf("node %d reused in %v", n, got)
		}
		seen[n] = true
	}
	// Larger than node count: wraps but stays balanced.
	q := newPlacer(2)
	nodes := q.forVC(6)
	count := map[int]int{}
	for _, n := range nodes {
		count[n]++
	}
	if count[0] != 3 || count[1] != 3 {
		t.Errorf("unbalanced wrap: %v", count)
	}
	// one() always picks the least-loaded.
	r := newPlacer(3)
	r.load[0], r.load[1], r.load[2] = 5, 1, 3
	if r.one() != 1 {
		t.Error("one() not least-loaded")
	}
}

func TestMixedLayoutDeterministic(t *testing.T) {
	l1, k1, err := mixedLayout(Small, 9)
	if err != nil {
		t.Fatal(err)
	}
	l2, k2, err := mixedLayout(Small, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(k1) != len(l1.Clusters) {
		t.Fatalf("kernels %d vs clusters %d", len(k1), len(l1.Clusters))
	}
	for i := range k1 {
		if k1[i] != k2[i] {
			t.Error("kernel assignment not deterministic")
		}
	}
	if l1.TotalVMs() != l2.TotalVMs() {
		t.Error("layout not deterministic")
	}
}

func TestMsHelper(t *testing.T) {
	if ms(0.3) != 300*sim.Microsecond {
		t.Errorf("ms(0.3) = %v", ms(0.3))
	}
}

func TestAblateSmallRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario run")
	}
	e, _ := ByID("ablate")
	tables, err := e.Run(Small, 1)
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	if len(tb.Rows) != 7 {
		t.Fatalf("rows = %d, want 7 variants", len(tb.Rows))
	}
	// The no-clamp variant must be measurably worse than full ATC.
	noClamp := parseNorm(t, tb.Rows[1][2])
	if noClamp < 1.2 {
		t.Errorf("no-clamp ablation = %v, want clearly > 1 (§III-B pathology)", noClamp)
	}
}

func TestSensSmallRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario run")
	}
	e, _ := ByID("sens")
	tables, err := e.Run(Small, 1)
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	if len(tb.Rows) != 8 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Every perturbation keeps the headline gain above 1.5x.
	for _, row := range tb.Rows {
		if g := parseNorm(t, row[1]); g < 1.5 {
			t.Errorf("%s: gain %v < 1.5", row[0], g)
		}
	}
}

func TestFig11ShapeSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario run")
	}
	e, _ := ByID("fig11")
	tables, err := e.Run(Small, 1)
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	// Median ATC normalized time across VCs must beat CR (1.0) clearly;
	// use only VC rows (skip INDn, which are tiny and noisy).
	var atcVals []float64
	for _, row := range tb.Rows {
		if strings.HasPrefix(row[0], "VC") {
			atcVals = append(atcVals, parseNorm(t, row[5]))
		}
	}
	if len(atcVals) < 3 {
		t.Fatalf("VC rows = %d", len(atcVals))
	}
	sort.Float64s(atcVals)
	med := atcVals[len(atcVals)/2]
	if med > 0.7 {
		t.Errorf("median ATC normalized time = %v, want < 0.7", med)
	}
}

func TestMixedShapeSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario run")
	}
	r, err := mixedNonparallel(Small, 1)
	if err != nil {
		t.Fatal(err)
	}
	// fig13 row 0 = web; its CS column must be well below 1 while both
	// ATC variants stay near 1.
	webCS, ok := cellFloat(r.ioApps, 0, 3)
	if !ok {
		t.Fatal("cannot parse web/CS")
	}
	if webCS > 0.8 {
		t.Errorf("web under CS = %v, want clearly degraded", webCS)
	}
	atc30, _ := cellFloat(r.ioApps, 0, 7)
	if atc30 < 0.9 || atc30 > 1.1 {
		t.Errorf("web under ATC(30ms) = %v, want ~1", atc30)
	}
	// fig14: every approach's CPU-job performance within a sane band.
	for ri := range r.cpuApps.Rows {
		for ci := 2; ci < len(r.cpuApps.Headers); ci++ {
			v, ok := cellFloat(r.cpuApps, ri, ci)
			if ok && (v < 0.6 || v > 1.4) {
				t.Errorf("cpu row %d col %d = %v out of band", ri, ci, v)
			}
		}
	}
}

func TestScoreSmallPassesMost(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario run")
	}
	e, _ := ByID("score")
	tables, err := e.Run(Small, 1)
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	pass := 0
	for _, row := range tb.Rows {
		if row[3] == "PASS" {
			pass++
		}
	}
	if pass < 9 {
		t.Errorf("scorecard: %d/%d passed, want >= 9", pass, len(tb.Rows))
	}
}
