package dss_test

import (
	"testing"

	"atcsched/internal/sched/dss"
	"atcsched/internal/sim"
	"atcsched/internal/vmm"
	"atcsched/internal/vmmtest"
)

func TestIOHeavyVMGetsShortSlice(t *testing.T) {
	opts := dss.DefaultOptions()
	w := vmmtest.World(2, 1, dss.Factory(opts))
	n0, n1 := w.Node(0), w.Node(1)
	pinger := n0.NewVM("pinger", vmm.ClassNonParallel, 1, 0, 1)
	echo := n1.NewVM("echo", vmm.ClassNonParallel, 1, 0, 1)
	// Ping-pong generates a steady stream of I/O wakes on both sides.
	vmmtest.Loop(pinger.VCPU(0),
		vmm.Send(echo, 0, 1, 64),
		vmm.Recv(2),
	)
	vmmtest.Loop(echo.VCPU(0),
		vmm.Recv(1),
		vmm.Send(pinger, 0, 2, 64),
	)
	hog := n0.NewVM("hog", vmm.ClassNonParallel, 1, 0, 1)
	vmmtest.Loop(hog.VCPU(0), vmm.Compute(sim.Second))
	w.Start()
	w.RunUntil(2 * sim.Second)
	s := n0.Scheduler().(*dss.Scheduler)
	if got := s.CurrentSlice(pinger); got >= opts.Credit.TimeSlice {
		t.Errorf("I/O-heavy VM slice = %v, want a short tier", got)
	}
	if got := s.CurrentSlice(hog); got != opts.Credit.TimeSlice {
		t.Errorf("CPU-bound VM slice = %v, want default", got)
	}
}

func TestTierBoundaries(t *testing.T) {
	// Drive the tier table directly through simulated wake rates.
	opts := dss.DefaultOptions()
	opts.Smoothing = 1 // no EMA, direct mapping
	w := vmmtest.World(1, 1, dss.Factory(opts))
	node := w.Node(0)
	vm := node.NewVM("x", vmm.ClassNonParallel, 1, 0, 1)
	// A disk-I/O hammer: each tiny request completes after ~0.4 ms of
	// positioning → ~70 I/O events per 30 ms period → the 5 ms tier
	// (rate 10..100). Timer wakes deliberately don't count as I/O.
	vmmtest.Loop(vm.VCPU(0), vmm.DiskIO(0))
	w.Start()
	w.RunUntil(sim.Second)
	s := node.Scheduler().(*dss.Scheduler)
	if got := s.CurrentSlice(vm); got != 5*sim.Millisecond {
		t.Errorf("slice = %v, want 5ms tier for ~70 events/period", got)
	}
}

func TestValidation(t *testing.T) {
	w := vmmtest.World(1, 1, dss.Factory(dss.DefaultOptions()))
	node := w.Node(0)
	bad := dss.DefaultOptions()
	bad.Smoothing = 0
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero smoothing accepted")
			}
		}()
		dss.New(node, bad)
	}()
	unsorted := dss.DefaultOptions()
	unsorted.Tiers = []dss.Tier{{MinRate: 1, Slice: sim.Millisecond}, {MinRate: 10, Slice: sim.Millisecond}}
	defer func() {
		if recover() == nil {
			t.Error("unsorted tiers accepted")
		}
	}()
	dss.New(node, unsorted)
}

func TestName(t *testing.T) {
	w := vmmtest.World(1, 1, dss.Factory(dss.DefaultOptions()))
	if got := w.Node(0).Scheduler().Name(); got != "DSS" {
		t.Errorf("Name = %q", got)
	}
}
