package vmm

import (
	"fmt"
	"strconv"

	"atcsched/internal/sim"
	"atcsched/internal/telemetry"
)

// nodeTel is one node's telemetry state: the node's registry plus the
// previous lifetime counter values, so period-boundary sampling can
// publish per-period deltas without consuming the scheduler-facing
// period accumulators (SpinMonitor.SamplePeriod and friends stay
// untouched — telemetry must never perturb the control loop's inputs).
type nodeTel struct {
	reg *telemetry.Registry
	lab telemetry.Label

	prevDispatch uint64
	prevPreempt  uint64
	prevBlock    uint64
	prevWake     uint64
	prevSteal    uint64

	perVM []vmTel // indexed like n.vms
}

// vmTel tracks one VM's previous lifetime spin totals.
type vmTel struct {
	lab           telemetry.Label
	prevSpinSum   sim.Time
	prevSpinCount int64
}

// stealer is implemented by schedulers that count work stealing (the
// credit scheduler's Steal option).
type stealer interface{ Steals() uint64 }

// vmState returns guest i's sampling state, growing the slice lazily
// (VMs may be created after SetTelemetry).
func (t *nodeTel) vmState(n *Node, i int) *vmTel {
	for len(t.perVM) <= i {
		j := len(t.perVM)
		t.perVM = append(t.perVM, vmTel{lab: telemetry.Label{Node: n.id, VM: n.vms[j].name}})
	}
	return &t.perVM[i]
}

// SetTelemetry attaches a telemetry plane to the world (nil detaches).
// Attach before Start to capture the whole run. Each node publishes into
// its own plane registry — mirroring the per-node tracer rings — so
// shards never contend on shared state. Telemetry is strictly
// observational: attaching a plane never changes a run's results.
func (w *World) SetTelemetry(p *telemetry.Plane) {
	w.telemetry = p
	for _, n := range w.nodes {
		if p == nil {
			n.tel = nil
			continue
		}
		n.tel = &nodeTel{reg: p.Node(n.id), lab: telemetry.Label{Node: n.id}}
		// Shard labels for pprof attribution ride along with telemetry:
		// label this node's shard with its id and policy.
		if w.group != nil {
			sh := n.id * w.group.Shards() / len(w.nodes)
			w.group.SetShardLabels(sh,
				"shard", strconv.Itoa(sh),
				"node", strconv.Itoa(n.id),
				"policy", n.sched.Name(),
			)
		}
	}
}

// Telemetry returns the attached plane (nil when none).
func (w *World) Telemetry() *telemetry.Plane { return w.telemetry }

// TelemetryRegistry returns the node's telemetry registry (nil when the
// world has no plane attached) — the publish point for subsystems that
// hold a *Node, like the workload layer's BSP round spans.
func (n *Node) TelemetryRegistry() *telemetry.Registry {
	if n.tel == nil {
		return nil
	}
	return n.tel.reg
}

// sampleTelemetry publishes one period's worth of per-node and per-VM
// series. Called from the node's period timer (after the scheduler's
// accounting pass) only when a plane is attached.
func (n *Node) sampleTelemetry() {
	t := n.tel
	now := n.eng.Now()

	var disp uint64
	for _, p := range n.pcpus {
		disp += p.dispatches
	}
	t.reg.Point("node_dispatches", t.lab, now, float64(disp-t.prevDispatch))
	t.prevDispatch = disp
	t.reg.Point("node_preempts", t.lab, now, float64(n.preempts-t.prevPreempt))
	t.prevPreempt = n.preempts
	t.reg.Point("node_blocks", t.lab, now, float64(n.blocks-t.prevBlock))
	t.prevBlock = n.blocks
	t.reg.Point("node_wakes", t.lab, now, float64(n.wakes-t.prevWake))
	t.prevWake = n.wakes
	if st, ok := n.sched.(stealer); ok {
		s := st.Steals()
		if s < t.prevSteal {
			t.prevSteal = 0 // the counter restarted (policy swap)
		}
		t.reg.Point("node_steals", t.lab, now, float64(s-t.prevSteal))
		t.prevSteal = s
	}

	for i, vm := range n.vms {
		vt := t.vmState(n, i)
		sum, cnt := vm.SpinMon.LifetimeSum(), vm.SpinMon.LifetimeCount()
		var mean float64
		if dc := cnt - vt.prevSpinCount; dc > 0 {
			mean = float64(sum-vt.prevSpinSum) / float64(dc)
		}
		t.reg.Point("vm_spin_latency_ns", vt.lab, now, mean)
		vt.prevSpinSum, vt.prevSpinCount = sum, cnt
		if vm.curSlice > 0 {
			t.reg.Point("vm_slice_ns", vt.lab, now, float64(vm.curSlice))
		}
	}
}

// FinalizeTelemetry publishes end-of-run totals (lifetime counters,
// shard sync stats) into the attached plane. Call after the run; no-op
// without a plane.
func (w *World) FinalizeTelemetry() {
	if w.telemetry == nil {
		return
	}
	for _, n := range w.nodes {
		reg, lab := n.tel.reg, n.tel.lab
		var disp uint64
		for _, p := range n.pcpus {
			disp += p.dispatches
		}
		reg.SetCount("sched_dispatches", lab, disp)
		reg.SetCount("sched_preempts", lab, n.preempts)
		reg.SetCount("sched_blocks", lab, n.blocks)
		reg.SetCount("sched_wakes", lab, n.wakes)
		reg.SetCount("sched_ctx_switches", lab, n.CtxSwitches())
		reg.SetCount("sched_swaps", lab, n.swaps)
		if st, ok := n.sched.(stealer); ok {
			reg.SetCount("sched_steals", lab, st.Steals())
		}
		for i, vm := range n.vms {
			vlab := n.tel.vmState(n, i).lab
			reg.SetCount("vm_spin_acquisitions", vlab, uint64(vm.SpinMon.LifetimeCount()))
			reg.SetCount("vm_packets_sent", vlab, vm.sent)
			reg.SetCount("vm_packets_received", vlab, vm.received)
			reg.SetCount("vm_io_wakes", vlab, vm.ioWakes)
			reg.SetGauge("vm_spin_wait_total_ns", vlab, float64(vm.spinWaitTotal))
			reg.SetGauge("vm_run_time_ns", vlab, float64(vm.RunTime()))
		}
	}
	if w.group != nil {
		st := w.group.Stats()
		g, lab := w.telemetry.Global(), telemetry.GlobalLabel()
		g.SetCount("shard_sync_windows", lab, st.Windows)
		g.SetCount("shard_sync_segments", lab, st.Segments)
		g.SetCount("shard_sync_parallel_segments", lab, st.ParallelSegments)
		g.SetCount("shard_cross_posted", lab, st.CrossPosted)
		g.SetCount("shard_cross_injected", lab, st.CrossInjected)
	}
}

// TelemetryEvents renders the world's trace records as neutral
// telemetry.SchedEvent values for the Perfetto exporter. Returns nil
// when no tracer is attached.
func (w *World) TelemetryEvents() []telemetry.SchedEvent {
	recs := w.TraceRecords()
	if recs == nil {
		return nil
	}
	out := make([]telemetry.SchedEvent, len(recs))
	for i, r := range recs {
		out[i] = telemetry.SchedEvent{
			At: r.At, Kind: r.Kind.String(), Node: r.Node,
			PCPU: r.PCPU, VM: r.VM, VCPU: r.VCPU, Arg: r.Arg,
		}
	}
	return out
}

// telSpin publishes one contended spin episode (histogram observation
// plus a span on the VCPU's lane). Called from the spinlock's
// finishAcquire with the lock's node telemetry already nil-checked.
func (t *nodeTel) telSpin(vm *VM, v *VCPU, start, end sim.Time) {
	lab := telemetry.Label{Node: vm.node.id, VM: vm.name}
	t.reg.Observe("spin_latency", lab, end-start)
	t.reg.AddSpan(telemetry.Span{
		Name:  "spin",
		Track: fmt.Sprintf("%s/%d", vm.name, v.idx),
		Node:  vm.node.id,
		Start: start,
		End:   end,
		Value: end - start,
	})
}
