package credit_test

import (
	"testing"

	"atcsched/internal/sched/credit"
	"atcsched/internal/sim"
	"atcsched/internal/vmm"
	"atcsched/internal/vmmtest"
)

// TestShareProportions pins the fractional supply path: two CPU hogs on
// one PCPU with pinned shares 0.75 / 0.20 must split runtime roughly by
// their fractions, not by weight.
func TestShareProportions(t *testing.T) {
	opts := credit.DefaultOptions()
	opts.TimeSlice = 5 * sim.Millisecond
	w := world(t, 1, 1, opts)
	node := w.Node(0)
	vmA := node.NewVM("a", vmm.ClassNonParallel, 1, 0, 1)
	vmB := node.NewVM("b", vmm.ClassNonParallel, 1, 0, 1)
	s := node.Scheduler().(*credit.Scheduler)
	s.SetShare(vmA, 0.75)
	s.SetShare(vmB, 0.20)
	vmmtest.Loop(vmA.VCPU(0), vmm.Compute(100*sim.Millisecond))
	vmmtest.Loop(vmB.VCPU(0), vmm.Compute(100*sim.Millisecond))
	w.Start()
	w.RunUntil(3 * sim.Second)
	ratio := float64(vmA.RunTime()) / float64(vmB.RunTime())
	if ratio < 2.5 || ratio > 6 {
		t.Errorf("runtime ratio = %.2f, want ~3.75 (a=%v b=%v)", ratio, vmA.RunTime(), vmB.RunTime())
	}
}

// TestShareAndWeightPoolsCoexist: a VM pinned at half the node leaves
// the other half to the weighted pool, which splits it evenly between
// the two remaining hogs.
func TestShareAndWeightPoolsCoexist(t *testing.T) {
	opts := credit.DefaultOptions()
	opts.TimeSlice = 5 * sim.Millisecond
	w := world(t, 1, 1, opts)
	node := w.Node(0)
	pinned := node.NewVM("pinned", vmm.ClassNonParallel, 1, 0, 1)
	wa := node.NewVM("wa", vmm.ClassNonParallel, 1, 0, 1)
	wb := node.NewVM("wb", vmm.ClassNonParallel, 1, 0, 1)
	s := node.Scheduler().(*credit.Scheduler)
	s.SetShare(pinned, 0.5)
	for _, vm := range []*vmm.VM{pinned, wa, wb} {
		vmmtest.Loop(vm.VCPU(0), vmm.Compute(100*sim.Millisecond))
	}
	w.Start()
	w.RunUntil(4 * sim.Second)
	rp, ra, rb := pinned.RunTime().Seconds(), wa.RunTime().Seconds(), wb.RunTime().Seconds()
	if rp < 1.4 || rp > 2.6 {
		t.Errorf("pinned runtime = %.2fs of 4s, want ~2s", rp)
	}
	if ra < 0.6 || ra > 1.6 || rb < 0.6 || rb > 1.6 {
		t.Errorf("weighted runtimes = %.2fs / %.2fs, want ~1s each", ra, rb)
	}
}

// TestClearShareReturnsToWeightedPool: after ClearShare the VM is back
// on equal weights and the runtime gap closes.
func TestClearShareReturnsToWeightedPool(t *testing.T) {
	opts := credit.DefaultOptions()
	opts.TimeSlice = 5 * sim.Millisecond
	w := world(t, 1, 1, opts)
	node := w.Node(0)
	vmA := node.NewVM("a", vmm.ClassNonParallel, 1, 0, 1)
	vmB := node.NewVM("b", vmm.ClassNonParallel, 1, 0, 1)
	s := node.Scheduler().(*credit.Scheduler)
	s.SetShare(vmA, 0.9)
	s.SetShare(vmB, 0.1)
	if f, ok := s.Share(vmA); !ok || f != 0.9 {
		t.Fatalf("Share(a) = %v,%v, want 0.9,true", f, ok)
	}
	vmmtest.Loop(vmA.VCPU(0), vmm.Compute(100*sim.Millisecond))
	vmmtest.Loop(vmB.VCPU(0), vmm.Compute(100*sim.Millisecond))
	w.Start()
	w.RunUntil(2 * sim.Second)
	aAt2, bAt2 := vmA.RunTime(), vmB.RunTime()
	if float64(aAt2)/float64(bAt2) < 3 {
		t.Fatalf("shares not enforced before clear: a=%v b=%v", aAt2, bAt2)
	}
	s.ClearShare(vmA)
	s.ClearShare(vmB)
	w.RunUntil(6 * sim.Second)
	da, db := (vmA.RunTime() - aAt2).Seconds(), (vmB.RunTime() - bAt2).Seconds()
	if da/db > 1.5 || db/da > 1.5 {
		t.Errorf("post-clear split %.2fs vs %.2fs, want ~equal", da, db)
	}
}

// TestSetShareRejectsBadFractions: shares outside [0,1] panic like the
// other constructor misuse guards.
func TestSetShareRejectsBadFractions(t *testing.T) {
	w := world(t, 1, 1, credit.DefaultOptions())
	node := w.Node(0)
	vm := node.NewVM("x", vmm.ClassNonParallel, 1, 0, 1)
	s := node.Scheduler().(*credit.Scheduler)
	for _, bad := range []float64{-0.1, 1.01} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("share %v accepted", bad)
				}
			}()
			s.SetShare(vm, bad)
		}()
	}
}

// TestOvercommittedSharesSqueeze: shares summing above 1 are scaled
// down proportionally rather than minting extra supply; the 2:1 ratio
// between the VMs survives the squeeze.
func TestOvercommittedSharesSqueeze(t *testing.T) {
	opts := credit.DefaultOptions()
	opts.TimeSlice = 5 * sim.Millisecond
	w := world(t, 1, 1, opts)
	node := w.Node(0)
	vmA := node.NewVM("a", vmm.ClassNonParallel, 1, 0, 1)
	vmB := node.NewVM("b", vmm.ClassNonParallel, 1, 0, 1)
	s := node.Scheduler().(*credit.Scheduler)
	s.SetShare(vmA, 1.0)
	s.SetShare(vmB, 0.5)
	vmmtest.Loop(vmA.VCPU(0), vmm.Compute(100*sim.Millisecond))
	vmmtest.Loop(vmB.VCPU(0), vmm.Compute(100*sim.Millisecond))
	w.Start()
	w.RunUntil(3 * sim.Second)
	ratio := float64(vmA.RunTime()) / float64(vmB.RunTime())
	if ratio < 1.4 || ratio > 3 {
		t.Errorf("runtime ratio = %.2f, want ~2 under proportional squeeze", ratio)
	}
}
