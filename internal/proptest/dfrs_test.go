package proptest

import (
	"testing"

	"atcsched/internal/cluster"
	"atcsched/internal/fault"
)

// dfrsKinds are the fractional-share family added by the DFRS PR; the
// battery below pins both through every equivalence axis.
var dfrsKinds = []cluster.Approach{cluster.DFRS, cluster.ATCDFRS}

// dfrsEquivSpec is the pinned fractional-share scenario: four nodes,
// parallel clusters striped across them (so the hybrid's ATC plane has
// spinning tenants), demand-diverse non-parallel jobs (the fraction
// pool), one node heterogeneous on the sibling fractional kind, a live
// swap to the sibling kind mid-run, and faults touching the compute,
// network and monitor planes.
func dfrsEquivSpec(kind cluster.Approach) Spec {
	other := string(cluster.ATCDFRS)
	if kind == cluster.ATCDFRS {
		other = string(cluster.DFRS)
	}
	return Spec{
		Seed:  11,
		Nodes: 4,
		PCPUs: 2,
		Clusters: []ClusterSpec{
			{Kernel: "lu", Class: "A", VMs: 4, VCPUs: 2, Rounds: 2, Iterations: 3},
			{Kernel: "ep", Class: "A", VMs: 2, VCPUs: 2, Rounds: 2, Iterations: 2},
		},
		Jobs: []JobSpec{
			{Type: "web", Node: 0},
			{Type: "disk", Node: 2},
			{Type: "ping", Node: 3},
		},
		NodeKinds:  []string{"", other, "", ""},
		SwapKind:   other,
		SwapAtSec:  0.25,
		HorizonSec: 900,
		Faults: &fault.Spec{Windows: []fault.Window{
			{Kind: fault.PCPUSlow, StartSec: 0.02, DurSec: 0.2, Nodes: []int{2}, Severity: 3},
			{Kind: fault.PacketLoss, StartSec: 0.05, DurSec: 0.3, Severity: 0.15},
			{Kind: fault.MonitorDrop, StartSec: 0.01, DurSec: 0.3, Severity: 0.4},
		}},
	}
}

// TestDFRSDifferentialPinned runs the full property battery — audit
// invariants, liveness, analytic packet/round conservation, clock
// monotonicity, swap application, differential same-work vs the CR
// baseline, and byte-identical determinism replay — for both fractional
// kinds on the pinned scenario.
func TestDFRSDifferentialPinned(t *testing.T) {
	for _, kind := range dfrsKinds {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			spec := dfrsEquivSpec(kind)
			if err := spec.Validate(); err != nil {
				t.Fatal(err)
			}
			// Seed 11 with two approaches makes the traced primary the
			// fractional kind itself, not CR.
			if p := Primary(spec, []cluster.Approach{cluster.CR, kind}); p != kind {
				t.Fatalf("primary = %s, want %s (replay must trace the new kind)", p, kind)
			}
			if err := CheckSpec(spec, []cluster.Approach{cluster.CR, kind}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestDFRSShardTelemetryEquivalence pins, for both fractional kinds,
// that the determinism fingerprint is byte-identical across shard
// counts {1,2,4,8} and with the telemetry plane on vs off at every
// shard count including the serial engine (0) — the serial family
// fingerprints differently from the sharded one by design, so serial
// equivalence is checked within the family (replay + telemetry).
func TestDFRSShardTelemetryEquivalence(t *testing.T) {
	counts := []int{0, 1, 2, 4, 8}
	for _, kind := range dfrsKinds {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			spec := dfrsEquivSpec(kind)
			fps := make(map[int]string, len(counts))
			for _, sc := range counts {
				bare := spec
				bare.Shards = sc
				bare.Telemetry = false
				r, err := runOne(bare, kind, true)
				if err != nil {
					t.Fatalf("shards=%d: build: %v", sc, err)
				}
				if err := r.check(bare); err != nil {
					t.Fatalf("shards=%d: %v", sc, err)
				}
				fps[sc] = r.fingerprint

				tele := bare
				tele.Telemetry = true
				rt, err := runOne(tele, kind, true)
				if err != nil {
					t.Fatalf("shards=%d telemetry: build: %v", sc, err)
				}
				if rt.fingerprint != r.fingerprint {
					t.Errorf("shards=%d: telemetry-on fingerprint diverged at byte %d of %d/%d",
						sc, diffAt(r.fingerprint, rt.fingerprint), len(r.fingerprint), len(rt.fingerprint))
				}
			}
			for _, sc := range counts[2:] {
				if fps[sc] != fps[1] {
					t.Errorf("shards=%d: fingerprint diverged from shards=1 at byte %d of %d/%d",
						sc, diffAt(fps[1], fps[sc]), len(fps[1]), len(fps[sc]))
				}
			}
			// Serial replay: the shards=0 family must reproduce itself.
			replay := spec
			replay.Shards = 0
			r2, err := runOne(replay, kind, true)
			if err != nil {
				t.Fatal(err)
			}
			if r2.fingerprint != fps[0] {
				t.Errorf("serial replay diverged at byte %d", diffAt(fps[0], r2.fingerprint))
			}
		})
	}
}

// TestGenerateDrawsFractionalKinds pins that the generator's kind pool
// actually contains the fractional family — nodeKinds and swapKind draws
// come from registry.Kinds(), so DFRS/ATCDFRS must flow into generated
// scenarios without proptest-side lists to maintain.
func TestGenerateDrawsFractionalKinds(t *testing.T) {
	seen := map[string]bool{}
	for seed := uint64(1); seed <= 400 && (!seen["DFRS"] || !seen["ATCDFRS"]); seed++ {
		spec := Generate(seed, Bounded())
		seen[spec.SwapKind] = true
		for _, k := range spec.NodeKinds {
			seen[k] = true
		}
	}
	for _, k := range []string{"DFRS", "ATCDFRS"} {
		if !seen[k] {
			t.Errorf("400 generated specs never drew kind %s", k)
		}
	}
}
