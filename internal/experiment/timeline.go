package experiment

import (
	"fmt"
	"io"

	"atcsched/internal/cluster"
	"atcsched/internal/telemetry"
	"atcsched/internal/vmm"
	"atcsched/internal/workload"
)

// timelineTraceCap bounds the scheduling tracer behind the timeline
// export; the showcase run is a few virtual seconds, well inside it.
const timelineTraceCap = 500000

// TimelineResult is one instrumented showcase run, ready for export.
type TimelineResult struct {
	// Events is the merged scheduling-event stream (dispatches,
	// preemptions, slice changes, policy swaps).
	Events []telemetry.SchedEvent
	// Plane holds the run's metrics and spans (spin episodes, BSP
	// rounds, fault windows).
	Plane *telemetry.Plane
}

// Timeline runs the fault-injection showcase under ATC with the full
// telemetry plane and scheduling tracer attached: the straggler and
// packet-loss windows of the faults experiment over parallel tenants,
// so the exported timeline shows spin-episode spans, slice-change
// markers, BSP round spans, and the fault windows on one sim-time axis.
func Timeline(sc Scale, seed uint64) (*TimelineResult, error) {
	nodes := sc.NodeSteps[0]
	cfg := cluster.DefaultConfig(nodes, cluster.ATC)
	cfg.Seed = seed
	cfg.Faults = faultSpec()
	plane := telemetry.New(telemetry.Options{})
	cfg.Telemetry = plane
	s, err := cluster.New(cfg)
	if err != nil {
		return nil, err
	}
	s.World.SetTracer(vmm.NewTracer(timelineTraceCap))
	prof := workload.NPB("lu", workload.ClassB)
	prof.Iterations = iterCount(prof.Iterations, sc.IterScale)
	for vc := 0; vc < 2; vc++ {
		vms := s.VirtualCluster(fmt.Sprintf("vc%d", vc), nodes, sc.VCPUsPerVM, nil)
		s.RunBackground(prof, vms)
	}
	s.GoFor(faultWindow * faultWindows)
	if errs := s.World.Audit(); len(errs) > 0 {
		return nil, fmt.Errorf("timeline: audit: %v", errs[0])
	}
	s.FinalizeTelemetry()
	return &TimelineResult{Events: s.World.TelemetryEvents(), Plane: plane}, nil
}

// WriteTimeline exports the run as Chrome/Perfetto trace-event JSON.
func (r *TimelineResult) WriteTimeline(w io.Writer) error {
	return telemetry.WriteTimeline(w, r.Events, r.Plane.Snapshot())
}

// WriteJSONL exports the run's telemetry as a JSON Lines dump.
func (r *TimelineResult) WriteJSONL(w io.Writer) error {
	return telemetry.WriteJSONL(w, r.Plane.Snapshot())
}
