package credit_test

import (
	"testing"

	"atcsched/internal/sched/credit"
	"atcsched/internal/sim"
	"atcsched/internal/vmm"
	"atcsched/internal/vmmtest"
)

func world(t *testing.T, nodes, pcpus int, opts credit.Options) *vmm.World {
	t.Helper()
	return vmmtest.World(nodes, pcpus, credit.Factory(opts))
}

func TestOptionsValidation(t *testing.T) {
	w := vmmtest.World(1, 1, credit.Factory(credit.DefaultOptions()))
	n := w.Node(0)
	for name, opts := range map[string]credit.Options{
		"zero slice":  {TimeSlice: 0, DefaultWeight: 256},
		"zero weight": {TimeSlice: sim.Millisecond, DefaultWeight: 0},
	} {
		opts := opts
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s accepted", name)
				}
			}()
			credit.New(n, opts)
		}()
	}
}

func TestProportionalShare(t *testing.T) {
	// Two CPU-hog VMs on one PCPU, weights 256 vs 768: over time the
	// heavier VM should get ~3x the CPU.
	opts := credit.DefaultOptions()
	opts.TimeSlice = 5 * sim.Millisecond
	w := world(t, 1, 1, opts)
	node := w.Node(0)
	vmA := node.NewVM("a", vmm.ClassNonParallel, 1, 0, 1)
	vmB := node.NewVM("b", vmm.ClassNonParallel, 1, 0, 1)
	s := node.Scheduler().(*credit.Scheduler)
	s.SetWeight(vmA, 256)
	s.SetWeight(vmB, 768)
	vmmtest.Loop(vmA.VCPU(0), vmm.Compute(100*sim.Millisecond))
	vmmtest.Loop(vmB.VCPU(0), vmm.Compute(100*sim.Millisecond))
	w.Start()
	w.RunUntil(3 * sim.Second)
	ra, rb := float64(vmA.RunTime()), float64(vmB.RunTime())
	ratio := rb / ra
	if ratio < 2.0 || ratio > 4.5 {
		t.Errorf("runtime ratio = %.2f, want ~3 (a=%v b=%v)", ratio, vmA.RunTime(), vmB.RunTime())
	}
}

func TestEqualWeightsShareFairly(t *testing.T) {
	opts := credit.DefaultOptions()
	w := world(t, 1, 2, opts)
	node := w.Node(0)
	vms := make([]*vmm.VM, 4)
	for i := range vms {
		vms[i] = node.NewVM("vm", vmm.ClassNonParallel, 1, 0, 1)
		vmmtest.Loop(vms[i].VCPU(0), vmm.Compute(50*sim.Millisecond))
	}
	w.Start()
	w.RunUntil(2 * sim.Second)
	// 4 hogs on 2 PCPUs for 2s: each should get ~1s.
	for i, vm := range vms {
		r := vm.RunTime().Seconds()
		if r < 0.8 || r > 1.2 {
			t.Errorf("vm%d runtime = %.3fs, want ~1s", i, r)
		}
	}
}

func TestBoostQueueJump(t *testing.T) {
	// Unit-level boost semantics: a woken VCPU with positive credit gets
	// BOOST and pops ahead of an earlier-queued UNDER VCPU; with Boost
	// off it queues behind.
	check := func(boost bool, wantFirst int) {
		opts := credit.DefaultOptions()
		opts.Boost = boost
		opts.Steal = false
		w := world(t, 1, 1, opts)
		node := w.Node(0)
		vmA := node.NewVM("a", vmm.ClassNonParallel, 1, 0, 1)
		vmB := node.NewVM("b", vmm.ClassNonParallel, 1, 0, 1)
		s := node.Scheduler().(*credit.Scheduler)
		a, b := vmA.VCPU(0), vmB.VCPU(0)
		s.Register(a)
		s.Register(b)
		s.Data(a).Credit = 10 * sim.Millisecond
		s.Data(b).Credit = 10 * sim.Millisecond
		s.Enqueue(a, vmm.EnqueueNew)
		s.Enqueue(b, vmm.EnqueueWake)
		first := s.PickNext(node.PCPUs()[0])
		want := a
		if wantFirst == 1 {
			want = b
		}
		if first != want {
			t.Errorf("boost=%v: first = %s, want %s", boost, first, want)
		}
		if boost && s.Data(b).Prio != credit.PrioBoost {
			t.Errorf("woken VCPU prio = %v, want BOOST", s.Data(b).Prio)
		}
		if !boost && s.Data(b).Prio == credit.PrioBoost {
			t.Error("BOOST granted with Boost disabled")
		}
	}
	check(true, 1)
	check(false, 0)
}

func TestWakePreemptsOverHog(t *testing.T) {
	// E2E wake preemption: an always-runnable hog exceeds its share and
	// goes OVER; a waking (UNDER or BOOST) sleeper must preempt it
	// rather than wait out a 30 ms slice.
	opts := credit.DefaultOptions()
	opts.TimeSlice = 30 * sim.Millisecond
	w := world(t, 1, 1, opts)
	node := w.Node(0)
	hog := node.NewVM("hog", vmm.ClassNonParallel, 1, 0, 1)
	vmmtest.Loop(hog.VCPU(0), vmm.Compute(sim.Second))
	sleeper := node.NewVM("sleeper", vmm.ClassNonParallel, 1, 0, 1)
	var total sim.Time
	var wakes int
	var sleepAt sim.Time
	vmmtest.Loop(sleeper.VCPU(0),
		vmm.Action{Kind: vmm.ActSleep, Dur: 9300 * sim.Microsecond, Then: func() { sleepAt = w.Eng.Now() }},
		vmm.Action{Kind: vmm.ActCompute, Work: 10 * sim.Microsecond, Then: func() {
			total += w.Eng.Now() - sleepAt
			wakes++
		}},
	)
	w.Start()
	w.RunUntil(2 * sim.Second)
	if wakes < 100 {
		t.Fatalf("wakes = %d", wakes)
	}
	avg := total / sim.Time(wakes)
	if avg > sim.Millisecond {
		t.Errorf("wake latency = %v, want ≪ slice (wake preemption of OVER hog)", avg)
	}
}

func TestWorkStealingKeepsPCPUsBusy(t *testing.T) {
	// 4 hogs whose home queues all start on a subset of PCPUs: with
	// stealing, both PCPUs stay busy.
	opts := credit.DefaultOptions()
	opts.TimeSlice = 5 * sim.Millisecond
	w := world(t, 1, 2, opts)
	node := w.Node(0)
	for i := 0; i < 4; i++ {
		vm := node.NewVM("hog", vmm.ClassNonParallel, 1, 0, 1)
		vmmtest.Loop(vm.VCPU(0), vmm.Compute(30*sim.Millisecond))
	}
	w.Start()
	w.RunUntil(sim.Second)
	for _, p := range node.PCPUs() {
		util := p.BusyTime().Seconds() / 1.0
		if util < 0.95 {
			t.Errorf("pcpu%d utilization = %.2f, want ~1 with stealing", p.Index(), util)
		}
	}
}

func TestNoStealLeavesQueueBound(t *testing.T) {
	opts := credit.DefaultOptions()
	opts.Steal = false
	w := world(t, 1, 2, opts)
	node := w.Node(0)
	// One hog; its home queue is fixed. The other PCPU must stay idle
	// once dom0 goes quiet.
	vm := node.NewVM("hog", vmm.ClassNonParallel, 1, 0, 1)
	vmmtest.Loop(vm.VCPU(0), vmm.Compute(30*sim.Millisecond))
	w.Start()
	w.RunUntil(sim.Second)
	busy := 0
	for _, p := range node.PCPUs() {
		if p.BusyTime() > 900*sim.Millisecond {
			busy++
		}
	}
	if busy != 1 {
		t.Errorf("busy PCPUs = %d, want exactly 1 without stealing", busy)
	}
}

func TestSliceGovernsPreemptionFrequency(t *testing.T) {
	run := func(slice sim.Time) uint64 {
		opts := credit.DefaultOptions()
		opts.TimeSlice = slice
		w := world(t, 1, 1, opts)
		node := w.Node(0)
		for i := 0; i < 2; i++ {
			vm := node.NewVM("hog", vmm.ClassNonParallel, 1, 0, 1)
			vmmtest.Loop(vm.VCPU(0), vmm.Compute(sim.Second))
		}
		w.Start()
		w.RunUntil(sim.Second)
		return node.CtxSwitches()
	}
	fine := run(sim.Millisecond)
	coarse := run(30 * sim.Millisecond)
	if fine < 10*coarse {
		t.Errorf("ctx switches fine=%d coarse=%d; want ~30x more at 1ms", fine, coarse)
	}
}

func TestPriorityString(t *testing.T) {
	for _, p := range []credit.Priority{credit.PrioBoost, credit.PrioUnder, credit.PrioOver, credit.Priority(9)} {
		if p.String() == "" {
			t.Error("empty priority name")
		}
	}
}

func TestDataLifecycle(t *testing.T) {
	w := vmmtest.World(1, 2, credit.Factory(credit.DefaultOptions()))
	node := w.Node(0)
	vm := node.NewVM("x", vmm.ClassNonParallel, 1, 0, 1)
	s := node.Scheduler().(*credit.Scheduler)
	v := vm.VCPU(0)
	d := s.Data(v)
	if d == nil || d.Queue != -1 {
		t.Fatalf("fresh data = %+v", d)
	}
	s.Register(v)
	if d.Queue < 0 || d.Queue >= 2 {
		t.Errorf("home queue = %d", d.Queue)
	}
	if s.Data(v) != d {
		t.Error("Data not stable")
	}
}

func TestQueueManipulation(t *testing.T) {
	// The hooks co-scheduling uses: Dequeue, EnqueueFront, QueueLen,
	// QueueHasSibling.
	w := vmmtest.World(1, 2, credit.Factory(credit.DefaultOptions()))
	node := w.Node(0)
	vmA := node.NewVM("a", vmm.ClassParallel, 2, 0, 1)
	vmB := node.NewVM("b", vmm.ClassNonParallel, 1, 0, 1)
	s := node.Scheduler().(*credit.Scheduler)
	if s.Name() != "CR" || s.Node() != node {
		t.Error("Name/Node accessors wrong")
	}
	if s.Options().TimeSlice != credit.DefaultOptions().TimeSlice {
		t.Error("Options accessor wrong")
	}
	a0, a1, b0 := vmA.VCPU(0), vmA.VCPU(1), vmB.VCPU(0)
	for _, v := range []*vmm.VCPU{a0, a1, b0} {
		s.Register(v)
	}
	s.Enqueue(a0, vmm.EnqueueNew)
	s.Enqueue(b0, vmm.EnqueueNew)
	q := s.Data(a0).Queue
	if s.QueueLen(q) == 0 {
		t.Fatal("queue empty after enqueue")
	}
	if !s.QueueHasSibling(q, vmA, nil) {
		t.Error("sibling not detected")
	}
	if s.QueueHasSibling(q, vmA, a0) && s.Data(a1).Queued {
		t.Error("exclude parameter ignored")
	}
	if !s.Dequeue(a0) {
		t.Fatal("Dequeue failed")
	}
	if s.Dequeue(a0) {
		t.Error("double dequeue succeeded")
	}
	// EnqueueFront jumps the queue with BOOST class.
	s.EnqueueFront(a0, 0)
	if got := s.PickNext(node.PCPUs()[0]); got != a0 {
		t.Errorf("PickNext = %v, want front-enqueued a0", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double EnqueueFront accepted")
			}
		}()
		s.Enqueue(b0, vmm.EnqueueNew) // b0 already queued
	}()
}

func TestAffinityPinning(t *testing.T) {
	// A VCPU pinned to PCPU 1 must only ever run there, even with
	// stealing enabled and PCPU 0 idle.
	w := vmmtest.World(1, 2, credit.Factory(credit.DefaultOptions()))
	node := w.Node(0)
	vm := node.NewVM("pinned", vmm.ClassNonParallel, 1, 0, 1)
	v := vm.VCPU(0)
	v.PinTo(1)
	if !v.Pinned() || v.AllowedOn(0) || !v.AllowedOn(1) {
		t.Fatal("pin mask wrong")
	}
	vmmtest.Loop(v, vmm.Compute(3*sim.Millisecond), vmm.Sleep(sim.Millisecond))
	// A competitor pinned nowhere keeps PCPU 1 contended.
	other := node.NewVM("free", vmm.ClassNonParallel, 1, 0, 1)
	vmmtest.Loop(other.VCPU(0), vmm.Compute(sim.Second))
	w.Start()
	for ti := sim.Time(0); ti < sim.Second; ti += 613 * sim.Microsecond {
		w.RunUntil(ti)
		if p := v.PCPU(); p != nil && p.Index() != 1 {
			t.Fatalf("pinned VCPU running on pcpu %d at %v", p.Index(), ti)
		}
	}
	if v.RunTime() == 0 {
		t.Fatal("pinned VCPU never ran")
	}
	// Unpin restores free placement.
	v.PinTo()
	if v.Pinned() {
		t.Error("unpin failed")
	}
}

func TestPinToValidation(t *testing.T) {
	w := vmmtest.World(1, 2, credit.Factory(credit.DefaultOptions()))
	vm := w.Node(0).NewVM("x", vmm.ClassNonParallel, 1, 0, 1)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range pin accepted")
		}
	}()
	vm.VCPU(0).PinTo(7)
}

func TestPickNextEmptyReturnsNil(t *testing.T) {
	w := vmmtest.World(1, 2, credit.Factory(credit.DefaultOptions()))
	node := w.Node(0)
	s := node.Scheduler().(*credit.Scheduler)
	if got := s.PickNext(node.PCPUs()[0]); got != nil {
		t.Errorf("PickNext on empty queues = %v", got)
	}
	noSteal := credit.DefaultOptions()
	noSteal.Steal = false
	s2 := credit.New(node, noSteal)
	if got := s2.PickNext(node.PCPUs()[1]); got != nil {
		t.Errorf("no-steal PickNext on empty = %v", got)
	}
}

func TestSetWeightValidation(t *testing.T) {
	w := vmmtest.World(1, 1, credit.Factory(credit.DefaultOptions()))
	node := w.Node(0)
	vm := node.NewVM("x", vmm.ClassNonParallel, 1, 0, 1)
	s := node.Scheduler().(*credit.Scheduler)
	defer func() {
		if recover() == nil {
			t.Error("zero weight accepted")
		}
	}()
	s.SetWeight(vm, 0)
}

func TestTickClearsBoost(t *testing.T) {
	w := vmmtest.World(1, 1, credit.Factory(credit.DefaultOptions()))
	node := w.Node(0)
	vm := node.NewVM("b", vmm.ClassNonParallel, 1, 0, 1)
	s := node.Scheduler().(*credit.Scheduler)
	v := vm.VCPU(0)
	s.Register(v)
	s.Data(v).Credit = 10 * sim.Millisecond
	s.Enqueue(v, vmm.EnqueueWake)
	if s.Data(v).Prio != credit.PrioBoost {
		t.Fatalf("prio = %v after wake", s.Data(v).Prio)
	}
	// The VCPU must be *running* for the tick to retire its boost.
	got := s.PickNext(node.PCPUs()[0])
	if got != v {
		t.Fatalf("PickNext = %v", got)
	}
	// Simulate it being current by dispatching through the real path is
	// complex here; instead verify the enqueue-after-preempt path drops
	// the boost class.
	s.Enqueue(v, vmm.EnqueuePreempt)
	if s.Data(v).Prio == credit.PrioBoost {
		t.Error("preempt re-enqueue kept BOOST")
	}
}

func TestCreditChargeOnEnqueue(t *testing.T) {
	// End to end: a hog's credit goes negative (OVER) once it has burned
	// beyond its share.
	opts := credit.DefaultOptions()
	w := vmmtest.World(1, 1, credit.Factory(opts))
	node := w.Node(0)
	hogA := node.NewVM("a", vmm.ClassNonParallel, 1, 0, 1)
	hogB := node.NewVM("b", vmm.ClassNonParallel, 1, 0, 1)
	vmmtest.Loop(hogA.VCPU(0), vmm.Compute(sim.Second))
	vmmtest.Loop(hogB.VCPU(0), vmm.Compute(sim.Second))
	w.Start()
	w.RunUntil(500 * sim.Millisecond)
	s := node.Scheduler().(*credit.Scheduler)
	da, db := s.Data(hogA.VCPU(0)), s.Data(hogB.VCPU(0))
	if da.Credit > 0 && db.Credit > 0 {
		t.Errorf("both hogs UNDER (%v, %v) despite 2x over-subscription", da.Credit, db.Credit)
	}
}
