package hybrid_test

import (
	"testing"

	"atcsched/internal/sched/credit"
	"atcsched/internal/sched/hybrid"
	"atcsched/internal/sim"
	"atcsched/internal/vmm"
	"atcsched/internal/vmmtest"
)

func TestParallelVMPromoted(t *testing.T) {
	w := vmmtest.World(1, 1, hybrid.Factory(hybrid.DefaultOptions()))
	node := w.Node(0)
	par := node.NewVM("par", vmm.ClassParallel, 1, 0, 1)
	np := node.NewVM("np", vmm.ClassNonParallel, 1, 0, 1)
	s := node.Scheduler().(*hybrid.Scheduler)
	a, b := par.VCPU(0), np.VCPU(0)
	s.Register(a)
	s.Register(b)
	s.Data(a).Credit = sim.Millisecond
	s.Data(b).Credit = sim.Millisecond
	s.Enqueue(b, vmm.EnqueueNew)
	s.Enqueue(a, vmm.EnqueueNew) // enqueued second, but promoted
	if got := s.PickNext(node.PCPUs()[0]); got != a {
		t.Errorf("PickNext = %v, want promoted parallel VCPU", got)
	}
	if s.Data(a).Prio != credit.PrioBoost {
		t.Errorf("prio = %v, want BOOST", s.Data(a).Prio)
	}
}

func TestHybridAcceleratesParallelButHurtsLatency(t *testing.T) {
	// The related-work tradeoff: HY speeds the parallel VM up vs CR, but
	// a latency-sensitive neighbour's wake latency suffers relative to
	// its CR value because promoted parallel VCPUs occupy the PCPUs at
	// BOOST.
	type res struct {
		parallel sim.Time
		npRounds uint64
	}
	run := func(f vmm.SchedulerFactory) res {
		w := vmmtest.World(1, 2, f)
		node := w.Node(0)
		vmA, _ := vmmtest.SpinPair(node, 30*sim.Millisecond)
		np := node.NewVM("np", vmm.ClassNonParallel, 1, 0, 1)
		vmmtest.Loop(np.VCPU(0),
			vmm.Sleep(3*sim.Millisecond),
			vmm.Compute(500*sim.Microsecond),
		)
		w.Start()
		w.RunUntil(3 * sim.Second)
		return res{parallel: vmA.SpinMon.LifetimeMean(), npRounds: np.VCPU(0).Rounds()}
	}
	cr := run(credit.Factory(credit.DefaultOptions()))
	hy := run(hybrid.Factory(hybrid.DefaultOptions()))
	if hy.parallel >= cr.parallel {
		t.Errorf("HY spin latency %v >= CR %v; promotion not helping parallel", hy.parallel, cr.parallel)
	}
	if hy.npRounds >= cr.npRounds {
		t.Errorf("HY non-parallel progress %d >= CR %d; expected degradation from promotion", hy.npRounds, cr.npRounds)
	}
}

func TestName(t *testing.T) {
	w := vmmtest.World(1, 1, hybrid.Factory(hybrid.DefaultOptions()))
	if got := w.Node(0).Scheduler().Name(); got != "HY" {
		t.Errorf("Name = %q", got)
	}
}
