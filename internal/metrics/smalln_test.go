package metrics

import (
	"math"
	"testing"
)

// TestP2ValueSmallSamples pins the exact small-n fallback: below five
// samples Value interpolates the order statistics directly, and the
// transition to the marker-based estimate at n=5 is consistent.
func TestP2ValueSmallSamples(t *testing.T) {
	q := NewP2Quantile(0.5)
	if q.Value() != 0 {
		t.Errorf("empty Value = %v, want 0", q.Value())
	}

	q.Add(7)
	if q.Value() != 7 { // n=1: the only sample, any p
		t.Errorf("n=1 Value = %v, want 7", q.Value())
	}
	if q.N() != 1 {
		t.Errorf("N = %d", q.N())
	}

	q.Add(3)
	if got := q.Value(); got != 5 { // n=2: median of {3,7}
		t.Errorf("n=2 median = %v, want 5", got)
	}

	q.Add(11)
	if got := q.Value(); got != 7 { // n=3: middle of {3,7,11}
		t.Errorf("n=3 median = %v, want 7", got)
	}

	q.Add(1)
	if got := q.Value(); got != 5 { // n=4: {1,3,7,11}, idx 1.5 -> (3+7)/2
		t.Errorf("n=4 median = %v, want 5", got)
	}

	q.Add(9)
	if got := q.Value(); got != 7 { // n=5: markers init from sorted {1,3,7,9,11}
		t.Errorf("n=5 median = %v, want center marker 7", got)
	}
}

// TestP2SmallSampleExtremeQuantiles pins the fallback's interpolation at
// the tails, where the index math hits its floor/ceil edges.
func TestP2SmallSampleExtremeQuantiles(t *testing.T) {
	lo := NewP2Quantile(0.05)
	hi := NewP2Quantile(0.99)
	for _, x := range []float64{10, 20, 30} {
		lo.Add(x)
		hi.Add(x)
	}
	// idx = 0.05*2 = 0.1 -> 10*(0.9) + 20*(0.1) = 11
	if got := lo.Value(); math.Abs(got-11) > 1e-9 {
		t.Errorf("p5 of {10,20,30} = %v, want 11", got)
	}
	// idx = 0.99*2 = 1.98 -> 20*0.02 + 30*0.98 = 29.8
	if got := hi.Value(); math.Abs(got-29.8) > 1e-9 {
		t.Errorf("p99 of {10,20,30} = %v, want 29.8", got)
	}
}

// TestP2SmallSampleOrderInsensitive pins that the fallback sorts: the
// arrival order of the first samples must not change the estimate.
func TestP2SmallSampleOrderInsensitive(t *testing.T) {
	a := NewP2Quantile(0.5)
	b := NewP2Quantile(0.5)
	for _, x := range []float64{1, 2, 3, 4} {
		a.Add(x)
	}
	for _, x := range []float64{4, 2, 1, 3} {
		b.Add(x)
	}
	if a.Value() != b.Value() {
		t.Errorf("order sensitivity: %v vs %v", a.Value(), b.Value())
	}
}

// TestWelfordZeroAndOneSample pins the degenerate paths: a fresh
// accumulator reports zeros everywhere, and one sample sets both
// extrema.
func TestWelfordZeroAndOneSample(t *testing.T) {
	var w Welford
	if w.N() != 0 || w.Mean() != 0 || w.Min() != 0 || w.Max() != 0 ||
		w.Variance() != 0 || w.Stddev() != 0 || w.Sum() != 0 {
		t.Errorf("zero-sample accumulator not all-zero: %+v", w)
	}

	w.Add(-2.5)
	if w.N() != 1 || w.Mean() != -2.5 || w.Min() != -2.5 || w.Max() != -2.5 {
		t.Errorf("one negative sample: n=%d mean=%v min=%v max=%v",
			w.N(), w.Mean(), w.Min(), w.Max())
	}
	if w.Variance() != 0 {
		t.Errorf("one-sample variance = %v, want 0", w.Variance())
	}

	w.Reset()
	if w.N() != 0 || w.Min() != 0 || w.Max() != 0 {
		t.Errorf("Reset left state: %+v", w)
	}
}

// TestWelfordExtremaTrack pins min/max against samples that straddle the
// zero initial values.
func TestWelfordExtremaTrack(t *testing.T) {
	var w Welford
	for _, x := range []float64{5, -3, 12, 0.5} {
		w.Add(x)
	}
	if w.Min() != -3 || w.Max() != 12 {
		t.Errorf("min=%v max=%v, want -3/12", w.Min(), w.Max())
	}
	if got := w.Sum(); math.Abs(got-14.5) > 1e-9 {
		t.Errorf("Sum = %v, want 14.5", got)
	}
}
