package core_test

import (
	"fmt"

	"atcsched/internal/core"
	"atcsched/internal/sim"
)

// ExampleController_ComputeSlice walks Algorithm 1 through a rising
// contention episode: each period with increasing spinlock latency
// shortens the slice by α = 6 ms until the fine β steps take over near
// the 0.3 ms threshold.
func ExampleController_ComputeSlice() {
	ctl := core.NewController(core.DefaultConfig())
	slice := core.DefaultConfig().Default
	lat := sim.Time(0)
	for period := 0; period < 6; period++ {
		lat += 2 * sim.Millisecond // latency keeps rising
		ctl.Observe(1, lat, slice)
		slice = ctl.ComputeSlice(1)
		fmt.Println(slice)
	}
	// Output:
	// 24.000ms
	// 18.000ms
	// 12.000ms
	// 6.000ms
	// 5.700ms
	// 5.400ms
}

// ExampleController_NodeSlices shows Algorithm 2: both parallel VMs get
// the minimum of their computed slices; the non-parallel VM keeps the
// administrator's setting.
func ExampleController_NodeSlices() {
	ctl := core.NewController(core.DefaultConfig())
	// VM 1 under rising contention; VM 2 quiet.
	for _, lat := range []sim.Time{sim.Millisecond, 2 * sim.Millisecond, 3 * sim.Millisecond} {
		ctl.Observe(1, lat, 30*sim.Millisecond)
		ctl.Observe(2, 500*sim.Microsecond, 30*sim.Millisecond)
	}
	slices := ctl.NodeSlices([]core.VMInfo{
		{ID: 1, Parallel: true},
		{ID: 2, Parallel: true},
		{ID: 3, Parallel: false, AdminSlice: 6 * sim.Millisecond},
	})
	fmt.Println(slices[1], slices[2], slices[3])
	// Output: 24.000ms 24.000ms 6.000ms
}

// ExampleOptimizeThreshold reproduces §III-B's selection of the minimum
// time-slice threshold from per-application normalized execution times.
func ExampleOptimizeThreshold() {
	ms := func(f float64) sim.Time { return sim.Time(f * float64(sim.Millisecond)) }
	perApp := map[string]map[sim.Time]float64{
		"lu": {ms(0.5): 0.30, ms(0.3): 0.27, ms(0.1): 0.31},
		"is": {ms(0.5): 0.20, ms(0.3): 0.17, ms(0.1): 0.22},
	}
	best, _, err := core.OptimizeThreshold(perApp)
	if err != nil {
		panic(err)
	}
	fmt.Println(best)
	// Output: 300.000us
}
