// Command experiments regenerates the paper's tables and figures on the
// simulated cluster.
//
// Usage:
//
//	experiments -list
//	experiments -exp fig10 -scale medium
//	experiments -all -scale small -format csv
//	experiments -exp fig10 -parallel 8 -cpuprofile cpu.out
//
// Scales: small (quick check), medium (full structure, reduced nodes),
// full (the paper's 32-node testbed dimensions; slow).
//
// Experiment cells (independent simulation runs) fan across a worker
// pool sized by -parallel (default: GOMAXPROCS); tables are
// byte-identical at any worker count.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"atcsched/internal/experiment"
	"atcsched/internal/runner"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// run parses args and executes the selected experiments, writing tables
// to stdout. Split from main so tests can drive the command in-process.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		expID        = fs.String("exp", "", "experiment id(s), comma-separated (fig1, fig2, fig5, fig8, euclid, fig9, fig10, fig11, fig12, fig13, fig14, tab1; extensions: score, sens, ablate, switch, faults, scale, dfrs)")
		all          = fs.Bool("all", false, "run every experiment (skips wall-clock benchmarks like scale; select those with -exp)")
		list         = fs.Bool("list", false, "list experiments and exit")
		scale        = fs.String("scale", "small", "small | medium | full")
		seed         = fs.Uint64("seed", 1, "workload seed")
		format       = fs.String("format", "text", "text | csv | markdown")
		outDir       = fs.String("out", "", "also write each table as CSV into this directory")
		parallel     = fs.Int("parallel", 0, "worker-pool width for experiment cells (0 = GOMAXPROCS, 1 = serial)")
		cpuprofile   = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile   = fs.String("memprofile", "", "write a heap profile to this file on exit")
		blockprofile = fs.String("blockprofile", "", "write a goroutine blocking profile to this file on exit (shard barrier waits)")
		mutexprofile = fs.String("mutexprofile", "", "write a mutex contention profile to this file on exit")
		timelineOut  = fs.String("timeline", "", "run the instrumented fault showcase and write a Chrome/Perfetto timeline to this file")
		jsonlOut     = fs.String("jsonl", "", "run the instrumented fault showcase and write its telemetry JSONL dump to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	runner.SetDefaultWorkers(*parallel)

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				return
			}
			defer f.Close()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
			}
		}()
	}

	if *blockprofile != "" {
		runtime.SetBlockProfileRate(1)
		defer writeProfile("block", *blockprofile)
	}
	if *mutexprofile != "" {
		runtime.SetMutexProfileFraction(1)
		defer writeProfile("mutex", *mutexprofile)
	}

	if *list {
		for _, e := range experiment.All() {
			fmt.Fprintf(stdout, "%-8s %s\n", e.ID, e.Title)
		}
		return nil
	}
	sc, err := experiment.ScaleByName(*scale)
	if err != nil {
		return err
	}
	if *timelineOut != "" || *jsonlOut != "" {
		if err := runTimeline(stdout, sc, *seed, *timelineOut, *jsonlOut); err != nil {
			return err
		}
		// The showcase can run standalone or alongside selected experiments.
		if *expID == "" && !*all {
			return nil
		}
	}
	var exps []experiment.Experiment
	switch {
	case *all:
		for _, e := range experiment.All() {
			if !e.Bench {
				exps = append(exps, e)
			}
		}
	case *expID != "":
		for _, id := range strings.Split(*expID, ",") {
			e, err := experiment.ByID(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			exps = append(exps, e)
		}
	default:
		return fmt.Errorf("specify -exp <id> or -all (use -list to enumerate)")
	}

	runStart := time.Now()
	for _, e := range exps {
		start := time.Now()
		fmt.Fprintf(stdout, "== %s: %s [scale=%s seed=%d]\n", e.ID, e.Title, sc.Name, *seed)
		tables, err := e.Run(sc, *seed)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		for i, t := range tables {
			switch *format {
			case "csv":
				fmt.Fprint(stdout, t.CSV())
			case "markdown":
				fmt.Fprintln(stdout, t.Markdown())
			default:
				fmt.Fprintln(stdout, t.String())
			}
			if *outDir != "" {
				if err := writeCSV(*outDir, fmt.Sprintf("%s_%d.csv", e.ID, i), t.CSV()); err != nil {
					return err
				}
			}
		}
		fmt.Fprintf(stdout, "-- %s done in %v\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	fmt.Fprintf(stdout, "== total: %d experiment(s), %d cell(s) in %v (workers=%d)\n",
		len(exps), runner.Cells(), time.Since(runStart).Round(time.Millisecond), runner.DefaultWorkers())
	return nil
}

// runTimeline executes the instrumented fault showcase and writes the
// requested telemetry artifacts.
func runTimeline(stdout io.Writer, sc experiment.Scale, seed uint64, timeline, jsonl string) error {
	start := time.Now()
	res, err := experiment.Timeline(sc, seed)
	if err != nil {
		return err
	}
	write := func(path string, fn func(io.Writer) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		err = fn(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		return err
	}
	if timeline != "" {
		if err := write(timeline, res.WriteTimeline); err != nil {
			return fmt.Errorf("timeline: %w", err)
		}
		fmt.Fprintf(stdout, "timeline: wrote %s\n", timeline)
	}
	if jsonl != "" {
		if err := write(jsonl, res.WriteJSONL); err != nil {
			return fmt.Errorf("jsonl: %w", err)
		}
		fmt.Fprintf(stdout, "timeline: wrote %s\n", jsonl)
	}
	fmt.Fprintf(stdout, "-- timeline showcase done in %v\n\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// writeProfile dumps a named runtime profile (block, mutex) on exit;
// failures are reported, not fatal — the tables already printed.
func writeProfile(kind, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		return
	}
	defer f.Close()
	if err := pprof.Lookup(kind).WriteTo(f, 0); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
	}
}

func writeCSV(dir, name, csv string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(dir+"/"+name, []byte(csv), 0o644)
}
