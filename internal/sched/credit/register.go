package credit

import (
	"atcsched/internal/sched/registry"
	"atcsched/internal/vmm"
)

func init() {
	registry.Register(registry.Descriptor{
		Kind:        "CR",
		Order:       1,
		Description: "Xen Credit scheduler (baseline): proportional-share credits, BOOST/UNDER/OVER priorities, 30ms slices",
		Defaults:    func() any { o := DefaultOptions(); return &o },
		Build: func(opts any, base registry.Base) (vmm.SchedulerFactory, error) {
			o := *opts.(*Options)
			if err := o.ApplyOverrides(base.FixedSlice, base.DisableBoost, base.DisableSteal); err != nil {
				return nil, err
			}
			return Factory(o), nil
		},
	})
}
