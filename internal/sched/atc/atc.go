// Package atc plugs the paper's Adaptive Time-slice Control model
// (internal/core) into the credit scheduling core: every 30 ms scheduling
// period it samples each guest VM's average spinlock latency, runs
// Algorithm 1 per parallel VM and Algorithm 2 across the node, and serves
// the resulting per-VM slices to the dispatcher.
package atc

import (
	"fmt"

	"atcsched/internal/core"
	"atcsched/internal/sched/credit"
	"atcsched/internal/sim"
	"atcsched/internal/vmm"
)

// Signal selects where ATC reads its per-period overhead sample from.
type Signal int

// The available monitoring signals.
const (
	// SignalSpinlock is the paper's intrusive method: the guest kernel
	// reports its average spinlock latency per period.
	SignalSpinlock Signal = iota
	// SignalSchedWait is the non-intrusive alternative sketched in the
	// paper's future work: the hypervisor uses each VM's mean runqueue
	// wait (runnable → dispatched), which it can observe without any
	// guest cooperation and which tracks the same slice-length dynamics.
	SignalSchedWait
)

// String returns the signal name.
func (s Signal) String() string {
	switch s {
	case SignalSpinlock:
		return "spinlock"
	case SignalSchedWait:
		return "sched-wait"
	default:
		return fmt.Sprintf("Signal(%d)", int(s))
	}
}

// Options configures the ATC scheduler.
type Options struct {
	// Credit configures the underlying credit core. Credit.TimeSlice is
	// the default slice DEFAULT in Algorithm 1.
	Credit credit.Options `json:"credit,omitzero"`
	// Control configures the ATC controller (α, β, threshold, window).
	// Control.Default is overridden by Credit.TimeSlice for consistency.
	Control core.Config `json:"control,omitzero"`
	// AutoDetect classifies VMs as parallel when they show contended
	// spinlock activity, instead of trusting VM.Class. Mirrors the
	// paper's future-work direction of less intrusive classification.
	AutoDetect bool `json:"autoDetect,omitzero"`
	// AutoDetectWindow is how many recent periods with contended spin
	// activity keep a VM classified as parallel under AutoDetect.
	AutoDetectWindow int `json:"autoDetectWindow,omitzero"`
	// Monitor selects the overhead signal (default: the paper's
	// intrusive spinlock latency; 1 selects the scheduling-wait proxy).
	Monitor Signal `json:"monitor,omitzero"`
	// NoiseFloor: signal samples at or below this value are treated as
	// zero by Algorithm 1's recovery branch. The scheduling-wait proxy
	// needs a nonzero floor because dispatch latency never measures an
	// exact zero; it defaults to 20 µs when Monitor is SignalSchedWait.
	NoiseFloor sim.Time `json:"noiseFloor,omitzero"`
	// AdaptiveNonParallel enables the paper's first future-work item: a
	// more flexible treatment of non-parallel VMs. A non-parallel VM
	// whose I/O event rate marks it latency-sensitive is given
	// NonParallelShort instead of the default slice, improving its
	// interrupt service without an administrator in the loop. An
	// explicit AdminSlice still wins.
	AdaptiveNonParallel bool `json:"adaptiveNonParallel,omitzero"`
	// NonParallelShort is the slice for latency-sensitive non-parallel
	// VMs under AdaptiveNonParallel (default 6 ms, the paper's example
	// admin setting).
	NonParallelShort sim.Time `json:"nonParallelShort,omitzero"`
	// LatencySensitiveRate is the smoothed per-period I/O event rate
	// above which a non-parallel VM counts as latency-sensitive.
	LatencySensitiveRate float64 `json:"latencySensitiveRate,omitzero"`
	// DisableNodeMinimum ablates Algorithm 2: each parallel VM keeps its
	// own Algorithm-1 slice instead of the node-wide minimum.
	DisableNodeMinimum bool `json:"disableNodeMinimum,omitzero"`
}

// DefaultOptions returns the evaluation configuration: stock credit core
// with ATC control at the paper's parameters.
func DefaultOptions() Options {
	return Options{
		Credit:           credit.DefaultOptions(),
		Control:          core.DefaultConfig(),
		AutoDetect:       false,
		AutoDetectWindow: 10,
	}
}

// Scheduler is ATC layered over the credit core.
type Scheduler struct {
	*credit.Scheduler
	opts Options
	ctl  *core.Controller
	// slices holds the per-VM slice currently in force.
	slices map[int]sim.Time
	// activity tracks, per VM id, how many periods ago contended spin
	// activity was last seen (for AutoDetect).
	activity map[int]int
	// prevAcq remembers each VM's lifetime acquisition count at the last
	// period, to detect activity.
	prevContended map[int]uint64
	// ioRate is the smoothed per-period I/O event rate per VM id, used
	// by AdaptiveNonParallel.
	ioRate map[int]float64
}

// New builds an ATC scheduler for node n.
func New(n *vmm.Node, opts Options) *Scheduler {
	opts.Control.Default = opts.Credit.TimeSlice
	if opts.AutoDetectWindow <= 0 {
		opts.AutoDetectWindow = 10
	}
	if opts.Monitor == SignalSchedWait && opts.NoiseFloor == 0 {
		opts.NoiseFloor = 20 * sim.Microsecond
	}
	if opts.NonParallelShort == 0 {
		opts.NonParallelShort = 6 * sim.Millisecond
	}
	if opts.LatencySensitiveRate == 0 {
		opts.LatencySensitiveRate = 2
	}
	return &Scheduler{
		Scheduler:     credit.New(n, opts.Credit),
		opts:          opts,
		ctl:           core.NewController(opts.Control),
		slices:        make(map[int]sim.Time),
		activity:      make(map[int]int),
		prevContended: make(map[int]uint64),
		ioRate:        make(map[int]float64),
	}
}

// Factory returns a vmm.SchedulerFactory producing ATC schedulers.
func Factory(opts Options) vmm.SchedulerFactory {
	return func(n *vmm.Node) vmm.Scheduler { return New(n, opts) }
}

// Name implements vmm.Scheduler.
func (s *Scheduler) Name() string { return "ATC" }

// Controller exposes the underlying ATC controller (for tests and
// diagnostics).
func (s *Scheduler) Controller() *core.Controller { return s.ctl }

// Slice implements vmm.Scheduler: the per-VM adaptive slice for guests,
// the default for dom0.
func (s *Scheduler) Slice(v *vmm.VCPU) sim.Time {
	if sl, ok := s.slices[v.VM().ID()]; ok {
		return sl
	}
	return s.Options().TimeSlice
}

// CurrentSlice returns the slice in force for vm.
func (s *Scheduler) CurrentSlice(vm *vmm.VM) sim.Time {
	if sl, ok := s.slices[vm.ID()]; ok {
		return sl
	}
	return s.Options().TimeSlice
}

// isParallel classifies a VM for Algorithm 2.
func (s *Scheduler) isParallel(vm *vmm.VM) bool {
	if !s.opts.AutoDetect {
		return vm.Class() == vmm.ClassParallel
	}
	return s.activity[vm.ID()] < s.opts.AutoDetectWindow
}

// OnPeriod implements vmm.Scheduler: credit refill plus the ATC control
// step (sample latency → Algorithm 1 per VM → Algorithm 2 node-wide).
func (s *Scheduler) OnPeriod(n *vmm.Node) {
	s.Scheduler.OnPeriod(n)
	guests := n.VMs()
	infos := make([]core.VMInfo, 0, len(guests))
	for _, vm := range guests {
		var avg sim.Time
		fresh := true
		switch s.opts.Monitor {
		case SignalSchedWait:
			avg = vm.SamplePeriodWait()
		default:
			// The fault-aware monitoring path: a dropped sample yields no
			// observation this period (the controller keeps the VM's
			// existing history); stale and noisy readings come back as
			// values, as they would from a real flaky guest agent.
			avg, _, fresh = vm.SampleSpinPeriod()
		}
		if avg <= s.opts.NoiseFloor {
			avg = 0
		}
		if fresh {
			s.ctl.Observe(vm.ID(), avg, s.CurrentSlice(vm))
		}
		if s.opts.AutoDetect {
			contended := sumContended(vm)
			if contended > s.prevContended[vm.ID()] {
				s.activity[vm.ID()] = 0
			} else {
				s.activity[vm.ID()]++
			}
			s.prevContended[vm.ID()] = contended
		}
		admin := vm.AdminSlice
		if s.opts.AdaptiveNonParallel {
			r := 0.5*float64(vm.SamplePeriodIOEvents()) + 0.5*s.ioRate[vm.ID()]
			s.ioRate[vm.ID()] = r
			if admin == 0 && vm.Class() == vmm.ClassNonParallel && r >= s.opts.LatencySensitiveRate {
				admin = s.opts.NonParallelShort
			}
		}
		infos = append(infos, core.VMInfo{
			ID:         vm.ID(),
			Parallel:   s.isParallel(vm),
			AdminSlice: admin,
		})
	}
	var decisions map[int]sim.Time
	if s.opts.DisableNodeMinimum {
		decisions = s.ctl.PerVMSlices(infos)
	} else {
		decisions = s.ctl.NodeSlices(infos)
	}
	for _, vm := range guests {
		sl := decisions[vm.ID()]
		if s.slices[vm.ID()] != sl {
			n.TraceSlice(vm, sl)
		}
		s.slices[vm.ID()] = sl
	}
}

func sumContended(vm *vmm.VM) uint64 {
	var c uint64
	for _, l := range vm.Locks() {
		c += l.Contended()
	}
	return c
}
