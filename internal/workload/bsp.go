package workload

import (
	"fmt"

	"atcsched/internal/rng"
	"atcsched/internal/sim"
	"atcsched/internal/telemetry"
	"atcsched/internal/vmm"
)

// BSPApp is one parallel application instance running across a virtual
// cluster (one process per VCPU of every member VM).
type BSPApp struct {
	Profile AppProfile
	VMs     []*vmm.VM
	locks   [][]*vmm.Spinlock
	seed    uint64
	// barriers holds per-VM barrier state when IntraVMBarrier is set.
	barriers []*vmBarrier
}

// vmBarrier is a spin-barrier across one VM's ranks: a lock-protected
// arrival counter plus a generation number the waiters poll.
type vmBarrier struct {
	lock    *vmm.Spinlock
	n       int
	arrived int
	gen     uint64
}

// NewBSPApp binds a profile to a virtual cluster: it creates the guest
// locks and installs the per-process cache profiles. Call before
// World.Start.
func NewBSPApp(profile AppProfile, vms []*vmm.VM, seed uint64) *BSPApp {
	if err := profile.Validate(); err != nil {
		panic(err)
	}
	if len(vms) == 0 {
		panic("workload: BSP app needs at least one VM")
	}
	app := &BSPApp{Profile: profile, VMs: vms, seed: seed}
	if profile.IntraVMBarrier && profile.BarrierPollGap == 0 {
		app.Profile.BarrierPollGap = 20 * sim.Microsecond
	}
	for _, vm := range vms {
		var ls []*vmm.Spinlock
		for i := 0; i < profile.LocksPerVM; i++ {
			ls = append(ls, vm.NewLock())
		}
		app.locks = append(app.locks, ls)
		if app.Profile.IntraVMBarrier {
			app.barriers = append(app.barriers, &vmBarrier{lock: vm.NewLock(), n: len(vm.VCPUs())})
		}
		for _, v := range vm.VCPUs() {
			v.SetCacheProfile(profile.Footprint, profile.ColdRate)
		}
	}
	return app
}

// Processes returns the total process count (VMs × VCPUs).
func (a *BSPApp) Processes() int {
	n := 0
	for _, vm := range a.VMs {
		n += len(vm.VCPUs())
	}
	return n
}

// SpinLatencyMean returns the mean guest spinlock latency across the
// cluster's VMs (the paper's Figure 5 y-axis).
func (a *BSPApp) SpinLatencyMean() sim.Time {
	var sum sim.Time
	var n int64
	for _, vm := range a.VMs {
		c := vm.SpinMon.LifetimeCount()
		sum += vm.SpinMon.LifetimeMean() * sim.Time(c)
		n += c
	}
	if n == 0 {
		return 0
	}
	return sum / sim.Time(n)
}

// LLCMisses sums the member VMs' cache misses (Figure 8).
func (a *BSPApp) LLCMisses() uint64 {
	var m uint64
	for _, vm := range a.VMs {
		m += vm.LLCMisses()
	}
	return m
}

// tag encodes (round, iteration, source VM) uniquely; together with the
// destination process rank it forms the mailbox key.
func (a *BSPApp) tag(round, iter, srcVM int) int {
	return (round*a.Profile.Iterations+iter)*len(a.VMs) + srcVM
}

// proc returns the process state machine for (vmIdx, rank) in the given
// round.
func (a *BSPApp) proc(vmIdx, rank, round int) vmm.Process {
	return &bspProc{
		app:   a,
		vmIdx: vmIdx,
		rank:  rank,
		round: round,
		rng:   rng.NewStream(a.seed, uint64(round)<<32|uint64(vmIdx)<<16|uint64(rank)),
	}
}

// bspProc executes Profile.Iterations supersteps: compute, intra-VM
// lock sections, cross-VM sends, then blocking receives.
type bspProc struct {
	app   *BSPApp
	vmIdx int
	rank  int
	round int
	rng   *rng.Source

	iter    int
	queue   []vmm.Action
	qi      int
	started bool

	// Spin-barrier sub-state (IntraVMBarrier): the flat action queue
	// cannot express the data-dependent poll loop, so Next drives it.
	barrierPending bool // run a barrier once the queue drains
	inBarrier      bool
	bState         int // 0: acquire, 1: release, 2: poll gap or exit
	bArrived       bool
	bReleased      bool
	bGen           uint64
}

// Next implements vmm.Process.
func (p *bspProc) Next() vmm.Action {
	if p.inBarrier {
		return p.barrierNext()
	}
	if p.qi >= len(p.queue) {
		if p.barrierPending {
			p.enterBarrier()
			return p.barrierNext()
		}
		if p.started && p.iter >= p.app.Profile.Iterations {
			return vmm.Done()
		}
		if !p.started {
			p.started = true
		}
		p.buildIteration()
		if p.qi >= len(p.queue) && !p.barrierPending {
			return vmm.Done()
		}
		return p.Next()
	}
	a := p.queue[p.qi]
	p.qi++
	return a
}

// enterBarrier arms the spin-barrier sub-machine for this iteration.
func (p *bspProc) enterBarrier() {
	p.barrierPending = false
	p.inBarrier = true
	p.bState = 0
	p.bArrived = false
	p.bReleased = false
}

// barrierNext emits the next barrier action: acquire the barrier lock
// (arriving and checking the generation under it), release, and either
// exit or burn a poll gap and try again. All the spinning happens on a
// real guest lock, so barrier waits show up in the VM's spin monitor —
// §II-B's picture of synchronization phases.
func (p *bspProc) barrierNext() vmm.Action {
	b := p.app.barriers[p.vmIdx]
	switch p.bState {
	case 0:
		p.bState = 1
		return vmm.Action{Kind: vmm.ActAcquire, Lock: b.lock, Then: func() {
			if !p.bArrived {
				p.bGen = b.gen
				b.arrived++
				p.bArrived = true
				if b.arrived == b.n {
					b.arrived = 0
					b.gen++
				}
			}
			if b.gen != p.bGen {
				p.bReleased = true
			}
		}}
	case 1:
		p.bState = 2
		return vmm.Release(b.lock)
	default:
		if p.bReleased {
			p.inBarrier = false
			return p.Next()
		}
		p.bState = 0
		return vmm.Compute(p.app.Profile.BarrierPollGap)
	}
}

// buildIteration materializes the action list for the next superstep.
func (p *bspProc) buildIteration() {
	pr := &p.app.Profile
	if p.iter >= pr.Iterations {
		p.queue = nil
		p.qi = 0
		return
	}
	it := p.iter
	p.iter++
	q := p.queue[:0]

	// Compute phase (jittered so ranks de-synchronize realistically).
	work := sim.Time(p.rng.Jitter(float64(pr.ComputePerIter), pr.ComputeJitter))
	q = append(q, vmm.Compute(work))

	// Intra-VM shared-memory synchronization: short spinlock critical
	// sections against sibling processes.
	locks := p.app.locks[p.vmIdx]
	for k := 0; k < pr.LockOpsPerIter; k++ {
		l := locks[(p.rank+k)%len(locks)]
		q = append(q,
			vmm.Acquire(l),
			vmm.Compute(pr.CSLength),
			vmm.Release(l),
		)
	}

	// Cross-VM exchange: post all sends, then wait for all receives.
	n := len(p.app.VMs)
	for _, dst := range pr.Pattern.sendTo(it, p.vmIdx, n) {
		q = append(q, vmm.Send(p.app.VMs[dst], p.rank, p.app.tag(p.round, it, p.vmIdx), pr.MsgSize))
	}
	for _, src := range pr.Pattern.recvFrom(it, p.vmIdx, n) {
		q = append(q, vmm.RecvPoll(p.app.tag(p.round, it, src), pr.RecvPoll))
	}

	p.queue = q
	p.qi = 0
	p.barrierPending = pr.IntraVMBarrier
}

// ParallelRun drives a BSPApp for repeated rounds (the paper reruns each
// application with a batch script): it installs the processes, restarts
// every process when all of them finish a round, and records per-round
// wall times.
//
// The run coordinates from a "home" node — the node hosting the app's
// first VM. In a serial world this is invisible (every node shares the
// engine, the historical behaviour is preserved exactly); in a sharded
// world completion notes and round restarts travel between nodes as
// cross-node signals with one network lookahead of delay, modelling the
// coordination RPCs a real batch script would make, and keeping the
// round protocol independent of how nodes map to shards.
type ParallelRun struct {
	App  *BSPApp
	home *vmm.Node
	// TargetRounds is how many rounds to measure; OnTarget fires once
	// when reached. The run keeps repeating afterwards when Forever is
	// set (background load in the mixed experiments).
	TargetRounds int
	Forever      bool
	OnTarget     func()

	// nodes groups the app's VMs by hosting node, in first-appearance
	// order — the restart fan-out unit in sharded mode.
	nodes []runNode
	// hook is the per-VCPU OnDone callback (bound once; mode-dependent).
	hook func(*vmm.VCPU) vmm.Process
	// noteFn is the home-side completion note (bound once, sharded mode).
	noteFn func()

	times     []float64
	startedAt sim.Time
	remaining int
	round     int
	fired     bool
}

// runNode is one node's slice of the app: the indices into App.VMs of
// the VMs it hosts.
type runNode struct {
	node   *vmm.Node
	vmIdxs []int
}

// NewParallelRun builds a runner; call Install before World.Start.
func NewParallelRun(app *BSPApp, targetRounds int, forever bool, onTarget func()) *ParallelRun {
	if targetRounds <= 0 {
		panic(fmt.Sprintf("workload: target rounds must be positive, got %d", targetRounds))
	}
	if app == nil || len(app.VMs) == 0 {
		panic("workload: parallel run needs an app with at least one VM")
	}
	return &ParallelRun{
		App:          app,
		home:         app.VMs[0].Node(),
		TargetRounds: targetRounds,
		Forever:      forever,
		OnTarget:     onTarget,
	}
}

// publishRound emits a BSP round span into the home node's telemetry
// registry (no-op without an attached plane). The span covers the round
// just completed; Value carries the round index.
func (r *ParallelRun) publishRound(now sim.Time) {
	reg := r.home.TelemetryRegistry()
	if reg == nil {
		return
	}
	reg.AddSpan(telemetry.Span{
		Name:  "round",
		Track: r.App.VMs[0].Name(),
		Node:  r.home.ID(),
		Start: r.startedAt,
		End:   now,
		Value: sim.Time(r.round),
	})
}

// Install sets up round 0's processes on every VCPU of the cluster.
func (r *ParallelRun) Install() {
	if r.home.World().Sharded() {
		r.hook = r.onDoneSharded
		r.noteFn = r.noteDone
	} else {
		r.hook = r.onDone
	}
	for vmIdx, vm := range r.App.VMs {
		n := vm.Node()
		found := false
		for i := range r.nodes {
			if r.nodes[i].node == n {
				r.nodes[i].vmIdxs = append(r.nodes[i].vmIdxs, vmIdx)
				found = true
				break
			}
		}
		if !found {
			r.nodes = append(r.nodes, runNode{node: n, vmIdxs: []int{vmIdx}})
		}
	}
	r.remaining = r.App.Processes()
	r.startedAt = r.home.Engine().Now()
	for vmIdx, vm := range r.App.VMs {
		for rank, v := range vm.VCPUs() {
			v.SetProcess(r.App.proc(vmIdx, rank, r.round), r.hook)
		}
	}
}

// onDone is the serial-mode per-process completion hook: the last
// finisher of a round records the time and restarts everyone inline.
func (r *ParallelRun) onDone(v *vmm.VCPU) vmm.Process {
	r.remaining--
	if r.remaining > 0 {
		return nil // idle until the round restarts
	}
	now := r.home.Engine().Now()
	r.times = append(r.times, (now - r.startedAt).Seconds())
	r.publishRound(now)
	r.round++
	if r.round >= r.TargetRounds && !r.fired {
		r.fired = true
		if r.OnTarget != nil {
			r.OnTarget()
		}
	}
	if r.round >= r.TargetRounds && !r.Forever {
		return nil
	}
	// Restart: install the new round on every process; this VCPU gets
	// its new process as the return value, the others are revived.
	r.startedAt = now
	r.remaining = r.App.Processes()
	var mine vmm.Process
	for vmIdx, vm := range r.App.VMs {
		for rank, u := range vm.VCPUs() {
			p := r.App.proc(vmIdx, rank, r.round)
			if u == v {
				mine = p
				continue
			}
			u.SetProcess(p, r.onDone)
			u.VM().Node().WakeIdle(u)
		}
	}
	return mine
}

// onDoneSharded is the sharded-mode completion hook: the finishing VCPU
// idles immediately and a completion note travels to the home node as a
// cross-node signal, so the "last finisher" decision happens on one
// deterministic timeline regardless of sharding.
func (r *ParallelRun) onDoneSharded(v *vmm.VCPU) vmm.Process {
	w := r.home.World()
	w.CrossNodeSignal(v.VM().Node(), r.home, r.noteFn)
	return nil
}

// noteDone runs on the home node's engine once per completed process;
// the last note of a round records the time and fans the restart out to
// every hosting node.
func (r *ParallelRun) noteDone() {
	r.remaining--
	if r.remaining > 0 {
		return
	}
	now := r.home.Engine().Now()
	r.times = append(r.times, (now - r.startedAt).Seconds())
	r.publishRound(now)
	r.round++
	if r.round >= r.TargetRounds && !r.fired {
		r.fired = true
		if r.OnTarget != nil {
			r.OnTarget()
		}
	}
	if r.round >= r.TargetRounds && !r.Forever {
		return
	}
	r.startedAt = now
	r.remaining = r.App.Processes()
	round := r.round
	w := r.home.World()
	for i := range r.nodes {
		nd := &r.nodes[i]
		if nd.node == r.home {
			r.restartOn(nd, round)
			continue
		}
		w.CrossNodeSignal(r.home, nd.node, func() { r.restartOn(nd, round) })
	}
}

// restartOn revives one node's share of the app for the given round. By
// the time it runs, every VCPU it touches has been idle since it sent
// its completion note, so SetProcess is legal.
func (r *ParallelRun) restartOn(nd *runNode, round int) {
	for _, vmIdx := range nd.vmIdxs {
		vm := r.App.VMs[vmIdx]
		for rank, u := range vm.VCPUs() {
			u.SetProcess(r.App.proc(vmIdx, rank, round), r.hook)
			nd.node.WakeIdle(u)
		}
	}
}

// Rounds returns the number of completed rounds.
func (r *ParallelRun) Rounds() int { return r.round }

// Times returns the per-round wall times in seconds.
func (r *ParallelRun) Times() []float64 { return append([]float64(nil), r.times...) }

// MeanTime returns the mean wall time of the first TargetRounds rounds
// (or all completed rounds if fewer).
func (r *ParallelRun) MeanTime() float64 {
	n := r.TargetRounds
	if n > len(r.times) {
		n = len(r.times)
	}
	if n == 0 {
		return 0
	}
	var s float64
	for _, t := range r.times[:n] {
		s += t
	}
	return s / float64(n)
}
