package vmm

import "atcsched/internal/sim"

// EnqueueReason tells a scheduler why a VCPU became runnable.
type EnqueueReason int

// Enqueue reasons.
const (
	// EnqueueWake means the VCPU just unblocked (I/O completion, message
	// arrival, timer). Credit-family schedulers grant BOOST here.
	EnqueueWake EnqueueReason = iota
	// EnqueuePreempt means the VCPU's slice expired or it was preempted.
	EnqueuePreempt
	// EnqueueNew means the VCPU is entering the runqueue for the first
	// time.
	EnqueueNew
)

// Scheduler is the per-node VMM scheduling policy. One instance serves
// one Node; the dispatch machinery in this package calls it. All methods
// run inside simulation events (single-threaded).
type Scheduler interface {
	// Name identifies the policy ("CR", "CS", "BS", "DSS", "VS", "ATC").
	Name() string
	// Register introduces a VCPU before the simulation starts.
	Register(v *VCPU)
	// Enqueue makes a runnable VCPU eligible for dispatch.
	Enqueue(v *VCPU, reason EnqueueReason)
	// PickNext removes and returns the VCPU that should run next on p, or
	// nil to leave p idle. Implementations may steal from sibling PCPUs.
	PickNext(p *PCPU) *VCPU
	// Slice returns the time slice to grant v for its next run.
	Slice(v *VCPU) sim.Time
	// WakePreempts reports whether the freshly woken VCPU should preempt
	// p's current VCPU (the credit scheduler's "tickle").
	WakePreempts(p *PCPU, woken *VCPU) bool
	// OnTick fires every Node.Config.TickInterval (credit burning).
	OnTick(n *Node)
	// OnPeriod fires every Node.Config.SchedPeriod (credit refill,
	// spin-latency sampling, slice recomputation).
	OnPeriod(n *Node)
}

// SchedulerFactory builds a node's scheduler once the node exists, so
// implementations can keep a back-reference for preemption requests.
type SchedulerFactory func(n *Node) Scheduler
