package sim

import (
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	cases := []struct {
		t    Time
		sec  float64
		ms   float64
		us   float64
		text string
	}{
		{Second, 1, 1000, 1e6, "1.000s"},
		{30 * Millisecond, 0.03, 30, 30000, "30.000ms"},
		{300 * Microsecond, 0.0003, 0.3, 300, "300.000us"},
		{5 * Nanosecond, 5e-9, 5e-6, 0.005, "5ns"},
	}
	for _, c := range cases {
		if got := c.t.Seconds(); got != c.sec {
			t.Errorf("%v.Seconds() = %v, want %v", c.t, got, c.sec)
		}
		if got := c.t.Millis(); got != c.ms {
			t.Errorf("%v.Millis() = %v, want %v", c.t, got, c.ms)
		}
		if got := c.t.Micros(); got != c.us {
			t.Errorf("%v.Micros() = %v, want %v", c.t, got, c.us)
		}
		if got := c.t.String(); got != c.text {
			t.Errorf("String() = %q, want %q", got, c.text)
		}
	}
	if FromSeconds(1.5) != 1500*Millisecond {
		t.Errorf("FromSeconds(1.5) = %v", FromSeconds(1.5))
	}
	if FromMillis(0.3) != 300*Microsecond {
		t.Errorf("FromMillis(0.3) = %v", FromMillis(0.3))
	}
}

func TestEngineOrdering(t *testing.T) {
	e := New()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
	if e.Now() != 30 {
		t.Fatalf("Now() = %v, want 30", e.Now())
	}
	if e.Executed() != 3 {
		t.Fatalf("Executed() = %d, want 3", e.Executed())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events fired out of order: %v", order)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := New()
	fired := false
	ev := e.Schedule(10, func() { fired = true })
	e.Cancel(ev)
	e.Cancel(ev) // double-cancel is a no-op
	e.Cancel(Handle{})
	e.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if !ev.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestEngineCancelHeadThenRun(t *testing.T) {
	e := New()
	var got []int
	head := e.Schedule(1, func() { got = append(got, 1) })
	e.Schedule(2, func() { got = append(got, 2) })
	e.Cancel(head)
	e.Run()
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("got %v, want [2]", got)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := New()
	var fired []Time
	for _, d := range []Time{5, 10, 15, 20} {
		d := d
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	e.RunUntil(12)
	if len(fired) != 2 {
		t.Fatalf("fired = %v, want 2 events", fired)
	}
	if e.Now() != 12 {
		t.Fatalf("Now() = %v, want 12 after RunUntil", e.Now())
	}
	e.RunFor(3) // to t=15
	if len(fired) != 3 {
		t.Fatalf("fired = %v after RunFor(3)", fired)
	}
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("fired = %v after Run", fired)
	}
}

func TestEngineReentrantScheduling(t *testing.T) {
	e := New()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			e.Schedule(10, tick)
		}
	}
	e.Schedule(0, tick)
	e.Run()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if e.Now() != 40 {
		t.Fatalf("Now() = %v, want 40", e.Now())
	}
}

func TestEngineStopResume(t *testing.T) {
	e := New()
	count := 0
	e.Schedule(1, func() { count++; e.Stop() })
	e.Schedule(2, func() { count++ })
	e.Run()
	if count != 1 {
		t.Fatalf("count = %d after Stop, want 1", count)
	}
	if !e.Stopped() {
		t.Fatal("Stopped() = false")
	}
	e.Resume()
	e.Run()
	if count != 2 {
		t.Fatalf("count = %d after Resume, want 2", count)
	}
}

func TestRunUntilDoesNotAdvanceClockWhenStopped(t *testing.T) {
	// Regression test: a Stop mid-run used to let RunUntil jump the
	// clock to the horizon, so a later Resume replayed pending events
	// "in the past" (clock regression).
	e := New()
	e.Schedule(5, func() { e.Stop() })
	fired := false
	e.Schedule(10, func() { fired = true })
	e.RunUntil(1000)
	if e.Now() != 5 {
		t.Fatalf("Now() = %v after early stop, want 5", e.Now())
	}
	if fired {
		t.Fatal("event after Stop fired")
	}
	e.Resume()
	e.RunUntil(20)
	if !fired || e.Now() != 20 {
		t.Fatalf("fired=%v Now=%v after resume", fired, e.Now())
	}
}

func TestEnginePanicsOnPastEvent(t *testing.T) {
	e := New()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestEnginePanicsOnNegativeDelay(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	e.Schedule(-1, func() {})
}

func TestEnginePanicsOnNilCallback(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Error("nil callback did not panic")
		}
	}()
	e.Schedule(1, nil)
}

// Property: for any set of non-negative delays, events fire in
// non-decreasing time order and the clock ends at the max delay.
func TestEngineMonotonicProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := New()
		var fired []Time
		var max Time
		for _, d := range delays {
			d := Time(d)
			if d > max {
				max = d
			}
			e.Schedule(d, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(delays) == 0 || e.Now() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: canceling an arbitrary subset leaves exactly the others firing.
func TestEngineCancelSubsetProperty(t *testing.T) {
	f := func(delays []uint8, mask []bool) bool {
		e := New()
		fired := make(map[int]bool)
		evs := make([]Handle, len(delays))
		for i, d := range delays {
			i := i
			evs[i] = e.Schedule(Time(d), func() { fired[i] = true })
		}
		want := len(delays)
		for i := range delays {
			if i < len(mask) && mask[i] {
				e.Cancel(evs[i])
				want--
			}
		}
		e.Run()
		if len(fired) != want {
			return false
		}
		for i := range delays {
			canceled := i < len(mask) && mask[i]
			if fired[i] == canceled {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := New()
		for j := 0; j < 1000; j++ {
			e.Schedule(Time(j%97), func() {})
		}
		e.Run()
	}
}

// TestEngineHeapStress drives the 4-ary event queue through a large
// interleaved push/cancel/fire sequence and checks the global firing
// order, exercising deep sifts and mid-heap removals that the small
// property tests rarely reach.
func TestEngineHeapStress(t *testing.T) {
	e := New()
	const n = 20000
	state := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	var fired []Time
	handles := make([]Handle, 0, n)
	for i := 0; i < n; i++ {
		d := Time(next() % 1e6)
		handles = append(handles, e.Schedule(d, func() { fired = append(fired, e.Now()) }))
		// Cancel ~1/4 of the queued events, from arbitrary heap slots.
		if next()%4 == 0 {
			e.Cancel(handles[int(next()%uint64(len(handles)))])
		}
	}
	canceled := 0
	for _, h := range handles {
		if h.Canceled() {
			canceled++
		}
	}
	e.Run()
	if len(fired)+canceled != n {
		t.Fatalf("fired %d + canceled %d != scheduled %d", len(fired), canceled, n)
	}
	for i := 1; i < len(fired); i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("order violated at %d: %v after %v", i, fired[i], fired[i-1])
		}
	}
	if e.Pending() != 0 {
		t.Errorf("pending = %d after drain", e.Pending())
	}
}

// TestEngineSteadyStateAllocs checks that event recycling keeps the
// schedule→fire→reschedule loop allocation-free once warm.
func TestEngineSteadyStateAllocs(t *testing.T) {
	e := New()
	var churn func()
	budget := 0
	churn = func() {
		if budget > 0 {
			budget--
			e.Schedule(Time(budget%311)+1, churn)
		}
	}
	// Warm the free list and the queue's backing array.
	budget = 2000
	e.Schedule(1, churn)
	e.Run()
	avg := testing.AllocsPerRun(50, func() {
		budget = 100
		e.Schedule(1, churn)
		e.Run()
	})
	if avg > 1 {
		t.Errorf("steady-state allocs per 101-event burst = %.1f, want ~0", avg)
	}
}
