package report

import (
	"strings"
	"testing"
)

func TestTableString(t *testing.T) {
	tb := New("Demo", "name", "value")
	tb.Add("alpha", "1.0")
	tb.Add("b", "22.5")
	tb.AddNote("note: %d", 7)
	out := tb.String()
	if !strings.Contains(out, "Demo") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	// Alignment: "alpha" and "b" rows have value starting at same column.
	if strings.Index(lines[2], "1.0") != strings.Index(lines[3], "22.5") {
		t.Errorf("columns unaligned:\n%s", out)
	}
	if !strings.Contains(out, "note: 7") {
		t.Error("missing note")
	}
}

func TestAddPanicsOnWidthMismatch(t *testing.T) {
	tb := New("x", "a", "b")
	defer func() {
		if recover() == nil {
			t.Error("mismatched row accepted")
		}
	}()
	tb.Add("only-one")
}

func TestCSVEscaping(t *testing.T) {
	tb := New("", "a", "b")
	tb.Add(`va"l`, "x,y")
	csv := tb.CSV()
	want := "a,b\n\"va\"\"l\",\"x,y\"\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
}

func TestMarkdown(t *testing.T) {
	tb := New("T", "h1", "h2")
	tb.Add("r1", "r2")
	md := tb.Markdown()
	for _, frag := range []string{"**T**", "| h1 | h2 |", "|---|---|", "| r1 | r2 |"} {
		if !strings.Contains(md, frag) {
			t.Errorf("markdown missing %q:\n%s", frag, md)
		}
	}
}

func TestFormatters(t *testing.T) {
	if F(1.23456) != "1.235" {
		t.Errorf("F = %q", F(1.23456))
	}
	if F2(1.236) != "1.24" {
		t.Errorf("F2 = %q", F2(1.236))
	}
	if Ms(0.0123) != "12.300ms" {
		t.Errorf("Ms = %q", Ms(0.0123))
	}
	if I(42) != "42" || I(int64(7)) != "7" || I(uint64(9)) != "9" {
		t.Error("I broken")
	}
}

func TestEmptyTable(t *testing.T) {
	tb := New("")
	if out := tb.String(); out != "" {
		t.Errorf("empty table output %q", out)
	}
}

func TestSpark(t *testing.T) {
	if Spark(nil) != "" {
		t.Error("empty spark not empty")
	}
	s := Spark([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Errorf("spark length = %d", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[3] != '█' {
		t.Errorf("spark endpoints = %q", s)
	}
	flat := Spark([]float64{5, 5, 5})
	for _, r := range flat {
		if r != '▁' {
			t.Errorf("flat spark = %q", flat)
		}
	}
	// Monotone values produce non-decreasing rune heights.
	mono := []rune(Spark([]float64{1, 2, 4, 8, 16}))
	for i := 1; i < len(mono); i++ {
		if indexOf(mono[i]) < indexOf(mono[i-1]) {
			t.Errorf("monotone spark decreased: %q", string(mono))
		}
	}
}

func indexOf(r rune) int {
	for i, s := range []rune("▁▂▃▄▅▆▇█") {
		if s == r {
			return i
		}
	}
	return -1
}
