// Package runner executes independent simulation cells across a bounded
// worker pool. Every paper artifact is a grid of fully independent
// deterministic simulations — (approach × app × node-count × slice)
// cells — so the experiment drivers fan their cells through Map/Grid
// instead of looping serially. Results always come back in submission
// order, and each cell builds its own cluster from an explicit seed, so
// the rendered tables are byte-identical to a serial run regardless of
// worker count or scheduling interleaving.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
)

// defaultWorkers is the pool width used when a call does not override
// it; 0 means "use GOMAXPROCS". It is set once at startup from the
// -parallel flag (or SetDefaultWorkers in tests) and read atomically so
// concurrent experiment runs see a consistent value.
var defaultWorkers atomic.Int64

// SetDefaultWorkers sets the pool width used by Map and Grid. n <= 0
// restores the default (GOMAXPROCS). Safe for concurrent use.
func SetDefaultWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// DefaultWorkers returns the effective pool width: the value installed
// by SetDefaultWorkers, or GOMAXPROCS when unset.
func DefaultWorkers() int {
	if n := defaultWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// cells counts every cell executed through the package since process
// start, for end-of-run observability (cmd/experiments prints it).
var cells atomic.Uint64

// Cells returns the total number of cells executed so far.
func Cells() uint64 { return cells.Load() }

// Seed derives a deterministic per-cell seed from a base seed and the
// cell's grid coordinates (SplitMix64 mixing). Distinct coordinates
// yield independent streams; the same (base, coords) always yields the
// same seed, so a sweep that wants uncorrelated per-cell randomness
// stays reproducible under any worker count.
func Seed(base uint64, coords ...int) uint64 {
	x := base
	for _, c := range coords {
		x = splitmix64(x ^ splitmix64(uint64(c)+0x9e3779b97f4a7c15))
	}
	return splitmix64(x)
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Map runs fn(0..n-1) across the default worker pool and returns the
// results indexed by input, i.e. in submission order. When several
// cells fail, the error of the lowest index wins, so error reporting is
// as deterministic as the results. A panic in any cell is re-raised on
// the calling goroutine after the pool drains.
func Map[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	return MapN(DefaultWorkers(), n, fn)
}

// MapN is Map with an explicit worker count. workers <= 1 runs the
// cells serially on the calling goroutine (no pool overhead, and a
// genuinely serial execution for equivalence testing).
func MapN[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("runner: negative cell count %d", n)
	}
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			cells.Add(1)
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	errs := make([]error, n)
	panics := make([]any, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		// Label each worker goroutine so CPU/mutex profiles of an
		// experiment sweep attribute samples to the pool and its cells.
		labels := pprof.Labels("pool", "runner-worker", "worker", strconv.Itoa(w))
		go pprof.Do(context.Background(), labels, func(context.Context) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				cells.Add(1)
				func() {
					defer func() {
						if r := recover(); r != nil {
							panics[i] = r
						}
					}()
					out[i], errs[i] = fn(i)
				}()
			}
		})
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Grid runs fn over a rows×cols grid through the default pool and
// returns results indexed [row][col]. Cells are independent; rows of
// the result are in submission order like Map.
func Grid[T any](rows, cols int, fn func(r, c int) (T, error)) ([][]T, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("runner: negative grid %dx%d", rows, cols)
	}
	flat, err := Map(rows*cols, func(i int) (T, error) {
		return fn(i/cols, i%cols)
	})
	if err != nil {
		return nil, err
	}
	out := make([][]T, rows)
	for r := 0; r < rows; r++ {
		out[r] = flat[r*cols : (r+1)*cols : (r+1)*cols]
	}
	return out, nil
}
