package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"atcsched/internal/rng"
)

func exactQuantile(xs []float64, p float64) float64 {
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	idx := p * float64(len(c)-1)
	lo := int(math.Floor(idx))
	hi := int(math.Ceil(idx))
	frac := idx - float64(lo)
	return c[lo]*(1-frac) + c[hi]*frac
}

func TestP2AgainstExactUniform(t *testing.T) {
	src := rng.New(42)
	for _, p := range []float64{0.5, 0.9, 0.95, 0.99} {
		q := NewP2Quantile(p)
		var xs []float64
		for i := 0; i < 50000; i++ {
			x := src.Float64() * 100
			xs = append(xs, x)
			q.Add(x)
		}
		exact := exactQuantile(xs, p)
		got := q.Value()
		if math.Abs(got-exact) > 1.5 { // 1.5 of a 0..100 range
			t.Errorf("p=%v: P2 = %.3f, exact = %.3f", p, got, exact)
		}
		if q.N() != 50000 {
			t.Errorf("N = %d", q.N())
		}
		if q.P() != p {
			t.Errorf("P = %v", q.P())
		}
	}
}

func TestP2AgainstExactExponential(t *testing.T) {
	// Heavy-tailed input is where P² usually struggles; allow a looser
	// relative tolerance.
	src := rng.New(7)
	q := NewP2Quantile(0.99)
	var xs []float64
	for i := 0; i < 100000; i++ {
		x := src.Exp(10)
		xs = append(xs, x)
		q.Add(x)
	}
	exact := exactQuantile(xs, 0.99)
	got := q.Value()
	if math.Abs(got-exact)/exact > 0.1 {
		t.Errorf("p99: P2 = %.3f, exact = %.3f", got, exact)
	}
}

func TestP2SmallSamples(t *testing.T) {
	q := NewP2Quantile(0.5)
	if q.Value() != 0 {
		t.Error("empty estimator not 0")
	}
	q.Add(3)
	if q.Value() != 3 {
		t.Errorf("single sample = %v", q.Value())
	}
	q.Add(1)
	q.Add(2)
	if got := q.Value(); got != 2 {
		t.Errorf("median of {1,2,3} = %v", got)
	}
}

func TestP2MonotoneInP(t *testing.T) {
	// Estimates for increasing p over the same stream must be
	// non-decreasing.
	src := rng.New(13)
	qs := []*P2Quantile{NewP2Quantile(0.25), NewP2Quantile(0.5), NewP2Quantile(0.9), NewP2Quantile(0.99)}
	for i := 0; i < 20000; i++ {
		x := src.Normal(50, 10)
		for _, q := range qs {
			q.Add(x)
		}
	}
	for i := 1; i < len(qs); i++ {
		if qs[i].Value() < qs[i-1].Value()-0.5 {
			t.Errorf("q%.2f=%.2f < q%.2f=%.2f", qs[i].P(), qs[i].Value(), qs[i-1].P(), qs[i-1].Value())
		}
	}
}

func TestP2BoundedByExtremesProperty(t *testing.T) {
	f := func(raw []uint16, pRaw uint8) bool {
		if len(raw) < 6 {
			return true
		}
		p := 0.05 + float64(pRaw%90)/100
		q := NewP2Quantile(p)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, r := range raw {
			x := float64(r)
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
			q.Add(x)
		}
		v := q.Value()
		return v >= lo-1e-9 && v <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestP2PanicsOnBadP(t *testing.T) {
	for _, p := range []float64{0, 1, -0.1, 1.5} {
		p := p
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("p=%v accepted", p)
				}
			}()
			NewP2Quantile(p)
		}()
	}
}
