// Package validate scores measured results against the paper's stated
// claims (internal/paperdata): rank agreement between approach
// orderings, band membership for quoted ratios, and directional checks.
// The "score" experiment uses it to render a reproduction scorecard.
package validate

import (
	"fmt"
	"math"
	"sort"
)

// Check is one claim verdict.
type Check struct {
	Name     string
	Paper    string // the paper's claim, rendered
	Measured string // what we measured, rendered
	Pass     bool
}

// Scorecard accumulates claim verdicts.
type Scorecard struct {
	Checks []Check
}

// Add records a verdict.
func (s *Scorecard) Add(name, paper, measured string, pass bool) {
	s.Checks = append(s.Checks, Check{Name: name, Paper: paper, Measured: measured, Pass: pass})
}

// Passed returns how many checks passed.
func (s *Scorecard) Passed() int {
	n := 0
	for _, c := range s.Checks {
		if c.Pass {
			n++
		}
	}
	return n
}

// SpearmanRank returns the Spearman rank correlation between the
// orderings implied by two value maps over the same keys (ties get
// average ranks). It errors when the key sets differ or fewer than two
// keys are given.
func SpearmanRank(a, b map[string]float64) (float64, error) {
	if len(a) != len(b) || len(a) < 2 {
		return 0, fmt.Errorf("validate: need matching key sets of >= 2, got %d vs %d", len(a), len(b))
	}
	keys := make([]string, 0, len(a))
	for k := range a {
		if _, ok := b[k]; !ok {
			return 0, fmt.Errorf("validate: key %q missing from second map", k)
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ra := ranks(keys, a)
	rb := ranks(keys, b)
	// Pearson over the ranks.
	n := float64(len(keys))
	var ma, mb float64
	for _, k := range keys {
		ma += ra[k]
		mb += rb[k]
	}
	ma /= n
	mb /= n
	var sxy, sxx, syy float64
	for _, k := range keys {
		dx, dy := ra[k]-ma, rb[k]-mb
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, fmt.Errorf("validate: constant ranks")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// ranks assigns average ranks (1-based) to the keys by their values.
func ranks(keys []string, vals map[string]float64) map[string]float64 {
	idx := append([]string(nil), keys...)
	sort.SliceStable(idx, func(i, j int) bool { return vals[idx[i]] < vals[idx[j]] })
	out := make(map[string]float64, len(idx))
	for i := 0; i < len(idx); {
		j := i
		for j+1 < len(idx) && vals[idx[j+1]] == vals[idx[i]] {
			j++
		}
		avg := (float64(i+1) + float64(j+1)) / 2
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}

// InBand reports whether v lies within [lo*slack_lo, hi*slack_hi]-style
// bounds; slack widens the paper band multiplicatively on both sides
// (slack >= 1).
func InBand(v, lo, hi, slack float64) bool {
	if slack < 1 {
		slack = 1
	}
	return v >= lo/slack && v <= hi*slack
}

// SameDirection reports whether measured moved the same way as the paper
// claims relative to a baseline of 1.0 (ratio > 1 means "worse/larger").
func SameDirection(paperRatio, measuredRatio float64) bool {
	switch {
	case paperRatio > 1:
		return measuredRatio > 1
	case paperRatio < 1:
		return measuredRatio < 1
	default:
		return measuredRatio == 1
	}
}
