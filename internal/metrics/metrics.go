// Package metrics provides the statistics the evaluation harness needs:
// streaming mean/variance (Welford), min/max tracking, fixed-bucket
// histograms, Pearson correlation (used by the paper to show spinlock
// latency tracks performance, §II-B), and the Euclidean closeness metric
// of Equation (1) used to pick the minimum time-slice threshold (§III-B).
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Welford accumulates a stream of float64 samples and reports count,
// mean, variance, and extrema in O(1) memory.
type Welford struct {
	n        int64
	mean     float64
	m2       float64
	min, max float64
}

// Add incorporates one sample.
func (w *Welford) Add(x float64) {
	if w.n == 0 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of samples added.
func (w *Welford) N() int64 { return w.n }

// Mean returns the sample mean, or 0 with no samples.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 for n < 2).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Stddev returns the sample standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Variance()) }

// Min returns the smallest sample (0 with no samples).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest sample (0 with no samples).
func (w *Welford) Max() float64 { return w.max }

// Sum returns n*mean, the total of all samples.
func (w *Welford) Sum() float64 { return w.mean * float64(w.n) }

// Reset discards all samples.
func (w *Welford) Reset() { *w = Welford{} }

// Merge folds other into w (parallel-algorithm form of Welford).
func (w *Welford) Merge(other *Welford) {
	if other.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *other
		return
	}
	n := w.n + other.n
	d := other.mean - w.mean
	w.m2 += other.m2 + d*d*float64(w.n)*float64(other.n)/float64(n)
	w.mean += d * float64(other.n) / float64(n)
	if other.min < w.min {
		w.min = other.min
	}
	if other.max > w.max {
		w.max = other.max
	}
	w.n = n
}

// Histogram is a fixed-width bucket histogram over [lo, hi); samples
// outside the range land in saturating under/overflow buckets.
type Histogram struct {
	lo, hi  float64
	width   float64
	buckets []int64
	under   int64
	over    int64
	total   int64
	sum     float64
}

// NewHistogram creates a histogram of n equal buckets spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("metrics: invalid histogram bounds")
	}
	return &Histogram{lo: lo, hi: hi, width: (hi - lo) / float64(n), buckets: make([]int64, n)}
}

// Add records a sample.
func (h *Histogram) Add(x float64) {
	h.total++
	h.sum += x
	switch {
	case x < h.lo:
		h.under++
	case x >= h.hi:
		h.over++
	default:
		i := int((x - h.lo) / h.width)
		if i >= len(h.buckets) {
			i = len(h.buckets) - 1
		}
		h.buckets[i]++
	}
}

// Total returns the number of samples recorded.
func (h *Histogram) Total() int64 { return h.total }

// Mean returns the mean of recorded samples.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) int64 { return h.buckets[i] }

// NumBuckets returns the bucket count.
func (h *Histogram) NumBuckets() int { return len(h.buckets) }

// Quantile returns an approximate q-quantile (q in [0,1]) assuming
// within-bucket uniformity. Under/overflow samples pin to lo/hi.
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 || q > 1 {
		panic("metrics: quantile out of [0,1]")
	}
	if h.total == 0 {
		return 0
	}
	target := q * float64(h.total)
	cum := float64(h.under)
	if target <= cum {
		return h.lo
	}
	for i, c := range h.buckets {
		if cum+float64(c) >= target && c > 0 {
			frac := (target - cum) / float64(c)
			return h.lo + (float64(i)+frac)*h.width
		}
		cum += float64(c)
	}
	return h.hi
}

// Pearson returns the Pearson correlation coefficient of x and y. It
// returns an error when lengths differ, fewer than two points are given,
// or either series is constant.
func Pearson(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("metrics: length mismatch %d vs %d", len(x), len(y))
	}
	if len(x) < 2 {
		return 0, fmt.Errorf("metrics: need at least 2 points, have %d", len(x))
	}
	n := float64(len(x))
	var mx, my float64
	for i := range x {
		mx += x[i]
		my += y[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, fmt.Errorf("metrics: constant series has undefined correlation")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Euclidean implements Equation (1) of the paper:
// D(O,P) = sqrt(sum_i (O_i - P_i)^2), where O_i is the ith application's
// optimal normalized execution time and P_i its normalized execution time
// under a candidate setting. Smaller is closer to per-app optimal.
func Euclidean(o, p []float64) (float64, error) {
	if len(o) != len(p) {
		return 0, fmt.Errorf("metrics: length mismatch %d vs %d", len(o), len(p))
	}
	var s float64
	for i := range o {
		d := o[i] - p[i]
		s += d * d
	}
	return math.Sqrt(s), nil
}

// Normalize divides each value by base, the paper's "normalized execution
// time" (ratio to the CR baseline). It panics when base is 0.
func Normalize(values []float64, base float64) []float64 {
	if base == 0 {
		panic("metrics: normalize by zero base")
	}
	out := make([]float64, len(values))
	for i, v := range values {
		out[i] = v / base
	}
	return out
}

// Jain returns Jain's fairness index (Σx)²/(n·Σx²) over xs: 1 when every
// value is equal, 1/n when one value holds everything. It returns 1 for
// an empty or all-zero slice (nothing is being shared unfairly).
func Jain(xs []float64) float64 {
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Median returns the median of xs (0 for an empty slice). xs is not
// modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// Min returns the minimum of xs; it panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("metrics: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs; it panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("metrics: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// ArgMin returns the index of the smallest element; it panics on an empty
// slice. Ties resolve to the earliest index.
func ArgMin(xs []float64) int {
	if len(xs) == 0 {
		panic("metrics: ArgMin of empty slice")
	}
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}
