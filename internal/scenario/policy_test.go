package scenario

import (
	"strings"
	"testing"

	"atcsched/internal/sched/atc"
	"atcsched/internal/sched/cosched"
	"atcsched/internal/sched/registry"
	"atcsched/internal/sim"
)

// TestSchedulerOptionsThreaded shows acceptance criterion (a): scenario
// JSON tunes ATC's α/β and CS's spin-wait threshold, with unset fields
// keeping their defaults.
func TestSchedulerOptionsThreaded(t *testing.T) {
	spec, err := Load(strings.NewReader(`{
	  "nodes": 1, "pcpusPerNode": 2,
	  "scheduler": {"kind": "ATC", "options": {"control": {"alpha": "3ms", "beta": "0.2ms"}}},
	  "virtualClusters": [{"vcpus": 2, "rounds": 1}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := res.Scenario.World.Node(0).Scheduler().(*atc.Scheduler).Controller().Config()
	if cfg.Alpha != 3*sim.Millisecond || cfg.Beta != 200*sim.Microsecond {
		t.Errorf("α=%v β=%v, want 3ms/0.2ms", cfg.Alpha, cfg.Beta)
	}
	if cfg.MinThreshold != 300*sim.Microsecond {
		t.Errorf("threshold default lost: %v", cfg.MinThreshold)
	}

	spec, err = Load(strings.NewReader(`{
	  "nodes": 1, "pcpusPerNode": 2,
	  "scheduler": {"kind": "CS", "options": {"spinWaitThreshold": "250us"}},
	  "virtualClusters": [{"vcpus": 2, "rounds": 1}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	res, err = Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	cs := res.Scenario.World.Node(0).Scheduler().(*cosched.Scheduler)
	if got := cs.Options().SpinWaitThreshold; got != 250*sim.Microsecond {
		t.Errorf("spin-wait threshold = %v, want 250us", got)
	}
}

// TestNodePoliciesHeterogeneous shows acceptance criterion (b): a JSON
// spec assigns different policies to different nodes.
func TestNodePoliciesHeterogeneous(t *testing.T) {
	spec, err := Load(strings.NewReader(`{
	  "nodes": 3, "pcpusPerNode": 2,
	  "scheduler": {"kind": "CR"},
	  "nodePolicies": [
	    {"nodes": [1], "kind": "ATC"},
	    {"nodes": [2], "kind": "CS", "options": {"spinWaitThreshold": "100us"}}
	  ],
	  "virtualClusters": [{"vcpus": 2, "rounds": 1}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	w := res.Scenario.World
	for i, want := range []string{"CR", "ATC", "CS"} {
		if got := w.Node(i).Scheduler().Name(); got != want {
			t.Errorf("node %d scheduler = %s, want %s", i, got, want)
		}
	}
}

// TestPolicySwitchMidRun shows acceptance criterion (c): a timed switch
// in the JSON flips running nodes from CR to ATC.
func TestPolicySwitchMidRun(t *testing.T) {
	spec, err := Load(strings.NewReader(`{
	  "nodes": 2, "pcpusPerNode": 2,
	  "scheduler": {"kind": "CR"},
	  "policySwitches": [{"atSec": 0.1, "kind": "ATC"}],
	  "virtualClusters": [{"vcpus": 2, "kernel": "ep", "class": "A", "rounds": 1, "forever": true}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	sc := res.Scenario
	sc.GoFor(50 * sim.Millisecond)
	for i := 0; i < 2; i++ {
		if got := sc.World.Node(i).Scheduler().Name(); got != "CR" {
			t.Fatalf("node %d flipped to %s before the switch time", i, got)
		}
	}
	swapped := func() bool {
		return sc.World.Node(0).Swaps() == 1 && sc.World.Node(1).Swaps() == 1
	}
	if !sc.ContinueUntil(swapped, 30*sim.Millisecond, 2*sim.Second) {
		t.Fatal("switch never applied on both nodes")
	}
	for i := 0; i < 2; i++ {
		if got := sc.World.Node(i).Scheduler().Name(); got != "ATC" {
			t.Errorf("node %d scheduler = %s after switch, want ATC", i, got)
		}
		if sc.World.Node(i).Swaps() != 1 {
			t.Errorf("node %d swaps = %d, want 1", i, sc.World.Node(i).Swaps())
		}
	}
	sc.World.MustAudit()
}

func TestPolicyValidationErrors(t *testing.T) {
	cases := map[string]string{
		"unknown policy kind":   `{"nodes": 2, "scheduler": {"kind": "CR"}, "nodePolicies": [{"nodes": [0], "kind": "NOPE"}], "virtualClusters": [{}]}`,
		"policy node range":     `{"nodes": 2, "scheduler": {"kind": "CR"}, "nodePolicies": [{"nodes": [7], "kind": "ATC"}], "virtualClusters": [{}]}`,
		"policy empty nodes":    `{"nodes": 2, "scheduler": {"kind": "CR"}, "nodePolicies": [{"kind": "ATC"}], "virtualClusters": [{}]}`,
		"policy node twice":     `{"nodes": 2, "scheduler": {"kind": "CR"}, "nodePolicies": [{"nodes": [0], "kind": "ATC"}, {"nodes": [0], "kind": "CS"}], "virtualClusters": [{}]}`,
		"bad policy options":    `{"nodes": 2, "scheduler": {"kind": "CR"}, "nodePolicies": [{"nodes": [0], "kind": "CS", "options": {"nope": 1}}], "virtualClusters": [{}]}`,
		"bad scheduler options": `{"nodes": 1, "scheduler": {"kind": "ATC", "options": {"control": {"alpha": "-1ms"}}}, "virtualClusters": [{}]}`,
		"switch kind":           `{"nodes": 1, "scheduler": {"kind": "CR"}, "policySwitches": [{"atSec": 1, "kind": "NOPE"}], "virtualClusters": [{}]}`,
		"switch at zero":        `{"nodes": 1, "scheduler": {"kind": "CR"}, "policySwitches": [{"atSec": 0, "kind": "ATC"}], "virtualClusters": [{}]}`,
		"switch at huge":        `{"nodes": 1, "scheduler": {"kind": "CR"}, "policySwitches": [{"atSec": 1e12, "kind": "ATC"}], "virtualClusters": [{}]}`,
		"switch node range":     `{"nodes": 1, "scheduler": {"kind": "CR"}, "policySwitches": [{"atSec": 1, "kind": "ATC", "nodes": [3]}], "virtualClusters": [{}]}`,
	}
	for name, js := range cases {
		if _, err := Load(strings.NewReader(js)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestUnknownSchedulerErrorEnumeratesKinds pins the error format: an
// unknown kind anywhere in the spec names every registered policy.
func TestUnknownSchedulerErrorEnumeratesKinds(t *testing.T) {
	specs := map[string]string{
		"scheduler":  `{"nodes": 1, "scheduler": {"kind": "XEN5"}, "virtualClusters": [{}]}`,
		"nodePolicy": `{"nodes": 1, "scheduler": {"kind": "CR"}, "nodePolicies": [{"nodes": [0], "kind": "XEN5"}], "virtualClusters": [{}]}`,
		"switch":     `{"nodes": 1, "scheduler": {"kind": "CR"}, "policySwitches": [{"atSec": 1, "kind": "XEN5"}], "virtualClusters": [{}]}`,
	}
	for where, js := range specs {
		_, err := Load(strings.NewReader(js))
		if err == nil {
			t.Fatalf("%s: unknown kind accepted", where)
		}
		msg := err.Error()
		if !strings.Contains(msg, `"XEN5"`) {
			t.Errorf("%s: error %q does not quote the bad kind", where, msg)
		}
		for _, k := range registry.Kinds() {
			if !strings.Contains(msg, k) {
				t.Errorf("%s: error %q does not list valid kind %s", where, msg, k)
			}
		}
	}
}
