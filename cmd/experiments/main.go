// Command experiments regenerates the paper's tables and figures on the
// simulated cluster.
//
// Usage:
//
//	experiments -list
//	experiments -exp fig10 -scale medium
//	experiments -all -scale small -format csv
//
// Scales: small (quick check), medium (full structure, reduced nodes),
// full (the paper's 32-node testbed dimensions; slow).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"atcsched/internal/experiment"
)

func main() {
	var (
		expID  = flag.String("exp", "", "experiment id(s), comma-separated (fig1, fig2, fig5, fig8, euclid, fig9, fig10, fig11, fig12, fig13, fig14, tab1; extensions: score, sens, ablate)")
		all    = flag.Bool("all", false, "run every experiment")
		list   = flag.Bool("list", false, "list experiments and exit")
		scale  = flag.String("scale", "small", "small | medium | full")
		seed   = flag.Uint64("seed", 1, "workload seed")
		format = flag.String("format", "text", "text | csv | markdown")
		outDir = flag.String("out", "", "also write each table as CSV into this directory")
	)
	flag.Parse()

	if *list {
		for _, e := range experiment.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	sc, err := experiment.ScaleByName(*scale)
	if err != nil {
		fatal(err)
	}
	var exps []experiment.Experiment
	switch {
	case *all:
		exps = experiment.All()
	case *expID != "":
		for _, id := range strings.Split(*expID, ",") {
			e, err := experiment.ByID(strings.TrimSpace(id))
			if err != nil {
				fatal(err)
			}
			exps = append(exps, e)
		}
	default:
		fatal(fmt.Errorf("specify -exp <id> or -all (use -list to enumerate)"))
	}

	for _, e := range exps {
		start := time.Now()
		fmt.Printf("== %s: %s [scale=%s seed=%d]\n", e.ID, e.Title, sc.Name, *seed)
		tables, err := e.Run(sc, *seed)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		for i, t := range tables {
			switch *format {
			case "csv":
				fmt.Print(t.CSV())
			case "markdown":
				fmt.Println(t.Markdown())
			default:
				fmt.Println(t.String())
			}
			if *outDir != "" {
				if err := writeCSV(*outDir, fmt.Sprintf("%s_%d.csv", e.ID, i), t.CSV()); err != nil {
					fatal(err)
				}
			}
		}
		fmt.Printf("-- %s done in %v\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}

func writeCSV(dir, name, csv string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(dir+"/"+name, []byte(csv), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
