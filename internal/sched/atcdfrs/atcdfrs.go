// Package atcdfrs is the ATC×DFRS hybrid: parallel VMs get the paper's
// adaptive time-slice control (per-period spin-latency feedback into
// Algorithm 1/2) while non-parallel VMs get DFRS CPU fractions
// redistributed from observed demand. The two planes share the credit
// core — fractions pin per-period supply through credit.SetShare, and
// parallel VMs stay on the weight-proportional pool, so the fractional
// redistribution automatically re-sizes around whatever capacity the
// parallel tenants actually consume.
package atcdfrs

import (
	"atcsched/internal/core"
	"atcsched/internal/sched/dfrs"
	"atcsched/internal/sim"
	"atcsched/internal/vmm"
)

// Options configures the hybrid.
type Options struct {
	// DFRS configures the fractional plane (and the shared credit core:
	// DFRS.Credit.TimeSlice is the default slice DEFAULT in Algorithm 1).
	DFRS dfrs.Options `json:"dfrs,omitzero"`
	// Control configures the ATC controller driving the parallel VMs.
	// Control.Default is overridden by DFRS.Credit.TimeSlice.
	Control core.Config `json:"control,omitzero"`
	// NoiseFloor: spin-latency samples at or below this value are
	// treated as zero by Algorithm 1's recovery branch.
	NoiseFloor sim.Time `json:"noiseFloor,omitzero"`
}

// DefaultOptions returns stock DFRS fractions with ATC control at the
// paper's parameters.
func DefaultOptions() Options {
	return Options{
		DFRS:    dfrs.DefaultOptions(),
		Control: core.DefaultConfig(),
	}
}

// Scheduler is the hybrid: DFRS (which embeds the credit core) plus an
// ATC controller scoped to the parallel VMs.
type Scheduler struct {
	*dfrs.Scheduler
	opts Options
	ctl  *core.Controller
	// slices holds the ATC slice in force per parallel VM id.
	slices map[int]sim.Time
}

// New builds a hybrid scheduler for node n.
func New(n *vmm.Node, opts Options) *Scheduler {
	opts.Control.Default = opts.DFRS.Credit.TimeSlice
	d := dfrs.New(n, opts.DFRS)
	d.SetEligible(func(vm *vmm.VM) bool { return vm.Class() != vmm.ClassParallel })
	return &Scheduler{
		Scheduler: d,
		opts:      opts,
		ctl:       core.NewController(opts.Control),
		slices:    make(map[int]sim.Time),
	}
}

// Factory returns a vmm.SchedulerFactory producing hybrid schedulers.
func Factory(opts Options) vmm.SchedulerFactory {
	return func(n *vmm.Node) vmm.Scheduler { return New(n, opts) }
}

// Name implements vmm.Scheduler.
func (s *Scheduler) Name() string { return "ATCDFRS" }

// Controller exposes the ATC controller (for tests and diagnostics).
func (s *Scheduler) Controller() *core.Controller { return s.ctl }

// Slice implements vmm.Scheduler: the ATC-adaptive slice for parallel
// VMs, the DFRS fractional quantum for everything else.
func (s *Scheduler) Slice(v *vmm.VCPU) sim.Time {
	vm := v.VM()
	if vm.Class() == vmm.ClassParallel {
		if sl, ok := s.slices[vm.ID()]; ok {
			return sl
		}
		return s.Options().TimeSlice
	}
	return s.Scheduler.Slice(v)
}

// CurrentSlice returns the ATC slice in force for a parallel vm.
func (s *Scheduler) CurrentSlice(vm *vmm.VM) sim.Time {
	if sl, ok := s.slices[vm.ID()]; ok {
		return sl
	}
	return s.Options().TimeSlice
}

// OnPeriod implements vmm.Scheduler: the DFRS pass (fraction
// redistribution + fractional credit refill) followed by the ATC
// control step over the parallel VMs only.
func (s *Scheduler) OnPeriod(n *vmm.Node) {
	s.Scheduler.OnPeriod(n)
	var infos []core.VMInfo
	var parallel []*vmm.VM
	for _, vm := range n.VMs() {
		if vm.Class() != vmm.ClassParallel {
			continue
		}
		// The fault-aware monitoring path: a dropped sample yields no
		// observation this period and the controller keeps the VM's
		// existing history.
		avg, _, fresh := vm.SampleSpinPeriod()
		if avg <= s.opts.NoiseFloor {
			avg = 0
		}
		if fresh {
			s.ctl.Observe(vm.ID(), avg, s.CurrentSlice(vm))
		}
		infos = append(infos, core.VMInfo{ID: vm.ID(), Parallel: true})
		parallel = append(parallel, vm)
	}
	if len(infos) == 0 {
		return
	}
	decisions := s.ctl.NodeSlices(infos)
	for _, vm := range parallel {
		sl := decisions[vm.ID()]
		if s.slices[vm.ID()] != sl {
			n.TraceSlice(vm, sl)
		}
		s.slices[vm.ID()] = sl
	}
}
