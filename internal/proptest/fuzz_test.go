package proptest_test

import (
	"testing"

	"atcsched/internal/cluster"
	"atcsched/internal/proptest"
)

// fuzzApproaches keeps FuzzWorld iterations cheap: the baseline, the
// paper's scheduler, and the hybrid extension cover the three distinct
// scheduler cores.
var fuzzApproaches = []cluster.Approach{cluster.CR, cluster.ATC, cluster.HY}

// FuzzWorld derives tiny generator parameters from fuzz bytes and runs
// the full property battery (audit, liveness, conservation, determinism
// replay, differential agreement) on the resulting world. Run deep with
//
//	go test ./internal/proptest -fuzz=FuzzWorld -fuzztime=30s
func FuzzWorld(f *testing.F) {
	f.Add(uint64(1), uint8(0), uint8(0), uint8(0), uint8(0), uint8(0))
	f.Add(uint64(42), uint8(1), uint8(3), uint8(1), uint8(2), uint8(5))
	f.Add(uint64(7), uint8(0), uint8(1), uint8(7), uint8(1), uint8(255))
	f.Fuzz(func(t *testing.T, seed uint64, nodes, pcpus, kernel, shape, opts uint8) {
		spec := proptest.Generate(seed, proptest.Bounded())
		// Rewrite the generated spec's shape from the fuzz bytes, clamped
		// to a tiny world so each iteration stays cheap, and keep a single
		// cluster so the fuzzer owns every knob that matters.
		spec.Nodes = 1 + int(nodes)%2
		spec.PCPUs = 1 + int(pcpus)%3
		kernels := []string{"lu", "is", "sp", "bt", "mg", "cg", "ep", "ft"}
		spec.Clusters = spec.Clusters[:1]
		spec.Clusters[0].Kernel = kernels[int(kernel)%len(kernels)]
		spec.Clusters[0].Class = "A"
		spec.Clusters[0].VMs = 1 + int(shape)%2
		spec.Clusters[0].VCPUs = 1 + int(shape>>2)%3
		spec.Clusters[0].Rounds = 1
		spec.Clusters[0].Iterations = 1 + int(shape>>4)%3
		spec.FixedSliceMs = []float64{0, 0.3, 5, 30}[int(opts)%4]
		spec.DisableBoost = opts&16 != 0
		spec.DisableSteal = opts&32 != 0
		if len(spec.Jobs) > 1 {
			spec.Jobs = spec.Jobs[:1]
		}
		for i := range spec.Jobs {
			spec.Jobs[i].Node %= spec.Nodes
		}
		// The rewritten world may have fewer nodes than the generated
		// per-node policy pins.
		if len(spec.NodeKinds) > spec.Nodes {
			spec.NodeKinds = spec.NodeKinds[:spec.Nodes]
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("fuzz-derived spec invalid: %v", err)
		}
		if err := proptest.CheckSpec(spec, fuzzApproaches); err != nil {
			t.Fatalf("property violated on fuzz-derived spec %+v: %v", spec, err)
		}
	})
}
