package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"atcsched/internal/sim"
)

// -update rewrites the golden files from the current exporter output.
var update = flag.Bool("update", false, "rewrite exporter golden files")

// goldenSnapshot builds a small fixed snapshot that exercises every
// exporter feature: per-node and global labels, multi-point series,
// spans on several tracks (including the cluster pseudo-node), a
// histogram with below-first and +Inf observations, and drop counters.
func goldenSnapshot() Snapshot {
	p := New(Options{HistBounds: []sim.Time{sim.Millisecond, 10 * sim.Millisecond}})
	n0, n1, g := p.Node(0), p.Node(1), p.Global()
	n0.Add("sched_dispatches", Label{Node: 0}, 12)
	n1.Add("sched_dispatches", Label{Node: 1}, 9)
	g.Add("daemon_decision_apply", GlobalLabel(), 4)
	g.SetGauge("vm_run_time_ns", Label{Node: -1, VM: "vm0"}, 1.5e9)
	n0.Point("vm_spin_latency_ns", Label{Node: 0, VM: "vm0"}, 30*sim.Millisecond, 120000)
	n0.Point("vm_spin_latency_ns", Label{Node: 0, VM: "vm0"}, 60*sim.Millisecond, 95000)
	n1.Point("vm_slice_ns", Label{Node: 1, VM: "vm1"}, 30*sim.Millisecond, 3e7)
	n0.Observe("spin_latency", Label{Node: 0, VM: "vm0"}, 500*sim.Microsecond)
	n0.Observe("spin_latency", Label{Node: 0, VM: "vm0"}, 4*sim.Millisecond)
	n0.Observe("spin_latency", Label{Node: 0, VM: "vm0"}, sim.Second)
	n0.AddSpan(Span{Name: "spin", Track: "vm0/1", Node: 0,
		Start: 10 * sim.Millisecond, End: 12 * sim.Millisecond, Value: 2 * sim.Millisecond})
	n1.AddSpan(Span{Name: "round", Track: "vm1", Node: 1,
		Start: 5 * sim.Millisecond, End: 45 * sim.Millisecond, Value: 1})
	g.AddSpan(Span{Name: "decision", Track: "daemon", Node: -1,
		Start: 30 * sim.Millisecond, End: 30 * sim.Millisecond})
	g.AddSpan(Span{Name: "fault:pcpu-slow", Track: "faults", Node: -1,
		Start: 20 * sim.Millisecond, End: 80 * sim.Millisecond})
	return p.Snapshot()
}

// goldenEvents is a fixed scheduling-event stream: two dispatch
// episodes on one PCPU (one preempted, one left open), a block on a
// second node, a slice change, and a policy swap.
func goldenEvents() []SchedEvent {
	ms := func(n int64) sim.Time { return sim.Time(n) * sim.Millisecond }
	return []SchedEvent{
		{At: ms(1), Kind: "dispatch", Node: 0, PCPU: 0, VM: "vm0", VCPU: 0},
		{At: ms(4), Kind: "preempt", Node: 0, PCPU: 0, VM: "vm0", VCPU: 0},
		{At: ms(4), Kind: "dispatch", Node: 0, PCPU: 0, VM: "vm1", VCPU: 2},
		{At: ms(6), Kind: "slice", Node: 0, PCPU: -1, VM: "vm0", VCPU: -1, Arg: ms(30)},
		{At: ms(7), Kind: "dispatch", Node: 1, PCPU: 1, VM: "vm2", VCPU: 0},
		{At: ms(9), Kind: "block", Node: 1, PCPU: 1, VM: "vm2", VCPU: 0},
		{At: ms(10), Kind: "swap", Node: 1, PCPU: -1, VCPU: -1},
	}
}

// checkGolden compares got against testdata/name, rewriting under
// -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/telemetry -update` to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden (run with -update to accept):\n--- got ---\n%s", name, got)
	}
}

func TestTimelineGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTimeline(&buf, goldenEvents(), goldenSnapshot()); err != nil {
		t.Fatal(err)
	}
	// The artifact must parse as trace-event JSON whatever the bytes.
	var file struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("timeline is not valid trace-event JSON: %v", err)
	}
	if len(file.TraceEvents) == 0 {
		t.Fatal("timeline has no events")
	}
	checkGolden(t, "timeline.golden.json", buf.Bytes())
}

func TestJSONLGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, goldenSnapshot()); err != nil {
		t.Fatal(err)
	}
	// Every line must parse standalone and carry a type tag; the first
	// must be the meta header with the current schema version.
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	for i, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("line %d is not JSON: %v", i, err)
		}
		if m["type"] == "" {
			t.Fatalf("line %d has no type tag: %s", i, ln)
		}
		if i == 0 && (m["type"] != "meta" || m["version"] != float64(JSONLVersion)) {
			t.Fatalf("first line is not a v%d meta header: %s", JSONLVersion, ln)
		}
	}
	checkGolden(t, "series.golden.jsonl", buf.Bytes())
}

func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	if err := WritePrometheus(bw, goldenSnapshot()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics.golden.txt", buf.Bytes())
}
