package integration_test

import (
	"fmt"
	"testing"

	"atcsched/internal/cluster"
	"atcsched/internal/sched/atc"
	"atcsched/internal/sim"
	"atcsched/internal/workload"
)

// TestApproachKernelMatrix smoke-runs every scheduling approach
// (including the HY extension) against every kernel (including ep/ft) at
// a tiny scale, auditing each world at the end — the broadest
// cross-product the suite exercises.
func TestApproachKernelMatrix(t *testing.T) {
	kernels := append(workload.NPBKernels(), workload.ExtraKernels()...)
	for _, a := range cluster.ExtendedApproaches() {
		for _, k := range kernels {
			a, k := a, k
			t.Run(fmt.Sprintf("%s/%s", a, k), func(t *testing.T) {
				t.Parallel()
				cfg := cluster.DefaultConfig(2, a)
				cfg.Node.PCPUs = 2
				cfg.Node.Dom0VCPUs = 1
				cfg.Seed = 5
				s := cluster.MustNew(cfg)
				prof := workload.NPB(k, workload.ClassA)
				prof.Iterations = 4
				run := s.RunParallel(prof, s.VirtualCluster("vc", 2, 2, nil), 2, false)
				if !s.Go(240 * sim.Second) {
					t.Fatalf("%s/%s: horizon exceeded (rounds=%d)", a, k, run.Rounds())
				}
				if run.MeanTime() <= 0 {
					t.Fatal("no timing recorded")
				}
				if errs := s.World.Audit(); len(errs) > 0 {
					t.Fatalf("audit: %v", errs[0])
				}
			})
		}
	}
}

// TestATCVariantsMatrix runs the ATC option combinations end to end.
func TestATCVariantsMatrix(t *testing.T) {
	variants := map[string]func(*cluster.Config){
		"stock":      func(c *cluster.Config) {},
		"autodetect": func(c *cluster.Config) { c.Sched.Options = atc.Options{AutoDetect: true} },
		"admin6ms":   func(c *cluster.Config) { c.NonParallelAdminSlice = 6 * sim.Millisecond },
		"noboost":    func(c *cluster.Config) { c.Sched.DisableBoost = true },
		"nosteal":    func(c *cluster.Config) { c.Sched.DisableSteal = true },
	}
	for name, mut := range variants {
		name, mut := name, mut
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := cluster.DefaultConfig(2, cluster.ATC)
			cfg.Node.PCPUs = 2
			cfg.Node.Dom0VCPUs = 1
			cfg.Seed = 5
			mut(&cfg)
			s := cluster.MustNew(cfg)
			prof := workload.NPB("cg", workload.ClassA)
			prof.Iterations = 4
			run := s.RunParallel(prof, s.VirtualCluster("vc", 2, 2, nil), 2, false)
			if !s.Go(240 * sim.Second) {
				t.Fatalf("variant %s: horizon exceeded", name)
			}
			if run.MeanTime() <= 0 {
				t.Fatal("no timing recorded")
			}
			if errs := s.World.Audit(); len(errs) > 0 {
				t.Fatalf("audit: %v", errs[0])
			}
		})
	}
}
