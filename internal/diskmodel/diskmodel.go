// Package diskmodel models a node-local disk for the bonnie++-like
// workload: a FIFO request queue with a per-request positioning overhead
// plus size-proportional transfer time. This is enough for Figure 13's
// finding — disk throughput is essentially scheduler-independent (requests
// are slow relative to any time slice), which the paper observes for
// bonnie++ across all approaches.
package diskmodel

import (
	"fmt"

	"atcsched/internal/sim"
)

// Config parameterizes a Disk.
type Config struct {
	// BytesPerSec is the sequential transfer rate.
	BytesPerSec float64
	// Positioning is the per-request fixed cost (seek + rotation + queue
	// handling in the driver).
	Positioning sim.Time
}

// DefaultConfig models a 7200 RPM-era SATA disk: 100 MB/s, 0.4 ms
// per-request positioning for the mostly-sequential bonnie++ pattern.
func DefaultConfig() Config {
	return Config{BytesPerSec: 100e6, Positioning: 400 * sim.Microsecond}
}

// Disk is a single FIFO disk.
type Disk struct {
	eng      *sim.Engine
	cfg      Config
	freeAt   sim.Time
	requests uint64
	bytes    uint64
}

// New returns an idle Disk.
func New(eng *sim.Engine, cfg Config) *Disk {
	if cfg.BytesPerSec <= 0 || cfg.Positioning < 0 {
		panic(fmt.Sprintf("diskmodel: invalid config %+v", cfg))
	}
	return &Disk{eng: eng, cfg: cfg}
}

// Requests returns the number of submitted requests.
func (d *Disk) Requests() uint64 { return d.requests }

// Bytes returns the total bytes transferred.
func (d *Disk) Bytes() uint64 { return d.bytes }

// Submit queues a request for size bytes and invokes done on completion.
func (d *Disk) Submit(size int, done func()) {
	if size < 0 {
		panic("diskmodel: negative request size")
	}
	d.requests++
	d.bytes += uint64(size)
	start := d.eng.Now()
	if d.freeAt > start {
		start = d.freeAt
	}
	service := d.cfg.Positioning + sim.Time(float64(size)/d.cfg.BytesPerSec*float64(sim.Second))
	finish := start + service
	d.freeAt = finish
	d.eng.At(finish, done)
}

// BusyUntil returns the virtual time at which the disk drains its queue.
func (d *Disk) BusyUntil() sim.Time { return d.freeAt }
