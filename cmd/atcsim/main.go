// Command atcsim runs a single ad-hoc scenario: a cluster of nodes under
// a chosen scheduling approach, a set of identical virtual clusters
// running one NPB-like kernel, and optional non-parallel co-tenants. It
// prints per-cluster execution times, spinlock latency, and scheduler
// statistics — a quick way to poke at the simulator without the full
// experiment harness.
//
// Example:
//
//	atcsim -nodes 4 -sched ATC -kernel lu -class B -vcs 4 -rounds 3
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"atcsched/internal/cluster"
	"atcsched/internal/report"
	"atcsched/internal/scenario"
	"atcsched/internal/sched/atc"
	"atcsched/internal/sched/registry"
	"atcsched/internal/sim"
	"atcsched/internal/telemetry"
	"atcsched/internal/vmm"
	"atcsched/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "atcsim:", err)
		os.Exit(1)
	}
}

// run parses args and executes one scenario, writing results to stdout.
// Split from main so tests can drive the whole command in-process.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("atcsim", flag.ContinueOnError)
	var (
		specFile = fs.String("f", "", "run a JSON scenario file instead of the flag-built scenario (see examples/scenarios)")
		list     = fs.Bool("list-schedulers", false, "list every registered scheduling policy with its default options and exit")
		nodes    = fs.Int("nodes", 2, "physical nodes")
		schedArg = fs.String("sched", "ATC", "scheduling policy kind (see -list-schedulers)")
		kernel   = fs.String("kernel", "lu", "NPB kernel: lu, is, sp, bt, mg, cg")
		class    = fs.String("class", "B", "problem class: A, B, C")
		vcs      = fs.Int("vcs", 4, "identical virtual clusters (one VM per node each)")
		vcpus    = fs.Int("vcpus", 8, "VCPUs per VM")
		rounds   = fs.Int("rounds", 3, "measured rounds per cluster")
		slice    = fs.Float64("slice", 0, "fixed time slice in ms (0 = scheduler default)")
		seed     = fs.Uint64("seed", 1, "workload seed")
		horizon  = fs.Float64("horizon", 1200, "virtual-time budget in seconds")
		hogs     = fs.Int("hogs", 0, "CPU-hog non-parallel VMs per node")
		trace    = fs.String("trace", "", "write a scheduling trace: 'summary', 'text:<file>' or 'csv:<file>'")
		traceCap = fs.Int("tracecap", 200000, "max trace records retained (ring)")
		timeline = fs.String("timeline", "", "write a Chrome/Perfetto trace-event timeline to this file")
		jsonlOut = fs.String("jsonl", "", "write the telemetry time-series dump (JSON Lines) to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		return listSchedulers(stdout)
	}

	// Either artifact flag attaches the telemetry plane; the timeline
	// additionally needs the scheduling tracer for its PCPU lanes.
	var plane *telemetry.Plane
	if *timeline != "" || *jsonlOut != "" {
		plane = telemetry.New(telemetry.Options{})
	}
	needTracer := func() bool { return *trace != "" || *timeline != "" }

	if *specFile != "" {
		f, err := os.Open(*specFile)
		if err != nil {
			return err
		}
		spec, err := scenario.Load(f)
		f.Close()
		if err != nil {
			return err
		}
		res, err := scenario.Build(spec)
		if err != nil {
			return err
		}
		if plane != nil {
			res.Scenario.Cfg.Telemetry = plane
			res.Scenario.World.SetTelemetry(plane)
		}
		var tracer *vmm.Tracer
		if needTracer() {
			tracer = vmm.NewTracer(*traceCap)
			res.Scenario.World.SetTracer(tracer)
		}
		table, err := res.Run()
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, table.String())
		if plane != nil {
			res.Scenario.FinalizeTelemetry()
			if err := writeTelemetryArtifacts(*timeline, *jsonlOut, res.Scenario.World, plane); err != nil {
				return err
			}
		}
		if *trace != "" {
			return emitTrace(stdout, tracer, *trace)
		}
		return nil
	}

	var cls workload.Class
	switch strings.ToUpper(*class) {
	case "A":
		cls = workload.ClassA
	case "B":
		cls = workload.ClassB
	case "C":
		cls = workload.ClassC
	default:
		return fmt.Errorf("unknown class %q", *class)
	}

	cfg := cluster.DefaultConfig(*nodes, cluster.Approach(strings.ToUpper(*schedArg)))
	cfg.Seed = *seed
	if *slice > 0 {
		cfg.Sched.FixedSlice = sim.FromMillis(*slice)
	}
	cfg.Telemetry = plane
	s, err := cluster.New(cfg)
	if err != nil {
		return err
	}
	var tracer *vmm.Tracer
	if needTracer() {
		tracer = vmm.NewTracer(*traceCap)
		s.World.SetTracer(tracer)
	}

	prof := workload.NPB(*kernel, cls)
	var runs []*workload.ParallelRun
	for vc := 0; vc < *vcs; vc++ {
		vms := s.VirtualCluster(fmt.Sprintf("vc%d", vc), *nodes, *vcpus, nil)
		runs = append(runs, s.RunParallel(prof, vms, *rounds, false))
	}
	for n := 0; n < *nodes; n++ {
		for h := 0; h < *hogs; h++ {
			vm := s.IndependentVM(fmt.Sprintf("hog%d-%d", n, h), n, *vcpus, vmm.ClassNonParallel)
			for _, v := range vm.VCPUs() {
				workload.NewCPUJob(v, workload.SPECProfiles()[0])
			}
		}
	}

	wall := time.Now()
	ok := s.Go(sim.FromSeconds(*horizon))
	elapsed := time.Since(wall)

	fmt.Fprintf(stdout, "scenario: %d nodes x %d PCPUs, %d VCs of %d x %d-VCPU VMs, kernel %s, scheduler %s\n",
		*nodes, cfg.Node.PCPUs, *vcs, *nodes, *vcpus, prof.Name, s.World.Node(0).Scheduler().Name())
	if !ok {
		fmt.Fprintln(stdout, "WARNING: horizon exceeded before all clusters finished")
	}
	t := report.New("per-cluster results", "VC", "rounds", "mean exec", "spin latency", "LLC misses")
	for i, r := range runs {
		t.Add(fmt.Sprintf("vc%d", i), report.I(r.Rounds()),
			fmt.Sprintf("%.3fs", r.MeanTime()),
			r.App.SpinLatencyMean().String(),
			report.I(r.App.LLCMisses()))
	}
	fmt.Fprintln(stdout, t.String())

	var ctx, wakes uint64
	for _, n := range s.World.Nodes() {
		ctx += n.CtxSwitches()
		wakes += n.Wakes()
	}
	fmt.Fprintf(stdout, "virtual time %v, context switches %d, wakes %d, packets %d, events %d (wall %v)\n",
		s.World.Eng.Now(), ctx, wakes, s.World.Fabric.PacketsSent(), s.World.Eng.Executed(), elapsed.Round(time.Millisecond))
	if a, isATC := s.World.Node(0).Scheduler().(*atc.Scheduler); isATC {
		for _, vm := range s.World.Node(0).VMs()[:min(3, len(s.World.Node(0).VMs()))] {
			fmt.Fprintf(stdout, "node0 %s: final ATC slice %v\n", vm.Name(), a.CurrentSlice(vm))
		}
	}
	if plane != nil {
		s.FinalizeTelemetry()
		if err := writeTelemetryArtifacts(*timeline, *jsonlOut, s.World, plane); err != nil {
			return err
		}
	}
	if *trace != "" {
		return emitTrace(stdout, tracer, *trace)
	}
	return nil
}

// writeTelemetryArtifacts flushes the -timeline and -jsonl outputs
// (empty paths are skipped).
func writeTelemetryArtifacts(timeline, jsonl string, w *vmm.World, plane *telemetry.Plane) error {
	if timeline != "" {
		f, err := os.Create(timeline)
		if err != nil {
			return err
		}
		err = telemetry.WriteTimeline(f, w.TelemetryEvents(), plane.Snapshot())
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("timeline: %w", err)
		}
	}
	if jsonl != "" {
		f, err := os.Create(jsonl)
		if err != nil {
			return err
		}
		err = telemetry.WriteJSONL(f, plane.Snapshot())
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("jsonl: %w", err)
		}
	}
	return nil
}

// listSchedulers prints every registered policy — the paper's comparison
// set in presentation order, then extensions, then the rest — with its
// description and default options as the JSON accepted by scenario files.
func listSchedulers(stdout io.Writer) error {
	seen := map[string]bool{}
	var kinds []string
	for _, a := range cluster.ExtendedApproaches() {
		kinds = append(kinds, string(a))
		seen[string(a)] = true
	}
	for _, k := range registry.Kinds() {
		if !seen[k] {
			kinds = append(kinds, k)
		}
	}
	for _, k := range kinds {
		d, ok := registry.Lookup(k)
		if !ok {
			return registry.UnknownKindError(k)
		}
		fmt.Fprintf(stdout, "%s\t%s\n", d.Kind, d.Description)
		opts, err := json.MarshalIndent(d.Defaults(), "  ", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "  defaults: %s\n", opts)
	}
	return nil
}

// emitTrace renders the collected trace per the -trace spec.
func emitTrace(stdout io.Writer, tr *vmm.Tracer, spec string) error {
	switch {
	case spec == "summary":
		fmt.Fprint(stdout, tr.Summary())
		return nil
	case strings.HasPrefix(spec, "text:"):
		f, err := os.Create(strings.TrimPrefix(spec, "text:"))
		if err != nil {
			return err
		}
		defer f.Close()
		_, err = tr.WriteTo(f)
		return err
	case strings.HasPrefix(spec, "csv:"):
		f, err := os.Create(strings.TrimPrefix(spec, "csv:"))
		if err != nil {
			return err
		}
		defer f.Close()
		return tr.WriteCSV(f)
	default:
		return fmt.Errorf("unknown -trace spec %q (summary | text:<file> | csv:<file>)", spec)
	}
}
