package workload

import (
	"testing"
	"testing/quick"

	"atcsched/internal/sim"
	"atcsched/internal/vmm"
)

// TestTagUniquenessProperty: within a window of rounds and iterations,
// the (dstProc, tag) mailbox key must be unique per in-flight message —
// i.e., tags never collide across (round, iter, src) triples.
func TestTagUniquenessProperty(t *testing.T) {
	f := func(roundsRaw, itersRaw, vmsRaw uint8) bool {
		rounds := int(roundsRaw%5) + 1
		iters := int(itersRaw%20) + 1
		nVMs := int(vmsRaw%6) + 2
		prof := NPB("lu", ClassA)
		prof.Iterations = iters
		app := &BSPApp{Profile: prof, VMs: make([]*vmm.VM, nVMs)}
		seen := map[int]bool{}
		for round := 0; round < rounds; round++ {
			for it := 0; it < iters; it++ {
				for src := 0; src < nVMs; src++ {
					tag := app.tag(round, it, src)
					if seen[tag] {
						return false
					}
					seen[tag] = true
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBSPSingleProcessCluster(t *testing.T) {
	// Degenerate: one VM with one VCPU, no locks hit (LocksPerVM present
	// but LockOps still run), no comm.
	w := smallWorld(t, 1, 1, 30*sim.Millisecond)
	vm := w.Node(0).NewVM("solo", vmm.ClassParallel, 1, 0, 1)
	prof := NPB("ep", ClassA)
	prof.Iterations = 3
	app := NewBSPApp(prof, []*vmm.VM{vm}, 1)
	run := NewParallelRun(app, 2, false, nil)
	run.Install()
	w.Start()
	w.RunUntil(60 * sim.Second)
	if run.Rounds() != 2 {
		t.Fatalf("rounds = %d", run.Rounds())
	}
	if vm.PacketsSent() != 0 {
		t.Errorf("ep sent %d packets", vm.PacketsSent())
	}
}

func TestBSPTimesMonotoneRecorded(t *testing.T) {
	w := smallWorld(t, 1, 2, 30*sim.Millisecond)
	vm := w.Node(0).NewVM("m", vmm.ClassParallel, 2, 0, 1)
	prof := NPB("is", ClassA)
	prof.Iterations = 3
	app := NewBSPApp(prof, []*vmm.VM{vm}, 3)
	run := NewParallelRun(app, 4, false, nil)
	run.Install()
	w.Start()
	w.RunUntil(120 * sim.Second)
	times := run.Times()
	if len(times) != 4 {
		t.Fatalf("times = %v", times)
	}
	// MeanTime over target rounds must equal the mean of the recorded
	// times.
	var s float64
	for _, v := range times {
		s += v
	}
	if got := run.MeanTime(); got != s/4 {
		t.Errorf("MeanTime = %v, want %v", got, s/4)
	}
}

func TestSpinLatencyMeanWeightsByCount(t *testing.T) {
	w := smallWorld(t, 1, 1, 30*sim.Millisecond)
	vmA := w.Node(0).NewVM("a", vmm.ClassParallel, 1, 0, 1)
	vmB := w.Node(0).NewVM("b", vmm.ClassParallel, 1, 0, 1)
	app := &BSPApp{Profile: NPB("lu", ClassA), VMs: []*vmm.VM{vmA, vmB}}
	vmA.SpinMon.Record(10 * sim.Millisecond)
	vmA.SpinMon.Record(20 * sim.Millisecond)
	vmB.SpinMon.Record(40 * sim.Millisecond)
	// Weighted: (10+20+40)/3.
	want := sim.Time(70) * sim.Millisecond / 3
	got := app.SpinLatencyMean()
	if got < want-sim.Microsecond || got > want+sim.Microsecond {
		t.Errorf("SpinLatencyMean = %v, want %v", got, want)
	}
}

func TestSPECProfilesDistinct(t *testing.T) {
	ps := SPECProfiles()
	if len(ps) != 3 {
		t.Fatalf("profiles = %d", len(ps))
	}
	names := map[string]bool{}
	for _, p := range ps {
		names[p.Name] = true
		if p.Work <= 0 || p.Footprint <= 0 || p.ColdRate <= 0 || p.ColdRate > 1 {
			t.Errorf("%s: bad profile %+v", p.Name, p)
		}
	}
	if !names["gcc"] || !names["bzip2"] || !names["sphinx3"] {
		t.Errorf("names = %v", names)
	}
	// sphinx3 is the most cache-hungry (paper's observation).
	var sphinx, bzip CPUJobProfile
	for _, p := range ps {
		switch p.Name {
		case "sphinx3":
			sphinx = p
		case "bzip2":
			bzip = p
		}
	}
	if sphinx.Footprint <= bzip.Footprint || sphinx.ColdRate >= bzip.ColdRate {
		t.Error("sphinx3 not the most cache-sensitive profile")
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	base := NPB("lu", ClassB)
	muts := []func(*AppProfile){
		func(p *AppProfile) { p.Name = "" },
		func(p *AppProfile) { p.ComputePerIter = -1 },
		func(p *AppProfile) { p.ComputeJitter = 2 },
		func(p *AppProfile) { p.MsgSize = -1 },
		func(p *AppProfile) { p.LockOpsPerIter = 2; p.LocksPerVM = 0 },
		func(p *AppProfile) { p.Iterations = 0 },
		func(p *AppProfile) { p.ColdRate = 0 },
	}
	for i, m := range muts {
		p := base
		m(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestIntraVMBarrierSynchronizesRanks(t *testing.T) {
	// With the spin-barrier on, no rank may start iteration k+1 before
	// every sibling finished iteration k. Verify via rounds: all ranks
	// complete, and barrier lock traffic is substantial.
	w := smallWorld(t, 1, 2, 5*sim.Millisecond)
	vm := w.Node(0).NewVM("bar", vmm.ClassParallel, 4, 0, 1)
	prof := NPB("lu", ClassA)
	prof.Iterations = 6
	prof.IntraVMBarrier = true
	app := NewBSPApp(prof, []*vmm.VM{vm}, 5)
	if app.Profile.BarrierPollGap == 0 {
		t.Fatal("poll gap default not applied")
	}
	run := NewParallelRun(app, 2, false, nil)
	run.Install()
	w.Start()
	w.RunUntil(120 * sim.Second)
	if run.Rounds() != 2 {
		t.Fatalf("rounds = %d", run.Rounds())
	}
	// The barrier lock is the last lock created on the VM.
	locks := vm.Locks()
	barrierLock := locks[len(locks)-1]
	// Each iteration: every rank acquires at least once (arrival) and
	// pollers more: 4 ranks x 6 iters x 2 rounds = >= 48 acquisitions.
	if barrierLock.Acquisitions() < 48 {
		t.Errorf("barrier acquisitions = %d, want >= 48", barrierLock.Acquisitions())
	}
	w.MustAudit()
}

func TestBarrierDeterminism(t *testing.T) {
	run := func() (float64, uint64) {
		w := smallWorld(t, 1, 2, 5*sim.Millisecond)
		vm := w.Node(0).NewVM("bar", vmm.ClassParallel, 3, 0, 1)
		prof := NPB("cg", ClassA)
		prof.Iterations = 4
		prof.IntraVMBarrier = true
		app := NewBSPApp(prof, []*vmm.VM{vm}, 7)
		r := NewParallelRun(app, 2, false, nil)
		r.Install()
		w.Start()
		w.RunUntil(60 * sim.Second)
		return r.MeanTime(), w.Eng.Executed()
	}
	m1, e1 := run()
	m2, e2 := run()
	if m1 != m2 || e1 != e2 {
		t.Errorf("barrier run not deterministic: (%v,%d) vs (%v,%d)", m1, e1, m2, e2)
	}
	if m1 <= 0 {
		t.Fatal("no rounds completed")
	}
}
