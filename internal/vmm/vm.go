package vmm

import (
	"fmt"

	"atcsched/internal/sim"
)

// VMClass distinguishes the VM populations the paper's algorithms treat
// differently.
type VMClass int

// VM classes.
const (
	// ClassParallel hosts a rank of a tightly-coupled parallel
	// application; ATC adapts its slice from spinlock latency.
	ClassParallel VMClass = iota
	// ClassNonParallel hosts anything else; ATC leaves it at the default
	// (or admin-specified) slice.
	ClassNonParallel
	// ClassDom0 is the driver domain running netback/blkback.
	ClassDom0
)

// String returns the class name.
func (c VMClass) String() string {
	switch c {
	case ClassParallel:
		return "parallel"
	case ClassNonParallel:
		return "non-parallel"
	case ClassDom0:
		return "dom0"
	default:
		return fmt.Sprintf("VMClass(%d)", int(c))
	}
}

// Packet is a guest-to-guest network message.
type Packet struct {
	Src     *VM
	SrcProc int
	Dst     *VM
	DstProc int
	Tag     int
	Size    int
}

type mailKey struct {
	proc int
	tag  int
}

// VM is a guest (or driver) domain: a set of VCPUs plus the guest-kernel
// objects the workload model needs (spinlocks, message mailboxes) and the
// monitoring state the schedulers consume.
type VM struct {
	id    int
	name  string
	node  *Node
	class VMClass

	// LatencySensitive marks the VM for vSlicer-style microslicing.
	LatencySensitive bool
	// AdminSlice, when nonzero, is the administrator-specified slice ATC
	// applies to a non-parallel VM (the paper's flexibility interface,
	// §III-C).
	AdminSlice sim.Time

	vcpus   []*VCPU
	locks   []*Spinlock
	mail    map[mailKey]*fifo[Packet]
	waiting map[mailKey]*VCPU

	// SpinMon aggregates guest spinlock latency (the ATC input signal).
	SpinMon SpinMonitor
	// monSeq/monLastVal/monLastSeq back SampleSpinPeriod: the sequence
	// number of the last fresh sample and the value it reported, so a
	// faulty monitoring path can re-serve stale readings detectably.
	monSeq     uint64
	monLastVal sim.Time
	monLastSeq uint64

	// ioWakes counts I/O-caused wakeups.
	ioWakes       uint64
	periodIOWakes uint64
	// ioEvents counts I/O events delivered to the VM (packets, disk
	// completions) regardless of whether they woke a blocked VCPU — the
	// DSS input signal ("I/O behaviour").
	ioEvents       uint64
	periodIOEvents uint64

	ctxSwitches   uint64
	spinWaitTotal sim.Time
	received      uint64
	sent          uint64

	// curSlice is the slice most recently granted to one of the VM's
	// VCPUs at dispatch — telemetry's view of the slice in force.
	curSlice sim.Time

	// periodWaitSum/periodWaitCount accumulate runqueue waits
	// (runnable → dispatched) within the current scheduling period — the
	// non-intrusive proxy signal a VMM can observe without guest
	// cooperation (the paper's future-work direction).
	periodWaitSum   sim.Time
	periodWaitCount int64

	// SchedData is scheduler-private per-VM state.
	SchedData any
}

// ID returns the world-unique VM id.
func (vm *VM) ID() int { return vm.id }

// Name returns the VM's name.
func (vm *VM) Name() string { return vm.name }

// Node returns the hosting physical node.
func (vm *VM) Node() *Node { return vm.node }

// Class returns the VM's class.
func (vm *VM) Class() VMClass { return vm.class }

// VCPUs returns the VM's VCPUs (do not mutate).
func (vm *VM) VCPUs() []*VCPU { return vm.vcpus }

// VCPU returns the i'th VCPU.
func (vm *VM) VCPU(i int) *VCPU { return vm.vcpus[i] }

// NewLock creates a guest spinlock owned by this VM.
func (vm *VM) NewLock() *Spinlock {
	l := &Spinlock{vm: vm, id: len(vm.locks)}
	vm.locks = append(vm.locks, l)
	return l
}

// Locks returns the VM's spinlocks (do not mutate).
func (vm *VM) Locks() []*Spinlock { return vm.locks }

// CtxSwitches returns how many times this VM's VCPUs were switched onto
// a PCPU after a different VCPU ran there.
func (vm *VM) CtxSwitches() uint64 { return vm.ctxSwitches }

// IOWakes returns the lifetime count of I/O-caused wakeups.
func (vm *VM) IOWakes() uint64 { return vm.ioWakes }

// SamplePeriodIOWakes returns and resets the per-period I/O wake count.
func (vm *VM) SamplePeriodIOWakes() uint64 {
	n := vm.periodIOWakes
	vm.periodIOWakes = 0
	return n
}

// IOEvents returns the lifetime count of delivered I/O events.
func (vm *VM) IOEvents() uint64 { return vm.ioEvents }

// SamplePeriodIOEvents returns and resets the per-period I/O event count
// (the DSS scheduler's signal).
func (vm *VM) SamplePeriodIOEvents() uint64 {
	n := vm.periodIOEvents
	vm.periodIOEvents = 0
	return n
}

// countIOEvent notes one delivered I/O event.
func (vm *VM) countIOEvent() {
	vm.ioEvents++
	vm.periodIOEvents++
}

// countWait notes one runqueue wait (at dispatch).
func (vm *VM) countWait(w sim.Time) {
	vm.periodWaitSum += w
	vm.periodWaitCount++
}

// SamplePeriodWait returns the mean runqueue wait of the VM's VCPUs over
// the period since the previous call (0 with no dispatches) and resets
// the accumulator. This is the hypervisor-observable proxy for
// synchronization overhead used by ATC's non-intrusive monitoring mode.
func (vm *VM) SamplePeriodWait() sim.Time {
	if vm.periodWaitCount == 0 {
		return 0
	}
	avg := vm.periodWaitSum / sim.Time(vm.periodWaitCount)
	vm.periodWaitSum = 0
	vm.periodWaitCount = 0
	return avg
}

// SpinWaitTotal returns the total contended spin wait accumulated.
func (vm *VM) SpinWaitTotal() sim.Time { return vm.spinWaitTotal }

// PacketsReceived returns the number of packets delivered to this VM.
func (vm *VM) PacketsReceived() uint64 { return vm.received }

// PacketsSent returns the number of packets this VM posted.
func (vm *VM) PacketsSent() uint64 { return vm.sent }

// RunTime returns the summed CPU time of all VCPUs.
func (vm *VM) RunTime() sim.Time {
	var t sim.Time
	for _, v := range vm.vcpus {
		t += v.runTime
	}
	return t
}

// WaitTime returns the summed runqueue wait of all VCPUs.
func (vm *VM) WaitTime() sim.Time {
	var t sim.Time
	for _, v := range vm.vcpus {
		t += v.waitTime
	}
	return t
}

// LLCMisses returns the summed cache misses of the VM's VCPUs across all
// PCPUs of its node (the Xenoprof number for Figure 8).
func (vm *VM) LLCMisses() uint64 {
	var n uint64
	for _, p := range vm.node.pcpus {
		for _, v := range vm.vcpus {
			if v.local < len(p.clients) && p.clients[v.local] != nil {
				n += p.clients[v.local].Misses()
			}
		}
	}
	return n
}

// deliver places a packet in the destination mailbox and wakes a blocked
// receiver.
func (vm *VM) deliver(pkt Packet) {
	vm.received++
	vm.countIOEvent()
	key := mailKey{proc: pkt.DstProc, tag: pkt.Tag}
	q := vm.mail[key]
	if q == nil {
		q = &fifo[Packet]{}
		vm.mail[key] = q
	}
	q.push(pkt)
	if w := vm.waiting[key]; w != nil {
		delete(vm.waiting, key)
		switch w.state {
		case StateBlocked:
			vm.node.wake(w, true)
		case StateRunning:
			// The receiver is busy-polling on its PCPU right now; the
			// poll observes the packet immediately.
			if w.pcpu != nil {
				w.pcpu.resumePoll(w)
			}
		default:
			// A preempted poller re-checks its mailbox on dispatch.
		}
	}
}

// mailReady reports whether a packet matching (proc, tag) is queued.
func (vm *VM) mailReady(proc, tag int) bool {
	q := vm.mail[mailKey{proc: proc, tag: tag}]
	return q != nil && q.len() > 0
}

// takeMail removes and returns the first matching packet.
func (vm *VM) takeMail(proc, tag int) Packet {
	q := vm.mail[mailKey{proc: proc, tag: tag}]
	if q == nil || q.len() == 0 {
		panic(fmt.Sprintf("vmm: takeMail with empty mailbox proc=%d tag=%d on %s", proc, tag, vm.name))
	}
	return q.pop()
}

// waitMail registers v as the blocked receiver for (proc, tag).
func (vm *VM) waitMail(proc, tag int, v *VCPU) {
	key := mailKey{proc: proc, tag: tag}
	if w, ok := vm.waiting[key]; ok && w != v {
		panic(fmt.Sprintf("vmm: two receivers (%s, %s) on proc=%d tag=%d", w, v, proc, tag))
	}
	vm.waiting[key] = v
}
