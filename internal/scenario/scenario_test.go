package scenario

import (
	"strings"
	"testing"
)

const goodSpec = `{
  "nodes": 2,
  "pcpusPerNode": 4,
  "scheduler": {"kind": "ATC"},
  "seed": 7,
  "horizonSec": 300,
  "virtualClusters": [
    {"name": "vc1", "vms": 2, "vcpus": 4, "kernel": "is", "class": "A", "rounds": 2}
  ],
  "jobs": [
    {"type": "web", "node": 0},
    {"type": "ping", "node": 0, "intervalMs": 5},
    {"type": "disk", "node": 1},
    {"type": "stream", "node": 1},
    {"type": "cpu", "name": "gcc", "node": 0}
  ]
}`

func TestLoadAndRunEndToEnd(t *testing.T) {
	spec, err := Load(strings.NewReader(goodSpec))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	table, err := res.Run()
	if err != nil {
		t.Fatal(err)
	}
	out := table.String()
	for _, want := range []string{"vc1", "mean exec", "web", "ping", "disk", "stream", "gcc"} {
		if !strings.Contains(out, want) {
			t.Errorf("result table missing %q:\n%s", want, out)
		}
	}
	res.Scenario.World.MustAudit()
}

func TestDefaultsFilled(t *testing.T) {
	spec, err := Load(strings.NewReader(`{"nodes": 2, "scheduler": {}, "virtualClusters": [{}]}`))
	if err != nil {
		t.Fatal(err)
	}
	vc := spec.VirtualClusters[0]
	if vc.Name != "vc0" || vc.VMs != 2 || vc.VCPUs != 8 || vc.Kernel != "lu" || vc.Class != "B" || vc.Rounds != 3 {
		t.Errorf("defaults = %+v", vc)
	}
	if spec.Scheduler.Kind != "ATC" || spec.Seed != 1 || spec.HorizonSec != 1200 {
		t.Errorf("spec defaults = %+v", spec)
	}
}

func TestJobsOnlyScenarioRunsFixedWindow(t *testing.T) {
	spec, err := Load(strings.NewReader(`{
	  "nodes": 1, "pcpusPerNode": 2,
	  "scheduler": {"kind": "CR"},
	  "jobs": [{"type": "disk", "node": 0}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	table, err := res.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table.String(), "MB/s") {
		t.Errorf("no throughput row:\n%s", table.String())
	}
}

func TestValidationErrors(t *testing.T) {
	cases := map[string]string{
		"zero nodes":      `{"nodes": 0, "scheduler": {}, "virtualClusters": [{}]}`,
		"bad scheduler":   `{"nodes": 1, "scheduler": {"kind": "ZZ"}, "virtualClusters": [{}]}`,
		"bad kernel":      `{"nodes": 1, "scheduler": {}, "virtualClusters": [{"kernel": "nope"}]}`,
		"bad class":       `{"nodes": 1, "scheduler": {}, "virtualClusters": [{"class": "Z"}]}`,
		"dup name":        `{"nodes": 1, "scheduler": {}, "virtualClusters": [{"name":"a"},{"name":"a"}]}`,
		"empty":           `{"nodes": 1, "scheduler": {}}`,
		"bad job type":    `{"nodes": 1, "scheduler": {}, "jobs": [{"type": "teleport", "node": 0}]}`,
		"job node range":  `{"nodes": 1, "scheduler": {}, "jobs": [{"type": "disk", "node": 5}]}`,
		"bad cpu profile": `{"nodes": 1, "scheduler": {}, "jobs": [{"type": "cpu", "name": "rustc", "node": 0}]}`,
		"unknown field":   `{"nodes": 1, "scheduler": {}, "frobnicate": 1, "virtualClusters": [{}]}`,
		"neg slice":       `{"nodes": 1, "scheduler": {"fixedSliceMs": -2}, "virtualClusters": [{}]}`,
		"bad fault kind":  `{"nodes": 1, "scheduler": {}, "virtualClusters": [{}], "faults": {"windows": [{"kind": "meteor", "durSec": 1}]}}`,
		"fault node":      `{"nodes": 1, "scheduler": {}, "virtualClusters": [{}], "faults": {"windows": [{"kind": "pcpu-slow", "durSec": 1, "nodes": [3]}]}}`,
		"fault severity":  `{"nodes": 1, "scheduler": {}, "virtualClusters": [{}], "faults": {"windows": [{"kind": "packet-loss", "durSec": 1, "severity": 2}]}}`,
	}
	for name, js := range cases {
		if _, err := Load(strings.NewReader(js)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestHYSchedulerAccepted(t *testing.T) {
	spec, err := Load(strings.NewReader(`{"nodes": 1, "scheduler": {"kind": "HY"}, "virtualClusters": [{"vcpus": 2, "kernel": "ep", "class": "A", "rounds": 1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Scenario.World.Node(0).Scheduler().Name(); got != "HY" {
		t.Errorf("scheduler = %q", got)
	}
}

func TestLoadRejectsResourceBombs(t *testing.T) {
	// Regressions from FuzzScenarioJSON hardening: each of these used to
	// slip past Validate and reach NewWorld (allocation bombs, an int64
	// overflow of the virtual clock) or be silently ignored.
	cases := map[string]string{
		"huge nodes":     `{"nodes":1000000000,"virtualClusters":[{}]}`,
		"huge pcpus":     `{"nodes":1,"pcpusPerNode":100000,"virtualClusters":[{}]}`,
		"negative pcpus": `{"nodes":1,"pcpusPerNode":-8,"virtualClusters":[{}]}`,
		"huge horizon":   `{"nodes":1,"horizonSec":1e300,"virtualClusters":[{}]}`,
		"huge slice":     `{"nodes":1,"scheduler":{"fixedSliceMs":1e12},"virtualClusters":[{}]}`,
		"huge vms":       `{"nodes":1,"virtualClusters":[{"vms":1000000}]}`,
		"huge vcpus":     `{"nodes":1,"virtualClusters":[{"vcpus":1000000}]}`,
		"huge rounds":    `{"nodes":1,"virtualClusters":[{"rounds":100000000}]}`,
		"huge interval":  `{"nodes":1,"jobs":[{"type":"ping","node":0,"intervalMs":1e9}]}`,
		"trailing data":  `{"nodes":1,"virtualClusters":[{}]}{"nodes":2}`,
	}
	for name, src := range cases {
		if _, err := Load(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted %s", name, src)
		}
	}
}
