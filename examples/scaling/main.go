// Scaling: the paper's evaluation type A in miniature — grow the
// virtual-cluster size (one VM per physical node) and watch how each
// scheduling approach holds up. Balance Scheduling fades with scale,
// co-scheduling stays node-local, ATC keeps the synchronization overhead
// down by shortening slices everywhere the spin latency says to.
package main

import (
	"fmt"
	"log"

	"atcsched"
	"atcsched/internal/sim"
)

func main() {
	approaches := []atcsched.Approach{atcsched.CR, atcsched.BS, atcsched.CS, atcsched.DSS, atcsched.ATC}
	fmt.Println("cg.B mean execution time (s) on four identical virtual clusters")
	fmt.Printf("%-6s", "nodes")
	for _, a := range approaches {
		fmt.Printf("  %8s", a)
	}
	fmt.Println()
	for _, nodes := range []int{2, 4} {
		fmt.Printf("%-6d", nodes)
		for _, a := range approaches {
			cfg := atcsched.DefaultScenarioConfig(nodes, a)
			cfg.Seed = 7
			s, err := atcsched.NewScenario(cfg)
			if err != nil {
				log.Fatal(err)
			}
			prof := atcsched.NPBProfile("cg", "B")
			prof.Iterations = 10
			var runs []interface{ MeanTime() float64 }
			for vc := 0; vc < 4; vc++ {
				vms := s.VirtualCluster(fmt.Sprintf("vc%d", vc), nodes, 8, nil)
				runs = append(runs, s.RunParallel(prof, vms, 2, false))
			}
			if !s.Go(1200 * sim.Second) {
				log.Fatalf("%s/%d nodes: horizon exceeded", a, nodes)
			}
			var mean float64
			for _, r := range runs {
				mean += r.MeanTime()
			}
			fmt.Printf("  %8.3f", mean/float64(len(runs)))
		}
		fmt.Println()
	}
}
