package scenario

import (
	"strings"
	"testing"
)

const goodSpec = `{
  "nodes": 2,
  "pcpusPerNode": 4,
  "scheduler": {"kind": "ATC"},
  "seed": 7,
  "horizonSec": 300,
  "virtualClusters": [
    {"name": "vc1", "vms": 2, "vcpus": 4, "kernel": "is", "class": "A", "rounds": 2}
  ],
  "jobs": [
    {"type": "web", "node": 0},
    {"type": "ping", "node": 0, "intervalMs": 5},
    {"type": "disk", "node": 1},
    {"type": "stream", "node": 1},
    {"type": "cpu", "name": "gcc", "node": 0}
  ]
}`

func TestLoadAndRunEndToEnd(t *testing.T) {
	spec, err := Load(strings.NewReader(goodSpec))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	table, err := res.Run()
	if err != nil {
		t.Fatal(err)
	}
	out := table.String()
	for _, want := range []string{"vc1", "mean exec", "web", "ping", "disk", "stream", "gcc"} {
		if !strings.Contains(out, want) {
			t.Errorf("result table missing %q:\n%s", want, out)
		}
	}
	res.Scenario.World.MustAudit()
}

func TestDefaultsFilled(t *testing.T) {
	spec, err := Load(strings.NewReader(`{"nodes": 2, "scheduler": {}, "virtualClusters": [{}]}`))
	if err != nil {
		t.Fatal(err)
	}
	vc := spec.VirtualClusters[0]
	if vc.Name != "vc0" || vc.VMs != 2 || vc.VCPUs != 8 || vc.Kernel != "lu" || vc.Class != "B" || vc.Rounds != 3 {
		t.Errorf("defaults = %+v", vc)
	}
	if spec.Scheduler.Kind != "ATC" || spec.Seed != 1 || spec.HorizonSec != 1200 {
		t.Errorf("spec defaults = %+v", spec)
	}
}

func TestJobsOnlyScenarioRunsFixedWindow(t *testing.T) {
	spec, err := Load(strings.NewReader(`{
	  "nodes": 1, "pcpusPerNode": 2,
	  "scheduler": {"kind": "CR"},
	  "jobs": [{"type": "disk", "node": 0}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	table, err := res.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table.String(), "MB/s") {
		t.Errorf("no throughput row:\n%s", table.String())
	}
}

func TestValidationErrors(t *testing.T) {
	cases := map[string]string{
		"zero nodes":      `{"nodes": 0, "scheduler": {}, "virtualClusters": [{}]}`,
		"bad scheduler":   `{"nodes": 1, "scheduler": {"kind": "ZZ"}, "virtualClusters": [{}]}`,
		"bad kernel":      `{"nodes": 1, "scheduler": {}, "virtualClusters": [{"kernel": "nope"}]}`,
		"bad class":       `{"nodes": 1, "scheduler": {}, "virtualClusters": [{"class": "Z"}]}`,
		"dup name":        `{"nodes": 1, "scheduler": {}, "virtualClusters": [{"name":"a"},{"name":"a"}]}`,
		"empty":           `{"nodes": 1, "scheduler": {}}`,
		"bad job type":    `{"nodes": 1, "scheduler": {}, "jobs": [{"type": "teleport", "node": 0}]}`,
		"job node range":  `{"nodes": 1, "scheduler": {}, "jobs": [{"type": "disk", "node": 5}]}`,
		"bad cpu profile": `{"nodes": 1, "scheduler": {}, "jobs": [{"type": "cpu", "name": "rustc", "node": 0}]}`,
		"unknown field":   `{"nodes": 1, "scheduler": {}, "frobnicate": 1, "virtualClusters": [{}]}`,
		"neg slice":       `{"nodes": 1, "scheduler": {"fixedSliceMs": -2}, "virtualClusters": [{}]}`,
	}
	for name, js := range cases {
		if _, err := Load(strings.NewReader(js)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestHYSchedulerAccepted(t *testing.T) {
	spec, err := Load(strings.NewReader(`{"nodes": 1, "scheduler": {"kind": "HY"}, "virtualClusters": [{"vcpus": 2, "kernel": "ep", "class": "A", "rounds": 1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Scenario.World.Node(0).Scheduler().Name(); got != "HY" {
		t.Errorf("scheduler = %q", got)
	}
}
