package experiment

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"atcsched/internal/cluster"
	"atcsched/internal/report"
	"atcsched/internal/sim"
	"atcsched/internal/vmm"
	"atcsched/internal/workload"
)

// The scale experiment is a kubemark-style hollow-node sweep: each node
// carries one single-VCPU VM running a light ring-exchange BSP kernel, so
// the harness measures the simulation core itself — event dispatch,
// fabric delivery, shard synchronization — rather than scheduler policy.
// Every node ladder is swept at several shard counts, with shards=0 (the
// historical serial engine) as the baseline, and the measured events/s
// and wall-clock appended to BENCH_scale.json.

// benchScalePath is where the sweep appends its measurements; a package
// variable so tests can redirect it.
var benchScalePath = "BENCH_scale.json"

// scaleSimTime is the virtual time each cell simulates. Constant across
// cells so events scale with the node count, not the clock.
const scaleSimTime = 100 * sim.Millisecond

// scaleLadder returns the hollow-node counts and shard sets for a scale.
// Shard count 0 is the serial engine (the baseline each sharded cell is
// compared against).
func scaleLadder(sc Scale) (nodes []int, shards []int) {
	switch sc.Name {
	case "small":
		return []int{32, 64}, []int{0, 1, 2}
	case "medium":
		return []int{32, 128, 512, 1024}, []int{0, 1, 2, 4, 8}
	default: // full
		return []int{32, 128, 512, 1024, 2048, 4096}, []int{0, 1, 2, 4, 8}
	}
}

// hollowNodeConfig shrinks the testbed node to kubemark proportions: two
// cores and a single-VCPU dom0, so a 4096-node world stays buildable.
func hollowNodeConfig() vmm.NodeConfig {
	nc := vmm.DefaultNodeConfig()
	nc.PCPUs = 2
	nc.Dom0VCPUs = 1
	return nc
}

// hollowProfile is the per-node workload: short compute, one ring
// message per iteration, no lock traffic, blocking receives. The ring
// pattern makes every iteration cross node boundaries, exercising the
// shard synchronization path at full fan-out.
func hollowProfile() workload.AppProfile {
	return workload.AppProfile{
		Name:           "hollow-ring",
		ComputePerIter: 200 * sim.Microsecond,
		Pattern:        workload.PatternRing,
		MsgSize:        4 << 10,
		Iterations:     50,
		Footprint:      4 << 20,
		ColdRate:       0.01,
	}
}

// scaleCell is one (nodes, shards) measurement, as recorded in
// BENCH_scale.json.
type scaleCell struct {
	Nodes     int     `json:"nodes"`
	Shards    int     `json:"shards"` // 0 = serial engine baseline
	Events    uint64  `json:"events"`
	WallS     float64 `json:"wall_s"`
	EventsPS  float64 `json:"events_per_s"`
	SimS      float64 `json:"sim_s"`
	HeapMB    float64 `json:"heap_mb"`
	PeakRSSMB float64 `json:"peak_rss_mb"`
}

// scaleRun is one full sweep appended to BENCH_scale.json: a simulator
// sweep fills Cells, a fleet control-plane sweep fills Fleet.
type scaleRun struct {
	Date  string      `json:"date"`
	Go    string      `json:"go"`
	Cores int         `json:"cores"`
	Scale string      `json:"scale"`
	Seed  uint64      `json:"seed"`
	Cells []scaleCell `json:"cells,omitempty"`
	Fleet []fleetCell `json:"fleet,omitempty"`
}

// benchScaleFile is the BENCH_scale.json shape: runs accumulate across
// invocations (and PRs), newest last.
type benchScaleFile struct {
	Runs []scaleRun `json:"runs"`
}

// runScaleCell builds a hollow world of n nodes at the given shard count
// and drives it for scaleSimTime of virtual time, returning the cell's
// measurements.
func runScaleCell(n, shards int, seed uint64) (scaleCell, error) {
	cfg := cluster.DefaultConfig(n, cluster.CR)
	cfg.Node = hollowNodeConfig()
	cfg.Shards = shards
	cfg.Seed = seed
	s, err := cluster.New(cfg)
	if err != nil {
		return scaleCell{}, err
	}
	vms := s.VirtualCluster("hollow", n, 1, nil)
	s.RunBackground(hollowProfile(), vms)

	start := time.Now()
	s.GoFor(scaleSimTime)
	wall := time.Since(start).Seconds()

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	cell := scaleCell{
		Nodes:     n,
		Shards:    shards,
		Events:    s.World.Executed(),
		WallS:     wall,
		SimS:      scaleSimTime.Seconds(),
		HeapMB:    float64(ms.HeapAlloc) / (1 << 20),
		PeakRSSMB: peakRSSMB(),
	}
	if wall > 0 {
		cell.EventsPS = float64(cell.Events) / wall
	}
	return cell, nil
}

// peakRSSMB reads the process high-water RSS (VmHWM) from
// /proc/self/status. It is monotone over the process lifetime, so later
// cells inherit the peak of earlier, larger ones; 0 when unreadable
// (non-Linux hosts).
func peakRSSMB() float64 {
	b, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(b), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return 0
		}
		return kb / 1024
	}
	return 0
}

// appendBenchScale appends one sweep to benchScalePath, creating the
// file when absent and preserving prior runs.
func appendBenchScale(run scaleRun) error {
	var file benchScaleFile
	if b, err := os.ReadFile(benchScalePath); err == nil {
		if err := json.Unmarshal(b, &file); err != nil {
			return fmt.Errorf("parse %s: %w", benchScalePath, err)
		}
	}
	file.Runs = append(file.Runs, run)
	b, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(benchScalePath, append(b, '\n'), 0o644)
}

func init() {
	register(Experiment{
		ID: "scale",
		Title: "Extension — hollow-node scale sweep: simulator events/s and " +
			"wall-clock, 32 to 4096 nodes, serial engine vs 1/2/4/8 shards",
		Bench: true,
		Run: func(sc Scale, seed uint64) ([]*report.Table, error) {
			nodeSteps, shardSteps := scaleLadder(sc)
			t := report.New(
				fmt.Sprintf("Scale sweep (%s): %v nodes x shards %v, %v virtual time per cell",
					sc.Name, nodeSteps, shardSteps, scaleSimTime),
				"nodes", "shards", "events", "wall (s)", "events/s", "vs serial", "heap MB", "peak RSS MB")
			run := scaleRun{
				Date:  time.Now().Format("2006-01-02"),
				Go:    runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
				Cores: runtime.NumCPU(),
				Scale: sc.Name,
				Seed:  seed,
			}
			for _, n := range nodeSteps {
				var serialPS float64
				for _, shards := range shardSteps {
					cell, err := runScaleCell(n, shards, seed)
					if err != nil {
						return nil, fmt.Errorf("scale: nodes=%d shards=%d: %w", n, shards, err)
					}
					run.Cells = append(run.Cells, cell)
					vsSerial := "baseline"
					if shards == 0 {
						serialPS = cell.EventsPS
					} else if serialPS > 0 {
						vsSerial = fmt.Sprintf("%.2fx", cell.EventsPS/serialPS)
					}
					t.Add(strconv.Itoa(n), strconv.Itoa(shards),
						strconv.FormatUint(cell.Events, 10),
						fmt.Sprintf("%.3f", cell.WallS),
						fmt.Sprintf("%.0f", cell.EventsPS),
						vsSerial,
						fmt.Sprintf("%.1f", cell.HeapMB),
						fmt.Sprintf("%.1f", cell.PeakRSSMB))
				}
			}
			t.AddNote("shards=0 is the historical serial engine; shards>=1 is the sharded core "+
				"(lookahead %v). Host has %d core(s): with one core the sharded rows can only "+
				"match the serial baseline (goroutines serialize), the >=1.0x-at->=1024-nodes "+
				"speedup criterion applies on multi-core hosts.",
				cluster.DefaultConfig(2, cluster.CR).Net.WireLatency, runtime.NumCPU())
			t.AddNote("peak RSS (VmHWM) is monotone across cells; per-cell attribution is the heap column.")
			if err := appendBenchScale(run); err != nil {
				t.AddNote("WARNING: could not append to %s: %v", benchScalePath, err)
			} else {
				t.AddNote("appended run to %s", benchScalePath)
			}
			return []*report.Table{t}, nil
		},
	})
}
