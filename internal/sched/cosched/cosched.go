// Package cosched implements CS, the dynamic co-scheduling baseline
// ([7] in the paper): a VM whose average spinlock wait exceeds a
// threshold is marked for co-scheduling; at every tick its runnable
// VCPUs are gang-dispatched onto distinct PCPUs (preempting whatever runs
// there), so sibling VCPUs execute simultaneously and lock-holder
// preemption within the VM is suppressed.
//
// The paper's two observations about CS both emerge from this design:
// the VMs of one virtual *cluster* on different nodes are still scheduled
// asynchronously (each node gangs independently), and the forced
// preemptions hurt latency-sensitive and CPU-bound neighbours.
package cosched

import (
	"atcsched/internal/sched/credit"
	"atcsched/internal/sim"
	"atcsched/internal/vmm"
)

// Options configures the CS scheduler.
type Options struct {
	// Credit configures the underlying credit core.
	Credit credit.Options `json:"credit,omitzero"`
	// SpinWaitThreshold marks a VM for co-scheduling when its per-period
	// average spinlock latency exceeds it.
	SpinWaitThreshold sim.Time `json:"spinWaitThreshold,omitzero"`
	// CalmPeriods unmarks a VM after this many consecutive periods below
	// the threshold.
	CalmPeriods int `json:"calmPeriods,omitzero"`
}

// DefaultOptions returns the CS configuration used in the evaluation.
func DefaultOptions() Options {
	return Options{
		Credit:            credit.DefaultOptions(),
		SpinWaitThreshold: 200 * sim.Microsecond,
		CalmPeriods:       3,
	}
}

// Scheduler is CS layered over the credit core.
type Scheduler struct {
	*credit.Scheduler
	opts Options
	// marked maps VM id → consecutive calm periods since marking.
	marked map[int]int
}

// New builds a CS scheduler for node n.
func New(n *vmm.Node, opts Options) *Scheduler {
	if opts.CalmPeriods <= 0 {
		opts.CalmPeriods = 3
	}
	return &Scheduler{
		Scheduler: credit.New(n, opts.Credit),
		opts:      opts,
		marked:    make(map[int]int),
	}
}

// Factory returns a vmm.SchedulerFactory producing CS schedulers.
func Factory(opts Options) vmm.SchedulerFactory {
	return func(n *vmm.Node) vmm.Scheduler { return New(n, opts) }
}

// Name implements vmm.Scheduler.
func (s *Scheduler) Name() string { return "CS" }

// Options returns the scheduler's configuration (shadowing the embedded
// credit scheduler's, which only covers the credit core).
func (s *Scheduler) Options() Options { return s.opts }

// Marked reports whether vm is currently co-scheduled.
func (s *Scheduler) Marked(vm *vmm.VM) bool {
	_, ok := s.marked[vm.ID()]
	return ok
}

// OnPeriod implements vmm.Scheduler: refill credits, then update the
// co-scheduling set from spinlock wait.
func (s *Scheduler) OnPeriod(n *vmm.Node) {
	s.Scheduler.OnPeriod(n)
	for _, vm := range n.VMs() {
		avg := vm.SpinMon.SamplePeriod()
		if avg > s.opts.SpinWaitThreshold {
			s.marked[vm.ID()] = 0
			continue
		}
		if calm, ok := s.marked[vm.ID()]; ok {
			calm++
			if calm >= s.opts.CalmPeriods {
				delete(s.marked, vm.ID())
			} else {
				s.marked[vm.ID()] = calm
			}
		}
	}
	s.gangAll(n)
}

// OnTick implements vmm.Scheduler: credit burning only. Gang dispatch
// happens at period granularity — per-tick gangs degenerate into a clean
// time-division rotation that over-states CS (each VM would get the
// whole node exclusively several times per period).
func (s *Scheduler) OnTick(n *vmm.Node) {
	s.Scheduler.OnTick(n)
}

func (s *Scheduler) gangAll(n *vmm.Node) {
	for _, vm := range n.VMs() {
		if s.Marked(vm) {
			s.gang(n, vm)
		}
	}
}

// gang places every runnable VCPU of vm at the head of a distinct PCPU's
// runqueue and preempts those PCPUs, so the siblings start together.
// VCPUs already running stay where they are; blocked VCPUs are left
// alone (they have nothing to synchronize on CPU).
func (s *Scheduler) gang(n *vmm.Node, vm *vmm.VM) {
	pcpus := n.PCPUs()
	used := make(map[int]bool, len(pcpus))
	for _, v := range vm.VCPUs() {
		if v.State() == vmm.StateRunning && v.PCPU() != nil {
			used[v.PCPU().Index()] = true
		}
	}
	var toKick []*vmm.PCPU
	for _, v := range vm.VCPUs() {
		if v.State() != vmm.StateRunnable {
			continue
		}
		target := -1
		// Prefer a PCPU not already hosting a sibling and not already
		// claimed this gang: idle first, then the one whose current VCPU
		// belongs to another VM.
		for _, p := range pcpus {
			if used[p.Index()] {
				continue
			}
			if p.Current() == nil {
				target = p.Index()
				break
			}
		}
		if target < 0 {
			for _, p := range pcpus {
				if used[p.Index()] || p.Current() == nil {
					continue
				}
				if p.Current().VM() != vm {
					target = p.Index()
					break
				}
			}
		}
		if target < 0 {
			break // more runnable siblings than PCPUs; gang what we can
		}
		used[target] = true
		s.Dequeue(v)
		s.EnqueueFront(v, target)
		p := pcpus[target]
		if p.Current() != nil {
			toKick = append(toKick, p)
		} else {
			// An idle PCPU picks the head of its queue on dispatch.
			p.Preempt()
		}
	}
	for _, p := range toKick {
		p.Preempt()
	}
}
