package daemon

import (
	"errors"
	"testing"
	"time"

	"atcsched/internal/core"
	"atcsched/internal/fault"
	"atcsched/internal/sim"
	"atcsched/internal/workload"
)

// scriptedActuator fails according to a per-call script (call n consults
// script[n-1]; calls past the script succeed) and otherwise records like
// MapActuator.
type scriptedActuator struct {
	MapActuator
	script []error
	calls  int
}

func (a *scriptedActuator) Apply(slices map[int]sim.Time) error {
	a.calls++
	if a.calls <= len(a.script) && a.script[a.calls-1] != nil {
		return a.script[a.calls-1]
	}
	return a.MapActuator.Apply(slices)
}

var errActuator = errors.New("hypervisor knob unavailable")

// noSleep drops backoff waits so failure tests run instantly.
func noSleep(time.Duration) {}

// TestFailedApplyCommitsNothing pins the state-drift fix: a period whose
// actuation never lands must leave the daemon's committed state — the
// last-applied map and the period counter — exactly as it was, so the
// next period's Observe uses the slice actually in force rather than one
// that never took effect.
func TestFailedApplyCommitsNothing(t *testing.T) {
	var periods [][]VMSample
	for i := 0; i < 7; i++ { // rising latency: the controller keeps shortening
		periods = append(periods, []VMSample{{ID: 1, AvgSpinLatency: ms(float64(i + 1)), Parallel: true}})
	}
	src := &SliceSource{Periods: periods}
	act := &scriptedActuator{script: []error{errActuator}}
	d := New(core.DefaultConfig(), src, act,
		WithRetry(0, 0), WithGiveUpAfter(10), WithSleep(noSleep))

	if err := d.Step(); err != nil {
		t.Fatalf("dropped period must not be terminal: %v", err)
	}
	if len(d.loop.last) != 0 {
		t.Errorf("last-applied map committed after failed Apply: %v", d.loop.last)
	}
	if d.Periods() != 0 {
		t.Errorf("periods = %d after failed Apply, want 0", d.Periods())
	}
	if d.Stats().DroppedPeriods != 1 {
		t.Errorf("dropped = %d, want 1", d.Stats().DroppedPeriods)
	}

	// Subsequent periods actuate. The committed record must track what
	// the actuator really applied at every step — the drift the fix
	// removes is exactly a divergence between these two.
	for i := 0; i < 6; i++ {
		if err := d.Step(); err != nil {
			t.Fatal(err)
		}
		if got, want := d.loop.last[1], act.Last[1]; got != want {
			t.Fatalf("period %d: committed %v differs from actuated %v", i+2, got, want)
		}
	}
	if d.Periods() != 6 {
		t.Errorf("periods = %d, want 6 (the dropped one must not count)", d.Periods())
	}
	def := core.DefaultConfig().Default
	if got := d.loop.last[1]; got >= def {
		t.Errorf("sustained contention left slice at %v, want shortened below %v", got, def)
	}
}

// TestRetryBackoffDoubles pins the retry policy: each re-attempt waits
// twice the previous backoff, and a period that eventually lands commits
// normally.
func TestRetryBackoffDoubles(t *testing.T) {
	src := &SliceSource{Periods: [][]VMSample{
		{{ID: 1, AvgSpinLatency: ms(1), Parallel: true}},
	}}
	act := &scriptedActuator{script: []error{errActuator, errActuator}}
	var waits []time.Duration
	d := New(core.DefaultConfig(), src, act,
		WithRetry(3, 10*time.Millisecond),
		WithSleep(func(dt time.Duration) { waits = append(waits, dt) }))
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if len(waits) != len(want) || waits[0] != want[0] || waits[1] != want[1] {
		t.Errorf("backoffs = %v, want %v", waits, want)
	}
	if d.Stats().Retries != 2 {
		t.Errorf("retries = %d, want 2", d.Stats().Retries)
	}
	if d.Periods() != 1 || d.Stats().DroppedPeriods != 0 {
		t.Errorf("periods = %d dropped = %d, want 1/0", d.Periods(), d.Stats().DroppedPeriods)
	}
}

// TestRunSurvivesTransientActuatorFailure pins the loop-level contract:
// retried and even fully dropped periods do not end Run; only the
// give-up threshold is terminal.
func TestRunSurvivesTransientActuatorFailure(t *testing.T) {
	var periods [][]VMSample
	for i := 0; i < 6; i++ {
		periods = append(periods, []VMSample{{ID: 1, AvgSpinLatency: ms(2), Parallel: true}})
	}
	// Period 2's first attempt fails (retry lands it); period 4 fails both
	// attempts and drops.
	act := &scriptedActuator{script: []error{
		nil,              // period 1
		errActuator, nil, // period 2: fail, retry ok
		nil,                      // period 3
		errActuator, errActuator, // period 4: dropped
		nil, // period 5
	}}
	d := New(core.DefaultConfig(), &SliceSource{Periods: periods}, act,
		WithRetry(1, time.Millisecond), WithGiveUpAfter(3), WithSleep(noSleep))
	if err := d.Run(); err != nil {
		t.Fatalf("Run must absorb transient failures: %v", err)
	}
	if d.Periods() != 5 {
		t.Errorf("periods = %d, want 5 (one of six dropped)", d.Periods())
	}
	st := d.Stats()
	if st.Retries != 2 || st.DroppedPeriods != 1 {
		t.Errorf("retries = %d dropped = %d, want 2/1", st.Retries, st.DroppedPeriods)
	}
}

// TestGiveUpAfterConsecutiveDrops pins the terminal path: persistent
// actuation failure eventually surfaces as an error instead of spinning
// forever, and a success in between resets the counter.
func TestGiveUpAfterConsecutiveDrops(t *testing.T) {
	var periods [][]VMSample
	for i := 0; i < 10; i++ {
		periods = append(periods, []VMSample{{ID: 1, Parallel: true}})
	}
	// One drop, one success (resets the run), then drops until give-up.
	act := &scriptedActuator{script: []error{
		errActuator, nil, errActuator, errActuator, errActuator,
	}}
	d := New(core.DefaultConfig(), &SliceSource{Periods: periods}, act,
		WithRetry(0, 0), WithGiveUpAfter(2), WithSleep(noSleep))
	err := d.Run()
	if err == nil {
		t.Fatal("Run returned nil despite give-up threshold")
	}
	if !errors.Is(err, errActuator) {
		t.Errorf("terminal error %v does not wrap the actuator error", err)
	}
	if d.Stats().DroppedPeriods != 3 {
		t.Errorf("dropped = %d, want 3 (1 reset + 2 consecutive)", d.Stats().DroppedPeriods)
	}
	if d.Periods() != 1 {
		t.Errorf("periods = %d, want 1", d.Periods())
	}
}

// TestStaleSamplesSkippedThenDegraded pins the blackout policy: a
// repeated sequence number is not fed to the controller; the last slice
// holds for StaleAfter-1 periods and then walks back toward the default.
func TestStaleSamplesSkippedThenDegraded(t *testing.T) {
	var periods [][]VMSample
	seq := uint64(0)
	for i := 0; i < 6; i++ { // rising contention: slice walks down
		seq++
		periods = append(periods, []VMSample{
			{ID: 1, AvgSpinLatency: ms(float64(i + 1)), Parallel: true, Seq: seq}})
	}
	for i := 0; i < 8; i++ { // monitor wedged: same seq repeated
		periods = append(periods, []VMSample{
			{ID: 1, AvgSpinLatency: ms(6), Parallel: true, Seq: seq}})
	}
	act := &scriptedActuator{}
	d := New(core.DefaultConfig(), &SliceSource{Periods: periods}, act, WithStaleAfter(2))

	// Drive the contention phase and note the shortened slice.
	for i := 0; i < 6; i++ {
		if err := d.Step(); err != nil {
			t.Fatal(err)
		}
	}
	short := act.Last[1]
	def := core.DefaultConfig().Default
	if short >= def {
		t.Fatalf("contention phase did not shorten the slice (%v)", short)
	}

	// First stale period: hold.
	if err := d.Step(); err != nil {
		t.Fatal(err)
	}
	if act.Last[1] != short {
		t.Errorf("first stale period moved the slice: %v -> %v", short, act.Last[1])
	}
	// Further stale periods: degrade toward the default, never past it.
	prev := act.Last[1]
	for i := 0; i < 7; i++ {
		if err := d.Step(); err != nil {
			t.Fatal(err)
		}
		if act.Last[1] < prev || act.Last[1] > def {
			t.Fatalf("degradation not monotone toward default: %v -> %v", prev, act.Last[1])
		}
		prev = act.Last[1]
	}
	if act.Last[1] != def {
		t.Errorf("slice = %v after long blackout, want default %v", act.Last[1], def)
	}
	st := d.Stats()
	if st.StaleSamples != 8 {
		t.Errorf("stale samples = %d, want 8", st.StaleSamples)
	}
	if st.Degraded == 0 {
		t.Error("no degradation recorded")
	}
}

// TestDropoutDegrades pins the other blackout face: a known VM missing
// from the sample set entirely is still actuated, held first and then
// degraded.
func TestDropoutDegrades(t *testing.T) {
	periods := [][]VMSample{
		{{ID: 1, AvgSpinLatency: ms(5), Parallel: true, Seq: 1},
			{ID: 2, Parallel: false, AdminSlice: ms(6), Seq: 1}},
	}
	for i := 0; i < 6; i++ { // both VMs vanish from the monitor
		periods = append(periods, []VMSample{})
	}
	act := &scriptedActuator{}
	d := New(core.DefaultConfig(), &SliceSource{Periods: periods}, act, WithStaleAfter(2))
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	def := core.DefaultConfig().Default
	if act.Last[1] != def {
		t.Errorf("parallel dropout slice = %v, want degraded to default %v", act.Last[1], def)
	}
	if act.Last[2] != ms(6) {
		t.Errorf("non-parallel dropout slice = %v, want admin 6ms", act.Last[2])
	}
	if d.Periods() != 7 {
		t.Errorf("periods = %d, want 7", d.Periods())
	}
}

// TestClosedLoopRidesOutInjectedFaults drives the full daemon against
// the sim backend with a fault plan injecting actuation failures and
// monitor dropouts: the hardened loop must retry through the failures,
// skip the blacked-out samples, and still finish its period budget.
func TestClosedLoopRidesOutInjectedFaults(t *testing.T) {
	b, err := NewSimBackend(SimBackendConfig{
		Nodes:      2,
		VCPUsPerVM: 4,
		Clusters:   2,
		Kernel:     "lu",
		Class:      workload.ClassA,
		MaxPeriods: 100,
		Seed:       3,
		Faults: &fault.Spec{Windows: []fault.Window{
			{Kind: fault.ActuatorFail, StartSec: 0.5, DurSec: 1, Severity: 0.4},
			{Kind: fault.MonitorDrop, StartSec: 0.5, DurSec: 1, Severity: 0.5},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	d := New(core.DefaultConfig(), b, b,
		WithRetry(3, time.Millisecond), WithGiveUpAfter(50), WithSleep(noSleep))
	if err := d.Run(); !IsDone(err) {
		t.Fatalf("daemon ended with %v, want clean period-budget end", err)
	}
	rep := b.FaultReport()
	if rep.ActuationsFailed == 0 {
		t.Error("no actuation failures injected — plan not live on Apply")
	}
	if rep.SamplesDropped == 0 {
		t.Error("no monitor dropouts injected — plan not live on Sample")
	}
	if d.Stats().Retries == 0 {
		t.Error("injected actuation failures never triggered a retry")
	}
	if d.Periods() == 0 || d.Periods()+d.Stats().DroppedPeriods != 100 {
		t.Errorf("periods=%d dropped=%d, want their sum to be the 100-period budget",
			d.Periods(), d.Stats().DroppedPeriods)
	}
	if errs := b.World.Audit(); len(errs) > 0 {
		t.Fatalf("audit under faults: %v", errs[0])
	}
}

// TestSeqZeroKeepsLegacyBehaviour pins backward compatibility: sources
// that do not track sequence numbers are never treated as stale.
func TestSeqZeroKeepsLegacyBehaviour(t *testing.T) {
	var periods [][]VMSample
	for i := 0; i < 5; i++ {
		periods = append(periods, []VMSample{{ID: 1, AvgSpinLatency: ms(1), Parallel: true}})
	}
	act := &scriptedActuator{}
	d := New(core.DefaultConfig(), &SliceSource{Periods: periods}, act)
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	if st := d.Stats(); st.StaleSamples != 0 || st.Degraded != 0 {
		t.Errorf("legacy source tripped fault handling: %+v", st)
	}
	if d.Periods() != 5 {
		t.Errorf("periods = %d, want 5", d.Periods())
	}
}
