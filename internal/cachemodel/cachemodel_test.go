package cachemodel

import (
	"math"
	"testing"
	"testing/quick"

	"atcsched/internal/sim"
)

func testConfig() Config {
	return Config{Capacity: 1 << 20, RefillBytesPerSec: 1 << 30, LineSize: 64}
}

func TestWarmClientRunsAtFullSpeed(t *testing.T) {
	c := New(testConfig())
	cl := c.NewClient(0, 0.5) // zero footprint: always warm
	work := 10 * sim.Millisecond
	if got := c.TimeFor(cl, work); got != work {
		t.Errorf("TimeFor = %v, want %v", got, work)
	}
	if got := c.Advance(cl, work); got != work {
		t.Errorf("Advance = %v, want %v", got, work)
	}
	if c.Misses() != 0 {
		t.Errorf("misses = %d, want 0", c.Misses())
	}
}

func TestColdClientSlower(t *testing.T) {
	c := New(testConfig())
	cl := c.NewClient(512<<10, 0.5)
	work := 10 * sim.Millisecond
	cold := c.TimeFor(cl, work)
	if cold <= work {
		t.Fatalf("cold TimeFor = %v, want > %v", cold, work)
	}
	// After running long enough to warm up, it should be full speed.
	c.Advance(cl, cold)
	if cl.Warmth() < 0.999 {
		t.Fatalf("Warmth = %v after long run", cl.Warmth())
	}
	if got := c.TimeFor(cl, work); got != work {
		t.Errorf("warm TimeFor = %v, want %v", got, work)
	}
	if cl.Misses() == 0 || c.Misses() == 0 {
		t.Error("refill counted no misses")
	}
	// 512 KiB / 64 B = 8192 lines.
	if cl.Misses() > 8192+1 || cl.Misses() < 8191 {
		t.Errorf("misses = %d, want ~8192", cl.Misses())
	}
}

func TestAdvanceInverseOfTimeFor(t *testing.T) {
	f := func(footKB uint16, workUS uint16, rateRaw uint8) bool {
		c := New(testConfig())
		rate := 0.1 + float64(rateRaw%90)/100
		cl := c.NewClient(int64(footKB)<<10, rate)
		work := sim.Time(workUS+1) * sim.Microsecond
		dt := c.TimeFor(cl, work)
		got := c.Advance(cl, dt)
		// Rounding tolerance: 1 microsecond.
		return math.Abs(float64(got-work)) <= float64(sim.Microsecond)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEvictionOnContention(t *testing.T) {
	c := New(testConfig()) // 1 MiB capacity
	a := c.NewClient(768<<10, 0.5)
	b := c.NewClient(768<<10, 0.5)
	// Warm A fully.
	c.Advance(a, sim.Second)
	if a.Warmth() < 0.999 {
		t.Fatalf("a warmth = %v", a.Warmth())
	}
	// Warm B fully; must evict part of A (768+768 KiB > 1 MiB).
	c.Advance(b, sim.Second)
	if b.Warmth() < 0.999 {
		t.Fatalf("b warmth = %v", b.Warmth())
	}
	if a.Warmth() > 0.5 {
		t.Errorf("a warmth = %v after b ran, want significant eviction", a.Warmth())
	}
	if c.resident > c.cfg.Capacity {
		t.Errorf("resident %d exceeds capacity %d", c.resident, c.cfg.Capacity)
	}
}

func TestRepeatedSwitchingCausesMisses(t *testing.T) {
	// The Figure 8 mechanism: two clients ping-ponging on one PCPU incur
	// misses every switch; fewer switches, fewer misses.
	run := func(sliceUS int) uint64 {
		c := New(testConfig())
		a := c.NewClient(900<<10, 0.5)
		b := c.NewClient(900<<10, 0.5)
		total := 20 * sim.Millisecond
		slice := sim.Time(sliceUS) * sim.Microsecond
		for done := sim.Time(0); done < total; done += 2 * slice {
			c.Advance(a, slice)
			c.Advance(b, slice)
		}
		return c.Misses()
	}
	fine, coarse := run(100), run(5000)
	if fine <= coarse {
		t.Errorf("misses fine=%d, coarse=%d; want more misses at finer slices", fine, coarse)
	}
}

func TestFootprintLargerThanCapacity(t *testing.T) {
	c := New(testConfig())
	cl := c.NewClient(10<<20, 0.5) // 10 MiB footprint in a 1 MiB cache
	if cl.target() != c.cfg.Capacity {
		t.Fatalf("target = %d, want capacity", cl.target())
	}
	c.Advance(cl, sim.Second)
	if cl.residentBytes > c.cfg.Capacity {
		t.Errorf("resident %d exceeds capacity", cl.residentBytes)
	}
	if cl.Warmth() < 0.999 {
		t.Errorf("warmth = %v, want ~1 at steady state", cl.Warmth())
	}
}

func TestFlush(t *testing.T) {
	c := New(testConfig())
	cl := c.NewClient(256<<10, 0.5)
	c.Advance(cl, sim.Second)
	if cl.Resident() == 0 {
		t.Fatal("not warmed")
	}
	c.Flush(cl)
	if cl.Resident() != 0 {
		t.Errorf("Resident = %d after Flush", cl.Resident())
	}
	if c.resident != 0 {
		t.Errorf("cache resident = %d after Flush", c.resident)
	}
}

func TestZeroAndNegativeInputs(t *testing.T) {
	c := New(testConfig())
	cl := c.NewClient(1<<10, 1)
	if c.TimeFor(cl, 0) != 0 || c.TimeFor(cl, -5) != 0 {
		t.Error("TimeFor of non-positive work not 0")
	}
	if c.Advance(cl, 0) != 0 || c.Advance(cl, -5) != 0 {
		t.Error("Advance of non-positive dt not 0")
	}
}

func TestConfigValidation(t *testing.T) {
	for _, cfg := range []Config{
		{Capacity: 0, RefillBytesPerSec: 1, LineSize: 64},
		{Capacity: 1, RefillBytesPerSec: 0, LineSize: 64},
		{Capacity: 1, RefillBytesPerSec: 1, LineSize: 0},
	} {
		cfg := cfg
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestClientValidation(t *testing.T) {
	c := New(testConfig())
	for _, tc := range []struct {
		foot int64
		rate float64
	}{{-1, 0.5}, {1, 0}, {1, 1.5}} {
		tc := tc
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewClient(%d,%v) did not panic", tc.foot, tc.rate)
				}
			}()
			c.NewClient(tc.foot, tc.rate)
		}()
	}
}

func TestDefaultConfigSane(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Capacity <= 0 || cfg.RefillBytesPerSec <= 0 || cfg.LineSize <= 0 {
		t.Fatalf("bad default %+v", cfg)
	}
	New(cfg) // must not panic
}

// Property: resident total never exceeds capacity regardless of the
// interleaving of client runs.
func TestCapacityInvariant(t *testing.T) {
	f := func(ops []uint8) bool {
		c := New(testConfig())
		cls := []*Client{
			c.NewClient(600<<10, 0.5),
			c.NewClient(300<<10, 0.7),
			c.NewClient(2<<20, 0.3),
		}
		for _, op := range ops {
			cl := cls[int(op)%len(cls)]
			c.Advance(cl, sim.Time(op)*10*sim.Microsecond)
			if c.resident > c.cfg.Capacity {
				return false
			}
			var sum int64
			for _, x := range cls {
				if x.residentBytes < 0 {
					return false
				}
				sum += x.residentBytes
			}
			if sum != c.resident {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: TimeFor is monotone in work — more work never takes less
// time — and at least warm-speed (TimeFor(w) >= w).
func TestTimeForMonotoneProperty(t *testing.T) {
	f := func(footKB uint16, warmFrac uint8, w1, w2 uint16) bool {
		c := New(testConfig())
		cl := c.NewClient(int64(footKB)<<10, 0.5)
		// Pre-warm a fraction of the set.
		c.Advance(cl, sim.Time(warmFrac)*20*sim.Microsecond)
		a := sim.Time(w1) * sim.Microsecond
		b := sim.Time(w2) * sim.Microsecond
		if a > b {
			a, b = b, a
		}
		ta, tb := c.TimeFor(cl, a), c.TimeFor(cl, b)
		return ta <= tb && ta >= a && tb >= b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
