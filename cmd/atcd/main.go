// Command atcd is a userspace Adaptive Time-slice Control daemon
// prototype. The paper implements ATC inside Xen's scheduler; this
// daemon runs the identical control law (internal/core) in userspace
// against pluggable latency sources and slice actuators — the deployment
// shape available without hypervisor modifications.
//
// Backends:
//
//	-backend demo    synthesize a contention episode and print the
//	                 control trajectory (default)
//	-backend stdio   one period per input line group: lines of
//	                 "<vmID> <avg-latency-us> <parallel:0|1> [admin-us]"
//	                 terminated by "--"; emits "vm<N> <slice>us" lines
//	-backend sim     close the loop against a live simulated cluster:
//	                 the daemon samples real spinlock latencies from the
//	                 simulator and actuates its schedulers' slices
//
// Example:
//
//	printf '1 2000 1\n--\n1 4000 1\n--\n' | atcd -backend stdio
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"atcsched/internal/core"
	"atcsched/internal/daemon"
	"atcsched/internal/sim"
	"atcsched/internal/workload"
)

func main() {
	var (
		backend   = flag.String("backend", "demo", "demo | stdio | sim")
		defSlice  = flag.Float64("default", 30, "default slice in ms")
		threshold = flag.Float64("min", 0.3, "minimum slice threshold in ms")
		alpha     = flag.Float64("alpha", 6, "coarse adjustment step in ms")
		beta      = flag.Float64("beta", 0.3, "fine adjustment step in ms")
		periods   = flag.Int("periods", 40, "demo: number of control periods")
		swap      = flag.String("swap", "", `sim: scheduled policy switches "period:node:KIND[,...]" (node -1 = all), e.g. "10:-1:ATC"`)
	)
	flag.Parse()

	cfg := core.Config{
		Default:      sim.FromMillis(*defSlice),
		MinThreshold: sim.FromMillis(*threshold),
		Alpha:        sim.FromMillis(*alpha),
		Beta:         sim.FromMillis(*beta),
		Window:       3,
	}
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}

	var src daemon.Source
	var act daemon.Actuator = daemon.WriterActuator{W: os.Stdout}
	var sb *daemon.SimBackend
	switch *backend {
	case "demo":
		src = demoSource(*periods)
	case "stdio":
		src = &stdioSource{r: bufio.NewScanner(os.Stdin)}
	case "sim":
		switches, err := parseSwitches(*swap)
		if err != nil {
			fatal(err)
		}
		sb, err = daemon.NewSimBackend(daemon.SimBackendConfig{
			Class:      workload.ClassB,
			MaxPeriods: *periods,
			Switches:   switches,
		})
		if err != nil {
			fatal(err)
		}
		src, act = sb, sb
	default:
		fatal(fmt.Errorf("unknown backend %q", *backend))
	}
	d := daemon.New(cfg, src, act)
	if err := d.Run(); err != nil && !daemon.IsDone(err) {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "atcd: %d control periods executed\n", d.Periods())
	if sb != nil {
		var rounds int
		for _, r := range sb.Runs() {
			rounds += r.Rounds()
		}
		fmt.Printf("sim backend: %d application rounds completed in %v of virtual time\n",
			rounds, sb.World.Eng.Now())
		for _, vm := range sb.World.Node(0).VMs() {
			fmt.Printf("  node0 %s latency-driven slice converged (see trace above)\n", vm.Name())
			break
		}
	}
}

// parseSwitches parses the -swap flag: comma-separated
// "period:node:KIND" triples.
func parseSwitches(s string) ([]daemon.PolicySwitch, error) {
	if s == "" {
		return nil, nil
	}
	var out []daemon.PolicySwitch
	for _, part := range strings.Split(s, ",") {
		f := strings.Split(strings.TrimSpace(part), ":")
		if len(f) != 3 {
			return nil, fmt.Errorf("atcd: bad -swap entry %q (want period:node:KIND)", part)
		}
		period, err := strconv.Atoi(f[0])
		if err != nil {
			return nil, fmt.Errorf("atcd: bad -swap period %q", f[0])
		}
		node, err := strconv.Atoi(f[1])
		if err != nil {
			return nil, fmt.Errorf("atcd: bad -swap node %q", f[1])
		}
		out = append(out, daemon.PolicySwitch{AtPeriod: period, Node: node, Kind: f[2]})
	}
	return out, nil
}

// demoSource synthesizes a parallel VM going through idle → rising
// contention → decay → idle, next to a non-parallel neighbour.
func demoSource(periods int) daemon.Source {
	var ps [][]daemon.VMSample
	for i := 0; i < periods; i++ {
		var lat sim.Time
		switch {
		case i < 5: // idle
		case i < periods/2: // rising contention
			lat = sim.Time(i-4) * 2 * sim.Millisecond
		case i < periods*3/4: // decaying
			lat = sim.Time(periods-i) * sim.Millisecond
		default: // idle again
		}
		ps = append(ps, []daemon.VMSample{
			{ID: 1, AvgSpinLatency: lat, Parallel: true},
			{ID: 2, Parallel: false},
		})
	}
	return &daemon.SliceSource{Periods: ps}
}

// stdioSource parses period groups from stdin.
type stdioSource struct {
	r *bufio.Scanner
}

// Sample implements daemon.Source.
func (s *stdioSource) Sample() ([]daemon.VMSample, error) {
	var out []daemon.VMSample
	for s.r.Scan() {
		line := strings.TrimSpace(s.r.Text())
		if line == "" {
			continue
		}
		if line == "--" {
			return out, nil
		}
		f := strings.Fields(line)
		if len(f) < 3 {
			return nil, fmt.Errorf("atcd: bad input line %q (want: id latency-us parallel [admin-us])", line)
		}
		id, err := strconv.Atoi(f[0])
		if err != nil {
			return nil, fmt.Errorf("atcd: bad vm id %q", f[0])
		}
		latUS, err := strconv.ParseFloat(f[1], 64)
		if err != nil || latUS < 0 {
			return nil, fmt.Errorf("atcd: bad latency %q", f[1])
		}
		par := f[2] == "1" || strings.EqualFold(f[2], "true")
		vs := daemon.VMSample{
			ID:             id,
			AvgSpinLatency: sim.Time(latUS * float64(sim.Microsecond)),
			Parallel:       par,
		}
		if len(f) >= 4 {
			adminUS, err := strconv.ParseFloat(f[3], 64)
			if err != nil || adminUS < 0 {
				return nil, fmt.Errorf("atcd: bad admin slice %q", f[3])
			}
			vs.AdminSlice = sim.Time(adminUS * float64(sim.Microsecond))
		}
		out = append(out, vs)
	}
	if len(out) > 0 {
		return out, nil
	}
	return nil, io.EOF
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "atcd:", err)
	os.Exit(1)
}
