// Package netmodel models the physical interconnect of the testbed: a
// switched 1 Gbps Ethernet with full bisection bandwidth, one NIC per
// node. Transmissions serialize on the sender's NIC (and the receiver's),
// then traverse the wire with a fixed propagation + switching latency.
// Node-local deliveries bypass the wire; the dom0 software path for those
// lives in the vmm package.
//
// The fabric is also the sharding boundary of the simulator: nodes only
// influence each other through wire transmissions, and every wire
// transmission takes at least WireLatency to arrive. A sharded fabric
// (NewSharded) therefore hands cross-node deliveries to a PostFunc — in
// practice sim.ShardGroup.Post — which sequences them deterministically
// at the lookahead barrier instead of scheduling straight into the
// destination's engine.
package netmodel

import (
	"fmt"

	"atcsched/internal/sim"
)

// Config parameterizes a Fabric.
type Config struct {
	// BytesPerSec is the per-NIC line rate (default 1 Gbps = 125 MB/s).
	BytesPerSec float64
	// WireLatency is the one-way propagation plus switching latency.
	WireLatency sim.Time
	// LocalLatency is the node-local loopback latency (shared memory copy).
	LocalLatency sim.Time
	// LocalBytesPerSec, when nonzero, serializes node-local deliveries
	// through a per-node loopback at this rate. Zero keeps the
	// historical behaviour — local sends pace only on LocalLatency (a
	// shared-memory copy, not the NIC) — but the bytes are still
	// tallied in LocalBytes so the bypass is visible, not silent.
	LocalBytesPerSec float64
	// RetransmitTimeout is the delay before a transmission discarded by
	// the loss hook is retried (default 1 ms — a transport-level RTO).
	RetransmitTimeout sim.Time
}

// DefaultConfig matches the paper's testbed network: 1 Gbps Ethernet.
func DefaultConfig() Config {
	return Config{
		BytesPerSec:  125e6,
		WireLatency:  50 * sim.Microsecond,
		LocalLatency: 5 * sim.Microsecond,
	}
}

// PostFunc delivers a cross-node event: run fn at absolute time at on
// dst's engine, attributed to src. The fabric guarantees at is at least
// one WireLatency after src's current time, which is exactly the
// lookahead contract sim.ShardGroup.Post requires.
type PostFunc func(src, dst int, at sim.Time, fn func())

// Fabric is the cluster interconnect.
//
// State is partitioned by node so that a sharded fabric needs no locks:
// tx/lo and the *By counters indexed by src are only touched from the
// source node's shard, rx and deliveredBy (indexed by dst) only from the
// destination's. The summing getters are meant for barrier time (or any
// single-threaded moment); the per-element writes themselves never race.
type Fabric struct {
	engines []*sim.Engine // per-node engine (all identical in serial mode)
	post    PostFunc      // nil in serial mode
	cfg     Config
	tx      []sim.Time // per-node NIC transmit-free time (src shard)
	rx      []sim.Time // per-node NIC receive-free time (dst shard)
	lo      []sim.Time // per-node loopback-free time (LocalBytesPerSec)

	sentBy      []uint64 // Send calls, by src
	deliveredBy []uint64 // completed deliveries, by dst
	wireBy      []uint64 // bytes that crossed the wire, by src
	localBy     []uint64 // bytes delivered node-locally, by src
	lostBy      []uint64 // transmissions discarded by the loss hook, by src
	retxBy      []uint64 // retransmissions after losses, by src

	// lossFn, when set, is consulted once per wire transmission attempt;
	// returning true discards the attempt (it is retried after
	// RetransmitTimeout). bwFn, when set, scales a node's NIC line rate
	// by the returned fraction in (0,1]; values outside that range mean
	// full rate. Both must be deterministic in their arguments plus any
	// explicitly seeded state (see internal/fault), and in a sharded
	// fabric they are called concurrently from different shards, so any
	// such state must be partitioned by the src/node argument.
	lossFn func(src, dst int, now sim.Time) bool
	bwFn   func(node int, now sim.Time) float64
}

// New creates a serial fabric connecting `nodes` nodes on one engine.
func New(eng *sim.Engine, nodes int, cfg Config) *Fabric {
	if nodes <= 0 {
		panic("netmodel: need at least one node")
	}
	engines := make([]*sim.Engine, nodes)
	for i := range engines {
		engines[i] = eng
	}
	return newFabric(engines, cfg, nil)
}

// NewSharded creates a fabric over per-node engines whose cross-node
// deliveries are sequenced through post. WireLatency must be positive:
// it is the conservative lookahead that makes the sharding sound.
func NewSharded(engines []*sim.Engine, cfg Config, post PostFunc) *Fabric {
	if len(engines) == 0 {
		panic("netmodel: need at least one node")
	}
	if post == nil {
		panic("netmodel: sharded fabric needs a post function")
	}
	if cfg.WireLatency <= 0 {
		panic(fmt.Sprintf("netmodel: sharded fabric needs a positive wire latency, got %v", cfg.WireLatency))
	}
	return newFabric(append([]*sim.Engine(nil), engines...), cfg, post)
}

func newFabric(engines []*sim.Engine, cfg Config, post PostFunc) *Fabric {
	if cfg.BytesPerSec <= 0 {
		panic(fmt.Sprintf("netmodel: invalid bandwidth %v", cfg.BytesPerSec))
	}
	nodes := len(engines)
	return &Fabric{
		engines:     engines,
		post:        post,
		cfg:         cfg,
		tx:          make([]sim.Time, nodes),
		rx:          make([]sim.Time, nodes),
		lo:          make([]sim.Time, nodes),
		sentBy:      make([]uint64, nodes),
		deliveredBy: make([]uint64, nodes),
		wireBy:      make([]uint64, nodes),
		localBy:     make([]uint64, nodes),
		lostBy:      make([]uint64, nodes),
		retxBy:      make([]uint64, nodes),
	}
}

// SetLoss installs (or, with nil, removes) the packet-loss hook.
func (f *Fabric) SetLoss(fn func(src, dst int, now sim.Time) bool) { f.lossFn = fn }

// SetBandwidth installs (or, with nil, removes) the line-rate
// degradation hook.
func (f *Fabric) SetBandwidth(fn func(node int, now sim.Time) float64) { f.bwFn = fn }

// Nodes returns the number of nodes the fabric connects.
func (f *Fabric) Nodes() int { return len(f.tx) }

// Lookahead returns the minimum cross-node delivery delay — the
// conservative synchronization window a sharded simulation may use.
func (f *Fabric) Lookahead() sim.Time { return f.cfg.WireLatency }

func sum(a []uint64) uint64 {
	var n uint64
	for _, v := range a {
		n += v
	}
	return n
}

// PacketsSent returns the number of Send calls so far.
func (f *Fabric) PacketsSent() uint64 { return sum(f.sentBy) }

// PacketsDelivered returns the number of completed deliveries.
func (f *Fabric) PacketsDelivered() uint64 { return sum(f.deliveredBy) }

// InFlight returns packets sent but not yet delivered (including
// cross-shard deliveries still queued at the barrier).
func (f *Fabric) InFlight() uint64 { return sum(f.sentBy) - sum(f.deliveredBy) }

// WireBytes returns the bytes that crossed the physical wire (node-local
// traffic excluded).
func (f *Fabric) WireBytes() uint64 { return sum(f.wireBy) }

// LocalBytes returns the bytes delivered node-locally over the loopback
// path (never on the wire).
func (f *Fabric) LocalBytes() uint64 { return sum(f.localBy) }

// PacketsLost returns the transmissions discarded by the loss hook.
func (f *Fabric) PacketsLost() uint64 { return sum(f.lostBy) }

// Retransmits returns the retransmissions performed after losses.
func (f *Fabric) Retransmits() uint64 { return sum(f.retxBy) }

// Send transmits size bytes from node src to node dst, invoking deliver
// when the last byte arrives at dst's NIC. Node-local sends take the
// loopback path: LocalLatency, plus loopback serialization when
// LocalBytesPerSec is configured. Must be called from src's engine.
func (f *Fabric) Send(src, dst, size int, deliver func()) {
	if src < 0 || src >= len(f.tx) || dst < 0 || dst >= len(f.tx) {
		panic(fmt.Sprintf("netmodel: node out of range src=%d dst=%d nodes=%d", src, dst, len(f.tx)))
	}
	if size < 0 {
		panic("netmodel: negative packet size")
	}
	f.sentBy[src]++
	wrapped := func() {
		f.deliveredBy[dst]++
		deliver()
	}
	now := f.engines[src].Now()
	if src == dst {
		f.localBy[src] += uint64(size)
		at := now + f.cfg.LocalLatency
		if f.cfg.LocalBytesPerSec > 0 {
			start := now
			if f.lo[src] > start {
				start = f.lo[src]
			}
			done := start + sim.Time(float64(size)/f.cfg.LocalBytesPerSec*float64(sim.Second))
			f.lo[src] = done
			at = done + f.cfg.LocalLatency
		}
		f.engines[src].At(at, wrapped)
		return
	}
	f.transmit(src, dst, size, wrapped)
}

// transmit books one wire attempt. A lost attempt is retried after
// RetransmitTimeout — link/transport recovery below the guest: the
// guest's send completes once, delivery just arrives late, so the
// packet-conservation invariant holds under loss. Everything up to the
// wire (tx booking, loss, retransmit) happens on src's engine; only the
// arrival crosses to dst.
func (f *Fabric) transmit(src, dst, size int, wrapped func()) {
	now := f.engines[src].Now()
	f.wireBy[src] += uint64(size)
	start := now
	if f.tx[src] > start {
		start = f.tx[src]
	}
	txDone := start + f.serialTime(size, src, now)
	f.tx[src] = txDone
	if f.lossFn != nil && f.lossFn(src, dst, now) {
		f.lostBy[src]++
		rto := f.cfg.RetransmitTimeout
		if rto <= 0 {
			rto = sim.Millisecond
		}
		f.engines[src].At(txDone+rto, func() {
			f.retxBy[src]++
			f.transmit(src, dst, size, wrapped)
		})
		return
	}
	arrive := txDone + f.cfg.WireLatency
	if f.post != nil {
		// Sharded: the receiver-side NIC booking must read dst's state at
		// arrival time on dst's own shard. arrive >= now + WireLatency, so
		// the post always clears the lookahead window by construction.
		f.post(src, dst, arrive, func() {
			f.arriveAt(dst, size, wrapped)
		})
		return
	}
	// Receiver-side serialization: the packet occupies dst's NIC for its
	// own serialization time. An idle receiver sees the pipelined
	// arrival (last byte lands WireLatency after it left the sender),
	// but N senders converging on one NIC drain at line rate, not N×it.
	rxDone := arrive
	if t := f.rx[dst] + f.serialTime(size, dst, now); t > rxDone {
		rxDone = t
	}
	f.rx[dst] = rxDone
	f.engines[src].At(rxDone, wrapped)
}

// arriveAt books the receiver-side NIC occupancy for a packet whose last
// byte reaches dst at the current time on dst's engine, then schedules
// the delivery. Sharded-mode only: runs on dst's shard.
func (f *Fabric) arriveAt(dst, size int, wrapped func()) {
	now := f.engines[dst].Now()
	rxDone := now
	if t := f.rx[dst] + f.serialTime(size, dst, now); t > rxDone {
		rxDone = t
	}
	f.rx[dst] = rxDone
	f.engines[dst].At(rxDone, wrapped)
}

// serialTime returns the serialization time of size bytes on node's
// NIC, honouring the bandwidth-degradation hook.
func (f *Fabric) serialTime(size, node int, now sim.Time) sim.Time {
	bw := f.cfg.BytesPerSec
	if f.bwFn != nil {
		if frac := f.bwFn(node, now); frac > 0 && frac < 1 {
			bw *= frac
		}
	}
	return sim.Time(float64(size) / bw * float64(sim.Second))
}
