// Package report renders experiment results as aligned text tables and
// CSV, the formats cmd/experiments prints and EXPERIMENTS.md embeds.
package report

import (
	"fmt"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	// Notes are free-form lines printed under the table.
	Notes []string
}

// New creates a table.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row; it panics when the cell count mismatches the
// headers (catching harness bugs at the source).
func (t *Table) Add(cells ...string) {
	if len(t.Headers) > 0 && len(cells) != len(t.Headers) {
		panic(fmt.Sprintf("report: row has %d cells, want %d", len(cells), len(t.Headers)))
	}
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a free-form note line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the aligned table.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	if len(t.Headers) > 0 {
		line(t.Headers)
		total := 0
		for _, w := range widths {
			total += w + 2
		}
		b.WriteString(strings.Repeat("-", total-2))
		b.WriteByte('\n')
	}
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		b.WriteString(n)
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the table as comma-separated values (quotes around cells
// containing commas or quotes).
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(c string) string {
		if strings.ContainsAny(c, ",\"\n") {
			return `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
		}
		return c
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
	}
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored Markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	if len(t.Headers) > 0 {
		b.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
		b.WriteString("|" + strings.Repeat("---|", len(t.Headers)) + "\n")
	}
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		b.WriteString("\n" + n + "\n")
	}
	return b.String()
}

// F formats a float with 3 significant decimals.
func F(v float64) string { return fmt.Sprintf("%.3f", v) }

// F2 formats a float with 2 decimals.
func F2(v float64) string { return fmt.Sprintf("%.2f", v) }

// Ms formats seconds as milliseconds with 3 decimals.
func Ms(seconds float64) string { return fmt.Sprintf("%.3fms", seconds*1e3) }

// I formats an integer.
func I[T ~int | ~int64 | ~uint64](v T) string { return fmt.Sprintf("%d", v) }

// sparkRunes are the eight block heights of a terminal sparkline.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Spark renders values as a unicode sparkline scaled to their range —
// a one-line shape summary for sweep tables. Empty input yields "".
func Spark(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	out := make([]rune, len(values))
	for i, v := range values {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		out[i] = sparkRunes[idx]
	}
	return string(out)
}
