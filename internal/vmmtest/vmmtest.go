// Package vmmtest provides small deterministic processes and world
// builders shared by the scheduler test suites.
package vmmtest

import (
	"atcsched/internal/netmodel"
	"atcsched/internal/sim"
	"atcsched/internal/vmm"
)

// SeqProc yields a fixed action sequence, then Done.
type SeqProc struct {
	Actions []vmm.Action
	i       int
}

// Next implements vmm.Process.
func (p *SeqProc) Next() vmm.Action {
	if p.i >= len(p.Actions) {
		return vmm.Done()
	}
	a := p.Actions[p.i]
	p.i++
	return a
}

// Seq installs a one-shot action sequence on v.
func Seq(v *vmm.VCPU, actions ...vmm.Action) {
	v.SetProcess(&SeqProc{Actions: actions}, nil)
}

// Loop installs an action sequence that restarts forever on v.
func Loop(v *vmm.VCPU, actions ...vmm.Action) {
	restart := func(*vmm.VCPU) vmm.Process { return &SeqProc{Actions: actions} }
	v.SetProcess(&SeqProc{Actions: actions}, restart)
}

// LoopN installs an action sequence that restarts n times total, calling
// onRound after each completion.
func LoopN(v *vmm.VCPU, n int, onRound func(round int, now sim.Time), eng *sim.Engine, actions ...vmm.Action) {
	round := 0
	v.SetProcess(&SeqProc{Actions: actions}, func(*vmm.VCPU) vmm.Process {
		round++
		if onRound != nil {
			onRound(round, eng.Now())
		}
		if round >= n {
			return nil
		}
		return &SeqProc{Actions: actions}
	})
}

// World builds a world of nodes×pcpus with the given scheduler factory
// and one dom0 VCPU per node.
func World(nodes, pcpus int, factory vmm.SchedulerFactory) *vmm.World {
	cfg := vmm.DefaultNodeConfig()
	cfg.PCPUs = pcpus
	cfg.Dom0VCPUs = 1
	return vmm.MustNewWorld(nodes, cfg, netmodel.DefaultConfig(), factory)
}

// SpinPair wires a sustained lock-holder-preemption generator into a
// node: both VCPUs of a parallel VM hammer one spinlock (compute 150 µs,
// hold it for 100 µs) while a hog VM burns CPU on the same PCPUs. With a
// 40% critical-section duty cycle, slice-end preemptions regularly land
// mid-critical-section, so the sibling spins for whole slices of the
// other VMs — the paper's Figure 3 amplification, at a realistic locking
// rate. It returns the parallel VM and the contended lock.
func SpinPair(node *vmm.Node, slice sim.Time) (*vmm.VM, *vmm.Spinlock) {
	vmA := node.NewVM("spin-a", vmm.ClassParallel, 2, 0, 1)
	vmB := node.NewVM("spin-hog", vmm.ClassNonParallel, 1, 0, 1)
	l := vmA.NewLock()
	for _, v := range vmA.VCPUs() {
		Loop(v,
			vmm.Compute(150*sim.Microsecond),
			vmm.Acquire(l),
			vmm.Compute(100*sim.Microsecond),
			vmm.Release(l),
		)
	}
	Loop(vmB.VCPU(0), vmm.Compute(10*slice))
	return vmA, l
}
