// Package telemetry is the simulator's sim-time observability plane: a
// metric registry (counters, gauges, time series, sim-clock histograms)
// plus span tracking for spin episodes, BSP rounds, and controller
// decision cycles, with exporters for Chrome/Perfetto trace-event JSON,
// JSONL time series, and Prometheus-style text exposition.
//
// The plane is strictly off the determinism path: every publish site in
// the simulator is guarded by a nil check, sampling reads lifetime
// counters without consuming the scheduler-facing period accumulators,
// and a sharded world gives every node its own Registry (mirroring the
// per-node tracer rings) so shards never contend on shared state.
// Enabling telemetry must never change a run's fingerprint — the
// proptest battery enforces byte-identical results telemetry-on vs
// telemetry-off at every shard count.
//
// Registries serialize their own access with a mutex so a live HTTP
// scrape (cmd/atcd) can snapshot mid-run; within the simulator each
// registry is only ever written from one engine goroutine, so the lock
// is uncontended on the hot path.
package telemetry

import (
	"fmt"
	"sort"
	"sync"

	"atcsched/internal/sim"
)

// Label scopes a metric to a node and/or a VM. Node -1 means "not
// node-scoped" (global/daemon metrics).
type Label struct {
	Node int    `json:"node"`
	VM   string `json:"vm,omitempty"`
}

// GlobalLabel is the label of node-agnostic metrics.
func GlobalLabel() Label { return Label{Node: -1} }

// key identifies one metric instance inside a registry.
type key struct {
	name string
	lab  Label
}

// Span is one completed interval on the sim clock: a spin episode, a
// BSP round, a controller decision cycle, or a fault window.
type Span struct {
	// Name classifies the span ("spin", "round", "decision", "fault:...").
	Name string `json:"name"`
	// Track groups spans onto one timeline row (a VM name, "daemon", ...).
	Track string   `json:"track"`
	Node  int      `json:"node"`
	Start sim.Time `json:"start"`
	End   sim.Time `json:"end"`
	// Value carries span-specific payload (the spin latency, the slice in
	// force, the round index).
	Value sim.Time `json:"value,omitempty"`
}

// Point is one time-series sample.
type Point struct {
	T sim.Time `json:"t"`
	V float64  `json:"v"`
}

// Counter is a monotonically advancing count in a Snapshot.
type Counter struct {
	Name string `json:"name"`
	Label
	Value uint64 `json:"value"`
}

// Gauge is a point-in-time value in a Snapshot.
type Gauge struct {
	Name string `json:"name"`
	Label
	Value float64 `json:"value"`
}

// Series is one metric instance's retained samples in a Snapshot.
type Series struct {
	Name string `json:"name"`
	Label
	Points []Point `json:"points"`
}

// Histogram is a cumulative sim-duration histogram in a Snapshot.
// Counts[i] counts observations <= Bounds[i]; the implicit final bucket
// (+Inf) is Count minus the last cumulative bound count.
type Histogram struct {
	Name string `json:"name"`
	Label
	Bounds []sim.Time `json:"bounds"`
	Counts []uint64   `json:"counts"` // cumulative, len == len(Bounds)
	Count  uint64     `json:"count"`
	Sum    sim.Time   `json:"sum"`
}

// Quantile estimates the q-quantile (clamped to [0,1]) from the
// cumulative bucket counts, interpolating linearly within the winning
// bucket — the Prometheus histogram_quantile estimator. Observations
// beyond the last bound clamp to it; an empty histogram reports 0.
func (h *Histogram) Quantile(q float64) sim.Time {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.Count)
	var prevCum uint64
	var lo sim.Time
	for i, cum := range h.Counts {
		if float64(cum) >= target {
			in := cum - prevCum
			hi := h.Bounds[i]
			if in == 0 {
				return hi
			}
			frac := (target - float64(prevCum)) / float64(in)
			return lo + sim.Time(frac*float64(hi-lo))
		}
		prevCum = cum
		lo = h.Bounds[i]
	}
	return h.Bounds[len(h.Bounds)-1]
}

// DefaultBounds is the sim-latency bucket ladder: wide enough for
// microsecond spin episodes through multi-second stalls.
func DefaultBounds() []sim.Time {
	return []sim.Time{
		1 * sim.Microsecond, 10 * sim.Microsecond, 100 * sim.Microsecond,
		300 * sim.Microsecond, 1 * sim.Millisecond, 3 * sim.Millisecond,
		10 * sim.Millisecond, 30 * sim.Millisecond, 100 * sim.Millisecond,
		300 * sim.Millisecond, 1 * sim.Second, 10 * sim.Second,
	}
}

// Options bound a Registry's memory.
type Options struct {
	// SeriesCap bounds the points retained per series (<= 0: default).
	// Past the cap new points are dropped and counted.
	SeriesCap int
	// SpanCap bounds the spans retained per registry (<= 0: default).
	SpanCap int
	// HistBounds overrides the histogram bucket ladder (nil: default).
	HistBounds []sim.Time
}

const (
	defaultSeriesCap = 1 << 16
	defaultSpanCap   = 1 << 16
)

func (o Options) withDefaults() Options {
	if o.SeriesCap <= 0 {
		o.SeriesCap = defaultSeriesCap
	}
	if o.SpanCap <= 0 {
		o.SpanCap = defaultSpanCap
	}
	if o.HistBounds == nil {
		o.HistBounds = DefaultBounds()
	}
	return o
}

// series is the mutable series state.
type series struct {
	points  []Point
	dropped uint64
}

// hist is the mutable histogram state (per-bucket counts, not yet
// cumulative; Snapshot renders the cumulative view).
type hist struct {
	counts []uint64 // len == len(bounds)+1; last is +Inf
	count  uint64
	sum    sim.Time
}

// Registry holds one publisher domain's metrics: one per node inside a
// World (so shards never share state) plus one global instance for the
// control daemon. All methods are safe for concurrent use; inside the
// simulator each registry is written from a single engine goroutine.
type Registry struct {
	mu           sync.Mutex
	opts         Options
	counters     map[key]uint64
	gauges       map[key]float64
	series       map[key]*series
	hists        map[key]*hist
	spans        []Span
	spansDropped uint64
}

// NewRegistry builds a registry (zero Options select the defaults).
func NewRegistry(opts Options) *Registry {
	return &Registry{
		opts:     opts.withDefaults(),
		counters: make(map[key]uint64),
		gauges:   make(map[key]float64),
		series:   make(map[key]*series),
		hists:    make(map[key]*hist),
	}
}

// Add advances a counter by delta.
func (r *Registry) Add(name string, lab Label, delta uint64) {
	r.mu.Lock()
	r.counters[key{name, lab}] += delta
	r.mu.Unlock()
}

// SetCount sets a counter to an absolute value (finalization totals).
func (r *Registry) SetCount(name string, lab Label, v uint64) {
	r.mu.Lock()
	r.counters[key{name, lab}] = v
	r.mu.Unlock()
}

// SetGauge sets a gauge.
func (r *Registry) SetGauge(name string, lab Label, v float64) {
	r.mu.Lock()
	r.gauges[key{name, lab}] = v
	r.mu.Unlock()
}

// Point appends one time-series sample. Past the series cap the sample
// is dropped (and counted) rather than evicting history — a bounded
// prefix keeps exporter output deterministic.
func (r *Registry) Point(name string, lab Label, t sim.Time, v float64) {
	r.mu.Lock()
	k := key{name, lab}
	s := r.series[k]
	if s == nil {
		s = &series{}
		r.series[k] = s
	}
	if len(s.points) >= r.opts.SeriesCap {
		s.dropped++
	} else {
		s.points = append(s.points, Point{T: t, V: v})
	}
	r.mu.Unlock()
}

// Observe records one duration into a sim-clock histogram.
func (r *Registry) Observe(name string, lab Label, d sim.Time) {
	r.mu.Lock()
	k := key{name, lab}
	h := r.hists[k]
	if h == nil {
		h = &hist{counts: make([]uint64, len(r.opts.HistBounds)+1)}
		r.hists[k] = h
	}
	i := sort.Search(len(r.opts.HistBounds), func(i int) bool { return d <= r.opts.HistBounds[i] })
	h.counts[i]++
	h.count++
	h.sum += d
	r.mu.Unlock()
}

// AddSpan records one completed span. Past the cap spans are dropped
// and counted.
func (r *Registry) AddSpan(s Span) {
	r.mu.Lock()
	if len(r.spans) >= r.opts.SpanCap {
		r.spansDropped++
	} else {
		r.spans = append(r.spans, s)
	}
	r.mu.Unlock()
}

// Snapshot captures everything the plane knows, deterministically
// ordered: counters, gauges, series, and histograms sorted by
// (name, node, vm); spans sorted by (start, node) with per-registry
// insertion order (engine order) breaking ties.
type Snapshot struct {
	Counters      []Counter   `json:"counters"`
	Gauges        []Gauge     `json:"gauges"`
	Series        []Series    `json:"series"`
	Histograms    []Histogram `json:"histograms"`
	Spans         []Span      `json:"spans"`
	DroppedPoints uint64      `json:"droppedPoints,omitempty"`
	DroppedSpans  uint64      `json:"droppedSpans,omitempty"`
}

// snapshotInto appends this registry's state to snap (caller merges and
// sorts).
func (r *Registry) snapshotInto(snap *Snapshot) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, v := range r.counters {
		snap.Counters = append(snap.Counters, Counter{Name: k.name, Label: k.lab, Value: v})
	}
	for k, v := range r.gauges {
		snap.Gauges = append(snap.Gauges, Gauge{Name: k.name, Label: k.lab, Value: v})
	}
	for k, s := range r.series {
		snap.Series = append(snap.Series, Series{
			Name: k.name, Label: k.lab,
			Points: append([]Point(nil), s.points...),
		})
		snap.DroppedPoints += s.dropped
	}
	for k, h := range r.hists {
		out := Histogram{
			Name: k.name, Label: k.lab,
			Bounds: append([]sim.Time(nil), r.opts.HistBounds...),
			Counts: make([]uint64, len(r.opts.HistBounds)),
			Count:  h.count,
			Sum:    h.sum,
		}
		var cum uint64
		for i := range out.Counts {
			cum += h.counts[i]
			out.Counts[i] = cum
		}
		snap.Histograms = append(snap.Histograms, out)
	}
	snap.Spans = append(snap.Spans, r.spans...)
	snap.DroppedSpans += r.spansDropped
}

// Snapshot renders this single registry deterministically.
func (r *Registry) Snapshot() Snapshot {
	var snap Snapshot
	r.snapshotInto(&snap)
	sortSnapshot(&snap)
	return snap
}

// Plane is a whole world's telemetry: one registry per node plus one
// global registry for node-agnostic publishers (the control daemon,
// shard sync stats, the network fabric). Attach to a world with
// vmm.World.SetTelemetry before Start.
type Plane struct {
	opts   Options
	mu     sync.Mutex
	nodes  []*Registry
	global *Registry
}

// New builds a plane (zero Options select the defaults).
func New(opts Options) *Plane {
	o := opts.withDefaults()
	return &Plane{opts: o, global: NewRegistry(o)}
}

// Node returns node i's registry, creating it (and any lower-indexed
// ones) on first use.
func (p *Plane) Node(i int) *Registry {
	if i < 0 {
		panic(fmt.Sprintf("telemetry: negative node index %d", i))
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.nodes) <= i {
		p.nodes = append(p.nodes, NewRegistry(p.opts))
	}
	return p.nodes[i]
}

// Global returns the node-agnostic registry.
func (p *Plane) Global() *Registry { return p.global }

// Snapshot merges every registry into one deterministically ordered
// view. Safe to call mid-run (each registry is locked briefly).
func (p *Plane) Snapshot() Snapshot {
	p.mu.Lock()
	regs := append([]*Registry(nil), p.nodes...)
	p.mu.Unlock()
	var snap Snapshot
	for _, r := range regs {
		r.snapshotInto(&snap)
	}
	p.global.snapshotInto(&snap)
	sortSnapshot(&snap)
	return snap
}

// labelLess orders labels by (node, vm).
func labelLess(a, b Label) bool {
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	return a.VM < b.VM
}

// sortSnapshot puts every section in its canonical order.
func sortSnapshot(s *Snapshot) {
	sort.Slice(s.Counters, func(i, j int) bool {
		if s.Counters[i].Name != s.Counters[j].Name {
			return s.Counters[i].Name < s.Counters[j].Name
		}
		return labelLess(s.Counters[i].Label, s.Counters[j].Label)
	})
	sort.Slice(s.Gauges, func(i, j int) bool {
		if s.Gauges[i].Name != s.Gauges[j].Name {
			return s.Gauges[i].Name < s.Gauges[j].Name
		}
		return labelLess(s.Gauges[i].Label, s.Gauges[j].Label)
	})
	sort.Slice(s.Series, func(i, j int) bool {
		if s.Series[i].Name != s.Series[j].Name {
			return s.Series[i].Name < s.Series[j].Name
		}
		return labelLess(s.Series[i].Label, s.Series[j].Label)
	})
	sort.Slice(s.Histograms, func(i, j int) bool {
		if s.Histograms[i].Name != s.Histograms[j].Name {
			return s.Histograms[i].Name < s.Histograms[j].Name
		}
		return labelLess(s.Histograms[i].Label, s.Histograms[j].Label)
	})
	sort.SliceStable(s.Spans, func(i, j int) bool {
		if s.Spans[i].Start != s.Spans[j].Start {
			return s.Spans[i].Start < s.Spans[j].Start
		}
		return s.Spans[i].Node < s.Spans[j].Node
	})
}
