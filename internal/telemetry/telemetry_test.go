package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"atcsched/internal/sim"
)

// TestHistogramEdgeCases pins the small-n behavior: no observations, a
// single observation, and observations below the first and above the
// last bound.
func TestHistogramEdgeCases(t *testing.T) {
	bounds := []sim.Time{sim.Millisecond, 10 * sim.Millisecond}
	lab := Label{Node: 0}

	t.Run("zero-observations", func(t *testing.T) {
		r := NewRegistry(Options{HistBounds: bounds})
		if got := len(r.Snapshot().Histograms); got != 0 {
			t.Fatalf("unobserved histogram materialized: %d entries", got)
		}
	})

	t.Run("single-observation", func(t *testing.T) {
		r := NewRegistry(Options{HistBounds: bounds})
		r.Observe("lat", lab, 5*sim.Millisecond)
		h := r.Snapshot().Histograms[0]
		if h.Count != 1 || h.Sum != 5*sim.Millisecond {
			t.Fatalf("count=%d sum=%v, want 1, 5ms", h.Count, h.Sum)
		}
		if want := []uint64{0, 1}; h.Counts[0] != want[0] || h.Counts[1] != want[1] {
			t.Fatalf("cumulative counts %v, want %v", h.Counts, want)
		}
	})

	t.Run("boundary-inclusive", func(t *testing.T) {
		// d <= bound lands in the bound's bucket (Prometheus le semantics).
		r := NewRegistry(Options{HistBounds: bounds})
		r.Observe("lat", lab, sim.Millisecond)
		h := r.Snapshot().Histograms[0]
		if h.Counts[0] != 1 {
			t.Fatalf("exact-boundary observation missed first bucket: %v", h.Counts)
		}
	})

	t.Run("below-first-and-above-last", func(t *testing.T) {
		r := NewRegistry(Options{HistBounds: bounds})
		r.Observe("lat", lab, 0)            // below the first bound
		r.Observe("lat", lab, 5*sim.Second) // above the last bound (+Inf bucket)
		h := r.Snapshot().Histograms[0]
		if h.Count != 2 {
			t.Fatalf("count=%d, want 2", h.Count)
		}
		if h.Counts[0] != 1 || h.Counts[1] != 1 {
			t.Fatalf("cumulative counts %v, want [1 1]", h.Counts)
		}
		// +Inf observations are Count - last cumulative bound count.
		if inf := h.Count - h.Counts[len(h.Counts)-1]; inf != 1 {
			t.Fatalf("+Inf bucket holds %d, want 1", inf)
		}
	})
}

// TestSeriesCap proves the series keeps a deterministic prefix and
// counts what it dropped.
func TestSeriesCap(t *testing.T) {
	r := NewRegistry(Options{SeriesCap: 3})
	lab := Label{Node: 1, VM: "vm0"}
	for i := 0; i < 5; i++ {
		r.Point("m", lab, sim.Time(i), float64(i))
	}
	snap := r.Snapshot()
	s := snap.Series[0]
	if len(s.Points) != 3 {
		t.Fatalf("retained %d points, want 3", len(s.Points))
	}
	for i, p := range s.Points {
		if p.T != sim.Time(i) || p.V != float64(i) {
			t.Fatalf("point %d is %+v, want t=%d v=%d (prefix, not eviction)", i, p, i, i)
		}
	}
	if snap.DroppedPoints != 2 {
		t.Fatalf("droppedPoints=%d, want 2", snap.DroppedPoints)
	}
}

// TestSpanCap mirrors the series-cap contract for spans.
func TestSpanCap(t *testing.T) {
	r := NewRegistry(Options{SpanCap: 2})
	for i := 0; i < 4; i++ {
		r.AddSpan(Span{Name: "spin", Track: "vm0/0", Start: sim.Time(i), End: sim.Time(i + 1)})
	}
	snap := r.Snapshot()
	if len(snap.Spans) != 2 || snap.DroppedSpans != 2 {
		t.Fatalf("spans=%d dropped=%d, want 2, 2", len(snap.Spans), snap.DroppedSpans)
	}
	if snap.Spans[0].Start != 0 || snap.Spans[1].Start != 1 {
		t.Fatalf("retained spans are not the deterministic prefix: %+v", snap.Spans)
	}
}

// TestSnapshotOrdering proves the plane's merged snapshot sorts every
// section canonically regardless of publish order.
func TestSnapshotOrdering(t *testing.T) {
	p := New(Options{})
	// Publish deliberately out of order, across registries.
	p.Node(1).Add("b_count", Label{Node: 1}, 2)
	p.Node(0).Add("b_count", Label{Node: 0}, 1)
	p.Global().Add("a_count", GlobalLabel(), 3)
	p.Node(1).Point("ser", Label{Node: 1, VM: "z"}, 5, 1)
	p.Node(1).Point("ser", Label{Node: 1, VM: "a"}, 5, 2)
	p.Node(1).AddSpan(Span{Name: "s", Track: "t", Node: 1, Start: 20, End: 30})
	p.Node(0).AddSpan(Span{Name: "s", Track: "t", Node: 0, Start: 10, End: 15})
	snap := p.Snapshot()

	wantCounters := []struct {
		name string
		node int
	}{{"a_count", -1}, {"b_count", 0}, {"b_count", 1}}
	for i, w := range wantCounters {
		c := snap.Counters[i]
		if c.Name != w.name || c.Node != w.node {
			t.Fatalf("counter %d is (%s,%d), want (%s,%d)", i, c.Name, c.Node, w.name, w.node)
		}
	}
	if snap.Series[0].VM != "a" || snap.Series[1].VM != "z" {
		t.Fatalf("series not sorted by vm: %q then %q", snap.Series[0].VM, snap.Series[1].VM)
	}
	if snap.Spans[0].Start != 10 || snap.Spans[1].Start != 20 {
		t.Fatalf("spans not sorted by start: %+v", snap.Spans)
	}
}

// TestNodeRegistryGrowth proves Node(i) lazily grows and is stable.
func TestNodeRegistryGrowth(t *testing.T) {
	p := New(Options{})
	r3 := p.Node(3)
	if p.Node(3) != r3 {
		t.Fatal("Node(3) not stable across calls")
	}
	if p.Node(0) == r3 {
		t.Fatal("distinct nodes share a registry")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative node index did not panic")
		}
	}()
	p.Node(-1)
}

// TestPrometheusExposition spot-checks the text exposition shapes.
func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry(Options{HistBounds: []sim.Time{sim.Millisecond}})
	r.Add("sched_dispatches", Label{Node: 0}, 7)
	r.SetGauge("vm_run_time_ns", Label{Node: 0, VM: "vm1"}, 42)
	r.Point("vm_spin_latency_ns", Label{Node: 0, VM: "vm1"}, 10, 1.5)
	r.Point("vm_spin_latency_ns", Label{Node: 0, VM: "vm1"}, 20, 2.5)
	r.Observe("spin_latency", Label{Node: 0, VM: "vm1"}, 500*sim.Microsecond)

	var sb strings.Builder
	bw := bufio.NewWriter(&sb)
	if err := WritePrometheus(bw, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE atc_sched_dispatches_total counter",
		`atc_sched_dispatches_total{node="0"} 7`,
		`atc_vm_run_time_ns{node="0",vm="vm1"} 42`,
		`atc_vm_spin_latency_ns_last{node="0",vm="vm1"} 2.5`, // last sample wins
		`atc_spin_latency_bucket{node="0",vm="vm1",le="0.001"} 1`,
		`atc_spin_latency_bucket{node="0",vm="vm1",le="+Inf"} 1`,
		`atc_spin_latency_sum{node="0",vm="vm1"} 0.0005`,
		`atc_spin_latency_count{node="0",vm="vm1"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}

// TestHandler drives the HTTP surface through httptest.
func TestHandler(t *testing.T) {
	r := NewRegistry(Options{})
	r.Add("daemon_decision_apply", GlobalLabel(), 3)
	h := Handler(r.Snapshot, func() map[string]any { return map[string]any{"steps": 12} })
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	if !strings.Contains(string(body), "atc_daemon_decision_apply_total 3") {
		t.Fatalf("/metrics missing decision counter:\n%s", body)
	}

	resp, err = srv.Client().Get(srv.URL + "/debug/atc")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var dbg struct {
		Summary  map[string]any `json:"summary"`
		Snapshot Snapshot       `json:"snapshot"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dbg); err != nil {
		t.Fatalf("/debug/atc is not JSON: %v", err)
	}
	if dbg.Summary["steps"] != float64(12) {
		t.Fatalf("summary fn not merged: %v", dbg.Summary)
	}
	if len(dbg.Snapshot.Counters) != 1 {
		t.Fatalf("snapshot lost counters: %+v", dbg.Snapshot)
	}
}
