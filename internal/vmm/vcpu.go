package vmm

import (
	"fmt"

	"atcsched/internal/sim"
)

// VCPUState is a VCPU's scheduling state.
type VCPUState int

// VCPU states.
const (
	// StateIdle means the VCPU has no process (never runs until one is
	// installed).
	StateIdle VCPUState = iota
	// StateRunnable means the VCPU waits in a runqueue.
	StateRunnable
	// StateRunning means the VCPU occupies a PCPU.
	StateRunning
	// StateBlocked means the VCPU waits for an event (message, disk,
	// timer, backend notification).
	StateBlocked
)

// String returns the state name.
func (s VCPUState) String() string {
	switch s {
	case StateIdle:
		return "idle"
	case StateRunnable:
		return "runnable"
	case StateRunning:
		return "running"
	case StateBlocked:
		return "blocked"
	default:
		return fmt.Sprintf("VCPUState(%d)", int(s))
	}
}

// VCPU is a virtual CPU of a VM. Its workload is a Process; the dispatch
// machinery in PCPU executes the process's actions.
type VCPU struct {
	id  int
	vm  *VM
	idx int // index within the VM; doubles as the process rank
	// local is the VCPU's dense index on its node (Node.vcpus); the hot
	// dispatch paths use it to index flat per-node arrays instead of
	// chasing pointers or hashing.
	local int

	proc Process
	// OnDone is invoked when the process yields ActDone. Returning a
	// non-nil Process restarts the VCPU immediately (batch reruns, the
	// paper's repeated application rounds); returning nil idles the VCPU.
	OnDone func(v *VCPU) Process

	state VCPUState
	pcpu  *PCPU

	// pending is the in-flight action; nil when the next one must be
	// fetched from proc. It always points at pendingBuf, which exists to
	// keep the per-action hot path allocation-free.
	pending    *Action
	pendingBuf Action
	// burnRemaining is the remaining fixed CPU cost of the pending
	// non-compute action; negative means not yet initialized.
	burnRemaining sim.Time
	// runSegStart marks when the current timed segment (compute or burn)
	// began on the PCPU; negative when no timed segment is in flight.
	runSegStart sim.Time
	// segSlow is the execution-time multiplier sampled when the current
	// timed segment started (1 when no slowdown hook is active); wall
	// time spent in the segment is divided by it before being credited
	// as work.
	segSlow float64

	spinningOn *Spinlock
	spinSince  sim.Time

	// cache profile (per-VCPU working set).
	footprint int64
	coldRate  float64

	// affinity, when non-nil, restricts the PCPUs this VCPU may run on
	// (index by node-local PCPU id) — Xen's vcpu-pin.
	affinity []bool

	// accounting
	runStart  sim.Time // dispatch time of the current run
	runTime   sim.Time // accumulated CPU time
	waitStart sim.Time // when the VCPU last became runnable
	waitTime  sim.Time // accumulated runqueue wait
	rounds    uint64   // completed ActDone count

	// SchedData is scheduler-private per-VCPU state (credits, priority).
	SchedData any
}

// VM returns the owning VM.
func (v *VCPU) VM() *VM { return v.vm }

// Index returns the VCPU's index within its VM (also its process rank).
func (v *VCPU) Index() int { return v.idx }

// ID returns the world-unique VCPU id.
func (v *VCPU) ID() int { return v.id }

// State returns the current scheduling state.
func (v *VCPU) State() VCPUState { return v.state }

// PCPU returns the PCPU the VCPU currently occupies (nil unless running).
func (v *VCPU) PCPU() *PCPU { return v.pcpu }

// Spinning reports whether the VCPU is busy-waiting on a guest spinlock.
func (v *VCPU) Spinning() bool { return v.spinningOn != nil }

// RunTime returns the accumulated CPU time consumed, settled at the last
// deschedule. Prefer CPUTime for up-to-the-instant accounting.
func (v *VCPU) RunTime() sim.Time { return v.runTime }

// CPUTime returns the CPU time consumed including the current run in
// progress — the quantity credit-style schedulers bill against.
func (v *VCPU) CPUTime() sim.Time {
	if v.state == StateRunning && v.pcpu != nil {
		return v.runTime + v.pcpu.node.eng.Now() - v.runStart
	}
	return v.runTime
}

// WaitTime returns the accumulated runqueue wait.
func (v *VCPU) WaitTime() sim.Time { return v.waitTime }

// Rounds returns how many times the process completed (ActDone).
func (v *VCPU) Rounds() uint64 { return v.rounds }

// String renders "vmName/vcpuIdx" for diagnostics.
func (v *VCPU) String() string { return fmt.Sprintf("%s/%d", v.vm.name, v.idx) }

// SetProcess installs the workload process and completion hook. It must
// be called before World.Start, or on an idle VCPU followed by
// Node.WakeIdle.
func (v *VCPU) SetProcess(p Process, onDone func(*VCPU) Process) {
	// A completed process is cleared by the dispatcher, so a live proc
	// here means the caller is replacing an unfinished workload.
	if v.state != StateIdle || v.proc != nil {
		panic(fmt.Sprintf("vmm: SetProcess on %s in state %v with live process (install before Start, or on an idle VCPU)", v, v.state))
	}
	v.proc = p
	v.OnDone = onDone
}

// SetCacheProfile sets the per-VCPU working-set size and cold execution
// rate used by the PCPU cache model.
func (v *VCPU) SetCacheProfile(footprint int64, coldRate float64) {
	if footprint < 0 || coldRate <= 0 || coldRate > 1 {
		panic(fmt.Sprintf("vmm: invalid cache profile footprint=%d coldRate=%v", footprint, coldRate))
	}
	v.footprint = footprint
	v.coldRate = coldRate
}

// PinTo restricts the VCPU to the given node-local PCPU indices (Xen's
// vcpu-pin). Passing none clears the restriction. Schedulers consult
// AllowedOn at placement, dispatch and steal time.
func (v *VCPU) PinTo(pcpus ...int) {
	if len(pcpus) == 0 {
		v.affinity = nil
		return
	}
	n := len(v.vm.node.pcpus)
	mask := make([]bool, n)
	for _, p := range pcpus {
		if p < 0 || p >= n {
			panic(fmt.Sprintf("vmm: PinTo pcpu %d out of range [0,%d)", p, n))
		}
		mask[p] = true
	}
	v.affinity = mask
}

// AllowedOn reports whether the VCPU may run on node-local PCPU p.
func (v *VCPU) AllowedOn(p int) bool {
	if v.affinity == nil {
		return true
	}
	return p >= 0 && p < len(v.affinity) && v.affinity[p]
}

// Pinned reports whether an affinity mask is set.
func (v *VCPU) Pinned() bool { return v.affinity != nil }

// resumeFromSpin completes a spin-wait acquisition for a VCPU that is
// currently running: the lock's release path already transferred
// ownership and recorded latency; here we retire the Acquire action and
// let the PCPU continue stepping.
func (v *VCPU) resumeFromSpin() {
	if v.state != StateRunning || v.pcpu == nil {
		panic(fmt.Sprintf("vmm: resumeFromSpin on non-running VCPU %s", v))
	}
	a := v.pending
	if a == nil || a.Kind != ActAcquire {
		panic(fmt.Sprintf("vmm: resumeFromSpin without pending acquire on %s", v))
	}
	v.pending = nil
	v.burnRemaining = -1
	if a.Then != nil {
		a.Then()
	}
	v.pcpu.scheduleStep()
}
