package vmm

import (
	"fmt"
	"io"
	"sort"

	"atcsched/internal/sim"
	"atcsched/internal/telemetry"
)

// TraceKind labels a scheduling trace record.
type TraceKind int

// Trace record kinds.
const (
	// TraceDispatch: a VCPU started running on a PCPU.
	TraceDispatch TraceKind = iota
	// TracePreempt: a VCPU lost its PCPU (slice end or tickle).
	TracePreempt
	// TraceBlock: a VCPU blocked (I/O, message, timer, idle).
	TraceBlock
	// TraceWake: a blocked VCPU became runnable.
	TraceWake
	// TraceSliceChange: a scheduler changed a VM's slice (ATC/DSS).
	TraceSliceChange
	// TraceSwap: the node's scheduling policy was replaced at a period
	// boundary (Node.SwapScheduler).
	TraceSwap
)

// String returns the record kind name.
func (k TraceKind) String() string {
	switch k {
	case TraceDispatch:
		return "dispatch"
	case TracePreempt:
		return "preempt"
	case TraceBlock:
		return "block"
	case TraceWake:
		return "wake"
	case TraceSliceChange:
		return "slice"
	case TraceSwap:
		return "swap"
	default:
		return fmt.Sprintf("TraceKind(%d)", int(k))
	}
}

// TraceRecord is one scheduling event.
type TraceRecord struct {
	At   sim.Time
	Kind TraceKind
	Node int
	// PCPU is the core index (-1 when not applicable).
	PCPU int
	// VM/VCPU identify the subject ("" / -1 when not applicable).
	VM   string
	VCPU int
	// Arg carries kind-specific data: the slice for TraceSliceChange.
	Arg sim.Time
}

// String renders one record as a stable single line.
func (r TraceRecord) String() string {
	switch r.Kind {
	case TraceSliceChange:
		return fmt.Sprintf("%-12v node%d %-8s vm=%s slice=%v", r.At, r.Node, r.Kind, r.VM, r.Arg)
	default:
		return fmt.Sprintf("%-12v node%d %-8s pcpu=%d vcpu=%s/%d", r.At, r.Node, r.Kind, r.PCPU, r.VM, r.VCPU)
	}
}

// Tracer collects scheduling records. Attach one to a World with
// World.SetTracer before Start; a nil tracer (the default) costs one
// branch per event.
type Tracer struct {
	// Keep bounds memory: once Cap records are stored, older records are
	// dropped (ring). Cap <= 0 means unbounded.
	Cap     int
	records []TraceRecord
	head    int
	dropped uint64
}

// NewTracer returns a tracer bounded to cap records (<= 0: unbounded).
func NewTracer(cap int) *Tracer { return &Tracer{Cap: cap} }

func (t *Tracer) add(r TraceRecord) {
	if t.Cap > 0 && len(t.records) == t.Cap {
		t.records[t.head] = r
		t.head = (t.head + 1) % t.Cap
		t.dropped++
		return
	}
	t.records = append(t.records, r)
}

// Records returns the retained records in time order.
func (t *Tracer) Records() []TraceRecord {
	out := make([]TraceRecord, 0, len(t.records))
	out = append(out, t.records[t.head:]...)
	out = append(out, t.records[:t.head]...)
	return out
}

// Dropped returns how many records the ring evicted.
func (t *Tracer) Dropped() uint64 { return t.dropped }

// Len returns the number of retained records.
func (t *Tracer) Len() int { return len(t.records) }

// WriteTo dumps the retained records as text lines.
func (t *Tracer) WriteTo(w io.Writer) (int64, error) {
	var n int64
	for _, r := range t.Records() {
		m, err := fmt.Fprintln(w, r.String())
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// WriteCSV dumps the retained records as CSV with a header.
func (t *Tracer) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "at_ns,kind,node,pcpu,vm,vcpu,arg_ns"); err != nil {
		return err
	}
	for _, r := range t.Records() {
		if _, err := fmt.Fprintf(w, "%d,%s,%d,%d,%s,%d,%d\n",
			int64(r.At), r.Kind, r.Node, r.PCPU, r.VM, r.VCPU, int64(r.Arg)); err != nil {
			return err
		}
	}
	return nil
}

// Summary aggregates per-VM dispatch counts and CPU-visible state
// transitions — a quick textual profile of a run.
func (t *Tracer) Summary() string {
	type agg struct {
		dispatch, preempt, block, wake int
	}
	per := map[string]*agg{}
	for _, r := range t.Records() {
		if r.VM == "" {
			continue
		}
		a := per[r.VM]
		if a == nil {
			a = &agg{}
			per[r.VM] = a
		}
		switch r.Kind {
		case TraceDispatch:
			a.dispatch++
		case TracePreempt:
			a.preempt++
		case TraceBlock:
			a.block++
		case TraceWake:
			a.wake++
		}
	}
	names := make([]string, 0, len(per))
	for n := range per {
		names = append(names, n)
	}
	sort.Strings(names)
	out := fmt.Sprintf("%-16s %10s %10s %10s %10s\n", "vm", "dispatches", "preempts", "blocks", "wakes")
	for _, n := range names {
		a := per[n]
		out += fmt.Sprintf("%-16s %10d %10d %10d %10d\n", n, a.dispatch, a.preempt, a.block, a.wake)
	}
	if t.dropped > 0 {
		out += fmt.Sprintf("(%d older records dropped by the ring)\n", t.dropped)
	}
	return out
}

// trace emits a record if a tracer is attached to the world. Records go
// to the node's own ring (n.trc) so sharded nodes never contend on a
// shared tracer; in serial mode every node's ring is the world tracer.
func (n *Node) trace(kind TraceKind, pcpu int, v *VCPU, arg sim.Time) {
	t := n.trc
	if t == nil {
		return
	}
	r := TraceRecord{At: n.eng.Now(), Kind: kind, Node: n.id, PCPU: pcpu, VCPU: -1}
	if v != nil {
		r.VM = v.vm.name
		r.VCPU = v.idx
	}
	r.Arg = arg
	t.add(r)
}

// traceVM emits a VM-level record (slice changes).
func (n *Node) traceVM(kind TraceKind, vm *VM, arg sim.Time) {
	t := n.trc
	if t == nil {
		return
	}
	t.add(TraceRecord{At: n.eng.Now(), Kind: kind, Node: n.id, PCPU: -1, VM: vm.name, VCPU: -1, Arg: arg})
}

// TraceSlice lets schedulers record a slice decision for vm (no-op
// without an attached tracer or telemetry plane).
func (n *Node) TraceSlice(vm *VM, slice sim.Time) {
	n.traceVM(TraceSliceChange, vm, slice)
	if n.tel != nil {
		n.tel.reg.Point("vm_slice_change_ns",
			telemetry.Label{Node: n.id, VM: vm.name}, n.eng.Now(), float64(slice))
	}
}
