package dfrs

import (
	"atcsched/internal/sched/registry"
	"atcsched/internal/vmm"
)

func init() {
	registry.Register(registry.Descriptor{
		Kind:      "DFRS",
		Extension: true,
		Description: "dynamic fractional resource scheduling: per-VM CPU fractions redistributed " +
			"toward yield-maximizing shares every few periods, work-conserving",
		Defaults: func() any { o := DefaultOptions(); return &o },
		Build: func(opts any, base registry.Base) (vmm.SchedulerFactory, error) {
			o := *opts.(*Options)
			if err := o.Credit.ApplyOverrides(base.FixedSlice, base.DisableBoost, base.DisableSteal); err != nil {
				return nil, err
			}
			// A short fixed slice caps the fractional quantum too; pull
			// the floor under it rather than rejecting the override.
			if o.MinQuantum > o.Credit.TimeSlice {
				o.MinQuantum = o.Credit.TimeSlice
			}
			if err := o.Validate(); err != nil {
				return nil, err
			}
			return Factory(o), nil
		},
	})
}
