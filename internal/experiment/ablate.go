package experiment

import (
	"fmt"

	"atcsched/internal/cluster"
	"atcsched/internal/metrics"
	"atcsched/internal/report"
	"atcsched/internal/runner"
	"atcsched/internal/sched/atc"
	"atcsched/internal/sim"
	"atcsched/internal/workload"
)

// ablateExec runs the type-A scenario (four VCs of one VM per node)
// under a customized ATC configuration and returns the mean execution
// time for `kernel`.
func ablateExec(sc Scale, kernel string, nodes int, seed uint64, mutate func(*atc.Options)) (float64, error) {
	opts := atc.DefaultOptions()
	if mutate != nil {
		mutate(&opts)
	}
	cfg := cluster.DefaultConfig(nodes, cluster.ATC)
	cfg.Sched.Options = opts
	cfg.Seed = seed
	s, err := cluster.New(cfg)
	if err != nil {
		return 0, err
	}
	prof := workload.NPB(kernel, workload.ClassB)
	prof.Iterations = iterCount(prof.Iterations, sc.IterScale)
	var runs []*workload.ParallelRun
	for vc := 0; vc < 4; vc++ {
		vms := s.VirtualCluster(fmt.Sprintf("vc%d", vc), nodes, sc.VCPUsPerVM, nil)
		runs = append(runs, s.RunParallel(prof, vms, sc.Rounds, false))
	}
	if !s.Go(sc.Horizon) {
		return 0, fmt.Errorf("ablate %s: horizon exceeded", kernel)
	}
	var times []float64
	for _, r := range runs {
		times = append(times, r.MeanTime())
	}
	return metrics.Mean(times), nil
}

func init() {
	register(Experiment{
		ID: "ablate",
		Title: "Extension — ablation of ATC's design choices (minimum threshold, " +
			"Algorithm 2's node minimum, trend window, α, boost)",
		Run: func(sc Scale, seed uint64) ([]*report.Table, error) {
			nodes := sc.NodeSteps[0]
			kernel := "lu"
			variants := []struct {
				name string
				mut  func(*atc.Options)
			}{
				{"no minimum-slice clamp (10µs floor)", func(o *atc.Options) {
					o.Control.MinThreshold = 10 * sim.Microsecond
					o.Control.Beta = 30 * sim.Microsecond
				}},
				{"no node minimum (per-VM slices, Alg. 2 ablated)", func(o *atc.Options) {
					o.DisableNodeMinimum = true
				}},
				{"trend window 8 (vs paper's 3)", func(o *atc.Options) {
					o.Control.Window = 8
				}},
				{"α = 1.5ms (vs paper's 6ms)", func(o *atc.Options) {
					o.Control.Alpha = 1500 * sim.Microsecond
				}},
				{"credit boost disabled", func(o *atc.Options) {
					o.Credit.Boost = false
				}},
				{"sched-wait signal (non-intrusive monitor)", func(o *atc.Options) {
					o.Monitor = atc.SignalSchedWait
				}},
			}
			// Cell 0 is the full design, cells 1.. the ablated variants;
			// each is an independent world, fanned across the pool.
			execs, err := runner.Map(1+len(variants), func(i int) (float64, error) {
				if i == 0 {
					return ablateExec(sc, kernel, nodes, seed, nil)
				}
				return ablateExec(sc, kernel, nodes, seed, variants[i-1].mut)
			})
			if err != nil {
				return nil, err
			}
			base := execs[0]
			t := report.New(
				fmt.Sprintf("%s.B mean execution time under ATC variants (vs the full design; >1 = the removed piece was helping)", kernel),
				"Variant", "Exec(s)", "vs full ATC")
			t.Add("full ATC (paper design)", report.F(base), "1.000")
			for i, v := range variants {
				t.Add(v.name, report.F(execs[i+1]), report.F(execs[i+1]/base))
			}
			t.AddNote("The paper motivates the clamp (§III-B) and the node minimum (§III-C, fairness + DSS comparison); the non-intrusive signal is its stated future work.")
			return []*report.Table{t}, nil
		},
	})
}
