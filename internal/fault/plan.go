package fault

import (
	"fmt"

	"atcsched/internal/rng"
	"atcsched/internal/sim"
	"atcsched/internal/telemetry"
	"atcsched/internal/vmm"
)

// faultStream is the rng stream id reserved for the fault plane, so its
// draws are independent of the workload generators sharing the same
// experiment seed.
const faultStream = 0xfa017

// Plan is a Spec compiled against a seed: the live fault plane. Attach
// installs its hooks on a world; the plan then drives every injection
// from the world's virtual clock and its own rng stream, and tallies
// what it did in a Report.
type Plan struct {
	seed    uint64
	windows []window
	src     *rng.Source
	rep     Report

	// nodeSrc/nodeRep partition the draw-consuming hooks by node when
	// the plan is attached to a sharded world: hooks fire concurrently
	// from different shards there, and a shared rng stream would make
	// draw order depend on wall-clock interleaving. Each node draws from
	// its own derived stream and tallies into its own report, which is a
	// pure function of that node's virtual timeline — so the summed
	// Report is byte-identical at every shard count. Nil in serial mode
	// (where the shared stream keeps historical fingerprints intact).
	nodeSrc []*rng.Source
	nodeRep []Report
}

// Report tallies the injections a plan performed. All counters advance
// on virtual-time-driven events only, so identical runs produce
// identical reports.
type Report struct {
	// PacketsLost counts wire transmissions the loss hook discarded
	// (each is retransmitted by the fabric after its timeout).
	PacketsLost uint64
	// SamplesDropped/SamplesStaled/SamplesNoised count monitor-path
	// injections.
	SamplesDropped uint64
	SamplesStaled  uint64
	SamplesNoised  uint64
	// ActuationsFailed counts slice applications the plan rejected.
	ActuationsFailed uint64
	// DaemonDarkPeriods counts control periods that passed while a
	// daemon-crash window held the control plane down.
	DaemonDarkPeriods uint64
}

// String renders the report deterministically (the second half of the
// byte-identical determinism contract). DaemonDarkPeriods is rendered
// only when nonzero so every pre-existing report fingerprint is
// unchanged.
func (r Report) String() string {
	s := fmt.Sprintf("faults: lost=%d dropped=%d staled=%d noised=%d actfail=%d",
		r.PacketsLost, r.SamplesDropped, r.SamplesStaled, r.SamplesNoised, r.ActuationsFailed)
	if r.DaemonDarkPeriods != 0 {
		s += fmt.Sprintf(" dark=%d", r.DaemonDarkPeriods)
	}
	return s
}

// Compile validates the spec and binds it to a seed. fallbackSeed is
// used when the spec does not pin its own Seed — pass the run's cluster
// seed so fault draws stay reproducible per run without extra knobs.
func Compile(spec *Spec, fallbackSeed uint64) (*Plan, error) {
	if spec == nil {
		return nil, nil
	}
	if err := spec.Validate(0); err != nil {
		return nil, err
	}
	seed := spec.Seed
	if seed == 0 {
		seed = fallbackSeed
	}
	p := &Plan{seed: seed, src: rng.NewStream(seed, faultStream)}
	for _, w := range spec.Windows {
		p.windows = append(p.windows, compileWindow(w))
	}
	return p, nil
}

// Attach installs the plan's hooks on w. Only the hooks a window
// actually needs are installed, so a plan with (say) only monitor
// faults leaves the compute and network paths untouched. It validates
// node scopes against the world's size.
func (p *Plan) Attach(w *vmm.World) error {
	if p == nil {
		return nil
	}
	var slow, net, bw, mon bool
	nodes := w.Fabric.Nodes()
	if w.Sharded() {
		p.nodeSrc = make([]*rng.Source, nodes)
		for i := range p.nodeSrc {
			p.nodeSrc[i] = rng.NewStream(p.seed, faultStream+1+uint64(i))
		}
		p.nodeRep = make([]Report, nodes)
	}
	for _, win := range p.windows {
		for n := range win.nodes {
			if n >= nodes {
				return fmt.Errorf("fault: window scopes node %d but world has %d nodes", n, nodes)
			}
		}
		switch win.kind {
		case PCPUSlow, PCPUFreeze:
			slow = true
		case PacketLoss:
			net = true
		case Bandwidth:
			bw = true
		case MonitorDrop, MonitorNoise, MonitorStale:
			mon = true
		}
	}
	if slow {
		w.SetSlowdown(p.slowdown)
	}
	if net {
		w.Fabric.SetLoss(p.lose)
	}
	if bw {
		w.Fabric.SetBandwidth(p.bandwidth)
	}
	if mon {
		w.SetMonitorTap(p.monitorTap)
	}
	return nil
}

// Report returns a snapshot of the injection tallies (summed over the
// per-node partitions in sharded mode; call it at a barrier, e.g. after
// RunUntil returns).
func (p *Plan) Report() Report {
	if p == nil {
		return Report{}
	}
	r := p.rep
	for i := range p.nodeRep {
		nr := &p.nodeRep[i]
		r.PacketsLost += nr.PacketsLost
		r.SamplesDropped += nr.SamplesDropped
		r.SamplesStaled += nr.SamplesStaled
		r.SamplesNoised += nr.SamplesNoised
		r.ActuationsFailed += nr.ActuationsFailed
		r.DaemonDarkPeriods += nr.DaemonDarkPeriods
	}
	return r
}

// DaemonDown reports whether a daemon-crash window holds the control
// plane down at virtual time now. Nil-safe.
func (p *Plan) DaemonDown(now sim.Time) bool {
	if p == nil {
		return false
	}
	for i := range p.windows {
		w := &p.windows[i]
		if w.kind == DaemonCrash && w.active(now) {
			return true
		}
	}
	return false
}

// CountDarkPeriod tallies one control period lost to a daemon-crash
// window. Nil-safe; call from the control loop's driver, which is the
// only party that knows its period grid.
func (p *Plan) CountDarkPeriod() {
	if p == nil {
		return
	}
	p.rep.DaemonDarkPeriods++
}

// PublishTelemetry renders the plan into reg (usually the plane's
// global registry): each fault window becomes a span on the "faults"
// track, and the report counters become telemetry counters. Call after
// the run (with the final report) — publishing is observation only and
// never feeds back into injection.
func (p *Plan) PublishTelemetry(reg *telemetry.Registry) {
	if p == nil || reg == nil {
		return
	}
	lab := telemetry.GlobalLabel()
	for i := range p.windows {
		w := &p.windows[i]
		reg.AddSpan(telemetry.Span{
			Name:  "fault:" + string(w.kind),
			Track: "faults",
			Node:  -1,
			Start: w.start,
			End:   w.end,
		})
	}
	r := p.Report()
	reg.SetCount("fault_packets_lost", lab, r.PacketsLost)
	reg.SetCount("fault_samples_dropped", lab, r.SamplesDropped)
	reg.SetCount("fault_samples_staled", lab, r.SamplesStaled)
	reg.SetCount("fault_samples_noised", lab, r.SamplesNoised)
	reg.SetCount("fault_actuations_failed", lab, r.ActuationsFailed)
	if r.DaemonDarkPeriods > 0 {
		reg.SetCount("fault_daemon_dark_periods", lab, r.DaemonDarkPeriods)
	}
}

// drawFor returns the rng stream and report the hook for node should
// use: the node's own partition in sharded mode, the shared ones
// otherwise.
func (p *Plan) drawFor(node int) (*rng.Source, *Report) {
	if p.nodeSrc != nil {
		return p.nodeSrc[node], &p.nodeRep[node]
	}
	return p.src, &p.rep
}

// slowdown is the vmm compute-path hook: the strongest slow/freeze
// factor covering the node right now (1 = full speed).
func (p *Plan) slowdown(node int, now sim.Time) float64 {
	f := 1.0
	for i := range p.windows {
		w := &p.windows[i]
		if (w.kind == PCPUSlow || w.kind == PCPUFreeze) && w.active(now) && w.onNode(node) && w.severity > f {
			f = w.severity
		}
	}
	return f
}

// lose is the fabric's loss hook: drop a transmission leaving src with
// the strongest active loss probability.
func (p *Plan) lose(src, dst int, now sim.Time) bool {
	prob := 0.0
	for i := range p.windows {
		w := &p.windows[i]
		if w.kind == PacketLoss && w.active(now) && w.onNode(src) && w.severity > prob {
			prob = w.severity
		}
	}
	draw, rep := p.drawFor(src)
	if prob <= 0 || draw.Float64() >= prob {
		return false
	}
	rep.PacketsLost++
	return true
}

// bandwidth is the fabric's line-rate hook: the tightest remaining
// fraction covering the node (1 = full rate).
func (p *Plan) bandwidth(node int, now sim.Time) float64 {
	f := 1.0
	for i := range p.windows {
		w := &p.windows[i]
		if w.kind == Bandwidth && w.active(now) && w.onNode(node) && w.severity < f {
			f = w.severity
		}
	}
	return f
}

// monitorTap sits between the spin monitor and its consumers: per
// sample it may drop the reading, re-serve the previous one, or add
// noise. Drop wins over stale wins over noise when windows overlap.
func (p *Plan) monitorTap(vm *vmm.VM) vmm.MonitorVerdict {
	now := vm.Node().Engine().Now()
	draw, rep := p.drawFor(vm.Node().ID())
	var v vmm.MonitorVerdict
	for i := range p.windows {
		w := &p.windows[i]
		if !w.active(now) || !w.onVM(vm.ID()) {
			continue
		}
		switch w.kind {
		case MonitorDrop:
			if !v.Drop && draw.Float64() < w.severity {
				v.Drop = true
			}
		case MonitorStale:
			if !v.Stale && draw.Float64() < w.severity {
				v.Stale = true
			}
		case MonitorNoise:
			v.Noise += sim.Time(draw.Float64() * w.severity * float64(sim.Millisecond))
		}
	}
	switch {
	case v.Drop:
		rep.SamplesDropped++
	case v.Stale:
		rep.SamplesStaled++
	case v.Noise != 0:
		rep.SamplesNoised++
	}
	return v
}

// FailActuation reports whether a slice application at virtual time now
// should fail, per the active actuator-fail windows.
func (p *Plan) FailActuation(now sim.Time) error {
	if p == nil {
		return nil
	}
	prob := 0.0
	for i := range p.windows {
		w := &p.windows[i]
		if w.kind == ActuatorFail && w.active(now) && w.severity > prob {
			prob = w.severity
		}
	}
	if prob <= 0 || p.src.Float64() >= prob {
		return nil
	}
	p.rep.ActuationsFailed++
	return fmt.Errorf("fault: injected actuation failure at %v", now)
}
