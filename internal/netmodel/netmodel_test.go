package netmodel

import (
	"testing"
	"testing/quick"

	"atcsched/internal/sim"
)

func TestLocalDelivery(t *testing.T) {
	eng := sim.New()
	f := New(eng, 2, DefaultConfig())
	var at sim.Time
	f.Send(0, 0, 1500, func() { at = eng.Now() })
	eng.Run()
	if at != DefaultConfig().LocalLatency {
		t.Errorf("local delivery at %v, want %v", at, DefaultConfig().LocalLatency)
	}
	if f.WireBytes() != 0 {
		t.Errorf("local send used wire: %d bytes", f.WireBytes())
	}
	if f.PacketsSent() != 1 {
		t.Errorf("PacketsSent = %d", f.PacketsSent())
	}
}

func TestRemoteDeliveryTiming(t *testing.T) {
	eng := sim.New()
	cfg := Config{BytesPerSec: 125e6, WireLatency: 50 * sim.Microsecond, LocalLatency: sim.Microsecond}
	f := New(eng, 2, cfg)
	var at sim.Time
	size := 125000 // exactly 1 ms of serialization at 125 MB/s
	f.Send(0, 1, size, func() { at = eng.Now() })
	eng.Run()
	want := sim.Millisecond + 50*sim.Microsecond
	if at != want {
		t.Errorf("delivery at %v, want %v", at, want)
	}
	if f.WireBytes() != uint64(size) {
		t.Errorf("WireBytes = %d", f.WireBytes())
	}
}

func TestTxSerialization(t *testing.T) {
	eng := sim.New()
	cfg := Config{BytesPerSec: 125e6, WireLatency: 0, LocalLatency: 0}
	f := New(eng, 3, cfg)
	var first, second sim.Time
	// Two back-to-back sends from node 0 must serialize on its NIC.
	f.Send(0, 1, 125000, func() { first = eng.Now() })
	f.Send(0, 2, 125000, func() { second = eng.Now() })
	eng.Run()
	if first != sim.Millisecond {
		t.Errorf("first = %v", first)
	}
	if second != 2*sim.Millisecond {
		t.Errorf("second = %v, want serialized 2ms", second)
	}
}

func TestIndependentSendersDoNotSerialize(t *testing.T) {
	eng := sim.New()
	cfg := Config{BytesPerSec: 125e6, WireLatency: 0, LocalLatency: 0}
	f := New(eng, 4, cfg)
	var a, b sim.Time
	f.Send(0, 2, 125000, func() { a = eng.Now() })
	f.Send(1, 3, 125000, func() { b = eng.Now() })
	eng.Run()
	if a != sim.Millisecond || b != sim.Millisecond {
		t.Errorf("a=%v b=%v, want both 1ms (no cross-sender serialization)", a, b)
	}
}

func TestDeliveryOrderPreservedPerPair(t *testing.T) {
	eng := sim.New()
	f := New(eng, 2, DefaultConfig())
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		f.Send(0, 1, 1500, func() { got = append(got, i) })
	}
	eng.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("deliveries out of order: %v", got)
		}
	}
}

func TestZeroSizePacket(t *testing.T) {
	eng := sim.New()
	cfg := Config{BytesPerSec: 125e6, WireLatency: 10 * sim.Microsecond, LocalLatency: 0}
	f := New(eng, 2, cfg)
	var at sim.Time
	f.Send(0, 1, 0, func() { at = eng.Now() })
	eng.Run()
	if at != 10*sim.Microsecond {
		t.Errorf("zero-size delivery at %v", at)
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	eng := sim.New()
	f := New(eng, 2, DefaultConfig())
	cases := map[string]func(){
		"src range":     func() { f.Send(-1, 0, 1, func() {}) },
		"dst range":     func() { f.Send(0, 5, 1, func() {}) },
		"negative size": func() { f.Send(0, 1, -1, func() {}) },
		"zero nodes":    func() { New(eng, 0, DefaultConfig()) },
		"zero bw":       func() { New(eng, 1, Config{}) },
	}
	for name, fn := range cases {
		fn := fn
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestNodes(t *testing.T) {
	f := New(sim.New(), 7, DefaultConfig())
	if f.Nodes() != 7 {
		t.Errorf("Nodes = %d", f.Nodes())
	}
}

// Property: deliveries never precede sends, in-flight accounting is
// exact, and per-(src,dst) pair order is preserved for any schedule of
// sends.
func TestFabricConservationProperty(t *testing.T) {
	type msg struct {
		Src, Dst uint8
		Size     uint16
		Delay    uint16
	}
	check := func(msgs []msg) bool {
		eng := sim.New()
		f := New(eng, 4, DefaultConfig())
		type key struct{ s, d int }
		nextSend := map[key]int{}
		lastDelivered := map[key]int{}
		okOrder := true
		for _, m := range msgs {
			src, dst := int(m.Src)%4, int(m.Dst)%4
			k := key{src, dst}
			size := int(m.Size)
			eng.Schedule(sim.Time(m.Delay)*sim.Microsecond, func() {
				seq := nextSend[k] // order at actual send time
				nextSend[k]++
				f.Send(src, dst, size, func() {
					if prev, ok := lastDelivered[k]; ok && prev > seq {
						okOrder = false
					}
					lastDelivered[k] = seq
				})
			})
		}
		eng.Run()
		return okOrder && f.InFlight() == 0 && f.PacketsDelivered() == uint64(len(msgs))
	}
	f := func(msgs []msg) bool { return check(msgs) }
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
