package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
)

// JSONL schema version (the "meta" line's "version" field). Bump when a
// line shape changes incompatibly.
const JSONLVersion = 1

// jsonlMeta is the first line of every dump.
type jsonlMeta struct {
	Type    string `json:"type"` // "meta"
	Version int    `json:"version"`
	// Dropped totals let a consumer detect truncated series/spans.
	DroppedPoints uint64 `json:"droppedPoints,omitempty"`
	DroppedSpans  uint64 `json:"droppedSpans,omitempty"`
}

// jsonlPoint is one time-series sample line.
type jsonlPoint struct {
	Type string `json:"type"` // "point"
	Name string `json:"name"`
	Label
	T int64   `json:"t_ns"`
	V float64 `json:"v"`
}

// jsonlCounter / jsonlGauge are end-of-run scalar lines.
type jsonlCounter struct {
	Type string `json:"type"` // "counter"
	Name string `json:"name"`
	Label
	Value uint64 `json:"value"`
}

type jsonlGauge struct {
	Type string `json:"type"` // "gauge"
	Name string `json:"name"`
	Label
	Value float64 `json:"value"`
}

// jsonlSpan is one completed span line.
type jsonlSpan struct {
	Type string `json:"type"` // "span"
	Name string `json:"name"`
	Label
	Track string `json:"track"`
	Start int64  `json:"start_ns"`
	End   int64  `json:"end_ns"`
	Value int64  `json:"value_ns,omitempty"`
}

// jsonlHist is one histogram line (cumulative bucket counts).
type jsonlHist struct {
	Type string `json:"type"` // "hist"
	Name string `json:"name"`
	Label
	BoundsNS []int64  `json:"bounds_ns"`
	Counts   []uint64 `json:"counts"`
	Count    uint64   `json:"count"`
	SumNS    int64    `json:"sum_ns"`
}

// WriteJSONL dumps a snapshot as JSON Lines: a "meta" header, then
// every series point in (series, time) order, then spans, histograms,
// counters and gauges. All times are integer nanoseconds of virtual
// time. The output is deterministic for a deterministic snapshot; see
// EXPERIMENTS.md for the documented schema.
func WriteJSONL(w io.Writer, snap Snapshot) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(jsonlMeta{
		Type: "meta", Version: JSONLVersion,
		DroppedPoints: snap.DroppedPoints, DroppedSpans: snap.DroppedSpans,
	}); err != nil {
		return err
	}
	for _, s := range snap.Series {
		for _, p := range s.Points {
			if err := enc.Encode(jsonlPoint{
				Type: "point", Name: s.Name, Label: s.Label,
				T: int64(p.T), V: p.V,
			}); err != nil {
				return err
			}
		}
	}
	for _, sp := range snap.Spans {
		if err := enc.Encode(jsonlSpan{
			Type: "span", Name: sp.Name, Label: Label{Node: sp.Node},
			Track: sp.Track, Start: int64(sp.Start), End: int64(sp.End),
			Value: int64(sp.Value),
		}); err != nil {
			return err
		}
	}
	for _, h := range snap.Histograms {
		line := jsonlHist{
			Type: "hist", Name: h.Name, Label: h.Label,
			Counts: h.Counts, Count: h.Count, SumNS: int64(h.Sum),
		}
		for _, b := range h.Bounds {
			line.BoundsNS = append(line.BoundsNS, int64(b))
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	for _, c := range snap.Counters {
		if err := enc.Encode(jsonlCounter{Type: "counter", Name: c.Name, Label: c.Label, Value: c.Value}); err != nil {
			return err
		}
	}
	for _, g := range snap.Gauges {
		if err := enc.Encode(jsonlGauge{Type: "gauge", Name: g.Name, Label: g.Label, Value: g.Value}); err != nil {
			return err
		}
	}
	return bw.Flush()
}
