package dfrs_test

import (
	"encoding/json"
	"strings"
	"testing"

	"atcsched/internal/sched/dfrs"
	"atcsched/internal/sched/registry"
	"atcsched/internal/sim"
	"atcsched/internal/telemetry"
	"atcsched/internal/vmm"
	"atcsched/internal/vmmtest"
)

func world(t *testing.T, pcpus int, opts dfrs.Options) *vmm.World {
	t.Helper()
	return vmmtest.World(1, pcpus, dfrs.Factory(opts))
}

func TestOptionsValidation(t *testing.T) {
	base := dfrs.DefaultOptions()
	cases := map[string]func(*dfrs.Options){
		"zero interval":      func(o *dfrs.Options) { o.RedistributePeriods = 0 },
		"negative min frac":  func(o *dfrs.Options) { o.MinFraction = -0.1 },
		"huge min frac":      func(o *dfrs.Options) { o.MinFraction = 0.6 },
		"dom0 full node":     func(o *dfrs.Options) { o.Dom0Fraction = 1 },
		"negative dom0":      func(o *dfrs.Options) { o.Dom0Fraction = -0.5 },
		"zero smoothing":     func(o *dfrs.Options) { o.Smoothing = 0 },
		"smoothing above 1":  func(o *dfrs.Options) { o.Smoothing = 1.5 },
		"zero quantum":       func(o *dfrs.Options) { o.MinQuantum = 0 },
		"quantum over slice": func(o *dfrs.Options) { o.MinQuantum = 2 * o.Credit.TimeSlice },
	}
	for name, mut := range cases {
		o := base
		mut(&o)
		if err := o.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	if err := base.Validate(); err != nil {
		t.Errorf("defaults rejected: %v", err)
	}
}

// TestFractionsTrackDemand: a CPU hog and a near-idle tenant sharing a
// node must end up with visibly different fractions, both floored and
// summing within the distributable capacity.
func TestFractionsTrackDemand(t *testing.T) {
	opts := dfrs.DefaultOptions()
	w := world(t, 2, opts)
	node := w.Node(0)
	hog := node.NewVM("hog", vmm.ClassNonParallel, 2, 0, 1)
	idle := node.NewVM("idle", vmm.ClassNonParallel, 1, 0, 1)
	for _, v := range hog.VCPUs() {
		vmmtest.Loop(v, vmm.Compute(100*sim.Millisecond))
	}
	// The near-idle VM computes 1 ms then sleeps 50 ms.
	vmmtest.Loop(idle.VCPU(0), vmm.Compute(sim.Millisecond), vmm.Sleep(50*sim.Millisecond))
	w.Start()
	w.RunUntil(3 * sim.Second)
	s := node.Scheduler().(*dfrs.Scheduler)
	if s.Redistributions() == 0 {
		t.Fatal("no redistributions happened")
	}
	fh, ok := s.Fraction(hog)
	if !ok {
		t.Fatal("hog has no fraction")
	}
	fi, ok := s.Fraction(idle)
	if !ok {
		t.Fatal("idle has no fraction")
	}
	if fh < 2*fi {
		t.Errorf("hog fraction %.3f not clearly above idle %.3f", fh, fi)
	}
	if fi < opts.MinFraction {
		t.Errorf("idle fraction %.3f below floor %.3f", fi, opts.MinFraction)
	}
	// The floor may push the sum slightly past the distributable
	// capacity; the overshoot is bounded by MinFraction × pool size.
	if sum, max := fh+fi, 1-opts.Dom0Fraction+2*opts.MinFraction; sum > max+1e-9 {
		t.Errorf("fractions sum %.3f above bound %.3f", sum, max)
	}
}

// TestWorkConservingAbsorbsSlack: a lone hog must absorb the idle
// tenant's unused capacity (work conservation) — its runtime approaches
// wall time even though its raw demand share started at an equal split.
func TestWorkConservingAbsorbsSlack(t *testing.T) {
	opts := dfrs.DefaultOptions()
	w := world(t, 2, opts)
	node := w.Node(0)
	hog := node.NewVM("hog", vmm.ClassNonParallel, 1, 0, 1)
	idle := node.NewVM("idle", vmm.ClassNonParallel, 1, 0, 1)
	vmmtest.Loop(hog.VCPU(0), vmm.Compute(100*sim.Millisecond))
	vmmtest.Loop(idle.VCPU(0), vmm.Compute(sim.Millisecond), vmm.Sleep(80*sim.Millisecond))
	w.Start()
	w.RunUntil(3 * sim.Second)
	if r := hog.RunTime().Seconds(); r < 2.5 {
		t.Errorf("hog ran %.2fs of 3s with an idle neighbor — slack not reallocated", r)
	}
	s := node.Scheduler().(*dfrs.Scheduler)
	// The hog's 1 VCPU caps its fraction at half this 2-PCPU node.
	if f, _ := s.Fraction(hog); f < 0.3 || f > 0.5+1e-9 {
		t.Errorf("hog fraction %.3f, want scaled up toward its 0.5 VCPU cap", f)
	}
}

// TestFractionalQuantum: the dispatch quantum follows the fraction —
// a contended node hands out sub-default slices within
// [MinQuantum, TimeSlice], and an admin slice still wins.
func TestFractionalQuantum(t *testing.T) {
	opts := dfrs.DefaultOptions()
	w := world(t, 1, opts)
	node := w.Node(0)
	vms := make([]*vmm.VM, 4)
	for i := range vms {
		vms[i] = node.NewVM("vm", vmm.ClassNonParallel, 1, 0, 1)
		vmmtest.Loop(vms[i].VCPU(0), vmm.Compute(100*sim.Millisecond))
	}
	admin := node.NewVM("admin", vmm.ClassNonParallel, 1, 0, 1)
	admin.AdminSlice = 6 * sim.Millisecond
	vmmtest.Loop(admin.VCPU(0), vmm.Compute(100*sim.Millisecond))
	w.Start()
	w.RunUntil(2 * sim.Second)
	s := node.Scheduler().(*dfrs.Scheduler)
	for i, vm := range vms {
		q := s.Slice(vm.VCPU(0))
		if q < opts.MinQuantum || q > opts.Credit.TimeSlice {
			t.Errorf("vm%d quantum %v outside [%v, %v]", i, q, opts.MinQuantum, opts.Credit.TimeSlice)
		}
		if q == opts.Credit.TimeSlice {
			t.Errorf("vm%d quantum %v never shrank below the default on a 5-way contended PCPU", i, q)
		}
	}
	if got := s.Slice(admin.VCPU(0)); got != 6*sim.Millisecond {
		t.Errorf("admin quantum %v, want the 6ms admin slice", got)
	}
}

// TestNonWorkConservingLeavesSlack: with NonWorkConserving set, a lone
// low-demand tenant keeps a demand-sized fraction instead of absorbing
// the node.
func TestNonWorkConservingLeavesSlack(t *testing.T) {
	opts := dfrs.DefaultOptions()
	opts.NonWorkConserving = true
	w := world(t, 2, opts)
	node := w.Node(0)
	light := node.NewVM("light", vmm.ClassNonParallel, 1, 0, 1)
	vmmtest.Loop(light.VCPU(0), vmm.Compute(2*sim.Millisecond), vmm.Sleep(30*sim.Millisecond))
	w.Start()
	w.RunUntil(3 * sim.Second)
	s := node.Scheduler().(*dfrs.Scheduler)
	f, ok := s.Fraction(light)
	if !ok {
		t.Fatal("no fraction assigned")
	}
	if f > 0.25 {
		t.Errorf("fraction %.3f, want demand-sized (not scaled up) in non-work-conserving mode", f)
	}
}

// TestTelemetryPublishesFractions: with a plane attached the scheduler
// emits per-VM fraction series/gauges and redistribution spans; the
// nil-guard keeps bare runs publishing nothing.
func TestTelemetryPublishesFractions(t *testing.T) {
	opts := dfrs.DefaultOptions()
	w := world(t, 2, opts)
	plane := telemetry.New(telemetry.Options{})
	w.SetTelemetry(plane)
	node := w.Node(0)
	vm := node.NewVM("hog", vmm.ClassNonParallel, 1, 0, 1)
	vmmtest.Loop(vm.VCPU(0), vmm.Compute(100*sim.Millisecond))
	w.Start()
	w.RunUntil(sim.Second)
	snap := plane.Snapshot()
	var points, spans int
	for _, s := range snap.Series {
		if s.Name == "vm_fraction" && s.Label.VM == "hog" {
			points += len(s.Points)
		}
	}
	for _, sp := range snap.Spans {
		if sp.Name == "redistribute" && sp.Track == "dfrs" {
			spans++
		}
	}
	if points == 0 {
		t.Error("no vm_fraction points published")
	}
	if spans == 0 {
		t.Error("no redistribute spans published")
	}
}

// TestRegistryRoundTrip: DFRS options merge over defaults from JSON and
// re-marshal stably, and invalid fractions are rejected through the
// registry Build path.
func TestRegistryRoundTrip(t *testing.T) {
	d, ok := registry.Lookup("DFRS")
	if !ok {
		t.Fatal("DFRS not registered")
	}
	merged, err := d.Options(json.RawMessage(`{"minFraction": 0.1, "redistributePeriods": 4}`))
	if err != nil {
		t.Fatal(err)
	}
	o := merged.(*dfrs.Options)
	if o.MinFraction != 0.1 || o.RedistributePeriods != 4 {
		t.Errorf("user fields lost: %+v", o)
	}
	if o.Smoothing != dfrs.DefaultOptions().Smoothing || !o.Credit.Boost {
		t.Errorf("defaults lost: %+v", o)
	}
	if err := registry.Validate("DFRS", json.RawMessage(`{"minFraction": -1}`)); err == nil {
		t.Error("negative minFraction accepted")
	}
	if err := registry.Validate("DFRS", json.RawMessage(`{"smoothing": 2}`)); err == nil {
		t.Error("smoothing 2 accepted")
	}
	if err := registry.Validate("DFRS", json.RawMessage(`{"dom0Fraction": 1.5}`)); err == nil {
		t.Error("dom0Fraction 1.5 accepted")
	}
	// A marshal→merge→marshal cycle must be byte-stable.
	b1, err := json.Marshal(merged)
	if err != nil {
		t.Fatal(err)
	}
	again, err := d.Options(json.RawMessage(b1))
	if err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(again)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Errorf("round trip unstable:\n%s\n%s", b1, b2)
	}
	if !strings.Contains(d.Description, "fractional") {
		t.Errorf("description %q does not mention fractional scheduling", d.Description)
	}
}
