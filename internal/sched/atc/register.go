package atc

import (
	"fmt"

	"atcsched/internal/sched/registry"
	"atcsched/internal/vmm"
)

func init() {
	registry.Register(registry.Descriptor{
		Kind:        "ATC",
		Order:       6,
		Description: "adaptive time-slice control (the paper's contribution): per-period spin-latency feedback drives node-wide slices",
		Defaults:    func() any { o := DefaultOptions(); return &o },
		Build: func(opts any, base registry.Base) (vmm.SchedulerFactory, error) {
			o := *opts.(*Options)
			if err := o.Credit.ApplyOverrides(base.FixedSlice, base.DisableBoost, base.DisableSteal); err != nil {
				return nil, err
			}
			// The constructor pins Control.Default to the credit slice;
			// validate the controller config as it will actually run.
			ctl := o.Control
			ctl.Default = o.Credit.TimeSlice
			if err := ctl.Validate(); err != nil {
				return nil, fmt.Errorf("atc: %w", err)
			}
			return Factory(o), nil
		},
	})
}
