package cluster

import (
	"testing"

	"atcsched/internal/sim"
	"atcsched/internal/vmm"
	"atcsched/internal/workload"
)

func TestGoForRunsExactDuration(t *testing.T) {
	cfg := DefaultConfig(1, CR)
	cfg.Node.PCPUs = 1
	s := MustNew(cfg)
	vm := s.IndependentVM("x", 0, 1, vmm.ClassNonParallel)
	job := workload.NewCPUJob(s.World.Eng, vm.VCPU(0), workload.SPECProfiles()[0])
	s.GoFor(2 * sim.Second)
	if now := s.World.Eng.Now(); now != 2*sim.Second {
		t.Errorf("Now = %v, want exactly 2s", now)
	}
	if job.Rounds() < 4 {
		t.Errorf("rounds = %d, want ~5 in 2s", job.Rounds())
	}
}

func TestContinueForAfterCompletion(t *testing.T) {
	cfg := DefaultConfig(1, CR)
	cfg.Node.PCPUs = 2
	s := MustNew(cfg)
	prof := workload.NPB("ep", workload.ClassA)
	prof.Iterations = 3
	run := s.RunParallel(prof, s.VirtualCluster("vc", 1, 2, nil), 1, true)
	if !s.Go(120 * sim.Second) {
		t.Fatal("did not complete")
	}
	doneAt := s.World.Eng.Now()
	s.ContinueFor(3 * sim.Second)
	if got := s.World.Eng.Now(); got != doneAt+3*sim.Second {
		t.Errorf("continued to %v, want %v", got, doneAt+3*sim.Second)
	}
	// Forever run kept going during the extension.
	if run.Rounds() < 2 {
		t.Errorf("rounds = %d after ContinueFor", run.Rounds())
	}
}

func TestContinueUntilConditionAndCap(t *testing.T) {
	cfg := DefaultConfig(1, CR)
	cfg.Node.PCPUs = 1
	s := MustNew(cfg)
	vm := s.IndependentVM("x", 0, 1, vmm.ClassNonParallel)
	job := workload.NewDiskJob(s.World.Eng, vm.VCPU(0))
	s.GoFor(100 * sim.Millisecond)
	ok := s.ContinueUntil(func() bool { return job.Requests() >= 20 }, 100*sim.Millisecond, 10*sim.Second)
	if !ok {
		t.Fatalf("condition not met (requests=%d)", job.Requests())
	}
	// Cap path: an impossible condition stops at the cap.
	start := s.World.Eng.Now()
	ok = s.ContinueUntil(func() bool { return false }, 100*sim.Millisecond, 500*sim.Millisecond)
	if ok {
		t.Fatal("impossible condition reported met")
	}
	if got := s.World.Eng.Now() - start; got != 500*sim.Millisecond {
		t.Errorf("ran %v past cap, want exactly 500ms", got)
	}
}

func TestHYApproachBuilds(t *testing.T) {
	cfg := DefaultConfig(1, HY)
	s := MustNew(cfg)
	if got := s.World.Node(0).Scheduler().Name(); got != "HY" {
		t.Errorf("Name = %q", got)
	}
	if len(ExtendedApproaches()) != len(Approaches())+1 {
		t.Error("ExtendedApproaches wrong")
	}
}

func TestDisableTogglesReachScheduler(t *testing.T) {
	cfg := DefaultConfig(1, CR)
	cfg.Sched.DisableBoost = true
	cfg.Sched.DisableSteal = true
	s := MustNew(cfg)
	// Indirect check: the scheduler still works end to end.
	prof := workload.NPB("ep", workload.ClassA)
	prof.Iterations = 2
	run := s.RunParallel(prof, s.VirtualCluster("vc", 1, 2, nil), 1, false)
	if !s.Go(120 * sim.Second) {
		t.Fatal("did not complete")
	}
	if run.MeanTime() <= 0 {
		t.Fatal("no timing")
	}
}
