package diskmodel

import (
	"testing"

	"atcsched/internal/sim"
)

func TestSingleRequestTiming(t *testing.T) {
	eng := sim.New()
	d := New(eng, Config{BytesPerSec: 100e6, Positioning: 400 * sim.Microsecond})
	var at sim.Time
	d.Submit(1_000_000, func() { at = eng.Now() }) // 10 ms transfer
	eng.Run()
	want := 400*sim.Microsecond + 10*sim.Millisecond
	if at != want {
		t.Errorf("completed at %v, want %v", at, want)
	}
	if d.Requests() != 1 || d.Bytes() != 1_000_000 {
		t.Errorf("Requests=%d Bytes=%d", d.Requests(), d.Bytes())
	}
}

func TestFIFOSerialization(t *testing.T) {
	eng := sim.New()
	d := New(eng, Config{BytesPerSec: 100e6, Positioning: 0})
	var done []int
	for i := 0; i < 3; i++ {
		i := i
		d.Submit(1_000_000, func() { done = append(done, i) })
	}
	eng.Run()
	if eng.Now() != 30*sim.Millisecond {
		t.Errorf("queue drained at %v, want 30ms", eng.Now())
	}
	for i, v := range done {
		if v != i {
			t.Fatalf("completion order %v", done)
		}
	}
}

func TestZeroSizeRequest(t *testing.T) {
	eng := sim.New()
	d := New(eng, Config{BytesPerSec: 100e6, Positioning: sim.Millisecond})
	var at sim.Time
	d.Submit(0, func() { at = eng.Now() })
	eng.Run()
	if at != sim.Millisecond {
		t.Errorf("zero request at %v, want positioning only", at)
	}
}

func TestBusyUntil(t *testing.T) {
	eng := sim.New()
	d := New(eng, Config{BytesPerSec: 100e6, Positioning: 0})
	if d.BusyUntil() != 0 {
		t.Error("idle disk BusyUntil != 0")
	}
	d.Submit(2_000_000, func() {})
	if d.BusyUntil() != 20*sim.Millisecond {
		t.Errorf("BusyUntil = %v", d.BusyUntil())
	}
}

func TestValidation(t *testing.T) {
	eng := sim.New()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("bad config did not panic")
			}
		}()
		New(eng, Config{})
	}()
	d := New(eng, DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Error("negative size did not panic")
		}
	}()
	d.Submit(-1, func() {})
}
