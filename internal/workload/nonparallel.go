package workload

import (
	"atcsched/internal/metrics"
	"atcsched/internal/rng"
	"atcsched/internal/sim"
	"atcsched/internal/vmm"
)

// CPUJobProfile describes a SPEC-CPU-2006-like batch job: a long warm
// compute with a given cache sensitivity. The paper uses gcc, bzip2 and
// sphinx3; their relative cache behaviour is what matters for Figures 9
// and 14.
type CPUJobProfile struct {
	Name      string
	Work      sim.Time // warm compute per round
	Footprint int64
	ColdRate  float64
}

// SPECProfiles returns the three CPU-intensive jobs the paper runs.
// sphinx3 is the most cache-hungry (the paper shows it degrading most
// under short slices), gcc intermediate, bzip2 the least.
func SPECProfiles() []CPUJobProfile {
	return []CPUJobProfile{
		{Name: "gcc", Work: 400 * sim.Millisecond, Footprint: 1 << 20, ColdRate: 0.60},
		{Name: "bzip2", Work: 400 * sim.Millisecond, Footprint: 640 << 10, ColdRate: 0.75},
		{Name: "sphinx3", Work: 400 * sim.Millisecond, Footprint: 2 << 20, ColdRate: 0.45},
	}
}

// CPUJob runs a profile in a loop on one VCPU and records per-round
// completion times.
type CPUJob struct {
	Profile CPUJobProfile
	eng     *sim.Engine
	times   metrics.Welford
	start   sim.Time
}

// NewCPUJob installs the job on v. Call before World.Start.
func NewCPUJob(v *vmm.VCPU, p CPUJobProfile) *CPUJob {
	eng := v.VM().Node().Engine()
	j := &CPUJob{Profile: p, eng: eng}
	v.SetCacheProfile(p.Footprint, p.ColdRate)
	mk := func() vmm.Process {
		j.start = eng.Now()
		return &SeqActions{Actions: []vmm.Action{vmm.Compute(p.Work)}}
	}
	v.SetProcess(mk(), func(*vmm.VCPU) vmm.Process {
		j.times.Add((eng.Now() - j.start).Seconds())
		return mk()
	})
	return j
}

// MeanTime returns the mean round completion time in seconds.
func (j *CPUJob) MeanTime() float64 { return j.times.Mean() }

// Rounds returns completed rounds.
func (j *CPUJob) Rounds() int64 { return j.times.N() }

// StreamJob models the stream memory-bandwidth benchmark: rounds of
// bandwidth-bound compute whose large, low-reuse working set makes it
// mildly sensitive to context-switch-induced cache flushes (Figures 9
// and 13 show only slight degradation).
type StreamJob struct {
	eng   *sim.Engine
	times metrics.Welford
	start sim.Time
	// BytesPerRound is the nominal data volume one round streams, used
	// to report a bandwidth figure.
	BytesPerRound float64
}

// NewStreamJob installs the job on v.
func NewStreamJob(v *vmm.VCPU) *StreamJob {
	eng := v.VM().Node().Engine()
	j := &StreamJob{eng: eng, BytesPerRound: 400e6} // 400 MB per 100 ms round warm
	v.SetCacheProfile(1<<20, 0.88)
	work := 100 * sim.Millisecond
	mk := func() vmm.Process {
		j.start = eng.Now()
		return &SeqActions{Actions: []vmm.Action{vmm.Compute(work)}}
	}
	v.SetProcess(mk(), func(*vmm.VCPU) vmm.Process {
		j.times.Add((eng.Now() - j.start).Seconds())
		return mk()
	})
	return j
}

// BandwidthMBps returns the achieved bandwidth in MB/s.
func (j *StreamJob) BandwidthMBps() float64 {
	if j.times.N() == 0 || j.times.Mean() == 0 {
		return 0
	}
	return j.BytesPerRound / j.times.Mean() / 1e6
}

// Rounds returns completed rounds.
func (j *StreamJob) Rounds() int64 { return j.times.N() }

// DiskJob models bonnie++'s sequential block I/O: a loop of 1 MiB disk
// requests through the dom0 blkback path.
type DiskJob struct {
	eng       *sim.Engine
	start     sim.Time
	bytes     uint64
	reqSize   int
	completed uint64
}

// NewDiskJob installs the job on v.
func NewDiskJob(v *vmm.VCPU) *DiskJob {
	eng := v.VM().Node().Engine()
	j := &DiskJob{eng: eng, start: eng.Now(), reqSize: 1 << 20}
	v.SetCacheProfile(64<<10, 0.9)
	mk := func() vmm.Process {
		return &SeqActions{Actions: []vmm.Action{
			{Kind: vmm.ActDisk, Size: j.reqSize, Then: func() {
				j.bytes += uint64(j.reqSize)
				j.completed++
			}},
			vmm.Compute(200 * sim.Microsecond), // buffer handling
		}}
	}
	v.SetProcess(mk(), func(*vmm.VCPU) vmm.Process { return mk() })
	return j
}

// ResetStats discards accumulated bytes and restarts the measurement
// clock — call at the start of the steady-state window so the
// throughput figure covers a fixed-length interval.
func (j *DiskJob) ResetStats() {
	j.bytes = 0
	j.completed = 0
	j.start = j.eng.Now()
}

// ThroughputMBps returns achieved disk throughput in MB/s.
func (j *DiskJob) ThroughputMBps() float64 {
	el := (j.eng.Now() - j.start).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(j.bytes) / el / 1e6
}

// Requests returns completed requests.
func (j *DiskJob) Requests() uint64 { return j.completed }

// PingJob measures round-trip time between two VMs: the client sends a
// 64-byte probe, the echo VM returns it, and the client records the RTT
// then idles for an interval — the paper's latency-sensitive probe.
type PingJob struct {
	eng *sim.Engine
	rtt metrics.Welford
	p95 *metrics.P2Quantile
	p99 *metrics.P2Quantile
}

// NewPingJob installs a client process on client.VCPU(clientRank) and an
// echo process on echo.VCPU(echoRank). Interval is the probe spacing.
func NewPingJob(client *vmm.VM, clientRank int, echo *vmm.VM, echoRank int, interval sim.Time) *PingJob {
	eng := client.Node().Engine()
	j := &PingJob{eng: eng, p95: metrics.NewP2Quantile(0.95), p99: metrics.NewP2Quantile(0.99)}
	client.VCPU(clientRank).SetCacheProfile(64<<10, 0.95)
	echo.VCPU(echoRank).SetCacheProfile(64<<10, 0.95)
	client.LatencySensitive = true
	echo.LatencySensitive = true

	seq := 0
	var sentAt sim.Time
	mkClient := func() vmm.Process {
		seq++
		s := seq
		return &SeqActions{Actions: []vmm.Action{
			vmm.Sleep(interval),
			vmm.Action{Kind: vmm.ActSend, Dst: echo, DstProc: echoRank, Tag: 2 * s, Size: 64,
				Then: func() { sentAt = eng.Now() }},
			vmm.Action{Kind: vmm.ActRecv, Tag: 2*s + 1,
				Then: func() {
					rtt := (eng.Now() - sentAt).Seconds()
					j.rtt.Add(rtt)
					j.p95.Add(rtt)
					j.p99.Add(rtt)
				}},
		}}
	}
	client.VCPU(clientRank).SetProcess(mkClient(), func(*vmm.VCPU) vmm.Process { return mkClient() })

	eseq := 0
	mkEcho := func() vmm.Process {
		eseq++
		s := eseq
		return &SeqActions{Actions: []vmm.Action{
			vmm.Recv(2 * s),
			vmm.Send(client, clientRank, 2*s+1, 64),
		}}
	}
	echo.VCPU(echoRank).SetProcess(mkEcho(), func(*vmm.VCPU) vmm.Process { return mkEcho() })
	return j
}

// MeanRTT returns the mean round-trip time in seconds.
func (j *PingJob) MeanRTT() float64 { return j.rtt.Mean() }

// P95RTT returns the estimated 95th-percentile round-trip time.
func (j *PingJob) P95RTT() float64 { return j.p95.Value() }

// P99RTT returns the estimated 99th-percentile round-trip time.
func (j *PingJob) P99RTT() float64 { return j.p99.Value() }

// MaxRTT returns the worst observed round-trip time.
func (j *PingJob) MaxRTT() float64 { return j.rtt.Max() }

// Probes returns the number of completed probes.
func (j *PingJob) Probes() int64 { return j.rtt.N() }

// WebJob models an Apache-like server under an httperf-like closed-loop
// client: the client thinks (exponential), sends a request, and waits
// for the response; the server receives, does a small service compute,
// and replies. The metric is the mean response time (Figure 13).
type WebJob struct {
	eng  *sim.Engine
	resp metrics.Welford
	p95  *metrics.P2Quantile
	p99  *metrics.P2Quantile
}

// NewWebJob installs the server on server.VCPU(serverRank) and the load
// generator on client.VCPU(clientRank). thinkMean is the client's mean
// think time; service is the server's per-request compute.
func NewWebJob(client *vmm.VM, clientRank int, server *vmm.VM, serverRank int, thinkMean, service sim.Time, seed uint64) *WebJob {
	eng := client.Node().Engine()
	j := &WebJob{eng: eng, p95: metrics.NewP2Quantile(0.95), p99: metrics.NewP2Quantile(0.99)}
	server.LatencySensitive = true
	server.VCPU(serverRank).SetCacheProfile(512<<10, 0.8)
	client.VCPU(clientRank).SetCacheProfile(64<<10, 0.95)
	src := rng.NewStream(seed, 0xeb)

	seq := 0
	var sentAt sim.Time
	mkClient := func() vmm.Process {
		seq++
		s := seq
		think := sim.Time(src.Exp(float64(thinkMean)))
		return &SeqActions{Actions: []vmm.Action{
			vmm.Sleep(think),
			vmm.Action{Kind: vmm.ActSend, Dst: server, DstProc: serverRank, Tag: 2 * s, Size: 512,
				Then: func() { sentAt = eng.Now() }},
			vmm.Action{Kind: vmm.ActRecv, Tag: 2*s + 1,
				Then: func() {
					r := (eng.Now() - sentAt).Seconds()
					j.resp.Add(r)
					j.p95.Add(r)
					j.p99.Add(r)
				}},
		}}
	}
	client.VCPU(clientRank).SetProcess(mkClient(), func(*vmm.VCPU) vmm.Process { return mkClient() })

	sseq := 0
	mkServer := func() vmm.Process {
		sseq++
		s := sseq
		return &SeqActions{Actions: []vmm.Action{
			vmm.Recv(2 * s),
			vmm.Compute(service),
			vmm.Send(client, clientRank, 2*s+1, 8192),
		}}
	}
	server.VCPU(serverRank).SetProcess(mkServer(), func(*vmm.VCPU) vmm.Process { return mkServer() })
	return j
}

// MeanResponse returns the mean response time in seconds.
func (j *WebJob) MeanResponse() float64 { return j.resp.Mean() }

// P95Response returns the estimated 95th-percentile response time.
func (j *WebJob) P95Response() float64 { return j.p95.Value() }

// P99Response returns the estimated 99th-percentile response time.
func (j *WebJob) P99Response() float64 { return j.p99.Value() }

// Requests returns the number of completed requests.
func (j *WebJob) Requests() int64 { return j.resp.N() }

// SeqActions is a one-shot action sequence process (exported for reuse
// by examples and the cluster assembly).
type SeqActions struct {
	Actions []vmm.Action
	i       int
}

// Next implements vmm.Process.
func (p *SeqActions) Next() vmm.Action {
	if p.i >= len(p.Actions) {
		return vmm.Done()
	}
	a := p.Actions[p.i]
	p.i++
	return a
}
