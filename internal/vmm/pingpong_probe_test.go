package vmm

import (
	"testing"

	"atcsched/internal/sim"
)

// Probe: one busy VCPU on a 2-PCPU node with idle sibling; does the
// slice-end preempt nudge cause per-slice migration?
func TestProbeSoloVCPUMigration(t *testing.T) {
	w := testWorld(t, 1, 2, 30*sim.Millisecond)
	n := w.Node(0)
	vm := n.NewVM("solo", ClassNonParallel, 1, 0, 1)
	vm.VCPU(0).SetProcess(&seqProc{actions: []Action{Compute(sim.Second)}}, nil)
	w.Start()
	w.RunUntil(sim.Second)
	t.Logf("ctxSwitches=%d dispatches p0=%d p1=%d", n.CtxSwitches(), n.PCPUs()[0].dispatches, n.PCPUs()[1].dispatches)
}
