package core

import (
	"fmt"
	"sort"

	"atcsched/internal/metrics"
	"atcsched/internal/sim"
)

// ThresholdResult reports the Euclidean closeness metric for one
// candidate minimum time-slice threshold (§III-B).
type ThresholdResult struct {
	Slice sim.Time
	// D is Equation (1)'s distance between the candidate's normalized
	// execution times and each application's own optimum.
	D float64
}

// OptimizeThreshold reproduces §III-B: given, per application, the
// normalized execution time measured under each candidate slice, it
// computes O_i (each application's minimum over all candidates) and
// D(O,P) per candidate, returning the candidate with the smallest D plus
// the full table (sorted by descending slice, matching the paper's
// presentation order).
func OptimizeThreshold(perApp map[string]map[sim.Time]float64) (best sim.Time, table []ThresholdResult, err error) {
	if len(perApp) == 0 {
		return 0, nil, fmt.Errorf("core: no applications")
	}
	// Collect the candidate set and check consistency.
	var candidates []sim.Time
	var apps []string
	for app := range perApp {
		apps = append(apps, app)
	}
	sort.Strings(apps)
	for slice := range perApp[apps[0]] {
		candidates = append(candidates, slice)
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i] > candidates[j] })
	if len(candidates) == 0 {
		return 0, nil, fmt.Errorf("core: no candidate slices")
	}
	for _, app := range apps {
		if len(perApp[app]) != len(candidates) {
			return 0, nil, fmt.Errorf("core: app %q measured under %d slices, want %d", app, len(perApp[app]), len(candidates))
		}
		for _, s := range candidates {
			if _, ok := perApp[app][s]; !ok {
				return 0, nil, fmt.Errorf("core: app %q missing slice %v", app, s)
			}
		}
	}

	// O_i: per-application optimum across candidates.
	optimum := make([]float64, len(apps))
	for i, app := range apps {
		vals := make([]float64, 0, len(candidates))
		for _, s := range candidates {
			vals = append(vals, perApp[app][s])
		}
		optimum[i] = metrics.Min(vals)
	}

	table = make([]ThresholdResult, 0, len(candidates))
	bestD := -1.0
	for _, s := range candidates {
		p := make([]float64, len(apps))
		for i, app := range apps {
			p[i] = perApp[app][s]
		}
		d, derr := metrics.Euclidean(optimum, p)
		if derr != nil {
			return 0, nil, derr
		}
		table = append(table, ThresholdResult{Slice: s, D: d})
		if bestD < 0 || d < bestD {
			bestD = d
			best = s
		}
	}
	return best, table, nil
}
