package experiment

import (
	"fmt"
	"hash/fnv"
	"strings"

	"atcsched/internal/cluster"
	"atcsched/internal/metrics"
	"atcsched/internal/report"
	"atcsched/internal/runner"
	"atcsched/internal/sim"
	"atcsched/internal/telemetry"
	"atcsched/internal/vmm"
	"atcsched/internal/workload"
)

// The head-to-head drives every cell through the same phase plan, in
// units of the 300 ms switch window: a warmup under the starting policy,
// the live flip (switch scenario only) plus a settling phase, then the
// measured phase all metrics are taken over.
const (
	dfrsWarmupWindows  = 6
	dfrsSettleWindows  = 2
	dfrsMeasureWindows = 8
)

// dfrsKinds are the head-to-head columns: the credit baseline, the
// paper's adaptive slices, pure fractional shares, and the hybrid.
var dfrsKinds = []cluster.Approach{cluster.CR, cluster.ATC, cluster.DFRS, cluster.ATCDFRS}

// dfrsScenario is one row of the scenario matrix.
type dfrsScenario struct {
	name    string
	faulted bool // inject the faults experiment's straggler + packet loss
	shards  int  // run on a sharded engine (0: serial)
	flip    bool // start under CR and live-switch to the cell's kind
}

var dfrsScenarios = []dfrsScenario{
	{name: "baseline"},
	{name: "faulted", faulted: true},
	{name: "sharded", shards: 2},
	{name: "switch", flip: true},
}

// dfrsCell is one measured (scenario, policy) cell.
type dfrsCell struct {
	spin float64 // mean spin latency over the measured phase (seconds)
	tput float64 // parallel BSP process rounds retired per virtual second
	fair float64 // Jain fairness index over parallel VMs' measured CPU time
}

// dfrsWorkload installs the shared tenant mix: two striped parallel
// virtual clusters running lu forever (the spin-latency victims) plus a
// web pair and a disk hog (the demand the fraction pool redistributes
// over).
func dfrsWorkload(s *cluster.Scenario, sc Scale, seed uint64) {
	nodes := s.Cfg.Nodes
	prof := workload.NPB("lu", workload.ClassB)
	prof.Iterations = iterCount(prof.Iterations, sc.IterScale)
	for vc := 0; vc < 2; vc++ {
		vms := s.VirtualCluster(fmt.Sprintf("vc%d", vc), nodes, sc.VCPUsPerVM, nil)
		s.RunBackground(prof, vms)
	}
	server := s.IndependentVM("web-srv", 0, 2, vmm.ClassNonParallel)
	client := s.IndependentVM("web-cli", 1%nodes, 2, vmm.ClassNonParallel)
	workload.NewWebJob(client, 0, server, 0, 20*sim.Millisecond, 2*sim.Millisecond, seed)
	disk := s.IndependentVM("disk", 0, 1, vmm.ClassNonParallel)
	workload.NewDiskJob(disk.VCPU(0))
}

// dfrsRunCell measures one (scenario, policy) cell.
func dfrsRunCell(sc Scale, seed uint64, scen dfrsScenario, kind cluster.Approach) (dfrsCell, error) {
	nodes := sc.NodeSteps[0]
	start := kind
	if scen.flip {
		start = cluster.CR
	}
	cfg := cluster.DefaultConfig(nodes, start)
	cfg.Seed = seed
	cfg.Shards = scen.shards
	if scen.faulted {
		cfg.Faults = faultSpec()
	}
	s, err := cluster.New(cfg)
	if err != nil {
		return dfrsCell{}, err
	}
	dfrsWorkload(s, sc, seed)

	s.GoFor(dfrsWarmupWindows * switchWindow)
	if scen.flip {
		f, err := cluster.SchedSpec{Kind: kind}.Factory()
		if err != nil {
			return dfrsCell{}, err
		}
		for _, n := range s.World.Nodes() {
			if err := n.SwapScheduler(f); err != nil {
				return dfrsCell{}, err
			}
		}
		s.ContinueFor(dfrsSettleWindows * switchWindow)
	}

	// Zero the measurement baselines at the phase boundary.
	var watch spinWatch
	watch.delta(s.World)
	parallel := s.World.GuestVMs()[:0:0]
	var rounds0 uint64
	run0 := map[int]sim.Time{}
	for _, vm := range s.World.GuestVMs() {
		if vm.Class() != vmm.ClassParallel {
			continue
		}
		parallel = append(parallel, vm)
		run0[vm.ID()] = vm.RunTime()
		for _, v := range vm.VCPUs() {
			rounds0 += v.Rounds()
		}
	}

	s.ContinueFor(dfrsMeasureWindows * switchWindow)

	cell := dfrsCell{spin: watch.delta(s.World).Seconds()}
	var rounds1 uint64
	var cpu []float64
	for _, vm := range parallel {
		cpu = append(cpu, (vm.RunTime() - run0[vm.ID()]).Seconds())
		for _, v := range vm.VCPUs() {
			rounds1 += v.Rounds()
		}
	}
	cell.tput = float64(rounds1-rounds0) / (dfrsMeasureWindows * switchWindow).Seconds()
	cell.fair = metrics.Jain(cpu)

	if scen.flip {
		for _, n := range s.World.Nodes() {
			if n.Swaps() != 1 {
				return dfrsCell{}, fmt.Errorf("dfrs: node %d swaps = %d, want 1", n.ID(), n.Swaps())
			}
		}
	}
	if errs := s.World.Audit(); len(errs) > 0 {
		return dfrsCell{}, fmt.Errorf("dfrs: audit under %s/%s: %v", scen.name, kind, errs[0])
	}
	return cell, nil
}

// dfrsShardCounts are the engine configurations the determinism table
// fingerprints: the serial engine plus the sharded family.
var dfrsShardCounts = []int{0, 1, 2, 4, 8}

// dfrsFingerprint runs a short measured scenario under kind on the given
// shard count with the scheduling tracer attached and returns the 64-bit
// FNV-1a of the rendered outcome — engine counters, per-VM statistics
// and the retained trace. Byte-identical runs hash identically.
func dfrsFingerprint(sc Scale, seed uint64, kind cluster.Approach, shards int) (string, error) {
	nodes := sc.NodeSteps[len(sc.NodeSteps)-1]
	cfg := cluster.DefaultConfig(nodes, kind)
	cfg.Seed = seed
	cfg.Shards = shards
	cfg.Faults = faultSpec()
	s, err := cluster.New(cfg)
	if err != nil {
		return "", err
	}
	tracer := vmm.NewTracer(timelineTraceCap)
	s.World.SetTracer(tracer)
	prof := workload.NPB("lu", workload.ClassA)
	prof.Iterations = iterCount(prof.Iterations, sc.IterScale)
	vms := s.VirtualCluster("vc0", nodes, 2, nil)
	s.RunParallel(prof, vms, 2, false)
	server := s.IndependentVM("web-srv", 0, 2, vmm.ClassNonParallel)
	client := s.IndependentVM("web-cli", 1%nodes, 2, vmm.ClassNonParallel)
	workload.NewWebJob(client, 0, server, 0, 20*sim.Millisecond, 2*sim.Millisecond, seed)
	if !s.Go(sc.Horizon) {
		return "", fmt.Errorf("dfrs: fingerprint run under %s shards=%d incomplete", kind, shards)
	}
	if errs := s.World.Audit(); len(errs) > 0 {
		return "", fmt.Errorf("dfrs: fingerprint audit under %s shards=%d: %v", kind, shards, errs[0])
	}

	var b strings.Builder
	fmt.Fprintf(&b, "now=%d executed=%d\n", int64(s.World.Now()), s.World.Executed())
	fmt.Fprintf(&b, "%s\n", s.FaultReport())
	for _, run := range s.Runs() {
		fmt.Fprintf(&b, "run rounds=%d times=%v\n", run.Rounds(), run.Times())
	}
	for _, vm := range s.World.VMs() {
		fmt.Fprintf(&b, "vm=%s sent=%d recv=%d ctx=%d run=%d wait=%d spin=%d\n",
			vm.Name(), vm.PacketsSent(), vm.PacketsReceived(), vm.CtxSwitches(),
			int64(vm.RunTime()), int64(vm.WaitTime()), int64(vm.SpinWaitTotal()))
	}
	fmt.Fprintf(&b, "trace dropped=%d\n", s.World.TraceDropped())
	for _, r := range s.World.TraceRecords() {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	h := fnv.New64a()
	h.Write([]byte(b.String()))
	return fmt.Sprintf("%016x", h.Sum64()), nil
}

// dfrsShowcaseTraceCap keeps the showcase's scheduling trace — and with
// it the exported timeline artifact — small enough to commit as a golden
// file; overflow shows up only as the drop counter.
const dfrsShowcaseTraceCap = 2000

// DFRSShowcase runs a short instrumented hybrid run — the fractional
// plane redistributing around live parallel load — with the telemetry
// plane and scheduling tracer attached, for the timeline/JSONL exports:
// vm_fraction series and redistribute spans from the DFRS side, spin
// episodes and slice changes from the ATC side, on one sim-time axis.
// The tenant mix is deliberately tiny (one 2×2 lu cluster plus a web
// pair and a disk hog on two nodes) so the artifacts stay golden-sized.
func DFRSShowcase(sc Scale, seed uint64) (*TimelineResult, error) {
	cfg := cluster.DefaultConfig(2, cluster.ATCDFRS)
	cfg.Seed = seed
	plane := telemetry.New(telemetry.Options{})
	cfg.Telemetry = plane
	s, err := cluster.New(cfg)
	if err != nil {
		return nil, err
	}
	s.World.SetTracer(vmm.NewTracer(dfrsShowcaseTraceCap))
	prof := workload.NPB("lu", workload.ClassA)
	prof.Iterations = iterCount(prof.Iterations, sc.IterScale)
	vms := s.VirtualCluster("vc0", 2, 2, nil)
	s.RunBackground(prof, vms)
	server := s.IndependentVM("web-srv", 0, 1, vmm.ClassNonParallel)
	client := s.IndependentVM("web-cli", 1, 1, vmm.ClassNonParallel)
	workload.NewWebJob(client, 0, server, 0, 20*sim.Millisecond, 2*sim.Millisecond, seed)
	disk := s.IndependentVM("disk", 0, 1, vmm.ClassNonParallel)
	workload.NewDiskJob(disk.VCPU(0))
	s.GoFor(2 * switchWindow)
	if errs := s.World.Audit(); len(errs) > 0 {
		return nil, fmt.Errorf("dfrs showcase: audit: %v", errs[0])
	}
	s.FinalizeTelemetry()
	return &TimelineResult{Events: s.World.TelemetryEvents(), Plane: plane}, nil
}

func init() {
	register(Experiment{
		ID: "dfrs",
		Title: "Extension — fractional-share head-to-head: CR vs ATC vs DFRS vs " +
			"ATC×DFRS across baseline, faulted, sharded and live-switch scenarios",
		Run: func(sc Scale, seed uint64) ([]*report.Table, error) {
			t := report.New(
				"spin latency, parallel throughput and CPU-time fairness per (scenario, policy) cell",
				"Scenario", "Policy", "Spin mean", "Rounds/s", "Jain CPU")
			cells, err := runner.Grid(len(dfrsScenarios), len(dfrsKinds),
				func(r, c int) (dfrsCell, error) {
					return dfrsRunCell(sc, seed, dfrsScenarios[r], dfrsKinds[c])
				})
			if err != nil {
				return nil, err
			}
			for r, scen := range dfrsScenarios {
				for c, kind := range dfrsKinds {
					cell := cells[r][c]
					t.Add(scen.name, string(kind),
						fmt.Sprintf("%.0fµs", cell.spin*1e6),
						fmt.Sprintf("%.1f", cell.tput),
						fmt.Sprintf("%.3f", cell.fair))
				}
			}
			t.AddNote("every cell runs the same tenant mix (2 striped lu clusters + web pair + disk hog) "+
				"for %d measured windows of %v after warmup; the switch rows start under CR and flip live.",
				dfrsMeasureWindows, switchWindow)
			t.AddNote("DFRS gives non-parallel tenants demand-driven CPU fractions; the hybrid adds " +
				"ATC's adaptive slices for parallel tenants on top.")

			ft := report.New(
				"determinism fingerprints (FNV-1a 64) of a traced DFRS-family run per engine configuration",
				"Policy", "serial", "shards=1", "shards=2", "shards=4", "shards=8")
			for _, kind := range []cluster.Approach{cluster.DFRS, cluster.ATCDFRS} {
				kind := kind
				hashes, err := runner.Map(len(dfrsShardCounts), func(i int) (string, error) {
					return dfrsFingerprint(sc, seed, kind, dfrsShardCounts[i])
				})
				if err != nil {
					return nil, err
				}
				for i := 2; i < len(hashes); i++ {
					if hashes[i] != hashes[1] {
						return nil, fmt.Errorf("dfrs: %s fingerprint diverged: shards=%d %s vs shards=1 %s",
							kind, dfrsShardCounts[i], hashes[i], hashes[1])
					}
				}
				ft.Add(append([]string{string(kind)}, hashes...)...)
			}
			ft.AddNote("shards>=1 must be byte-identical (enforced; a mismatch fails the experiment); " +
				"the serial engine is a separate fingerprint family — cross-node deliveries sequence " +
				"at lookahead barriers (see DESIGN.md).")
			return []*report.Table{t, ft}, nil
		},
	})
}
