package core

import (
	"fmt"
	"sort"

	"atcsched/internal/sim"
)

// TrackedVMs lists the VM IDs the controller currently holds history
// for, sorted ascending. Unlike History, it never creates state.
func (c *Controller) TrackedVMs() []int {
	ids := make([]int, 0, len(c.vms))
	for id := range c.vms {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// ExportVM returns copies of vmID's latency and slice windows (oldest
// first) plus the observed-period count, without creating state for an
// unknown VM: ok is false when the controller has never seen vmID.
func (c *Controller) ExportVM(vmID int) (lat, slice []sim.Time, observed int, ok bool) {
	st, found := c.vms[vmID]
	if !found {
		return nil, nil, 0, false
	}
	return append([]sim.Time(nil), st.lat...),
		append([]sim.Time(nil), st.slice...),
		st.observed, true
}

// ImportVM installs a previously-exported history for vmID, replacing
// any existing state. Both windows must match the controller's
// configured Window length; slices must be positive and latencies
// non-negative so a corrupt snapshot cannot smuggle in values Observe
// would have rejected.
func (c *Controller) ImportVM(vmID int, lat, slice []sim.Time, observed int) error {
	w := c.cfg.Window
	if len(lat) != w || len(slice) != w {
		return fmt.Errorf("core: import vm %d: window length lat=%d slice=%d, want %d",
			vmID, len(lat), len(slice), w)
	}
	if observed < 0 {
		return fmt.Errorf("core: import vm %d: negative observed %d", vmID, observed)
	}
	for i := 0; i < w; i++ {
		if lat[i] < 0 {
			return fmt.Errorf("core: import vm %d: negative latency %v at index %d", vmID, lat[i], i)
		}
		if slice[i] <= 0 {
			return fmt.Errorf("core: import vm %d: non-positive slice %v at index %d", vmID, slice[i], i)
		}
	}
	c.vms[vmID] = &vmState{
		lat:      append([]sim.Time(nil), lat...),
		slice:    append([]sim.Time(nil), slice...),
		observed: observed,
	}
	return nil
}
