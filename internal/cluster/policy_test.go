package cluster

import (
	"strings"
	"testing"

	"atcsched/internal/core"
	"atcsched/internal/sched/atc"
	"atcsched/internal/sched/registry"
	"atcsched/internal/sim"
)

func TestNodePoliciesHeterogeneousCluster(t *testing.T) {
	cfg := DefaultConfig(3, CR)
	cfg.Node.PCPUs = 2
	cfg.Node.Dom0VCPUs = 1
	cfg.NodePolicies = map[int]SchedSpec{
		1: {Kind: ATC},
		2: {Kind: CS},
	}
	s := MustNew(cfg)
	for i, want := range []string{"CR", "ATC", "CS"} {
		if got := s.World.Node(i).Scheduler().Name(); got != want {
			t.Errorf("node %d scheduler = %s, want %s", i, got, want)
		}
	}
}

func TestNodePolicyErrors(t *testing.T) {
	cfg := DefaultConfig(2, CR)
	cfg.NodePolicies = map[int]SchedSpec{5: {Kind: ATC}}
	if _, err := New(cfg); err == nil {
		t.Error("out-of-range node policy accepted")
	}
	cfg.NodePolicies = map[int]SchedSpec{0: {Kind: Approach("XX")}}
	if _, err := New(cfg); err == nil {
		t.Error("unknown node policy kind accepted")
	}
}

// TestUnknownApproachErrorListsKinds pins the cluster-layer error
// format: the message enumerates every registered policy.
func TestUnknownApproachErrorListsKinds(t *testing.T) {
	_, err := New(DefaultConfig(1, Approach("XX")))
	if err == nil {
		t.Fatal("unknown approach accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"XX"`) {
		t.Errorf("error %q does not quote the bad kind", msg)
	}
	for _, k := range registry.Kinds() {
		if !strings.Contains(msg, k) {
			t.Errorf("error %q does not list valid kind %s", msg, k)
		}
	}
}

// TestATCPartialOptionsPreserved is the regression test for the old
// cluster ATC branch, which silently replaced a user-supplied options
// struct with the defaults whenever Credit.TimeSlice was zero — a
// partial override (just α here) must survive with defaults filled in.
func TestATCPartialOptionsPreserved(t *testing.T) {
	cfg := DefaultConfig(1, ATC)
	cfg.Sched.Options = atc.Options{Control: core.Config{Alpha: 9 * sim.Millisecond}}
	s := MustNew(cfg)
	got := s.World.Node(0).Scheduler().(*atc.Scheduler).Controller().Config()
	if got.Alpha != 9*sim.Millisecond {
		t.Errorf("user α discarded: %v", got.Alpha)
	}
	def := core.DefaultConfig()
	if got.Default != def.Default || got.MinThreshold != def.MinThreshold || got.Window != def.Window {
		t.Errorf("defaults lost: %+v", got)
	}
}

// TestApproachesMatchRegistry keeps the facade lists and the registry in
// sync: the compared set is ordered and HY is the only extension.
func TestApproachesMatchRegistry(t *testing.T) {
	want := []Approach{CR, BS, CS, DSS, VS, ATC}
	got := Approaches()
	if len(got) != len(want) {
		t.Fatalf("Approaches() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Approaches() = %v, want %v", got, want)
		}
	}
	// Extensions follow the compared set in sorted-kind order.
	ext := ExtendedApproaches()
	wantExt := append(append([]Approach{}, want...), ATCDFRS, DFRS, HY)
	if len(ext) != len(wantExt) {
		t.Fatalf("ExtendedApproaches() = %v, want %v", ext, wantExt)
	}
	for i := range wantExt {
		if ext[i] != wantExt[i] {
			t.Fatalf("ExtendedApproaches() = %v, want %v", ext, wantExt)
		}
	}
}
