package vmm

import (
	"bytes"
	"strings"
	"testing"

	"atcsched/internal/sim"
)

func TestTracerCapturesLifecycle(t *testing.T) {
	w := testWorld(t, 1, 1, 5*sim.Millisecond)
	tr := NewTracer(0)
	w.SetTracer(tr)
	if w.Tracer() != tr {
		t.Fatal("tracer not attached")
	}
	vm := w.Node(0).NewVM("tr", ClassParallel, 1, 0, 1)
	vm.VCPU(0).SetProcess(&seqProc{actions: []Action{
		Compute(12 * sim.Millisecond), // spans two 5ms slices → preempts
		Sleep(2 * sim.Millisecond),    // block + wake
		Compute(sim.Millisecond),
	}}, nil)
	w.Start()
	w.RunUntil(sim.Second)

	var dispatches, preempts, blocks, wakes int
	for _, r := range tr.Records() {
		switch r.Kind {
		case TraceDispatch:
			dispatches++
		case TracePreempt:
			preempts++
		case TraceBlock:
			blocks++
		case TraceWake:
			wakes++
		}
		if r.Node != 0 {
			t.Errorf("record on node %d", r.Node)
		}
	}
	if dispatches < 3 {
		t.Errorf("dispatches = %d, want >= 3", dispatches)
	}
	if preempts < 2 {
		t.Errorf("preempts = %d, want >= 2 (12ms over 5ms slices)", preempts)
	}
	if blocks < 2 || wakes < 1 {
		t.Errorf("blocks = %d wakes = %d", blocks, wakes)
	}
	// Records are time-ordered.
	recs := tr.Records()
	for i := 1; i < len(recs); i++ {
		if recs[i].At < recs[i-1].At {
			t.Fatal("records out of order")
		}
	}
}

func TestTracerRingBound(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.add(TraceRecord{At: sim.Time(i), Kind: TraceDispatch, VM: "x"})
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Errorf("Dropped = %d, want 6", tr.Dropped())
	}
	recs := tr.Records()
	if recs[0].At != 6 || recs[3].At != 9 {
		t.Errorf("ring kept %v..%v, want 6..9", recs[0].At, recs[3].At)
	}
}

func TestTracerOutputs(t *testing.T) {
	tr := NewTracer(0)
	tr.add(TraceRecord{At: sim.Millisecond, Kind: TraceDispatch, Node: 0, PCPU: 2, VM: "vm0", VCPU: 1})
	tr.add(TraceRecord{At: 2 * sim.Millisecond, Kind: TraceSliceChange, Node: 0, PCPU: -1, VM: "vm0", VCPU: -1, Arg: 6 * sim.Millisecond})
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "dispatch") || !strings.Contains(out, "slice=6.000ms") {
		t.Errorf("text output:\n%s", out)
	}
	buf.Reset()
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if lines[0] != "at_ns,kind,node,pcpu,vm,vcpu,arg_ns" {
		t.Errorf("csv header = %q", lines[0])
	}
	if !strings.Contains(lines[2], "slice") || !strings.Contains(lines[2], "6000000") {
		t.Errorf("csv slice row = %q", lines[2])
	}
}

func TestTracerSummary(t *testing.T) {
	tr := NewTracer(2)
	tr.add(TraceRecord{Kind: TraceDispatch, VM: "a"})
	tr.add(TraceRecord{Kind: TraceBlock, VM: "a"})
	tr.add(TraceRecord{Kind: TraceWake, VM: "b"})
	s := tr.Summary()
	if !strings.Contains(s, "b") || !strings.Contains(s, "dropped") {
		t.Errorf("summary:\n%s", s)
	}
}

func TestTraceKindStrings(t *testing.T) {
	for _, k := range []TraceKind{TraceDispatch, TracePreempt, TraceBlock, TraceWake, TraceSliceChange, TraceKind(42)} {
		if k.String() == "" {
			t.Error("empty kind name")
		}
	}
}

func TestNoTracerIsCheap(t *testing.T) {
	// Smoke: a run without a tracer must not record or panic.
	w := testWorld(t, 1, 1, 5*sim.Millisecond)
	vm := w.Node(0).NewVM("x", ClassParallel, 1, 0, 1)
	vm.VCPU(0).SetProcess(&seqProc{actions: []Action{Compute(sim.Millisecond)}}, nil)
	w.Start()
	w.RunUntil(100 * sim.Millisecond)
	if w.Tracer() != nil {
		t.Fatal("unexpected tracer")
	}
}

// periodSpy wraps rrSched and records when OnPeriod fires.
type periodSpy struct {
	rrSched
	eng   *sim.Engine
	fires *[]sim.Time
}

func (s *periodSpy) OnPeriod(n *Node) {
	*s.fires = append(*s.fires, s.eng.Now())
}

func TestNodeTimerPhasesStaggered(t *testing.T) {
	// Two nodes' period timers must not fire at identical instants
	// (phase-locked timers let gang dispatch accidentally co-schedule
	// virtual clusters across nodes). Observe the actual OnPeriod times.
	cfg := DefaultNodeConfig()
	cfg.PCPUs = 1
	cfg.Dom0VCPUs = 1
	fires := make([][]sim.Time, 2)
	w, err := NewWorld(2, cfg, defaultNet(), func(n *Node) Scheduler {
		return &periodSpy{rrSched: rrSched{slice: 5 * sim.Millisecond}, eng: n.Engine(), fires: &fires[n.ID()]}
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Start()
	w.RunUntil(200 * sim.Millisecond)
	if len(fires[0]) < 3 || len(fires[1]) < 3 {
		t.Fatalf("periods fired %d/%d times", len(fires[0]), len(fires[1]))
	}
	// Skip the synchronized start-time call (index 0), then require no
	// shared instants.
	seen := map[sim.Time]bool{}
	for _, at := range fires[0][1:] {
		seen[at] = true
	}
	for _, at := range fires[1][1:] {
		if seen[at] {
			t.Fatalf("nodes share a period instant %v — timers phase-locked", at)
		}
	}
}
