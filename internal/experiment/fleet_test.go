package experiment

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// TestFleetSmallRuns drives the fleet control-plane sweep at small
// scale and checks its shape: one row per (nodes, shards) cell, every
// cell committing decisions, and the measurements appended to the
// BENCH trajectory with a nonzero p99 decision latency.
func TestFleetSmallRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the hollow fleet sweep")
	}
	old := benchScalePath
	benchScalePath = filepath.Join(t.TempDir(), "BENCH_scale.json")
	defer func() { benchScalePath = old }()

	e, err := ByID("fleet")
	if err != nil {
		t.Fatal(err)
	}
	if !e.Bench {
		t.Error("fleet experiment must be marked Bench (wall-clock timings)")
	}
	tables, err := e.Run(Small, 1)
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	nodeSteps, shardSteps := fleetLadder(Small)
	if want := len(nodeSteps) * len(shardSteps); len(tb.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(tb.Rows), want)
	}
	for _, row := range tb.Rows {
		periods, _ := strconv.Atoi(row[2])
		decisions, _ := strconv.Atoi(row[3])
		if periods != fleetPeriods {
			t.Errorf("nodes=%s shards=%s: periods = %d, want %d", row[0], row[1], periods, fleetPeriods)
		}
		// Hollow nodes report every period once warmed up; expect at
		// least half the ideal nodes*periods decision count.
		n, _ := strconv.Atoi(row[0])
		if decisions < n*fleetPeriods/2 {
			t.Errorf("nodes=%s shards=%s: decisions = %d, want >= %d", row[0], row[1], decisions, n*fleetPeriods/2)
		}
	}

	raw, err := os.ReadFile(benchScalePath)
	if err != nil {
		t.Fatal(err)
	}
	var file benchScaleFile
	if err := json.Unmarshal(raw, &file); err != nil {
		t.Fatal(err)
	}
	if len(file.Runs) != 1 || len(file.Runs[0].Fleet) != len(tb.Rows) {
		t.Fatalf("bench file: %d runs, fleet cells = %v", len(file.Runs), file.Runs)
	}
	for _, c := range file.Runs[0].Fleet {
		if c.P99DecisionUS <= 0 {
			t.Errorf("nodes=%d shards=%d: p99 decision latency = %v, want > 0", c.Nodes, c.FleetShards, c.P99DecisionUS)
		}
		if c.Decisions == 0 || c.WallS <= 0 || c.SimS <= 0 {
			t.Errorf("nodes=%d shards=%d: incomplete cell %+v", c.Nodes, c.FleetShards, c)
		}
	}
}
