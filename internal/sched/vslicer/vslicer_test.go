package vslicer_test

import (
	"testing"

	"atcsched/internal/sched/vslicer"
	"atcsched/internal/sim"
	"atcsched/internal/vmm"
	"atcsched/internal/vmmtest"
)

func TestMicroSliceForLatencySensitiveVMs(t *testing.T) {
	opts := vslicer.DefaultOptions()
	w := vmmtest.World(1, 1, vslicer.Factory(opts))
	node := w.Node(0)
	ls := node.NewVM("web", vmm.ClassNonParallel, 1, 0, 1)
	ls.LatencySensitive = true
	li := node.NewVM("batch", vmm.ClassNonParallel, 1, 0, 1)
	s := node.Scheduler().(*vslicer.Scheduler)
	if got := s.Slice(ls.VCPU(0)); got != opts.MicroSlice {
		t.Errorf("LS slice = %v, want %v", got, opts.MicroSlice)
	}
	if got := s.Slice(li.VCPU(0)); got != opts.Credit.TimeSlice {
		t.Errorf("LI slice = %v, want default", got)
	}
}

func TestMicroslicingImprovesLatencyUnderLoad(t *testing.T) {
	// A latency-sensitive sleeper competing with two hogs: vSlicer gives
	// it shorter queueing delays than stock credit... measured as the
	// mean delay between wake and its handler running.
	measure := func(sensitive bool) sim.Time {
		w := vmmtest.World(1, 1, vslicer.Factory(vslicer.DefaultOptions()))
		node := w.Node(0)
		lsVM := node.NewVM("ls", vmm.ClassNonParallel, 1, 0, 1)
		lsVM.LatencySensitive = sensitive
		// Two always-runnable hogs keep the PCPU saturated; slices govern
		// how long the sleeper waits behind them once its BOOST is spent.
		for i := 0; i < 2; i++ {
			hog := node.NewVM("hog", vmm.ClassNonParallel, 1, 0, 1)
			hog.LatencySensitive = false
			vmmtest.Loop(hog.VCPU(0), vmm.Compute(sim.Second))
		}
		var total sim.Time
		var count int
		var at sim.Time
		vmmtest.Loop(lsVM.VCPU(0),
			vmm.Action{Kind: vmm.ActSleep, Dur: 3100 * sim.Microsecond, Then: func() { at = w.Eng.Now() }},
			vmm.Action{Kind: vmm.ActCompute, Work: 2 * sim.Millisecond, Then: func() {
				total += w.Eng.Now() - at
				count++
			}},
		)
		w.Start()
		w.RunUntil(3 * sim.Second)
		if count == 0 {
			t.Fatal("sleeper never ran")
		}
		return total / sim.Time(count)
	}
	_ = measure
	// The LS VM's own 2 ms handler spans its 1 ms microslice, so it gets
	// preempted and requeued behind hogs running *their* slices; under
	// stock treatment (not sensitive) the same handler runs in one 30 ms
	// slice but waits longer behind OVER hogs after boost expiry. The
	// net effect asserted here is modest: microslicing must not be worse.
	ls := measure(true)
	li := measure(false)
	if ls > 2*li {
		t.Errorf("LS latency %v far worse than LI %v", ls, li)
	}
}

func TestValidation(t *testing.T) {
	w := vmmtest.World(1, 1, vslicer.Factory(vslicer.DefaultOptions()))
	bad := vslicer.DefaultOptions()
	bad.MicroSlice = bad.Credit.TimeSlice * 2
	defer func() {
		if recover() == nil {
			t.Error("MicroSlice above default accepted")
		}
	}()
	vslicer.New(w.Node(0), bad)
}

func TestName(t *testing.T) {
	w := vmmtest.World(1, 1, vslicer.Factory(vslicer.DefaultOptions()))
	if got := w.Node(0).Scheduler().Name(); got != "VS" {
		t.Errorf("Name = %q", got)
	}
}
