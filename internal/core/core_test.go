package core

import (
	"testing"
	"testing/quick"

	"atcsched/internal/sim"
)

func cfg() Config { return DefaultConfig() }

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{},
		{Default: 30 * sim.Millisecond, MinThreshold: 0, Alpha: 2, Beta: 1, Window: 3},
		{Default: sim.Millisecond, MinThreshold: 2 * sim.Millisecond, Alpha: 2, Beta: 1, Window: 3},
		{Default: 30 * sim.Millisecond, MinThreshold: sim.Millisecond, Alpha: 1, Beta: 2, Window: 3},
		{Default: 30 * sim.Millisecond, MinThreshold: sim.Millisecond, Alpha: 2, Beta: 1, Window: 1},
		{Default: 30 * sim.Millisecond, MinThreshold: sim.Millisecond, Alpha: 0, Beta: 0, Window: 3},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestNewControllerPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	NewController(Config{})
}

func TestColdStartStaysAtDefault(t *testing.T) {
	c := NewController(cfg())
	// No observations at all: zero-latency window → default.
	if got := c.ComputeSlice(1); got != cfg().Default {
		t.Errorf("cold slice = %v, want default", got)
	}
}

func TestRisingLatencyShortensByAlpha(t *testing.T) {
	c := NewController(cfg())
	c.Observe(1, 1*sim.Millisecond, 30*sim.Millisecond)
	c.Observe(1, 2*sim.Millisecond, 30*sim.Millisecond)
	c.Observe(1, 3*sim.Millisecond, 30*sim.Millisecond)
	if got := c.ComputeSlice(1); got != 24*sim.Millisecond {
		t.Errorf("slice = %v, want 24ms (30ms - α)", got)
	}
}

func TestShorteningConvergesToThreshold(t *testing.T) {
	c := NewController(cfg())
	slice := cfg().Default
	lat := sim.Millisecond
	// Keep latency rising forever; the slice must walk down by α then β
	// and stop exactly at the minimum threshold.
	var prev sim.Time = -1
	for i := 0; i < 200; i++ {
		lat += sim.Millisecond
		c.Observe(1, lat, slice)
		next := c.ComputeSlice(1)
		if next > slice {
			t.Fatalf("slice grew under rising latency: %v -> %v", slice, next)
		}
		if next < cfg().MinThreshold {
			t.Fatalf("slice %v fell below threshold", next)
		}
		prev = slice
		slice = next
	}
	if slice != cfg().MinThreshold {
		t.Errorf("converged to %v, want threshold %v (prev %v)", slice, cfg().MinThreshold, prev)
	}
}

func TestAlphaThenBetaSteps(t *testing.T) {
	c := NewController(cfg())
	slice := cfg().Default
	lat := sim.Millisecond
	sawAlpha, sawBeta := false, false
	for i := 0; i < 200 && slice > cfg().MinThreshold; i++ {
		lat += sim.Millisecond
		c.Observe(1, lat, slice)
		next := c.ComputeSlice(1)
		switch slice - next {
		case cfg().Alpha:
			sawAlpha = true
			if sawBeta {
				t.Fatal("α step after β step")
			}
		case cfg().Beta:
			sawBeta = true
		case 0:
		default:
			t.Fatalf("unexpected step %v", slice-next)
		}
		slice = next
	}
	if !sawAlpha || !sawBeta {
		t.Errorf("sawAlpha=%v sawBeta=%v, want both", sawAlpha, sawBeta)
	}
}

func TestFallingLatencyDueToShorterSliceKeepsShortening(t *testing.T) {
	c := NewController(cfg())
	// Latency monotonically falls while the slice also fell: the paper
	// attributes the improvement to the shorter slice and keeps
	// shortening (Algorithm 1 line 1, second disjunct).
	c.Observe(1, 9*sim.Millisecond, 30*sim.Millisecond)
	c.Observe(1, 6*sim.Millisecond, 24*sim.Millisecond)
	c.Observe(1, 4*sim.Millisecond, 18*sim.Millisecond)
	if got := c.ComputeSlice(1); got != 12*sim.Millisecond {
		t.Errorf("slice = %v, want 12ms", got)
	}
}

func TestFallingLatencyWithConstantSliceHolds(t *testing.T) {
	c := NewController(cfg())
	// Latency falls but the slice did not change: no attribution, hold.
	c.Observe(1, 9*sim.Millisecond, 18*sim.Millisecond)
	c.Observe(1, 6*sim.Millisecond, 18*sim.Millisecond)
	c.Observe(1, 4*sim.Millisecond, 18*sim.Millisecond)
	if got := c.ComputeSlice(1); got != 18*sim.Millisecond {
		t.Errorf("slice = %v, want hold at 18ms", got)
	}
}

func TestZeroLatencyWindowRelaxesTowardDefault(t *testing.T) {
	c := NewController(cfg())
	// Three zero periods at a short slice: grow by α.
	for i := 0; i < 3; i++ {
		c.Observe(1, 0, 12*sim.Millisecond)
	}
	if got := c.ComputeSlice(1); got != 18*sim.Millisecond {
		t.Errorf("slice = %v, want 18ms (+α)", got)
	}
	// Near the default: snap to it.
	c2 := NewController(cfg())
	for i := 0; i < 3; i++ {
		c2.Observe(1, 0, 26*sim.Millisecond)
	}
	if got := c2.ComputeSlice(1); got != cfg().Default {
		t.Errorf("slice = %v, want default", got)
	}
}

func TestZeroLatencyRecoveryFromThreshold(t *testing.T) {
	c := NewController(cfg())
	slice := cfg().MinThreshold
	for i := 0; i < 50; i++ {
		c.Observe(1, 0, slice)
		slice = c.ComputeSlice(1)
	}
	if slice != cfg().Default {
		t.Errorf("recovered to %v, want default", slice)
	}
}

func TestSliceNeverExceedsDefaultNorFallsBelowThreshold(t *testing.T) {
	f := func(lats []uint32) bool {
		c := NewController(cfg())
		slice := cfg().Default
		for _, l := range lats {
			c.Observe(1, sim.Time(l%50)*sim.Millisecond/10, slice)
			slice = c.ComputeSlice(1)
			if slice < cfg().MinThreshold || slice > cfg().Default {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestObservePanics(t *testing.T) {
	c := NewController(cfg())
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative latency accepted")
			}
		}()
		c.Observe(1, -1, sim.Millisecond)
	}()
	defer func() {
		if recover() == nil {
			t.Error("zero slice accepted")
		}
	}()
	c.Observe(1, 0, 0)
}

func TestForget(t *testing.T) {
	c := NewController(cfg())
	c.Observe(1, 5*sim.Millisecond, 12*sim.Millisecond)
	c.Forget(1)
	lat, slice := c.History(1)
	for i := range lat {
		if lat[i] != 0 || slice[i] != cfg().Default {
			t.Fatal("history not reset after Forget")
		}
	}
}

func TestHistoryOrder(t *testing.T) {
	c := NewController(cfg())
	c.Observe(1, 1*sim.Millisecond, 30*sim.Millisecond)
	c.Observe(1, 2*sim.Millisecond, 24*sim.Millisecond)
	c.Observe(1, 3*sim.Millisecond, 18*sim.Millisecond)
	c.Observe(1, 4*sim.Millisecond, 12*sim.Millisecond)
	lat, slice := c.History(1)
	wantLat := []sim.Time{2 * sim.Millisecond, 3 * sim.Millisecond, 4 * sim.Millisecond}
	wantSlice := []sim.Time{24 * sim.Millisecond, 18 * sim.Millisecond, 12 * sim.Millisecond}
	for i := range wantLat {
		if lat[i] != wantLat[i] || slice[i] != wantSlice[i] {
			t.Fatalf("history = %v/%v, want %v/%v", lat, slice, wantLat, wantSlice)
		}
	}
}

func TestNodeSlicesMinimumAcrossParallelVMs(t *testing.T) {
	c := NewController(cfg())
	// VM 1: high rising latency → wants to shorten. VM 2: idle.
	c.Observe(1, 1*sim.Millisecond, 30*sim.Millisecond)
	c.Observe(1, 2*sim.Millisecond, 30*sim.Millisecond)
	c.Observe(1, 3*sim.Millisecond, 30*sim.Millisecond)
	for i := 0; i < 3; i++ {
		c.Observe(2, 2*sim.Millisecond, 30*sim.Millisecond)
	}
	out := c.NodeSlices([]VMInfo{
		{ID: 1, Parallel: true},
		{ID: 2, Parallel: true},
		{ID: 3, Parallel: false},
		{ID: 4, Parallel: false, AdminSlice: 6 * sim.Millisecond},
	})
	if out[1] != 24*sim.Millisecond || out[2] != 24*sim.Millisecond {
		t.Errorf("parallel slices = %v/%v, want both 24ms (the minimum)", out[1], out[2])
	}
	if out[3] != cfg().Default {
		t.Errorf("non-parallel default slice = %v", out[3])
	}
	if out[4] != 6*sim.Millisecond {
		t.Errorf("admin slice = %v, want 6ms", out[4])
	}
}

func TestNodeSlicesNoParallelVMs(t *testing.T) {
	c := NewController(cfg())
	out := c.NodeSlices([]VMInfo{{ID: 1}, {ID: 2, AdminSlice: 6 * sim.Millisecond}})
	if out[1] != cfg().Default {
		t.Errorf("slice = %v, want default", out[1])
	}
	// The paper sets everything to default when no parallel VM exists;
	// the admin interface still applies to non-parallel VMs.
	if out[2] != 6*sim.Millisecond {
		t.Errorf("slice = %v, want admin 6ms", out[2])
	}
}

func TestOptimizeThresholdPaperShape(t *testing.T) {
	ms := func(f float64) sim.Time { return sim.Time(f * float64(sim.Millisecond)) }
	// Synthetic per-app curves with minima spread around 0.2-0.4 ms so
	// that 0.3 ms wins overall — the paper's conclusion.
	perApp := map[string]map[sim.Time]float64{
		"lu": {ms(0.5): 0.30, ms(0.4): 0.28, ms(0.3): 0.27, ms(0.2): 0.26, ms(0.1): 0.30, ms(0.03): 0.40},
		"is": {ms(0.5): 0.20, ms(0.4): 0.18, ms(0.3): 0.17, ms(0.2): 0.18, ms(0.1): 0.22, ms(0.03): 0.30},
		"sp": {ms(0.5): 0.40, ms(0.4): 0.38, ms(0.3): 0.37, ms(0.2): 0.38, ms(0.1): 0.41, ms(0.03): 0.50},
		"bt": {ms(0.5): 0.45, ms(0.4): 0.44, ms(0.3): 0.43, ms(0.2): 0.44, ms(0.1): 0.47, ms(0.03): 0.55},
		"mg": {ms(0.5): 0.35, ms(0.4): 0.33, ms(0.3): 0.32, ms(0.2): 0.33, ms(0.1): 0.36, ms(0.03): 0.45},
		"cg": {ms(0.5): 0.25, ms(0.4): 0.24, ms(0.3): 0.23, ms(0.2): 0.24, ms(0.1): 0.28, ms(0.03): 0.38},
	}
	best, table, err := OptimizeThreshold(perApp)
	if err != nil {
		t.Fatal(err)
	}
	if best != ms(0.3) {
		t.Errorf("best = %v, want 0.3ms", best)
	}
	if len(table) != 6 {
		t.Fatalf("table size = %d", len(table))
	}
	// Table sorted by descending slice.
	for i := 1; i < len(table); i++ {
		if table[i].Slice >= table[i-1].Slice {
			t.Error("table not sorted by descending slice")
		}
	}
	// D must be 0 when an app set dominates... here just check bounds.
	for _, r := range table {
		if r.D < 0 {
			t.Errorf("negative distance %v", r.D)
		}
	}
}

func TestOptimizeThresholdErrors(t *testing.T) {
	if _, _, err := OptimizeThreshold(nil); err == nil {
		t.Error("empty input accepted")
	}
	perApp := map[string]map[sim.Time]float64{
		"a": {sim.Millisecond: 1, 2 * sim.Millisecond: 1},
		"b": {sim.Millisecond: 1},
	}
	if _, _, err := OptimizeThreshold(perApp); err == nil {
		t.Error("inconsistent candidate sets accepted")
	}
	perApp2 := map[string]map[sim.Time]float64{
		"a": {sim.Millisecond: 1, 2 * sim.Millisecond: 1},
		"b": {sim.Millisecond: 1, 3 * sim.Millisecond: 1},
	}
	if _, _, err := OptimizeThreshold(perApp2); err == nil {
		t.Error("mismatched candidates accepted")
	}
}

// Property: NodeSlices assigns every parallel VM the same value, equal to
// the min of their ComputeSlice results, and never touches the window
// state (ComputeSlice is pure).
func TestNodeSlicesUniformMinProperty(t *testing.T) {
	f := func(latsRaw [][3]uint16, nVMs uint8) bool {
		n := int(nVMs%6) + 1
		if len(latsRaw) < n {
			return true
		}
		c := NewController(cfg())
		var infos []VMInfo
		for id := 0; id < n; id++ {
			slice := cfg().Default
			for _, l := range latsRaw[id] {
				c.Observe(id, sim.Time(l)*sim.Microsecond, slice)
				slice = c.ComputeSlice(id)
			}
			infos = append(infos, VMInfo{ID: id, Parallel: true})
		}
		want := sim.Time(0)
		for id := 0; id < n; id++ {
			s := c.ComputeSlice(id)
			if want == 0 || s < want {
				want = s
			}
		}
		out := c.NodeSlices(infos)
		for id := 0; id < n; id++ {
			if out[id] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
