package atcsched

// One benchmark per paper artifact: each regenerates the corresponding
// table/figure at the "small" scale and reports simulator throughput
// alongside the standard testing.B metrics, so
//
//	go test -bench=. -benchmem
//
// exercises the entire reproduction pipeline. The ablation benchmarks at
// the bottom quantify the design choices DESIGN.md calls out (minimum
// slice clamp, node-level minimum, boost, stealing).

import (
	"fmt"
	"testing"
	"time"

	"atcsched/internal/cluster"
	"atcsched/internal/experiment"
	"atcsched/internal/rng"
	"atcsched/internal/sched/atc"
	"atcsched/internal/sim"
	"atcsched/internal/telemetry"
	"atcsched/internal/workload"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiment.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		// A fixed seed keeps runs deterministic; figures 12-14 share one
		// memoized scenario per (scale, seed), which is exactly how the
		// CLI regenerates them too.
		tables, err := e.Run(experiment.Small, 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 {
			b.Fatal("no tables produced")
		}
	}
}

func BenchmarkFig1(b *testing.B)   { benchExperiment(b, "fig1") }
func BenchmarkFig2(b *testing.B)   { benchExperiment(b, "fig2") }
func BenchmarkFig5(b *testing.B)   { benchExperiment(b, "fig5") }
func BenchmarkFig8(b *testing.B)   { benchExperiment(b, "fig8") }
func BenchmarkEuclid(b *testing.B) { benchExperiment(b, "euclid") }
func BenchmarkFig9(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)  { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)  { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)  { benchExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)  { benchExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B)  { benchExperiment(b, "fig14") }
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "tab1") }

// BenchmarkEngineEventThroughput measures pure event-queue churn — the
// simulator's innermost hot path — in isolation: a self-perpetuating
// population of events with pseudorandom delays, plus a cancel every
// eighth firing to exercise mid-heap removal and the free list. It
// reports steady-state allocations (should be ~0 thanks to event
// recycling) and events per wall-clock second, so heap and pooling
// changes are measurable without running a whole scenario.
func BenchmarkEngineEventThroughput(b *testing.B) {
	eng := sim.New()
	src := rng.New(1)
	const outstanding = 512
	budget := b.N
	var churn func()
	churn = func() {
		if budget <= 0 {
			return
		}
		budget--
		h := eng.Schedule(sim.Time(1+src.Intn(1000))*sim.Microsecond, churn)
		if budget%8 == 0 {
			// Cancel-and-replace: exercises remove() from arbitrary slots.
			eng.Cancel(h)
			eng.Schedule(sim.Time(1+src.Intn(1000))*sim.Microsecond, churn)
		}
	}
	for i := 0; i < outstanding; i++ {
		eng.Schedule(sim.Time(1+src.Intn(1000))*sim.Microsecond, churn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	eng.Run()
	elapsed := time.Since(start).Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(eng.Executed())/elapsed, "events/s")
	}
}

// benchScenario runs one type-A scenario and reports simulated events
// per second — the simulator's own throughput figure.
func benchScenario(b *testing.B, cfg cluster.Config, kernel string) float64 {
	b.Helper()
	var lastMean float64
	var events uint64
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		s, err := cluster.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		prof := workload.NPB(kernel, workload.ClassB)
		prof.Iterations = 8
		var runs []*workload.ParallelRun
		for vc := 0; vc < 4; vc++ {
			vms := s.VirtualCluster(fmt.Sprintf("vc%d", vc), cfg.Nodes, 8, nil)
			runs = append(runs, s.RunParallel(prof, vms, 2, false))
		}
		if !s.Go(1200 * sim.Second) {
			b.Fatal("horizon exceeded")
		}
		var mean float64
		for _, r := range runs {
			mean += r.MeanTime()
		}
		lastMean = mean / float64(len(runs))
		events += s.World.Eng.Executed()
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/run")
	return lastMean
}

// BenchmarkSimulatorCR/ATC measure raw simulation throughput under the
// baseline and the contributed scheduler.
func BenchmarkSimulatorCR(b *testing.B) {
	mean := benchScenario(b, cluster.DefaultConfig(2, cluster.CR), "lu")
	b.ReportMetric(mean, "simexec_s")
}

func BenchmarkSimulatorATC(b *testing.B) {
	mean := benchScenario(b, cluster.DefaultConfig(2, cluster.ATC), "lu")
	b.ReportMetric(mean, "simexec_s")
}

// benchTelemetry is benchScenario's type-A workload with the telemetry
// plane attached or detached, reporting ns/event so the disabled cost
// compares directly against the recorded pre-telemetry baseline.
func benchTelemetry(b *testing.B, instrumented bool) {
	b.Helper()
	var events uint64
	for i := 0; i < b.N; i++ {
		cfg := cluster.DefaultConfig(2, cluster.CR)
		cfg.Seed = uint64(i + 1)
		if instrumented {
			cfg.Telemetry = telemetry.New(telemetry.Options{})
		}
		s, err := cluster.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		prof := workload.NPB("lu", workload.ClassB)
		prof.Iterations = 8
		for vc := 0; vc < 4; vc++ {
			vms := s.VirtualCluster(fmt.Sprintf("vc%d", vc), cfg.Nodes, 8, nil)
			s.RunParallel(prof, vms, 2, false)
		}
		if !s.Go(1200 * sim.Second) {
			b.Fatal("horizon exceeded")
		}
		if instrumented {
			s.FinalizeTelemetry()
		}
		events += s.World.Eng.Executed()
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/run")
	if events > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(events), "ns/event")
	}
}

// BenchmarkTelemetryDisabledOverhead pins the telemetry plane's
// determinism-path tax: with no plane attached (the default for every
// measurement run) the only additions on the hot path are two counter
// increments, one slice store and nil checks, so ns/event must stay
// within ~2% of the pre-telemetry BenchmarkSimulatorCR baseline
// (BENCH_parallel.json). The enabled variant quantifies the full
// instrumented cost for comparison.
func BenchmarkTelemetryDisabledOverhead(b *testing.B) {
	b.Run("disabled", func(b *testing.B) { benchTelemetry(b, false) })
	b.Run("enabled", func(b *testing.B) { benchTelemetry(b, true) })
}

// --- Ablations -----------------------------------------------------------

// ablATC runs the quickstart scenario under a customized ATC and returns
// the mean execution time.
func ablATC(b *testing.B, mutate func(*atc.Options), kernel string) float64 {
	b.Helper()
	opts := atc.DefaultOptions()
	if mutate != nil {
		mutate(&opts)
	}
	cfg := cluster.DefaultConfig(2, cluster.ATC)
	cfg.Sched.Options = opts
	return benchScenario(b, cfg, kernel)
}

// BenchmarkAblationMinThreshold compares the paper's 0.3 ms clamp with an
// over-shortening controller (threshold 10 µs): §III-B's pathology.
func BenchmarkAblationMinThreshold(b *testing.B) {
	b.Run("clamp0.3ms", func(b *testing.B) {
		b.ReportMetric(ablATC(b, nil, "lu"), "simexec_s")
	})
	b.Run("clamp10us", func(b *testing.B) {
		b.ReportMetric(ablATC(b, func(o *atc.Options) {
			o.Control.MinThreshold = 10 * sim.Microsecond
			o.Control.Beta = 30 * sim.Microsecond
		}, "lu"), "simexec_s")
	})
}

// BenchmarkAblationWindow compares the paper's 3-period trend window with
// a long window (slower reaction).
func BenchmarkAblationWindow(b *testing.B) {
	for _, w := range []int{3, 8} {
		w := w
		b.Run(fmt.Sprintf("window%d", w), func(b *testing.B) {
			b.ReportMetric(ablATC(b, func(o *atc.Options) { o.Control.Window = w }, "lu"), "simexec_s")
		})
	}
}

// BenchmarkAblationAlpha compares coarse-step granularities.
func BenchmarkAblationAlpha(b *testing.B) {
	for _, alphaMS := range []float64{6, 1.5} {
		alphaMS := alphaMS
		b.Run(fmt.Sprintf("alpha%.1fms", alphaMS), func(b *testing.B) {
			b.ReportMetric(ablATC(b, func(o *atc.Options) {
				o.Control.Alpha = sim.FromMillis(alphaMS)
			}, "lu"), "simexec_s")
		})
	}
}

// BenchmarkAblationBoost measures the credit core's wake boosting on the
// CR baseline (off → parallel I/O waits stretch).
func BenchmarkAblationBoost(b *testing.B) {
	for _, boost := range []bool{true, false} {
		boost := boost
		b.Run(fmt.Sprintf("boost=%v", boost), func(b *testing.B) {
			cfg := cluster.DefaultConfig(2, cluster.CR)
			cfg.Sched.DisableBoost = !boost
			b.ReportMetric(benchScenario(b, cfg, "lu"), "simexec_s")
		})
	}
}

// BenchmarkAblationSteal measures work-conserving stealing on CR.
func BenchmarkAblationSteal(b *testing.B) {
	for _, steal := range []bool{true, false} {
		steal := steal
		b.Run(fmt.Sprintf("steal=%v", steal), func(b *testing.B) {
			cfg := cluster.DefaultConfig(2, cluster.CR)
			cfg.Sched.DisableSteal = !steal
			b.ReportMetric(benchScenario(b, cfg, "lu"), "simexec_s")
		})
	}
}
