package experiment

import (
	"fmt"

	"atcsched/internal/cluster"
	"atcsched/internal/report"
	"atcsched/internal/rng"
	"atcsched/internal/runner"
	"atcsched/internal/sim"
	"atcsched/internal/trace"
	"atcsched/internal/vmm"
	"atcsched/internal/workload"
)

// placer balances VM placement over nodes, striping each virtual
// cluster across distinct least-loaded nodes (the paper places sibling
// VMs of a VC on different physical machines).
type placer struct {
	load []int
}

func newPlacer(nodes int) *placer { return &placer{load: make([]int, nodes)} }

// forVC returns nVMs node indices, distinct while possible.
func (p *placer) forVC(nVMs int) []int {
	out := make([]int, 0, nVMs)
	usedThisRound := make(map[int]bool)
	for len(out) < nVMs {
		best := -1
		for n := range p.load {
			if usedThisRound[n] {
				continue
			}
			if best < 0 || p.load[n] < p.load[best] {
				best = n
			}
		}
		if best < 0 { // all nodes used this round; start another stripe
			usedThisRound = make(map[int]bool)
			continue
		}
		usedThisRound[best] = true
		p.load[best]++
		out = append(out, best)
	}
	return out
}

// one returns the least-loaded node.
func (p *placer) one() int {
	best := 0
	for n := range p.load {
		if p.load[n] < p.load[best] {
			best = n
		}
	}
	p.load[best]++
	return best
}

// fig2Result holds one approach's §II-A2 measurements.
type fig2Result struct {
	bonnie float64 // MB/s
	sphinx float64 // seconds per round
	stream float64 // MB/s
	ping   float64 // seconds RTT
}

func runFig2Approach(sc Scale, a cluster.Approach, seed uint64) (fig2Result, error) {
	cfg := cluster.DefaultConfig(2, a)
	cfg.Seed = seed
	s, err := cluster.New(cfg)
	if err != nil {
		return fig2Result{}, err
	}
	// Three virtual clusters of two VMs each, background NPB load.
	for vc := 0; vc < 3; vc++ {
		prof := workload.NPB(workload.NPBKernels()[vc], workload.ClassB)
		prof.Iterations = iterCount(prof.Iterations, sc.IterScale)
		s.RunBackground(prof, s.VirtualCluster(fmt.Sprintf("vc%d", vc), 2, sc.VCPUsPerVM, nil))
	}
	npA := s.IndependentVM("np-a", 0, sc.VCPUsPerVM, vmm.ClassNonParallel)
	npB := s.IndependentVM("np-b", 1, sc.VCPUsPerVM, vmm.ClassNonParallel)
	bonnie := workload.NewDiskJob(npA.VCPU(0))
	sphinx := workload.NewCPUJob(npA.VCPU(1), workload.SPECProfiles()[2])
	stream := workload.NewStreamJob(npB.VCPU(0))
	ping := workload.NewPingJob(npB, 1, npA, 2, 10*sim.Millisecond)
	s.GoFor(40 * sim.Second)
	return fig2Result{
		bonnie: bonnie.ThroughputMBps(),
		sphinx: sphinx.MeanTime(),
		stream: stream.BandwidthMBps(),
		ping:   ping.MeanRTT(),
	}, nil
}

func init() {
	register(Experiment{
		ID:    "fig2",
		Title: "Figure 2 — CS impact on non-parallel applications (vs CR)",
		Run: func(sc Scale, seed uint64) ([]*report.Table, error) {
			approaches := []cluster.Approach{cluster.CR, cluster.CS}
			res, err := runner.Map(len(approaches), func(i int) (fig2Result, error) {
				return runFig2Approach(sc, approaches[i], seed)
			})
			if err != nil {
				return nil, err
			}
			cr, cs := res[0], res[1]
			t := report.New(
				"Non-parallel metrics under CR and CS (paper: ping RTT 1.75x, sphinx3 1.11x under CS; stream slightly lower; bonnie++ unchanged)",
				"Application", "Metric", "CR", "CS", "CS/CR")
			t.Add("bonnie++", "throughput MB/s", report.F2(cr.bonnie), report.F2(cs.bonnie), report.F(cs.bonnie/cr.bonnie))
			t.Add("sphinx3", "round time s", report.F(cr.sphinx), report.F(cs.sphinx), report.F(cs.sphinx/cr.sphinx))
			t.Add("stream", "bandwidth MB/s", report.F2(cr.stream), report.F2(cs.stream), report.F(cs.stream/cr.stream))
			t.Add("ping", "RTT", report.Ms(cr.ping), report.Ms(cs.ping), report.F(cs.ping/cr.ping))
			return []*report.Table{t}, nil
		},
	})

	register(Experiment{
		ID:    "fig11",
		Title: "Figure 11 — mixed parallel applications on the Table-I tenant layout",
		Run:   runFig11,
	})

	register(Experiment{
		ID:    "fig12",
		Title: "Figure 12 — parallel performance with non-parallel co-tenants (incl. VS, ATC(6ms))",
		Run: func(sc Scale, seed uint64) ([]*report.Table, error) {
			r, err := mixedNonparallel(sc, seed)
			if err != nil {
				return nil, err
			}
			return []*report.Table{r.parallel}, nil
		},
	})
	register(Experiment{
		ID:    "fig13",
		Title: "Figure 13 — web server, bonnie++ and stream under all approaches",
		Run: func(sc Scale, seed uint64) ([]*report.Table, error) {
			r, err := mixedNonparallel(sc, seed)
			if err != nil {
				return nil, err
			}
			return []*report.Table{r.ioApps}, nil
		},
	})
	register(Experiment{
		ID:    "fig14",
		Title: "Figure 14 — CPU-intensive applications under all approaches",
		Run: func(sc Scale, seed uint64) ([]*report.Table, error) {
			r, err := mixedNonparallel(sc, seed)
			if err != nil {
				return nil, err
			}
			return []*report.Table{r.cpuApps}, nil
		},
	})

	register(Experiment{
		ID:    "tab1",
		Title: "Table I — LLNL Atlas job-size distribution and synthesized layouts",
		Run: func(sc Scale, seed uint64) ([]*report.Table, error) {
			t1 := report.New("Table I — share of Atlas jobs by processor count", "Processors", "Share")
			for _, s := range trace.TableI() {
				name := report.I(s.Processors)
				if s.Processors == 0 {
					name = "others"
				}
				t1.Add(name, fmt.Sprintf("%.1f%%", s.Share*100))
			}
			layout := trace.PaperLayout()
			t2 := report.New("Derived §IV-B2 population (128 8-VCPU VMs on 32 nodes)", "Cluster", "VMs", "VCPUs")
			for _, c := range layout.Clusters {
				t2.Add(c.Name, report.I(c.VMs), report.I(c.VMs*8))
			}
			t2.Add("independent", report.I(layout.Independent), report.I(layout.Independent*8))
			scaled, err := trace.ScaledLayout(4 * sc.MixNodes)
			if err != nil {
				return nil, err
			}
			t3 := report.New(fmt.Sprintf("Scaled layout used at %q scale (%d VMs)", sc.Name, scaled.TotalVMs()),
				"Cluster", "VMs")
			for _, c := range scaled.Clusters {
				t3.Add(c.Name, report.I(c.VMs))
			}
			t3.Add("independent", report.I(scaled.Independent))
			return []*report.Table{t1, t2, t3}, nil
		},
	})
}

// mixedLayout builds the trace-driven scenario shared by Figures 11-14:
// the virtual clusters (with their kernels) and the independent VMs.
func mixedLayout(sc Scale, seed uint64) (trace.Layout, []string, error) {
	layout, err := trace.ScaledLayout(4 * sc.MixNodes)
	if err != nil {
		return trace.Layout{}, nil, err
	}
	src := rng.NewStream(seed, 0x11)
	kernels := make([]string, len(layout.Clusters))
	all := workload.NPBKernels()
	for i := range kernels {
		kernels[i] = all[src.Intn(len(all))]
	}
	return layout, kernels, nil
}

// runFig11 measures every virtual cluster (and two independent VMs
// running single-VM lu/is) under CR, BS, CS, DSS and ATC.
func runFig11(sc Scale, seed uint64) ([]*report.Table, error) {
	layout, kernels, err := mixedLayout(sc, seed)
	if err != nil {
		return nil, err
	}
	approaches := []cluster.Approach{cluster.CR, cluster.BS, cluster.CS, cluster.DSS, cluster.ATC}
	type fig11Cell struct {
		row   []float64 // mean exec seconds per entity
		names []string
	}
	// One full Table-I scenario per approach; the five runs are
	// independent worlds, so fan them across the worker pool.
	cells, err := runner.Map(len(approaches), func(ai int) (fig11Cell, error) {
		a := approaches[ai]
		cfg := cluster.DefaultConfig(sc.MixNodes, a)
		cfg.Seed = seed
		s, err := cluster.New(cfg)
		if err != nil {
			return fig11Cell{}, err
		}
		pl := newPlacer(sc.MixNodes)
		var runs []*workload.ParallelRun
		var rowNames []string
		for i, vc := range layout.Clusters {
			prof := workload.NPB(kernels[i], workload.ClassB)
			prof.Iterations = iterCount(prof.Iterations, sc.IterScale)
			vms := s.VirtualCluster(vc.Name, vc.VMs, sc.VCPUsPerVM, pl.forVC(vc.VMs))
			runs = append(runs, s.RunParallel(prof, vms, sc.Rounds, true))
			rowNames = append(rowNames, fmt.Sprintf("%s(%s)", vc.Name, kernels[i]))
		}
		// Independent VMs run lu.B or is.B alone; measure the first two,
		// the rest are background.
		indKernels := []string{"lu", "is"}
		for i := 0; i < layout.Independent; i++ {
			k := indKernels[i%2]
			prof := workload.NPB(k, workload.ClassB)
			prof.Iterations = iterCount(prof.Iterations, sc.IterScale)
			vms := []*vmm.VM{s.World.Node(pl.one()).NewVM(fmt.Sprintf("ind%d", i), vmm.ClassParallel, sc.VCPUsPerVM, 0, 1)}
			if i < 2 {
				runs = append(runs, s.RunParallel(prof, vms, sc.Rounds, true))
				rowNames = append(rowNames, fmt.Sprintf("IND%d(%s)", i+1, k))
			} else {
				s.RunBackground(prof, vms)
			}
		}
		if !s.Go(sc.Horizon) {
			return fig11Cell{}, fmt.Errorf("fig11/%s: horizon exceeded", a)
		}
		row := make([]float64, len(runs))
		for i, r := range runs {
			row[i] = r.MeanTime()
		}
		return fig11Cell{row: row, names: rowNames}, nil
	})
	if err != nil {
		return nil, err
	}
	// results[approach][entity] = mean exec seconds.
	results := make(map[cluster.Approach][]float64, len(approaches))
	for i, a := range approaches {
		results[a] = cells[i].row
	}
	names := cells[0].names
	t := report.New(
		"Normalized execution time per virtual cluster (vs CR); paper Fig. 11: ATC best everywhere (e.g. VC1 sp: ATC 0.25, DSS 0.45, CS 0.49, BS 0.9)",
		"Entity", "CR(s)", "BS", "CS", "DSS", "ATC")
	for i, name := range names {
		cr := results[cluster.CR][i]
		t.Add(name, report.F(cr),
			report.F(results[cluster.BS][i]/cr),
			report.F(results[cluster.CS][i]/cr),
			report.F(results[cluster.DSS][i]/cr),
			report.F(results[cluster.ATC][i]/cr))
	}
	return []*report.Table{t}, nil
}
