package proptest_test

import (
	"testing"

	"atcsched/internal/cluster"
	"atcsched/internal/proptest"
	"atcsched/internal/sched/registry"
)

// swapBase is a tiny but contended world: two nodes, two VMs spanning
// them, a swap early enough to land while measured work is in flight.
func swapBase() proptest.Spec {
	return proptest.Spec{
		Seed:  7,
		Nodes: 2,
		PCPUs: 2,
		Clusters: []proptest.ClusterSpec{
			{Kernel: "lu", Class: "A", VMs: 2, VCPUs: 4, Rounds: 2, Iterations: 10},
		},
		SwapAtSec:  0.05,
		HorizonSec: 900,
	}
}

// TestSwapPreservesInvariants is the live-switch property: for every
// registered policy as the swap target, a world flipped mid-run must
// still pass the full battery — liveness, conservation, audits, clock
// monotonicity, differential agreement and deterministic replay.
func TestSwapPreservesInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("battery run")
	}
	approaches := []cluster.Approach{cluster.CR, cluster.ATC}
	for _, kind := range registry.Kinds() {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			t.Parallel()
			spec := swapBase()
			spec.SwapKind = kind
			if err := proptest.CheckSpec(spec, approaches); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestHeteroPreservesInvariants pins the per-node-policy path: node 1
// stays pinned to ATC while the approach under test varies.
func TestHeteroPreservesInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("battery run")
	}
	spec := swapBase()
	spec.SwapAtSec = 0
	spec.NodeKinds = []string{"", "ATC"}
	if err := proptest.CheckSpec(spec, []cluster.Approach{cluster.CR, cluster.CS}); err != nil {
		t.Fatal(err)
	}
}
