package cluster

import (
	"testing"

	"atcsched/internal/sim"
	"atcsched/internal/vmm"
	"atcsched/internal/workload"
)

func TestGoForRunsExactDuration(t *testing.T) {
	cfg := DefaultConfig(1, CR)
	cfg.Node.PCPUs = 1
	s := MustNew(cfg)
	vm := s.IndependentVM("x", 0, 1, vmm.ClassNonParallel)
	job := workload.NewCPUJob(vm.VCPU(0), workload.SPECProfiles()[0])
	s.GoFor(2 * sim.Second)
	if now := s.World.Eng.Now(); now != 2*sim.Second {
		t.Errorf("Now = %v, want exactly 2s", now)
	}
	if job.Rounds() < 4 {
		t.Errorf("rounds = %d, want ~5 in 2s", job.Rounds())
	}
}

func TestContinueForAfterCompletion(t *testing.T) {
	cfg := DefaultConfig(1, CR)
	cfg.Node.PCPUs = 2
	s := MustNew(cfg)
	prof := workload.NPB("ep", workload.ClassA)
	prof.Iterations = 3
	run := s.RunParallel(prof, s.VirtualCluster("vc", 1, 2, nil), 1, true)
	if !s.Go(120 * sim.Second) {
		t.Fatal("did not complete")
	}
	doneAt := s.World.Eng.Now()
	s.ContinueFor(3 * sim.Second)
	if got := s.World.Eng.Now(); got != doneAt+3*sim.Second {
		t.Errorf("continued to %v, want %v", got, doneAt+3*sim.Second)
	}
	// Forever run kept going during the extension.
	if run.Rounds() < 2 {
		t.Errorf("rounds = %d after ContinueFor", run.Rounds())
	}
}

func TestContinueUntilConditionAndCap(t *testing.T) {
	cfg := DefaultConfig(1, CR)
	cfg.Node.PCPUs = 1
	s := MustNew(cfg)
	vm := s.IndependentVM("x", 0, 1, vmm.ClassNonParallel)
	job := workload.NewDiskJob(vm.VCPU(0))
	s.GoFor(100 * sim.Millisecond)
	ok := s.ContinueUntil(func() bool { return job.Requests() >= 20 }, 100*sim.Millisecond, 10*sim.Second)
	if !ok {
		t.Fatalf("condition not met (requests=%d)", job.Requests())
	}
	// Cap path: an impossible condition stops at the cap.
	start := s.World.Eng.Now()
	ok = s.ContinueUntil(func() bool { return false }, 100*sim.Millisecond, 500*sim.Millisecond)
	if ok {
		t.Fatal("impossible condition reported met")
	}
	if got := s.World.Eng.Now() - start; got != 500*sim.Millisecond {
		t.Errorf("ran %v past cap, want exactly 500ms", got)
	}
}

func TestHYApproachBuilds(t *testing.T) {
	cfg := DefaultConfig(1, HY)
	s := MustNew(cfg)
	if got := s.World.Node(0).Scheduler().Name(); got != "HY" {
		t.Errorf("Name = %q", got)
	}
	if len(ExtendedApproaches()) != len(Approaches())+3 {
		t.Error("ExtendedApproaches wrong")
	}
}

func TestDisableTogglesReachScheduler(t *testing.T) {
	cfg := DefaultConfig(1, CR)
	cfg.Sched.DisableBoost = true
	cfg.Sched.DisableSteal = true
	s := MustNew(cfg)
	// Indirect check: the scheduler still works end to end.
	prof := workload.NPB("ep", workload.ClassA)
	prof.Iterations = 2
	run := s.RunParallel(prof, s.VirtualCluster("vc", 1, 2, nil), 1, false)
	if !s.Go(120 * sim.Second) {
		t.Fatal("did not complete")
	}
	if run.MeanTime() <= 0 {
		t.Fatal("no timing")
	}
}

func TestVSSmallFixedSliceBuilds(t *testing.T) {
	// Regression: a fixed base slice at or below VS's 1ms default
	// microslice used to panic in the vslicer constructor. The factory
	// now rescales the microslice to the 30:1 ratio.
	for _, ms := range []float64{0.3, 1} {
		cfg := DefaultConfig(1, VS)
		cfg.Sched.FixedSlice = sim.FromMillis(ms)
		if _, err := New(cfg); err != nil {
			t.Fatalf("slice %vms: %v", ms, err)
		}
	}
	// A base slice too small to subdivide must error, not panic.
	cfg := DefaultConfig(1, VS)
	cfg.Sched.FixedSlice = 10 * sim.Nanosecond
	if _, err := New(cfg); err == nil {
		t.Fatal("nanosecond base slice accepted for VS")
	}
}

func TestAuditHookObservesRun(t *testing.T) {
	var times []sim.Time
	var sick int
	cfg := DefaultConfig(1, CR)
	cfg.AuditEvery = 10 * sim.Millisecond
	cfg.OnAudit = func(at sim.Time, errs []error) {
		times = append(times, at)
		sick += len(errs)
	}
	s := MustNew(cfg)
	prof := workload.NPB("ep", workload.ClassA)
	prof.Iterations = 2
	s.RunParallel(prof, s.VirtualCluster("vc", 1, 2, nil), 1, false)
	if !s.Go(120 * sim.Second) {
		t.Fatal("did not complete")
	}
	if len(times) == 0 {
		t.Fatal("audit hook never fired")
	}
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			t.Fatalf("audit clock regressed: %v -> %v", times[i-1], times[i])
		}
	}
	if sick != 0 {
		t.Fatalf("%d audit violations on a healthy run", sick)
	}
	if got := s.AuditViolations(); len(got) != 0 {
		t.Fatalf("AuditViolations = %v", got)
	}
}
