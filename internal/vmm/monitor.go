package vmm

import (
	"atcsched/internal/metrics"
	"atcsched/internal/sim"
)

// SpinMonitor accumulates per-VM spinlock latency. It keeps both a
// lifetime view (for the evaluation harness) and a per-scheduling-period
// accumulator that schedulers sample and reset every period — the paper's
// "average spinlock latency of VM during the (i-1)th scheduling period".
type SpinMonitor struct {
	lifetime metrics.Welford
	// period accumulators, reset by SamplePeriod.
	periodSum   sim.Time
	periodCount int64
}

// Record notes one completed lock acquisition that waited for lat.
// Uncontended acquisitions record zero, which keeps the per-period
// average meaningful (ATC's "latency remains zero" branch).
func (m *SpinMonitor) Record(lat sim.Time) {
	m.lifetime.Add(float64(lat))
	m.periodSum += lat
	m.periodCount++
}

// SamplePeriod returns the mean latency of the acquisitions recorded
// since the previous call (0 when there were none) and resets the period
// accumulator.
func (m *SpinMonitor) SamplePeriod() sim.Time {
	if m.periodCount == 0 {
		return 0
	}
	avg := m.periodSum / sim.Time(m.periodCount)
	m.periodSum = 0
	m.periodCount = 0
	return avg
}

// LifetimeMean returns the mean latency across the whole run.
func (m *SpinMonitor) LifetimeMean() sim.Time { return sim.Time(m.lifetime.Mean()) }

// LifetimeCount returns the number of acquisitions recorded.
func (m *SpinMonitor) LifetimeCount() int64 { return m.lifetime.N() }

// LifetimeMax returns the worst acquisition latency observed.
func (m *SpinMonitor) LifetimeMax() sim.Time { return sim.Time(m.lifetime.Max()) }

// LifetimeSum returns the total time spent waiting on spinlocks.
func (m *SpinMonitor) LifetimeSum() sim.Time { return sim.Time(m.lifetime.Sum()) }
