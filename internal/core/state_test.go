package core

import (
	"reflect"
	"testing"

	"atcsched/internal/sim"
)

// TestExportImportRoundTrip pins that a controller rebuilt from
// exported state computes the same slices as the original.
func TestExportImportRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	src := NewController(cfg)
	lats := []sim.Time{2 * sim.Millisecond, 3 * sim.Millisecond, 4 * sim.Millisecond, 5 * sim.Millisecond}
	inForce := cfg.Default
	for _, l := range lats {
		src.Observe(7, l, inForce)
		src.Observe(9, 0, inForce)
		inForce = src.ComputeSlice(7)
	}

	if got := src.TrackedVMs(); !reflect.DeepEqual(got, []int{7, 9}) {
		t.Fatalf("TrackedVMs = %v, want [7 9]", got)
	}

	dst := NewController(cfg)
	for _, id := range src.TrackedVMs() {
		lat, slice, obs, ok := src.ExportVM(id)
		if !ok {
			t.Fatalf("ExportVM(%d) not found", id)
		}
		if err := dst.ImportVM(id, lat, slice, obs); err != nil {
			t.Fatalf("ImportVM(%d): %v", id, err)
		}
	}

	for _, id := range []int{7, 9} {
		if got, want := dst.ComputeSlice(id), src.ComputeSlice(id); got != want {
			t.Errorf("vm %d: restored ComputeSlice = %v, want %v", id, got, want)
		}
	}
	// Continued observation must also agree.
	src.Observe(7, sim.Millisecond, src.ComputeSlice(7))
	dst.Observe(7, sim.Millisecond, dst.ComputeSlice(7))
	if got, want := dst.ComputeSlice(7), src.ComputeSlice(7); got != want {
		t.Errorf("post-import ComputeSlice = %v, want %v", got, want)
	}
}

// TestExportVMDoesNotCreateState pins that probing an unknown VM leaves
// the controller untouched (History, by contrast, creates cold-start
// state).
func TestExportVMDoesNotCreateState(t *testing.T) {
	c := NewController(DefaultConfig())
	if _, _, _, ok := c.ExportVM(42); ok {
		t.Fatal("ExportVM of unknown VM reported ok")
	}
	if got := c.TrackedVMs(); len(got) != 0 {
		t.Fatalf("ExportVM created state: TrackedVMs = %v", got)
	}
}

// TestImportVMValidates pins rejection of malformed snapshot state.
func TestImportVMValidates(t *testing.T) {
	c := NewController(DefaultConfig())
	def := DefaultConfig().Default
	good := []sim.Time{def, def, def}
	cases := []struct {
		name     string
		lat      []sim.Time
		slice    []sim.Time
		observed int
	}{
		{"short lat", []sim.Time{0, 0}, good, 1},
		{"long slice", []sim.Time{0, 0, 0}, append(good, def), 1},
		{"negative latency", []sim.Time{0, -1, 0}, good, 1},
		{"zero slice", []sim.Time{0, 0, 0}, []sim.Time{def, 0, def}, 1},
		{"negative observed", []sim.Time{0, 0, 0}, good, -1},
	}
	for _, tc := range cases {
		if err := c.ImportVM(1, tc.lat, tc.slice, tc.observed); err == nil {
			t.Errorf("%s: ImportVM accepted bad state", tc.name)
		}
	}
	if got := c.TrackedVMs(); len(got) != 0 {
		t.Fatalf("failed imports left state behind: %v", got)
	}
}
