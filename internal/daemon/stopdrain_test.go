package daemon

import (
	"testing"
	"time"

	"atcsched/internal/core"
	"atcsched/internal/sim"
)

// stopRacingActuator fails its first Apply after asking the daemon to
// stop — the exact shape of a shutdown signal racing an actuation retry.
type stopRacingActuator struct {
	MapActuator
	d *Daemon
}

func (a *stopRacingActuator) Apply(slices map[int]sim.Time) error {
	if a.Applies == 0 {
		a.Applies++
		a.d.Stop()
		return errActuator
	}
	return a.MapActuator.Apply(slices)
}

// TestStopDrainsInFlightActuation pins the stop-path bugfix: a Stop
// arriving while a period is mid-retry must (a) cut the backoff wait
// short instead of sleeping it out, and (b) still run the remaining
// retry attempts so the final Apply lands. The 30 s backoff makes a
// regression unmissable — the old stop path would sleep the full
// backoff before draining.
func TestStopDrainsInFlightActuation(t *testing.T) {
	src := &SliceSource{Periods: [][]VMSample{
		{{ID: 1, AvgSpinLatency: 2 * sim.Millisecond, Parallel: true}},
		{{ID: 1, AvgSpinLatency: 2 * sim.Millisecond, Parallel: true}},
	}}
	act := &stopRacingActuator{}
	d := New(core.DefaultConfig(), src, act, WithRetry(1, 30*time.Second))
	act.d = d

	start := time.Now()
	err := d.Run()
	elapsed := time.Since(start)

	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("Run took %v; stop did not cut the 30s backoff short", elapsed)
	}
	if d.Periods() != 1 {
		t.Fatalf("Periods = %d, want 1 (the in-flight period must drain, the next must not start)", d.Periods())
	}
	if len(act.Last) == 0 {
		t.Fatal("final Apply was dropped on stop; no slices landed")
	}
	if got := d.Stats().Retries; got != 1 {
		t.Errorf("Retries = %d, want 1", got)
	}
	if got := d.Stats().DroppedPeriods; got != 0 {
		t.Errorf("DroppedPeriods = %d, want 0 — the stop path dropped the period", got)
	}
}
