package vmm

import (
	"fmt"

	"atcsched/internal/sim"
)

// Spinlock is a guest-kernel FIFO (ticket) spinlock inside one VM.
//
// The model reproduces lock-holder preemption (the paper's Figure 3): a
// holder that is descheduled keeps the lock, so waiters spin — burning
// their time slices — until the holder runs again and releases. Release
// hands the lock to the longest-waiting VCPU (ticket order); if that
// waiter is itself descheduled, the lock stays reserved for it until it
// next runs (lock-waiter preemption), exactly as ticket locks behave
// under virtualization.
type Spinlock struct {
	vm     *VM
	id     int
	holder *VCPU
	// granted is the waiter the lock is reserved for after a release that
	// found it descheduled; it acquires when next dispatched.
	granted *VCPU
	waiters []spinWaiter

	// contended counts acquisitions that had to wait.
	contended uint64
	// acquisitions counts all acquisitions.
	acquisitions uint64
}

type spinWaiter struct {
	v     *VCPU
	since sim.Time
}

// VM returns the owning VM.
func (l *Spinlock) VM() *VM { return l.vm }

// Holder returns the current holder (nil when free and unreserved).
func (l *Spinlock) Holder() *VCPU {
	if l.holder != nil {
		return l.holder
	}
	return l.granted
}

// Contended returns how many acquisitions had to wait.
func (l *Spinlock) Contended() uint64 { return l.contended }

// Acquisitions returns the total number of acquisitions.
func (l *Spinlock) Acquisitions() uint64 { return l.acquisitions }

// tryAcquire is called when a running VCPU executes ActAcquire. It
// returns true when the lock is taken (latency recorded); false when the
// VCPU must spin.
func (l *Spinlock) tryAcquire(v *VCPU, now sim.Time) bool {
	if l.granted == v {
		// The lock was reserved for v by a release that happened while v
		// was descheduled; complete the acquisition now.
		l.granted = nil
		l.holder = v
		l.finishAcquire(v, now)
		return true
	}
	if l.holder == nil && l.granted == nil && len(l.waiters) == 0 {
		l.holder = v
		l.acquisitions++
		l.vm.SpinMon.Record(0)
		return true
	}
	if l.holder == v {
		panic(fmt.Sprintf("vmm: VCPU %s re-acquiring held spinlock %d", v, l.id))
	}
	l.waiters = append(l.waiters, spinWaiter{v: v, since: now})
	return false
}

// finishAcquire records the latency for a waiter that just got the lock.
func (l *Spinlock) finishAcquire(v *VCPU, now sim.Time) {
	l.acquisitions++
	l.contended++
	l.vm.SpinMon.Record(now - v.spinSince)
	v.spinningOn = nil
	v.vm.spinWaitTotal += now - v.spinSince
	if t := l.vm.node.tel; t != nil {
		t.telSpin(l.vm, v, v.spinSince, now)
	}
}

// release is called when the holder executes ActRelease. It hands the
// lock to the first waiter: if that waiter is running it resumes
// immediately; otherwise the lock is reserved for it.
func (l *Spinlock) release(v *VCPU, now sim.Time) {
	if l.holder != v {
		panic(fmt.Sprintf("vmm: VCPU %s releasing spinlock %d it does not hold", v, l.id))
	}
	l.holder = nil
	if len(l.waiters) == 0 {
		return
	}
	w := l.waiters[0]
	copy(l.waiters, l.waiters[1:])
	l.waiters = l.waiters[:len(l.waiters)-1]
	if w.v.state == StateRunning {
		l.holder = w.v
		l.finishAcquire(w.v, now)
		w.v.resumeFromSpin()
		return
	}
	// Waiter is descheduled (preempted mid-spin): reserve the lock; the
	// waiter completes the acquisition when next dispatched. This is the
	// latency that shrinks when other VMs' slices shrink.
	l.granted = w.v
}
