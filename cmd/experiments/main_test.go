package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatalf("run -list: %v", err)
	}
	got := out.String()
	for _, want := range []string{"fig10", "tab1"} {
		if !strings.Contains(got, want) {
			t.Errorf("-list output missing %q:\n%s", want, got)
		}
	}
}

func TestRunSingleExperimentSmallScale(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "fig1", "-scale", "small", "-parallel", "1"}, &out); err != nil {
		t.Fatalf("run fig1: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "== fig1:") || !strings.Contains(got, "done in") {
		t.Errorf("fig1 output missing framing:\n%s", got)
	}
	// A non-empty table body: at least one line beyond headers/framing.
	if len(strings.Split(got, "\n")) < 6 {
		t.Errorf("suspiciously short output:\n%s", got)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-bogus"},
		{},                                     // neither -exp nor -all
		{"-exp", "nosuch"},                     // unknown experiment id
		{"-exp", "fig1", "-scale", "galactic"}, // unknown scale
	}
	for _, args := range cases {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}

// TestRunTimelineShowcase proves -timeline/-jsonl run the instrumented
// fault showcase and produce a Perfetto-loadable artifact with spin
// spans and slice-change markers (the acceptance shape).
func TestRunTimelineShowcase(t *testing.T) {
	if testing.Short() {
		t.Skip("showcase runs a few virtual seconds of simulation")
	}
	dir := t.TempDir()
	tl := filepath.Join(dir, "tl.json")
	jl := filepath.Join(dir, "series.jsonl")
	var out strings.Builder
	if err := run([]string{"-timeline", tl, "-jsonl", jl, "-scale", "small"}, &out); err != nil {
		t.Fatalf("run -timeline: %v", err)
	}
	raw, err := os.ReadFile(tl)
	if err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &file); err != nil {
		t.Fatalf("timeline is not trace-event JSON: %v", err)
	}
	var spin, slice, round, faultWin bool
	for _, ev := range file.TraceEvents {
		switch {
		case ev.Name == "spin":
			spin = true
		case strings.HasPrefix(ev.Name, "slice "):
			slice = true
		case ev.Name == "round":
			round = true
		case strings.HasPrefix(ev.Name, "fault:"):
			faultWin = true
		}
	}
	if !spin || !slice || !round || !faultWin {
		t.Errorf("timeline lacks expected spans: spin=%v slice=%v round=%v fault=%v",
			spin, slice, round, faultWin)
	}
	jraw, err := os.ReadFile(jl)
	if err != nil {
		t.Fatal(err)
	}
	first, _, _ := strings.Cut(string(jraw), "\n")
	var meta map[string]any
	if err := json.Unmarshal([]byte(first), &meta); err != nil || meta["type"] != "meta" {
		t.Fatalf("jsonl does not start with a meta line: %q (%v)", first, err)
	}
}
