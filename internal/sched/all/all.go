// Package all links every in-tree scheduling policy into the binary by
// importing each policy package for its registry side effect. Anything
// that resolves policies by name (internal/cluster, internal/daemon, the
// commands) imports this package blank; a new policy only needs to be
// added to the list below — nothing else in the tree names it.
package all

import (
	_ "atcsched/internal/sched/atc"
	_ "atcsched/internal/sched/atcdfrs"
	_ "atcsched/internal/sched/balance"
	_ "atcsched/internal/sched/cosched"
	_ "atcsched/internal/sched/credit"
	_ "atcsched/internal/sched/dfrs"
	_ "atcsched/internal/sched/dss"
	_ "atcsched/internal/sched/extslice"
	_ "atcsched/internal/sched/hybrid"
	_ "atcsched/internal/sched/vslicer"
)
