package atcsched

import (
	"fmt"
	"testing"

	"atcsched/internal/sim"
)

func TestControllerFacade(t *testing.T) {
	ctl := NewController(DefaultControlConfig())
	ctl.Observe(1, sim.Millisecond, 30*sim.Millisecond)
	ctl.Observe(1, 2*sim.Millisecond, 30*sim.Millisecond)
	ctl.Observe(1, 3*sim.Millisecond, 30*sim.Millisecond)
	out := ctl.NodeSlices([]VMInfo{{ID: 1, Parallel: true}})
	if out[1] != 24*sim.Millisecond {
		t.Errorf("slice = %v, want 24ms after one α step", out[1])
	}
}

func TestScenarioFacadeEndToEnd(t *testing.T) {
	cfg := DefaultScenarioConfig(2, ATC)
	cfg.Seed = 5
	s, err := NewScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prof := NPBProfile("is", "A")
	prof.Iterations = 4
	var runs []interface{ MeanTime() float64 }
	for vc := 0; vc < 2; vc++ {
		vms := s.VirtualCluster(fmt.Sprintf("vc%d", vc), 2, 4, nil)
		runs = append(runs, s.RunParallel(prof, vms, 2, false))
	}
	if !s.Go(600 * sim.Second) {
		t.Fatal("horizon exceeded")
	}
	for i, r := range runs {
		if r.MeanTime() <= 0 {
			t.Errorf("run %d mean time = 0", i)
		}
	}
}

func TestNPBProfileFacade(t *testing.T) {
	p := NPBProfile("lu", "B")
	if p.Name != "lu.B" {
		t.Errorf("name = %q", p.Name)
	}
	defer func() {
		if recover() == nil {
			t.Error("bad class accepted")
		}
	}()
	NPBProfile("lu", "D")
}

func TestExperimentsFacade(t *testing.T) {
	if len(Experiments()) != 20 {
		t.Errorf("experiments = %d, want 20", len(Experiments()))
	}
	tables, err := RunExperiment("tab1", "small", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) == 0 {
		t.Fatal("no tables")
	}
	if _, err := RunExperiment("tab1", "huge", 1); err == nil {
		t.Error("bad scale accepted")
	}
	if _, err := RunExperiment("nope", "small", 1); err == nil {
		t.Error("bad id accepted")
	}
}

func TestSchedulerKindsFacade(t *testing.T) {
	kinds := SchedulerKinds()
	if len(kinds) != 10 {
		t.Fatalf("kinds = %v, want 10 registered policies", kinds)
	}
	have := map[string]bool{}
	for _, k := range kinds {
		have[k] = true
	}
	for _, want := range []string{"CR", "CS", "BS", "DSS", "VS", "ATC", "HY", "EXT", "DFRS", "ATCDFRS"} {
		if !have[want] {
			t.Errorf("kinds missing %s: %v", want, kinds)
		}
	}
}
