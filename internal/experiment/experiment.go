// Package experiment regenerates every table and figure of the paper's
// evaluation (§II motivation and §IV) on the simulated cluster. Each
// experiment is registered by figure id and renders report.Tables whose
// rows correspond to the published series. Absolute numbers differ from
// the paper's Xen testbed; the shapes — who wins, by roughly what
// factor, where the inflection points fall — are the reproduction target
// (see EXPERIMENTS.md).
package experiment

import (
	"fmt"
	"sort"

	"atcsched/internal/report"
	"atcsched/internal/sim"
)

// Scale sizes an experiment run. The paper's full testbed (32 nodes, 256
// cores) is expensive to simulate, so the harness offers reduced scales
// with the same structure.
type Scale struct {
	Name string
	// NodeSteps are the physical-node counts for scaling studies
	// (Figures 1 and 10; the paper uses 2,4,8,16,32).
	NodeSteps []int
	// MixNodes is the node count for the trace-driven mixed experiments
	// (Figures 11-14; the paper uses 32).
	MixNodes int
	// VCPUsPerVM is the per-VM VCPU count for 8-VCPU experiments.
	VCPUsPerVM int
	// BigVCPUsPerVM is the per-VM count for the 16-VCPU experiments
	// (Figures 5 and 8).
	BigVCPUsPerVM int
	// Rounds is how many measured repetitions each application runs
	// (the paper uses 10).
	Rounds int
	// IterScale scales each profile's iteration count.
	IterScale float64
	// SliceSweep is the slice set for Figure 5 (descending).
	SliceSweep []sim.Time
	// ShortSweep is the short-slice set for Figure 8/§III-B.
	ShortSweep []sim.Time
	// Horizon caps each scenario's virtual runtime.
	Horizon sim.Time
}

func ms(f float64) sim.Time { return sim.Time(f * float64(sim.Millisecond)) }

// Small is the quick-check scale (benchmarks, CI).
var Small = Scale{
	Name:          "small",
	NodeSteps:     []int{2, 4},
	MixNodes:      4,
	VCPUsPerVM:    8,
	BigVCPUsPerVM: 8,
	Rounds:        2,
	IterScale:     0.3,
	SliceSweep:    []sim.Time{ms(30), ms(6), ms(1), ms(0.3), ms(0.1)},
	ShortSweep:    []sim.Time{ms(0.5), ms(0.3), ms(0.2), ms(0.1), ms(0.03)},
	Horizon:       1200 * sim.Second,
}

// Medium exercises the full structure at reduced node counts.
var Medium = Scale{
	Name:          "medium",
	NodeSteps:     []int{2, 4, 8},
	MixNodes:      8,
	VCPUsPerVM:    8,
	BigVCPUsPerVM: 16,
	Rounds:        3,
	IterScale:     0.6,
	SliceSweep:    []sim.Time{ms(30), ms(24), ms(18), ms(12), ms(6), ms(1), ms(0.6), ms(0.3), ms(0.15), ms(0.1)},
	ShortSweep:    []sim.Time{ms(0.5), ms(0.4), ms(0.3), ms(0.2), ms(0.1), ms(0.03)},
	Horizon:       2400 * sim.Second,
}

// Full is the paper's testbed scale.
var Full = Scale{
	Name:          "full",
	NodeSteps:     []int{2, 4, 8, 16, 32},
	MixNodes:      32,
	VCPUsPerVM:    8,
	BigVCPUsPerVM: 16,
	Rounds:        10,
	IterScale:     1,
	SliceSweep:    []sim.Time{ms(30), ms(24), ms(18), ms(12), ms(6), ms(1), ms(0.6), ms(0.3), ms(0.15), ms(0.1)},
	ShortSweep:    []sim.Time{ms(0.5), ms(0.4), ms(0.3), ms(0.2), ms(0.1), ms(0.03)},
	Horizon:       7200 * sim.Second,
}

// ScaleByName resolves "small", "medium" or "full".
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "small":
		return Small, nil
	case "medium":
		return Medium, nil
	case "full":
		return Full, nil
	default:
		return Scale{}, fmt.Errorf("experiment: unknown scale %q (small|medium|full)", name)
	}
}

// Experiment regenerates one paper artifact.
type Experiment struct {
	ID    string
	Title string
	// Bench marks a wall-clock benchmark: its tables carry host timing
	// (not deterministic per (scale, seed)) and may append to a BENCH
	// trajectory file. `-all` skips bench experiments — the serial vs
	// parallel byte-diff must stay empty — so they run only by
	// explicit `-exp` selection.
	Bench bool
	// Run produces the experiment's tables.
	Run func(sc Scale, seed uint64) ([]*report.Table, error)
}

var registry = map[string]Experiment{}

// canonicalOrder lists the experiments in the paper's presentation
// order, extensions last.
var canonicalOrder = []string{
	"fig1", "fig2", "fig5", "fig8", "euclid", "fig9",
	"fig10", "fig11", "fig12", "fig13", "fig14", "tab1",
	"score", "sens", "ablate", "switch", "faults", "scale", "dfrs", "fleet",
}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiment: duplicate id " + e.ID)
	}
	registry[e.ID] = e
}

// All returns every experiment in the paper's presentation order
// (extensions last).
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, id := range canonicalOrder {
		if e, ok := registry[id]; ok {
			out = append(out, e)
		}
	}
	// Append anything registered but not in the canonical list, sorted,
	// so a forgotten entry is visible rather than hidden.
	var extra []string
	for id := range registry {
		found := false
		for _, c := range canonicalOrder {
			if id == c {
				found = true
			}
		}
		if !found {
			extra = append(extra, id)
		}
	}
	sort.Strings(extra)
	for _, id := range extra {
		out = append(out, registry[id])
	}
	return out
}

// ByID looks an experiment up.
func ByID(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		ids := make([]string, 0, len(registry))
		for k := range registry {
			ids = append(ids, k)
		}
		sort.Strings(ids)
		return Experiment{}, fmt.Errorf("experiment: unknown id %q (have %v)", id, ids)
	}
	return e, nil
}
