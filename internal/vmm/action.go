package vmm

import (
	"fmt"

	"atcsched/internal/sim"
)

// ActionKind identifies what a Process wants its VCPU to do next.
type ActionKind int

// The supported action kinds.
const (
	// ActCompute burns Work of warm-speed CPU time (cache model applies).
	ActCompute ActionKind = iota
	// ActAcquire takes a guest spinlock, spinning while it is held.
	ActAcquire
	// ActRelease releases a guest spinlock held by this VCPU.
	ActRelease
	// ActSend posts a packet to another VM's process (asynchronous).
	ActSend
	// ActRecv waits for a packet with a matching tag (blocking).
	ActRecv
	// ActDisk issues a disk request of Size bytes and blocks until done.
	ActDisk
	// ActSleep blocks for Dur of virtual time.
	ActSleep
	// ActBlock blocks until the VCPU is explicitly woken (backend use).
	ActBlock
	// ActDone ends the process; the VCPU's OnDone hook decides what next.
	ActDone
)

// String returns the action kind's name.
func (k ActionKind) String() string {
	switch k {
	case ActCompute:
		return "Compute"
	case ActAcquire:
		return "Acquire"
	case ActRelease:
		return "Release"
	case ActSend:
		return "Send"
	case ActRecv:
		return "Recv"
	case ActDisk:
		return "Disk"
	case ActSleep:
		return "Sleep"
	case ActBlock:
		return "Block"
	case ActDone:
		return "Done"
	default:
		return fmt.Sprintf("ActionKind(%d)", int(k))
	}
}

// Action is one step of a Process. Fields are used according to Kind.
type Action struct {
	Kind ActionKind
	// Work is the warm-speed CPU time for ActCompute.
	Work sim.Time
	// Lock is the target of ActAcquire/ActRelease.
	Lock *Spinlock
	// Dst/DstProc/Tag/Size describe an ActSend packet; Tag also selects
	// the ActRecv match and Size the ActDisk request.
	Dst     *VM
	DstProc int
	Tag     int
	Size    int
	// Dur is the ActSleep duration. For ActRecv it is the busy-poll
	// budget: 0 blocks immediately (interrupt-driven I/O); > 0 spins on
	// the mailbox for up to Dur before blocking (MPI progress-engine
	// polling); < 0 spins forever.
	Dur sim.Time
	// Then, if non-nil, runs when the action completes (after the compute
	// finishes, the send is posted, the recv matches, ...). It runs inside
	// the simulation event, so it may post work but must not block.
	Then func()
}

// Compute returns a compute action of the given warm-speed duration.
func Compute(work sim.Time) Action { return Action{Kind: ActCompute, Work: work} }

// Acquire returns a spinlock-acquire action.
func Acquire(l *Spinlock) Action { return Action{Kind: ActAcquire, Lock: l} }

// Release returns a spinlock-release action.
func Release(l *Spinlock) Action { return Action{Kind: ActRelease, Lock: l} }

// Send returns an asynchronous message-send action.
func Send(dst *VM, dstProc, tag, size int) Action {
	return Action{Kind: ActSend, Dst: dst, DstProc: dstProc, Tag: tag, Size: size}
}

// Recv returns a blocking receive action matching tag.
func Recv(tag int) Action { return Action{Kind: ActRecv, Tag: tag} }

// RecvPoll returns a receive that busy-polls for up to poll before
// blocking (poll < 0 polls forever).
func RecvPoll(tag int, poll sim.Time) Action {
	return Action{Kind: ActRecv, Tag: tag, Dur: poll}
}

// DiskIO returns a blocking disk request action.
func DiskIO(size int) Action { return Action{Kind: ActDisk, Size: size} }

// Sleep returns a timed block action.
func Sleep(d sim.Time) Action { return Action{Kind: ActSleep, Dur: d} }

// Done returns the process-finished action.
func Done() Action { return Action{Kind: ActDone} }

// Process generates the actions a VCPU executes. Next is called whenever
// the previous action has completed; implementations are single-threaded
// state machines and must be deterministic given their inputs.
type Process interface {
	Next() Action
}

// ProcessFunc adapts a function to the Process interface.
type ProcessFunc func() Action

// Next calls f.
func (f ProcessFunc) Next() Action { return f() }
