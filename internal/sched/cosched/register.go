package cosched

import (
	"fmt"

	"atcsched/internal/sched/registry"
	"atcsched/internal/vmm"
)

func init() {
	registry.Register(registry.Descriptor{
		Kind:        "CS",
		Order:       3,
		Description: "dynamic co-scheduling: gang-dispatches the VCPUs of spin-heavy VMs at every tick",
		Defaults:    func() any { o := DefaultOptions(); return &o },
		Build: func(opts any, base registry.Base) (vmm.SchedulerFactory, error) {
			o := *opts.(*Options)
			if err := o.Credit.ApplyOverrides(base.FixedSlice, base.DisableBoost, base.DisableSteal); err != nil {
				return nil, err
			}
			if o.SpinWaitThreshold <= 0 {
				return nil, fmt.Errorf("cosched: spin-wait threshold must be positive, got %v", o.SpinWaitThreshold)
			}
			if o.CalmPeriods <= 0 {
				return nil, fmt.Errorf("cosched: calm periods must be positive, got %d", o.CalmPeriods)
			}
			return Factory(o), nil
		},
	})
}
