package metrics_test

import (
	"fmt"

	"atcsched/internal/metrics"
)

// ExampleWelford shows streaming statistics over a latency series.
func ExampleWelford() {
	var w metrics.Welford
	for _, ms := range []float64{1.2, 3.4, 2.2, 8.1, 2.6} {
		w.Add(ms)
	}
	fmt.Printf("n=%d mean=%.2f max=%.1f\n", w.N(), w.Mean(), w.Max())
	// Output: n=5 mean=3.50 max=8.1
}

// ExamplePearson reproduces the paper's §II-B methodology: correlating
// spinlock latency with execution time across a slice sweep.
func ExamplePearson() {
	spinLatency := []float64{54.3, 7.9, 1.3, 0.35, 0.15} // ms
	execTime := []float64{6.1, 0.95, 0.21, 0.14, 0.13}   // s
	r, err := metrics.Pearson(spinLatency, execTime)
	if err != nil {
		panic(err)
	}
	fmt.Printf("r = %.3f\n", r)
	// Output: r = 1.000
}

// ExampleEuclidean is Equation (1): distance between a candidate
// setting's normalized execution times and the per-application optima.
func ExampleEuclidean() {
	optima := []float64{0.26, 0.17}
	at03ms := []float64{0.27, 0.17}
	d, err := metrics.Euclidean(optima, at03ms)
	if err != nil {
		panic(err)
	}
	fmt.Printf("D = %.3f\n", d)
	// Output: D = 0.010
}

// ExampleP2Quantile estimates a tail latency without storing samples.
func ExampleP2Quantile() {
	q := metrics.NewP2Quantile(0.99)
	for i := 0; i < 1000; i++ {
		q.Add(float64(i % 100)) // uniform 0..99
	}
	fmt.Printf("p99 ≈ %.0f\n", q.Value())
	// Output: p99 ≈ 98
}
