package vmm

import (
	"atcsched/internal/diskmodel"
)

// Backend is a node's driver domain machinery: the netback transmit and
// receive queues, the blkback disk queue, and the dom0 VCPU processes
// that service them. A guest packet must traverse the sender's backend
// (netback tx), the physical fabric, and the receiver's backend (netback
// rx) before it reaches the destination VM — and each backend pass
// requires a dom0 VCPU to be scheduled, reproducing overhead sources 2
// and 3 of the paper's Figure 4 (sources 1 and 4 are the guest VCPUs' own
// scheduling waits).
type Backend struct {
	node  *Node
	tx    fifo[Packet]
	rx    fifo[Packet]
	diskQ fifo[diskReq]
	disk  *diskmodel.Disk

	txProcessed   uint64
	rxProcessed   uint64
	diskProcessed uint64
	// processing counts packets popped from a queue whose netback
	// compute has not finished yet (for conservation audits).
	processing int
}

type diskReq struct {
	v    *VCPU
	size int
	then func()
}

// Disk returns the node's disk model.
func (b *Backend) Disk() *diskmodel.Disk { return b.disk }

// TxProcessed returns netback transmit completions.
func (b *Backend) TxProcessed() uint64 { return b.txProcessed }

// RxProcessed returns netback receive completions.
func (b *Backend) RxProcessed() uint64 { return b.rxProcessed }

// DiskProcessed returns blkback submissions.
func (b *Backend) DiskProcessed() uint64 { return b.diskProcessed }

// QueueDepth returns the total backlog across the three queues.
func (b *Backend) QueueDepth() int { return b.tx.len() + b.rx.len() + b.diskQ.len() }

// enqueueTx posts a guest packet to netback and notifies dom0 (the event
// channel of Figure 4, steps 1–3).
func (b *Backend) enqueueTx(pkt Packet) {
	b.tx.push(pkt)
	b.notify()
}

// enqueueRx posts an arrived packet for delivery and notifies dom0
// (steps 7–10).
func (b *Backend) enqueueRx(pkt Packet) {
	b.rx.push(pkt)
	b.notify()
}

// enqueueDisk posts a guest disk request to blkback.
func (b *Backend) enqueueDisk(req diskReq) {
	b.diskQ.push(req)
	b.notify()
}

// notify wakes one blocked dom0 VCPU, mimicking an event-channel upcall.
func (b *Backend) notify() {
	for _, v := range b.node.dom0.vcpus {
		if v.state == StateBlocked {
			b.node.wake(v, true)
			return
		}
	}
}

// backendProc is the service loop running on each dom0 VCPU. It drains
// the netback/blkback queues, paying a per-item CPU cost, and blocks when
// idle.
type backendProc struct {
	b *Backend
}

// Next implements Process.
func (bp *backendProc) Next() Action {
	b := bp.b
	cfg := &b.node.cfg
	switch {
	case b.tx.len() > 0:
		pkt := b.tx.pop()
		b.processing++
		return Action{Kind: ActCompute, Work: cfg.BackendPacketCost, Then: func() {
			b.txProcessed++
			b.processing--
			b.forward(pkt)
		}}
	case b.rx.len() > 0:
		pkt := b.rx.pop()
		b.processing++
		return Action{Kind: ActCompute, Work: cfg.BackendPacketCost, Then: func() {
			b.rxProcessed++
			b.processing--
			pkt.Dst.deliver(pkt)
		}}
	case b.diskQ.len() > 0:
		req := b.diskQ.pop()
		return Action{Kind: ActCompute, Work: cfg.BackendDiskCost, Then: func() {
			b.diskProcessed++
			b.disk.Submit(req.size, func() {
				if req.then != nil {
					req.then()
				}
				req.v.vm.countIOEvent()
				b.node.wake(req.v, true)
			})
		}}
	default:
		return Action{Kind: ActBlock}
	}
}

// forward pushes a processed tx packet onto the wire (Figure 4 steps
// 5–6) or, for a node-local destination, delivers it through the software
// bridge directly.
func (b *Backend) forward(pkt Packet) {
	srcNode := b.node
	dstNode := pkt.Dst.node
	if dstNode == srcNode {
		// Node-local bridge: one backend pass suffices; the fabric models
		// the memory-copy latency.
		srcNode.world.Fabric.Send(srcNode.id, srcNode.id, pkt.Size, func() {
			pkt.Dst.deliver(pkt)
		})
		return
	}
	srcNode.world.Fabric.Send(srcNode.id, dstNode.id, pkt.Size, func() {
		dstNode.backend.enqueueRx(pkt)
	})
}
