package validate

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSpearmanPerfectAgreement(t *testing.T) {
	a := map[string]float64{"x": 1, "y": 2, "z": 3}
	b := map[string]float64{"x": 10, "y": 20, "z": 30}
	r, err := SpearmanRank(a, b)
	if err != nil || math.Abs(r-1) > 1e-12 {
		t.Errorf("r = %v, %v", r, err)
	}
}

func TestSpearmanPerfectDisagreement(t *testing.T) {
	a := map[string]float64{"x": 1, "y": 2, "z": 3}
	b := map[string]float64{"x": 3, "y": 2, "z": 1}
	r, err := SpearmanRank(a, b)
	if err != nil || math.Abs(r+1) > 1e-12 {
		t.Errorf("r = %v, %v", r, err)
	}
}

func TestSpearmanTies(t *testing.T) {
	a := map[string]float64{"w": 1, "x": 2, "y": 2, "z": 4}
	b := map[string]float64{"w": 5, "x": 6, "y": 6, "z": 9}
	r, err := SpearmanRank(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > 1e-12 {
		t.Errorf("tied-agreement r = %v, want 1", r)
	}
}

func TestSpearmanErrors(t *testing.T) {
	if _, err := SpearmanRank(map[string]float64{"a": 1}, map[string]float64{"a": 1}); err == nil {
		t.Error("single key accepted")
	}
	if _, err := SpearmanRank(map[string]float64{"a": 1, "b": 2}, map[string]float64{"a": 1, "c": 2}); err == nil {
		t.Error("mismatched keys accepted")
	}
	if _, err := SpearmanRank(map[string]float64{"a": 1, "b": 1}, map[string]float64{"a": 1, "b": 2}); err == nil {
		t.Error("constant ranks accepted")
	}
}

func TestSpearmanBoundedProperty(t *testing.T) {
	f := func(vals []uint16) bool {
		if len(vals) < 8 {
			return true
		}
		a := map[string]float64{}
		b := map[string]float64{}
		names := []string{"q", "r", "s", "t"}
		for i, n := range names {
			a[n] = float64(vals[i]) + float64(i)*0.01
			b[n] = float64(vals[i+4]) + float64(i)*0.01
		}
		r, err := SpearmanRank(a, b)
		if err != nil {
			return true
		}
		return r >= -1.0000001 && r <= 1.0000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestInBand(t *testing.T) {
	if !InBand(5, 1.5, 10, 1) {
		t.Error("5 not in [1.5,10]")
	}
	if InBand(20, 1.5, 10, 1) {
		t.Error("20 in [1.5,10]")
	}
	if !InBand(20, 1.5, 10, 2) {
		t.Error("20 not in slack-2 band [0.75,20]")
	}
	if !InBand(1, 1.5, 10, 2) {
		t.Error("1 not in slack-2 band")
	}
}

func TestSameDirection(t *testing.T) {
	if !SameDirection(1.75, 14.0) {
		t.Error("both >1 should agree")
	}
	if SameDirection(1.75, 0.9) {
		t.Error(">1 vs <1 should disagree")
	}
	if !SameDirection(0.35, 0.5) {
		t.Error("both <1 should agree")
	}
	if !SameDirection(1, 1) {
		t.Error("exact 1 vs 1")
	}
}

func TestScorecard(t *testing.T) {
	var s Scorecard
	s.Add("a", "x", "y", true)
	s.Add("b", "x", "y", false)
	if s.Passed() != 1 || len(s.Checks) != 2 {
		t.Errorf("passed=%d checks=%d", s.Passed(), len(s.Checks))
	}
}
