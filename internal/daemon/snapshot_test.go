package daemon

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"atcsched/internal/core"
	"atcsched/internal/sim"
)

// -update rewrites the snapshot golden file from the current codec.
var update = flag.Bool("update", false, "rewrite snapshot golden files")

// goldenFleet builds a small fleet with fixed, fully-populated control
// state: two nodes, VMs with history, a blacked-out VM, admin slices,
// sequence numbers and fault counters.
func goldenFleet(t *testing.T) *Fleet {
	t.Helper()
	act := &MapFleetActuator{}
	f := NewFleet(core.DefaultConfig(), nil, act, FleetOptions{Shards: 2})
	t.Cleanup(f.Close)
	step := func(node int, samples ...VMSample) {
		if err := f.Ingest(NodeBatch{Node: node, Samples: samples}); err != nil {
			t.Fatal(err)
		}
		f.Drain() // per-period barrier: the golden state must be deterministic
	}
	for seq := uint64(1); seq <= 4; seq++ {
		step(0,
			VMSample{ID: 1, AvgSpinLatency: ms(2), Parallel: true, Seq: seq},
			VMSample{ID: 2, AvgSpinLatency: ms(5), Parallel: true, Seq: seq},
			VMSample{ID: 3, AdminSlice: ms(6), Seq: seq})
		step(1, VMSample{ID: 4, AvgSpinLatency: ms(1), Parallel: true, Seq: seq})
	}
	// One stale repeat and one dropout for node 1's bookkeeping.
	step(1, VMSample{ID: 4, AvgSpinLatency: ms(1), Parallel: true, Seq: 4})
	step(0,
		VMSample{ID: 1, AvgSpinLatency: ms(2), Parallel: true, Seq: 5},
		VMSample{ID: 2, AvgSpinLatency: ms(5), Parallel: true, Seq: 5})
	f.Drain()
	f.periods.Store(6)
	return f
}

// TestSnapshotGolden pins the snapshot wire format byte-for-byte
// (regenerate with -update): the schema is a compatibility surface — a
// daemon must be restorable from a snapshot written by an older build
// of the same version.
func TestSnapshotGolden(t *testing.T) {
	enc, err := goldenFleet(t).Snapshot().Encode()
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "fleet_snapshot.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, enc, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(enc, want) {
		t.Errorf("snapshot encoding changed; if intentional bump SnapshotVersion and rerun with -update\ngot:\n%s\nwant:\n%s", enc, want)
	}
}

// TestSnapshotRoundTrip pins encode→decode→restore→encode as the
// identity on control state.
func TestSnapshotRoundTrip(t *testing.T) {
	enc, err := goldenFleet(t).Snapshot().Encode()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := DecodeSnapshot(enc)
	if err != nil {
		t.Fatal(err)
	}
	f2 := NewFleet(core.DefaultConfig(), nil, &MapFleetActuator{}, FleetOptions{Shards: 3})
	defer f2.Close()
	if err := f2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	enc2, err := f2.Snapshot().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Errorf("restore is not the identity:\nfirst:\n%s\nsecond:\n%s", enc, enc2)
	}
}

// TestSnapshotVersionMismatch pins outright rejection of any other
// schema version — no guessing.
func TestSnapshotVersionMismatch(t *testing.T) {
	enc, err := goldenFleet(t).Snapshot().Encode()
	if err != nil {
		t.Fatal(err)
	}
	bad := bytes.Replace(enc, []byte(`"version": 1`), []byte(`"version": 2`), 1)
	if !bytes.Contains(enc, []byte(`"version": 1`)) {
		t.Fatal("test assumes version field renders as \"version\": 1")
	}
	if _, err := DecodeSnapshot(bad); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("DecodeSnapshot(version 2) = %v, want version-mismatch error", err)
	}
	if _, err := DecodeSnapshot([]byte("{not json")); err == nil {
		t.Error("DecodeSnapshot accepted malformed JSON")
	}
	s := &FleetSnapshot{Version: 99, Config: core.DefaultConfig()}
	f := NewFleet(core.DefaultConfig(), nil, &MapFleetActuator{}, FleetOptions{})
	defer f.Close()
	if err := f.Restore(s); err == nil {
		t.Error("Restore accepted a version-99 snapshot")
	}
}

// TestSnapshotRestoreUnknownNode pins restore-with-unknown-node
// handling: entries outside the fleet's MaxNodes are skipped and
// counted, the rest restore fine — a shrunk fleet still comes back up.
func TestSnapshotRestoreUnknownNode(t *testing.T) {
	snap := goldenFleet(t).Snapshot() // nodes 0 and 1
	snap.Nodes = append(snap.Nodes, NodeSnapshot{Node: 99, Periods: 3})
	f := NewFleet(core.DefaultConfig(), nil, &MapFleetActuator{}, FleetOptions{MaxNodes: 1})
	defer f.Close()
	if err := f.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if got := f.RestoredNodes(); got != 1 {
		t.Errorf("restored = %d, want 1 (node 0 only)", got)
	}
	if got := f.SkippedRestoreNodes(); got != 2 {
		t.Errorf("skipped = %d, want 2 (node 1 beyond MaxNodes, node 99 unknown)", got)
	}
	if got := f.Nodes(); len(got) != 1 || got[0] != 0 {
		t.Errorf("fleet nodes = %v, want [0]", got)
	}
}

// TestSnapshotConfigMismatch pins that a snapshot taken under a
// different controller config is refused (the history windows are
// config-shaped).
func TestSnapshotConfigMismatch(t *testing.T) {
	snap := goldenFleet(t).Snapshot()
	cfg := core.DefaultConfig()
	cfg.Default = 24 * sim.Millisecond
	f := NewFleet(cfg, nil, &MapFleetActuator{}, FleetOptions{})
	defer f.Close()
	if err := f.Restore(snap); err == nil {
		t.Error("Restore accepted a snapshot with a different controller config")
	}
}
