package proptest

import (
	"testing"

	"atcsched/internal/cluster"
	"atcsched/internal/fault"
)

// shardEquivSpec is the pinned shard-equivalence scenario: four nodes
// (so four shards are real, not clamped), two parallel clusters striped
// across them, non-parallel co-tenants, a live policy switch and a fault
// schedule exercising the network, compute and monitor planes — every
// subsystem whose sharding could leak into results.
func shardEquivSpec() Spec {
	return Spec{
		Seed:  7,
		Nodes: 4,
		PCPUs: 2,
		Clusters: []ClusterSpec{
			{Kernel: "lu", Class: "A", VMs: 4, VCPUs: 2, Rounds: 2, Iterations: 3},
			{Kernel: "ep", Class: "A", VMs: 2, VCPUs: 2, Rounds: 2, Iterations: 2},
		},
		Jobs: []JobSpec{
			{Type: "web", Node: 0},
			{Type: "ping", Node: 2},
			{Type: "disk", Node: 3},
		},
		SwapKind:   "CR",
		SwapAtSec:  0.2,
		HorizonSec: 900,
		Faults: &fault.Spec{Windows: []fault.Window{
			{Kind: fault.PCPUSlow, StartSec: 0.01, DurSec: 0.2, Nodes: []int{1}, Severity: 3},
			{Kind: fault.PacketLoss, StartSec: 0.02, DurSec: 0.3, Severity: 0.15},
			{Kind: fault.Bandwidth, StartSec: 0.1, DurSec: 0.2, Severity: 0.5},
			{Kind: fault.MonitorDrop, StartSec: 0.01, DurSec: 0.3, Severity: 0.4},
		}},
	}
}

// shardCounts is the equivalence set the acceptance criteria name.
var shardCounts = []int{1, 2, 4, 8}

// shardFingerprint runs spec at the given shard count under one approach
// and returns the full determinism fingerprint.
func shardFingerprint(t *testing.T, spec Spec, approach cluster.Approach, shards int) string {
	t.Helper()
	spec.Shards = shards
	r, err := runOne(spec, approach, true)
	if err != nil {
		t.Fatalf("shards=%d: build: %v", shards, err)
	}
	if !r.completed {
		t.Fatalf("shards=%d: measured runs incomplete (rounds %v)", shards, r.runRounds)
	}
	return r.fingerprint
}

// TestShardEquivalencePinned proves the determinism fingerprint of the
// pinned scenario — faults, live switch and co-tenants included — is
// byte-identical at shard counts 1, 2, 4 and 8.
func TestShardEquivalencePinned(t *testing.T) {
	spec := shardEquivSpec()
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	ref := shardFingerprint(t, spec, cluster.ATC, shardCounts[0])
	for _, sc := range shardCounts[1:] {
		if got := shardFingerprint(t, spec, cluster.ATC, sc); got != ref {
			t.Errorf("shards=%d: fingerprint diverged from shards=%d at byte %d of %d/%d",
				sc, shardCounts[0], diffAt(ref, got), len(ref), len(got))
		}
	}
}

// TestShardEquivalenceGenerated extends the pinned check to generated
// scenarios: several seeds, each forced through every shard count, each
// a different primary approach. Shard counts above the node count clamp
// inside the world builder, so small worlds still run (serial-equivalent
// shape) rather than skip.
func TestShardEquivalenceGenerated(t *testing.T) {
	approaches := cluster.ExtendedApproaches()
	for seed := uint64(1); seed <= 4; seed++ {
		spec := Generate(seed, Bounded())
		approach := Primary(spec, approaches)
		ref := shardFingerprint(t, spec, approach, shardCounts[0])
		for _, sc := range shardCounts[1:] {
			if got := shardFingerprint(t, spec, approach, sc); got != ref {
				t.Errorf("seed=%d shards=%d (%s): fingerprint diverged at byte %d of %d/%d",
					seed, sc, approach, diffAt(ref, got), len(ref), len(got))
			}
		}
	}
}
