package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestLiveTelemetrySurface drives a full atcd run in-process: sim
// backend, HTTP telemetry surface, timeline and JSONL artifacts, and
// signal-driven shutdown. It is the acceptance check that a live atcd
// answers /metrics with per-node spin-latency and controller-decision
// series.
func TestLiveTelemetrySurface(t *testing.T) {
	dir := t.TempDir()
	timeline := filepath.Join(dir, "timeline.json")
	jsonl := filepath.Join(dir, "series.jsonl")

	addrc := make(chan string, 1)
	listenReady = func(addr string) { addrc <- addr }
	defer func() { listenReady = nil }()

	var stdout, stderr bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-backend", "sim", "-periods", "60",
			"-listen", "127.0.0.1:0",
			"-timeline", timeline, "-jsonl", jsonl,
		}, &stdout, &stderr)
	}()

	var addr string
	select {
	case addr = <-addrc:
	case err := <-done:
		t.Fatalf("run exited before listening: %v\n%s", err, stderr.String())
	case <-time.After(30 * time.Second):
		t.Fatal("timed out waiting for the listener")
	}

	// The surface stays up after the control loop ends, so polling until
	// the run's series appear observes a complete scrape deterministically.
	metrics := pollMetrics(t, addr, done, &stderr)
	for _, want := range []string{
		"atc_vm_spin_latency_ns_last{node=", // per-node spin latency
		"atc_daemon_decision_apply_total",   // controller decisions
		"atc_daemon_slice_ns_last{vm=",      // per-VM slice series
		"atc_sched_dispatches_total{node=",  // per-node scheduler counters
		"atc_spin_latency_bucket{node=",     // spin-latency histogram
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q\n%s", want, metrics)
		}
	}

	// /debug/atc must be a JSON snapshot with a daemon summary.
	resp, err := http.Get("http://" + addr + "/debug/atc")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var dbg struct {
		Summary map[string]any `json:"summary"`
	}
	if err := json.Unmarshal(body, &dbg); err != nil {
		t.Fatalf("/debug/atc is not JSON: %v", err)
	}
	if p, ok := dbg.Summary["periods"].(float64); !ok || p <= 0 {
		t.Fatalf("/debug/atc summary has no committed periods: %v", dbg.Summary)
	}

	// SIGINT must shut the server down and let run return cleanly.
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run failed: %v\n%s", err, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run did not exit after SIGINT")
	}
	if !strings.Contains(stderr.String(), "telemetry server closed") {
		t.Errorf("shutdown did not report closing the server:\n%s", stderr.String())
	}

	// The timeline artifact must parse as trace-event JSON and carry
	// both scheduling slices and telemetry spans.
	raw, err := os.ReadFile(timeline)
	if err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &file); err != nil {
		t.Fatalf("timeline is not trace-event JSON: %v", err)
	}
	var sched, spin, decision bool
	for _, ev := range file.TraceEvents {
		switch {
		case ev.Ph == "X" && strings.Contains(ev.Name, "/"):
			sched = true
		case ev.Name == "spin":
			spin = true
		case ev.Name == "decision":
			decision = true
		}
	}
	if !sched || !spin || !decision {
		t.Errorf("timeline lacks expected events: sched=%v spin=%v decision=%v", sched, spin, decision)
	}

	// The JSONL artifact must be line-parseable with a meta header.
	jraw, err := os.ReadFile(jsonl)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(jraw), "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("jsonl dump has %d lines", len(lines))
	}
	for i, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("jsonl line %d is not JSON: %v", i, err)
		}
		if i == 0 && m["type"] != "meta" {
			t.Fatalf("jsonl does not start with a meta line: %s", ln)
		}
	}
}

// pollMetrics scrapes /metrics until the daemon's committed series are
// visible (the loop may still be mid-run on the first scrapes).
func pollMetrics(t *testing.T, addr string, done chan error, stderr *bytes.Buffer) string {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	var last string
	for time.Now().Before(deadline) {
		select {
		case err := <-done:
			t.Fatalf("run exited during scrape: %v\n%s", err, stderr.String())
		default:
		}
		resp, err := http.Get("http://" + addr + "/metrics")
		if err == nil {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
				t.Fatalf("/metrics content type %q", ct)
			}
			last = string(body)
			// sched_dispatches totals land at finalization, so their
			// presence means the scrape covers the whole run.
			if strings.Contains(last, "atc_daemon_decision_apply_total") &&
				strings.Contains(last, "atc_vm_spin_latency_ns_last") &&
				strings.Contains(last, "atc_sched_dispatches_total") {
				return last
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("metrics never showed the run's series; last scrape:\n%s", last)
	return ""
}

// TestDemoBackend keeps the original demo path working through run().
func TestDemoBackend(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-backend", "demo", "-periods", "12"}, &stdout, &stderr); err != nil {
		t.Fatalf("demo run failed: %v\n%s", err, stderr.String())
	}
	if !strings.Contains(stdout.String(), "vm1 ") {
		t.Errorf("demo produced no actuation lines:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "12 control periods executed") {
		t.Errorf("missing period summary:\n%s", stderr.String())
	}
}

// TestFleetSnapshotRoundTrip drives atcd's fleet mode end to end: a
// hollow 8-node run writes a snapshot at exit, a second process
// restores from it and keeps going, and the /debug/atc surface of the
// first run exposes the per-node fleet table with policies.
func TestFleetSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	snap1 := filepath.Join(dir, "fleet1.json")
	snap2 := filepath.Join(dir, "fleet2.json")

	addrc := make(chan string, 1)
	listenReady = func(addr string) { addrc <- addr }
	defer func() { listenReady = nil }()

	var stdout, stderr bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-nodes", "8", "-shards", "2", "-hollow", "-periods", "30",
			"-snapshot", snap1, "-listen", "127.0.0.1:0",
		}, &stdout, &stderr)
	}()
	var addr string
	select {
	case addr = <-addrc:
	case err := <-done:
		t.Fatalf("fleet run exited before listening: %v\n%s", err, stderr.String())
	case <-time.After(30 * time.Second):
		t.Fatal("timed out waiting for the fleet listener")
	}

	// /debug/atc must expose the fleet summary and the per-node table.
	type fleetDebug struct {
		Summary struct {
			Fleet struct {
				Nodes   int    `json:"nodes"`
				Shards  int    `json:"shards"`
				Periods uint64 `json:"periods"`
			} `json:"fleet"`
			Nodes []struct {
				Node   int    `json:"node"`
				Policy string `json:"policy"`
			} `json:"nodes"`
		} `json:"summary"`
	}
	var dbg fleetDebug
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("fleet table never filled: %+v", dbg.Summary)
		}
		resp, err := http.Get("http://" + addr + "/debug/atc")
		if err == nil {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err := json.Unmarshal(body, &dbg); err != nil {
				t.Fatalf("/debug/atc is not JSON: %v\n%s", err, body)
			}
			if dbg.Summary.Fleet.Periods > 0 && len(dbg.Summary.Nodes) == 8 {
				break
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	if dbg.Summary.Fleet.Nodes != 8 || dbg.Summary.Fleet.Shards != 2 {
		t.Errorf("fleet summary = %+v, want 8 nodes over 2 shards", dbg.Summary.Fleet)
	}
	for _, row := range dbg.Summary.Nodes {
		if row.Policy == "" {
			t.Errorf("node %d has no policy in the fleet table", row.Node)
		}
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("fleet run failed: %v\n%s", err, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("fleet run did not exit after SIGINT")
	}
	if !strings.Contains(stderr.String(), "snapshot of 8 nodes written") {
		t.Errorf("missing snapshot confirmation:\n%s", stderr.String())
	}

	// Second process: restore and continue without the HTTP surface.
	stdout.Reset()
	stderr.Reset()
	if err := run([]string{
		"-nodes", "8", "-shards", "4", "-hollow", "-periods", "30",
		"-restore", snap1, "-snapshot", snap2,
	}, &stdout, &stderr); err != nil {
		t.Fatalf("restored fleet run failed: %v\n%s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "restored 8 nodes from") {
		t.Errorf("missing restore confirmation:\n%s", stderr.String())
	}
	raw, err := os.ReadFile(snap2)
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Version int `json:"version"`
		Nodes   []struct {
			Periods uint64 `json:"periods"`
		} `json:"nodes"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("exit snapshot is not JSON: %v", err)
	}
	if out.Version != 1 || len(out.Nodes) != 8 {
		t.Errorf("exit snapshot: version=%d nodes=%d, want version 1 with 8 nodes", out.Version, len(out.Nodes))
	}
	// The restored run continued from the first run's state: its nodes
	// carry more committed periods than one 30-period run can produce.
	for _, n := range out.Nodes {
		if n.Periods <= 30 {
			t.Errorf("restored node periods = %d, want > 30 (carried over)", n.Periods)
		}
	}
}

// TestFleetFlagValidation pins the fleet-mode flag guards.
func TestFleetFlagValidation(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-nodes", "4", "-backend", "stdio"}, &stdout, &stderr); err == nil {
		t.Fatal("fleet mode accepted the stdio backend")
	}
	if err := run([]string{"-snapshot", "x.json"}, &stdout, &stderr); err == nil {
		t.Fatal("-snapshot without -nodes did not error")
	}
	if err := run([]string{"-nodes", "2", "-restore", "/does/not/exist.json"}, &stdout, &stderr); err == nil {
		t.Fatal("missing -restore file did not error")
	}
}

// TestBadFlags proves flag errors surface as errors, not exits.
func TestBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-backend", "nope"}, &stdout, &stderr); err == nil {
		t.Fatal("unknown backend did not error")
	}
	if err := run([]string{"-backend", "sim", "-swap", "garbage"}, &stdout, &stderr); err == nil {
		t.Fatal("bad -swap did not error")
	}
}
