package metrics

import (
	"fmt"
	"math"
	"sort"
)

// P2Quantile estimates a single quantile of a stream in O(1) memory
// using the P² algorithm (Jain & Chlamtac, 1985). The evaluation uses it
// for p95/p99 response times, where storing every sample of a long run
// would be wasteful.
type P2Quantile struct {
	p       float64
	n       int64
	heights [5]float64 // marker heights
	pos     [5]float64 // actual marker positions (1-based)
	want    [5]float64 // desired marker positions
	incr    [5]float64 // desired position increments per observation
	init    []float64  // first five samples, sorted lazily
}

// NewP2Quantile returns an estimator for the p-quantile, p in (0, 1).
func NewP2Quantile(p float64) *P2Quantile {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("metrics: quantile %v out of (0,1)", p))
	}
	q := &P2Quantile{p: p}
	q.want = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
	q.incr = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return q
}

// P returns the estimated quantile's probability.
func (q *P2Quantile) P() float64 { return q.p }

// N returns the number of samples observed.
func (q *P2Quantile) N() int64 { return q.n }

// Add incorporates one sample.
func (q *P2Quantile) Add(x float64) {
	q.n++
	if q.n <= 5 {
		q.init = append(q.init, x)
		if q.n == 5 {
			sort.Float64s(q.init)
			copy(q.heights[:], q.init)
			q.pos = [5]float64{1, 2, 3, 4, 5}
			q.init = nil
		}
		return
	}

	// Find the cell containing x and clamp the extremes.
	var k int
	switch {
	case x < q.heights[0]:
		q.heights[0] = x
		k = 0
	case x >= q.heights[4]:
		q.heights[4] = x
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if x < q.heights[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		q.pos[i]++
	}
	for i := range q.want {
		q.want[i] += q.incr[i]
	}

	// Adjust the three middle markers with parabolic interpolation.
	for i := 1; i <= 3; i++ {
		d := q.want[i] - q.pos[i]
		if (d >= 1 && q.pos[i+1]-q.pos[i] > 1) || (d <= -1 && q.pos[i-1]-q.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1.0
			}
			h := q.parabolic(i, sign)
			if q.heights[i-1] < h && h < q.heights[i+1] {
				q.heights[i] = h
			} else {
				q.heights[i] = q.linear(i, sign)
			}
			q.pos[i] += sign
		}
	}
}

func (q *P2Quantile) parabolic(i int, d float64) float64 {
	return q.heights[i] + d/(q.pos[i+1]-q.pos[i-1])*
		((q.pos[i]-q.pos[i-1]+d)*(q.heights[i+1]-q.heights[i])/(q.pos[i+1]-q.pos[i])+
			(q.pos[i+1]-q.pos[i]-d)*(q.heights[i]-q.heights[i-1])/(q.pos[i]-q.pos[i-1]))
}

func (q *P2Quantile) linear(i int, d float64) float64 {
	j := i + int(d)
	return q.heights[i] + d*(q.heights[j]-q.heights[i])/(q.pos[j]-q.pos[i])
}

// Value returns the current estimate. With fewer than five samples it
// falls back to the exact small-sample quantile; with none it returns 0.
func (q *P2Quantile) Value() float64 {
	if q.n == 0 {
		return 0
	}
	if q.n < 5 {
		c := append([]float64(nil), q.init...)
		sort.Float64s(c)
		idx := q.p * float64(len(c)-1)
		lo := int(math.Floor(idx))
		hi := int(math.Ceil(idx))
		frac := idx - float64(lo)
		return c[lo]*(1-frac) + c[hi]*frac
	}
	return q.heights[2]
}
