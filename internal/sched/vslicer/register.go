package vslicer

import (
	"fmt"

	"atcsched/internal/sched/registry"
	"atcsched/internal/vmm"
)

func init() {
	registry.Register(registry.Descriptor{
		Kind:        "VS",
		Order:       5,
		Description: "vSlicer microslicing: latency-sensitive VMs run at a much finer slice than the default",
		Defaults:    func() any { o := DefaultOptions(); return &o },
		Build: func(opts any, base registry.Base) (vmm.SchedulerFactory, error) {
			o := *opts.(*Options)
			if err := o.Credit.ApplyOverrides(base.FixedSlice, base.DisableBoost, base.DisableSteal); err != nil {
				return nil, err
			}
			if o.MicroSlice <= 0 {
				return nil, fmt.Errorf("vslicer: micro slice must be positive, got %v", o.MicroSlice)
			}
			// A base slice at or below the microslice would violate
			// vSlicer's micro < base invariant; keep the 30:1
			// differentiated-frequency ratio relative to the base instead.
			if o.MicroSlice >= o.Credit.TimeSlice {
				o.MicroSlice = o.Credit.TimeSlice / 30
				if o.MicroSlice <= 0 {
					return nil, fmt.Errorf("vslicer: base slice %v too small to microslice", o.Credit.TimeSlice)
				}
			}
			return Factory(o), nil
		},
	})
}
