package daemon

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"atcsched/internal/core"
	"atcsched/internal/runner"
	"atcsched/internal/sim"
	"atcsched/internal/telemetry"
)

// NodeBatch is one fleet node's telemetry for one control period.
type NodeBatch struct {
	Node    int
	Samples []VMSample
}

// FleetSource provides one period's batches for every live node (a node
// in blackout simply contributes no batch). io.EOF ends the control
// loop cleanly.
type FleetSource interface {
	SampleFleet() ([]NodeBatch, error)
}

// FleetActuator applies one node's slices.
type FleetActuator interface {
	ApplyNode(node int, slices map[int]sim.Time) error
}

// FleetOptions size the fleet control plane.
type FleetOptions struct {
	// Node carries the per-node hardened-loop options (retry/stale/
	// giveup — the PR 5 machinery, applied per fleet node).
	Node Options
	// Shards is the number of decider/applier goroutine pairs the
	// per-node controller state is sharded across (hash(node)→shard;
	// default 1). There are no cross-shard locks on the hot path.
	Shards int
	// IngestCapacity bounds the central telemetry ring buffer (default
	// 256 batches). Ingest blocks when the ring is full: backpressure,
	// not silent loss.
	IngestCapacity int
	// QueueCapacity bounds each node's actuation queue (default 4).
	// When a node's queue is full the OLDEST queued decision for that
	// node is dropped — it has been superseded by fresher data — and
	// counted in Overflow plus the node's DroppedPeriods.
	QueueCapacity int
	// MaxNodes, when positive, bounds the node IDs the fleet accepts:
	// batches and snapshot entries for nodes outside [0,MaxNodes) are
	// counted and ignored rather than growing state without bound.
	MaxNodes int
}

// sanitize fills defaults.
func (o *FleetOptions) sanitize() {
	o.Node.sanitize()
	if o.Shards < 1 {
		o.Shards = 1
	}
	if o.IngestCapacity < 1 {
		o.IngestCapacity = 256
	}
	if o.QueueCapacity < 1 {
		o.QueueCapacity = 4
	}
}

// fleetShardSalt seeds the node→shard hash (splitmix64 via runner.Seed)
// so shard assignment is deterministic across runs and restores.
const fleetShardSalt = 0xa7c15f1ee7

// ingestItem is one batch in flight through the pipeline.
type ingestItem struct {
	batch NodeBatch
	enq   time.Time
	done  func()
}

// actItem is one decided-but-not-yet-applied actuation.
type actItem struct {
	node   int
	slices map[int]sim.Time
	enq    time.Time
	done   func()
}

// fleetNode is one node's control state plus the lock that lets the
// shard's decider and applier (and Table/Snapshot readers) interleave
// safely. The lock is released around the blocking ApplyNode call so a
// wedged actuator never stalls deciding for the same node.
type fleetNode struct {
	mu         sync.Mutex
	loop       *nodeLoop
	lastCommit time.Time // wall clock of the last committed actuation
}

// fleetShard owns a disjoint subset of nodes: one decider goroutine
// draining batchc into per-node decisions, one applier goroutine
// draining the bounded actuation queue. Shards share nothing but the
// Fleet's counters (atomics), so the hot path takes no cross-shard
// locks.
type fleetShard struct {
	f      *Fleet
	batchc chan ingestItem

	mu    sync.Mutex // guards nodes
	nodes map[int]*fleetNode

	qmu     sync.Mutex // guards queue/qdepth/qclosed; ordered before fleetNode.mu
	qcond   *sync.Cond
	queue   []*actItem
	qdepth  map[int]int
	qclosed bool
}

// Fleet is the thousand-node control plane: batched telemetry ingestion
// through a bounded ring, per-node controller state (nodeLoop — the
// exact machinery behind the single-node Daemon) sharded across
// goroutines, and bounded per-node actuation queues with overflow
// accounting. Step runs one fleet-wide control period with a drain
// barrier, which keeps closed-loop simulation deterministic at any
// shard count; Ingest/Drain expose the asynchronous surface directly.
type Fleet struct {
	cfg  core.Config
	opts FleetOptions
	src  FleetSource
	act  FleetActuator

	ingestMu sync.RWMutex // serializes Ingest sends against Close
	ingestc  chan ingestItem
	shards   []*fleetShard
	inflight sync.WaitGroup
	wg       sync.WaitGroup

	stop      atomic.Bool
	stopc     chan struct{}
	stopOnce  sync.Once
	closed    atomic.Bool
	closeOnce sync.Once

	errMu sync.Mutex
	err   error

	periods        atomic.Uint64 // committed fleet steps (queue cursor)
	decisions      atomic.Uint64 // node-periods whose actuation landed
	overflow       atomic.Uint64 // actuation-queue overflow drops
	rejected       atomic.Uint64 // batches outside [0,MaxNodes)
	restoredNodes  atomic.Uint64
	skippedRestore atomic.Uint64

	tel      *telemetry.Registry
	telClock func() sim.Time
}

// NewFleet builds the fleet control plane and starts its pipeline
// goroutines (1 dispatcher + Shards×(decider, applier)). src may be nil
// when the caller drives Ingest/Drain directly; Step then errors.
func NewFleet(cfg core.Config, src FleetSource, act FleetActuator, opts FleetOptions) *Fleet {
	if act == nil {
		panic("daemon: nil fleet actuator")
	}
	opts.sanitize()
	f := &Fleet{
		cfg:     cfg,
		opts:    opts,
		src:     src,
		act:     act,
		ingestc: make(chan ingestItem, opts.IngestCapacity),
		stopc:   make(chan struct{}),
	}
	f.shards = make([]*fleetShard, opts.Shards)
	for i := range f.shards {
		sh := &fleetShard{
			f:      f,
			batchc: make(chan ingestItem, opts.IngestCapacity),
			nodes:  make(map[int]*fleetNode),
			qdepth: make(map[int]int),
		}
		sh.qcond = sync.NewCond(&sh.qmu)
		f.shards[i] = sh
	}
	f.wg.Add(1)
	go f.dispatch()
	for _, sh := range f.shards {
		f.wg.Add(2)
		go sh.decideLoop()
		go sh.applyLoop()
	}
	return f
}

// shardOf hashes a node ID onto its shard.
func (f *Fleet) shardOf(node int) *fleetShard {
	if len(f.shards) == 1 {
		return f.shards[0]
	}
	return f.shards[runner.Seed(fleetShardSalt, node)%uint64(len(f.shards))]
}

// SetTelemetry attaches a registry the fleet publishes into: committed
// decisions and overflow counters, ingest-queue depth, a wall-clock
// decision-latency histogram (ingest→actuation-landed), and restore
// spans. clock supplies the span time axis (nil: zero).
func (f *Fleet) SetTelemetry(reg *telemetry.Registry, clock func() sim.Time) {
	f.tel = reg
	f.telClock = clock
}

func (f *Fleet) telNow() sim.Time {
	if f.telClock != nil {
		return f.telClock()
	}
	return 0
}

// Ingest queues one node's batch for decision and actuation, blocking
// when the ring buffer is full (backpressure). Batches for nodes
// outside MaxNodes are counted in Rejected and ignored. Returns an
// error only after Close.
func (f *Fleet) Ingest(b NodeBatch) error {
	if f.opts.MaxNodes > 0 && (b.Node < 0 || b.Node >= f.opts.MaxNodes) {
		f.rejected.Add(1)
		return nil
	}
	f.ingestMu.RLock()
	defer f.ingestMu.RUnlock()
	if f.closed.Load() {
		return errors.New("daemon: fleet closed")
	}
	f.inflight.Add(1)
	f.ingestc <- ingestItem{batch: b, enq: time.Now(), done: f.inflight.Done}
	return nil
}

// Drain blocks until every ingested batch has been decided and its
// actuation has landed, overflowed, or dropped — the period barrier.
func (f *Fleet) Drain() { f.inflight.Wait() }

// dispatch drains the central ring onto the shards.
func (f *Fleet) dispatch() {
	defer f.wg.Done()
	defer func() {
		for _, sh := range f.shards {
			close(sh.batchc)
		}
	}()
	for it := range f.ingestc {
		f.shardOf(it.batch.Node).batchc <- it
	}
}

// node returns the shard-local state for a node, creating it on first
// sight.
func (sh *fleetShard) node(id int) *fleetNode {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	fn, ok := sh.nodes[id]
	if !ok {
		fn = &fleetNode{loop: newNodeLoop(sh.f.cfg, sh.f.opts.Node)}
		sh.nodes[id] = fn
	}
	return fn
}

// decideLoop turns batches into slice decisions and queues them for
// actuation.
func (sh *fleetShard) decideLoop() {
	defer sh.f.wg.Done()
	defer sh.closeQueue()
	for it := range sh.batchc {
		fn := sh.node(it.batch.Node)
		fn.mu.Lock()
		slices := fn.loop.decide(it.batch.Samples)
		fn.mu.Unlock()
		sh.push(&actItem{node: it.batch.Node, slices: slices, enq: it.enq, done: it.done})
	}
}

// push appends one actuation, evicting the oldest queued decision for
// the same node when its queue is at capacity (superseded by fresher
// data; counted as overflow and a dropped period, but not as a
// consecutive drop — nothing failed, the plane just fell behind).
func (sh *fleetShard) push(it *actItem) {
	var evicted *actItem
	sh.qmu.Lock()
	if sh.qdepth[it.node] >= sh.f.opts.QueueCapacity {
		for i, old := range sh.queue {
			if old.node == it.node {
				sh.queue = append(sh.queue[:i], sh.queue[i+1:]...)
				sh.qdepth[it.node]--
				evicted = old
				break
			}
		}
	}
	sh.queue = append(sh.queue, it)
	sh.qdepth[it.node]++
	sh.qcond.Signal()
	sh.qmu.Unlock()
	if evicted != nil {
		sh.f.overflow.Add(1)
		fn := sh.node(evicted.node)
		fn.mu.Lock()
		fn.loop.stats.DroppedPeriods++
		fn.mu.Unlock()
		if sh.f.tel != nil {
			sh.f.tel.Add("fleet_actq_overflow", telemetry.GlobalLabel(), 1)
		}
		evicted.done()
	}
}

// closeQueue wakes the applier for final drain-and-exit.
func (sh *fleetShard) closeQueue() {
	sh.qmu.Lock()
	sh.qclosed = true
	sh.qcond.Broadcast()
	sh.qmu.Unlock()
}

// pop blocks for the next actuation; nil means closed and fully
// drained.
func (sh *fleetShard) pop() *actItem {
	sh.qmu.Lock()
	defer sh.qmu.Unlock()
	for len(sh.queue) == 0 && !sh.qclosed {
		sh.qcond.Wait()
	}
	if len(sh.queue) == 0 {
		return nil
	}
	it := sh.queue[0]
	sh.queue = sh.queue[1:]
	sh.qdepth[it.node]--
	return it
}

// applyLoop drains the actuation queue through the per-node retry
// machinery.
func (sh *fleetShard) applyLoop() {
	defer sh.f.wg.Done()
	for {
		it := sh.pop()
		if it == nil {
			return
		}
		sh.apply(it)
	}
}

// apply drives one actuation. The node lock is dropped around the
// blocking ApplyNode call — a wedged actuator must not stall deciding
// for this node — and re-taken for every state mutation, reusing
// nodeLoop.applyWithRetry verbatim.
func (sh *fleetShard) apply(it *actItem) {
	defer it.done()
	fn := sh.node(it.node)
	fn.mu.Lock()
	committed, err := fn.loop.applyWithRetry(it.slices, func(s map[int]sim.Time) error {
		fn.mu.Unlock()
		e := sh.f.act.ApplyNode(it.node, s)
		fn.mu.Lock()
		return e
	}, sh.f.wait)
	if committed {
		fn.loop.commit(it.slices)
		fn.lastCommit = time.Now()
	}
	fn.mu.Unlock()
	if err != nil {
		sh.f.setErr(fmt.Errorf("fleet node %d: %w", it.node, err))
	}
	if committed {
		sh.f.decisions.Add(1)
		if sh.f.tel != nil {
			sh.f.tel.Add("fleet_decisions", telemetry.GlobalLabel(), 1)
			sh.f.tel.Observe("fleet_decision_latency", telemetry.GlobalLabel(),
				sim.Time(time.Since(it.enq).Nanoseconds()))
		}
	}
}

// wait performs one retry backoff: wall clock, cut short by Stop (the
// remaining attempts still run — stop drains, it does not abandon).
func (f *Fleet) wait(dt time.Duration) {
	if f.opts.Node.Sleep != nil {
		f.opts.Node.Sleep(dt)
		return
	}
	t := time.NewTimer(dt)
	defer t.Stop()
	select {
	case <-t.C:
	case <-f.stopc:
	}
}

// setErr records the first terminal error (give-up on some node);
// further periods for other nodes keep flowing, but Step/Run surface
// it.
func (f *Fleet) setErr(err error) {
	f.errMu.Lock()
	if f.err == nil {
		f.err = err
	}
	f.errMu.Unlock()
}

// Err returns the sticky terminal error, if any.
func (f *Fleet) Err() error {
	f.errMu.Lock()
	defer f.errMu.Unlock()
	return f.err
}

// Step runs one fleet-wide control period: sample every node, ingest
// the batches through the pipeline, and wait for the drain barrier. It
// returns io.EOF when the source is exhausted and the sticky terminal
// error once any node's loop has given up.
func (f *Fleet) Step() error {
	if err := f.Err(); err != nil {
		return err
	}
	if f.src == nil {
		return errors.New("daemon: fleet has no source; drive Ingest/Drain directly")
	}
	batches, err := f.src.SampleFleet()
	if err != nil {
		return err
	}
	for _, b := range batches {
		if err := f.Ingest(b); err != nil {
			return err
		}
	}
	if f.tel != nil {
		f.tel.SetGauge("fleet_ingest_depth", telemetry.GlobalLabel(), float64(len(f.ingestc)))
	}
	f.Drain()
	f.periods.Add(1)
	return f.Err()
}

// Run executes Step until io.EOF (clean end), a terminal error, or
// Stop. Like Daemon.Run, a stop arriving mid-period drains the period's
// in-flight actuations before returning.
func (f *Fleet) Run() error {
	for !f.stop.Load() {
		if err := f.Step(); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
	}
	return nil
}

// Stop asks Run to return at the next period boundary and wakes any
// in-progress backoff waits so the in-flight actuations drain
// immediately. Safe from any goroutine.
func (f *Fleet) Stop() {
	f.stop.Store(true)
	f.stopOnce.Do(func() { close(f.stopc) })
}

// Close shuts the pipeline down after draining everything already
// ingested. Idempotent. Ingest/Step fail afterwards.
func (f *Fleet) Close() {
	f.closeOnce.Do(func() {
		f.ingestMu.Lock()
		f.closed.Store(true)
		close(f.ingestc)
		f.ingestMu.Unlock()
		f.wg.Wait()
	})
}

// Periods returns the number of completed fleet control periods (the
// snapshot queue cursor).
func (f *Fleet) Periods() uint64 { return f.periods.Load() }

// Decisions returns the number of node-periods whose actuation landed.
func (f *Fleet) Decisions() uint64 { return f.decisions.Load() }

// Overflow returns the number of decisions dropped to actuation-queue
// overflow.
func (f *Fleet) Overflow() uint64 { return f.overflow.Load() }

// Rejected returns the number of batches ignored for being outside
// MaxNodes.
func (f *Fleet) Rejected() uint64 { return f.rejected.Load() }

// RestoredNodes and SkippedRestoreNodes count Restore's accepted and
// ignored node entries.
func (f *Fleet) RestoredNodes() uint64       { return f.restoredNodes.Load() }
func (f *Fleet) SkippedRestoreNodes() uint64 { return f.skippedRestore.Load() }

// Nodes lists every node the fleet holds state for, sorted.
func (f *Fleet) Nodes() []int {
	var ids []int
	for _, sh := range f.shards {
		sh.mu.Lock()
		for id := range sh.nodes {
			ids = append(ids, id)
		}
		sh.mu.Unlock()
	}
	sort.Ints(ids)
	return ids
}

// Stats aggregates the per-node fault-handling counters.
func (f *Fleet) Stats() Stats {
	var out Stats
	for _, sh := range f.shards {
		sh.mu.Lock()
		nodes := make([]*fleetNode, 0, len(sh.nodes))
		for _, fn := range sh.nodes {
			nodes = append(nodes, fn)
		}
		sh.mu.Unlock()
		for _, fn := range nodes {
			fn.mu.Lock()
			out.add(fn.loop.stats)
			fn.mu.Unlock()
		}
	}
	return out
}

// LastSlices returns a copy of the last committed slices for one node
// (nil if the node is unknown).
func (f *Fleet) LastSlices(node int) map[int]sim.Time {
	sh := f.shardOf(node)
	sh.mu.Lock()
	fn, ok := sh.nodes[node]
	sh.mu.Unlock()
	if !ok {
		return nil
	}
	fn.mu.Lock()
	defer fn.mu.Unlock()
	out := make(map[int]sim.Time, len(fn.loop.last))
	for id, sl := range fn.loop.last {
		out[id] = sl
	}
	return out
}

// FleetNodeStatus is one row of the /debug/atc fleet table.
type FleetNodeStatus struct {
	Node int `json:"node"`
	// Policy is the node's scheduler policy name, filled in by the
	// backend owner (the fleet itself is policy-agnostic).
	Policy string `json:"policy,omitempty"`
	// VMs is the number of VMs the node's controller tracks.
	VMs int `json:"vms"`
	// SliceUS is the slice currently in force for the node's parallel
	// VMs (the Algorithm-2 minimum), in microseconds; 0 when none.
	SliceUS float64 `json:"sliceUs"`
	// Periods counts the node's committed control periods.
	Periods uint64 `json:"periods"`
	// LastDecisionAgeMS is the wall-clock age of the node's last
	// committed actuation; -1 before the first.
	LastDecisionAgeMS float64 `json:"lastDecisionAgeMs"`
	// QueueDepth is the node's queued-but-unapplied actuation count.
	QueueDepth int `json:"queueDepth"`
	// DroppedPeriods and StaleSamples are the node's fault counters.
	DroppedPeriods uint64 `json:"droppedPeriods"`
	StaleSamples   uint64 `json:"staleSamples"`
}

// Table renders the per-node fleet view, sorted by node ID.
func (f *Fleet) Table() []FleetNodeStatus {
	now := time.Now()
	var out []FleetNodeStatus
	for _, sh := range f.shards {
		sh.mu.Lock()
		ids := make([]int, 0, len(sh.nodes))
		for id := range sh.nodes {
			ids = append(ids, id)
		}
		sh.mu.Unlock()
		for _, id := range ids {
			fn := sh.node(id)
			sh.qmu.Lock()
			depth := sh.qdepth[id]
			sh.qmu.Unlock()
			fn.mu.Lock()
			st := FleetNodeStatus{
				Node:              id,
				VMs:               len(fn.loop.known),
				Periods:           fn.loop.periods,
				LastDecisionAgeMS: -1,
				QueueDepth:        depth,
				DroppedPeriods:    fn.loop.stats.DroppedPeriods,
				StaleSamples:      fn.loop.stats.StaleSamples,
			}
			if !fn.lastCommit.IsZero() {
				st.LastDecisionAgeMS = float64(now.Sub(fn.lastCommit)) / float64(time.Millisecond)
			}
			minSlice := sim.Time(0)
			for vid, meta := range fn.loop.known {
				if !meta.parallel {
					continue
				}
				if sl, ok := fn.loop.last[vid]; ok && (minSlice == 0 || sl < minSlice) {
					minSlice = sl
				}
			}
			st.SliceUS = minSlice.Micros()
			fn.mu.Unlock()
			out = append(out, st)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// FleetSummary is the top-level fleet view for /debug/atc.
type FleetSummary struct {
	Nodes       int    `json:"nodes"`
	Shards      int    `json:"shards"`
	Periods     uint64 `json:"periods"`
	Decisions   uint64 `json:"decisions"`
	Overflow    uint64 `json:"overflow"`
	Rejected    uint64 `json:"rejected,omitempty"`
	IngestDepth int    `json:"ingestDepth"`
	QueueDepth  int    `json:"queueDepth"`
	Stats       Stats  `json:"stats"`
}

// Summary aggregates the fleet-wide control-plane state.
func (f *Fleet) Summary() FleetSummary {
	s := FleetSummary{
		Shards:      len(f.shards),
		Periods:     f.Periods(),
		Decisions:   f.Decisions(),
		Overflow:    f.Overflow(),
		Rejected:    f.Rejected(),
		IngestDepth: len(f.ingestc),
		Stats:       f.Stats(),
	}
	for _, sh := range f.shards {
		sh.mu.Lock()
		s.Nodes += len(sh.nodes)
		sh.mu.Unlock()
		sh.qmu.Lock()
		s.QueueDepth += len(sh.queue)
		sh.qmu.Unlock()
	}
	return s
}
