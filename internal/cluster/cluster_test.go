package cluster

import (
	"testing"

	"atcsched/internal/sched/atc"
	"atcsched/internal/sim"
	"atcsched/internal/vmm"
	"atcsched/internal/workload"
)

func TestAllApproachesBuildAndRun(t *testing.T) {
	for _, a := range Approaches() {
		a := a
		t.Run(string(a), func(t *testing.T) {
			cfg := DefaultConfig(2, a)
			cfg.Node.PCPUs = 2
			cfg.Node.Dom0VCPUs = 1
			s := MustNew(cfg)
			vms := s.VirtualCluster("vc", 2, 2, nil)
			prof := workload.NPB("lu", workload.ClassA)
			prof.Iterations = 5
			run := s.RunParallel(prof, vms, 2, false)
			if !s.Go(120 * sim.Second) {
				t.Fatalf("%s: run did not complete (rounds=%d)", a, run.Rounds())
			}
			if run.MeanTime() <= 0 {
				t.Errorf("%s: mean time = 0", a)
			}
			if got := s.World.Node(0).Scheduler().Name(); got != string(a) {
				t.Errorf("scheduler name = %q, want %q", got, a)
			}
		})
	}
}

func TestUnknownApproachRejected(t *testing.T) {
	cfg := DefaultConfig(1, Approach("XX"))
	if _, err := New(cfg); err == nil {
		t.Error("unknown approach accepted")
	}
	cfg = DefaultConfig(1, CR)
	cfg.Sched.FixedSlice = -1
	if _, err := New(cfg); err == nil {
		t.Error("negative slice accepted")
	}
}

func TestVirtualClusterStriping(t *testing.T) {
	cfg := DefaultConfig(4, CR)
	cfg.Node.PCPUs = 2
	s := MustNew(cfg)
	vms := s.VirtualCluster("vc", 8, 2, nil)
	if len(vms) != 8 {
		t.Fatalf("VMs = %d", len(vms))
	}
	// Round-robin placement: VM i on node i%4.
	for i, vm := range vms {
		if vm.Node().ID() != i%4 {
			t.Errorf("VM %d on node %d, want %d", i, vm.Node().ID(), i%4)
		}
		if vm.Class() != vmm.ClassParallel {
			t.Errorf("VM %d class %v", i, vm.Class())
		}
	}
	// Explicit node subset.
	sub := s.VirtualCluster("sub", 4, 2, []int{1, 3})
	for i, vm := range sub {
		want := []int{1, 3}[i%2]
		if vm.Node().ID() != want {
			t.Errorf("sub VM %d on node %d, want %d", i, vm.Node().ID(), want)
		}
	}
}

func TestAdminSliceApplied(t *testing.T) {
	cfg := DefaultConfig(1, ATC)
	cfg.NonParallelAdminSlice = 6 * sim.Millisecond
	s := MustNew(cfg)
	np := s.IndependentVM("web", 0, 1, vmm.ClassNonParallel)
	if np.AdminSlice != 6*sim.Millisecond {
		t.Errorf("AdminSlice = %v", np.AdminSlice)
	}
	par := s.IndependentVM("par", 0, 1, vmm.ClassParallel)
	if par.AdminSlice != 0 {
		t.Errorf("parallel VM got admin slice %v", par.AdminSlice)
	}
}

func TestFixedSliceAppliesToCR(t *testing.T) {
	cfg := DefaultConfig(1, CR)
	cfg.Sched.FixedSlice = 6 * sim.Millisecond
	s := MustNew(cfg)
	vm := s.IndependentVM("x", 0, 1, vmm.ClassNonParallel)
	if got := s.World.Node(0).Scheduler().Slice(vm.VCPU(0)); got != 6*sim.Millisecond {
		t.Errorf("slice = %v, want 6ms", got)
	}
}

func TestATCOptionsThreaded(t *testing.T) {
	cfg := DefaultConfig(1, ATC)
	cfg.Sched.Options = atc.Options{AutoDetect: true}
	s := MustNew(cfg)
	sched := s.World.Node(0).Scheduler().(*atc.Scheduler)
	if sched.Controller().Config().MinThreshold != 300*sim.Microsecond {
		t.Errorf("threshold = %v", sched.Controller().Config().MinThreshold)
	}
}

func TestMultipleMeasuredRunsStopTogether(t *testing.T) {
	cfg := DefaultConfig(2, CR)
	cfg.Node.PCPUs = 2
	cfg.Node.Dom0VCPUs = 1
	s := MustNew(cfg)
	profA := workload.NPB("lu", workload.ClassA)
	profA.Iterations = 4
	profB := workload.NPB("is", workload.ClassA)
	profB.Iterations = 3
	runA := s.RunParallel(profA, s.VirtualCluster("a", 2, 2, nil), 2, false)
	runB := s.RunParallel(profB, s.VirtualCluster("b", 2, 2, nil), 2, true)
	if !s.Go(300 * sim.Second) {
		t.Fatal("did not complete")
	}
	if runA.Rounds() < 2 || runB.Rounds() < 2 {
		t.Errorf("rounds = %d/%d", runA.Rounds(), runB.Rounds())
	}
	if len(s.Runs()) != 2 {
		t.Errorf("Runs() = %d", len(s.Runs()))
	}
}
