package proptest

import (
	"testing"

	"atcsched/internal/cluster"
)

// telemetryShardCounts spans the acceptance set: serial engine (0),
// sharded machinery without concurrency (1), and real fan-out (2, 4, 8).
var telemetryShardCounts = []int{0, 1, 2, 4, 8}

// telemetryFingerprint runs spec with Telemetry forced to want and
// returns the determinism fingerprint.
func telemetryFingerprint(t *testing.T, spec Spec, approach cluster.Approach, shards int, want bool) string {
	t.Helper()
	spec.Shards = shards
	spec.Telemetry = want
	r, err := runOne(spec, approach, true)
	if err != nil {
		t.Fatalf("shards=%d telemetry=%v: build: %v", shards, want, err)
	}
	if !r.completed {
		t.Fatalf("shards=%d telemetry=%v: measured runs incomplete (rounds %v)", shards, want, r.runRounds)
	}
	return r.fingerprint
}

// TestTelemetryEquivalencePinned proves the telemetry plane is invisible
// to the simulation: the pinned shard-equivalence scenario — faults,
// live policy switch and co-tenants included — fingerprints
// byte-identically with telemetry attached and detached at every shard
// count in the acceptance set.
func TestTelemetryEquivalencePinned(t *testing.T) {
	spec := shardEquivSpec()
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, sc := range telemetryShardCounts {
		off := telemetryFingerprint(t, spec, cluster.ATC, sc, false)
		on := telemetryFingerprint(t, spec, cluster.ATC, sc, true)
		if on != off {
			t.Errorf("shards=%d: telemetry-on fingerprint diverged from telemetry-off at byte %d of %d/%d",
				sc, diffAt(off, on), len(off), len(on))
		}
	}
}

// TestTelemetryEquivalenceGenerated extends the pinned check to
// generated scenarios: several seeds, each run on-vs-off across the
// shard set under its seed-derived primary approach.
func TestTelemetryEquivalenceGenerated(t *testing.T) {
	approaches := cluster.ExtendedApproaches()
	counts := telemetryShardCounts
	if testing.Short() {
		counts = []int{0, 4}
	}
	for seed := uint64(1); seed <= 3; seed++ {
		spec := Generate(seed, Bounded())
		approach := Primary(spec, approaches)
		for _, sc := range counts {
			off := telemetryFingerprint(t, spec, approach, sc, false)
			on := telemetryFingerprint(t, spec, approach, sc, true)
			if on != off {
				t.Errorf("seed=%d shards=%d (%s): telemetry-on fingerprint diverged at byte %d of %d/%d",
					seed, sc, approach, diffAt(off, on), len(off), len(on))
			}
		}
	}
}
