// Package extslice is a credit scheduler whose per-VM time slices are
// set from *outside* the hypervisor — the in-simulator stand-in for a
// Xen whose slice knobs a dom0 userspace daemon adjusts. It performs no
// adaptation of its own: cmd/atcd's sim backend samples each VM's
// spinlock latency, runs the ATC controller in userspace, and writes the
// resulting slices back through Set, closing the loop the paper
// implements inside the hypervisor.
package extslice

import (
	"atcsched/internal/sched/credit"
	"atcsched/internal/sim"
	"atcsched/internal/vmm"
)

// Scheduler is the externally-controlled credit scheduler.
type Scheduler struct {
	*credit.Scheduler
	slices map[int]sim.Time
}

// New builds an extslice scheduler for node n.
func New(n *vmm.Node, opts credit.Options) *Scheduler {
	return &Scheduler{Scheduler: credit.New(n, opts), slices: make(map[int]sim.Time)}
}

// Factory returns a vmm.SchedulerFactory producing extslice schedulers.
func Factory(opts credit.Options) vmm.SchedulerFactory {
	return func(n *vmm.Node) vmm.Scheduler { return New(n, opts) }
}

// Name implements vmm.Scheduler.
func (s *Scheduler) Name() string { return "EXT" }

// Slice implements vmm.Scheduler: the externally-set per-VM slice, or
// the credit default.
func (s *Scheduler) Slice(v *vmm.VCPU) sim.Time {
	if sl, ok := s.slices[v.VM().ID()]; ok {
		return sl
	}
	return s.Options().TimeSlice
}

// Set applies an externally-computed slice for vm (world-unique id).
// Non-positive values reset to the default.
func (s *Scheduler) Set(vmID int, slice sim.Time) {
	if slice <= 0 {
		delete(s.slices, vmID)
		return
	}
	s.slices[vmID] = slice
}

// Current returns the slice in force for vmID.
func (s *Scheduler) Current(vmID int) sim.Time {
	if sl, ok := s.slices[vmID]; ok {
		return sl
	}
	return s.Options().TimeSlice
}
