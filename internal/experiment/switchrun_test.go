package experiment

import (
	"strings"
	"testing"
)

// TestSwitchExperimentShowsRecovery runs the live-switch experiment at
// the small scale and checks its shape: CR windows first, ATC windows
// after, and a settled spin latency well below the CR baseline.
func TestSwitchExperimentShowsRecovery(t *testing.T) {
	e, err := ByID("switch")
	if err != nil {
		t.Fatal(err)
	}
	tables, err := e.Run(Small, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 {
		t.Fatalf("tables = %d", len(tables))
	}
	out := tables[0].String()
	if !strings.Contains(out, "CR") || !strings.Contains(out, "ATC") {
		t.Fatalf("table missing policy phases:\n%s", out)
	}
	// The note is only emitted when the post phase has samples; it carries
	// the recovery factor.
	if !strings.Contains(out, "x lower") {
		t.Errorf("no recovery summary:\n%s", out)
	}
}
