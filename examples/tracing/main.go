// Tracing: attach a scheduling tracer to a contended run and watch ATC
// walk a parallel VM's slice down, period by period — the control loop
// made visible. Prints the per-VM dispatch/preempt/block/wake summary
// and every slice decision ATC took on node 0.
package main

import (
	"fmt"
	"log"

	"atcsched"
	"atcsched/internal/sim"
	"atcsched/internal/vmm"
)

func main() {
	cfg := atcsched.DefaultScenarioConfig(2, atcsched.ATC)
	cfg.Seed = 9
	s, err := atcsched.NewScenario(cfg)
	if err != nil {
		log.Fatal(err)
	}
	tracer := vmm.NewTracer(500000)
	s.World.SetTracer(tracer)

	prof := atcsched.NPBProfile("cg", "B")
	prof.Iterations = 10
	for vc := 0; vc < 4; vc++ {
		s.RunParallel(prof, s.VirtualCluster(fmt.Sprintf("vc%d", vc), 2, 8, nil), 2, false)
	}
	if !s.Go(1200 * sim.Second) {
		log.Fatal("horizon exceeded")
	}

	fmt.Println("ATC slice decisions on node 0 (time, vm, new slice):")
	shown := 0
	for _, r := range tracer.Records() {
		if r.Kind == vmm.TraceSliceChange && r.Node == 0 && shown < 12 {
			fmt.Printf("  %s\n", r.String())
			shown++
		}
	}
	fmt.Println("\nper-VM scheduling summary:")
	fmt.Print(tracer.Summary())
}
