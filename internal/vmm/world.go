package vmm

import (
	"fmt"
	"sort"

	"atcsched/internal/cachemodel"
	"atcsched/internal/diskmodel"
	"atcsched/internal/netmodel"
	"atcsched/internal/sim"
	"atcsched/internal/telemetry"
)

// World is a whole simulated cluster: the engine(s), the physical fabric,
// and the nodes. Construct it, create VMs and install their processes,
// then call Start and drive it with RunUntil.
//
// A world runs in one of two modes. In serial mode (NewWorld,
// NewHeteroWorld) one engine drives every node and Eng exposes it
// directly — the historical behaviour, byte-identical to previous
// releases. In sharded mode (NewShardedHeteroWorld) each node owns an
// engine, nodes are partitioned over a sim.ShardGroup's shards, and all
// cross-node interaction flows through the group's lookahead barrier;
// Eng is nil and callers must use the World-level methods (Now, RunUntil,
// Stop, ...) that work in both modes.
type World struct {
	// Eng is the single engine in serial mode; nil in sharded mode.
	Eng    *sim.Engine
	Fabric *netmodel.Fabric
	nodes  []*Node
	vms    []*VM

	// group synchronizes the per-node engines in sharded mode (nil in
	// serial mode).
	group *sim.ShardGroup

	nextVMID   int
	nextVCPUID int
	started    bool
	tracer     *Tracer
	telemetry  *telemetry.Plane

	// slowFn, when set, reports the execution-time multiplier (>= 1) in
	// force on a node at an instant; the PCPUs stretch every compute and
	// burn segment started while it is > 1 (fault plane: stragglers).
	slowFn func(node int, now sim.Time) float64
	// monitorTap, when set, filters every spin-monitor sample taken via
	// VM.SampleSpinPeriod (fault plane: dropouts, noise, stale reads).
	monitorTap func(vm *VM) MonitorVerdict
}

// SetSlowdown installs (or, with nil, removes) the per-node execution
// slowdown hook. fn must be deterministic in (node, now); factors below
// 1 are treated as 1. Segments already in flight keep the factor they
// started with — the hook is sampled at segment start, so its
// granularity is one slice at worst. In a sharded world the hook is
// called concurrently from different shards and must not share mutable
// state across nodes.
func (w *World) SetSlowdown(fn func(node int, now sim.Time) float64) { w.slowFn = fn }

// SetMonitorTap installs (or, with nil, removes) the monitoring-path
// fault hook consulted by VM.SampleSpinPeriod. The sharded caveat of
// SetSlowdown applies: any mutable state must be partitioned by node.
func (w *World) SetMonitorTap(fn func(vm *VM) MonitorVerdict) { w.monitorTap = fn }

// SetTracer attaches a scheduling tracer (nil detaches). Attach before
// Start to capture the whole run. In serial mode every node records into
// t itself; in sharded mode each node gets its own ring of the same
// capacity (shards must not share a ring) and t serves as the template —
// read the merged stream with TraceRecords/TraceDropped, which work in
// both modes.
func (w *World) SetTracer(t *Tracer) {
	w.tracer = t
	for _, n := range w.nodes {
		if t == nil {
			n.trc = nil
		} else if w.group != nil {
			n.trc = NewTracer(t.Cap)
		} else {
			n.trc = t
		}
	}
}

// Tracer returns the attached tracer (nil when none). In sharded mode
// this is the template passed to SetTracer, not the per-node rings; use
// TraceRecords for the data.
func (w *World) Tracer() *Tracer { return w.tracer }

// TraceRecords returns the retained scheduling records of the whole
// world in deterministic order: by time, ties broken by node. Works in
// both modes; returns nil when no tracer is attached.
func (w *World) TraceRecords() []TraceRecord {
	if w.tracer == nil {
		return nil
	}
	if w.group == nil {
		return w.tracer.Records()
	}
	var out []TraceRecord
	for _, n := range w.nodes {
		out = append(out, n.trc.Records()...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Node < out[j].Node
	})
	return out
}

// TraceDropped returns how many records the tracer ring(s) evicted.
func (w *World) TraceDropped() uint64 {
	if w.tracer == nil {
		return 0
	}
	if w.group == nil {
		return w.tracer.Dropped()
	}
	var n uint64
	for _, nd := range w.nodes {
		n += nd.trc.Dropped()
	}
	return n
}

// NewWorld builds nNodes identical nodes, each with its own scheduler
// instance produced by factory.
func NewWorld(nNodes int, ncfg NodeConfig, netCfg netmodel.Config, factory SchedulerFactory) (*World, error) {
	if factory == nil {
		return nil, fmt.Errorf("vmm: nil scheduler factory")
	}
	return NewHeteroWorld(nNodes, ncfg, netCfg, func(int) SchedulerFactory { return factory })
}

// NewHeteroWorld builds nNodes nodes whose schedulers may differ:
// factoryFor(i) supplies the factory for node i, so a cluster can run
// one policy on most nodes and another on the rest.
func NewHeteroWorld(nNodes int, ncfg NodeConfig, netCfg netmodel.Config, factoryFor func(node int) SchedulerFactory) (*World, error) {
	return newWorld(nNodes, 0, ncfg, netCfg, factoryFor)
}

// NewShardedHeteroWorld builds a world whose nodes are partitioned over
// `shards` engine shards synchronized at the network lookahead
// (netCfg.WireLatency, which must be positive). Shard counts are clamped
// to [1, nNodes]. The simulation semantics are keyed on node topology,
// never shard topology, so a given scenario produces byte-identical
// results at every shard count — including 1 — though the sharded
// fingerprint family differs from serial mode's (cross-node deliveries
// sequence at barriers rather than at send time).
func NewShardedHeteroWorld(nNodes, shards int, ncfg NodeConfig, netCfg netmodel.Config, factoryFor func(node int) SchedulerFactory) (*World, error) {
	if shards < 1 {
		return nil, fmt.Errorf("vmm: sharded world needs at least one shard, got %d", shards)
	}
	if netCfg.WireLatency <= 0 {
		return nil, fmt.Errorf("vmm: sharded world needs a positive wire latency for lookahead, got %v", netCfg.WireLatency)
	}
	return newWorld(nNodes, shards, ncfg, netCfg, factoryFor)
}

// newWorld is the shared builder: shards == 0 selects serial mode.
func newWorld(nNodes, shards int, ncfg NodeConfig, netCfg netmodel.Config, factoryFor func(node int) SchedulerFactory) (*World, error) {
	if nNodes <= 0 {
		return nil, fmt.Errorf("vmm: need at least one node, got %d", nNodes)
	}
	if err := ncfg.validate(); err != nil {
		return nil, err
	}
	if factoryFor == nil {
		return nil, fmt.Errorf("vmm: nil scheduler factory function")
	}
	w := &World{}
	engines := make([]*sim.Engine, nNodes)
	if shards == 0 {
		w.Eng = sim.New()
		for i := range engines {
			engines[i] = w.Eng
		}
		w.Fabric = netmodel.New(w.Eng, nNodes, netCfg)
	} else {
		if shards > nNodes {
			shards = nNodes
		}
		w.group = sim.NewShardGroup(shards, netCfg.WireLatency)
		for i := range engines {
			sh := i * shards / nNodes
			engines[i] = w.group.Engine(sh)
			w.group.AssignSource(i, sh)
		}
		w.Fabric = netmodel.NewSharded(engines, netCfg, w.group.Post)
	}
	for i := 0; i < nNodes; i++ {
		n := &Node{world: w, id: i, cfg: ncfg, eng: engines[i]}
		for j := 0; j < ncfg.PCPUs; j++ {
			p := &PCPU{
				node:  n,
				idx:   j,
				cache: cachemodel.New(ncfg.Cache),
			}
			p.initFns()
			n.pcpus = append(n.pcpus, p)
		}
		n.backend = &Backend{node: n, disk: diskmodel.New(n.eng, ncfg.Disk)}
		n.dom0 = n.newVM(fmt.Sprintf("dom0-%d", i), ClassDom0, ncfg.Dom0VCPUs, ncfg.Dom0Footprint, ncfg.Dom0ColdRate)
		factory := factoryFor(i)
		if factory == nil {
			return nil, fmt.Errorf("vmm: nil scheduler factory for node %d", i)
		}
		n.sched = factory(n)
		if n.sched == nil {
			return nil, fmt.Errorf("vmm: factory returned nil scheduler for node %d", i)
		}
		w.nodes = append(w.nodes, n)
	}
	return w, nil
}

// MustNewWorld is NewWorld that panics on error (tests, examples).
func MustNewWorld(nNodes int, ncfg NodeConfig, netCfg netmodel.Config, factory SchedulerFactory) *World {
	w, err := NewWorld(nNodes, ncfg, netCfg, factory)
	if err != nil {
		panic(err)
	}
	return w
}

// Sharded reports whether the world runs on a shard group.
func (w *World) Sharded() bool { return w.group != nil }

// ShardCount returns the number of engine shards (1 in serial mode).
func (w *World) ShardCount() int {
	if w.group == nil {
		return 1
	}
	return w.group.Shards()
}

// Nodes returns the world's nodes (do not mutate).
func (w *World) Nodes() []*Node { return w.nodes }

// Node returns node i.
func (w *World) Node(i int) *Node { return w.nodes[i] }

// VMs returns every VM in the world, dom0s included.
func (w *World) VMs() []*VM { return w.vms }

// GuestVMs returns every guest VM in the world.
func (w *World) GuestVMs() []*VM {
	var out []*VM
	for _, vm := range w.vms {
		if vm.class != ClassDom0 {
			out = append(out, vm)
		}
	}
	return out
}

// Start arms timers and performs the initial dispatch on every node. It
// must be called exactly once, after all VMs and processes are set up.
func (w *World) Start() {
	if w.started {
		panic("vmm: World.Start called twice")
	}
	w.started = true
	for _, n := range w.nodes {
		n.start()
	}
}

// Now returns the current virtual time (the group clock in sharded
// mode — the time every shard has reached).
func (w *World) Now() sim.Time {
	if w.group != nil {
		return w.group.Now()
	}
	return w.Eng.Now()
}

// Executed returns the total number of events fired across all engines.
func (w *World) Executed() uint64 {
	if w.group != nil {
		return w.group.Executed()
	}
	return w.Eng.Executed()
}

// RunUntil drives the simulation to the given virtual time.
func (w *World) RunUntil(t sim.Time) {
	if w.group != nil {
		w.group.RunUntil(t)
		return
	}
	w.Eng.RunUntil(t)
}

// Stop halts the simulation (e.g., when the experiment's completion
// condition is met from inside a callback). In sharded mode the stop
// lands at the next window boundary — a point that is a pure function of
// virtual time, so stopped runs stay deterministic.
func (w *World) Stop() {
	if w.group != nil {
		w.group.RequestStop()
		return
	}
	w.Eng.Stop()
}

// Resume clears a previous Stop.
func (w *World) Resume() {
	if w.group != nil {
		w.group.Resume()
		return
	}
	w.Eng.Resume()
}

// Stopped reports whether a stop is in force.
func (w *World) Stopped() bool {
	if w.group != nil {
		return w.group.Stopped()
	}
	return w.Eng.Stopped()
}

// CrossNodeSignal runs fn on dst's engine, attributed to src. On the
// same node (or in serial mode) it is an immediate deferred event; across
// shards it travels through the group barrier with one network lookahead
// of delay — the same contract as a wire message, which is what such
// signals model (workload completion notifications, coordination RPCs).
// Using it for ALL cross-node signalling, even between co-sharded nodes,
// is what keeps results independent of the shard count.
func (w *World) CrossNodeSignal(src, dst *Node, fn func()) {
	if w.group == nil || src == dst {
		dst.eng.Schedule(0, fn)
		return
	}
	w.group.Post(src.id, dst.id, src.eng.Now()+w.group.Lookahead(), fn)
}
