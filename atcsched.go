// Package atcsched reproduces "Dynamic Acceleration of Parallel
// Applications in Cloud Platforms by Adaptive Time-Slice Control"
// (IPPS 2016) as a Go library: the ATC controller itself, a deterministic
// discrete-event simulator of a Xen-like virtualized cluster to evaluate
// it on, five baseline VMM schedulers, the paper's workload suite, and a
// harness that regenerates every table and figure of the evaluation.
//
// This root package is a thin facade re-exporting the pieces a typical
// consumer needs; the implementation lives under internal/ (see DESIGN.md
// for the module map):
//
//   - Controller (internal/core): the paper's Algorithms 1 and 2 as a
//     pure library — feed per-period spinlock latencies, get per-VM time
//     slices. Suitable for a userspace control daemon (see cmd/atcd).
//   - Scenario (internal/cluster): build a simulated cluster under any of
//     the six scheduling approaches and run workloads on it.
//   - The experiment registry (internal/experiment): regenerate paper
//     artifacts programmatically (also via cmd/experiments).
package atcsched

import (
	"atcsched/internal/cluster"
	"atcsched/internal/core"
	"atcsched/internal/experiment"
	"atcsched/internal/report"
	"atcsched/internal/sched/registry"
	"atcsched/internal/sim"
	"atcsched/internal/workload"
)

// Re-exported core-controller API (the paper's contribution).
type (
	// Controller implements Adaptive Time-slice Control (Algorithms 1-2).
	Controller = core.Controller
	// ControlConfig parameterizes a Controller (α, β, threshold, window).
	ControlConfig = core.Config
	// VMInfo describes one VM to Controller.NodeSlices.
	VMInfo = core.VMInfo
)

// NewController returns an ATC controller; panics on invalid config.
func NewController(cfg ControlConfig) *Controller { return core.NewController(cfg) }

// DefaultControlConfig returns the paper's parameters (30 ms default,
// 0.3 ms threshold, α = 6 ms, β = 0.3 ms, 3-period window).
func DefaultControlConfig() ControlConfig { return core.DefaultConfig() }

// Re-exported simulation scenario API.
type (
	// Scenario is a simulated cluster under construction.
	Scenario = cluster.Scenario
	// ScenarioConfig parameterizes a Scenario.
	ScenarioConfig = cluster.Config
	// Approach names a scheduling policy (CR, CS, BS, DSS, VS, ATC).
	Approach = cluster.Approach
	// AppProfile parameterizes a BSP parallel application.
	AppProfile = workload.AppProfile
	// Time is a virtual-time instant or span in nanoseconds.
	Time = sim.Time
	// Table is a rendered result table.
	Table = report.Table
)

// The six scheduling approaches.
const (
	CR  = cluster.CR
	CS  = cluster.CS
	BS  = cluster.BS
	DSS = cluster.DSS
	VS  = cluster.VS
	ATC = cluster.ATC
)

// NewScenario builds a simulated cluster; see cluster.New.
func NewScenario(cfg ScenarioConfig) (*Scenario, error) { return cluster.New(cfg) }

// SchedulerKinds returns every scheduling policy registered with
// internal/sched/registry, sorted — the valid values everywhere a policy
// is named (ScenarioConfig, scenario JSON, command-line flags).
func SchedulerKinds() []string { return registry.Kinds() }

// DefaultScenarioConfig returns a paper-testbed-like configuration.
func DefaultScenarioConfig(nodes int, kind Approach) ScenarioConfig {
	return cluster.DefaultConfig(nodes, kind)
}

// NPBProfile returns the profile of one of the paper's six kernels
// ("lu", "is", "sp", "bt", "mg", "cg") at class "A", "B" or "C".
func NPBProfile(kernel string, class string) AppProfile {
	var c workload.Class
	switch class {
	case "A":
		c = workload.ClassA
	case "B":
		c = workload.ClassB
	case "C":
		c = workload.ClassC
	default:
		panic("atcsched: class must be A, B or C")
	}
	return workload.NPB(kernel, c)
}

// Experiments returns the registered paper experiments in order.
func Experiments() []experiment.Experiment { return experiment.All() }

// RunExperiment regenerates one paper artifact by id at the named scale
// ("small", "medium", "full").
func RunExperiment(id, scale string, seed uint64) ([]*Table, error) {
	sc, err := experiment.ScaleByName(scale)
	if err != nil {
		return nil, err
	}
	e, err := experiment.ByID(id)
	if err != nil {
		return nil, err
	}
	return e.Run(sc, seed)
}
