//go:build race

package experiment

// raceEnabled reports that this test binary carries the race detector.
// The dfrs golden tests skip under it: they are byte-for-byte replays of
// deterministic runs (no new interleavings to observe), and the sharded
// head-to-head cell's barrier traffic is pathologically slow when every
// synchronization is instrumented. The concurrency the experiment
// exercises is still race-checked via the proptest DFRS battery.
const raceEnabled = true
