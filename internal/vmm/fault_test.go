package vmm

import (
	"testing"

	"atcsched/internal/sim"
)

// TestSlowdownStretchesCompute pins the straggler hook's timing: a 4×
// factor makes a compute segment take 4× the wall time while the cache
// and burn accounting still see the unstretched work.
func TestSlowdownStretchesCompute(t *testing.T) {
	w := testWorld(t, 1, 1, 30*sim.Millisecond)
	w.SetSlowdown(func(node int, now sim.Time) float64 { return 4 })
	vm := w.Node(0).NewVM("vm0", ClassParallel, 1, 0, 1)
	v := vm.VCPU(0)
	var doneAt sim.Time
	v.SetProcess(&seqProc{actions: []Action{
		{Kind: ActCompute, Work: 5 * sim.Millisecond, Then: func() { doneAt = w.Eng.Now() }},
	}}, nil)
	w.Start()
	w.RunUntil(sim.Second)
	// 5 ms of warm-speed work at a 4× straggler factor: ~20 ms of wall
	// time (plus a few µs of dispatch overhead).
	if doneAt < 20*sim.Millisecond || doneAt > 20*sim.Millisecond+100*sim.Microsecond {
		t.Errorf("slowed compute finished at %v, want ~20ms", doneAt)
	}
	if v.Rounds() != 1 || v.State() != StateIdle {
		t.Errorf("rounds=%d state=%v", v.Rounds(), v.State())
	}
}

// TestSlowdownWindowEnds pins that segments dispatched after the window
// closes run at full speed again.
func TestSlowdownWindowEnds(t *testing.T) {
	w := testWorld(t, 1, 1, 30*sim.Millisecond)
	end := 100 * sim.Millisecond
	w.SetSlowdown(func(node int, now sim.Time) float64 {
		if now < end {
			return 4
		}
		return 1
	})
	vm := w.Node(0).NewVM("vm0", ClassParallel, 1, 0, 1)
	v := vm.VCPU(0)
	var slowDone, fastDone sim.Time
	v.SetProcess(&seqProc{actions: []Action{
		{Kind: ActCompute, Work: 10 * sim.Millisecond, Then: func() { slowDone = w.Eng.Now() }},
		Sleep(60 * sim.Millisecond), // idle past the window's end
		{Kind: ActCompute, Work: 10 * sim.Millisecond, Then: func() { fastDone = w.Eng.Now() }},
	}}, nil)
	w.Start()
	w.RunUntil(sim.Second)
	// First segment: 10 ms at 4× — but preempted each 30 ms slice, so it
	// completes after ~40 ms of stretched wall time.
	if slowDone < 40*sim.Millisecond || slowDone > 41*sim.Millisecond {
		t.Errorf("slowed segment finished at %v, want ~40ms", slowDone)
	}
	// Second segment dispatches after 100 ms: full speed, ~10 ms.
	wall := fastDone - slowDone - 60*sim.Millisecond
	if wall < 10*sim.Millisecond || wall > 11*sim.Millisecond {
		t.Errorf("post-window segment took %v, want ~10ms", wall)
	}
}

// TestSlowFactorIgnoresInvalidValues pins the hook's contract: factors
// at or below 1 mean full speed.
func TestSlowFactorIgnoresInvalidValues(t *testing.T) {
	w := testWorld(t, 1, 1, 30*sim.Millisecond)
	w.SetSlowdown(func(node int, now sim.Time) float64 { return 0.25 })
	n := w.Node(0)
	if f := n.slowFactor(0); f != 1 {
		t.Errorf("slowFactor(<1) = %v, want clamped to 1", f)
	}
	w.SetSlowdown(nil)
	if f := n.slowFactor(0); f != 1 {
		t.Errorf("slowFactor(nil hook) = %v, want 1", f)
	}
}

// TestStretchSaturates pins the overflow guard: a freeze-scale factor on
// a long segment must saturate instead of wrapping negative.
func TestStretchSaturates(t *testing.T) {
	got := stretch(sim.FromSeconds(3600), 1e6)
	if got <= 0 {
		t.Fatalf("stretch overflowed: %v", got)
	}
	if got != sim.Time(1e18) {
		t.Errorf("stretch = %v, want saturation at 1e18", got)
	}
	if dt := unstretch(sim.Millisecond, 4); dt != 250*sim.Microsecond {
		t.Errorf("unstretch(1ms, 4) = %v, want 250µs", dt)
	}
	if dt := unstretch(sim.Millisecond, 1); dt != sim.Millisecond {
		t.Errorf("unstretch(1ms, 1) = %v, want identity", dt)
	}
}

// TestMonitorTapVerdicts pins the tap semantics: drop yields no sample,
// stale re-serves the previous value and sequence, noise perturbs the
// reading, and a fresh read advances the sequence.
func TestMonitorTapVerdicts(t *testing.T) {
	w := testWorld(t, 1, 1, 30*sim.Millisecond)
	vm := w.Node(0).NewVM("vm0", ClassParallel, 1, 0, 1)
	var verdict MonitorVerdict
	w.SetMonitorTap(func(*VM) MonitorVerdict { return verdict })

	// Fresh sample.
	vm.SpinMon.Record(2 * sim.Millisecond)
	avg, seq, ok := vm.SampleSpinPeriod()
	if !ok || seq != 1 || avg != 2*sim.Millisecond {
		t.Fatalf("fresh: avg=%v seq=%d ok=%v", avg, seq, ok)
	}

	// Dropped sample: nothing, and the accumulator is still consumed.
	vm.SpinMon.Record(4 * sim.Millisecond)
	verdict = MonitorVerdict{Drop: true}
	if _, _, ok := vm.SampleSpinPeriod(); ok {
		t.Fatal("dropped sample reported ok")
	}

	// Stale sample: last remembered value and sequence again.
	verdict = MonitorVerdict{Stale: true}
	avg, seq, ok = vm.SampleSpinPeriod()
	if !ok || seq != 1 || avg != 2*sim.Millisecond {
		t.Fatalf("stale: avg=%v seq=%d ok=%v, want remembered 2ms seq 1", avg, seq, ok)
	}

	// Noisy sample: perturbed, sequence advances.
	vm.SpinMon.Record(sim.Millisecond)
	verdict = MonitorVerdict{Noise: 500 * sim.Microsecond}
	avg, seq, ok = vm.SampleSpinPeriod()
	if !ok || seq != 2 || avg != 1500*sim.Microsecond {
		t.Fatalf("noisy: avg=%v seq=%d ok=%v, want 1.5ms seq 2", avg, seq, ok)
	}

	// Negative noise clamps at zero.
	verdict = MonitorVerdict{Noise: -sim.Second}
	avg, seq, ok = vm.SampleSpinPeriod()
	if !ok || seq != 3 || avg != 0 {
		t.Fatalf("clamped: avg=%v seq=%d ok=%v, want 0 seq 3", avg, seq, ok)
	}
}

// TestMonitorTapStaleBeforeFirstSample pins the cold-start corner: a
// stale verdict with nothing remembered yields no sample rather than a
// fabricated zero.
func TestMonitorTapStaleBeforeFirstSample(t *testing.T) {
	w := testWorld(t, 1, 1, 30*sim.Millisecond)
	vm := w.Node(0).NewVM("vm0", ClassParallel, 1, 0, 1)
	w.SetMonitorTap(func(*VM) MonitorVerdict { return MonitorVerdict{Stale: true} })
	if _, _, ok := vm.SampleSpinPeriod(); ok {
		t.Error("stale-before-first-sample reported ok")
	}
}

// TestNoTapKeepsLegacyPath pins that without a tap the sample is the raw
// monitor reading with an advancing sequence.
func TestNoTapKeepsLegacyPath(t *testing.T) {
	w := testWorld(t, 1, 1, 30*sim.Millisecond)
	vm := w.Node(0).NewVM("vm0", ClassParallel, 1, 0, 1)
	for i := 1; i <= 3; i++ {
		vm.SpinMon.Record(sim.Millisecond)
		avg, seq, ok := vm.SampleSpinPeriod()
		if !ok || seq != uint64(i) || avg != sim.Millisecond {
			t.Fatalf("sample %d: avg=%v seq=%d ok=%v", i, avg, seq, ok)
		}
	}
}
