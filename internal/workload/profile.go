// Package workload provides the application models the evaluation runs:
// BSP-structured parallel applications calibrated to the six NPB kernels
// the paper uses (lu, is, sp, bt, mg, cg, classes A/B/C), and the
// non-parallel suite (SPEC-CPU-like jobs, stream, bonnie++-like disk
// I/O, ping, a web server with an httperf-like closed-loop client).
//
// A parallel application runs one process per VCPU across a virtual
// cluster. Every iteration is compute → intra-VM spinlock sections →
// cross-VM message exchange (the BSP superstep). The per-application
// numbers are calibrated to the kernels' published character — is is
// communication-dominated, bt/sp compute-heavy, lu fine-grained — which
// is what determines how strongly each responds to time-slice control.
package workload

import (
	"fmt"

	"atcsched/internal/sim"
)

// CommPattern is a cross-VM exchange topology.
type CommPattern int

// Communication patterns used by the NPB-like kernels.
const (
	// PatternNone performs no cross-VM communication (single-VM runs).
	PatternNone CommPattern = iota
	// PatternRing sends to the next VM and receives from the previous
	// (lu's pipelined wavefront).
	PatternRing
	// PatternNeighbor exchanges with both ring neighbours (sp/bt ADI
	// sweeps).
	PatternNeighbor
	// PatternAllToAll exchanges with every other VM (is's key
	// redistribution).
	PatternAllToAll
	// PatternButterfly exchanges with the 2^(iter mod log2 n) partner
	// (mg's V-cycle halving).
	PatternButterfly
	// PatternStride sends to (i+s)th and receives from (i-s)th VM with
	// an iteration-varying stride (cg's irregular sparse exchanges).
	PatternStride
)

// String returns the pattern name.
func (p CommPattern) String() string {
	switch p {
	case PatternNone:
		return "none"
	case PatternRing:
		return "ring"
	case PatternNeighbor:
		return "neighbor"
	case PatternAllToAll:
		return "all-to-all"
	case PatternButterfly:
		return "butterfly"
	case PatternStride:
		return "stride"
	default:
		return fmt.Sprintf("CommPattern(%d)", int(p))
	}
}

// sendTo returns the VM indices process vmIdx sends to at iteration it.
func (p CommPattern) sendTo(it, vmIdx, n int) []int {
	if n <= 1 {
		return nil
	}
	switch p {
	case PatternNone:
		return nil
	case PatternRing:
		return []int{(vmIdx + 1) % n}
	case PatternNeighbor:
		if n == 2 {
			return []int{(vmIdx + 1) % n}
		}
		return []int{(vmIdx + 1) % n, (vmIdx - 1 + n) % n}
	case PatternAllToAll:
		out := make([]int, 0, n-1)
		for j := 0; j < n; j++ {
			if j != vmIdx {
				out = append(out, j)
			}
		}
		return out
	case PatternButterfly:
		bits := 0
		for 1<<(bits+1) <= n {
			bits++
		}
		if bits == 0 {
			return nil // unreachable for n >= 2; kept for safety
		}
		partner := vmIdx ^ (1 << (it % bits))
		if partner >= n {
			// No partner this phase (non-power-of-two cluster edge);
			// skipping keeps the exchange symmetric.
			return nil
		}
		return []int{partner}
	case PatternStride:
		stride := 1 + it%(n-1)
		return []int{(vmIdx + stride) % n}
	default:
		panic(fmt.Sprintf("workload: unknown pattern %d", int(p)))
	}
}

// recvFrom returns the VM indices process vmIdx receives from at
// iteration it — the mirror of sendTo.
func (p CommPattern) recvFrom(it, vmIdx, n int) []int {
	if n <= 1 {
		return nil
	}
	switch p {
	case PatternNone:
		return nil
	case PatternRing:
		return []int{(vmIdx - 1 + n) % n}
	case PatternNeighbor:
		if n == 2 {
			return []int{(vmIdx + 1) % n}
		}
		return []int{(vmIdx - 1 + n) % n, (vmIdx + 1) % n}
	case PatternAllToAll, PatternButterfly:
		return p.sendTo(it, vmIdx, n) // symmetric patterns
	case PatternStride:
		stride := 1 + it%(n-1)
		return []int{(vmIdx - stride + n) % n}
	default:
		panic(fmt.Sprintf("workload: unknown pattern %d", int(p)))
	}
}

// Class scales a profile the way NPB problem classes do.
type Class int

// NPB problem classes used in the paper (B for the main runs, C for the
// Figure 8 cache study).
const (
	ClassA Class = iota
	ClassB
	ClassC
)

// String returns "A", "B" or "C".
func (c Class) String() string {
	switch c {
	case ClassA:
		return "A"
	case ClassB:
		return "B"
	case ClassC:
		return "C"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// AppProfile parameterizes one BSP application.
type AppProfile struct {
	// Name is the kernel name, e.g. "lu.B".
	Name string
	// ComputePerIter is the mean warm compute time per process per
	// iteration.
	ComputePerIter sim.Time
	// ComputeJitter is the uniform jitter fraction on compute segments.
	ComputeJitter float64
	// LockOpsPerIter is the number of spinlock critical sections per
	// process per iteration (intra-VM shared-memory synchronization).
	LockOpsPerIter int
	// CSLength is the critical-section hold time.
	CSLength sim.Time
	// LocksPerVM is the number of distinct guest locks contended.
	LocksPerVM int
	// Pattern and MsgSize describe the cross-VM exchange per iteration.
	Pattern CommPattern
	MsgSize int
	// RecvPoll is the MPI progress-engine busy-poll budget per receive:
	// the rank spins on the mailbox for up to RecvPoll before yielding
	// the VCPU (0 blocks immediately, < 0 spins forever). Tightly-coupled
	// MPI applications poll aggressively, which is what makes them burn
	// CPU during synchronization phases on over-committed hosts.
	RecvPoll sim.Time
	// IntraVMBarrier adds a spin-barrier across the ranks of each VM at
	// the end of every iteration: arrival is a lock-protected counter and
	// waiting ranks poll it under the lock — the paper's §II-B picture of
	// spinlock-mediated synchronization phases, with heavy lock traffic.
	IntraVMBarrier bool
	// BarrierPollGap is the compute between barrier polls (default 20µs
	// when IntraVMBarrier is set).
	BarrierPollGap sim.Time
	// Iterations is the supersteps per run.
	Iterations int
	// Footprint and ColdRate give the per-process cache profile.
	Footprint int64
	ColdRate  float64
}

// Validate checks a profile for consistency.
func (p AppProfile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("workload: empty profile name")
	case p.ComputePerIter < 0 || p.CSLength < 0:
		return fmt.Errorf("workload: negative durations in %s", p.Name)
	case p.ComputeJitter < 0 || p.ComputeJitter > 1:
		return fmt.Errorf("workload: jitter out of [0,1] in %s", p.Name)
	case p.LockOpsPerIter < 0 || p.MsgSize < 0:
		return fmt.Errorf("workload: negative counts in %s", p.Name)
	case p.LockOpsPerIter > 0 && p.LocksPerVM <= 0:
		return fmt.Errorf("workload: %s locks without LocksPerVM", p.Name)
	case p.Iterations <= 0:
		return fmt.Errorf("workload: %s needs iterations", p.Name)
	case p.Footprint < 0 || p.ColdRate <= 0 || p.ColdRate > 1:
		return fmt.Errorf("workload: bad cache profile in %s", p.Name)
	}
	return nil
}

// MessagesPerRound returns the number of cross-VM packets one complete
// round of the profile posts across a virtual cluster of nVMs VMs with
// ranks processes each. The count is a pure function of the
// communication pattern, so it is the analytic conservation target the
// property harness checks every scheduler against.
func (p AppProfile) MessagesPerRound(nVMs, ranks int) uint64 {
	if nVMs <= 1 || ranks <= 0 {
		return 0
	}
	var total uint64
	for it := 0; it < p.Iterations; it++ {
		for vmIdx := 0; vmIdx < nVMs; vmIdx++ {
			total += uint64(len(p.Pattern.sendTo(it, vmIdx, nVMs)) * ranks)
		}
	}
	return total
}

// NPB returns the profile for one of the paper's six kernels at the
// given class. Known kernels: lu, is, sp, bt, mg, cg.
func NPB(kernel string, class Class) AppProfile {
	var p AppProfile
	switch kernel {
	case "lu":
		// Pipelined wavefront: small compute steps, very frequent
		// fine-grained synchronization — the most slice-sensitive kernel.
		p = AppProfile{
			ComputePerIter: 2500 * sim.Microsecond,
			LockOpsPerIter: 6,
			CSLength:       60 * sim.Microsecond,
			LocksPerVM:     2,
			Pattern:        PatternRing,
			MsgSize:        4 << 10,
			Iterations:     30,
			Footprint:      256 << 10,
			ColdRate:       0.70,
		}
	case "is":
		// Bucket sort: almost all communication (all-to-all), tiny
		// compute — the largest gains from short slices.
		p = AppProfile{
			ComputePerIter: 1200 * sim.Microsecond,
			LockOpsPerIter: 4,
			CSLength:       50 * sim.Microsecond,
			LocksPerVM:     1,
			Pattern:        PatternAllToAll,
			MsgSize:        8 << 10,
			Iterations:     12,
			Footprint:      384 << 10,
			ColdRate:       0.80,
		}
	case "sp":
		// Scalar pentadiagonal ADI: compute-heavy with neighbor sweeps.
		p = AppProfile{
			ComputePerIter: 6 * sim.Millisecond,
			LockOpsPerIter: 6,
			CSLength:       80 * sim.Microsecond,
			LocksPerVM:     2,
			Pattern:        PatternNeighbor,
			MsgSize:        12 << 10,
			Iterations:     20,
			Footprint:      320 << 10,
			ColdRate:       0.65,
		}
	case "bt":
		// Block tridiagonal: the most compute-dominated kernel.
		p = AppProfile{
			ComputePerIter: 9 * sim.Millisecond,
			LockOpsPerIter: 6,
			CSLength:       80 * sim.Microsecond,
			LocksPerVM:     2,
			Pattern:        PatternNeighbor,
			MsgSize:        12 << 10,
			Iterations:     18,
			Footprint:      320 << 10,
			ColdRate:       0.65,
		}
	case "mg":
		// Multigrid V-cycles: mixed compute and butterfly exchanges.
		p = AppProfile{
			ComputePerIter: 3500 * sim.Microsecond,
			LockOpsPerIter: 6,
			CSLength:       60 * sim.Microsecond,
			LocksPerVM:     2,
			Pattern:        PatternButterfly,
			MsgSize:        8 << 10,
			Iterations:     18,
			Footprint:      448 << 10,
			ColdRate:       0.70,
		}
	case "cg":
		// Conjugate gradient: irregular sparse exchanges, frequent locks.
		p = AppProfile{
			ComputePerIter: 2800 * sim.Microsecond,
			LockOpsPerIter: 6,
			CSLength:       60 * sim.Microsecond,
			LocksPerVM:     2,
			Pattern:        PatternStride,
			MsgSize:        8 << 10,
			Iterations:     24,
			Footprint:      384 << 10,
			ColdRate:       0.70,
		}
	case "ep":
		// Embarrassingly parallel (NPB member beyond the paper's six):
		// almost no synchronization — a control workload on which slice
		// adaptation should neither help nor hurt.
		p = AppProfile{
			ComputePerIter: 8 * sim.Millisecond,
			LockOpsPerIter: 0,
			CSLength:       0,
			LocksPerVM:     0,
			Pattern:        PatternNone,
			MsgSize:        0,
			Iterations:     12,
			Footprint:      128 << 10,
			ColdRate:       0.85,
		}
	case "ft":
		// 3-D FFT (NPB member beyond the paper's six): large all-to-all
		// transposes separated by substantial compute.
		p = AppProfile{
			ComputePerIter: 5 * sim.Millisecond,
			LockOpsPerIter: 4,
			CSLength:       60 * sim.Microsecond,
			LocksPerVM:     2,
			Pattern:        PatternAllToAll,
			MsgSize:        16 << 10,
			Iterations:     10,
			Footprint:      512 << 10,
			ColdRate:       0.65,
		}
	default:
		panic(fmt.Sprintf("workload: unknown NPB kernel %q", kernel))
	}
	p.ComputeJitter = 0.25
	p.RecvPoll = 5 * sim.Millisecond
	switch class {
	case ClassA:
		p.ComputePerIter /= 2
		p.MsgSize /= 2
		p.Footprint /= 2
	case ClassB:
		// reference values above
	case ClassC:
		p.ComputePerIter = p.ComputePerIter * 5 / 2
		p.MsgSize *= 2
		p.Footprint *= 3
		p.Iterations = p.Iterations * 3 / 2
	default:
		panic(fmt.Sprintf("workload: unknown class %v", class))
	}
	p.Name = kernel + "." + class.String()
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return p
}

// NPBKernels lists the six kernels the paper evaluates.
func NPBKernels() []string { return []string{"lu", "is", "sp", "bt", "mg", "cg"} }

// ExtraKernels lists the additional NPB members this reproduction also
// models (not part of the paper's evaluation).
func ExtraKernels() []string { return []string{"ep", "ft"} }
