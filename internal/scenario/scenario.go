// Package scenario loads experiment descriptions from JSON and builds
// runnable cluster scenarios from them — the declarative interface of
// cmd/atcsim (-f scenario.json). A spec names the platform (nodes,
// scheduler), the virtual clusters with their kernels, and the
// non-parallel jobs; Run executes it and renders a result table.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"atcsched/internal/cluster"
	"atcsched/internal/fault"
	"atcsched/internal/report"
	"atcsched/internal/sched/registry"
	"atcsched/internal/sim"
	"atcsched/internal/vmm"
	"atcsched/internal/workload"
)

// Spec is the top-level scenario description.
type Spec struct {
	// Nodes is the physical node count (required, >= 1).
	Nodes int `json:"nodes"`
	// PCPUsPerNode overrides the default 8 cores per node.
	PCPUsPerNode int `json:"pcpusPerNode,omitempty"`
	// Scheduler selects and tunes the approach.
	Scheduler SchedulerSpec `json:"scheduler"`
	// Seed drives workload randomness (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// HorizonSec caps the virtual runtime (default 1200).
	HorizonSec float64 `json:"horizonSec,omitempty"`
	// VirtualClusters lists the parallel tenants.
	VirtualClusters []VCSpec `json:"virtualClusters"`
	// Jobs lists the non-parallel tenants.
	Jobs []JobSpec `json:"jobs,omitempty"`
	// NodePolicies assigns different scheduling policies to specific
	// nodes, overriding Scheduler there (heterogeneous clusters).
	NodePolicies []NodePolicySpec `json:"nodePolicies,omitempty"`
	// Switches schedules live policy replacements at virtual times
	// during the run (e.g. flip CR to ATC mid-experiment).
	Switches []SwitchSpec `json:"policySwitches,omitempty"`
	// Faults schedules deterministic fault injection (internal/fault):
	// straggler nodes, packet loss, bandwidth degradation, monitor
	// faults. Windows are seeded from faults.seed (or the scenario
	// seed).
	Faults *fault.Spec `json:"faults,omitempty"`
}

// SchedulerSpec selects the VMM scheduling approach.
type SchedulerSpec struct {
	// Kind names a registered policy (see `atcsim -list-schedulers`):
	// CR, CS, BS, DSS, VS, ATC, HY or EXT.
	Kind string `json:"kind"`
	// Options parameterizes the policy: a JSON object merged over the
	// policy's defaults (e.g. {"control": {"alpha": "6ms"}} for ATC, or
	// {"spinWaitThreshold": "150us"} for CS). Unknown fields are errors.
	Options json.RawMessage `json:"options,omitempty"`
	// FixedSliceMs pins the base slice (CR sweeps).
	FixedSliceMs float64 `json:"fixedSliceMs,omitempty"`
	// NonParallelAdminSliceMs applies an admin slice to every
	// non-parallel VM (the ATC(6ms) variant).
	NonParallelAdminSliceMs float64 `json:"nonParallelAdminSliceMs,omitempty"`
}

// NodePolicySpec pins a scheduling policy on a subset of nodes. It is a
// complete policy selection — it does not inherit the top-level
// scheduler's options or slice overrides.
type NodePolicySpec struct {
	// Nodes lists the node indices the policy applies to.
	Nodes []int `json:"nodes"`
	// Kind and Options as in SchedulerSpec.
	Kind    string          `json:"kind"`
	Options json.RawMessage `json:"options,omitempty"`
}

// SwitchSpec replaces the scheduling policy on running nodes at a
// virtual time. The swap lands on each node's next period boundary
// after AtSec.
type SwitchSpec struct {
	// AtSec is the virtual time of the switch (> 0).
	AtSec float64 `json:"atSec"`
	// Nodes lists target node indices; empty means every node.
	Nodes []int `json:"nodes,omitempty"`
	// Kind and Options select the replacement policy.
	Kind    string          `json:"kind"`
	Options json.RawMessage `json:"options,omitempty"`
}

// VCSpec describes one virtual cluster.
type VCSpec struct {
	Name string `json:"name"`
	// VMs and VCPUs size the cluster (defaults: one VM per node, 8).
	VMs   int `json:"vms,omitempty"`
	VCPUs int `json:"vcpus,omitempty"`
	// Kernel and Class pick the application (defaults lu, B). Kernels:
	// lu, is, sp, bt, mg, cg, ep, ft.
	Kernel string `json:"kernel,omitempty"`
	Class  string `json:"class,omitempty"`
	// Rounds to measure (default 3); Forever keeps it running after.
	Rounds  int  `json:"rounds,omitempty"`
	Forever bool `json:"forever,omitempty"`
	// Background excludes the cluster from completion accounting.
	Background bool `json:"background,omitempty"`
}

// JobSpec describes one non-parallel tenant.
type JobSpec struct {
	// Type is web, ping, disk, stream, or cpu.
	Type string `json:"type"`
	// Name selects the CPU profile for type cpu (gcc, bzip2, sphinx3).
	Name string `json:"name,omitempty"`
	// Node hosts the job's (server) VM.
	Node int `json:"node"`
	// PeerNode hosts the client/prober VM for web and ping (defaults to
	// (Node+1) mod nodes).
	PeerNode *int `json:"peerNode,omitempty"`
	// IntervalMs is the ping probe spacing (default 10).
	IntervalMs float64 `json:"intervalMs,omitempty"`
}

// Resource caps: a spec is a request to allocate a world, so every size
// and duration is bounded. The caps are far above anything the paper's
// experiments use; they exist so a malformed or hostile spec fails
// Validate instead of exhausting memory or overflowing the virtual
// clock (sim.Time is int64 nanoseconds — huge float seconds would wrap).
const (
	maxNodes        = 1024
	maxPCPUsPerNode = 256
	maxClusters     = 256
	maxVMs          = 4096
	maxVCPUs        = 256
	maxRounds       = 100000
	maxJobs         = 1024
	maxHorizonSec   = 864000 // 10 virtual days
	maxSliceMs      = 10000
	maxIntervalMs   = 60000
	maxSwitches     = 64
)

// Load parses and validates a JSON spec.
func Load(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("scenario: trailing data after spec")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks the spec and fills defaults.
func (s *Spec) Validate() error {
	if s.Nodes < 1 {
		return fmt.Errorf("scenario: nodes must be >= 1, got %d", s.Nodes)
	}
	if s.Nodes > maxNodes {
		return fmt.Errorf("scenario: nodes %d exceeds cap %d", s.Nodes, maxNodes)
	}
	if s.PCPUsPerNode < 0 || s.PCPUsPerNode > maxPCPUsPerNode {
		return fmt.Errorf("scenario: pcpusPerNode %d out of [0,%d]", s.PCPUsPerNode, maxPCPUsPerNode)
	}
	if len(s.VirtualClusters) > maxClusters {
		return fmt.Errorf("scenario: %d clusters exceeds cap %d", len(s.VirtualClusters), maxClusters)
	}
	if len(s.Jobs) > maxJobs {
		return fmt.Errorf("scenario: %d jobs exceeds cap %d", len(s.Jobs), maxJobs)
	}
	if s.Scheduler.Kind == "" {
		s.Scheduler.Kind = "ATC"
	}
	if err := registry.Validate(s.Scheduler.Kind, s.Scheduler.Options); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	if s.Scheduler.FixedSliceMs < 0 || s.Scheduler.NonParallelAdminSliceMs < 0 {
		return fmt.Errorf("scenario: negative slice override")
	}
	if s.Scheduler.FixedSliceMs > maxSliceMs || s.Scheduler.NonParallelAdminSliceMs > maxSliceMs {
		return fmt.Errorf("scenario: slice override exceeds cap %dms", maxSliceMs)
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.HorizonSec == 0 {
		s.HorizonSec = 1200
	}
	if s.HorizonSec < 0 {
		return fmt.Errorf("scenario: negative horizon")
	}
	if s.HorizonSec > maxHorizonSec {
		return fmt.Errorf("scenario: horizon %vs exceeds cap %ds", s.HorizonSec, maxHorizonSec)
	}
	if len(s.VirtualClusters) == 0 && len(s.Jobs) == 0 {
		return fmt.Errorf("scenario: nothing to run")
	}
	names := map[string]bool{}
	for i := range s.VirtualClusters {
		vc := &s.VirtualClusters[i]
		if vc.Name == "" {
			vc.Name = fmt.Sprintf("vc%d", i)
		}
		if names[vc.Name] {
			return fmt.Errorf("scenario: duplicate cluster name %q", vc.Name)
		}
		names[vc.Name] = true
		if vc.VMs == 0 {
			vc.VMs = s.Nodes
		}
		if vc.VCPUs == 0 {
			vc.VCPUs = 8
		}
		if vc.Kernel == "" {
			vc.Kernel = "lu"
		}
		known := false
		for _, k := range append(workload.NPBKernels(), workload.ExtraKernels()...) {
			if vc.Kernel == k {
				known = true
			}
		}
		if !known {
			return fmt.Errorf("scenario: cluster %q: unknown kernel %q", vc.Name, vc.Kernel)
		}
		if vc.Class == "" {
			vc.Class = "B"
		}
		if vc.Class != "A" && vc.Class != "B" && vc.Class != "C" {
			return fmt.Errorf("scenario: cluster %q: class must be A, B or C", vc.Name)
		}
		if vc.Rounds == 0 {
			vc.Rounds = 3
		}
		if vc.Rounds < 0 || vc.VMs < 1 || vc.VCPUs < 1 {
			return fmt.Errorf("scenario: cluster %q: bad sizing", vc.Name)
		}
		if vc.VMs > maxVMs || vc.VCPUs > maxVCPUs || vc.Rounds > maxRounds {
			return fmt.Errorf("scenario: cluster %q: sizing exceeds caps (vms %d/%d, vcpus %d/%d, rounds %d/%d)",
				vc.Name, vc.VMs, maxVMs, vc.VCPUs, maxVCPUs, vc.Rounds, maxRounds)
		}
	}
	for i := range s.Jobs {
		j := &s.Jobs[i]
		switch j.Type {
		case "web", "ping", "disk", "stream", "cpu":
		default:
			return fmt.Errorf("scenario: job %d: unknown type %q", i, j.Type)
		}
		if j.Node < 0 || j.Node >= s.Nodes {
			return fmt.Errorf("scenario: job %d: node %d out of range", i, j.Node)
		}
		if j.PeerNode != nil && (*j.PeerNode < 0 || *j.PeerNode >= s.Nodes) {
			return fmt.Errorf("scenario: job %d: peer node out of range", i)
		}
		if j.Type == "cpu" {
			found := false
			for _, p := range workload.SPECProfiles() {
				if p.Name == j.Name {
					found = true
				}
			}
			if !found {
				return fmt.Errorf("scenario: job %d: unknown cpu profile %q (gcc|bzip2|sphinx3)", i, j.Name)
			}
		}
		if j.IntervalMs < 0 {
			return fmt.Errorf("scenario: job %d: negative interval", i)
		}
		if j.IntervalMs > maxIntervalMs {
			return fmt.Errorf("scenario: job %d: interval exceeds cap %dms", i, maxIntervalMs)
		}
		if j.IntervalMs == 0 {
			j.IntervalMs = 10
		}
	}
	pinned := map[int]bool{}
	for i, np := range s.NodePolicies {
		if len(np.Nodes) == 0 {
			return fmt.Errorf("scenario: node policy %d: empty node list", i)
		}
		for _, n := range np.Nodes {
			if n < 0 || n >= s.Nodes {
				return fmt.Errorf("scenario: node policy %d: node %d out of range", i, n)
			}
			if pinned[n] {
				return fmt.Errorf("scenario: node %d has multiple node policies", n)
			}
			pinned[n] = true
		}
		if err := registry.Validate(np.Kind, np.Options); err != nil {
			return fmt.Errorf("scenario: node policy %d: %w", i, err)
		}
	}
	if len(s.Switches) > maxSwitches {
		return fmt.Errorf("scenario: %d policy switches exceeds cap %d", len(s.Switches), maxSwitches)
	}
	for i, sw := range s.Switches {
		if sw.AtSec <= 0 {
			return fmt.Errorf("scenario: policy switch %d: atSec must be > 0, got %v", i, sw.AtSec)
		}
		if sw.AtSec > maxHorizonSec {
			return fmt.Errorf("scenario: policy switch %d: atSec %vs exceeds cap %ds", i, sw.AtSec, maxHorizonSec)
		}
		for _, n := range sw.Nodes {
			if n < 0 || n >= s.Nodes {
				return fmt.Errorf("scenario: policy switch %d: node %d out of range", i, n)
			}
		}
		if err := registry.Validate(sw.Kind, sw.Options); err != nil {
			return fmt.Errorf("scenario: policy switch %d: %w", i, err)
		}
	}
	if s.Faults != nil {
		if err := s.Faults.Validate(s.Nodes); err != nil {
			return fmt.Errorf("scenario: %w", err)
		}
	}
	return nil
}

// Result is a built, runnable scenario plus handles to its metrics.
type Result struct {
	Scenario *cluster.Scenario
	runs     map[string]*workload.ParallelRun
	webs     []*workload.WebJob
	pings    []*workload.PingJob
	disks    []*workload.DiskJob
	streams  []*workload.StreamJob
	cpus     []*workload.CPUJob
	jobNames []string
	horizon  sim.Time
	order    []string
}

// Build constructs the world from the spec.
func Build(spec *Spec) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	cfg := cluster.DefaultConfig(spec.Nodes, cluster.Approach(strings.ToUpper(spec.Scheduler.Kind)))
	cfg.Seed = spec.Seed
	if spec.PCPUsPerNode > 0 {
		cfg.Node.PCPUs = spec.PCPUsPerNode
	}
	if len(spec.Scheduler.Options) > 0 {
		cfg.Sched.Options = spec.Scheduler.Options
	}
	if spec.Scheduler.FixedSliceMs > 0 {
		cfg.Sched.FixedSlice = sim.FromMillis(spec.Scheduler.FixedSliceMs)
	}
	if spec.Scheduler.NonParallelAdminSliceMs > 0 {
		cfg.NonParallelAdminSlice = sim.FromMillis(spec.Scheduler.NonParallelAdminSliceMs)
	}
	cfg.Faults = spec.Faults
	if len(spec.NodePolicies) > 0 {
		cfg.NodePolicies = map[int]cluster.SchedSpec{}
		for _, np := range spec.NodePolicies {
			nspec := cluster.SchedSpec{Kind: cluster.Approach(strings.ToUpper(np.Kind))}
			if len(np.Options) > 0 {
				nspec.Options = np.Options
			}
			for _, n := range np.Nodes {
				cfg.NodePolicies[n] = nspec
			}
		}
	}
	s, err := cluster.New(cfg)
	if err != nil {
		return nil, err
	}
	for i, sw := range spec.Switches {
		sspec := cluster.SchedSpec{Kind: cluster.Approach(strings.ToUpper(sw.Kind))}
		if len(sw.Options) > 0 {
			sspec.Options = sw.Options
		}
		f, err := sspec.Factory()
		if err != nil {
			return nil, fmt.Errorf("scenario: policy switch %d: %w", i, err)
		}
		targets := sw.Nodes
		if len(targets) == 0 {
			targets = make([]int, spec.Nodes)
			for n := range targets {
				targets[n] = n
			}
		}
		targets = append([]int(nil), targets...)
		s.World.Eng.Schedule(sim.FromSeconds(sw.AtSec), func() {
			for _, n := range targets {
				// Validate ruled out the only error (nil factory).
				_ = s.World.Node(n).SwapScheduler(f)
			}
		})
	}
	res := &Result{
		Scenario: s,
		runs:     map[string]*workload.ParallelRun{},
		horizon:  sim.FromSeconds(spec.HorizonSec),
	}
	classOf := map[string]workload.Class{"A": workload.ClassA, "B": workload.ClassB, "C": workload.ClassC}
	for _, vc := range spec.VirtualClusters {
		prof := workload.NPB(vc.Kernel, classOf[vc.Class])
		vms := s.VirtualCluster(vc.Name, vc.VMs, vc.VCPUs, nil)
		if vc.Background {
			s.RunBackground(prof, vms)
			continue
		}
		res.runs[vc.Name] = s.RunParallel(prof, vms, vc.Rounds, vc.Forever)
		res.order = append(res.order, vc.Name)
	}
	for i, j := range spec.Jobs {
		peer := (j.Node + 1) % spec.Nodes
		if j.PeerNode != nil {
			peer = *j.PeerNode
		}
		label := fmt.Sprintf("%s%d", j.Type, i)
		switch j.Type {
		case "web":
			server := s.IndependentVM(label+"-srv", j.Node, 2, vmm.ClassNonParallel)
			client := s.IndependentVM(label+"-cli", peer, 2, vmm.ClassNonParallel)
			res.webs = append(res.webs, workload.NewWebJob(client, 0, server, 0,
				20*sim.Millisecond, 2*sim.Millisecond, spec.Seed+uint64(i)))
		case "ping":
			client := s.IndependentVM(label+"-cli", peer, 1, vmm.ClassNonParallel)
			echo := s.IndependentVM(label+"-echo", j.Node, 1, vmm.ClassNonParallel)
			res.pings = append(res.pings, workload.NewPingJob(client, 0, echo, 0,
				sim.FromMillis(j.IntervalMs)))
		case "disk":
			vm := s.IndependentVM(label, j.Node, 1, vmm.ClassNonParallel)
			res.disks = append(res.disks, workload.NewDiskJob(vm.VCPU(0)))
		case "stream":
			vm := s.IndependentVM(label, j.Node, 1, vmm.ClassNonParallel)
			res.streams = append(res.streams, workload.NewStreamJob(vm.VCPU(0)))
		case "cpu":
			vm := s.IndependentVM(label+"-"+j.Name, j.Node, 1, vmm.ClassNonParallel)
			for _, p := range workload.SPECProfiles() {
				if p.Name == j.Name {
					res.cpus = append(res.cpus, workload.NewCPUJob(vm.VCPU(0), p))
				}
			}
		}
		res.jobNames = append(res.jobNames, label)
	}
	return res, nil
}

// Run executes the scenario: to measured-cluster completion when there
// are measured clusters (with the horizon as a safety net), else for a
// fixed 30 virtual seconds of steady state. It returns the result table.
func (r *Result) Run() (*report.Table, error) {
	if len(r.runs) > 0 {
		if !r.Scenario.Go(r.horizon) {
			return nil, fmt.Errorf("scenario: horizon %v exceeded before all clusters finished", r.horizon)
		}
		r.Scenario.ContinueFor(5 * sim.Second)
	} else {
		r.Scenario.GoFor(30 * sim.Second)
	}
	t := report.New("scenario results", "entity", "metric", "value")
	for _, name := range r.order {
		run := r.runs[name]
		t.Add(name, "mean exec", fmt.Sprintf("%.3fs", run.MeanTime()))
		t.Add(name, "spin latency", run.App.SpinLatencyMean().String())
	}
	for _, w := range r.webs {
		t.Add("web", "mean response", report.Ms(w.MeanResponse()))
		t.Add("web", "p99 response", report.Ms(w.P99Response()))
	}
	for _, p := range r.pings {
		t.Add("ping", "mean RTT", report.Ms(p.MeanRTT()))
		t.Add("ping", "p99 RTT", report.Ms(p.P99RTT()))
	}
	for _, d := range r.disks {
		t.Add("disk", "throughput", fmt.Sprintf("%.1f MB/s", d.ThroughputMBps()))
	}
	for _, st := range r.streams {
		t.Add("stream", "bandwidth", fmt.Sprintf("%.0f MB/s", st.BandwidthMBps()))
	}
	for _, c := range r.cpus {
		t.Add(c.Profile.Name, "round time", fmt.Sprintf("%.3fs", c.MeanTime()))
	}
	if r.Scenario.FaultPlan() != nil {
		t.Add("faults", "injections", r.Scenario.FaultReport().String())
	}
	return t, nil
}
