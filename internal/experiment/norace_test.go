//go:build !race

package experiment

// raceEnabled reports that this test binary carries the race detector.
const raceEnabled = false
