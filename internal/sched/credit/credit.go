// Package credit implements Xen's Credit scheduler (the paper's CR
// baseline): proportional-share credits refilled every 30 ms accounting
// period and burned at 10 ms ticks, three priority classes (BOOST >
// UNDER > OVER), per-PCPU runqueues with work-conserving stealing, and
// wake "tickling" that lets a boosted VCPU preempt a lower-priority one.
//
// The other schedulers in atcsched (CS, BS, DSS, VS, ATC) embed this
// core and override queue placement, slice length, or period behaviour.
package credit

import (
	"fmt"

	"atcsched/internal/sim"
	"atcsched/internal/vmm"
)

// Priority is a runqueue class.
type Priority int

// Priority classes, in dispatch order.
const (
	PrioBoost Priority = iota
	PrioUnder
	PrioOver
	numPrios
)

// String returns the priority name.
func (p Priority) String() string {
	switch p {
	case PrioBoost:
		return "BOOST"
	case PrioUnder:
		return "UNDER"
	case PrioOver:
		return "OVER"
	default:
		return fmt.Sprintf("Priority(%d)", int(p))
	}
}

// Options configures the credit core. The json tags carry omitzero so
// the policy registry can overlay partially-specified options on the
// defaults: zero-valued fields marshal away and inherit.
type Options struct {
	// TimeSlice is the slice granted per dispatch (Xen default: 30 ms).
	TimeSlice sim.Time `json:"timeSlice,omitzero"`
	// DefaultWeight is the proportional-share weight per VM (Xen: 256).
	DefaultWeight int `json:"defaultWeight,omitzero"`
	// Boost enables wake boosting (on in stock Xen; off for ablation).
	Boost bool `json:"boost,omitzero"`
	// Steal enables work-conserving stealing from sibling runqueues.
	Steal bool `json:"steal,omitzero"`
}

// DefaultOptions returns stock Xen Credit parameters.
func DefaultOptions() Options {
	return Options{
		TimeSlice:     30 * sim.Millisecond,
		DefaultWeight: 256,
		Boost:         true,
		Steal:         true,
	}
}

// Validate checks the options for consistency (the constructor panics
// on the same conditions; Validate lets config-driven callers get an
// error instead).
func (o Options) Validate() error {
	if o.TimeSlice <= 0 {
		return fmt.Errorf("credit: time slice must be positive, got %v", o.TimeSlice)
	}
	if o.DefaultWeight <= 0 {
		return fmt.Errorf("credit: default weight must be positive, got %d", o.DefaultWeight)
	}
	return nil
}

// ApplyOverrides folds the cross-policy base overrides into the credit
// options: a nonzero fixedSlice replaces TimeSlice, and the disable
// flags force Boost/Steal off (never on). Every policy embedding the
// credit core routes its registry Build through this.
func (o *Options) ApplyOverrides(fixedSlice sim.Time, disableBoost, disableSteal bool) error {
	if fixedSlice < 0 {
		return fmt.Errorf("credit: negative fixed slice %v", fixedSlice)
	}
	if fixedSlice != 0 {
		o.TimeSlice = fixedSlice
	}
	if disableBoost {
		o.Boost = false
	}
	if disableSteal {
		o.Steal = false
	}
	return o.Validate()
}

// VCPUData is the credit state attached to each VCPU via SchedData.
type VCPUData struct {
	// Credit is the remaining CPU entitlement in sim time units.
	Credit sim.Time
	// Charged is the VCPU CPU time already billed against Credit.
	Charged sim.Time
	// lastPeriodCPU is the VCPU's CPU time at the previous accounting
	// period, to detect active VCPUs.
	lastPeriodCPU sim.Time
	// Prio is the current runqueue class.
	Prio Priority
	// Queue is the PCPU runqueue index the VCPU lives in (home PCPU).
	Queue int
	// Queued reports whether the VCPU currently sits in a runqueue.
	Queued bool
}

// Scheduler is the credit core. It implements vmm.Scheduler.
type Scheduler struct {
	node   *vmm.Node
	opts   Options
	queues [][]*vmm.VCPU // [pcpu][pos], each kept sorted by enqueue order within class
	// weights maps VM id to weight (DefaultWeight when absent).
	weights map[int]int
	// shares maps VM id to a pinned CPU fraction of node capacity in
	// [0,1]. A VM with a share draws exactly that fraction of the
	// per-period credit supply; VMs without one split the remainder
	// weight-proportionally. This is the fractional accounting path the
	// DFRS family drives (see SetShare).
	shares map[int]float64
	// creditCap bounds accumulated credit to avoid unbounded hoarding.
	creditCap sim.Time
	// steals counts cross-runqueue dispatches (telemetry).
	steals uint64

	// PlaceQueue, when non-nil, overrides home-queue selection at enqueue
	// time (used by Balance Scheduling).
	PlaceQueue func(v *vmm.VCPU, reason vmm.EnqueueReason) int

	// lastCPU remembers each VM's total CPU time at the previous
	// accounting period, to detect active VMs (Xen distributes credit
	// only to active domains — an idle dom0 must not absorb supply).
	lastCPU map[int]sim.Time
}

// New builds a credit scheduler for node n.
func New(n *vmm.Node, opts Options) *Scheduler {
	if opts.TimeSlice <= 0 {
		panic("credit: non-positive time slice")
	}
	if opts.DefaultWeight <= 0 {
		panic("credit: non-positive weight")
	}
	s := &Scheduler{
		node:    n,
		opts:    opts,
		queues:  make([][]*vmm.VCPU, len(n.PCPUs())),
		weights: make(map[int]int),
		shares:  make(map[int]float64),
		lastCPU: make(map[int]sim.Time),
	}
	return s
}

// Factory returns a vmm.SchedulerFactory producing credit schedulers.
func Factory(opts Options) vmm.SchedulerFactory {
	return func(n *vmm.Node) vmm.Scheduler { return New(n, opts) }
}

// Name implements vmm.Scheduler.
func (s *Scheduler) Name() string { return "CR" }

// Node returns the scheduler's node.
func (s *Scheduler) Node() *vmm.Node { return s.node }

// Options returns the configured options.
func (s *Scheduler) Options() Options { return s.opts }

// SetWeight overrides one VM's proportional-share weight.
func (s *Scheduler) SetWeight(vm *vmm.VM, w int) {
	if w <= 0 {
		panic("credit: non-positive weight")
	}
	s.weights[vm.ID()] = w
}

func (s *Scheduler) weight(vm *vmm.VM) int {
	if w, ok := s.weights[vm.ID()]; ok {
		return w
	}
	return s.opts.DefaultWeight
}

// SetShare pins vm's per-period credit supply to frac of node capacity
// (1.0 = every PCPU for the whole period). Shared VMs are refilled
// before the weight-proportional pool, which then splits only the
// remaining supply; when the shares of the period's active VMs sum
// above 1 they are scaled down proportionally. Fractional policies
// (DFRS) drive this instead of SetWeight.
func (s *Scheduler) SetShare(vm *vmm.VM, frac float64) {
	if frac < 0 || frac > 1 {
		panic(fmt.Sprintf("credit: share %v outside [0,1]", frac))
	}
	s.shares[vm.ID()] = frac
}

// ClearShare removes vm's pinned fraction, returning it to the
// weight-proportional pool.
func (s *Scheduler) ClearShare(vm *vmm.VM) { delete(s.shares, vm.ID()) }

// Share returns vm's pinned fraction, if any.
func (s *Scheduler) Share(vm *vmm.VM) (float64, bool) {
	f, ok := s.shares[vm.ID()]
	return f, ok
}

// Data returns the credit state of v, creating it if needed.
func (s *Scheduler) Data(v *vmm.VCPU) *VCPUData {
	d, ok := v.SchedData.(*VCPUData)
	if !ok {
		d = &VCPUData{Queue: -1}
		v.SchedData = d
	}
	return d
}

// Register implements vmm.Scheduler.
func (s *Scheduler) Register(v *vmm.VCPU) {
	d := s.Data(v)
	if d.Queue < 0 {
		// Spread home queues across PCPUs, honoring affinity.
		d.Queue = v.ID() % len(s.queues)
		if !v.AllowedOn(d.Queue) {
			for q := range s.queues {
				if v.AllowedOn(q) {
					d.Queue = q
					break
				}
			}
		}
	}
	d.Prio = PrioUnder
}

// charge bills v's CPU consumption since the last charge against its
// credit balance.
func (s *Scheduler) charge(v *vmm.VCPU, d *VCPUData) {
	cpu := v.CPUTime()
	if delta := cpu - d.Charged; delta > 0 {
		d.Credit -= delta
		if s.creditCap > 0 && d.Credit < -s.creditCap {
			d.Credit = -s.creditCap
		}
		d.Charged = cpu
	}
}

// Enqueue implements vmm.Scheduler.
func (s *Scheduler) Enqueue(v *vmm.VCPU, reason vmm.EnqueueReason) {
	d := s.Data(v)
	if d.Queued {
		panic(fmt.Sprintf("credit: %s enqueued twice", v))
	}
	s.charge(v, d)
	if reason == vmm.EnqueueWake && s.opts.Boost && d.Credit > 0 {
		d.Prio = PrioBoost
	} else if d.Prio == PrioBoost && reason == vmm.EnqueuePreempt {
		// A preempted boost VCPU drops back to its credit class.
		d.Prio = s.creditPrio(d)
	} else if d.Prio != PrioBoost {
		d.Prio = s.creditPrio(d)
	}
	q := d.Queue
	if s.PlaceQueue != nil {
		q = s.PlaceQueue(v, reason)
	}
	if !v.AllowedOn(q) {
		for cand := range s.queues {
			if v.AllowedOn(cand) {
				q = cand
				break
			}
		}
	}
	if q < 0 || q >= len(s.queues) {
		panic(fmt.Sprintf("credit: bad queue %d for %s", q, v))
	}
	d.Queue = q
	d.Queued = true
	s.queues[q] = s.insertByClass(s.queues[q], v, d.Prio)
}

// insertByClass appends v at the tail of its priority class.
func (s *Scheduler) insertByClass(q []*vmm.VCPU, v *vmm.VCPU, prio Priority) []*vmm.VCPU {
	pos := len(q)
	for i, o := range q {
		if s.Data(o).Prio > prio {
			pos = i
			break
		}
	}
	q = append(q, nil)
	copy(q[pos+1:], q[pos:])
	q[pos] = v
	return q
}

// EnqueueFront pushes v at the very head of queue q with BOOST class —
// used by co-scheduling gang dispatch.
func (s *Scheduler) EnqueueFront(v *vmm.VCPU, q int) {
	d := s.Data(v)
	if d.Queued {
		panic(fmt.Sprintf("credit: EnqueueFront of queued %s", v))
	}
	d.Prio = PrioBoost
	d.Queue = q
	d.Queued = true
	s.queues[q] = append([]*vmm.VCPU{v}, s.queues[q]...)
}

// EnqueueBoostTail inserts v at the tail of queue q's BOOST class —
// priority promotion without queue-head hogging, so promoted VCPUs
// still round-robin among themselves (hybrid's blanket promotion).
func (s *Scheduler) EnqueueBoostTail(v *vmm.VCPU, q int) {
	d := s.Data(v)
	if d.Queued {
		panic(fmt.Sprintf("credit: EnqueueBoostTail of queued %s", v))
	}
	d.Prio = PrioBoost
	d.Queue = q
	d.Queued = true
	s.queues[q] = s.insertByClass(s.queues[q], v, PrioBoost)
}

// Dequeue removes v from its runqueue; it returns false when v was not
// queued.
func (s *Scheduler) Dequeue(v *vmm.VCPU) bool {
	d := s.Data(v)
	if !d.Queued {
		return false
	}
	q := s.queues[d.Queue]
	for i, o := range q {
		if o == v {
			s.queues[d.Queue] = append(q[:i], q[i+1:]...)
			d.Queued = false
			return true
		}
	}
	panic(fmt.Sprintf("credit: %s marked queued but absent from queue %d", v, d.Queue))
}

// QueueLen returns the length of PCPU q's runqueue.
func (s *Scheduler) QueueLen(q int) int { return len(s.queues[q]) }

// QueueVMs reports whether queue q contains (or PCPU q runs) a VCPU of
// vm — the Balance Scheduling predicate.
func (s *Scheduler) QueueHasSibling(q int, vm *vmm.VM, exclude *vmm.VCPU) bool {
	if cur := s.node.PCPUs()[q].Current(); cur != nil && cur.VM() == vm && cur != exclude {
		return true
	}
	for _, o := range s.queues[q] {
		if o.VM() == vm && o != exclude {
			return true
		}
	}
	return false
}

func (s *Scheduler) creditPrio(d *VCPUData) Priority {
	if d.Credit > 0 {
		return PrioUnder
	}
	return PrioOver
}

// PickNext implements vmm.Scheduler: pop the best-class head across the
// node. The own queue wins ties; a sibling queue's head is stolen only
// when its class is strictly better (this is how a tickled PCPU ends up
// running the freshly boosted VCPU even though it was enqueued
// elsewhere, matching Xen's wake path) or when the own queue is empty.
func (s *Scheduler) PickNext(p *vmm.PCPU) *vmm.VCPU {
	own := p.Index()
	ownPrio := numPrios
	if len(s.queues[own]) > 0 {
		ownPrio = s.Data(s.queues[own][0]).Prio
	}
	if !s.opts.Steal {
		return s.popQueue(own, own)
	}
	best := -1
	bestPrio := ownPrio
	bestLen := 0
	for q := range s.queues {
		if q == own || len(s.queues[q]) == 0 {
			continue
		}
		head := s.queues[q][0]
		if !head.AllowedOn(own) {
			continue
		}
		prio := s.Data(head).Prio
		if int(prio) < int(bestPrio) || (ownPrio == numPrios && prio == bestPrio && len(s.queues[q]) > bestLen) {
			best, bestPrio, bestLen = q, prio, len(s.queues[q])
		}
	}
	if best < 0 {
		return s.popQueue(own, own)
	}
	v := s.popQueue(best, own)
	if v == nil {
		return s.popQueue(own, own)
	}
	s.steals++
	s.Data(v).Queue = own // migrate home
	return v
}

// Steals returns how many dispatches pulled a VCPU from a sibling
// runqueue (work-conserving stealing; 0 with Steal disabled).
func (s *Scheduler) Steals() uint64 { return s.steals }

// popQueue removes and returns the first VCPU in queue q that may run
// on PCPU `on` (usually on == q; stealing passes the stealer).
func (s *Scheduler) popQueue(q, on int) *vmm.VCPU {
	for i, v := range s.queues[q] {
		if !v.AllowedOn(on) {
			continue
		}
		s.queues[q] = append(s.queues[q][:i:i], s.queues[q][i+1:]...)
		s.Data(v).Queued = false
		return v
	}
	return nil
}

// Slice implements vmm.Scheduler.
func (s *Scheduler) Slice(v *vmm.VCPU) sim.Time { return s.opts.TimeSlice }

// WakePreempts implements vmm.Scheduler: a woken VCPU preempts a PCPU
// whose current VCPU has a strictly worse class.
func (s *Scheduler) WakePreempts(p *vmm.PCPU, woken *vmm.VCPU) bool {
	cur := p.Current()
	if cur == nil {
		return true
	}
	return s.Data(woken).Prio < s.Data(cur).Prio
}

// OnTick implements vmm.Scheduler: bill running VCPUs' consumption and
// retire their BOOST.
func (s *Scheduler) OnTick(n *vmm.Node) {
	for _, p := range n.PCPUs() {
		cur := p.Current()
		if cur == nil {
			continue
		}
		d := s.Data(cur)
		s.charge(cur, d)
		if d.Prio == PrioBoost {
			d.Prio = s.creditPrio(d)
		}
	}
}

// OnPeriod implements vmm.Scheduler: refill credits proportionally to
// the weights of the *active* VMs (a VM is active when it consumed CPU
// since the last period or has runnable work). Active VMs carrying a
// pinned fraction (SetShare) are supplied first — exactly their
// fraction of the period's capacity — and the weight-proportional pool
// splits what remains.
func (s *Scheduler) OnPeriod(n *vmm.Node) {
	all := append([]*vmm.VM{n.Dom0()}, n.VMs()...)
	vms := all[:0:0]
	for _, vm := range all {
		var cpu sim.Time
		runnable := false
		for _, v := range vm.VCPUs() {
			cpu += v.CPUTime()
			if st := v.State(); st == vmm.StateRunnable || st == vmm.StateRunning {
				runnable = true
			}
		}
		if cpu > s.lastCPU[vm.ID()] || runnable {
			vms = append(vms, vm)
		}
		s.lastCPU[vm.ID()] = cpu
	}
	var weightSum int
	fracSum := 0.0
	for _, vm := range vms {
		if f, ok := s.shares[vm.ID()]; ok {
			fracSum += f
		} else {
			weightSum += s.weight(vm)
		}
	}
	if weightSum == 0 && fracSum == 0 {
		return
	}
	// Over-committed shares (active shared VMs asking for more than the
	// node) squeeze proportionally; the weighted pool then gets nothing.
	norm := 1.0
	if fracSum > 1 {
		norm = 1 / fracSum
	}
	total := float64(n.Config().SchedPeriod) * float64(len(n.PCPUs()))
	remaining := total * (1 - fracSum*norm)
	for _, vm := range vms {
		var share sim.Time
		if f, ok := s.shares[vm.ID()]; ok {
			share = sim.Time(total * f * norm)
		} else {
			share = sim.Time(remaining * float64(s.weight(vm)) / float64(weightSum))
		}
		s.refillVM(vm, share)
	}
}

// refillVM distributes one VM's per-period credit supply over its
// active VCPUs.
func (s *Scheduler) refillVM(vm *vmm.VM, share sim.Time) {
	// The VM's share is split among its *active* VCPUs, as Xen's
	// csched does — a VM running one busy process on an 8-VCPU VM
	// gets its whole entitlement on that VCPU rather than burning
	// 7/8 of it on idle siblings.
	active := make([]bool, len(vm.VCPUs()))
	nActive := 0
	for i, v := range vm.VCPUs() {
		d := s.Data(v)
		cpu := v.CPUTime()
		st := v.State()
		if cpu > d.lastPeriodCPU || st == vmm.StateRunnable || st == vmm.StateRunning {
			active[i] = true
			nActive++
		}
		d.lastPeriodCPU = cpu
	}
	if nActive == 0 {
		for i := range active {
			active[i] = true
		}
		nActive = len(active)
	}
	perVCPU := share / sim.Time(nActive)
	if s.creditCap < 2*perVCPU {
		s.creditCap = 2 * perVCPU
	}
	for i, v := range vm.VCPUs() {
		d := s.Data(v)
		s.charge(v, d)
		if active[i] {
			d.Credit += perVCPU
		}
		if d.Credit > s.creditCap {
			d.Credit = s.creditCap
		}
		if d.Prio != PrioBoost {
			d.Prio = s.creditPrio(d)
		}
	}
}
