// Package dfrs implements Dynamic Fractional Resource Scheduling over
// the credit core: instead of adapting slice *length* (ATC) each guest
// VM is granted a continuously adjustable CPU *fraction* of the node,
// re-derived every few accounting periods from its observed demand
// (CPU consumed plus runnable wait). Allocation follows the DFRS
// yield-maximizing rule — every VM's smoothed demand is scaled by the
// same factor so the minimum yield (allocation/demand) is maximal —
// with a per-VM floor, a dom0 reserve, and work-conserving reallocation
// of unclaimed fraction toward demanding VMs.
//
// Fractions act through two mechanisms: the credit core's fractional
// supply path (credit.SetShare pins each VM's per-period refill to its
// fraction) and the dispatch quantum (Slice returns the VCPU's
// per-period fractional entitlement, so a VM holding 1/8 of the node
// runs eighth-length slices instead of hoarding a full 30 ms).
package dfrs

import (
	"fmt"

	"atcsched/internal/sched/credit"
	"atcsched/internal/sim"
	"atcsched/internal/telemetry"
	"atcsched/internal/vmm"
)

// Options configures the DFRS scheduler. The json tags carry omitzero
// so the policy registry can overlay partially-specified options on the
// defaults.
type Options struct {
	// Credit configures the underlying credit core. Credit.TimeSlice
	// caps the fractional dispatch quantum.
	Credit credit.Options `json:"credit,omitzero"`
	// RedistributePeriods is how many accounting periods pass between
	// fraction redistributions (default 2: a 60 ms control interval at
	// the stock 30 ms period).
	RedistributePeriods int `json:"redistributePeriods,omitzero"`
	// MinFraction floors every eligible VM's fraction so a bursty
	// tenant that went idle for one interval is not starved out of
	// restarting (default 0.02).
	MinFraction float64 `json:"minFraction,omitzero"`
	// Dom0Fraction is the capacity reserved for dom0's I/O backends
	// (default 0.05). Guest fractions share what remains.
	Dom0Fraction float64 `json:"dom0Fraction,omitzero"`
	// Smoothing is the EWMA weight of the newest demand observation in
	// (0,1] (default 0.5).
	Smoothing float64 `json:"smoothing,omitzero"`
	// MinQuantum floors the fractional dispatch quantum (default 1 ms);
	// Credit.TimeSlice caps it.
	MinQuantum sim.Time `json:"minQuantum,omitzero"`
	// NonWorkConserving leaves surplus capacity unallocated when total
	// demand is below the node's capacity, instead of scaling every
	// fraction up to absorb it. Off by default: DFRS is work-conserving.
	NonWorkConserving bool `json:"nonWorkConserving,omitzero"`
}

// DefaultOptions returns the evaluation configuration: stock credit
// core with a 2-period redistribution interval.
func DefaultOptions() Options {
	return Options{
		Credit:              credit.DefaultOptions(),
		RedistributePeriods: 2,
		MinFraction:         0.02,
		Dom0Fraction:        0.05,
		Smoothing:           0.5,
		MinQuantum:          sim.Millisecond,
	}
}

// Validate checks the fractional parameters for consistency.
func (o Options) Validate() error {
	if err := o.Credit.Validate(); err != nil {
		return err
	}
	if o.RedistributePeriods < 1 {
		return fmt.Errorf("dfrs: redistribute interval must be >= 1 period, got %d", o.RedistributePeriods)
	}
	if o.MinFraction < 0 || o.MinFraction > 0.5 {
		return fmt.Errorf("dfrs: min fraction %v outside [0, 0.5]", o.MinFraction)
	}
	if o.Dom0Fraction < 0 || o.Dom0Fraction >= 1 {
		return fmt.Errorf("dfrs: dom0 fraction %v outside [0, 1)", o.Dom0Fraction)
	}
	if o.Smoothing <= 0 || o.Smoothing > 1 {
		return fmt.Errorf("dfrs: smoothing %v outside (0, 1]", o.Smoothing)
	}
	if o.MinQuantum <= 0 {
		return fmt.Errorf("dfrs: min quantum must be positive, got %v", o.MinQuantum)
	}
	if o.MinQuantum > o.Credit.TimeSlice {
		return fmt.Errorf("dfrs: min quantum %v above the %v slice cap", o.MinQuantum, o.Credit.TimeSlice)
	}
	return nil
}

// Scheduler is DFRS layered over the credit core.
type Scheduler struct {
	*credit.Scheduler
	opts Options
	// eligible filters which guest VMs join the fraction pool (nil:
	// all of them). The ATC×DFRS hybrid restricts it to non-parallel
	// VMs; ineligible guests stay on the weighted pool and their
	// observed usage is subtracted from the distributable capacity.
	eligible func(*vmm.VM) bool
	// frac is the fraction currently in force per eligible VM id.
	frac map[int]float64
	// demand is the EWMA-smoothed demand fraction per VM id.
	demand map[int]float64
	// lastRun / lastWait remember lifetime run and wait totals per VM
	// id, to form per-interval demand deltas without consuming the
	// accumulators the ATC monitors sample.
	lastRun, lastWait map[int]sim.Time
	// periods counts accounting periods since the last redistribution.
	periods int
	// lastRedist is the virtual time of the previous redistribution
	// (the telemetry span start).
	lastRedist sim.Time
	// redists counts redistribution decisions (telemetry).
	redists uint64
}

// New builds a DFRS scheduler for node n.
func New(n *vmm.Node, opts Options) *Scheduler {
	if err := opts.Validate(); err != nil {
		panic(err)
	}
	return &Scheduler{
		Scheduler: credit.New(n, opts.Credit),
		opts:      opts,
		frac:      make(map[int]float64),
		demand:    make(map[int]float64),
		lastRun:   make(map[int]sim.Time),
		lastWait:  make(map[int]sim.Time),
	}
}

// Factory returns a vmm.SchedulerFactory producing DFRS schedulers.
func Factory(opts Options) vmm.SchedulerFactory {
	return func(n *vmm.Node) vmm.Scheduler { return New(n, opts) }
}

// Name implements vmm.Scheduler.
func (s *Scheduler) Name() string { return "DFRS" }

// DFRSOptions returns the configured options (Options names the credit
// accessor on the embedded core).
func (s *Scheduler) DFRSOptions() Options { return s.opts }

// SetEligible restricts the fraction pool to VMs passing f (nil: every
// guest). Used by the ATC×DFRS hybrid before the first period runs.
func (s *Scheduler) SetEligible(f func(*vmm.VM) bool) { s.eligible = f }

// Fraction returns the fraction currently in force for vm, if any.
func (s *Scheduler) Fraction(vm *vmm.VM) (float64, bool) {
	f, ok := s.frac[vm.ID()]
	return f, ok
}

// Redistributions counts fraction redistribution decisions so far.
func (s *Scheduler) Redistributions() uint64 { return s.redists }

// Slice implements vmm.Scheduler: the VCPU's per-period fractional
// entitlement — fraction × period × PCPUs spread over the VM's VCPUs —
// clamped to [MinQuantum, TimeSlice]. Dom0, ineligible guests and VMs
// awaiting their first redistribution keep the default slice; an
// explicit admin slice on a non-parallel VM wins.
func (s *Scheduler) Slice(v *vmm.VCPU) sim.Time {
	vm := v.VM()
	if vm.Class() == vmm.ClassNonParallel && vm.AdminSlice > 0 {
		return vm.AdminSlice
	}
	f, ok := s.frac[vm.ID()]
	if !ok {
		return s.Options().TimeSlice
	}
	n := s.Node()
	q := sim.Time(f * float64(n.Config().SchedPeriod) * float64(len(n.PCPUs())) / float64(len(vm.VCPUs())))
	if q < s.opts.MinQuantum {
		q = s.opts.MinQuantum
	}
	if max := s.Options().TimeSlice; q > max {
		q = max
	}
	return q
}

// OnPeriod implements vmm.Scheduler: every RedistributePeriods periods
// re-derive the fraction vector from observed demand, then run the
// credit refill with the fractions pinned as shares.
func (s *Scheduler) OnPeriod(n *vmm.Node) {
	s.periods++
	if s.periods >= s.opts.RedistributePeriods {
		s.periods = 0
		s.redistribute(n)
	}
	s.Scheduler.OnPeriod(n)
}

// redistribute recomputes the fraction vector. Demand is observed as
// (ΔCPU + Δwait) / (interval × PCPUs) per VM — runnable wait counts as
// unmet demand — smoothed by EWMA and capped at the VM's VCPU count.
// The distributable capacity is the node minus the dom0 reserve minus
// what ineligible guests actually consumed; every want (demand floored
// at MinFraction) is then scaled by the same factor, which maximizes
// the minimum yield and, in the work-conserving default, hands surplus
// back out proportionally to demand.
func (s *Scheduler) redistribute(n *vmm.Node) {
	interval := float64(s.opts.RedistributePeriods) * float64(n.Config().SchedPeriod)
	capacity := float64(len(n.PCPUs()))
	guests := n.VMs()
	pool := guests[:0:0]
	ineligUsed := 0.0
	for _, vm := range guests {
		id := vm.ID()
		run, wait := vm.RunTime(), vm.WaitTime()
		dRun, dWait := run-s.lastRun[id], wait-s.lastWait[id]
		s.lastRun[id], s.lastWait[id] = run, wait
		if s.eligible != nil && !s.eligible(vm) {
			ineligUsed += float64(dRun) / (interval * capacity)
			if _, had := s.frac[id]; had {
				delete(s.frac, id)
				s.ClearShare(vm)
			}
			continue
		}
		obs := float64(dRun+dWait) / (interval * capacity)
		most := float64(len(vm.VCPUs())) / capacity
		if most > 1 {
			most = 1
		}
		if obs > most {
			obs = most
		}
		if d, ok := s.demand[id]; ok {
			obs = s.opts.Smoothing*obs + (1-s.opts.Smoothing)*d
		}
		s.demand[id] = obs
		pool = append(pool, vm)
	}
	if len(pool) == 0 {
		return
	}
	avail := 1 - s.opts.Dom0Fraction - ineligUsed
	if floor := s.opts.MinFraction * float64(len(pool)); avail < floor {
		avail = floor
	}
	wantSum := 0.0
	wants := make([]float64, len(pool))
	for i, vm := range pool {
		w := s.demand[vm.ID()]
		if w < s.opts.MinFraction {
			w = s.opts.MinFraction
		}
		wants[i] = w
		wantSum += w
	}
	scale := 1.0
	if wantSum > avail || (!s.opts.NonWorkConserving && wantSum > 0) {
		scale = avail / wantSum
	}
	for i, vm := range pool {
		f := wants[i] * scale
		// The floor survives an over-demand squeeze (avail was floored
		// at MinFraction × pool, so the overshoot is bounded and the
		// credit core's share normalization absorbs it).
		if f < s.opts.MinFraction {
			f = s.opts.MinFraction
		}
		// Scaling up never pushes a VM past what its VCPUs can burn;
		// the unusable surplus stays unallocated (dispatch is still
		// work-conserving through the OVER class).
		if most := float64(len(vm.VCPUs())) / capacity; f > most {
			f = most
		}
		if f > 1 {
			f = 1
		}
		s.frac[vm.ID()] = f
		s.SetShare(vm, f)
	}
	s.SetShare(n.Dom0(), s.opts.Dom0Fraction)
	s.redists++
	s.publish(n, pool)
}

// publish emits the redistribution decision into the node's telemetry
// registry: one fraction point and gauge per pooled VM plus a decision
// span covering the interval it closes. Strictly observational.
func (s *Scheduler) publish(n *vmm.Node, pool []*vmm.VM) {
	reg := n.TelemetryRegistry()
	if reg == nil {
		return
	}
	now := n.Engine().Now()
	for _, vm := range pool {
		lab := telemetry.Label{Node: n.ID(), VM: vm.Name()}
		reg.Point("vm_fraction", lab, now, s.frac[vm.ID()])
		reg.SetGauge("vm_fraction", lab, s.frac[vm.ID()])
	}
	reg.AddSpan(telemetry.Span{
		Name:  "redistribute",
		Track: "dfrs",
		Node:  n.ID(),
		Start: s.lastRedist,
		End:   now,
		Value: sim.Time(len(pool)),
	})
	s.lastRedist = now
}
