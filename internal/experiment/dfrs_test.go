package experiment

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// -update rewrites the dfrs golden files from the current output.
var update = flag.Bool("update", false, "rewrite dfrs golden files")

// checkGolden compares got against testdata/name, rewriting under
// -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/experiment -run TestDFRSGolden -update` to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden (re-run with -update if the change is intended)\ngot:\n%s\nwant:\n%s",
			name, got, want)
	}
}

// TestDFRSGoldenTable pins the committed head-to-head table: the dfrs
// experiment at small scale, seed 1, is fully deterministic, so its
// rendered tables — including the shard-equivalence fingerprints — must
// reproduce byte-for-byte on every machine.
func TestDFRSGoldenTable(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full small-scale head-to-head matrix")
	}
	if raceEnabled {
		t.Skip("deterministic byte-compare; the sharded cell crawls under the race detector")
	}
	e, err := ByID("dfrs")
	if err != nil {
		t.Fatal(err)
	}
	tables, err := e.Run(Small, 1)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, tab := range tables {
		b.WriteString(tab.String())
		b.WriteByte('\n')
	}
	checkGolden(t, "dfrs_small.golden.txt", []byte(b.String()))
}

// TestDFRSGoldenArtifacts pins the showcase's telemetry exports: the
// JSONL dump and the Perfetto timeline of the instrumented hybrid run,
// which must both stay parseable and byte-stable.
func TestDFRSGoldenArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the instrumented showcase")
	}
	if raceEnabled {
		t.Skip("deterministic byte-compare; race coverage comes from the proptest battery")
	}
	res, err := DFRSShowcase(Small, 1)
	if err != nil {
		t.Fatal(err)
	}

	var jl bytes.Buffer
	if err := res.WriteJSONL(&jl); err != nil {
		t.Fatal(err)
	}
	first, _, _ := strings.Cut(jl.String(), "\n")
	var meta map[string]any
	if err := json.Unmarshal([]byte(first), &meta); err != nil || meta["type"] != "meta" {
		t.Fatalf("jsonl does not start with a meta line: %q (%v)", first, err)
	}
	if !strings.Contains(jl.String(), "vm_fraction") {
		t.Error("jsonl dump carries no vm_fraction series — the fractional plane is dark")
	}
	checkGolden(t, "dfrs_showcase.jsonl", jl.Bytes())

	var tl bytes.Buffer
	if err := res.WriteTimeline(&tl); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(tl.Bytes(), &file); err != nil {
		t.Fatalf("timeline is not trace-event JSON: %v", err)
	}
	var redistribute, spin bool
	for _, ev := range file.TraceEvents {
		switch ev.Name {
		case "redistribute":
			redistribute = true
		case "spin":
			spin = true
		}
	}
	if !redistribute || !spin {
		t.Errorf("timeline lacks hybrid spans: redistribute=%v spin=%v", redistribute, spin)
	}
	checkGolden(t, "dfrs_showcase_timeline.json", tl.Bytes())
}
